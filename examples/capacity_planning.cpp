// Scenario: capacity planning — how many switch drives (m) should this
// fleet dedicate, and is another library worth it?
//
// A storage architect has a concrete workload profile and a budget
// decision to make. This example sweeps the two knobs the paper studies
// (Figures 5 and 8) for *their* workload and prints a recommendation.
//
//   ./capacity_planning [avg_request_GB] [zipf_alpha]
#include <cstdlib>
#include <iostream>

#include "core/parallel_batch.hpp"
#include "exp/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tapesim;

  const double request_gb = argc > 1 ? std::atof(argv[1]) : 160.0;
  const double alpha = argc > 2 ? std::atof(argv[2]) : 0.3;

  std::cout << "Capacity planning for avg restore " << request_gb
            << " GB, popularity skew alpha=" << alpha << "\n"
            << "================================================\n\n";

  auto base_config = [&] {
    exp::ExperimentConfig config;
    config.workload.zipf_alpha = alpha;
    config.workload = config.workload.with_average_request_size(
        Bytes{static_cast<Bytes::value_type>(request_gb * 1e9)});
    return config;
  };

  // --- Sweep m (switch drives per library). ---
  std::cout << "Switch drives per library (m):\n";
  Table m_table({"m", "bandwidth (MB/s)", "mean response (s)"});
  std::uint32_t best_m = 1;
  double best_bw = 0.0;
  {
    const exp::Experiment experiment(base_config());
    for (std::uint32_t m = 1; m <= 7; ++m) {
      core::ParallelBatchParams params;
      params.switch_drives = m;
      const auto run = experiment.run(core::ParallelBatchPlacement{params});
      const double bw = run.metrics.mean_bandwidth().megabytes_per_second();
      m_table.add(m, bw, run.metrics.mean_response().count());
      if (bw > best_bw) {
        best_bw = bw;
        best_m = m;
      }
    }
  }
  m_table.print(std::cout);
  std::cout << "-> recommended m = " << best_m << "\n\n";

  // --- Is another library worth it? ---
  std::cout << "Fleet size (libraries), at m = " << best_m << ":\n";
  Table n_table({"libraries", "bandwidth (MB/s)", "gain vs previous"});
  double previous = 0.0;
  for (std::uint32_t n = 2; n <= 5; ++n) {
    exp::ExperimentConfig config = base_config();
    config.spec.num_libraries = n;
    // Keep stored data proportional to capacity.
    config.workload.num_objects = 10'000 * n;
    config.workload.object_groups = config.workload.num_objects / 150;
    const exp::Experiment experiment(config);
    core::ParallelBatchParams params;
    params.switch_drives = best_m;
    const auto run = experiment.run(core::ParallelBatchPlacement{params});
    const double bw = run.metrics.mean_bandwidth().megabytes_per_second();
    n_table.add(n, bw,
                previous > 0.0
                    ? Table::num(100.0 * (bw - previous) / previous) + " %"
                    : std::string{"-"});
    previous = bw;
  }
  n_table.print(std::cout);
  std::cout << "\nAdd libraries while the marginal gain clears your cost "
               "threshold; gains taper once the per-request\n"
               "parallelism is exhausted by the cluster split width.\n";
  return 0;
}
