// Quickstart: place a workload with the paper's parallel batch placement
// and retrieve a few requests through the simulator.
//
//   $ ./examples/quickstart [seed]
//
// Walks the whole public API surface in order: system spec -> workload ->
// clusters -> placement -> simulation -> metrics.
#include <cstdlib>
#include <iostream>

#include "cluster/similarity.hpp"
#include "core/parallel_batch.hpp"
#include "exp/experiment.hpp"
#include "sched/simulator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tapesim;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. The hardware: Table 1's three StorageTek L80 libraries with eight
  //    IBM LTO Gen-3 drives each.
  tape::SystemSpec spec = tape::SystemSpec::paper_default();
  std::cout << "System: " << spec.describe() << "\n";

  // 2. A synthetic workload: 30,000 power-law-sized objects, 300 requests
  //    with Zipf(0.3) popularity.
  workload::WorkloadConfig wconfig = workload::WorkloadConfig::paper_default();
  Rng rng{seed};
  const workload::Workload workload = workload::generate_workload(wconfig, rng);
  std::cout << "Workload: " << workload.object_count() << " objects ("
            << workload.total_object_bytes() << "), "
            << workload.request_count() << " requests, mean request "
            << workload.mean_request_bytes() << "\n";

  // 3. Cluster objects by co-access probability.
  const auto similarity = cluster::SimilarityGraph::from_workload(workload);
  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{360ULL * 1000 * 1000 * 1000};  // k * C_t
  const auto clusters =
      cluster::cluster_objects(workload, similarity, constraints);
  std::cout << "Clusters: " << clusters.size() << " (from "
            << similarity.edge_count() << " similarity edges)\n";

  // 4. Place with parallel batch placement (m = 4 switch drives/library).
  core::ParallelBatchPlacement scheme;
  core::PlacementContext context{&workload, &spec, &clusters};
  const core::PlacementPlan plan = scheme.place(context);
  std::cout << "Placed on " << plan.tapes_used() << " tapes of "
            << spec.total_tapes() << "\n";

  // 5. Retrieve five popular requests.
  sched::RetrievalSimulator simulator(plan);
  Table table({"request", "size", "response", "switch", "seek", "transfer",
               "bandwidth", "mounts"});
  for (std::uint32_t r = 0; r < 5; ++r) {
    const auto outcome = simulator.run_request(RequestId{r});
    table.add(r, outcome.bytes, outcome.response, outcome.switch_time,
              outcome.seek, outcome.transfer, outcome.bandwidth(),
              outcome.tape_switches);
  }
  table.print(std::cout);
  return 0;
}
