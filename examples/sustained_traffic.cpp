// Scenario: sizing for sustained restore traffic (the concurrency
// extension — beyond the paper's one-request-at-a-time model).
//
// An operator needs to know how many restores per hour the tape tier can
// absorb before queues blow up, and what latency users see on the way
// there. This example offers Poisson restore traffic at increasing rates
// and prints the sojourn-time curve plus fleet utilization at the knee.
//
//   ./sustained_traffic [requests_per_hour_max]
#include <cstdlib>
#include <iostream>

#include "exp/experiment.hpp"
#include "metrics/queueing.hpp"
#include "sched/concurrent.hpp"
#include "sched/report.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tapesim;

  const double max_per_hour = argc > 1 ? std::atof(argv[1]) : 14.0;

  std::cout << "Sustained restore traffic\n"
            << "=========================\n\n";

  exp::ExperimentConfig config;
  config.workload = config.workload.with_average_request_size(
      Bytes{160ULL * 1000 * 1000 * 1000});
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes();

  core::PlacementContext context{&experiment.workload(), &config.spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan = schemes.parallel_batch->place(context);

  // Serial service profile -> analytic single-server reference.
  const auto serial = exp::simulate_plan(plan, 150, config.seed);
  std::cout << "Serial profile: mean service "
            << serial.mean_response() << ", serial saturation "
            << Table::num(
                   metrics::saturation_rate(serial.response_samples()) *
                   3600.0)
            << " restores/hour\n\n";

  Table table({"restores/hour", "mean sojourn (min)", "P95 sojourn (min)",
               "M/G/1 sojourn (min)"});
  const workload::RequestSampler sampler(experiment.workload());
  sched::ConcurrentSimulator* last_simulator = nullptr;
  std::unique_ptr<sched::ConcurrentSimulator> keep_alive;
  for (double per_hour = 2.0; per_hour <= max_per_hour; per_hour += 2.0) {
    const double rate = per_hour / 3600.0;
    keep_alive = std::make_unique<sched::ConcurrentSimulator>(plan);
    last_simulator = keep_alive.get();
    Rng rng{config.seed};
    const auto arrivals = sched::poisson_arrivals(sampler, rate, 200, rng);
    const auto outcomes = last_simulator->run(arrivals);
    SampleSet sojourns;
    for (const auto& o : outcomes) sojourns.add(o.sojourn().count());
    const auto mg1 = metrics::mg1_estimate(serial.response_samples(), rate);
    table.add(per_hour, sojourns.mean() / 60.0,
              sojourns.percentile(95) / 60.0,
              mg1.stable ? Table::num(mg1.mean_sojourn.count() / 60.0)
                         : std::string{"[unstable]"});
  }
  table.print(std::cout);

  std::cout << "\nFleet utilization at the highest offered rate:\n";
  sched::utilization_report(last_simulator->system(),
                            last_simulator->makespan())
      .print(std::cout);
  std::cout << "\nRead the knee of the sojourn curve as the tier's usable "
               "capacity; past the serial saturation the analytic column "
               "goes unstable while\nthe real fleet keeps absorbing load by "
               "overlapping requests across drives.\n";
  return 0;
}
