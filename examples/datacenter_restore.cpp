// Scenario: enterprise disaster-restore drill (Section 1 of the paper).
//
// A data center backs up application volumes to the tape tier every night.
// Compliance requires demonstrating that any application can be restored
// within its recovery-time objective (RTO). Application tiers differ:
// mission-critical databases are restored (and drilled) far more often
// than cold archives — a skewed popularity distribution the placement
// layer can exploit.
//
// This example runs the same drill set against all three schemes and
// reports, per popularity tier, the worst observed restore time, then
// checks it against a 30-minute RTO for the hot tier.
#include <iostream>

#include "exp/experiment.hpp"
#include "sched/simulator.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace tapesim;

  std::cout << "Enterprise restore drill\n"
            << "========================\n\n";

  exp::ExperimentConfig config;
  config.workload.num_objects = 24'000;
  config.workload.object_groups = 120;  // applications
  config.workload.num_requests = 240;   // restore drill catalogue
  config.workload.min_objects_per_request = 80;
  config.workload.max_objects_per_request = 140;
  config.workload.zipf_alpha = 0.8;  // hot tier dominates drills
  config.workload.min_object_size = Bytes{500ULL * 1000 * 1000};
  config.workload.max_object_size = 16_GB;
  config.simulated_requests = 240;

  const exp::Experiment experiment(config);
  const workload::Workload& wl = experiment.workload();
  std::cout << "Backup set: " << wl.object_count() << " volumes, "
            << wl.total_object_bytes() << "; mean restore "
            << wl.mean_request_bytes() << "\n\n";

  const auto schemes = exp::make_standard_schemes();

  // Tiers by drill-request rank: hot = top 10%, warm = next 30%, cold =
  // rest. We simulate each drill once per scheme, deterministically.
  const std::uint32_t hot_end = wl.request_count() / 10;
  const std::uint32_t warm_end = hot_end + 3 * wl.request_count() / 10;

  Table table({"placement scheme", "hot worst (min)", "warm worst (min)",
               "cold worst (min)", "hot RTO<=30min"});
  for (const core::PlacementScheme* scheme :
       {schemes.parallel_batch.get(), schemes.object_probability.get(),
        schemes.cluster_probability.get()}) {
    core::PlacementContext context{&wl, &experiment.config().spec,
                                   &experiment.clusters()};
    const core::PlacementPlan plan = scheme->place(context);
    sched::RetrievalSimulator simulator(plan);
    double worst_hot = 0.0;
    double worst_warm = 0.0;
    double worst_cold = 0.0;
    for (std::uint32_t r = 0; r < wl.request_count(); ++r) {
      const auto outcome = simulator.run_request(RequestId{r});
      double& bucket = r < hot_end    ? worst_hot
                       : r < warm_end ? worst_warm
                                      : worst_cold;
      bucket = std::max(bucket, outcome.response.count());
    }
    table.add(scheme->name(), worst_hot / 60.0, worst_warm / 60.0,
              worst_cold / 60.0, worst_hot <= 30.0 * 60.0 ? "yes" : "NO");
  }
  table.print(std::cout);

  std::cout << "\nThe hot tier meets its RTO only when its volumes sit on "
               "the always-mounted batch and stream in parallel —\n"
               "which is precisely what parallel batch placement arranges.\n";
  return 0;
}
