// Scenario: inspecting what a placement actually did.
//
// Prints the physical layout a scheme produced for a small, readable
// workload: per-tape contents (object, offset, probability), per-batch
// accumulated popularity, and the mount policy — the quickest way to build
// intuition for how the three schemes differ.
//
//   ./placement_explorer [pbp|opp|cpp]
#include <cstring>
#include <iostream>

#include "cluster/hierarchy.hpp"
#include "core/cluster_probability.hpp"
#include "core/object_probability.hpp"
#include "core/parallel_batch.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace tapesim;

  const std::string choice = argc > 1 ? argv[1] : "pbp";

  // A dollhouse system: 2 libraries x 3 drives x 6 tapes of 20 GB.
  tape::SystemSpec spec;
  spec.num_libraries = 2;
  spec.library.drives_per_library = 3;
  spec.library.tapes_per_library = 6;
  spec.library.tape_capacity = 20_GB;

  workload::WorkloadConfig wconfig;
  wconfig.num_objects = 120;
  wconfig.num_requests = 12;
  wconfig.min_objects_per_request = 8;
  wconfig.max_objects_per_request = 14;
  wconfig.object_groups = 10;
  wconfig.min_object_size = Bytes{200ULL * 1000 * 1000};
  wconfig.max_object_size = 2_GB;
  wconfig.zipf_alpha = 0.6;
  Rng rng{7};
  const workload::Workload wl = workload::generate_workload(wconfig, rng);

  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
      0.9 * spec.library.tape_capacity.as_double())};
  const auto clusters = cluster::cluster_by_requests(wl, constraints);

  std::unique_ptr<core::PlacementScheme> scheme;
  if (choice == "opp") {
    scheme = std::make_unique<core::ObjectProbabilityPlacement>();
  } else if (choice == "cpp") {
    scheme = std::make_unique<core::ClusterProbabilityPlacement>();
  } else {
    core::ParallelBatchParams params;
    params.switch_drives = 1;
    params.balance.min_split_chunk = 1_GB;
    scheme = std::make_unique<core::ParallelBatchPlacement>(params);
  }

  core::PlacementContext context{&wl, &spec, &clusters};
  const core::PlacementPlan plan = scheme->place(context);

  std::cout << "Scheme:   " << scheme->name() << "\n"
            << "System:   " << spec.describe() << "\n"
            << "Workload: " << wl.object_count() << " objects ("
            << wl.total_object_bytes() << "), " << clusters.size()
            << " clusters\n\n";

  for (std::uint32_t tv = 0; tv < spec.total_tapes(); ++tv) {
    const TapeId tape{tv};
    const auto contents = plan.on_tape(tape);
    if (contents.empty()) continue;
    std::cout << "tape " << tv << " (library " << tv / 6 << ", "
              << plan.used_on(tape) << " used, popularity "
              << Table::num(plan.mount_policy.tape_popularity[tv])
              << "):\n  ";
    for (const core::PlacedObject& p : contents) {
      std::cout << "O" << p.object.value() << "["
                << clusters.cluster_of(p.object).value() << "] ";
    }
    std::cout << "\n";
  }

  std::cout << "\nInitial mounts:";
  for (const auto& [drive, tape] : plan.mount_policy.initial_mounts) {
    std::cout << "  D" << drive.value() << "<-T" << tape.value();
  }
  std::cout << "\nReplacement policy: "
            << core::to_string(plan.mount_policy.replacement) << "\n"
            << "(objects shown as Oid[cluster]; order on tape = physical "
               "order from beginning of tape)\n";
  return 0;
}
