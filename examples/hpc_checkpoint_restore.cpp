// Scenario: HPC cluster time-slot restore (Section 1 of the paper).
//
// Users of a shared compute cluster are pre-allocated time slots. When a
// slot ends, the user's working set (checkpoints, input decks, analysis
// output) is migrated to tape; when their next slot begins, everything has
// to come back fast. Each "user" below is one co-access group: their files
// form a cluster, and a restore request pulls most of the group at once.
//
// The example places three months of migrated user data with each of the
// three schemes and reports how long a user waits for their restore —
// P50 and P95, since a slow restore burns allocated node-hours.
#include <iostream>

#include "exp/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace tapesim;

  std::cout << "HPC cluster time-slot restore\n"
            << "==============================\n\n";

  exp::ExperimentConfig config;
  // 150 users, each with ~200 files; active users request restores more
  // often (Zipf 0.5 over the restore-request catalogue).
  config.workload.num_objects = 24'000;
  config.workload.object_groups = 150;
  config.workload.num_requests = 300;
  config.workload.min_objects_per_request = 100;
  config.workload.max_objects_per_request = 150;
  config.workload.zipf_alpha = 0.5;
  // Checkpoint files: 1-16 GB, power-law (a few giant state dumps).
  config.workload.min_object_size = 1_GB;
  config.workload.max_object_size = 16_GB;
  config.simulated_requests = 200;

  const exp::Experiment experiment(config);
  std::cout << "Archive: " << experiment.workload().object_count()
            << " files, " << experiment.workload().total_object_bytes()
            << " across " << config.workload.object_groups << " users; "
            << "mean restore " << experiment.workload().mean_request_bytes()
            << "\nSystem:  " << config.spec.describe() << "\n\n";

  const auto schemes = exp::make_standard_schemes();
  Table table({"placement scheme", "P50 restore (min)", "P95 restore (min)",
               "mean bandwidth (MB/s)", "mounts/restore"});
  for (const core::PlacementScheme* scheme :
       {schemes.parallel_batch.get(), schemes.object_probability.get(),
        schemes.cluster_probability.get()}) {
    const auto run = experiment.run(*scheme);
    table.add(run.scheme,
              run.metrics.response_samples().percentile(50) / 60.0,
              run.metrics.response_samples().percentile(95) / 60.0,
              run.metrics.mean_bandwidth().megabytes_per_second(),
              run.metrics.mean_tape_switches());
  }
  table.print(std::cout);

  std::cout << "\nA user whose slot starts at 08:00 gets their working set "
               "back fastest under parallel batch placement: the whole\n"
               "group streams from one tape batch in parallel instead of "
               "trickling off a single cartridge.\n";
  return 0;
}
