// Offline inspector for span JSONL traces (obs::Tracer::write_jsonl).
//
// Reads a trace back through the obs JSON parser and prints, per track, a
// phase-breakdown table (span count, total seconds, mean span length,
// share of the track's busy time) plus an occupancy summary: each lane's
// busy span time as a fraction of the whole trace duration. This is the
// quick "where did the time go / how hot was each drive" view when a
// Perfetto session is overkill, and doubles as an end-to-end check that
// the emitted JSONL round-trips.
//
// Usage: trace_inspect FILE.jsonl [--track NAME] [--lanes]
//   --track NAME  restrict to one track
//                 (request|drive|robot|engine|repair|overload|scrub|outage|
//                  hedge|quarantine|recovery|breaker)
//   --lanes       additionally break each track down per lane
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace {

struct SpanRow {
  std::string track;
  std::uint32_t lane = 0;
  std::string phase;
  double start_s = 0.0;
  double end_s = 0.0;
};

struct Agg {
  std::uint64_t spans = 0;
  double total_s = 0.0;
};

int fail(const std::string& message) {
  std::cerr << "trace_inspect: " << message << "\n";
  return 1;
}

// Every track name obs::Tracer can emit, in display order (matches the
// obs::Track enum; unknown tracks from future writers still print, last).
const std::vector<std::string>& known_tracks() {
  static const std::vector<std::string> tracks = {
      "request",  "drive", "robot",  "engine", "repair",     "overload",
      "scrub",    "outage", "hedge", "quarantine", "recovery", "breaker"};
  return tracks;
}

std::string known_tracks_joined() {
  std::string joined;
  for (const std::string& t : known_tracks()) {
    joined += joined.empty() ? t : "|" + t;
  }
  return joined;
}

}  // namespace

int main(int argc, char** argv) {
  using tapesim::Table;

  std::string path;
  std::string only_track;
  bool per_lane = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lanes") {
      per_lane = true;
    } else if (arg == "--track" && i + 1 < argc) {
      only_track = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return fail("unknown option: " + arg);
    } else if (path.empty()) {
      path = arg;
    } else {
      return fail("more than one input file given");
    }
  }
  if (path.empty()) {
    return fail("usage: trace_inspect FILE.jsonl [--track NAME] [--lanes]");
  }
  if (!only_track.empty() &&
      std::find(known_tracks().begin(), known_tracks().end(), only_track) ==
          known_tracks().end()) {
    return fail("unknown track '" + only_track +
                "' (valid: " + known_tracks_joined() + ")");
  }

  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);

  std::vector<SpanRow> spans;
  std::uint64_t samples = 0;
  std::uint64_t markers = 0;
  // Trace extent over ALL spans (before --track filtering), so occupancy
  // is relative to the whole run, not to the selected track's activity.
  double trace_begin_s = std::numeric_limits<double>::infinity();
  double trace_end_s = 0.0;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto value = tapesim::obs::parse_json(line);
    if (!value || !value->is_object()) {
      return fail("line " + std::to_string(line_no) + ": not a JSON object");
    }
    const std::string type = value->string_or("type", "");
    if (type == "sample") {
      ++samples;
      continue;
    }
    if (type != "span") continue;  // meta and future record types
    SpanRow row;
    row.track = value->string_or("track", "?");
    row.lane = static_cast<std::uint32_t>(value->number_or("lane", 0.0));
    row.phase = value->string_or("phase", "?");
    row.start_s = value->number_or("start_s", 0.0);
    row.end_s = value->number_or("end_s", 0.0);
    if (row.phase == "marker") {
      ++markers;
      continue;
    }
    if (row.end_s < row.start_s) {
      return fail("line " + std::to_string(line_no) + ": span ends (" +
                  std::to_string(row.end_s) + ") before it starts (" +
                  std::to_string(row.start_s) + ")");
    }
    trace_begin_s = std::min(trace_begin_s, row.start_s);
    trace_end_s = std::max(trace_end_s, row.end_s);
    if (!only_track.empty() && row.track != only_track) continue;
    spans.push_back(std::move(row));
  }
  const double trace_duration_s =
      spans.empty() || trace_begin_s >= trace_end_s
          ? 0.0
          : trace_end_s - trace_begin_s;

  std::cout << path << ": " << spans.size() << " spans, " << samples
            << " samples, " << markers << " markers\n\n";

  // Tracks in a stable, meaningful order; unknown ones go last.
  const std::vector<std::string>& track_order = known_tracks();
  std::map<std::string, std::map<std::string, Agg>> by_track;
  std::map<std::string, std::map<std::uint32_t, std::map<std::string, Agg>>>
      by_lane;
  std::map<std::string, std::map<std::uint32_t, double>> lane_busy_s;
  for (const SpanRow& s : spans) {
    Agg& agg = by_track[s.track][s.phase];
    ++agg.spans;
    agg.total_s += s.end_s - s.start_s;
    lane_busy_s[s.track][s.lane] += s.end_s - s.start_s;
    if (per_lane) {
      Agg& lane_agg = by_lane[s.track][s.lane][s.phase];
      ++lane_agg.spans;
      lane_agg.total_s += s.end_s - s.start_s;
    }
  }

  auto print_phase_table = [](const std::string& title,
                              const std::map<std::string, Agg>& phases) {
    double track_total = 0.0;
    for (const auto& [phase, agg] : phases) track_total += agg.total_s;
    std::cout << title << "\n";
    Table table({"phase", "spans", "total (s)", "mean (s)", "share"});
    for (const auto& [phase, agg] : phases) {
      table.add(phase, agg.spans, agg.total_s,
                agg.spans == 0 ? 0.0
                               : agg.total_s / static_cast<double>(agg.spans),
                track_total <= 0.0
                    ? std::string("-")
                    : Table::num(100.0 * agg.total_s / track_total, 1) + "%");
    }
    table.print(std::cout);
    std::cout << "\n";
  };

  auto visit_track = [&](const std::string& track) {
    const auto it = by_track.find(track);
    if (it == by_track.end()) return;
    print_phase_table("track: " + track, it->second);
    if (per_lane) {
      for (const auto& [lane, phases] : by_lane[track]) {
        print_phase_table(
            "track: " + track + ", lane " + std::to_string(lane), phases);
      }
    }
  };
  for (const std::string& track : track_order) visit_track(track);
  for (const auto& [track, phases] : by_track) {
    if (std::find(track_order.begin(), track_order.end(), track) ==
        track_order.end()) {
      visit_track(track);
    }
  }

  // Occupancy: busy span time over the whole trace duration. Per track the
  // ratio is summed over lanes, so it reads as mean concurrency (a 4-drive
  // track fully busy shows 400%); per lane it is plain utilization.
  if (trace_duration_s > 0.0) {
    std::cout << "occupancy over trace duration " << trace_duration_s
              << " s\n";
    Table occ({"track", "lanes", "busy (s)", "occupancy", "peak lane",
               "peak occupancy"});
    auto pct = [&](double busy) {
      return Table::num(100.0 * busy / trace_duration_s, 1) + "%";
    };
    auto occupancy_row = [&](const std::string& track) {
      const auto it = lane_busy_s.find(track);
      if (it == lane_busy_s.end()) return;
      double track_busy = 0.0;
      std::uint32_t peak_lane = 0;
      double peak_busy = -1.0;
      for (const auto& [lane, busy] : it->second) {
        track_busy += busy;
        if (busy > peak_busy) {
          peak_busy = busy;
          peak_lane = lane;
        }
      }
      occ.add(track, it->second.size(), track_busy, pct(track_busy),
              peak_lane, pct(peak_busy));
    };
    for (const std::string& track : track_order) occupancy_row(track);
    for (const auto& [track, lanes] : lane_busy_s) {
      if (std::find(track_order.begin(), track_order.end(), track) ==
          track_order.end()) {
        occupancy_row(track);
      }
    }
    occ.print(std::cout);
    if (per_lane) {
      std::cout << "\n";
      Table lanes({"track", "lane", "busy (s)", "occupancy"});
      for (const auto& [track, by] : lane_busy_s) {
        for (const auto& [lane, busy] : by) {
          lanes.add(track, lane, busy, pct(busy));
        }
      }
      lanes.print(std::cout);
    }
  }
  return 0;
}
