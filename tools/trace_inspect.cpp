// Offline inspector for span JSONL traces (obs::Tracer::write_jsonl).
//
// Reads a trace back through the obs JSON parser and prints, per track, a
// phase-breakdown table: span count, total seconds, mean span length, and
// share of the track's busy time. This is the quick "where did the time
// go" view when a Perfetto session is overkill, and doubles as an
// end-to-end check that the emitted JSONL round-trips.
//
// Usage: trace_inspect FILE.jsonl [--track NAME] [--lanes]
//   --track NAME  restrict to one track (request|drive|robot|engine)
//   --lanes       additionally break each track down per lane
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace {

struct SpanRow {
  std::string track;
  std::uint32_t lane = 0;
  std::string phase;
  double start_s = 0.0;
  double end_s = 0.0;
};

struct Agg {
  std::uint64_t spans = 0;
  double total_s = 0.0;
};

int fail(const std::string& message) {
  std::cerr << "trace_inspect: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using tapesim::Table;

  std::string path;
  std::string only_track;
  bool per_lane = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lanes") {
      per_lane = true;
    } else if (arg == "--track" && i + 1 < argc) {
      only_track = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return fail("unknown option: " + arg);
    } else if (path.empty()) {
      path = arg;
    } else {
      return fail("more than one input file given");
    }
  }
  if (path.empty()) {
    return fail("usage: trace_inspect FILE.jsonl [--track NAME] [--lanes]");
  }

  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);

  std::vector<SpanRow> spans;
  std::uint64_t samples = 0;
  std::uint64_t markers = 0;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto value = tapesim::obs::parse_json(line);
    if (!value || !value->is_object()) {
      return fail("line " + std::to_string(line_no) + ": not a JSON object");
    }
    const std::string type = value->string_or("type", "");
    if (type == "sample") {
      ++samples;
      continue;
    }
    if (type != "span") continue;  // meta and future record types
    SpanRow row;
    row.track = value->string_or("track", "?");
    row.lane = static_cast<std::uint32_t>(value->number_or("lane", 0.0));
    row.phase = value->string_or("phase", "?");
    row.start_s = value->number_or("start_s", 0.0);
    row.end_s = value->number_or("end_s", 0.0);
    if (row.phase == "marker") {
      ++markers;
      continue;
    }
    if (row.end_s < row.start_s) {
      return fail("line " + std::to_string(line_no) + ": span ends (" +
                  std::to_string(row.end_s) + ") before it starts (" +
                  std::to_string(row.start_s) + ")");
    }
    if (!only_track.empty() && row.track != only_track) continue;
    spans.push_back(std::move(row));
  }

  std::cout << path << ": " << spans.size() << " spans, " << samples
            << " samples, " << markers << " markers\n\n";

  // Tracks in a stable, meaningful order; unknown ones go last.
  const std::vector<std::string> track_order = {"request", "drive", "robot",
                                                "engine"};
  std::map<std::string, std::map<std::string, Agg>> by_track;
  std::map<std::string, std::map<std::uint32_t, std::map<std::string, Agg>>>
      by_lane;
  for (const SpanRow& s : spans) {
    Agg& agg = by_track[s.track][s.phase];
    ++agg.spans;
    agg.total_s += s.end_s - s.start_s;
    if (per_lane) {
      Agg& lane_agg = by_lane[s.track][s.lane][s.phase];
      ++lane_agg.spans;
      lane_agg.total_s += s.end_s - s.start_s;
    }
  }

  auto print_phase_table = [](const std::string& title,
                              const std::map<std::string, Agg>& phases) {
    double track_total = 0.0;
    for (const auto& [phase, agg] : phases) track_total += agg.total_s;
    std::cout << title << "\n";
    Table table({"phase", "spans", "total (s)", "mean (s)", "share"});
    for (const auto& [phase, agg] : phases) {
      table.add(phase, agg.spans, agg.total_s,
                agg.spans == 0 ? 0.0
                               : agg.total_s / static_cast<double>(agg.spans),
                track_total <= 0.0
                    ? std::string("-")
                    : Table::num(100.0 * agg.total_s / track_total, 1) + "%");
    }
    table.print(std::cout);
    std::cout << "\n";
  };

  auto visit_track = [&](const std::string& track) {
    const auto it = by_track.find(track);
    if (it == by_track.end()) return;
    print_phase_table("track: " + track, it->second);
    if (per_lane) {
      for (const auto& [lane, phases] : by_lane[track]) {
        print_phase_table(
            "track: " + track + ", lane " + std::to_string(lane), phases);
      }
    }
  };
  for (const std::string& track : track_order) visit_track(track);
  for (const auto& [track, phases] : by_track) {
    if (std::find(track_order.begin(), track_order.end(), track) ==
        track_order.end()) {
      visit_track(track);
    }
  }
  return 0;
}
