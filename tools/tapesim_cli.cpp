// tapesim — command-line front end to the library.
//
//   tapesim info    [system flags]
//   tapesim workload --out PREFIX [workload flags]
//   tapesim place   --scheme pbp|opp|cpp --out PREFIX [flags]
//   tapesim run     --scheme pbp|opp|cpp [flags] [--log FILE.csv]
//
// Common flags (defaults reproduce the paper's setup):
//   --libraries N --drives D --tapes T --capacity-gb C
//   --objects N --requests N --alpha A --locality L --groups G
//   --avg-request-gb G --m M --k K --seed S --simulated N
//
// `run` prints the aggregate metrics the paper reports; `--log` streams
// every per-request outcome to CSV.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "core/cluster_probability.hpp"
#include "sched/report.hpp"
#include "core/object_probability.hpp"
#include "core/parallel_batch.hpp"
#include "exp/experiment.hpp"
#include "sched/simulator.hpp"
#include "trace/outcome_log.hpp"
#include "trace/plan_io.hpp"
#include "trace/workload_io.hpp"
#include "util/ini.hpp"
#include "util/table.hpp"

namespace {

using namespace tapesim;

struct Options {
  std::map<std::string, std::string> values;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] std::uint64_t integer(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values.count(key) != 0;
  }
};

Options parse(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected argument: " + arg);
    }
    arg = arg.substr(2);
    if (i + 1 >= argc) {
      throw std::runtime_error("flag --" + arg + " needs a value");
    }
    options.values[arg] = argv[++i];
  }
  // --config FILE supplies defaults: ini keys map onto flag names (the
  // section prefix, if any, is dropped); explicit flags win.
  if (options.has("config")) {
    const IniFile ini = IniFile::load(options.get("config", ""));
    for (const auto& [key, value] : ini.values()) {
      const auto dot = key.rfind('.');
      const std::string flag =
          dot == std::string::npos ? key : key.substr(dot + 1);
      options.values.emplace(flag, value);  // does not overwrite flags
    }
  }
  return options;
}

exp::ExperimentConfig build_config(const Options& options) {
  exp::ExperimentConfig config;
  config.spec.num_libraries =
      static_cast<std::uint32_t>(options.integer("libraries", 3));
  config.spec.library.drives_per_library =
      static_cast<std::uint32_t>(options.integer("drives", 8));
  config.spec.library.tapes_per_library =
      static_cast<std::uint32_t>(options.integer("tapes", 80));
  config.spec.library.tape_capacity = Bytes{
      options.integer("capacity-gb", 400) * 1000ULL * 1000ULL * 1000ULL};
  config.workload.num_objects =
      static_cast<std::uint32_t>(options.integer("objects", 30'000));
  config.workload.num_requests =
      static_cast<std::uint32_t>(options.integer("requests", 300));
  config.workload.zipf_alpha = options.num("alpha", 0.3);
  config.workload.request_locality = options.num("locality", 0.9);
  config.workload.object_groups =
      static_cast<std::uint32_t>(options.integer("groups", 200));
  if (options.has("avg-request-gb")) {
    config.workload = config.workload.with_average_request_size(
        Bytes{static_cast<Bytes::value_type>(
            options.num("avg-request-gb", 213.0) * 1e9)});
  }
  config.seed = options.integer("seed", 42);
  config.simulated_requests =
      static_cast<std::uint32_t>(options.integer("simulated", 200));
  config.capacity_utilization = options.num("k", 0.9);
  return config;
}

std::unique_ptr<core::PlacementScheme> build_scheme(const Options& options) {
  const std::string name = options.get("scheme", "pbp");
  const double k = options.num("k", 0.9);
  if (name == "pbp") {
    core::ParallelBatchParams params;
    params.switch_drives =
        static_cast<std::uint32_t>(options.integer("m", 4));
    params.capacity_utilization = k;
    return std::make_unique<core::ParallelBatchPlacement>(params);
  }
  if (name == "opp") {
    core::ObjectProbabilityParams params;
    params.capacity_utilization = k;
    return std::make_unique<core::ObjectProbabilityPlacement>(params);
  }
  if (name == "cpp") {
    core::ClusterProbabilityParams params;
    params.capacity_utilization = k;
    return std::make_unique<core::ClusterProbabilityPlacement>(params);
  }
  throw std::runtime_error("unknown scheme '" + name +
                           "' (expected pbp, opp, or cpp)");
}

int cmd_info(const Options& options) {
  const exp::ExperimentConfig config = build_config(options);
  std::cout << "System:   " << config.spec.describe() << "\n"
            << "Capacity: " << config.spec.total_capacity() << " across "
            << config.spec.total_tapes() << " tapes; aggregate drive rate "
            << config.spec.aggregate_transfer_rate() << "\n"
            << "Workload: " << config.workload.num_objects << " objects, "
            << config.workload.num_requests
            << " requests, expected request size "
            << config.workload.expected_request_size() << ", zipf alpha "
            << config.workload.zipf_alpha << "\n";
  return 0;
}

int cmd_workload(const Options& options) {
  const exp::ExperimentConfig config = build_config(options);
  const exp::Experiment experiment(config);
  const std::string prefix = options.get("out", "workload");
  trace::save_workload(experiment.workload(), prefix);
  std::cout << "wrote " << prefix << ".objects.csv and " << prefix
            << ".requests.csv (" << experiment.workload().object_count()
            << " objects, " << experiment.workload().total_object_bytes()
            << ")\n";
  return 0;
}

int cmd_place(const Options& options) {
  const exp::ExperimentConfig config = build_config(options);
  const exp::Experiment experiment(config);
  const auto scheme = build_scheme(options);
  core::PlacementContext context{&experiment.workload(),
                                 &experiment.config().spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan = scheme->place(context);
  const std::string prefix = options.get("out", "plan");
  trace::save_plan(plan, prefix);
  std::cout << scheme->name() << ": " << plan.tapes_used()
            << " tapes used; wrote " << prefix << ".layout.csv and "
            << prefix << ".mounts.csv\n";
  return 0;
}

int cmd_run(const Options& options) {
  const exp::ExperimentConfig config = build_config(options);
  const exp::Experiment experiment(config);
  const auto scheme = build_scheme(options);

  std::optional<std::ofstream> log_file;
  std::optional<trace::OutcomeLog> log;
  if (options.has("log")) {
    log_file.emplace(options.get("log", ""));
    if (!*log_file) throw std::runtime_error("cannot open log file");
    log.emplace(*log_file);
  }

  core::PlacementContext context{&experiment.workload(),
                                 &experiment.config().spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan = scheme->place(context);
  sched::RetrievalSimulator simulator(plan);
  Rng rng{config.seed};
  Rng sample_rng = rng.fork(0x5251);
  const workload::RequestSampler sampler(experiment.workload());
  metrics::ExperimentMetrics metrics;
  for (std::uint32_t i = 0; i < config.simulated_requests; ++i) {
    const auto outcome = simulator.run_request(sampler.sample(sample_rng));
    metrics.add(outcome);
    if (log) log->record(outcome);
  }

  Table table({"metric", "value"});
  table.add("scheme", scheme->name());
  table.add("simulated requests", metrics.count());
  table.add("mean effective bandwidth (MB/s)",
            metrics.mean_bandwidth().megabytes_per_second());
  table.add("mean response (s)", metrics.mean_response().count());
  table.add("mean switch (s)", metrics.mean_switch().count());
  table.add("mean seek (s)", metrics.mean_seek().count());
  table.add("mean transfer (s)", metrics.mean_transfer().count());
  table.add("mean mounts/request", metrics.mean_tape_switches());
  table.add("P95 response (s)", metrics.response_samples().percentile(95));
  table.print(std::cout);
  if (log) std::cout << "(per-request log: " << options.get("log", "") << ")\n";
  if (options.has("utilization")) {
    std::cout << "\nFleet utilization over the simulated window:\n";
    sched::utilization_report(simulator.system(), simulator.engine().now())
        .print(std::cout);
  }
  return 0;
}

int usage() {
  std::cerr
      << "usage: tapesim <info|workload|place|run> [--flag value ...]\n"
         "  info      print the configured system and workload profile\n"
         "  workload  generate a workload and save it as CSV\n"
         "  place     place a workload and save the plan as CSV\n"
         "  run       place and simulate; print the paper's metrics\n"
         "common flags: --scheme pbp|opp|cpp --alpha A --m M --seed S\n"
         "  --libraries N --drives D --tapes T --capacity-gb C\n"
         "  --objects N --requests N --avg-request-gb G --simulated N\n"
         "  --locality L --groups G --k K --out PREFIX --log FILE\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Options options = parse(argc, argv, 2);
    if (command == "info") return cmd_info(options);
    if (command == "workload") return cmd_workload(options);
    if (command == "place") return cmd_place(options);
    if (command == "run") return cmd_run(options);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "tapesim: " << e.what() << "\n";
    return 1;
  }
}
