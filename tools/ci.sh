#!/usr/bin/env bash
# Minimal CI gate: release build + tier-1 tests, then the same suite under
# ASan+UBSan and under TSan. Run from anywhere; builds land in <repo>/build,
# <repo>/build-asan, and <repo>/build-tsan (the CMake presets' binary dirs).
#
#   tools/ci.sh            # release + both sanitizer passes
#   tools/ci.sh --fast     # release pass only
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> release build + tier1 tests"
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --test-dir build -L tier1 --output-on-failure -j "$jobs"

echo "==> overload storm bench self-check (tier2-overload)"
ctest --test-dir build -L tier2-overload --output-on-failure

if [[ "${1:-}" == "--fast" ]]; then
  echo "==> done (fast mode: sanitizer pass skipped)"
  exit 0
fi

# The sanitizer presets build tests only (benches are release-preset
# artifacts); the deadline-cancellation paths the storm bench exercises
# are covered here by the tier1 sched overload tests.
echo "==> asan+ubsan build + tier1 tests"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --test-dir build-asan -L tier1 --output-on-failure -j "$jobs"

echo "==> tsan build + tier1 tests"
cmake --preset tsan
cmake --build --preset tsan -j "$jobs"
ctest --test-dir build-tsan -L tier1 --output-on-failure -j "$jobs"

echo "==> done"
