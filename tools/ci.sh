#!/usr/bin/env bash
# Minimal CI gate: release build + tier-1 tests, then the same suite under
# ASan+UBSan and under TSan. Run from anywhere; builds land in <repo>/build,
# <repo>/build-asan, and <repo>/build-tsan (the CMake presets' binary dirs).
#
#   tools/ci.sh            # release + both sanitizer passes
#   tools/ci.sh --fast     # release pass only
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> release build + tier1 tests"
cmake --preset default
cmake --build --preset default -j "$jobs"
ctest --test-dir build -L tier1 --output-on-failure -j "$jobs"

echo "==> overload storm bench self-check (tier2-overload)"
ctest --test-dir build -L tier2-overload --output-on-failure

echo "==> scrub durability bench self-check (tier2-scrub)"
ctest --test-dir build -L tier2-scrub --output-on-failure

echo "==> outage recovery bench self-check (tier2-outage)"
ctest --test-dir build -L tier2-outage --output-on-failure

echo "==> fail-slow mitigation bench self-check (tier2-failslow)"
ctest --test-dir build -L tier2-failslow --output-on-failure

echo "==> crash recovery bench self-check (tier2-crash)"
ctest --test-dir build -L tier2-crash --output-on-failure

echo "==> metastable governor bench self-check (tier2-metastable)"
ctest --test-dir build -L tier2-metastable --output-on-failure

# Perf scenario + regression gate against results/perf/ baselines. Release
# tree only: sanitizer builds skew every wall/RSS number the gate reads.
echo "==> perf scenario + regression gate (tier2-perf)"
ctest --test-dir build -L tier2-perf --output-on-failure

if [[ "${1:-}" == "--fast" ]]; then
  echo "==> done (fast mode: sanitizer pass skipped)"
  exit 0
fi

# The sanitizer presets build tests only by default (benches are
# release-preset artifacts); the scrub/evacuation, outage/DR,
# fail-slow/hedging, crash-recovery, and governor/metastable machinery is
# timing-heavy enough that their bench self-checks earn a sanitized run
# too, so the bench build is switched back on here and tier2-scrub,
# tier2-outage, tier2-failslow, tier2-crash, and tier2-metastable ride
# along with tier1. The perf-compares are excluded: sanitizer wall/RSS
# numbers are meaningless against release baselines.
echo "==> asan+ubsan build + tier1 + tier2-scrub/outage/failslow/crash/metastable tests"
cmake --preset asan-ubsan -DTAPESIM_BUILD_BENCH=ON
cmake --build --preset asan-ubsan -j "$jobs"
ctest --test-dir build-asan \
  -L 'tier1|tier2-scrub|tier2-outage|tier2-failslow|tier2-crash|tier2-metastable' \
  -E 'outage_perf_compare|failslow_perf_compare|crash_perf_compare|metastable_perf_compare' \
  --output-on-failure -j "$jobs"

echo "==> tsan build + tier1 + tier2-scrub/outage/failslow/crash/metastable tests"
cmake --preset tsan -DTAPESIM_BUILD_BENCH=ON
cmake --build --preset tsan -j "$jobs"
ctest --test-dir build-tsan \
  -L 'tier1|tier2-scrub|tier2-outage|tier2-failslow|tier2-crash|tier2-metastable' \
  -E 'outage_perf_compare|failslow_perf_compare|crash_perf_compare|metastable_perf_compare' \
  --output-on-failure -j "$jobs"

echo "==> done"
