// Perf-regression gate over two BENCH_*.json reports (obs::PerfReport).
//
// Compares a current report against a committed baseline field by field:
// wall-clock, events/sec, and peak RSS against generous machine-noise
// bands, deterministic sim KPIs against a tight band. Prints one verdict
// line per field and exits 1 when anything regressed — this is what CI's
// tier2-perf label runs after re-generating a report with `--fast`.
//
// Usage: bench_compare BASELINE.json CURRENT.json [options]
//   --wall-frac=F  allowed relative wall-clock growth   (default 0.35)
//   --rss-frac=F   allowed relative peak-RSS growth     (default 0.35)
//   --rate-frac=F  allowed relative events/sec drop     (default 0.25)
//   --kpi-frac=F   allowed relative sim-KPI drift       (default 1e-6)
// Exit status: 0 no regression, 1 regression, 2 usage or load error.
#include <charconv>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "obs/perf.hpp"
#include "util/table.hpp"

namespace {

int usage_error(const std::string& message) {
  std::cerr << "bench_compare: " << message << "\n"
            << "usage: bench_compare BASELINE.json CURRENT.json"
            << " [--wall-frac=F] [--rss-frac=F] [--rate-frac=F]"
            << " [--kpi-frac=F]\n";
  return 2;
}

bool parse_fraction(const std::string& text, double* out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc{} && ptr == end && *out >= 0.0;
}

bool flag_value(const std::string& arg, const char* flag, std::string* out) {
  const std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using tapesim::Table;
  using tapesim::obs::PerfReport;
  using tapesim::obs::PerfThresholds;

  std::vector<std::string> paths;
  PerfThresholds thresholds;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    double* target = nullptr;
    if (flag_value(arg, "--wall-frac", &value)) {
      target = &thresholds.wall_frac;
    } else if (flag_value(arg, "--rss-frac", &value)) {
      target = &thresholds.rss_frac;
    } else if (flag_value(arg, "--rate-frac", &value)) {
      target = &thresholds.rate_frac;
    } else if (flag_value(arg, "--kpi-frac", &value)) {
      target = &thresholds.kpi_frac;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage_error("unknown option: " + arg);
    } else {
      paths.push_back(arg);
      continue;
    }
    if (!parse_fraction(value, target)) {
      return usage_error("bad value for " + arg);
    }
  }
  if (paths.size() != 2) {
    return usage_error("expected exactly two report files");
  }

  const auto baseline = PerfReport::load(paths[0]);
  if (!baseline) return usage_error("cannot load baseline " + paths[0]);
  const auto current = PerfReport::load(paths[1]);
  if (!current) return usage_error("cannot load current " + paths[1]);
  if (baseline->bench != current->bench) {
    return usage_error("reports are from different benches: '" +
                       baseline->bench + "' vs '" + current->bench + "'");
  }

  const auto deltas = compare_perf(*baseline, *current, thresholds);
  std::cout << "bench: " << baseline->bench << " (" << paths[0] << " -> "
            << paths[1] << ")\n";
  Table table({"field", "baseline", "current", "threshold", "change",
               "verdict"});
  for (const auto& d : deltas) {
    table.add(d.field, fmt(d.baseline), fmt(d.current),
              d.threshold != 0.0 ? fmt(d.threshold) : "-",
              fmt(d.change_frac * 100.0) + "%",
              std::string(d.regression ? "REGRESSION: " : "ok: ") + d.detail);
  }
  table.print(std::cout);

  // Every failing field on its own line, so a multi-field regression is
  // diagnosed from one run instead of a fix-rerun-fix loop.
  std::size_t failed = 0;
  for (const auto& d : deltas) {
    if (!d.regression) continue;
    if (failed++ == 0) std::cout << "\nfailing fields:\n";
    std::cout << "  REGRESSION " << d.field << ": expected "
              << (d.current >= d.threshold ? "<= " : ">= ")
              << fmt(d.threshold) << ", actual " << fmt(d.current)
              << " (baseline " << fmt(d.baseline) << ") -- " << d.detail
              << "\n";
  }

  if (tapesim::obs::has_regression(deltas)) {
    std::cout << "\nRESULT: REGRESSION (" << failed << " of "
              << deltas.size() << " fields failed)\n";
    return 1;
  }
  std::cout << "\nRESULT: OK\n";
  return 0;
}
