// Scrub durability: foreground latent-error exposure and unavailability
// vs decay rate x scrub interval x evacuation threshold.
//
// Latent media decay silently damages cartridges on a per-cartridge
// renewal timeline; nothing escalates until a read trips over the damage.
// Each sweep cell replays the same request sequence against a fresh
// simulator on the same parallel-batch plan (no plan replication — every
// object starts with exactly one copy) under one integrity posture:
//   - off:        decay accrues, only foreground reads ever observe it
//   - scrub:      idle drives run background verification passes that
//                 surface damage before foreground reads hit it
//   - scrub+evac: scrubbing plus health-driven evacuation — cartridges
//                 scoring below threshold are drained through the repair
//                 copy path and retired before they decay to Lost
//
// Built-in self-checks (exit status), on the harshest decay cell:
//   1. Scrubbing strictly reduces the fraction of requests that run into
//      latent damage (the no-scrub cell must see a nonzero fraction).
//   2. Evacuation strictly reduces unavailable bytes vs scrub-only (with
//      one copy per object, a cartridge observed to Lost takes its bytes
//      out of service; evacuation must preempt some of that).
//   3. Bounded foreground cost: the scrub+evac p99 served response stays
//      within 2x of the no-scrub cell's p99.
//   4. The obs counters scrub.{passes,verified_bytes,latent_found},
//      evac.{started,objects_moved,preempted_unavailables}, and
//      fault.latent_{events,observed} reconcile exactly with ScrubStats,
//      EvacStats, and the injector's own counters on a traced run.
#include <map>
#include <span>
#include <sstream>
#include <vector>

#include "core/parallel_batch.hpp"
#include "figure_common.hpp"
#include "obs/perf.hpp"
#include "obs/profiler.hpp"
#include "util/rng.hpp"

namespace {

using namespace tapesim;

struct Bench {
  tape::SystemSpec spec = tape::SystemSpec::paper_default();
  workload::Workload workload;
  cluster::ObjectClusters clusters;
  core::PlacementPlan plan;
  std::uint64_t seed;
  Seconds mean_service{};

  explicit Bench(std::uint64_t seed_in)
      : workload(make_workload(seed_in)),
        clusters(cluster::cluster_by_requests(workload,
                                              make_constraints(spec))),
        plan(make_plan()),
        seed(seed_in) {
    mean_service = calibrate();
  }

  static workload::Workload make_workload(std::uint64_t seed) {
    workload::WorkloadConfig config = workload::WorkloadConfig::paper_default();
    config.num_objects = 4'000;
    Rng rng{seed};
    Rng workload_rng = rng.fork(0x574C);  // Experiment's workload substream
    return workload::generate_workload(config, workload_rng);
  }

  static cluster::ClusterConstraints make_constraints(
      const tape::SystemSpec& spec) {
    cluster::ClusterConstraints constraints;
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        0.9 * spec.library.tape_capacity.as_double())};
    return constraints;
  }

  core::PlacementPlan make_plan() const {
    const core::ParallelBatchPlacement scheme{core::ParallelBatchParams{}};
    core::PlacementContext context;
    context.workload = &workload;
    context.spec = &spec;
    context.clusters = &clusters;
    return scheme.place(context);
  }

  /// Mean sequential response over a short fault-free sample — the
  /// foreground-time scale the decay rates and scrub cadences are
  /// expressed in.
  Seconds calibrate() const {
    sched::RetrievalSimulator sim(plan);
    Rng rng{seed};
    Rng sample_rng = rng.fork(0x5251);
    const workload::RequestSampler sampler(workload);
    SampleSet service;
    for (int i = 0; i < 30; ++i) {
      service.add(sim.run_request(sampler.sample(sample_rng)).response.count());
    }
    return Seconds{service.mean()};
  }
};

struct CellResult {
  metrics::ExperimentMetrics metrics;
  sched::ScrubStats scrub;
  sched::EvacStats evac;
  fault::FaultCounters fault;
  Seconds engine_end{};  ///< Engine clock after the last request drained.
};

/// Replays the request sequence against a fresh simulator. With a nonzero
/// `gap` the requests arrive on a fixed schedule (i * gap): the engine idles
/// forward between them, so every posture — scrubbing or not — lives
/// through the same wall-clock horizon and faces comparable decay. Decay is
/// keyed to the engine clock; back-to-back replay (gap 0) would let a
/// scrubbing cell age ten times faster than its no-scrub baseline purely
/// because verification passes drain between requests.
CellResult run_cell(const Bench& bench, std::span<const RequestId> requests,
                    Seconds gap, const fault::FaultConfig& faults,
                    const sched::ScrubConfig& scrub,
                    const sched::EvacuationConfig& evac,
                    const sched::RepairConfig& repair = {},
                    obs::Tracer* tracer = nullptr,
                    obs::Profiler* profiler = nullptr) {
  sched::SimulatorConfig config;
  config.faults = faults;
  config.scrub = scrub;
  config.evacuation = evac;
  config.repair = repair;
  config.tracer = tracer;
  if (const Status st = config.try_validate(); !st.ok()) {
    std::cerr << st.message() << "\n";
    std::exit(2);
  }
  sched::RetrievalSimulator sim(bench.plan, config);
  if (profiler != nullptr) profiler->attach(sim.engine());
  CellResult cell;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Seconds arrival = gap * static_cast<double>(i);
    if (sim.engine().now() < arrival) {
      sim.engine().schedule_at(arrival, [] {});
      sim.engine().run();
    }
    cell.metrics.add(sim.run_request(requests[i]));
  }
  cell.engine_end = sim.engine().now();
  if (profiler != nullptr) profiler->detach();
  cell.scrub = sim.scrub_stats();
  cell.evac = sim.evac_stats();
  if (const fault::FaultInjector* inj = sim.fault_injector()) {
    cell.fault = inj->counters();
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = benchfig::BenchFlags::parse(
      argc, argv, /*default_seed=*/42, "scrub_durability.csv");
  if (!flags.status.ok()) {
    std::cerr << flags.status.message() << "\n";
    return 2;
  }
  if (flags.help) {
    std::cout << benchfig::BenchFlags::usage(argv[0]);
    return 0;
  }
  benchfig::print_header(
      "Scrub durability",
      "foreground latent-error exposure and unavailability vs decay rate x "
      "scrub interval x evacuation threshold (parallel batch placement, one "
      "copy per object)");

  // Wall/events accounting for the --perf-out report. The profiler only
  // observes wall clocks, so attaching it cannot change any sim result.
  const obs::WallTimer total_timer;
  // 1-in-64 dispatch sampling keeps the attached profiler from skewing
  // the wall numbers the perf report records (totals stay exact).
  obs::Profiler perf_profiler{64};
  obs::Profiler* const perf =
      flags.perf_out.empty() ? nullptr : &perf_profiler;

  const Bench bench(flags.seed);
  const double service = bench.mean_service.count();
  std::cout << "calibrated mean service: " << service << " s\n\n";

  const std::uint32_t count = flags.fast ? 80 : 160;
  // Foreground-time horizon; the probe below measures how far full-cadence
  // scrubbing stretches it.
  const double horizon = service * count;

  // The default escalation loses a cartridge at five observed events.
  // 0.65 evacuates at the fourth (score 1 - 4*0.1 = 0.6 <= 0.65) — one
  // event from death, so evacuation saves exactly the cartridges about to
  // die without churning the merely-blemished. 0.85 is the eager
  // comparison point: evacuate at the second event.
  const double thresholds_full[] = {0.65, 0.85};
  const double thresholds_fast[] = {0.65};
  const std::span<const double> thresholds =
      flags.fast ? std::span<const double>(thresholds_fast)
                 : std::span<const double>(thresholds_full);

  // One request sequence, replayed into every cell.
  std::vector<RequestId> requests;
  {
    Rng rng{flags.seed};
    Rng req_rng = rng.fork(0x5343);  // scrub-bench request substream
    const workload::RequestSampler sampler(bench.workload);
    requests.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      requests.push_back(sampler.sample(req_rng));
    }
  }

  const auto fault_point = [&](double mtbf) {
    fault::FaultConfig faults;
    faults.latent_decay_mtbf = Seconds{mtbf};
    return faults;
  };
  const auto scrub_point = [&](double interval) {
    sched::ScrubConfig scrub;
    scrub.enabled = true;
    scrub.interval = Seconds{interval};
    // Verification throughput is the binding constraint: a full-tape pass
    // moves hundreds of GB, so the sweep runs passes near full rate on
    // several of the 24 drives at once to keep the per-cartridge cadence
    // ahead of the foreground's own observation rate.
    scrub.bandwidth_fraction = 0.8;
    scrub.max_concurrent = 4;
    // Small segments bound how long a scrubbing drive holds out against a
    // foreground request that wants it (self-check 3 depends on this).
    scrub.segment = Bytes{std::uint64_t{2} << 30};
    return scrub;
  };
  const auto evac_point = [&](double threshold) {
    sched::EvacuationConfig evac;
    evac.enabled = true;
    evac.threshold = threshold;
    return evac;
  };
  // Evacuation copies ride the repair engine; its defaults (one job at a
  // time, quarter-rate pacing) are tuned for trickle re-replication, not
  // for draining a whole cartridge ahead of its next decay event. Let the
  // copies use idle drives at full rate so a drain finishes well inside
  // one arrival gap.
  const auto evac_repair_point = [&] {
    sched::RepairConfig repair;
    repair.bandwidth_fraction = 1.0;
    repair.max_concurrent = 4;
    return repair;
  };

  // Probe how far full-cadence scrubbing stretches the engine clock when
  // requests arrive back to back: same request sequence, every tape always
  // due, decay too slow to ever fire. The probe's horizon sizes the
  // arrival gap every measured cell uses, so the no-scrub baseline idles
  // across the same wall-clock span the scrub cells need for their passes.
  const double engine_horizon =
      run_cell(bench, requests, Seconds{}, fault_point(horizon * 1e6),
               scrub_point(horizon / 10.0), {})
          .engine_end.count();
  // 25% slack on top of the probed per-request cost so individual drains
  // (scrub passes, evacuation copies) rarely slip past their gap — slip
  // would advance one cell's clock beyond the others' and expose it to
  // extra decay the comparison should not contain.
  const Seconds gap{1.25 * engine_horizon / count};
  const double span = gap.count() * count;
  std::cout << "probed scrub-mode engine horizon: " << engine_horizon
            << " s (foreground " << horizon << " s); arrival gap "
            << gap.count() << " s\n\n";

  const double intervals_full[] = {span / 40.0, span / 8.0};
  const double intervals_fast[] = {span / 40.0};
  const std::span<const double> intervals =
      flags.fast ? std::span<const double>(intervals_fast)
                 : std::span<const double>(intervals_full);

  // Harsh first — that cell carries the self-checks. Decay intensity is
  // absolute (an event every ~32 gaps per cartridge), not a fraction of
  // the run: per-request dynamics — how large the folds a cold cartridge
  // accumulates between observations get, and whether evacuation can slip
  // in between the fourth event and the fatal fifth — must not soften just
  // because the full sweep replays twice as many requests. Over the fast
  // run a cartridge accrues ~2.5 events; the Poisson tail crosses the
  // Lost threshold of five, while evacuation still has mostly-healthy
  // cartridges to drain onto. The mild rate rarely threatens anything.
  const double decay_mtbfs_full[] = {32.0 * gap.count(), 128.0 * gap.count()};
  const double decay_mtbfs_fast[] = {32.0 * gap.count()};
  const std::span<const double> decay_mtbfs =
      flags.fast ? std::span<const double>(decay_mtbfs_fast)
                 : std::span<const double>(decay_mtbfs_full);

  Table table({"decay mtbf (s)", "mode", "interval (s)", "thresh",
               "latent-hit frac", "unavail frac", "p99 served (s)", "passes",
               "aborted", "verified GB", "latent found", "evacs", "moved",
               "preempted", "engine end (s)"});
  const auto add_row = [&](double mtbf, const char* mode, double interval,
                           double threshold, const CellResult& cell) {
    table.add(mtbf, mode, interval, threshold,
              cell.metrics.fraction_latent_hit(),
              cell.metrics.fraction_unavailable(),
              cell.metrics.served_response_samples().percentile(99.0),
              cell.scrub.passes, cell.scrub.passes_aborted,
              static_cast<double>(cell.scrub.bytes_verified) / 1e9,
              cell.scrub.latent_found, cell.evac.started,
              cell.evac.objects_moved, cell.evac.preempted_unavailables,
              cell.engine_end.count());
  };

  bool exposure_ok = true;
  bool unavail_ok = true;
  bool tail_ok = true;
  bool reconcile_ok = true;
  // Headline KPIs for the perf report: the traced harsh-decay cell the
  // self-checks gate, plus its no-scrub baseline.
  std::map<std::string, double> kpis;
  const double harsh_mtbf = decay_mtbfs[0];
  const double check_interval = intervals[0];
  const double check_threshold = thresholds[0];

  for (const double mtbf : decay_mtbfs) {
    const fault::FaultConfig faults = fault_point(mtbf);
    const CellResult off =
        run_cell(bench, requests, gap, faults, {}, {}, {}, nullptr, perf);
    add_row(mtbf, "off", 0.0, 0.0, off);

    CellResult scrub_checked;  // the (harsh, check_interval) scrub-only cell
    for (const double interval : intervals) {
      const CellResult scrubbed =
          run_cell(bench, requests, gap, faults, scrub_point(interval), {},
                   {}, nullptr, perf);
      add_row(mtbf, "scrub", interval, 0.0, scrubbed);
      if (mtbf == harsh_mtbf && interval == check_interval) {
        scrub_checked = scrubbed;
      }
    }

    for (const double threshold : thresholds) {
      const bool traced = mtbf == harsh_mtbf &&
                          threshold == check_threshold;
      obs::Tracer tracer;
      if (traced) {
        // This is the cell whose telemetry is written below, so it gets
        // the full configuration (cadence + optional windowed timeseries).
        flags.trace.configure(tracer);
      } else if (flags.trace.sample_every > 0.0) {
        tracer.set_sample_cadence(Seconds{flags.trace.sample_every});
      }
      const CellResult cell =
          run_cell(bench, requests, gap, faults, scrub_point(check_interval),
                   evac_point(threshold), evac_repair_point(),
                   traced ? &tracer : nullptr, perf);
      add_row(mtbf, "scrub+evac", check_interval, threshold, cell);

      if (traced) {
        // Self-check 1: scrubbing shrinks the undetected-damage window a
        // foreground read can fall into. Meaningless if the no-scrub cell
        // never hit damage, so require that too.
        const double hit_off = off.metrics.fraction_latent_hit();
        const double hit_scrub = scrub_checked.metrics.fraction_latent_hit();
        if (!(hit_off > 0.0) || !(hit_scrub < hit_off)) {
          std::cout << "EXPOSURE FAIL: latent-hit fraction " << hit_scrub
                    << " with scrubbing vs " << hit_off << " without\n";
          exposure_ok = false;
        }
        // Self-check 2: evacuation preempts unavailability. Scrub-only
        // observes cartridges to Lost and, with one copy per object, their
        // bytes leave service; evacuation must save a strict share.
        const double un_scrub = scrub_checked.metrics.fraction_unavailable();
        const double un_evac = cell.metrics.fraction_unavailable();
        if (!(un_scrub > 0.0) || !(un_evac < un_scrub)) {
          std::cout << "UNAVAIL FAIL: unavailable fraction " << un_evac
                    << " with evacuation vs " << un_scrub
                    << " scrub-only\n";
          unavail_ok = false;
        }
        // Self-check 3: background verification and drains stay behind the
        // foreground — bounded tail cost for served requests.
        const double p99_off =
            off.metrics.served_response_samples().percentile(99.0);
        const double p99_evac =
            cell.metrics.served_response_samples().percentile(99.0);
        if (!(p99_evac <= 2.0 * p99_off)) {
          std::cout << "TAIL FAIL: p99 served " << p99_evac
                    << " s with scrub+evac vs " << p99_off
                    << " s without (cap 2x)\n";
          tail_ok = false;
        }
        // Self-check 4: obs counters == scheduler stats, exactly.
        auto& reg = tracer.registry();
        const bool scrub_counters =
            reg.counter("scrub.passes").value() == cell.scrub.passes &&
            reg.counter("scrub.verified_bytes").value() ==
                cell.scrub.bytes_verified &&
            reg.counter("scrub.latent_found").value() ==
                cell.scrub.latent_found;
        const bool evac_counters =
            reg.counter("evac.started").value() == cell.evac.started &&
            reg.counter("evac.objects_moved").value() ==
                cell.evac.objects_moved &&
            reg.counter("evac.preempted_unavailables").value() ==
                cell.evac.preempted_unavailables;
        const bool fault_counters =
            reg.counter("fault.latent_events").value() ==
                cell.fault.latent_events &&
            reg.counter("fault.latent_observed").value() ==
                cell.fault.latent_observed;
        if (!scrub_counters || !evac_counters || !fault_counters) {
          std::cout << "RECONCILE FAIL: scrub " << scrub_counters << " evac "
                    << evac_counters << " fault " << fault_counters << "\n";
          reconcile_ok = false;
        }
        if (flags.trace.enabled()) flags.trace.finish(tracer);
        kpis["scrub.latent_hit_frac_off"] = hit_off;
        kpis["scrub.latent_hit_frac"] =
            cell.metrics.fraction_latent_hit();
        kpis["scrub.unavail_frac"] = un_evac;
        kpis["scrub.p99_served_s"] = p99_evac;
        kpis["scrub.passes"] = static_cast<double>(cell.scrub.passes);
      }
    }
  }

  benchfig::print_table(table, flags.out);

  std::cout << "exposure self-check: " << (exposure_ok ? "OK" : "FAIL")
            << " (scrubbing strictly reduces the latent-hit request "
               "fraction at the harsh decay rate)\n";
  std::cout << "unavailability self-check: " << (unavail_ok ? "OK" : "FAIL")
            << " (evacuation strictly reduces unavailable bytes vs "
               "scrub-only)\n";
  std::cout << "tail self-check: " << (tail_ok ? "OK" : "FAIL")
            << " (scrub+evac p99 served response within 2x of no-scrub)\n";
  std::cout << "reconcile self-check: " << (reconcile_ok ? "OK" : "FAIL")
            << " (scrub.*, evac.*, fault.latent_* counters match ScrubStats, "
               "EvacStats, and FaultCounters exactly)\n";

  if (!flags.perf_out.empty()) {
    const obs::ProfileReport profile = perf_profiler.report();
    obs::PerfReport report;
    report.bench = "scrub_durability";
    report.wall_s = total_timer.elapsed_s();
    report.events_dispatched = profile.dispatches;
    report.events_per_s = profile.events_per_wall_s();
    report.peak_rss_bytes = obs::peak_rss_bytes();
    report.kpis = kpis;
    report.kpis["fast"] = flags.fast ? 1.0 : 0.0;
    report.kpis["calibrated_service_s"] = service;
    std::ostringstream profile_os;
    perf_profiler.write_json(profile_os);
    report.profile_json = profile_os.str();
    if (!report.save(flags.perf_out)) {
      std::cerr << "cannot write perf report to " << flags.perf_out << "\n";
      return 1;
    }
    std::cout << "(perf report written to " << flags.perf_out << ")\n";
  }
  return (exposure_ok && unavail_ok && tail_ok && reconcile_ok) ? 0 : 1;
}
