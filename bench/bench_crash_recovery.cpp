// Crash recovery: metadata durability, replay cost, and lost-mutation
// exposure vs crash rate × checkpoint interval × fsync policy.
//
// The catalog journal logs every metadata mutation on a simulated log
// device; a crash timeline takes the metadata server down and recovery
// replays snapshot + surviving log while foreground admissions park. Each
// sweep cell replays the same request sequence on the paper-default fleet
// (parallel batch placement wrapped in 2-way replication, media errors +
// background repair supplying a steady mutation stream) under one
// durability posture and reports crashes, checkpoints, replayed/lost
// records, metadata RTO, and downtime.
//
// Built-in self-checks (exit status):
//   1. Sync equivalence: on every synchronous-fsync cell no mutation is
//      ever lost and the durable state replays to a catalog exactly equal
//      to the live (never-crashed) one. The simulator additionally asserts
//      this at every single crash — a violation aborts the bench.
//   2. Replay scaling: per-crash recovery time follows the linear cost
//      model exactly (base + replay x records + reconcile x lost), and a
//      tight checkpoint cadence replays measurably fewer records — and
//      recovers measurably faster — than checkpointing never, on the same
//      crash timeline.
//   3. Ledger reconciliation: on a traced cell the recovery.* registry
//      instruments, the scheduler's RecoveryStats, the journal's own
//      ledger, and the injector's crash counter agree exactly, and every
//      appended record is truncated, lost, or still live (conservation).
//   4. Baseline identity: with the journal and crashes off — even with
//      every other durability knob armed — a faulty run is bit-identical
//      to the default config, request by request, engine clock included.
#include <map>
#include <span>
#include <sstream>
#include <vector>

#include "core/parallel_batch.hpp"
#include "core/replication.hpp"
#include "figure_common.hpp"
#include "obs/perf.hpp"
#include "obs/profiler.hpp"
#include "util/rng.hpp"

namespace {

using namespace tapesim;

struct Bench {
  tape::SystemSpec spec = tape::SystemSpec::paper_default();
  workload::Workload workload;
  cluster::ObjectClusters clusters;
  std::uint64_t seed;

  explicit Bench(std::uint64_t seed_in)
      : workload(make_workload(seed_in)),
        clusters(cluster::cluster_by_requests(workload,
                                              make_constraints(spec))),
        seed(seed_in) {
    clusters.validate(workload);
  }

  static workload::Workload make_workload(std::uint64_t seed) {
    workload::WorkloadConfig config = workload::WorkloadConfig::paper_default();
    config.num_objects = 2'000;
    Rng rng{seed};
    Rng workload_rng = rng.fork(0x574C);  // Experiment's workload substream
    return workload::generate_workload(config, workload_rng);
  }

  static cluster::ClusterConstraints make_constraints(
      const tape::SystemSpec& spec) {
    cluster::ClusterConstraints constraints;
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        0.9 * spec.library.tape_capacity.as_double())};
    return constraints;
  }

  [[nodiscard]] core::PlacementPlan make_plan() const {
    const core::ParallelBatchPlacement inner{core::ParallelBatchParams{}};
    core::PlacementContext context;
    context.workload = &workload;
    context.spec = &spec;
    context.clusters = &clusters;
    core::ReplicationPolicy::Params rp;
    rp.replicas = 2;
    return core::ReplicationPolicy(inner, rp).place(context);
  }
};

struct CellResult {
  sched::RecoveryStats recovery;
  catalog::JournalStats journal;
  std::uint64_t live_records = 0;
  std::uint64_t injector_crashes = 0;
  Seconds engine_end{};
  bool durable_equals_live = false;  ///< replay() == live catalog at end
  bool conserve_ok = false;          ///< appends == truncated + lost + live
};

CellResult run_cell(const core::PlacementPlan& plan,
                    std::span<const RequestId> requests,
                    const fault::FaultConfig& faults,
                    const catalog::JournalConfig& journal,
                    obs::Tracer* tracer = nullptr,
                    obs::Profiler* profiler = nullptr) {
  sched::SimulatorConfig config;
  config.faults = faults;
  config.journal = journal;
  config.repair.enabled = true;
  config.tracer = tracer;
  if (const Status st = config.try_validate(); !st.ok()) {
    std::cerr << st.message() << "\n";
    std::exit(2);
  }
  sched::RetrievalSimulator sim(plan, config);
  if (profiler != nullptr) profiler->attach(sim.engine());
  for (const RequestId r : requests) sim.run_request(r);
  sim.drain_repairs();
  if (profiler != nullptr) profiler->detach();
  CellResult cell;
  cell.recovery = sim.recovery_stats();
  cell.engine_end = sim.engine().now();
  if (sim.fault_injector() != nullptr) {
    cell.injector_crashes = sim.fault_injector()->counters().metadata_crashes;
  }
  if (catalog::Journal* j = sim.journal(); j != nullptr) {
    cell.journal = j->stats();
    cell.live_records = j->live_records();
    cell.durable_equals_live = j->replay().equals(sim.catalog());
    cell.conserve_ok = cell.journal.appends ==
                       cell.journal.records_truncated +
                           cell.journal.records_lost + cell.live_records;
  }
  return cell;
}

/// Self-check 4: journal and crashes off — other knobs armed — must not
/// perturb a single event of a faulty run.
bool crash_off_identical(const core::PlacementPlan& plan,
                         std::span<const RequestId> requests,
                         const fault::FaultConfig& base_faults) {
  sched::SimulatorConfig plain;
  plain.faults = base_faults;
  sched::SimulatorConfig armed = plain;
  armed.journal.fsync = catalog::FsyncPolicy::kGroupCommit;
  armed.journal.group_window = Seconds{0.01};
  armed.journal.checkpoint_interval = Seconds{120.0};
  armed.journal.recovery_base = Seconds{777.0};
  armed.faults.crash.torn_tail = false;
  sched::RetrievalSimulator a(plan, plain);
  sched::RetrievalSimulator b(plan, armed);
  for (const RequestId r : requests) {
    const auto oa = a.run_request(r);
    const auto ob = b.run_request(r);
    if (oa.response.count() != ob.response.count() ||
        oa.seek.count() != ob.seek.count() ||
        oa.transfer.count() != ob.transfer.count() ||
        oa.status != ob.status ||
        a.engine().now().count() != b.engine().now().count()) {
      std::cout << "IDENTITY FAIL: request " << r.value()
                << " diverges with an armed-but-disabled JournalConfig\n";
      return false;
    }
  }
  a.drain_repairs();
  b.drain_repairs();
  if (a.engine().now().count() != b.engine().now().count()) {
    std::cout << "IDENTITY FAIL: engine clocks diverge after drain\n";
    return false;
  }
  return b.journal() == nullptr && b.recovery_stats().crashes == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = benchfig::BenchFlags::parse(
      argc, argv, /*default_seed=*/42, "crash_recovery.csv");
  if (!flags.status.ok()) {
    std::cerr << flags.status.message() << "\n";
    return 2;
  }
  if (flags.help) {
    std::cout << benchfig::BenchFlags::usage(argv[0]);
    return 0;
  }
  benchfig::print_header(
      "Crash recovery",
      "metadata durability, replay cost, and lost-mutation exposure vs "
      "crash rate x checkpoint interval x fsync policy (parallel batch "
      "placement, r = 2, background repair)");

  const obs::WallTimer total_timer;
  obs::Profiler perf_profiler{64};
  obs::Profiler* const perf =
      flags.perf_out.empty() ? nullptr : &perf_profiler;

  const Bench bench(flags.seed);
  const core::PlacementPlan plan = bench.make_plan();

  // One request sequence, replayed into every cell.
  const std::uint32_t count = flags.fast ? 100 : 200;
  std::vector<RequestId> requests;
  {
    Rng rng{flags.seed};
    Rng req_rng = rng.fork(0x4A52);  // crash-bench request substream
    const workload::RequestSampler sampler(bench.workload);
    requests.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      requests.push_back(sampler.sample(req_rng));
    }
  }

  // Media errors + repair make the mutation stream (health escalations and
  // replica re-inserts) the journal has to keep durable.
  const auto base_faults = [] {
    fault::FaultConfig faults;
    faults.media_error_per_gb = 0.002;
    return faults;
  };

  // Probe the fault-free engine horizon: the crash MTBF axis is expressed
  // in fractions of the time the request sequence actually spans.
  const double horizon =
      run_cell(plan, requests, base_faults(), {}).engine_end.count();
  std::cout << "probed fault-free engine horizon: " << horizon << " s\n\n";

  // Harsh first — those cells carry the self-checks: a metadata MTBF of a
  // quarter horizon yields ~4 crashes per run. Checkpoint cadence: "tight"
  // snapshots ~25x per run, "never" (interval 0) only checkpoints as part
  // of recovery itself, so replay length grows with the crash gap.
  const double mtbfs_full[] = {horizon / 4.0, horizon};
  const double mtbfs_fast[] = {horizon / 4.0};
  const std::span<const double> mtbfs =
      flags.fast ? std::span<const double>(mtbfs_fast)
                 : std::span<const double>(mtbfs_full);
  const double tight_interval = horizon / 25.0;
  const double ckpt_intervals[] = {tight_interval, 0.0};
  const catalog::FsyncPolicy policies[] = {catalog::FsyncPolicy::kSync,
                                           catalog::FsyncPolicy::kGroupCommit,
                                           catalog::FsyncPolicy::kAsync};

  const auto crash_point = [&](double mtbf) {
    fault::FaultConfig faults = base_faults();
    faults.crash.metadata_mtbf = Seconds{mtbf};
    return faults;
  };
  const auto journal_point = [&](catalog::FsyncPolicy policy,
                                 double interval) {
    catalog::JournalConfig journal;
    journal.enabled = true;
    journal.fsync = policy;
    journal.group_window = Seconds{60.0};
    journal.async_flush = Seconds{300.0};
    journal.checkpoint_interval = Seconds{interval};
    return journal;
  };

  Table table({"mtbf (s)", "fsync", "ckpt (s)", "crashes", "ckpts",
               "appends", "replayed", "lost", "reconciled", "rto mean (s)",
               "snap age (s)", "downtime (s)", "parked"});
  const auto add_row = [&](double mtbf, catalog::FsyncPolicy policy,
                           double interval, const CellResult& cell) {
    table.add(mtbf, catalog::to_string(policy), interval,
              cell.recovery.crashes, cell.recovery.checkpoints,
              cell.journal.appends, cell.recovery.records_replayed,
              cell.recovery.lost_mutations,
              cell.recovery.reconciled_mutations,
              cell.recovery.rto.count() > 0 ? cell.recovery.rto.mean() : 0.0,
              cell.recovery.snapshot_age.count() > 0
                  ? cell.recovery.snapshot_age.mean()
                  : 0.0,
              cell.recovery.downtime.count(),
              cell.recovery.admissions_parked);
  };

  bool sync_ok = true;
  bool scaling_ok = true;
  bool reconcile_ok = true;
  std::map<std::string, double> kpis;
  const double harsh_mtbf = mtbfs[0];
  // The cost model the per-crash RTO must follow exactly (self-check 2).
  const catalog::JournalConfig cost_model = journal_point(policies[0], 0.0);
  const auto check_linear_model = [&](const CellResult& cell) {
    const double predicted =
        cost_model.recovery_base.count() *
            static_cast<double>(cell.recovery.crashes) +
        cost_model.replay_per_record.count() *
            static_cast<double>(cell.recovery.records_replayed) +
        cost_model.reconcile_per_record.count() *
            static_cast<double>(cell.recovery.lost_mutations);
    return std::abs(cell.recovery.downtime.count() - predicted) <= 1e-6;
  };

  // Self-check 2 state: the sync cells at the harsh rate, both cadences.
  CellResult sync_tight;
  CellResult sync_never;

  for (const double mtbf : mtbfs) {
    for (const catalog::FsyncPolicy policy : policies) {
      for (const double interval : ckpt_intervals) {
        const bool traced = mtbf == harsh_mtbf &&
                            policy == catalog::FsyncPolicy::kGroupCommit &&
                            interval == tight_interval;
        obs::Tracer tracer;
        if (traced) flags.trace.configure(tracer);
        const CellResult cell =
            run_cell(plan, requests, crash_point(mtbf),
                     journal_point(policy, interval),
                     traced ? &tracer : nullptr, perf);
        add_row(mtbf, policy, interval, cell);

        if (mtbf == harsh_mtbf && cell.recovery.crashes == 0) {
          std::cout << "SYNC FAIL: harsh cell saw no crash (seed drift?)\n";
          sync_ok = false;
        }
        // Self-check 1 (every sync cell) + durable-state audit (all cells).
        if (policy == catalog::FsyncPolicy::kSync &&
            (cell.recovery.lost_mutations != 0 ||
             cell.recovery.reconciled_mutations != 0)) {
          std::cout << "SYNC FAIL: synchronous fsync lost "
                    << cell.recovery.lost_mutations << " mutations\n";
          sync_ok = false;
        }
        if (!cell.durable_equals_live || !cell.conserve_ok) {
          std::cout << "RECONCILE FAIL: fsync=" << catalog::to_string(policy)
                    << " ckpt=" << interval << " durable==live "
                    << cell.durable_equals_live << " conservation "
                    << cell.conserve_ok << "\n";
          reconcile_ok = false;
        }
        if (!check_linear_model(cell)) {
          std::cout << "SCALING FAIL: downtime off the linear cost model "
                    << "(fsync=" << catalog::to_string(policy)
                    << " ckpt=" << interval << ")\n";
          scaling_ok = false;
        }

        if (mtbf == harsh_mtbf && policy == catalog::FsyncPolicy::kSync) {
          (interval == tight_interval ? sync_tight : sync_never) = cell;
        }

        if (!traced) continue;

        // Self-check 3: exact ledger agreement — registry instruments,
        // RecoveryStats, the journal ledger, and the injector's counter.
        auto& reg = tracer.registry();
        const sched::RecoveryStats& rs = cell.recovery;
        const bool counters_ok =
            reg.counter("recovery.crashes").value() == rs.crashes &&
            reg.counter("recovery.checkpoints").value() == rs.checkpoints &&
            reg.counter("recovery.records_replayed").value() ==
                rs.records_replayed &&
            reg.counter("recovery.lost_mutations").value() ==
                rs.lost_mutations &&
            reg.counter("recovery.reconciled_mutations").value() ==
                rs.reconciled_mutations &&
            reg.counter("recovery.admissions_parked").value() ==
                rs.admissions_parked &&
            reg.gauge("recovery.downtime_s").value() == rs.downtime.count();
        const bool ledger_ok =
            rs.lost_mutations == cell.journal.records_lost &&
            rs.reconciled_mutations == cell.journal.records_reconciled &&
            rs.lost_mutations == rs.reconciled_mutations &&
            rs.records_replayed == cell.journal.records_replayed &&
            rs.crashes == cell.injector_crashes;
        if (!counters_ok || !ledger_ok) {
          std::cout << "RECONCILE FAIL: counters " << counters_ok
                    << " ledger " << ledger_ok << "\n";
          reconcile_ok = false;
        }
        if (flags.trace.enabled()) flags.trace.finish(tracer);

        kpis["crash.crashes"] = static_cast<double>(rs.crashes);
        kpis["crash.lost_mutations"] =
            static_cast<double>(rs.lost_mutations);
        kpis["crash.records_replayed"] =
            static_cast<double>(rs.records_replayed);
        kpis["crash.downtime_s"] = rs.downtime.count();
        kpis["crash.rto_mean_s"] =
            rs.rto.count() > 0 ? rs.rto.mean() : 0.0;
      }
    }
  }

  benchfig::print_table(table, flags.out);

  // Self-check 2: checkpointing wins measurably. Same crash timeline
  // (crash draws are time-based, not record-based), sync fsync: the tight
  // cadence must replay strictly fewer records per crash and spend
  // strictly less time recovering.
  if (sync_tight.recovery.crashes != sync_never.recovery.crashes) {
    std::cout << "SCALING FAIL: checkpoint cadence perturbed the crash "
              << "timeline (" << sync_tight.recovery.crashes << " vs "
              << sync_never.recovery.crashes << ")\n";
    scaling_ok = false;
  } else if (sync_tight.recovery.crashes > 0) {
    if (sync_tight.recovery.records_replayed >=
            sync_never.recovery.records_replayed ||
        sync_tight.recovery.downtime.count() >=
            sync_never.recovery.downtime.count()) {
      std::cout << "SCALING FAIL: tight checkpointing replayed "
                << sync_tight.recovery.records_replayed << " records ("
                << sync_tight.recovery.downtime.count()
                << " s down) vs never's "
                << sync_never.recovery.records_replayed << " ("
                << sync_never.recovery.downtime.count() << " s down)\n";
      scaling_ok = false;
    }
    kpis["crash.replayed_tight"] =
        static_cast<double>(sync_tight.recovery.records_replayed);
    kpis["crash.replayed_never"] =
        static_cast<double>(sync_never.recovery.records_replayed);
  }

  // Self-check 4: journal + crashes off is bit-identical — run on a
  // faulty posture so the comparison exercises real interrupt machinery.
  fault::FaultConfig identity_faults = base_faults();
  identity_faults.drive_mtbf = Seconds{horizon / 4.0};
  identity_faults.drive_mttr = Seconds{900.0};
  identity_faults.mount_failure_prob = 0.02;
  const bool identity_ok =
      crash_off_identical(plan, requests, identity_faults);

  std::cout << "sync-equivalence self-check: " << (sync_ok ? "OK" : "FAIL")
            << " (synchronous fsync never loses a mutation; every crash "
               "replayed to the exact live catalog)\n";
  std::cout << "replay-scaling self-check: " << (scaling_ok ? "OK" : "FAIL")
            << " (downtime follows the linear cost model exactly and "
               "tight checkpointing replays fewer records, faster)\n";
  std::cout << "reconcile self-check: " << (reconcile_ok ? "OK" : "FAIL")
            << " (recovery.* instruments, RecoveryStats, the journal "
               "ledger, and the crash counter agree exactly; appends are "
               "conserved)\n";
  std::cout << "identity self-check: " << (identity_ok ? "OK" : "FAIL")
            << " (journal and crashes disabled is bit-identical to the "
               "default config, engine clock included)\n";

  if (!flags.perf_out.empty()) {
    const obs::ProfileReport profile = perf_profiler.report();
    obs::PerfReport report;
    report.bench = "crash_recovery";
    report.wall_s = total_timer.elapsed_s();
    report.events_dispatched = profile.dispatches;
    report.events_per_s = profile.events_per_wall_s();
    report.peak_rss_bytes = obs::peak_rss_bytes();
    report.kpis = kpis;
    report.kpis["fast"] = flags.fast ? 1.0 : 0.0;
    report.kpis["horizon_s"] = horizon;
    std::ostringstream profile_os;
    perf_profiler.write_json(profile_os);
    report.profile_json = profile_os.str();
    if (!report.save(flags.perf_out)) {
      std::cerr << "cannot write perf report to " << flags.perf_out << "\n";
      return 1;
    }
    std::cout << "(perf report written to " << flags.perf_out << ")\n";
  }
  return (sync_ok && scaling_ok && reconcile_ok && identity_ok) ? 0 : 1;
}
