// Table 1: the modeled drive/library specification, plus the motion-model
// calibration derived from it and a set of single-operation validations
// computed through the actual drive state machine.
#include <iostream>

#include "figure_common.hpp"
#include "tape/drive.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header("Table 1",
                         "tape drive / library specification (as modeled)");

  const tape::SystemSpec spec = tape::SystemSpec::paper_default();
  const tape::DriveSpec& drive = spec.library.drive;

  Table table({"parameter", "value"});
  table.add("Average cell to drive time",
            spec.library.cell_to_drive_time);
  table.add("Tape load and thread to ready", drive.load_thread_time);
  table.add("Data transfer rate, native", drive.transfer_rate);
  table.add("Maximum rewind time", drive.max_rewind_time);
  table.add("Unload time", drive.unload_time);
  table.add("Average file access time (first file)",
            drive.avg_first_file_access);
  table.add("Number of tapes per library", spec.library.tapes_per_library);
  table.add("Tape capacity", spec.library.tape_capacity);
  table.add("Tape drives per library", spec.library.drives_per_library);
  table.add("Number of tape libraries", spec.num_libraries);
  benchfig::print_table(table, "table1_hardware.csv");

  benchfig::print_header("Table 1 (derived)",
                         "linear positioning model calibration");
  const tape::LinearMotionModel motion(drive, spec.library.tape_capacity);
  Table derived({"quantity", "value"});
  derived.add("locate rate", motion.locate_rate());
  derived.add("rewind rate", motion.rewind_rate());
  derived.add("full-tape rewind (must be 98 s)", motion.max_rewind());
  derived.add("average first-file access (must be 72 s)",
              motion.average_first_access());
  benchfig::print_table(derived, "");

  benchfig::print_header(
      "Table 1 (validation)",
      "single operations executed through the drive state machine");
  tape::TapeDrive d(DriveId{0}, drive, spec.library.tape_capacity);
  Table ops({"operation", "modeled time"});
  ops.add("load + thread", d.start_load(TapeId{0}));
  d.finish_load();
  ops.add("locate BOT -> 200 GB (half tape)", d.start_locate(200_GB));
  d.finish_locate();
  ops.add("stream 40 GB", d.start_transfer(40_GB));
  d.finish_transfer();
  ops.add("rewind from 240 GB", d.start_rewind());
  d.finish_rewind();
  ops.add("unload", d.start_unload());
  (void)d.finish_unload();
  benchfig::print_table(ops, "");

  std::cout << "Aggregate ceiling: " << spec.aggregate_transfer_rate()
            << " across " << spec.total_drives() << " drives; "
            << spec.total_capacity() << " on " << spec.total_tapes()
            << " tapes.\n";
  return 0;
}
