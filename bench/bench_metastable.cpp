// Metastable failure: goodput collapse and recovery vs trigger intensity
// × governor posture under a flash crowd colliding with a fault burst.
//
// The trigger is the classic metastable recipe: an MMPP-2 arrival storm
// pushes the fleet near saturation while a deterministic fault burst
// (fault::BurstConfig) raises mount/media error rates for a window. The
// burst degrades every cartridge it touches (degraded_after), so the
// amplification — mount retries, media retries, evacuation copies —
// persists after the trigger ends. With no governor the recovery work
// itself keeps goodput collapsed; the sched::RecoveryGovernor postures
// turn its mechanisms on one at a time:
//   - off:      GovernorConfig{} — the exact ungoverned simulator
//   - budgets:  per-class token-bucket retry budgets only
//   - breakers: per-resource circuit breakers only
//   - full:     budgets + breakers + metastable shed ladder
//
// Goodput is measured per arrival window: requests arriving before the
// burst (pre-trigger), and requests arriving after it ends
// (post-trigger). The fraction of each window's offered bytes delivered
// within deadline is the collapse/recovery signal.
//
// Built-in self-checks (exit status):
//   1. COLLAPSE: at the top intensity with the governor off, the
//      post-trigger goodput fraction stays below half the pre-trigger
//      fraction — the collapse outlives the trigger.
//   2. RECOVERY: same cell with the full governor, post-trigger goodput
//      recovers to a bounded fraction of pre-trigger goodput, strictly
//      beats the ungoverned cell, the detector tripped at least once,
//      and the shed ladder fully released by the end of the run.
//   3. LEDGER: every governed cell keeps the exact budget invariants
//      (attempts == admitted + fast_failed, fast_failed == budget_denied
//      + breaker_denied) and the traced full cell's governor.* registry
//      counters equal GovernorStats field for field.
//   4. IDENTITY: a run with a configured-but-disabled governor is
//      bit-identical to the default-config run — same final engine
//      clock, same outcome counts, same goodput bytes.
#include <map>
#include <span>
#include <sstream>
#include <string>

#include "core/parallel_batch.hpp"
#include "figure_common.hpp"
#include "obs/perf.hpp"
#include "obs/profiler.hpp"
#include "sched/overload.hpp"
#include "util/rng.hpp"
#include "workload/storm.hpp"

namespace {

using namespace tapesim;

struct Posture {
  const char* name;
  sched::GovernorConfig config;
};

/// Windowed goodput: offered and deadline-met bytes of the requests
/// arriving inside [begin, end).
struct WindowGoodput {
  double offered = 0.0;
  double met = 0.0;

  [[nodiscard]] double fraction() const {
    return offered > 0.0 ? met / offered : 0.0;
  }
};

WindowGoodput window_goodput(const sched::OverloadReport& report,
                             Seconds begin, Seconds end) {
  WindowGoodput w;
  for (const sched::OverloadOutcome& o : report.outcomes) {
    if (o.arrival < begin || o.arrival >= end) continue;
    w.offered += o.outcome.bytes.as_double();
    if (o.outcome.met_deadline()) {
      w.met += o.outcome.bytes_served().as_double();
    }
  }
  return w;
}

struct CellResult {
  sched::OverloadReport report;
  sched::GovernorStats governor;
  std::uint32_t shed_level = 0;
  std::size_t breakers_open = 0;
  Seconds final_clock{};
};

struct Bench {
  tape::SystemSpec spec = tape::SystemSpec::paper_default();
  workload::Workload workload;
  cluster::ObjectClusters clusters;
  core::PlacementPlan plan;
  std::uint64_t seed;
  Seconds mean_service{};

  explicit Bench(std::uint64_t seed_in)
      : workload(make_workload(seed_in)),
        clusters(cluster::cluster_by_requests(workload,
                                              make_constraints(spec))),
        plan(make_plan()),
        seed(seed_in) {
    mean_service = calibrate();
  }

  static workload::Workload make_workload(std::uint64_t seed) {
    workload::WorkloadConfig config = workload::WorkloadConfig::paper_default();
    // Many small-ish requests instead of the paper's huge batch reads:
    // the collapse/recovery signal needs dozens of completions per
    // arrival window, and a fault burst should degrade a request, not
    // atomize it (a 200 GB request with per-GB error rates never
    // finishes clean, which would hide the trigger inside the baseline).
    config.num_objects = 4'000;
    config.min_object_size = Bytes{200ULL * 1000 * 1000};
    config.max_object_size = 1_GB;
    config.min_objects_per_request = 4;
    config.max_objects_per_request = 8;
    Rng rng{seed};
    Rng workload_rng = rng.fork(0x574C);
    return workload::generate_workload(config, workload_rng);
  }

  static cluster::ClusterConstraints make_constraints(
      const tape::SystemSpec& spec) {
    cluster::ClusterConstraints constraints;
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        0.9 * spec.library.tape_capacity.as_double())};
    return constraints;
  }

  core::PlacementPlan make_plan() const {
    const core::ParallelBatchPlacement scheme{core::ParallelBatchParams{}};
    core::PlacementContext context;
    context.workload = &workload;
    context.spec = &spec;
    context.clusters = &clusters;
    return scheme.place(context);
  }

  Seconds calibrate() const {
    sched::RetrievalSimulator sim(plan);
    Rng rng{seed};
    Rng sample_rng = rng.fork(0x5251);
    const workload::RequestSampler sampler(workload);
    SampleSet service;
    for (int i = 0; i < 30; ++i) {
      service.add(sim.run_request(sampler.sample(sample_rng)).response.count());
    }
    return Seconds{service.mean()};
  }

  /// Faults shared by every cell: mild base rates that make pre-trigger
  /// life healthy, plus the deterministic burst window. Burst-window
  /// reads degrade their cartridges (degraded_after), so the error
  /// amplification persists after the window closes — the metastable
  /// trigger.
  fault::FaultConfig make_faults(Seconds burst_at, Seconds burst_dur) const {
    fault::FaultConfig faults;
    faults.seed = seed;
    faults.mount_failure_prob = 0.01;
    faults.media_error_per_gb = 0.005;
    faults.lost_after = 64;  // degrade, don't destroy: recovery possible
    // The metastable feedback loop needs a doomed MINORITY that is
    // expensive to retry: only the burst-hammered hot cartridges cross
    // degraded_after, but once degraded they are near-unreadable, so
    // every ungoverned retry chain against them burns long exponential
    // backoffs plus re-reads while the healthy majority queues behind.
    // Fast-failing that wasted work is the governor's whole win.
    faults.degraded_after = 5;
    faults.degraded_error_multiplier = 2500.0;  // degraded reads never succeed
    faults.media_retry.max_retries = 4;
    faults.media_retry.initial_delay = Seconds{15.0};
    faults.burst.at = burst_at;
    faults.burst.duration = burst_dur;
    faults.burst.mount_failure_prob = 0.6;
    faults.burst.media_error_per_gb = 1.5;
    return faults;
  }

  sched::OverloadConfig make_overload() const {
    sched::OverloadConfig config;
    config.deadline.enabled = true;
    config.deadline.base = mean_service * 3.0;
    config.deadline.per_gb = Seconds{25.0};
    // No admission shedding: collapse must manifest as expirations, not
    // be masked by the overload layer's own protection.
    config.shed = sched::ShedPolicy::kNone;
    return config;
  }

  CellResult run(std::span<const workload::TimedRequest> arrivals,
                 const sched::GovernorConfig& governor, Seconds burst_at,
                 Seconds burst_dur, obs::Tracer* tracer = nullptr,
                 obs::Profiler* profiler = nullptr) const {
    sched::SimulatorConfig sim_config;
    sim_config.tracer = tracer;
    sim_config.faults = make_faults(burst_at, burst_dur);
    sim_config.scrub.enabled = true;
    sim_config.evacuation.enabled = true;
    sim_config.governor = governor;
    sched::RetrievalSimulator sim(plan, sim_config);
    if (profiler != nullptr) profiler->attach(sim.engine());
    sched::OverloadRunner runner(sim, make_overload(), tracer);
    CellResult cell;
    cell.report = runner.run(arrivals);
    cell.final_clock = sim.engine().now();
    cell.shed_level = sim.governor().shed_level();
    cell.breakers_open = sim.governor().breakers_open();
    sim.governor().finish(sim.engine().now());
    cell.governor = sim.governor().stats();
    if (profiler != nullptr) profiler->detach();
    return cell;
  }
};

/// The exact per-class accounting the governor promises, on every cell.
bool ledger_invariants_hold(const sched::GovernorStats& stats) {
  for (const sched::GovernorClass cls :
       {sched::GovernorClass::kRetry, sched::GovernorClass::kFailover,
        sched::GovernorClass::kHedge}) {
    const sched::BudgetLedger& led = stats.ledger(cls);
    if (led.attempts != led.admitted + led.fast_failed) return false;
    if (led.fast_failed != led.budget_denied + led.breaker_denied) {
      return false;
    }
  }
  return true;
}

double gigabytes(double bytes) { return bytes / 1e9; }

}  // namespace

int main(int argc, char** argv) {
  const auto flags = benchfig::BenchFlags::parse(
      argc, argv, /*default_seed=*/42, "metastable.csv");
  if (!flags.status.ok()) {
    std::cerr << flags.status.message() << "\n";
    return 2;
  }
  if (flags.help) {
    std::cout << benchfig::BenchFlags::usage(argv[0]);
    return 0;
  }
  benchfig::print_header(
      "Metastable failure",
      "post-trigger goodput collapse and recovery vs trigger intensity x "
      "recovery-governor posture (storm + fault burst)");

  const obs::WallTimer total_timer;
  obs::Profiler perf_profiler{64};
  obs::Profiler* const perf =
      flags.perf_out.empty() ? nullptr : &perf_profiler;

  const Bench bench(flags.seed);
  const double service = bench.mean_service.count();
  std::cout << "calibrated mean service: " << service << " s\n\n";

  // Governor postures. The full posture sizes the detector bin to the
  // service scale so a collapsed bin means "a service time passed with
  // almost nothing served".
  sched::GovernorConfig off;       // defaults: disabled
  sched::GovernorConfig budgets;
  budgets.enabled = true;
  budgets.budgets.retry_ratio = 0.15;  // starve doomed retry chains
  // Failover is completion work — one bounded replica read per failed
  // extent, not amplification — so it earns a full token per demand.
  budgets.budgets.failover_ratio = 1.0;
  budgets.breaker.enabled = false;
  budgets.metastable.enabled = false;
  sched::GovernorConfig breakers;
  breakers.enabled = true;
  breakers.budgets.enabled = false;
  breakers.metastable.enabled = false;
  sched::GovernorConfig full;
  full.enabled = true;
  // Looser than the budgets-only posture: with breakers doing the
  // targeted quarantine, the budget only has to catch broad storms.
  full.budgets.retry_ratio = 0.4;
  full.budgets.failover_ratio = 1.0;
  full.metastable.bin = bench.mean_service * 2.0;
  // Trip only on a deep collapse, step the ladder back down after every
  // recovered bin, and keep the level-3 earn clamp off so failover
  // completion work is never starved by the ladder itself.
  full.metastable.collapse_fraction = 0.15;
  full.metastable.recover_fraction = 0.30;
  full.metastable.release_bins = 1;
  full.metastable.budget_clamp = 1.0;
  const Posture postures[] = {{"off", off},
                              {"budgets", budgets},
                              {"breakers", breakers},
                              {"full", full}};

  const double intensities_full[] = {0.8, 1.3};
  const double intensities_fast[] = {1.3};
  const std::span<const double> intensities =
      flags.fast ? std::span<const double>(intensities_fast)
                 : std::span<const double>(intensities_full);
  const std::uint32_t count = flags.fast ? 140 : 280;
  const double top_rho = intensities[intensities.size() - 1];

  Table table({"burst rho", "posture", "served", "shed", "expired",
               "goodput GB", "pre frac", "post frac", "trips",
               "fast-failed", "makespan (s)"});

  bool collapse_ok = true;
  bool recovery_ok = true;
  bool ledger_ok = true;
  bool identity_ok = true;
  std::map<std::string, double> kpis;

  for (const double rho : intensities) {
    // One arrival stream per intensity, replayed for every posture.
    workload::StormConfig storm;
    storm.base_rate = 0.75 / service;  // near clean capacity: no headroom
    storm.burst_rate = rho / service;
    storm.mean_burst_duration = bench.mean_service * 10.0;
    storm.mean_calm_duration = bench.mean_service * 10.0;
    storm.batch_fraction = 0.5;
    Rng rng{flags.seed};
    Rng storm_rng = rng.fork(0x5357);
    const workload::RequestSampler sampler(bench.workload);
    const auto arrivals =
        workload::storm_arrivals(sampler, storm, count, storm_rng);

    // The fault burst opens at the quarter mark of the arrival stream and
    // closes before the half mark: a clean pre-trigger window in front
    // and a long post-trigger window behind, so recovery (or its
    // absence) has room to show.
    // Fixed arrival-count window (not a fraction of the stream): the
    // number of burst-window reads sets how many cartridges degrade, and
    // the doomed-set size must not scale with the sweep length.
    const Seconds burst_at = arrivals[count / 4].time;
    const Seconds burst_end = arrivals[count / 4 + 28].time;
    const Seconds burst_dur = burst_end - burst_at;
    const Seconds horizon{1e18};  // window_goodput upper bound

    const bool top = rho == top_rho;
    WindowGoodput off_pre, off_post, full_pre, full_post;

    for (const Posture& posture : postures) {
      const bool traced =
          top && std::string(posture.name) == "full";
      obs::Tracer tracer;
      if (traced) flags.trace.configure(tracer);
      const CellResult cell =
          bench.run(arrivals, posture.config, burst_at, burst_dur,
                    traced ? &tracer : nullptr, perf);
      const sched::OverloadReport& r = cell.report;
      const WindowGoodput pre = window_goodput(r, Seconds{0.0}, burst_at);
      const WindowGoodput post = window_goodput(r, burst_end, horizon);
      const sched::BudgetLedger& retry =
          cell.governor.ledger(sched::GovernorClass::kRetry);
      const std::uint64_t fast_failed =
          retry.fast_failed +
          cell.governor.ledger(sched::GovernorClass::kFailover).fast_failed +
          cell.governor.ledger(sched::GovernorClass::kHedge).fast_failed;
      table.add(rho, posture.name, r.served, r.shed_total(),
                r.expired_total(),
                gigabytes(r.goodput_bytes().as_double()), pre.fraction(),
                post.fraction(), cell.governor.metastable_trips, fast_failed,
                r.makespan.count());

      // Self-check 3 (ledger invariants): every governed posture.
      if (posture.config.enabled && !ledger_invariants_hold(cell.governor)) {
        std::cout << "LEDGER FAIL: " << posture.name << " rho " << rho
                  << " budget ledger does not reconcile\n";
        ledger_ok = false;
      }

      if (top) {
        if (std::string(posture.name) == "off") {
          off_pre = pre;
          off_post = post;
          // Self-check 4 (bit-identity): a governor that is configured
          // but disabled must not perturb a single event. Re-run the
          // cell with non-default governor knobs behind enabled=false.
          sched::GovernorConfig sleeper;
          sleeper.enabled = false;
          sleeper.budgets.retry_ratio = 0.9;
          sleeper.breaker.min_samples = 2;
          sleeper.metastable.trip_bins = 1;
          const CellResult twin = bench.run(arrivals, sleeper, burst_at,
                                            burst_dur, nullptr, perf);
          const bool same =
              twin.final_clock.count() == cell.final_clock.count() &&
              twin.report.served == r.served &&
              twin.report.shed_total() == r.shed_total() &&
              twin.report.expired_total() == r.expired_total() &&
              twin.report.goodput_bytes().count() ==
                  r.goodput_bytes().count() &&
              twin.report.outcomes.size() == r.outcomes.size();
          if (!same) {
            std::cout << "IDENTITY FAIL: configured-but-disabled governor "
                         "diverged from baseline (clock "
                      << twin.final_clock.count() << " vs "
                      << cell.final_clock.count() << ")\n";
            identity_ok = false;
          }
        }
        if (traced) {
          full_pre = pre;
          full_post = post;
          // Self-check 2 (recovery) part 2: the detector saw the episode
          // and the ladder fully released.
          if (cell.governor.metastable_trips == 0 || cell.shed_level != 0) {
            std::cout << "RECOVERY FAIL: full governor trips "
                      << cell.governor.metastable_trips << " end shed level "
                      << cell.shed_level << "\n";
            recovery_ok = false;
          }
          // Self-check 3 part 2: registry counters == stats, exactly.
          auto& reg = tracer.registry();
          const sched::GovernorStats& st = cell.governor;
          const auto led = [&st](sched::GovernorClass c) {
            return st.ledger(c);
          };
          const bool counters =
              reg.counter("governor.retry_attempts").value() ==
                  led(sched::GovernorClass::kRetry).attempts &&
              reg.counter("governor.retry_admitted").value() ==
                  led(sched::GovernorClass::kRetry).admitted &&
              reg.counter("governor.retry_fast_failed").value() ==
                  led(sched::GovernorClass::kRetry).fast_failed &&
              reg.counter("governor.failover_attempts").value() ==
                  led(sched::GovernorClass::kFailover).attempts &&
              reg.counter("governor.failover_admitted").value() ==
                  led(sched::GovernorClass::kFailover).admitted &&
              reg.counter("governor.failover_fast_failed").value() ==
                  led(sched::GovernorClass::kFailover).fast_failed &&
              reg.counter("governor.hedge_attempts").value() ==
                  led(sched::GovernorClass::kHedge).attempts &&
              reg.counter("governor.hedge_admitted").value() ==
                  led(sched::GovernorClass::kHedge).admitted &&
              reg.counter("governor.hedge_fast_failed").value() ==
                  led(sched::GovernorClass::kHedge).fast_failed &&
              reg.counter("governor.breaker_opened").value() ==
                  st.breaker_opened &&
              reg.counter("governor.breaker_reopened").value() ==
                  st.breaker_reopened &&
              reg.counter("governor.breaker_closed").value() ==
                  st.breaker_closed &&
              reg.counter("governor.breaker_probes").value() ==
                  st.breaker_probes &&
              reg.counter("governor.metastable_trips").value() ==
                  st.metastable_trips &&
              reg.counter("governor.metastable_releases").value() ==
                  st.metastable_releases;
          if (!counters) {
            std::cout << "LEDGER FAIL: governor.* registry counters do not "
                         "match GovernorStats\n";
            ledger_ok = false;
          }
          if (flags.trace.enabled()) flags.trace.finish(tracer);
          kpis["metastable.full_post_frac"] = post.fraction();
          kpis["metastable.full_pre_frac"] = pre.fraction();
          kpis["metastable.trips"] =
              static_cast<double>(st.metastable_trips);
          kpis["metastable.retry_fast_failed"] = static_cast<double>(
              led(sched::GovernorClass::kRetry).fast_failed);
          kpis["metastable.breaker_opened"] =
              static_cast<double>(st.breaker_opened);
          kpis["metastable.goodput_gb"] =
              gigabytes(r.goodput_bytes().as_double());
        }
      }
    }

    if (top) {
      // Self-check 1: the ungoverned collapse outlives the trigger.
      if (!(off_pre.fraction() > 0.3) ||
          !(off_post.fraction() < 0.5 * off_pre.fraction())) {
        std::cout << "COLLAPSE FAIL: governor-off pre " << off_pre.fraction()
                  << " post " << off_post.fraction()
                  << " (want healthy pre and post < 0.5*pre)\n";
        collapse_ok = false;
      }
      // Self-check 2 part 1: the full governor recovers post-trigger
      // goodput to a bounded fraction of pre-trigger and beats off by a
      // real margin, not a rounding error.
      if (!(full_post.fraction() >= 0.4 * full_pre.fraction()) ||
          !(full_post.fraction() > 1.25 * off_post.fraction())) {
        std::cout << "RECOVERY FAIL: full pre " << full_pre.fraction()
                  << " post " << full_post.fraction() << " vs off post "
                  << off_post.fraction() << "\n";
        recovery_ok = false;
      }
      kpis["metastable.off_post_frac"] = off_post.fraction();
      kpis["metastable.off_pre_frac"] = off_pre.fraction();
    }
  }

  benchfig::print_table(table, flags.out);

  std::cout << "collapse self-check: " << (collapse_ok ? "OK" : "FAIL")
            << " (governor-off post-trigger goodput fraction < 0.5x "
               "pre-trigger at burst rho "
            << top_rho << ")\n";
  std::cout << "recovery self-check: " << (recovery_ok ? "OK" : "FAIL")
            << " (full governor recovers post-trigger goodput, trips >= 1, "
               "shed ladder fully released)\n";
  std::cout << "ledger self-check: " << (ledger_ok ? "OK" : "FAIL")
            << " (attempts == admitted + fast_failed everywhere; registry "
               "counters == GovernorStats on the traced cell)\n";
  std::cout << "identity self-check: " << (identity_ok ? "OK" : "FAIL")
            << " (configured-but-disabled governor is bit-identical to "
               "baseline, final engine clock included)\n";

  if (!flags.perf_out.empty()) {
    const obs::ProfileReport profile = perf_profiler.report();
    obs::PerfReport report;
    report.bench = "metastable";
    report.wall_s = total_timer.elapsed_s();
    report.events_dispatched = profile.dispatches;
    report.events_per_s = profile.events_per_wall_s();
    report.peak_rss_bytes = obs::peak_rss_bytes();
    report.kpis = kpis;
    report.kpis["fast"] = flags.fast ? 1.0 : 0.0;
    report.kpis["calibrated_service_s"] = service;
    std::ostringstream profile_os;
    perf_profiler.write_json(profile_os);
    report.profile_json = profile_os.str();
    if (!report.save(flags.perf_out)) {
      std::cerr << "cannot write perf report to " << flags.perf_out << "\n";
      return 1;
    }
    std::cout << "(perf report written to " << flags.perf_out << ")\n";
  }
  return (collapse_ok && recovery_ok && ledger_ok && identity_ok) ? 0 : 1;
}
