// Ablation A7: simulator modeling choices.
//
// (a) Robot handoff protocol: holding the robot through load-to-ready vs
//     releasing after insertion. The protocol decides how hard mass
//     switching is penalized, which is what separates the schemes.
// (b) Within-tape seek-order optimization on/off (the paper optimizes).
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header("Ablation A7a",
                         "robot handoff protocol (bandwidth in MB/s)");

  Table robot({"protocol", "parallel batch", "object probability",
               "cluster probability"});
  for (const bool holds : {true, false}) {
    exp::ExperimentConfig config;
    config.sim.robot_holds_load = holds;
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();
    robot.add(holds ? "holds through load" : "releases after insert",
              benchfig::mbps(experiment.run(*schemes.parallel_batch)),
              benchfig::mbps(experiment.run(*schemes.object_probability)),
              benchfig::mbps(experiment.run(*schemes.cluster_probability)));
  }
  benchfig::print_table(robot, "ablation_robot.csv");

  benchfig::print_header("Ablation A7b",
                         "within-tape seek-order optimization");
  Table seek({"retrieval order", "parallel batch seek (s)",
              "object probability seek (s)", "PBP bandwidth (MB/s)"});
  for (const bool optimize : {true, false}) {
    exp::ExperimentConfig config;
    config.sim.optimize_seek_order = optimize;
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();
    const auto pbp = experiment.run(*schemes.parallel_batch);
    const auto opp = experiment.run(*schemes.object_probability);
    seek.add(optimize ? "optimized sweep" : "request order",
             pbp.metrics.mean_seek().count(),
             opp.metrics.mean_seek().count(), benchfig::mbps(pbp));
  }
  benchfig::print_table(seek, "ablation_seek_order.csv");
  return 0;
}
