// Figure 6: effective data retrieval bandwidth vs request popularity skew
// (Zipf alpha), for the three placement schemes.
//
// Paper expectation: parallel batch placement wins across the whole range;
// parallel batch and object probability placement improve as alpha grows
// (more probability mass concentrates on the always-mounted tapes);
// cluster probability placement is nearly flat (its cost is dominated by
// serial transfers, which popularity skew does not change).
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header("Figure 6",
                         "bandwidth (MB/s) vs request popularity skew alpha "
                         "(avg request ~213 GB)");

  Table table({"alpha", "parallel batch", "object probability",
               "cluster probability"});

  for (const double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    exp::ExperimentConfig config;
    config.workload.zipf_alpha = alpha;
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();

    const auto pbp = experiment.run(*schemes.parallel_batch);
    const auto opp = experiment.run(*schemes.object_probability);
    const auto cpp = experiment.run(*schemes.cluster_probability);
    table.add(alpha, benchfig::mbps(pbp), benchfig::mbps(opp),
              benchfig::mbps(cpp));
  }

  benchfig::print_table(table, "fig6_alpha.csv");
  return 0;
}
