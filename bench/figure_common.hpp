// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every bench_figN_* binary reproduces one figure of the paper: it sweeps
// the figure's x-axis, runs the experiment pipeline for each point, and
// prints the series the paper plots (plus a CSV line block for external
// plotting). Absolute values differ from the paper's (their testbed, our
// model), but the comparisons and trends are the reproduction target.
// Telemetry: every bench accepts
//   --trace-out=PATH    Chrome trace_event JSON (open in Perfetto)
//   --jsonl-out=PATH    span/sample JSONL (tools/trace_inspect reads this)
//   --metrics-out=PATH  metrics registry CSV
//   --timeseries-out=PATH  windowed metric deltas/rates CSV (window =
//                          --sample-every, default 500 simulated seconds)
//   --sample-every=SEC  gauge sampling cadence in simulated seconds
// When any output is requested, the first scheme's run is traced (each
// scheme runs on its own engine clock starting at zero, so tracing several
// into one file would overlap their timelines) and a per-drive phase
// breakdown is printed, cross-checked against the simulator's own
// DriveStats accounting.
#pragma once

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace tapesim::benchfig {

/// Strict numeric flag parsing: the whole value must parse, so `--seed=7x`
/// is an error rather than silently becoming 7 (what atof/atoi would do).
inline bool parse_number(const std::string& text, std::uint64_t* out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc{} && ptr == end;
}

inline bool parse_number(const std::string& text, double* out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, *out);
  return ec == std::errc{} && ptr == end;
}

/// Splits `--flag=value` style arguments; returns true when `arg` is
/// `flag` (with a value), storing the value.
inline bool flag_value(const std::string& arg, const char* flag,
                       std::string* out) {
  const std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

/// MB/s value of a run's mean effective bandwidth.
inline double mbps(const exp::SchemeRun& run) {
  return run.metrics.mean_bandwidth().megabytes_per_second();
}

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::cout << "==================================================\n"
            << figure << ": " << description << "\n"
            << "==================================================\n";
}

inline void print_table(const Table& table, const std::string& csv_path) {
  table.print(std::cout);
  if (!csv_path.empty()) {
    table.save_csv(csv_path);
    std::cout << "(csv written to " << csv_path << ")\n";
  }
  std::cout << "\n";
}

/// Telemetry outputs requested on the command line (see file header).
struct TraceOptions {
  std::string chrome_out;
  std::string jsonl_out;
  std::string metrics_out;
  std::string timeseries_out;
  double sample_every = 0.0;

  [[nodiscard]] bool enabled() const {
    return !chrome_out.empty() || !jsonl_out.empty() ||
           !metrics_out.empty() || !timeseries_out.empty();
  }

  enum class Consume { kNotMine, kOk, kBadValue };

  /// Tries to consume one command-line argument as a telemetry flag.
  Consume consume(const std::string& arg) {
    std::string sample;
    if (flag_value(arg, "--trace-out", &chrome_out)) return Consume::kOk;
    if (flag_value(arg, "--jsonl-out", &jsonl_out)) return Consume::kOk;
    if (flag_value(arg, "--metrics-out", &metrics_out)) return Consume::kOk;
    if (flag_value(arg, "--timeseries-out", &timeseries_out)) {
      return Consume::kOk;
    }
    if (flag_value(arg, "--sample-every", &sample)) {
      return parse_number(sample, &sample_every) ? Consume::kOk
                                                 : Consume::kBadValue;
    }
    return Consume::kNotMine;
  }

  static TraceOptions parse(int argc, char** argv) {
    TraceOptions opts;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      switch (opts.consume(arg)) {
        case Consume::kOk: break;
        case Consume::kBadValue:
          std::cerr << "bad value ignored: " << arg << "\n";
          break;
        case Consume::kNotMine:
          std::cerr << "unknown argument ignored: " << arg << "\n";
          break;
      }
    }
    return opts;
  }

  /// Null when no output was requested — callers pass the raw pointer into
  /// SimulatorConfig::tracer and every instrumentation point collapses to a
  /// null check.
  /// Applies the sampling cadence and, when `--timeseries-out` was given,
  /// attaches a fresh windowed TimeSeries tracking the headline
  /// instruments. Benches that build one tracer per sweep cell call this
  /// on the cell whose telemetry they write (a series must see a single
  /// engine clock); make_tracer() calls it for the single-run benches.
  void configure(obs::Tracer& tracer) const {
    if (sample_every > 0.0) {
      tracer.set_sample_cadence(Seconds{sample_every});
    }
    if (!timeseries_out.empty()) {
      // Window defaults to the gauge cadence so both trajectories line up;
      // instruments are pre-registered (Registry hands back the same
      // instance to the simulator later) so the series can hold references
      // before the run creates them.
      const double window = sample_every > 0.0 ? sample_every : 500.0;
      series = std::make_shared<obs::TimeSeries>(Seconds{window});
      obs::Registry& reg = tracer.registry();
      for (const char* name :
           {"engine.events.dispatched", "sched.requests",
            "sched.request.switches", "overload.served", "overload.shed",
            "overload.expired", "scrub.passes", "repair.completed"}) {
        series->track_counter(name, reg.counter(name));
      }
      series->track_histogram(
          "sched.request.response_s",
          reg.histogram("sched.request.response_s",
                        obs::BucketLayout::exponential(0.1, 1e5, 1.3)),
          {50.0, 99.0});
      tracer.set_timeseries(series.get());
    }
  }

  [[nodiscard]] std::unique_ptr<obs::Tracer> make_tracer() const {
    if (!enabled()) return nullptr;
    auto tracer = std::make_unique<obs::Tracer>();
    configure(*tracer);
    return tracer;
  }

  /// Writes whichever outputs were requested.
  void finish(const obs::Tracer& tracer) const {
    if (!chrome_out.empty() && tracer.write_chrome_trace_file(chrome_out)) {
      std::cout << "(chrome trace written to " << chrome_out
                << " — open in Perfetto)\n";
    }
    if (!jsonl_out.empty() && tracer.write_jsonl_file(jsonl_out)) {
      std::cout << "(span jsonl written to " << jsonl_out << ")\n";
    }
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      if (os) {
        tracer.registry().write_csv(os);
        std::cout << "(metrics csv written to " << metrics_out << ")\n";
      } else {
        std::cerr << "cannot write " << metrics_out << "\n";
      }
    }
    if (!timeseries_out.empty() && series != nullptr) {
      series->finish();  // close the partial final window at last dispatch
      std::ofstream os(timeseries_out);
      if (os) {
        series->write_csv(os);
        std::cout << "(timeseries csv written to " << timeseries_out
                  << ")\n";
      } else {
        std::cerr << "cannot write " << timeseries_out << "\n";
      }
    }
  }

  /// Owns the windowed series the tracer advances; mutable because
  /// make_tracer() is const at every call site (the options themselves
  /// are read-only once parsed).
  mutable std::shared_ptr<obs::TimeSeries> series;
};

/// Flags shared by the fault/replication/overload benches: `--seed=N`
/// (experiment seed), `--out=PATH` (CSV destination; empty disables the
/// CSV), and `--fast` (reduced sweep, where the bench supports one) on top
/// of the telemetry flags. A malformed, unknown, or duplicated flag lands
/// in `status` so the binary can exit with one clear line instead of
/// running a sweep with silently-defaulted inputs; `--help` sets `help`
/// and the caller prints `usage()` and exits 0.
struct BenchFlags {
  std::uint64_t seed = 42;
  std::string out;
  std::string perf_out;  ///< BENCH_<name>.json destination (empty: none)
  bool fast = false;     ///< reduced sweep for CI self-check runs
  bool help = false;     ///< --help seen: print usage(), exit 0
  TraceOptions trace;
  Status status;

  static std::string usage(const char* argv0) {
    std::string name = argv0 ? argv0 : "bench";
    if (const auto slash = name.rfind('/'); slash != std::string::npos) {
      name = name.substr(slash + 1);
    }
    return "usage: " + name +
           " [--seed=N] [--out=PATH] [--fast]\n"
           "  --seed=N            experiment seed (default per bench)\n"
           "  --out=PATH          CSV destination; empty disables the CSV\n"
           "  --perf-out=PATH     perf report JSON (tools/bench_compare)\n"
           "  --fast              reduced sweep (CI self-check mode)\n"
           "  --trace-out=PATH    Chrome trace_event JSON (Perfetto)\n"
           "  --jsonl-out=PATH    span/sample JSONL (tools/trace_inspect)\n"
           "  --metrics-out=PATH  metrics registry CSV\n"
           "  --timeseries-out=PATH  windowed metric deltas/rates CSV\n"
           "  --sample-every=SEC  gauge sampling cadence (simulated s)\n"
           "  --help              this text\n";
  }

  static BenchFlags parse(int argc, char** argv, std::uint64_t default_seed,
                          std::string default_out) {
    BenchFlags flags;
    flags.seed = default_seed;
    flags.out = std::move(default_out);
    std::vector<std::string> seen;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        flags.help = true;
        return flags;
      }
      // Fold "--flag value" into "--flag=value" for the flags that take one.
      if ((arg == "--seed" || arg == "--out" || arg == "--perf-out") &&
          i + 1 < argc) {
        arg += std::string("=") + argv[++i];
      }
      // Each flag may appear once; a duplicate is almost always a typo'd
      // sweep invocation, and silently letting the last one win hides it.
      const std::string name = arg.substr(0, arg.find('='));
      if (std::find(seen.begin(), seen.end(), name) != seen.end()) {
        flags.status = Status::failure("duplicate flag: " + name);
        return flags;
      }
      seen.push_back(name);
      if (arg == "--fast") {
        flags.fast = true;
        continue;
      }
      std::string value;
      if (flag_value(arg, "--seed", &value)) {
        if (!parse_number(value, &flags.seed)) {
          flags.status = Status::failure("bad --seed value: " + value);
          return flags;
        }
        continue;
      }
      if (flag_value(arg, "--out", &value)) {
        flags.out = value;
        continue;
      }
      if (flag_value(arg, "--perf-out", &value)) {
        flags.perf_out = value;
        continue;
      }
      switch (flags.trace.consume(arg)) {
        case TraceOptions::Consume::kOk: break;
        case TraceOptions::Consume::kBadValue:
          flags.status = Status::failure("bad value for " + arg);
          return flags;
        case TraceOptions::Consume::kNotMine:
          flags.status = Status::failure("unknown argument: " + arg);
          return flags;
      }
    }
    return flags;
  }
};

/// Prints the per-drive phase breakdown reconstructed from trace spans next
/// to the simulator's own DriveStats accounting, and returns the largest
/// absolute disagreement in seconds. Both sides integrate the same state
/// intervals, so anything above float dust means lost or duplicated spans.
inline double print_phase_breakdown(const obs::Tracer& tracer,
                                    const sched::UtilizationReport& util) {
  using obs::Phase;
  using obs::Track;
  double max_delta = 0.0;
  Table table({"drive", "transfer (s)", "locate (s)", "rewind (s)",
               "load (s)", "unload (s)", "robot wait (s)", "max |delta|"});
  for (const sched::DriveUtilization& du : util.drives) {
    const std::uint32_t lane = du.drive.value();
    auto span_total = [&](Phase p) {
      return tracer.lane_phase_total(Track::kDrive, lane, p).count();
    };
    const double deltas[] = {
        std::abs(span_total(Phase::kTransfer) - du.transferring.count()),
        std::abs(span_total(Phase::kLocate) - du.locating.count()),
        std::abs(span_total(Phase::kRewind) - du.rewinding.count()),
        std::abs(span_total(Phase::kLoad) - du.loading.count()),
        std::abs(span_total(Phase::kUnload) - du.unloading.count()),
    };
    const double drive_delta = *std::max_element(deltas, deltas + 5);
    max_delta = std::max(max_delta, drive_delta);
    table.add(du.drive.value(), span_total(Phase::kTransfer),
              span_total(Phase::kLocate), span_total(Phase::kRewind),
              span_total(Phase::kLoad), span_total(Phase::kUnload),
              span_total(Phase::kRobotWait), drive_delta);
  }
  for (const sched::RobotUtilization& ru : util.robots) {
    const double busy = tracer
                            .lane_phase_total(Track::kRobot,
                                              ru.library.value(),
                                              obs::Phase::kRobotMove)
                            .count();
    max_delta = std::max(max_delta, std::abs(busy - ru.busy.count()));
  }
  table.print(std::cout);
  std::cout << "conservation vs UtilizationReport: max |delta| = "
            << max_delta << " s ("
            << (max_delta <= 1e-6 ? "OK" : "FAIL") << ")\n\n";
  return max_delta;
}

}  // namespace tapesim::benchfig
