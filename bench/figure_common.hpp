// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every bench_figN_* binary reproduces one figure of the paper: it sweeps
// the figure's x-axis, runs the experiment pipeline for each point, and
// prints the series the paper plots (plus a CSV line block for external
// plotting). Absolute values differ from the paper's (their testbed, our
// model), but the comparisons and trends are the reproduction target.
#pragma once

#include <iostream>
#include <string>

#include "exp/experiment.hpp"
#include "util/table.hpp"

namespace tapesim::benchfig {

/// MB/s value of a run's mean effective bandwidth.
inline double mbps(const exp::SchemeRun& run) {
  return run.metrics.mean_bandwidth().megabytes_per_second();
}

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::cout << "==================================================\n"
            << figure << ": " << description << "\n"
            << "==================================================\n";
}

inline void print_table(const Table& table, const std::string& csv_path) {
  table.print(std::cout);
  if (!csv_path.empty()) {
    table.save_csv(csv_path);
    std::cout << "(csv written to " << csv_path << ")\n";
  }
  std::cout << "\n";
}

}  // namespace tapesim::benchfig
