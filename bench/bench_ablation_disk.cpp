// Ablation A9: assumption 6 — "the bottleneck of data transfer path lies
// at tape drive, i.e. network or communication channel contention is
// negligible elsewhere".
//
// We give the staging disk array a finite number of full-rate streaming
// slots and sweep it. With slots >= total drives the paper's assumption
// holds and nothing changes; as the disk gets slower than the drive fleet,
// the parallel schemes collapse toward the serial baseline (which never
// uses more than a few streams anyway).
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header(
      "Ablation A9",
      "staging-disk streaming slots (24 drives total; 0 = unlimited)");

  Table table({"disk slots", "parallel batch", "object probability",
               "cluster probability"});
  for (const std::uint32_t slots : {0u, 24u, 12u, 6u, 3u, 1u}) {
    exp::ExperimentConfig config;
    config.sim.max_concurrent_streams = slots;
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();
    table.add(slots == 0 ? std::string{"unlimited"} : std::to_string(slots),
              benchfig::mbps(experiment.run(*schemes.parallel_batch)),
              benchfig::mbps(experiment.run(*schemes.object_probability)),
              benchfig::mbps(experiment.run(*schemes.cluster_probability)));
  }
  benchfig::print_table(table, "ablation_disk.csv");
  return 0;
}
