// Future-work experiment: periodic (incremental) placement vs a clean-slate
// oracle (the paper's conclusion: "how to make an optimal or near-optimal
// solution for the long-term backup/retrieve operations remains to be
// solved").
//
// Four equal generations of objects/requests arrive one backup round at a
// time. The incremental placer may only append to tapes; the oracle
// re-places the cumulative workload from scratch each round. The gap is
// the price of append-only local knowledge.
#include <memory>
#include <vector>

#include "cluster/hierarchy.hpp"
#include "core/incremental.hpp"
#include "figure_common.hpp"
#include "workload/merge.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header(
      "Incremental placement",
      "append-only periodic placement vs clean-slate oracle, per round");

  const tape::SystemSpec spec = tape::SystemSpec::paper_default();
  workload::WorkloadConfig gen_config =
      workload::WorkloadConfig::paper_default();
  gen_config.num_objects = 7000;
  gen_config.num_requests = 100;
  gen_config.object_groups = 50;
  const std::uint32_t kRounds = 4;
  const std::uint32_t kSimulated = 150;
  const std::uint64_t kSeed = 42;

  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
      0.9 * spec.library.tape_capacity.as_double())};

  core::IncrementalParams inc_params;
  const core::IncrementalParallelBatch incremental(inc_params);
  const core::ParallelBatchPlacement oracle;

  std::vector<std::unique_ptr<workload::Workload>> cumulative;
  std::vector<std::unique_ptr<cluster::ObjectClusters>> clusters;
  std::vector<core::PlacementPlan> plans;

  Table table({"round", "objects", "incremental (MB/s)", "oracle (MB/s)",
               "degradation (%)"});

  Rng seed_rng{kSeed};
  for (std::uint32_t round = 0; round < kRounds; ++round) {
    Rng gen_rng = seed_rng.fork(round + 1);
    workload::Workload generation =
        workload::generate_workload(gen_config, gen_rng);
    std::uint32_t first_new = 0;
    if (round == 0) {
      cumulative.push_back(
          std::make_unique<workload::Workload>(std::move(generation)));
    } else {
      first_new = cumulative.back()->object_count();
      cumulative.push_back(std::make_unique<workload::Workload>(
          workload::merge_workloads(*cumulative.back(), generation,
                                    1.0 / static_cast<double>(round + 1))));
    }
    clusters.push_back(std::make_unique<cluster::ObjectClusters>(
        cluster::cluster_by_requests(*cumulative.back(), constraints)));

    core::PlacementContext context{cumulative.back().get(), &spec,
                                   clusters.back().get()};
    if (round == 0) {
      plans.push_back(incremental.place_initial(context));
    } else {
      plans.push_back(incremental.place_next(context, plans.back(),
                                             ObjectId{first_new}));
    }
    const auto inc_metrics =
        exp::simulate_plan(plans.back(), kSimulated, kSeed + round);

    const core::PlacementPlan oracle_plan = oracle.place(context);
    const auto oracle_metrics =
        exp::simulate_plan(oracle_plan, kSimulated, kSeed + round);

    const double inc_bw = inc_metrics.mean_bandwidth().megabytes_per_second();
    const double orc_bw =
        oracle_metrics.mean_bandwidth().megabytes_per_second();
    table.add(round + 1, cumulative.back()->object_count(), inc_bw, orc_bw,
              100.0 * (orc_bw - inc_bw) / orc_bw);
  }
  benchfig::print_table(table, "incremental.csv");
  return 0;
}
