// Ablation A1: does the cluster-aware sublist refinement (Step 4 of the
// placement algorithm) matter?
//
// With refinement off, the sublists are cut from the raw density-sorted
// object list, so co-accessed objects straddle batch boundaries and a
// request needs tapes from several batches. The gap should be largest at
// low alpha (nothing is rescued by the always-mounted batch).
#include "core/parallel_batch.hpp"
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header(
      "Ablation A1",
      "parallel batch placement with vs without Step-4 cluster refinement");

  Table table({"alpha", "with refinement (MB/s)", "without (MB/s)",
               "with: mounts/req", "without: mounts/req"});
  for (const double alpha : {0.0, 0.3, 0.6, 1.0}) {
    exp::ExperimentConfig config;
    config.workload.zipf_alpha = alpha;
    const exp::Experiment experiment(config);

    core::ParallelBatchParams params;
    const core::ParallelBatchPlacement with(params);
    params.cluster_refinement = false;
    const core::ParallelBatchPlacement without(params);

    const auto rw = experiment.run(with);
    const auto ro = experiment.run(without);
    table.add(alpha, benchfig::mbps(rw), benchfig::mbps(ro),
              rw.metrics.mean_tape_switches(),
              ro.metrics.mean_tape_switches());
  }
  benchfig::print_table(table, "ablation_refinement.csv");
  return 0;
}
