// Ablation A6: workload co-access structure (a reproduction finding).
//
// The paper's assumption 1 says objects form clusters that are retrieved
// together, but its generator description ("objects in a request are
// randomly chosen") would, taken literally, make ~70% of each request's
// objects shared with dozens of unrelated requests — a workload NO
// placement can co-locate. This sweep varies the request_locality knob
// from fully uniform (0) to fully clustered (1) and shows how the
// relationship-aware schemes' advantage depends on the assumption holding.
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header(
      "Ablation A6",
      "request locality sweep (0 = uniform object choice, 1 = clustered)");

  Table table({"locality", "parallel batch", "object probability",
               "cluster probability", "PBP mounts/req"});

  for (const double locality : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    exp::ExperimentConfig config;
    config.workload.request_locality = locality;
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();
    const auto pbp = experiment.run(*schemes.parallel_batch);
    const auto opp = experiment.run(*schemes.object_probability);
    const auto cpp = experiment.run(*schemes.cluster_probability);
    table.add(locality, benchfig::mbps(pbp), benchfig::mbps(opp),
              benchfig::mbps(cpp), pbp.metrics.mean_tape_switches());
  }
  benchfig::print_table(table, "ablation_locality.csv");
  return 0;
}
