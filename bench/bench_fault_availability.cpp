// Fault availability: mean response time and fraction of requested bytes
// unavailable vs drive failure rate, for the three placement schemes.
//
// Sweeps the drive hardware failure rate (per drive-hour) with a fixed
// repair time and a fixed share of permanent (unrepairable) faults; mount
// failures and robot jams ride along at constant low rates so the retry
// and jam paths also see traffic. Expectation: response time and
// unavailability rise monotonically with the failure rate for every
// scheme — parallel placement buys throughput, not immunity, and the lost
// capacity must show up as degradation, never as a wedged run.
//
// The rate=0 column doubles as the zero-overhead check: it must match a
// no-fault build bit for bit (the simulator builds no injector).
//
// With --trace-out/--jsonl-out/--metrics-out the highest-rate parallel
// batch run is traced and the span lanes are reconciled against the
// simulator's own DriveStats, including the fault lane vs repair downtime
// (the conservation check of the observability PR, extended to failures).
#include <map>
#include <sstream>

#include "figure_common.hpp"
#include "obs/perf.hpp"
#include "obs/profiler.hpp"

namespace {

/// Fault model for one sweep point: `rate` drive failures per drive-hour.
tapesim::fault::FaultConfig fault_point(double rate) {
  tapesim::fault::FaultConfig faults;
  if (rate > 0.0) {
    faults.drive_mtbf = tapesim::Seconds{3600.0 / rate};
    faults.drive_mttr = tapesim::Seconds{900.0};
    faults.permanent_fraction = 0.2;
    // Constant background noise on the other fault classes.
    faults.mount_failure_prob = 0.01;
    faults.robot_jam_prob = 0.005;
    faults.robot_jam_clear = tapesim::Seconds{60.0};
  }
  return faults;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tapesim;
  const auto flags = benchfig::BenchFlags::parse(
      argc, argv, /*default_seed=*/42, "fault_availability.csv");
  if (!flags.status.ok()) {
    std::cerr << flags.status.message() << "\n";
    return 2;
  }
  if (flags.help) {
    std::cout << benchfig::BenchFlags::usage(argv[0]);
    return 0;
  }
  const benchfig::TraceOptions& trace_opts = flags.trace;
  benchfig::print_header(
      "Fault availability",
      "mean response (s) and fraction unavailable vs drive failure rate "
      "(per drive-hour; MTTR 15 min, 20% of faults permanent)");

  const obs::WallTimer total_timer;
  obs::Profiler perf_profiler{64};
  obs::Profiler* const perf =
      flags.perf_out.empty() ? nullptr : &perf_profiler;

  const std::vector<double> rates = flags.fast
                                        ? std::vector<double>{0.0, 0.05, 0.2}
                                        : std::vector<double>{0.0, 0.02, 0.05,
                                                              0.1, 0.2};

  // Mean response is reported over *served* requests: a request whose data
  // is unavailable completes almost instantly, so the raw mean would fall
  // as the system collapses — exactly the wrong signal for availability.
  Table table({"failures/drive-h", "pbp resp (s)", "pbp unavail",
               "opp resp (s)", "opp unavail", "cpp resp (s)", "cpp unavail",
               "pbp failovers", "pbp retries"});

  // Per-scheme series for the qualitative trend check below.
  std::vector<std::vector<double>> resp(3);
  std::vector<std::vector<double>> unavail(3);
  std::map<std::string, double> kpis;

  for (const double rate : rates) {
    exp::ExperimentConfig config;
    config.seed = flags.seed;
    config.sim.faults = fault_point(rate);
    if (const Status st = config.sim.try_validate(); !st.ok()) {
      std::cerr << st.message() << "\n";
      return 2;
    }
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();

    const exp::SchemeRun runs[] = {
        experiment.run(*schemes.parallel_batch, perf),
        experiment.run(*schemes.object_probability, perf),
        experiment.run(*schemes.cluster_probability, perf)};
    for (std::size_t i = 0; i < 3; ++i) {
      resp[i].push_back(runs[i].metrics.mean_served_response().count());
      unavail[i].push_back(runs[i].metrics.fraction_unavailable());
    }
    const auto& pbp = runs[0].metrics;
    table.add(rate, resp[0].back(), unavail[0].back(), resp[1].back(),
              unavail[1].back(), resp[2].back(), unavail[2].back(),
              pbp.total_failovers(),
              pbp.total_mount_retries() + pbp.total_media_retries());

    // Every cell is deterministic; recording the full sweep makes the
    // perf-compare gate an exact behavioral diff.
    std::ostringstream key;
    key << "rate" << rate << ".";
    const char* tags[] = {"pbp", "opp", "cpp"};
    for (std::size_t i = 0; i < 3; ++i) {
      kpis[key.str() + tags[i] + "_resp_s"] = resp[i].back();
      kpis[key.str() + tags[i] + "_unavail"] = unavail[i].back();
    }
    kpis[key.str() + "pbp_failovers"] =
        static_cast<double>(pbp.total_failovers());
  }

  benchfig::print_table(table, flags.out);

  // Qualitative acceptance: degradation rises with the failure rate. The
  // series are noisy point to point (one fault-seed realisation per
  // column), so require every faulty point to be no better than the
  // fault-free baseline and the endpoints to strictly degrade, instead of
  // demanding strict adjacent monotonicity.
  bool ok = true;
  const char* names[] = {"parallel batch", "object probability",
                         "cluster probability"};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& r = resp[i];
    const auto& u = unavail[i];
    for (std::size_t p = 1; p < r.size(); ++p) {
      if (r[p] < r[0] || u[p] < u[0] - 1e-12) {
        std::cout << "TREND FAIL: " << names[i] << " at rate point " << p
                  << " is better than fault-free\n";
        ok = false;
      }
    }
    if (r.back() <= r.front() || u.back() <= u.front()) {
      std::cout << "TREND FAIL: " << names[i]
                << " does not degrade from first to last rate\n";
      ok = false;
    }
  }
  std::cout << "degradation trend: " << (ok ? "OK" : "FAIL")
            << " (served response and unavailability rise with failure "
               "rate)\n\n";

  if (const auto tracer = trace_opts.make_tracer()) {
    // Conservation under failure: trace the harshest sweep point and
    // reconcile every span lane — including the fault lane — against the
    // simulator's DriveStats.
    exp::ExperimentConfig config;
    config.seed = flags.seed;
    config.sim.faults = fault_point(rates[std::size(rates) - 1]);
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();
    const auto traced = experiment.run_traced(*schemes.parallel_batch,
                                              *tracer);
    std::cout << "traced scheme: " << traced.run.scheme
              << " at " << rates[std::size(rates) - 1]
              << " failures/drive-h\n";
    double max_delta =
        benchfig::print_phase_breakdown(*tracer, traced.utilization);
    for (const sched::DriveUtilization& du : traced.utilization.drives) {
      const double fault_lane =
          tracer
              ->lane_phase_total(obs::Track::kDrive, du.drive.value(),
                                 obs::Phase::kFault)
              .count();
      max_delta =
          std::max(max_delta, std::abs(fault_lane - du.downtime.count()));
    }
    std::cout << "fault-lane conservation incl. downtime: max |delta| = "
              << max_delta << " s ("
              << (max_delta <= 1e-6 ? "OK" : "FAIL") << ")\n";
    trace_opts.finish(*tracer);
  }

  if (!flags.perf_out.empty()) {
    const obs::ProfileReport profile = perf_profiler.report();
    obs::PerfReport report;
    report.bench = "fault_availability";
    report.wall_s = total_timer.elapsed_s();
    report.events_dispatched = profile.dispatches;
    report.events_per_s = profile.events_per_wall_s();
    report.peak_rss_bytes = obs::peak_rss_bytes();
    report.kpis = kpis;
    report.kpis["fast"] = flags.fast ? 1.0 : 0.0;
    std::ostringstream profile_os;
    perf_profiler.write_json(profile_os);
    report.profile_json = profile_os.str();
    if (!report.save(flags.perf_out)) {
      std::cerr << "cannot write perf report to " << flags.perf_out << "\n";
      return 2;
    }
    std::cout << "(perf report written to " << flags.perf_out << ")\n";
  }
  return ok ? 0 : 1;
}
