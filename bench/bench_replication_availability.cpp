// Replication availability: unavailable fraction, served response time,
// and repair-traffic overhead vs replication factor × media-error rate.
//
// Parallel batch placement is wrapped in core::ReplicationPolicy at
// r ∈ {1, 2, 3} and driven through the same request stream under rising
// media-error rates. With r = 1 a cartridge whose reads keep failing (or
// that crosses the Lost threshold) takes its bytes with it; with r ≥ 2 the
// scheduler fails over to a surviving copy and background repair rebuilds
// the replication factor on fresh tapes, paying for it in repair traffic.
//
// Built-in self-checks (exit status):
//   1. Under every nonzero media-error rate, r = 2 yields a strictly lower
//      unavailable fraction than r = 1.
//   2. After the repair queue drains, every cartridge that degraded but
//      was not lost has all of its objects back at the target replication
//      factor (counting copies on Good tapes only).
//
// The workload is scaled down (6k objects vs the paper's 30k) so that r = 3
// still fits the default 4-library system at 90% utilization.
#include <map>
#include <sstream>

#include "core/parallel_batch.hpp"
#include "core/replication.hpp"
#include "figure_common.hpp"
#include "obs/perf.hpp"
#include "obs/profiler.hpp"
#include "util/rng.hpp"

namespace {

using namespace tapesim;

/// Media-error-only fault model: `rate` read errors per GB streamed.
fault::FaultConfig media_point(double rate) {
  fault::FaultConfig faults;
  faults.media_error_per_gb = rate;
  return faults;
}

struct PointResult {
  metrics::ExperimentMetrics metrics;
  sched::RepairStats repair;
  std::size_t backlog = 0;
  /// Factor restoration is only checkable when the repair system could
  /// finish its work: no leftover backlog (targets exhausted under
  /// saturation) and no abandoned jobs (sources errored out repeatedly).
  bool factor_checked = false;
  bool factor_restored = true;
};

struct Bench {
  tape::SystemSpec spec = tape::SystemSpec::paper_default();
  workload::Workload workload;
  cluster::ObjectClusters clusters;
  std::uint64_t seed;
  std::uint32_t requests = 200;

  explicit Bench(std::uint64_t seed_in)
      : workload(make_workload(seed_in)),
        clusters(cluster::cluster_by_requests(
            workload, make_constraints(spec))),
        seed(seed_in) {
    clusters.validate(workload);
  }

  static workload::Workload make_workload(std::uint64_t seed) {
    workload::WorkloadConfig config = workload::WorkloadConfig::paper_default();
    config.num_objects = 6'000;  // leave room for r = 3 at 90% utilization
    Rng rng{seed};
    Rng workload_rng = rng.fork(0x574C);  // Experiment's workload substream
    return workload::generate_workload(config, workload_rng);
  }

  static cluster::ClusterConstraints make_constraints(
      const tape::SystemSpec& spec) {
    cluster::ClusterConstraints constraints;
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        0.9 * spec.library.tape_capacity.as_double())};
    return constraints;
  }

  PointResult run(std::uint32_t replicas, double rate,
                  obs::Profiler* profiler = nullptr) const {
    core::ParallelBatchParams pbp;
    const core::ParallelBatchPlacement inner(pbp);
    core::ReplicationPolicy::Params rp;
    rp.replicas = replicas;
    const core::ReplicationPolicy scheme(inner, rp);

    core::PlacementContext context;
    context.workload = &workload;
    context.spec = &spec;
    context.clusters = &clusters;
    const core::PlacementPlan plan = scheme.place(context);

    sched::SimulatorConfig sim;
    sim.faults = media_point(rate);
    sim.repair.enabled = true;
    sim.repair.bandwidth_fraction = 0.5;
    sim.repair.max_concurrent = 2;
    if (const Status st = sim.try_validate(); !st.ok()) {
      std::cerr << st.message() << "\n";
      std::exit(2);
    }

    sched::RetrievalSimulator simulator(plan, sim);
    if (profiler != nullptr) profiler->attach(simulator.engine());
    Rng rng{seed};
    Rng sample_rng = rng.fork(0x5251);  // Experiment's sampling substream
    const workload::RequestSampler sampler(workload);

    PointResult result;
    for (std::uint32_t i = 0; i < requests; ++i) {
      result.metrics.add(simulator.run_request(sampler.sample(sample_rng)));
    }
    simulator.drain_repairs();
    if (profiler != nullptr) profiler->detach();
    result.repair = simulator.repair_stats();
    result.backlog = simulator.repair_backlog();
    result.factor_checked = replicas > 1 && result.backlog == 0 &&
                            result.repair.jobs_abandoned == 0;
    if (result.factor_checked) {
      result.factor_restored = check_factor(simulator, replicas);
    }
    return result;
  }

  /// Self-check 2: each object with a copy on a Degraded (but not Lost)
  /// cartridge is back at `replicas` copies on Good tapes after repair.
  bool check_factor(const sched::RetrievalSimulator& simulator,
                    std::uint32_t replicas) const {
    if (replicas <= 1) return true;
    const catalog::ObjectCatalog& cat = simulator.catalog();
    const std::uint32_t total_tapes =
        spec.num_libraries * spec.library.tapes_per_library;
    bool ok = true;
    for (std::uint32_t t = 0; t < total_tapes; ++t) {
      const TapeId tape{t};
      if (cat.tape_health(tape) != catalog::ReplicaHealth::kDegraded) {
        continue;
      }
      for (const catalog::TapeExtent& e : cat.extents_on(tape)) {
        std::uint32_t good = 0;
        auto count = [&](const catalog::ObjectRecord& copy) {
          if (cat.tape_health(copy.tape) == catalog::ReplicaHealth::kGood) {
            ++good;
          }
        };
        if (const catalog::ObjectRecord* primary = cat.lookup(e.object)) {
          count(*primary);
        }
        for (const catalog::ObjectRecord& copy : cat.replicas(e.object)) {
          count(copy);
        }
        if (good < replicas) {
          std::cout << "FACTOR FAIL: object " << e.object.value()
                    << " on degraded tape " << t << " has " << good << "/"
                    << replicas << " good copies after repair\n";
          ok = false;
        }
      }
    }
    return ok;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto flags = benchfig::BenchFlags::parse(
      argc, argv, /*default_seed=*/42, "replication_availability.csv");
  if (!flags.status.ok()) {
    std::cerr << flags.status.message() << "\n";
    return 2;
  }
  if (flags.help) {
    std::cout << benchfig::BenchFlags::usage(argv[0]);
    return 0;
  }
  benchfig::print_header(
      "Replication availability",
      "unavailable fraction, served response, and repair overhead vs "
      "replication factor x media-error rate (parallel batch placement)");

  const obs::WallTimer total_timer;
  obs::Profiler perf_profiler{64};
  obs::Profiler* const perf =
      flags.perf_out.empty() ? nullptr : &perf_profiler;

  const Bench bench(flags.seed);
  // --fast drops r = 3 (the most expensive placement and the heaviest
  // repair traffic) and the harshest rate (where the r = 2 repair queue
  // saturates and self-check 2 cannot run); both self-checks only need
  // the r = 1 vs r = 2 columns at a nonzero drainable rate.
  const std::vector<std::uint32_t> factors =
      flags.fast ? std::vector<std::uint32_t>{1, 2}
                 : std::vector<std::uint32_t>{1, 2, 3};
  // Rates are per GB streamed; the default workload's objects average a
  // few GB, so these give per-read error odds in the ~0.5–2% range —
  // enough for popular cartridges to degrade and occasionally go Lost
  // over the request stream without collapsing the whole system (at
  // ~0.05/GB the degraded-multiplier feedback loses nearly every tape and
  // extra replicas only amplify the error-generating read traffic).
  const std::vector<double> rates = flags.fast
                                        ? std::vector<double>{0.0, 0.002}
                                        : std::vector<double>{0.0, 0.002,
                                                              0.005};

  Table table({"errors/GB", "r", "unavail", "resp served (s)",
               "replica reads", "repairs", "repair GB", "overhead",
               "backlog"});

  // unavail[rate index][factor index], for self-check 1.
  std::vector<std::vector<double>> unavail(std::size(rates));
  bool factor_ok = true;
  std::size_t factor_points = 0;
  std::map<std::string, double> kpis;

  for (std::size_t ri = 0; ri < std::size(rates); ++ri) {
    for (const std::uint32_t r : factors) {
      const PointResult point = bench.run(r, rates[ri], perf);
      unavail[ri].push_back(point.metrics.fraction_unavailable());
      factor_ok = factor_ok && point.factor_restored;
      if (point.factor_checked && rates[ri] > 0.0) ++factor_points;
      const double requested_gb =
          bench.requests *
          point.metrics.mean_request_bytes().as_double() / 1e9;
      const double repair_gb =
          static_cast<double>(point.repair.bytes_copied) / 1e9;
      table.add(rates[ri], r, unavail[ri].back(),
                point.metrics.mean_served_response().count(),
                point.metrics.total_served_from_replica(),
                point.repair.jobs_completed, repair_gb,
                requested_gb > 0.0 ? repair_gb / requested_gb : 0.0,
                point.backlog);

      // Every cell is deterministic; recording the full sweep makes the
      // perf-compare gate an exact behavioral diff.
      std::ostringstream key;
      key << "rate" << rates[ri] << ".r" << r << ".";
      kpis[key.str() + "unavail"] = unavail[ri].back();
      kpis[key.str() + "resp_s"] =
          point.metrics.mean_served_response().count();
      kpis[key.str() + "repair_gb"] = repair_gb;
      kpis[key.str() + "replica_reads"] =
          static_cast<double>(point.metrics.total_served_from_replica());
    }
  }

  benchfig::print_table(table, flags.out);

  // Self-check 1: redundancy must buy availability wherever media errors
  // actually bite. At rate 0 every factor is identically all-available.
  bool redundancy_ok = true;
  for (std::size_t ri = 0; ri < std::size(rates); ++ri) {
    if (rates[ri] <= 0.0) {
      if (unavail[ri][0] != 0.0 || unavail[ri][1] != 0.0) {
        std::cout << "BASELINE FAIL: unavailable bytes without media "
                     "errors\n";
        redundancy_ok = false;
      }
      continue;
    }
    if (!(unavail[ri][1] < unavail[ri][0])) {
      std::cout << "REDUNDANCY FAIL: r=2 unavailable fraction "
                << unavail[ri][1] << " is not strictly below r=1's "
                << unavail[ri][0] << " at " << rates[ri] << " errors/GB\n";
      redundancy_ok = false;
    }
  }
  std::cout << "redundancy self-check: " << (redundancy_ok ? "OK" : "FAIL")
            << " (r=2 strictly reduces unavailable fraction under media "
               "errors)\n";
  // Points with leftover backlog or abandoned jobs (repair saturation)
  // cannot restore the factor by construction; require the check to have
  // actually run somewhere under media errors.
  factor_ok = factor_ok && factor_points > 0;
  std::cout << "repair self-check: " << (factor_ok ? "OK" : "FAIL") << " ("
            << factor_points
            << " drained sweep points; degraded-but-surviving cartridges "
               "restored to target factor)\n";

  if (!flags.perf_out.empty()) {
    const obs::ProfileReport profile = perf_profiler.report();
    obs::PerfReport report;
    report.bench = "replication_availability";
    report.wall_s = total_timer.elapsed_s();
    report.events_dispatched = profile.dispatches;
    report.events_per_s = profile.events_per_wall_s();
    report.peak_rss_bytes = obs::peak_rss_bytes();
    report.kpis = kpis;
    report.kpis["fast"] = flags.fast ? 1.0 : 0.0;
    std::ostringstream profile_os;
    perf_profiler.write_json(profile_os);
    report.profile_json = profile_os.str();
    if (!report.save(flags.perf_out)) {
      std::cerr << "cannot write perf report to " << flags.perf_out << "\n";
      return 2;
    }
    std::cout << "(perf report written to " << flags.perf_out << ")\n";
  }
  return (redundancy_ok && factor_ok) ? 0 : 1;
}
