// Figure 7: effective bandwidth vs average request size (the size sweep is
// driven by scaling the object sizes, exactly as in the paper), plus the
// Section 6 "extreme test case" where the object sizes shrink until the
// n*d always-mountable tapes hold every object.
//
// Paper expectation: bandwidth increases with request size but "not
// dramatically" (transfer grows while switch and seek stay put); parallel
// batch placement stays best across the range. In the extreme case, object
// probability placement has the lowest response time (lowest seek);
// cluster probability and parallel batch placement have similar response
// times, but transfer accounts for ~62% of cluster probability's response
// vs ~19% for parallel batch (serial vs parallel streaming).
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header("Figure 7",
                         "bandwidth (MB/s) vs average request size");

  Table table({"avg request (GB)", "parallel batch", "object probability",
               "cluster probability"});

  for (const std::uint64_t gb : {80ULL, 120ULL, 160ULL, 213ULL, 240ULL,
                                 280ULL, 320ULL}) {
    exp::ExperimentConfig config;
    config.workload = config.workload.with_average_request_size(
        Bytes{gb * 1000 * 1000 * 1000});
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();

    const auto pbp = experiment.run(*schemes.parallel_batch);
    const auto opp = experiment.run(*schemes.object_probability);
    const auto cpp = experiment.run(*schemes.cluster_probability);
    table.add(gb, benchfig::mbps(pbp), benchfig::mbps(opp),
              benchfig::mbps(cpp));
  }
  benchfig::print_table(table, "fig7_request_size.csv");

  // --- Extreme case: everything fits on the always-mounted tapes. ---
  benchfig::print_header(
      "Figure 7 (extreme case)",
      "all objects fit the n*d mounted tapes -> zero switch time");

  exp::ExperimentConfig config;
  config.workload = config.workload.with_average_request_size(
      Bytes{24ULL * 1000 * 1000 * 1000});
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes();

  Table extreme({"scheme", "response (s)", "switch (s)", "seek (s)",
                 "transfer (s)", "transfer share (%)"});
  for (const core::PlacementScheme* scheme :
       {schemes.parallel_batch.get(), schemes.object_probability.get(),
        schemes.cluster_probability.get()}) {
    const auto run = experiment.run(*scheme);
    const double resp = run.metrics.mean_response().count();
    extreme.add(run.scheme, resp, run.metrics.mean_switch().count(),
                run.metrics.mean_seek().count(),
                run.metrics.mean_transfer().count(),
                100.0 * run.metrics.mean_transfer().count() / resp);
  }
  benchfig::print_table(extreme, "fig7_extreme.csv");
  return 0;
}
