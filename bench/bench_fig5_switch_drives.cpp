// Figure 5: effective bandwidth vs the number of switch drives m per
// library, for several request-popularity skews.
//
// Paper expectation: a jump from m=1 to m=2 (a single switch drive
// serializes every offline mount behind one drive's rewind/transfer
// cycle), a maximum somewhere in m = 2..4 whose exact position depends on
// alpha, and a decline beyond 4 (the always-mounted batch shrinks, more
// requests need offline tapes, and robot contention grows). The paper
// fixes m = 4 for the rest of the evaluation.
#include "core/parallel_batch.hpp"
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header(
      "Figure 5",
      "parallel batch placement bandwidth (MB/s) vs switch drives m");

  const double alphas[] = {0.0, 0.3, 0.6, 1.0};
  Table table({"m", "alpha=0", "alpha=0.3", "alpha=0.6", "alpha=1.0"});

  for (std::uint32_t m = 1; m <= 7; ++m) {
    std::vector<std::string> row;
    row.push_back(std::to_string(m));
    for (const double alpha : alphas) {
      exp::ExperimentConfig config;
      config.workload.zipf_alpha = alpha;
      const exp::Experiment experiment(config);
      core::ParallelBatchParams params;
      params.switch_drives = m;
      const core::ParallelBatchPlacement scheme(params);
      const auto run = experiment.run(scheme);
      row.push_back(Table::num(benchfig::mbps(run)));
    }
    table.add_row(std::move(row));
  }

  benchfig::print_table(table, "fig5_switch_drives.csv");
  return 0;
}
