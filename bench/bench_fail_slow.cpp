// Fail-slow injection, gray-failure detection, and hedged reads: tail
// latency and mitigation cost vs planted slowdown severity × detector
// on/off × hedging on/off.
//
// One drive (global id 0) is planted into a deterministic degraded-
// throughput episode covering the whole run, so the ground truth is
// exact: the detector must find that drive and nothing else, and hedged
// reads must rescue the requests stuck behind it. Each sweep cell
// replays the same request sequence on the paper-default system wrapped
// in 2-way replication (hedges need a second copy in another library)
// and reports the served p99, detector score, quarantine count, and the
// hedge ledger.
//
// Built-in self-checks (exit status), on the harshest severity:
//   1. Tail rescue: hedging strictly improves the served p99 response
//      under the planted slowdown (detector off in both cells, so the
//      comparison isolates the hedge path).
//   2. Detection: the gray-failure detector flags the planted slow drive
//      and logs zero false positives at default thresholds (healthy
//      drives stream at exactly spec rate, so any false positive is a
//      detector bug, not noise).
//   3. Ledger: on a traced cell the hedge ledger is exact —
//      issued == won + lost — and every failslow.* registry instrument
//      agrees with the scheduler's FailSlowStats and the injector's
//      episode counters.
//   4. Baseline identity: with fail-slow disabled — detector and hedging
//      armed, severity knobs tweaked — a faulty run is bit-identical to
//      one with a default FailSlowConfig, request by request, engine
//      clock included.
#include <map>
#include <span>
#include <sstream>
#include <vector>

#include "core/parallel_batch.hpp"
#include "core/replication.hpp"
#include "figure_common.hpp"
#include "obs/perf.hpp"
#include "obs/profiler.hpp"
#include "util/rng.hpp"

namespace {

using namespace tapesim;

struct Bench {
  tape::SystemSpec spec = tape::SystemSpec::paper_default();
  workload::Workload workload;
  cluster::ObjectClusters clusters;
  std::uint64_t seed;

  explicit Bench(std::uint64_t seed_in)
      : workload(make_workload(seed_in)),
        clusters(cluster::cluster_by_requests(workload,
                                              make_constraints(spec))),
        seed(seed_in) {
    clusters.validate(workload);
  }

  static workload::Workload make_workload(std::uint64_t seed) {
    workload::WorkloadConfig config = workload::WorkloadConfig::paper_default();
    config.num_objects = 2'000;  // small set keeps the slow cells short
    Rng rng{seed};
    Rng workload_rng = rng.fork(0x574C);  // Experiment's workload substream
    return workload::generate_workload(config, workload_rng);
  }

  static cluster::ClusterConstraints make_constraints(
      const tape::SystemSpec& spec) {
    cluster::ClusterConstraints constraints;
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        0.9 * spec.library.tape_capacity.as_double())};
    return constraints;
  }

  [[nodiscard]] core::PlacementPlan make_plan() const {
    const core::ParallelBatchPlacement inner{core::ParallelBatchParams{}};
    core::PlacementContext context;
    context.workload = &workload;
    context.spec = &spec;
    context.clusters = &clusters;
    core::ReplicationPolicy::Params rp;
    rp.replicas = 2;
    return core::ReplicationPolicy(inner, rp).place(context);
  }
};

struct CellResult {
  metrics::ExperimentMetrics metrics;
  sched::FailSlowStats failslow;
  fault::FaultCounters fault_counters;
  Seconds engine_end{};
  bool conserve_ok = true;  ///< per-request byte conservation
};

CellResult run_cell(const core::PlacementPlan& plan,
                    std::span<const RequestId> requests,
                    const fault::FaultConfig& faults,
                    const sched::GrayDetectorConfig& detector,
                    const sched::HedgeConfig& hedge,
                    obs::Tracer* tracer = nullptr,
                    obs::Profiler* profiler = nullptr) {
  sched::SimulatorConfig config;
  config.faults = faults;
  config.detector = detector;
  config.hedge = hedge;
  config.tracer = tracer;
  if (const Status st = config.try_validate(); !st.ok()) {
    std::cerr << st.message() << "\n";
    std::exit(2);
  }
  sched::RetrievalSimulator sim(plan, config);
  if (profiler != nullptr) profiler->attach(sim.engine());
  CellResult cell;
  for (const RequestId r : requests) {
    const auto o = sim.run_request(r);
    cell.metrics.add(o);
    cell.conserve_ok =
        cell.conserve_ok &&
        o.bytes_served().count() + o.bytes_unavailable.count() +
                o.bytes_expired.count() ==
            o.bytes.count();
  }
  if (profiler != nullptr) profiler->detach();
  cell.failslow = sim.failslow_stats();
  if (sim.fault_injector() != nullptr) {
    cell.fault_counters = sim.fault_injector()->counters();
  }
  cell.engine_end = sim.engine().now();
  return cell;
}

/// Self-check 4: a default FailSlowConfig — severity knobs tweaked,
/// every enable gate off, detector and hedging armed — must not perturb
/// a single event of a faulty run.
bool failslow_off_identical(const core::PlacementPlan& plan,
                            std::span<const RequestId> requests,
                            const fault::FaultConfig& base_faults) {
  sched::SimulatorConfig plain;
  plain.faults = base_faults;
  sched::SimulatorConfig armed = plain;
  armed.faults.failslow.drive_slow_duration = Seconds{123.0};
  armed.faults.failslow.drive_severity_min = 0.1;
  armed.faults.failslow.drive_severity_max = 0.2;
  armed.faults.failslow.progressive = true;
  armed.faults.failslow.robot_slow_duration = Seconds{456.0};
  armed.faults.failslow.planted_severity = 0.1;
  armed.detector.enabled = true;   // no slow episodes -> must never flag
  armed.hedge.enabled = true;      // no overruns -> must never arm
  sched::RetrievalSimulator a(plan, plain);
  sched::RetrievalSimulator b(plan, armed);
  for (const RequestId r : requests) {
    const auto oa = a.run_request(r);
    const auto ob = b.run_request(r);
    if (oa.response.count() != ob.response.count() ||
        oa.seek.count() != ob.seek.count() ||
        oa.transfer.count() != ob.transfer.count() ||
        oa.status != ob.status ||
        a.engine().now().count() != b.engine().now().count()) {
      std::cout << "IDENTITY FAIL: request " << r.value()
                << " diverges with an armed-but-disabled FailSlowConfig\n";
      return false;
    }
  }
  const sched::FailSlowStats& fs = b.failslow_stats();
  if (fs.detected + fs.false_positives + fs.quarantines +
          fs.hedges_issued + fs.hedge_bytes_wasted !=
      0) {
    std::cout << "IDENTITY FAIL: fail-slow reaction fired without any "
                 "slow episode\n";
    return false;
  }
  return b.fault_injector()->counters().slow_episodes == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = benchfig::BenchFlags::parse(
      argc, argv, /*default_seed=*/42, "fail_slow.csv");
  if (!flags.status.ok()) {
    std::cerr << flags.status.message() << "\n";
    return 2;
  }
  if (flags.help) {
    std::cout << benchfig::BenchFlags::usage(argv[0]);
    return 0;
  }
  benchfig::print_header(
      "Fail-slow mitigation",
      "served tail latency and mitigation cost vs planted slowdown "
      "severity x gray-failure detection x hedged reads (parallel batch "
      "placement, 2-way replication)");

  const obs::WallTimer total_timer;
  obs::Profiler perf_profiler{64};
  obs::Profiler* const perf =
      flags.perf_out.empty() ? nullptr : &perf_profiler;

  const Bench bench(flags.seed);
  const core::PlacementPlan plan = bench.make_plan();

  // One request sequence, replayed into every cell.
  const std::uint32_t count = flags.fast ? 120 : 240;
  std::vector<RequestId> requests;
  {
    Rng rng{flags.seed};
    Rng req_rng = rng.fork(0x4653);  // fail-slow bench request substream
    const workload::RequestSampler sampler(bench.workload);
    requests.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      requests.push_back(sampler.sample(req_rng));
    }
  }

  // Probe the fault-free engine horizon so the planted episode can be
  // sized to cover every cell end to end (slow cells run past the
  // fault-free horizon; 50x leaves no gap).
  const double horizon =
      run_cell(plan, requests, {}, {}, {}).engine_end.count();
  std::cout << "probed fault-free engine horizon: " << horizon << " s\n\n";

  const auto slow_point = [&](double severity) {
    fault::FaultConfig faults;
    faults.failslow.planted_drive = 0;
    faults.failslow.planted_at = Seconds{0.0};
    faults.failslow.planted_duration = Seconds{horizon * 50.0};
    faults.failslow.planted_severity = severity;
    return faults;
  };
  const auto detector_on = [] {
    sched::GrayDetectorConfig d;
    d.enabled = true;
    return d;
  };
  const auto hedge_on = [] {
    sched::HedgeConfig h;
    h.enabled = true;
    return h;
  };

  const double severities_full[] = {0.4, 0.2, 0.1};
  const double severities_fast[] = {0.2};
  const std::span<const double> severities =
      flags.fast ? std::span<const double>(severities_fast)
                 : std::span<const double>(severities_full);
  const double check_severity = severities[flags.fast ? 0 : 1];

  Table table({"severity", "detect", "hedge", "p99 (s)", "mean (s)",
               "detected", "false pos", "quarantines", "hedges",
               "won", "lost", "wasted GB", "engine end (s)"});
  const auto add_row = [&](double severity, bool detect, bool hedge,
                           const CellResult& cell) {
    table.add(severity, detect ? 1 : 0, hedge ? 1 : 0,
              cell.metrics.served_response_samples().count() > 0
                  ? cell.metrics.served_response_samples().percentile(99.0)
                  : 0.0,
              cell.metrics.mean_served_response().count(),
              cell.failslow.detected, cell.failslow.false_positives,
              cell.failslow.quarantines, cell.failslow.hedges_issued,
              cell.failslow.hedges_won, cell.failslow.hedges_lost,
              static_cast<double>(cell.failslow.hedge_bytes_wasted) / 1e9,
              cell.engine_end.count());
  };

  bool tail_ok = true;
  bool detect_ok = true;
  bool ledger_ok = true;
  std::map<std::string, double> kpis;

  for (const double severity : severities) {
    const bool checked = severity == check_severity;
    const fault::FaultConfig faults = slow_point(severity);

    // Plain slow cell: no mitigation — the damage baseline.
    const CellResult off =
        run_cell(plan, requests, faults, {}, {}, nullptr, perf);
    add_row(severity, false, false, off);

    // Detector only: finds and quarantines the planted drive.
    const CellResult det =
        run_cell(plan, requests, faults, detector_on(), {}, nullptr, perf);
    add_row(severity, true, false, det);

    // Hedging only: races the slow leg without ever diagnosing it.
    const CellResult hed =
        run_cell(plan, requests, faults, {}, hedge_on(), nullptr, perf);
    add_row(severity, false, true, hed);

    // Both, traced: the reconciliation cell.
    obs::Tracer tracer;
    if (checked) flags.trace.configure(tracer);
    const CellResult both =
        run_cell(plan, requests, faults, detector_on(), hedge_on(),
                 checked ? &tracer : nullptr, perf);
    add_row(severity, true, true, both);

    if (!checked) continue;

    // Self-check 1: hedging strictly improves the served p99.
    const double p99_off =
        off.metrics.served_response_samples().percentile(99.0);
    const double p99_hedge =
        hed.metrics.served_response_samples().percentile(99.0);
    if (hed.failslow.hedges_issued == 0 || !(p99_hedge < p99_off)) {
      std::cout << "TAIL FAIL: hedged p99 " << p99_hedge
                << " s does not strictly beat unmitigated p99 " << p99_off
                << " s (hedges issued: " << hed.failslow.hedges_issued
                << ")\n";
      tail_ok = false;
    }

    // Self-check 2: the detector flags the planted drive (healthy drives
    // stream at exactly spec rate, so every flag scores against ground
    // truth) with zero false positives at default thresholds.
    if (det.failslow.detected == 0 || det.failslow.false_positives != 0 ||
        det.failslow.quarantines == 0) {
      std::cout << "DETECT FAIL: detected " << det.failslow.detected
                << ", false positives " << det.failslow.false_positives
                << ", quarantines " << det.failslow.quarantines << "\n";
      detect_ok = false;
    }

    // Self-check 3: exact ledger — issued == won + lost, and every
    // failslow.* instrument equals the scheduler's/injector's view.
    auto& reg = tracer.registry();
    const sched::FailSlowStats& fs = both.failslow;
    const bool race_ok =
        fs.hedges_issued == fs.hedges_won + fs.hedges_lost;
    const bool counters_ok =
        reg.counter("failslow.detected").value() == fs.detected &&
        reg.counter("failslow.false_positives").value() ==
            fs.false_positives &&
        reg.counter("failslow.quarantines").value() == fs.quarantines &&
        reg.counter("failslow.hedges_issued").value() == fs.hedges_issued &&
        reg.counter("failslow.hedges_won").value() == fs.hedges_won &&
        reg.counter("failslow.hedges_lost").value() == fs.hedges_lost &&
        reg.counter("failslow.hedge_wasted_bytes").value() ==
            fs.hedge_bytes_wasted &&
        reg.counter("failslow.episodes").value() ==
            both.fault_counters.slow_episodes +
                both.fault_counters.robot_slow_episodes &&
        reg.gauge("failslow.drive_s").value() ==
            both.fault_counters.slow_drive_seconds;
    if (!race_ok || !counters_ok || !both.conserve_ok || !off.conserve_ok ||
        !det.conserve_ok || !hed.conserve_ok) {
      std::cout << "LEDGER FAIL: race " << race_ok << " counters "
                << counters_ok << " conservation "
                << (both.conserve_ok && off.conserve_ok && det.conserve_ok &&
                    hed.conserve_ok)
                << "\n";
      ledger_ok = false;
    }

    if (flags.trace.enabled()) flags.trace.finish(tracer);
    kpis["failslow.p99_off_s"] = p99_off;
    kpis["failslow.p99_hedge_s"] = p99_hedge;
    kpis["failslow.p99_detect_s"] =
        det.metrics.served_response_samples().percentile(99.0);
    kpis["failslow.detected"] = static_cast<double>(det.failslow.detected);
    kpis["failslow.quarantines"] =
        static_cast<double>(det.failslow.quarantines);
    kpis["failslow.hedges_issued"] =
        static_cast<double>(both.failslow.hedges_issued);
    kpis["failslow.hedges_won"] =
        static_cast<double>(both.failslow.hedges_won);
    kpis["failslow.wasted_gb"] =
        static_cast<double>(both.failslow.hedge_bytes_wasted) / 1e9;
  }

  benchfig::print_table(table, flags.out);

  // Self-check 4: fail-slow disabled is bit-identical — run on a faulty
  // posture so the comparison exercises the interrupt machinery.
  fault::FaultConfig base_faults;
  base_faults.drive_mtbf = Seconds{horizon / 4.0};
  base_faults.drive_mttr = Seconds{900.0};
  base_faults.mount_failure_prob = 0.02;
  const bool identity_ok =
      failslow_off_identical(plan, requests, base_faults);

  std::cout << "tail self-check: " << (tail_ok ? "OK" : "FAIL")
            << " (hedged reads strictly improve served p99 under the "
               "planted slowdown)\n";
  std::cout << "detect self-check: " << (detect_ok ? "OK" : "FAIL")
            << " (detector flags the planted slow drive, zero false "
               "positives at defaults)\n";
  std::cout << "ledger self-check: " << (ledger_ok ? "OK" : "FAIL")
            << " (hedge ledger issued == won + lost; failslow.* registry, "
               "FailSlowStats, and injector counters agree exactly)\n";
  std::cout << "identity self-check: " << (identity_ok ? "OK" : "FAIL")
            << " (fail-slow disabled is bit-identical to a default "
               "FailSlowConfig, engine clock included)\n";

  if (!flags.perf_out.empty()) {
    const obs::ProfileReport profile = perf_profiler.report();
    obs::PerfReport report;
    report.bench = "fail_slow";
    report.wall_s = total_timer.elapsed_s();
    report.events_dispatched = profile.dispatches;
    report.events_per_s = profile.events_per_wall_s();
    report.peak_rss_bytes = obs::peak_rss_bytes();
    report.kpis = kpis;
    report.kpis["fast"] = flags.fast ? 1.0 : 0.0;
    report.kpis["horizon_s"] = horizon;
    std::ostringstream profile_os;
    perf_profiler.write_json(profile_os);
    report.profile_json = profile_os.str();
    if (!report.save(flags.perf_out)) {
      std::cerr << "cannot write perf report to " << flags.perf_out << "\n";
      return 1;
    }
    std::cout << "(perf report written to " << flags.perf_out << ")\n";
  }
  return (tail_ok && detect_ok && ledger_ok && identity_ok) ? 0 : 1;
}
