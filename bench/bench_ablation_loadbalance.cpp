// Ablation A2: the Figure-3 zig-zag balancer vs simpler distribution
// policies (round-robin, first-fit, greedy least-loaded).
//
// First-fit concentrates a cluster on few tapes (serializing transfers);
// round-robin ignores load and drifts; the zig-zag and the LPT-style
// least-loaded policies should lead, with zig-zag matching the paper.
#include "core/parallel_batch.hpp"
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header("Ablation A2",
                         "tape load balancing policy (bandwidth in MB/s)");

  const exp::ExperimentConfig config;
  const exp::Experiment experiment(config);

  Table table({"policy", "bandwidth (MB/s)", "mean response (s)",
               "mean transfer (s)"});
  for (const core::BalancePolicy policy :
       {core::BalancePolicy::kZigZag, core::BalancePolicy::kRoundRobin,
        core::BalancePolicy::kFirstFit, core::BalancePolicy::kLeastLoaded}) {
    core::ParallelBatchParams params;
    params.balance.policy = policy;
    const core::ParallelBatchPlacement scheme(params);
    const auto run = experiment.run(scheme);
    table.add(core::to_string(policy), benchfig::mbps(run),
              run.metrics.mean_response().count(),
              run.metrics.mean_transfer().count());
  }
  benchfig::print_table(table, "ablation_loadbalance.csv");
  return 0;
}
