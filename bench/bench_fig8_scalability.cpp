// Figure 8: effective bandwidth vs the number of tape libraries
// (avg request ~240 GB).
//
// Paper expectation: parallel batch placement and object probability
// placement scale with added libraries (more drives + more robots);
// cluster probability placement does not scale (no transfer parallelism
// within a request), though going from 1 to 3 libraries helps it a little
// by relieving robot contention.
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header(
      "Figure 8",
      "bandwidth (MB/s) vs number of libraries (avg request ~240 GB)");

  Table table({"libraries", "parallel batch", "object probability",
               "cluster probability"});

  for (std::uint32_t n = 1; n <= 6; ++n) {
    exp::ExperimentConfig config;
    config.spec.num_libraries = n;
    config.workload = config.workload.with_average_request_size(
        Bytes{240ULL * 1000 * 1000 * 1000});
    // The paper does not say how its ~59 TB of objects fit one 28.8 TB
    // library; we scale the object population with capacity (keeping the
    // per-object size distribution and the ~150-object group size) so each
    // point stores the same fraction of what it owns.
    config.workload.num_objects = 10'000 * n;
    config.workload.object_groups = config.workload.num_objects / 150;
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();

    const auto pbp = experiment.run(*schemes.parallel_batch);
    const auto opp = experiment.run(*schemes.object_probability);
    const auto cpp = experiment.run(*schemes.cluster_probability);
    table.add(n, benchfig::mbps(pbp), benchfig::mbps(opp),
              benchfig::mbps(cpp));
  }

  benchfig::print_table(table, "fig8_scalability.csv");
  return 0;
}
