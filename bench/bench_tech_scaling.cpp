// Ablation A5: tape technology scaling (the paper's closing remark: with
// faster drives and bigger tapes "our scheme improves more than the other
// two schemes").
//
// Faster streaming shrinks transfer time, so switch overhead dominates —
// which is exactly what parallel batch placement minimizes; its relative
// lead over the baselines should widen with drive generation.
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header(
      "Ablation A5",
      "drive-technology scaling (transfer-rate multiplier on LTO-3)");

  Table table({"rate x", "parallel batch", "object probability",
               "cluster probability", "PBP / OPP"});

  for (const double factor : {1.0, 2.0, 4.0, 8.0}) {
    exp::ExperimentConfig config;
    config.spec.library.drive.transfer_rate =
        BytesPerSecond{80.0e6 * factor};
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();
    const auto pbp = experiment.run(*schemes.parallel_batch);
    const auto opp = experiment.run(*schemes.object_probability);
    const auto cpp = experiment.run(*schemes.cluster_probability);
    table.add(factor, benchfig::mbps(pbp), benchfig::mbps(opp),
              benchfig::mbps(cpp),
              benchfig::mbps(pbp) / benchfig::mbps(opp));
  }
  benchfig::print_table(table, "tech_scaling_rate.csv");

  benchfig::print_header(
      "Ablation A5b", "tape-capacity scaling (capacity multiplier, same "
                      "data; fewer, fuller tapes)");
  Table cap({"capacity x", "parallel batch", "object probability",
             "cluster probability"});
  for (const std::uint64_t factor : {1ULL, 2ULL, 4ULL}) {
    exp::ExperimentConfig config;
    config.spec.library.tape_capacity =
        Bytes{400ULL * 1000 * 1000 * 1000 * factor};
    const exp::Experiment experiment(config);
    const auto schemes = exp::make_standard_schemes();
    const auto pbp = experiment.run(*schemes.parallel_batch);
    const auto opp = experiment.run(*schemes.object_probability);
    const auto cpp = experiment.run(*schemes.cluster_probability);
    cap.add(factor, benchfig::mbps(pbp), benchfig::mbps(opp),
            benchfig::mbps(cpp));
  }
  benchfig::print_table(cap, "tech_scaling_capacity.csv");
  return 0;
}
