// Figure 9: decomposition of the average request response time into tape
// switch, data seek, and data transfer time per scheme (avg request
// ~160 GB, alpha = 0.3).
//
// Paper expectation: object probability placement has the longest switch
// time (no relationship awareness -> the most mounts) and it dominates its
// response; seek time is small for every scheme; object probability
// placement has the best (shortest) transfer time thanks to maximal
// scatter; parallel batch placement achieves the best overall balance and
// response time.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace tapesim;
  const auto trace_opts = benchfig::TraceOptions::parse(argc, argv);
  benchfig::print_header(
      "Figure 9",
      "response-time components (s) per scheme (avg request ~160 GB)");

  exp::ExperimentConfig config;
  config.workload = config.workload.with_average_request_size(
      Bytes{160ULL * 1000 * 1000 * 1000});
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes();
  const auto tracer = trace_opts.make_tracer();

  Table table({"scheme", "switch (s)", "seek (s)", "transfer (s)",
               "response (s)", "mean mounts"});
  bool first = true;
  for (const core::PlacementScheme* scheme :
       {schemes.parallel_batch.get(), schemes.object_probability.get(),
        schemes.cluster_probability.get()}) {
    exp::SchemeRun run;
    if (tracer != nullptr && first) {
      // Only the first scheme is traced: each scheme runs on a fresh
      // engine clock, so a combined trace would overlay their timelines.
      auto traced = experiment.run_traced(*scheme, *tracer);
      run = std::move(traced.run);
      std::cout << "traced scheme: " << run.scheme << "\n";
      benchfig::print_phase_breakdown(*tracer, traced.utilization);
    } else {
      run = experiment.run(*scheme);
    }
    first = false;
    table.add(run.scheme, run.metrics.mean_switch().count(),
              run.metrics.mean_seek().count(),
              run.metrics.mean_transfer().count(),
              run.metrics.mean_response().count(),
              run.metrics.mean_tape_switches());
  }

  benchfig::print_table(table, "fig9_components.csv");
  if (tracer != nullptr) trace_opts.finish(*tracer);
  return 0;
}
