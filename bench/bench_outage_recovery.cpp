// Outage recovery: availability, degraded-mode behavior, and disaster
// recovery vs library-outage rate × replication factor × DR bandwidth.
//
// Library-level fault domains take a whole library — all drives and the
// robot — down at once on a per-library renewal timeline; a configurable
// fraction of onsets are permanent site disasters that destroy every
// resident cartridge. Each sweep cell replays the same request sequence
// on the paper-default system (parallel batch placement, optionally
// wrapped in 2-way replication) under one outage posture and reports the
// unavailable fraction, parked/failover traffic, downtime, and — for
// replicated cells with repair enabled — the disaster-recovery surge and
// the measured time to full redundancy.
//
// Built-in self-checks (exit status), on the harsh-rate cells:
//   1. Redundancy: r = 2 yields a strictly lower unavailable fraction than
//      r = 1 (whose losses must be nonzero for the comparison to mean
//      anything).
//   2. Reconciliation: on a traced cell the outage.* registry counters,
//      the scheduler's OutageStats, and the per-request outcome sums
//      (parked extents, parked requests, failovers) agree exactly, and
//      every requested byte is accounted served, unavailable, or expired.
//   3. Recovery model: the measured mean time-to-full-redundancy after a
//      disaster falls within a generous band of the mean-field makespan
//      prediction (metrics::predicted_recovery_makespan, after Sun et al.,
//      arXiv:1701.00335).
//   4. Baseline identity: with outages disabled — even with every DR knob
//      armed — a faulty run is bit-identical to one with a default
//      OutageConfig, request by request, engine clock included.
#include <map>
#include <span>
#include <sstream>
#include <vector>

#include "core/parallel_batch.hpp"
#include "core/replication.hpp"
#include "figure_common.hpp"
#include "metrics/queueing.hpp"
#include "obs/perf.hpp"
#include "obs/profiler.hpp"
#include "util/rng.hpp"

namespace {

using namespace tapesim;

struct Bench {
  tape::SystemSpec spec = tape::SystemSpec::paper_default();
  workload::Workload workload;
  cluster::ObjectClusters clusters;
  std::uint64_t seed;

  explicit Bench(std::uint64_t seed_in)
      : workload(make_workload(seed_in)),
        clusters(cluster::cluster_by_requests(workload,
                                              make_constraints(spec))),
        seed(seed_in) {
    clusters.validate(workload);
  }

  static workload::Workload make_workload(std::uint64_t seed) {
    workload::WorkloadConfig config = workload::WorkloadConfig::paper_default();
    config.num_objects = 2'000;  // small set: a DR drain stays short
    Rng rng{seed};
    Rng workload_rng = rng.fork(0x574C);  // Experiment's workload substream
    return workload::generate_workload(config, workload_rng);
  }

  static cluster::ClusterConstraints make_constraints(
      const tape::SystemSpec& spec) {
    cluster::ClusterConstraints constraints;
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        0.9 * spec.library.tape_capacity.as_double())};
    return constraints;
  }

  [[nodiscard]] core::PlacementPlan make_plan(std::uint32_t replicas) const {
    const core::ParallelBatchPlacement inner{core::ParallelBatchParams{}};
    core::PlacementContext context;
    context.workload = &workload;
    context.spec = &spec;
    context.clusters = &clusters;
    if (replicas <= 1) return inner.place(context);
    core::ReplicationPolicy::Params rp;
    rp.replicas = replicas;
    return core::ReplicationPolicy(inner, rp).place(context);
  }
};

struct CellResult {
  metrics::ExperimentMetrics metrics;
  sched::OutageStats outage;
  sched::RepairStats repair;
  std::size_t backlog = 0;
  Seconds engine_end{};
  bool conserve_ok = true;    ///< per-request byte conservation
  std::uint64_t parked_extents_sum = 0;
  std::uint64_t parked_requests_sum = 0;
};

CellResult run_cell(const core::PlacementPlan& plan,
                    std::span<const RequestId> requests,
                    const fault::FaultConfig& faults,
                    const sched::RepairConfig& repair,
                    obs::Tracer* tracer = nullptr,
                    obs::Profiler* profiler = nullptr) {
  sched::SimulatorConfig config;
  config.faults = faults;
  config.repair = repair;
  config.tracer = tracer;
  if (const Status st = config.try_validate(); !st.ok()) {
    std::cerr << st.message() << "\n";
    std::exit(2);
  }
  sched::RetrievalSimulator sim(plan, config);
  if (profiler != nullptr) profiler->attach(sim.engine());
  CellResult cell;
  for (const RequestId r : requests) {
    const auto o = sim.run_request(r);
    cell.metrics.add(o);
    cell.conserve_ok =
        cell.conserve_ok &&
        o.bytes_served().count() + o.bytes_unavailable.count() +
                o.bytes_expired.count() ==
            o.bytes.count();
    cell.parked_extents_sum += o.extents_parked;
    if (o.extents_parked > 0) ++cell.parked_requests_sum;
  }
  sim.drain_repairs();
  if (profiler != nullptr) profiler->detach();
  cell.outage = sim.outage_stats();
  cell.repair = sim.repair_stats();
  cell.backlog = sim.repair_backlog();
  cell.engine_end = sim.engine().now();
  return cell;
}

/// Self-check 4: a default OutageConfig — DR knobs armed, master switch
/// off — must not perturb a single event of a faulty run.
bool outage_off_identical(const core::PlacementPlan& plan,
                          std::span<const RequestId> requests,
                          const fault::FaultConfig& base_faults) {
  sched::SimulatorConfig plain;
  plain.faults = base_faults;
  sched::SimulatorConfig armed = plain;
  armed.faults.outage.library_mttr = Seconds{123.0};
  armed.faults.outage.disaster_fraction = 0.5;
  armed.faults.outage.dr_bandwidth_fraction = 0.9;
  armed.faults.outage.dr_max_concurrent = 7;
  sched::RetrievalSimulator a(plan, plain);
  sched::RetrievalSimulator b(plan, armed);
  for (const RequestId r : requests) {
    const auto oa = a.run_request(r);
    const auto ob = b.run_request(r);
    if (oa.response.count() != ob.response.count() ||
        oa.seek.count() != ob.seek.count() ||
        oa.transfer.count() != ob.transfer.count() ||
        oa.status != ob.status || ob.extents_parked != 0 ||
        a.engine().now().count() != b.engine().now().count()) {
      std::cout << "IDENTITY FAIL: request " << r.value()
                << " diverges with an armed-but-disabled OutageConfig\n";
      return false;
    }
  }
  return b.outage_stats().started == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = benchfig::BenchFlags::parse(
      argc, argv, /*default_seed=*/42, "outage_recovery.csv");
  if (!flags.status.ok()) {
    std::cerr << flags.status.message() << "\n";
    return 2;
  }
  if (flags.help) {
    std::cout << benchfig::BenchFlags::usage(argv[0]);
    return 0;
  }
  benchfig::print_header(
      "Outage recovery",
      "availability, degraded-mode serving, and disaster recovery vs "
      "library-outage rate x replication factor x DR bandwidth (parallel "
      "batch placement)");

  const obs::WallTimer total_timer;
  obs::Profiler perf_profiler{64};
  obs::Profiler* const perf =
      flags.perf_out.empty() ? nullptr : &perf_profiler;

  const Bench bench(flags.seed);
  const core::PlacementPlan plan_r1 = bench.make_plan(1);
  const core::PlacementPlan plan_r2 = bench.make_plan(2);

  // One request sequence, replayed into every cell.
  const std::uint32_t count = flags.fast ? 100 : 200;
  std::vector<RequestId> requests;
  {
    Rng rng{flags.seed};
    Rng req_rng = rng.fork(0x4F52);  // outage-bench request substream
    const workload::RequestSampler sampler(bench.workload);
    requests.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      requests.push_back(sampler.sample(req_rng));
    }
  }

  // Probe the fault-free engine horizon: outage timelines are keyed to the
  // engine clock, so the sweep's MTBF axis is expressed in fractions of
  // the time the request sequence actually spans.
  const double horizon =
      run_cell(plan_r1, requests, {}, {}).engine_end.count();
  std::cout << "probed fault-free engine horizon: " << horizon << " s\n\n";

  // Harsh first — those cells carry the self-checks. Per-library MTBF of
  // half the horizon gives each of the 3 libraries ~2 expected onsets;
  // ~30% of onsets are site disasters, so the harsh cells reliably see at
  // least one destroyed library while the mild rate mostly sees transient
  // power-loss windows.
  const double mtbfs_full[] = {horizon, horizon * 4.0};
  const double mtbfs_fast[] = {horizon};
  const std::span<const double> mtbfs =
      flags.fast ? std::span<const double>(mtbfs_fast)
                 : std::span<const double>(mtbfs_full);
  const double dr_fracs_full[] = {1.0, 0.25};
  const double dr_fracs_fast[] = {1.0};
  const std::span<const double> dr_fracs =
      flags.fast ? std::span<const double>(dr_fracs_fast)
                 : std::span<const double>(dr_fracs_full);

  const auto outage_point = [&](double mtbf, double dr_frac) {
    fault::FaultConfig faults;
    faults.outage.library_mtbf = Seconds{mtbf};
    faults.outage.library_mttr = Seconds{horizon / 20.0};
    faults.outage.disaster_fraction = 0.25;
    faults.outage.dr_bandwidth_fraction = dr_frac;
    faults.outage.dr_max_concurrent = 8;
    return faults;
  };
  const auto dr_repair = [] {
    sched::RepairConfig repair;
    repair.enabled = true;
    return repair;
  };

  Table table({"mtbf (s)", "r", "dr bw", "unavail", "outages", "disasters",
               "downtime (s)", "parked reqs", "failovers", "dr jobs",
               "dr GB", "recovery (s)", "engine end (s)"});
  const auto add_row = [&](double mtbf, std::uint32_t r, double dr_frac,
                           const CellResult& cell) {
    table.add(mtbf, r, dr_frac, cell.metrics.fraction_unavailable(),
              cell.outage.started, cell.outage.disasters,
              cell.outage.downtime.count(), cell.outage.requests_parked,
              cell.outage.failovers, cell.outage.dr_jobs,
              static_cast<double>(cell.outage.dr_bytes) / 1e9,
              cell.outage.redundancy_recovery.count() > 0
                  ? cell.outage.redundancy_recovery.mean()
                  : 0.0,
              cell.engine_end.count());
  };

  bool redundancy_ok = true;
  bool reconcile_ok = true;
  bool recovery_ok = true;
  std::map<std::string, double> kpis;
  const double harsh_mtbf = mtbfs[0];
  const double check_frac = dr_fracs[0];

  for (const double mtbf : mtbfs) {
    // r = 1: no replicas, no DR — losses are the disaster exposure.
    const CellResult r1 =
        run_cell(plan_r1, requests, outage_point(mtbf, check_frac), {},
                 nullptr, perf);
    add_row(mtbf, 1, 0.0, r1);

    for (const double dr_frac : dr_fracs) {
      const bool traced = mtbf == harsh_mtbf && dr_frac == check_frac;
      obs::Tracer tracer;
      if (traced) flags.trace.configure(tracer);
      const CellResult r2 =
          run_cell(plan_r2, requests, outage_point(mtbf, dr_frac),
                   dr_repair(), traced ? &tracer : nullptr, perf);
      add_row(mtbf, 2, dr_frac, r2);

      if (!traced) continue;

      // Self-check 1: redundancy buys availability under correlated loss.
      const double un_r1 = r1.metrics.fraction_unavailable();
      const double un_r2 = r2.metrics.fraction_unavailable();
      if (!(un_r1 > 0.0) || !(un_r2 < un_r1)) {
        std::cout << "REDUNDANCY FAIL: r=2 unavailable fraction " << un_r2
                  << " is not strictly below r=1's " << un_r1 << "\n";
        redundancy_ok = false;
      }

      // Self-check 2: exact ledger agreement — registry counters, the
      // scheduler's stats, and the per-request outcome sums, plus byte
      // conservation inside every outcome.
      auto& reg = tracer.registry();
      const bool counters_ok =
          reg.counter("outage.started").value() == r2.outage.started &&
          reg.counter("outage.ended").value() == r2.outage.ended &&
          reg.counter("outage.disasters").value() == r2.outage.disasters &&
          reg.counter("outage.failovers").value() == r2.outage.failovers &&
          reg.counter("outage.requests_parked").value() ==
              r2.outage.requests_parked &&
          reg.counter("outage.dr_jobs").value() == r2.outage.dr_jobs &&
          reg.counter("outage.dr_bytes").value() == r2.outage.dr_bytes &&
          reg.gauge("outage.downtime_s").value() ==
              r2.outage.downtime.count();
      const bool sums_ok =
          r2.parked_extents_sum == r2.outage.extents_parked &&
          r2.parked_requests_sum == r2.outage.requests_parked;
      if (!counters_ok || !sums_ok || !r2.conserve_ok || !r1.conserve_ok) {
        std::cout << "RECONCILE FAIL: counters " << counters_ok << " sums "
                  << sums_ok << " conservation "
                  << (r2.conserve_ok && r1.conserve_ok) << "\n";
        reconcile_ok = false;
      }

      // Self-check 3: measured time-to-full-redundancy vs the mean-field
      // makespan. The prediction is a fluid limit; the measurement carries
      // foreground contention, robot queueing, and pacing idle tails, so
      // the band is wide — the point is catching order-of-magnitude drift
      // (a DR surge that crawls at trickle pace, or one that ignores the
      // bandwidth cap entirely).
      const auto& rec = r2.outage.redundancy_recovery;
      if (rec.count() == 0 || r2.outage.dr_jobs == 0) {
        std::cout << "RECOVERY FAIL: no disaster drained its DR queue "
                  << "(disasters " << r2.outage.disasters << ", dr jobs "
                  << r2.outage.dr_jobs << ")\n";
        recovery_ok = false;
      } else {
        const double per_disaster = static_cast<double>(rec.count());
        const Bytes lost{static_cast<Bytes::value_type>(
            static_cast<double>(r2.outage.dr_bytes) / per_disaster)};
        const auto jobs = static_cast<std::uint64_t>(
            static_cast<double>(r2.outage.dr_jobs) / per_disaster);
        const Seconds predicted = metrics::predicted_recovery_makespan(
            lost, jobs, bench.spec.library.drive.transfer_rate, dr_frac,
            /*concurrency=*/8, /*per_job_overhead=*/Seconds{180.0});
        const double measured = rec.mean();
        kpis["outage.recovery_predicted_s"] = predicted.count();
        if (!(measured >= predicted.count() / 6.0) ||
            !(measured <= predicted.count() * 6.0)) {
          std::cout << "RECOVERY FAIL: measured mean recovery " << measured
                    << " s outside 6x band of predicted "
                    << predicted.count() << " s\n";
          recovery_ok = false;
        }
      }

      if (flags.trace.enabled()) flags.trace.finish(tracer);
      kpis["outage.unavail_frac_r1"] = un_r1;
      kpis["outage.unavail_frac_r2"] = un_r2;
      kpis["outage.disasters"] = static_cast<double>(r2.outage.disasters);
      kpis["outage.dr_gb"] =
          static_cast<double>(r2.outage.dr_bytes) / 1e9;
      kpis["outage.downtime_s"] = r2.outage.downtime.count();
      kpis["outage.recovery_mean_s"] =
          rec.count() > 0 ? rec.mean() : 0.0;
    }
  }

  benchfig::print_table(table, flags.out);

  // Self-check 4: outages disabled is bit-identical — run on a faulty
  // posture so the comparison exercises the interrupt machinery.
  fault::FaultConfig base_faults;
  base_faults.drive_mtbf = Seconds{horizon / 4.0};
  base_faults.drive_mttr = Seconds{900.0};
  base_faults.mount_failure_prob = 0.02;
  const bool identity_ok =
      outage_off_identical(plan_r2, requests, base_faults);

  std::cout << "redundancy self-check: " << (redundancy_ok ? "OK" : "FAIL")
            << " (r=2 strictly reduces unavailable fraction under "
               "correlated outages)\n";
  std::cout << "reconcile self-check: " << (reconcile_ok ? "OK" : "FAIL")
            << " (outage.* counters, OutageStats, per-request sums, and "
               "byte conservation agree exactly)\n";
  std::cout << "recovery self-check: " << (recovery_ok ? "OK" : "FAIL")
            << " (measured time-to-full-redundancy within 6x of the "
               "mean-field makespan prediction)\n";
  std::cout << "identity self-check: " << (identity_ok ? "OK" : "FAIL")
            << " (outages disabled is bit-identical to a default "
               "OutageConfig, engine clock included)\n";

  if (!flags.perf_out.empty()) {
    const obs::ProfileReport profile = perf_profiler.report();
    obs::PerfReport report;
    report.bench = "outage_recovery";
    report.wall_s = total_timer.elapsed_s();
    report.events_dispatched = profile.dispatches;
    report.events_per_s = profile.events_per_wall_s();
    report.peak_rss_bytes = obs::peak_rss_bytes();
    report.kpis = kpis;
    report.kpis["fast"] = flags.fast ? 1.0 : 0.0;
    report.kpis["horizon_s"] = horizon;
    std::ostringstream profile_os;
    perf_profiler.write_json(profile_os);
    report.profile_json = profile_os.str();
    if (!report.save(flags.perf_out)) {
      std::cerr << "cannot write perf report to " << flags.perf_out << "\n";
      return 1;
    }
    std::cout << "(perf report written to " << flags.perf_out << ")\n";
  }
  return (redundancy_ok && reconcile_ok && recovery_ok && identity_ok) ? 0
                                                                       : 1;
}
