// Extension experiment: sustained restore traffic (beyond the paper).
//
// The paper's evaluation is strictly serial (zero queueing time). This
// bench offers Poisson restore traffic at increasing rates and measures
// mean sojourn (arrival -> last byte) with the concurrent simulator, next
// to the M/G/1 Pollaczek–Khinchine prediction fed with the serial
// service-time samples. Two things to see:
//   * overlap pays: the simulated system sustains rates past the serial
//     M/G/1 saturation point because independent requests share drives;
//   * striping's synchronization penalty, invisible in the serial model
//     (ablation A4), shows up as earlier sojourn blow-up under load.
#include "core/parallel_batch.hpp"
#include "core/striped.hpp"
#include "figure_common.hpp"
#include "metrics/queueing.hpp"
#include "sched/concurrent.hpp"

namespace {

using namespace tapesim;

struct Candidate {
  std::string name;
  core::PlacementPlan plan;
};

SampleSet sojourns(const core::PlacementPlan& plan, double rate,
                   std::uint32_t count, std::uint64_t seed,
                   sched::SimulatorConfig config = {}) {
  sched::ConcurrentSimulator simulator(plan, config);
  Rng rng{seed};
  const workload::RequestSampler sampler(plan.workload());
  const auto arrivals = sched::poisson_arrivals(sampler, rate, count, rng);
  const auto outcomes = simulator.run(arrivals);
  SampleSet samples;
  for (const auto& o : outcomes) samples.add(o.sojourn().count());
  return samples;
}

double mean_sojourn(const core::PlacementPlan& plan, double rate,
                    std::uint32_t count, std::uint64_t seed) {
  return sojourns(plan, rate, count, seed).mean();
}

}  // namespace

int main() {
  benchfig::print_header(
      "Concurrency extension",
      "mean sojourn (s) under Poisson restore traffic; [unstable] marks "
      "queue growth");

  exp::ExperimentConfig config;
  config.simulated_requests = 200;
  const exp::Experiment experiment(config);

  // Candidates: the paper's scheme, the relationship-blind baseline, and
  // width-4 striping (the serial model's apparent winner from A4).
  std::vector<Candidate> candidates;
  {
    const auto schemes = exp::make_standard_schemes();
    core::PlacementContext context{&experiment.workload(), &config.spec,
                                   &experiment.clusters()};
    candidates.push_back(
        {"parallel batch", schemes.parallel_batch->place(context)});
    candidates.push_back(
        {"object probability", schemes.object_probability->place(context)});
  }
  const core::ShardedWorkload sharded =
      core::shard_workload(experiment.workload(), 4, 1_GB);
  {
    core::StripedParams params;
    params.width = 4;
    core::PlacementContext context{&sharded.workload, &config.spec, nullptr};
    candidates.push_back(
        {"striped (width 4)", core::StripedPlacement(params).place(context)});
  }

  // Serial service-time samples give each candidate's M/G/1 model.
  std::vector<metrics::ExperimentMetrics> serial;
  for (const auto& c : candidates) {
    serial.push_back(exp::simulate_plan(c.plan, 200, config.seed));
  }
  const double base_saturation =
      metrics::saturation_rate(serial[0].response_samples());
  std::cout << "serial saturation of parallel batch: "
            << Table::num(base_saturation * 3600.0)
            << " requests/hour\n\n";

  Table table({"offered load (x serial sat.)", "parallel batch sim",
               "parallel batch M/G/1", "object probability sim",
               "striped w4 sim"});
  for (const double fraction : {0.3, 0.6, 0.9, 1.2, 1.5}) {
    const double rate = fraction * base_saturation;
    std::vector<std::string> row;
    row.push_back(Table::num(fraction));
    const auto pbp_mg1 =
        metrics::mg1_estimate(serial[0].response_samples(), rate);
    row.push_back(Table::num(mean_sojourn(candidates[0].plan, rate, 250,
                                          config.seed)));
    row.push_back(pbp_mg1.stable
                      ? Table::num(pbp_mg1.mean_sojourn.count())
                      : std::string{"[unstable]"});
    row.push_back(Table::num(mean_sojourn(candidates[1].plan, rate, 250,
                                          config.seed)));
    row.push_back(Table::num(mean_sojourn(candidates[2].plan, rate, 250,
                                          config.seed)));
    table.add_row(std::move(row));
  }
  benchfig::print_table(table, "concurrency.csv");

  // Fairness of the free-drive tape-pick policy under heavy load: greedy
  // most-bytes-first starves small requests (fat P95 tail), oldest-first
  // bounds waiting at a small mean cost.
  benchfig::print_header(
      "Concurrency extension (fairness)",
      "tape-pick policy at 1.2x serial saturation, parallel batch plan");
  Table fairness({"policy", "mean sojourn (s)", "P95 sojourn (s)",
                  "max sojourn (s)"});
  const double heavy = 1.2 * base_saturation;
  for (const auto pick :
       {sched::SimulatorConfig::TapePick::kMostDemandedBytes,
        sched::SimulatorConfig::TapePick::kOldestDemand}) {
    sched::SimulatorConfig sim_config;
    sim_config.tape_pick = pick;
    const SampleSet s =
        sojourns(candidates[0].plan, heavy, 250, config.seed, sim_config);
    fairness.add(pick == sched::SimulatorConfig::TapePick::kMostDemandedBytes
                     ? "most demanded bytes"
                     : "oldest demand first",
                 s.mean(), s.percentile(95), s.max());
  }
  benchfig::print_table(fairness, "concurrency_fairness.csv");
  return 0;
}
