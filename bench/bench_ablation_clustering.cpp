// Ablation A8: clustering strategy.
//
// Two constrained instantiations of the paper's hierarchical clustering:
// classic edge-ordered single linkage over the similarity graph, and the
// request-major variant the harness defaults to. Quality per §5.1
// ("probability of objects being accessed together", cluster size) plus
// the end-to-end effect on parallel batch placement.
#include "cluster/quality.hpp"
#include "cluster/similarity.hpp"
#include "core/parallel_batch.hpp"
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header(
      "Ablation A8",
      "clustering strategy: edge-ordered single linkage vs request-major");

  Table table({"alpha", "strategy", "request coverage", "clusters/request",
               "PBP bandwidth (MB/s)", "PBP mounts/req"});

  for (const double alpha : {0.0, 0.3, 1.0}) {
    exp::ExperimentConfig config;
    config.workload.zipf_alpha = alpha;
    const exp::Experiment experiment(config);
    const workload::Workload& wl = experiment.workload();

    cluster::ClusterConstraints constraints;
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        0.9 * config.spec.library.tape_capacity.as_double())};

    const auto graph = cluster::SimilarityGraph::from_workload(wl);
    const auto edge_clusters =
        cluster::cluster_objects(wl, graph, constraints);
    const auto request_clusters =
        cluster::cluster_by_requests(wl, constraints);

    const core::ParallelBatchPlacement scheme;
    for (const auto& [label, clusters] :
         {std::pair<const char*, const cluster::ObjectClusters*>{
              "single-linkage", &edge_clusters},
          {"request-major", &request_clusters}}) {
      const auto quality = cluster::evaluate_quality(*clusters, wl);
      core::PlacementContext context{&wl, &config.spec, clusters};
      const core::PlacementPlan plan = scheme.place(context);
      const auto metrics =
          exp::simulate_plan(plan, config.simulated_requests, config.seed);
      table.add(alpha, label, quality.mean_request_coverage,
                quality.mean_clusters_per_request,
                metrics.mean_bandwidth().megabytes_per_second(),
                metrics.mean_tape_switches());
    }
  }
  benchfig::print_table(table, "ablation_clustering.csv");
  return 0;
}
