// Ablation A3: on-tape alignment policy (Step 6).
//
// Organ pipe ([11]) minimizes expected head travel for independent
// accesses; descending-probability-from-BOT is the natural alternative for
// drives that always rewind before unload; given-order is the null policy.
// The alignment only moves seek time, so responses differ by that term.
#include "core/parallel_batch.hpp"
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header("Ablation A3",
                         "on-tape alignment (Step 6) and its seek cost");

  const exp::ExperimentConfig config;
  const exp::Experiment experiment(config);

  Table table({"alignment", "bandwidth (MB/s)", "mean seek (s)",
               "mean response (s)"});
  const std::pair<core::Alignment, const char*> alignments[] = {
      {core::Alignment::kOrganPipe, "organ pipe"},
      {core::Alignment::kDescendingProbability, "descending probability"},
      {core::Alignment::kGivenOrder, "placement order"},
  };
  for (const auto& [alignment, label] : alignments) {
    core::ParallelBatchParams params;
    params.alignment = alignment;
    const core::ParallelBatchPlacement scheme(params);
    const auto run = experiment.run(scheme);
    table.add(label, benchfig::mbps(run), run.metrics.mean_seek().count(),
              run.metrics.mean_response().count());
  }
  benchfig::print_table(table, "ablation_organpipe.csv");
  return 0;
}
