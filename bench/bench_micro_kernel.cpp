// Microbenchmarks for the building blocks: the discrete-event kernel, the
// B+-tree catalog index, the clustering stage, placement itself, and
// end-to-end request simulation. These establish that a full figure sweep
// (hundreds of placements + tens of thousands of simulated requests) stays
// comfortably laptop-scale.
//
// Two modes share one binary:
//   (default)            the google-benchmark suite below
//   --fast / --perf-out  a deterministic perf scenario (fixed seeds, fixed
//                        sizes) that times the kernel, the B+-tree, and a
//                        request-simulation phase with an obs::Profiler
//                        attached, writes a BENCH_micro_kernel.json report
//                        (obs::PerfReport) for tools/bench_compare, and
//                        self-checks that attaching the profiler costs
//                        under 2% wall time on the request phase
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/btree.hpp"
#include "cluster/hierarchy.hpp"
#include "cluster/similarity.hpp"
#include "core/parallel_batch.hpp"
#include "exp/experiment.hpp"
#include "obs/perf.hpp"
#include "obs/profiler.hpp"
#include "sched/simulator.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace tapesim;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1000.0);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(sim::Event{Seconds{times[i]}, i + 1, [] {}, {}});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000);

void BM_EngineDispatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_in(Seconds{static_cast<double>(i % 97)},
                         [&count] { ++count; });
    }
    engine.run();
    benchmark::DoNotOptimize(count);
    engine.reset();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EngineDispatch)->Arg(10000);

void BM_BTreeInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng{2};
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng());
  for (auto _ : state) {
    catalog::BPlusTree<std::uint32_t, std::uint64_t> tree;
    for (const auto k : keys) tree.insert(k, k);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BTreeInsert)->Arg(10000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  const std::uint64_t n = 100000;
  Rng rng{3};
  catalog::BPlusTree<std::uint32_t, std::uint64_t> tree;
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(rng());
    tree.insert(k, k);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(keys[i++ % n]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

workload::Workload bench_workload(std::uint32_t objects) {
  workload::WorkloadConfig config = workload::WorkloadConfig::paper_default();
  config.num_objects = objects;
  config.object_groups = std::max(1u, objects / 150);
  Rng rng{4};
  return workload::generate_workload(config, rng);
}

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench_workload(static_cast<std::uint32_t>(state.range(0)))
            .object_count());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(30000);

void BM_SimilarityGraph(benchmark::State& state) {
  const auto wl = bench_workload(30000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::SimilarityGraph::from_workload(wl).edge_count());
  }
}
BENCHMARK(BM_SimilarityGraph);

void BM_ClusterByRequests(benchmark::State& state) {
  const auto wl = bench_workload(30000);
  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{360ULL * 1000 * 1000 * 1000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::cluster_by_requests(wl, constraints).size());
  }
}
BENCHMARK(BM_ClusterByRequests);

void BM_ParallelBatchPlace(benchmark::State& state) {
  const auto wl = bench_workload(30000);
  const tape::SystemSpec spec = tape::SystemSpec::paper_default();
  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{360ULL * 1000 * 1000 * 1000};
  const auto clusters = cluster::cluster_by_requests(wl, constraints);
  const core::ParallelBatchPlacement scheme;
  const core::PlacementContext context{&wl, &spec, &clusters};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.place(context).tapes_used());
  }
}
BENCHMARK(BM_ParallelBatchPlace);

void BM_SimulateRequest(benchmark::State& state) {
  const auto wl = bench_workload(30000);
  const tape::SystemSpec spec = tape::SystemSpec::paper_default();
  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{360ULL * 1000 * 1000 * 1000};
  const auto clusters = cluster::cluster_by_requests(wl, constraints);
  const core::ParallelBatchPlacement scheme;
  const core::PlacementContext context{&wl, &spec, &clusters};
  const core::PlacementPlan plan = scheme.place(context);
  sched::RetrievalSimulator sim(plan);
  Rng rng{5};
  const workload::RequestSampler sampler(wl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.run_request(sampler.sample(rng)).response.count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateRequest);

// ---------------------------------------------------------------------------
// Deterministic perf scenario (--fast / --perf-out). Fixed seeds and sizes
// so every sim-derived KPI is bit-identical across machines — only the
// wall-clock fields vary, and tools/bench_compare gives those a generous
// band.

struct PerfSizes {
  std::size_t kernel_events;
  std::uint64_t btree_keys;
  std::uint32_t objects;
  std::size_t requests;
};

constexpr PerfSizes kFullSizes{400000, 200000, 30000, 2000};
constexpr PerfSizes kFastSizes{50000, 50000, 8000, 300};

// Event actions here run in the hundreds of nanoseconds, so the perf
// scenario times 1-in-128 dispatches: a 2% overhead budget is a handful
// of nanoseconds per event, which per-dispatch clock reads alone exceed.
// Dispatch/run totals and every KPI stay exact regardless of the stride.
constexpr std::size_t kProfileStride = 128;

// Kernel phase: raw dispatch throughput with the profiler attached — empty
// actions, so run_wall is almost entirely queue push/pop (kernel_wall_s).
double kernel_phase(const PerfSizes& sizes, obs::Profiler& profiler) {
  sim::Engine engine;
  profiler.attach(engine);
  std::size_t count = 0;
  for (std::size_t i = 0; i < sizes.kernel_events; ++i) {
    engine.schedule_in(Seconds{static_cast<double>(i % 97)},
                       [&count] { ++count; });
  }
  engine.run();
  profiler.detach();
  return static_cast<double>(count);
}

double btree_phase(const PerfSizes& sizes) {
  Rng rng{2};
  catalog::BPlusTree<std::uint32_t, std::uint64_t> tree;
  for (std::uint64_t i = 0; i < sizes.btree_keys; ++i) {
    const auto k = static_cast<std::uint32_t>(rng());
    tree.insert(k, k);
  }
  std::uint64_t hits = 0;
  Rng probe{3};
  for (std::uint64_t i = 0; i < sizes.btree_keys; ++i) {
    if (tree.find(static_cast<std::uint32_t>(probe())) != nullptr) ++hits;
  }
  return static_cast<double>(tree.size() + hits);
}

struct RequestPhaseResult {
  double wall_s = 0.0;
  double mean_response_s = 0.0;
  std::uint64_t switches = 0;
};

// Request phase: end-to-end request simulation on a fresh simulator (state
// resets between trials, so profiled and unprofiled runs do identical
// work). Actions here do real tape math — the representative workload for
// the profiler-overhead self-check.
RequestPhaseResult request_phase(const core::PlacementPlan& plan,
                                 std::size_t requests,
                                 obs::Profiler* profiler) {
  const obs::WallTimer timer;
  sched::RetrievalSimulator sim(plan);
  obs::Profiler* attached = profiler;
  if (attached != nullptr) attached->attach(sim.engine());
  Rng rng{5};
  const workload::RequestSampler sampler(sim.workload());
  double response_sum = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    response_sum += sim.run_request(sampler.sample(rng)).response.count();
  }
  if (attached != nullptr) attached->detach();
  RequestPhaseResult result;
  result.wall_s = timer.elapsed_s();
  result.mean_response_s =
      requests == 0 ? 0.0 : response_sum / static_cast<double>(requests);
  result.switches = sim.total_switches();
  return result;
}

// Best-of-N wall time: the minimum is the least-noise estimate of the true
// cost, which is what an overhead bound should compare.
template <typename Fn>
double best_of(int trials, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < trials; ++i) best = std::min(best, fn());
  return best;
}

int run_perf_scenario(bool fast, const std::string& perf_out) {
  const PerfSizes& sizes = fast ? kFastSizes : kFullSizes;
  obs::PerfReport report;
  report.bench = "micro_kernel";
  const obs::WallTimer total;

  obs::Profiler profiler{kProfileStride};
  const double kernel_count = kernel_phase(sizes, profiler);
  const obs::ProfileReport kernel = profiler.report();

  const double btree_checksum = btree_phase(sizes);

  const auto wl = bench_workload(sizes.objects);
  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{360ULL * 1000 * 1000 * 1000};
  const auto clusters = cluster::cluster_by_requests(wl, constraints);
  const tape::SystemSpec spec = tape::SystemSpec::paper_default();
  const core::ParallelBatchPlacement scheme;
  const core::PlacementContext context{&wl, &spec, &clusters};
  const core::PlacementPlan plan = scheme.place(context);

  obs::Profiler request_profiler{kProfileStride};
  const RequestPhaseResult requests =
      request_phase(plan, sizes.requests, &request_profiler);
  const obs::ProfileReport request_profile = request_profiler.report();

  report.wall_s = total.elapsed_s();
  report.events_dispatched = kernel.dispatches + request_profile.dispatches;
  report.events_per_s =
      kernel.run_wall_s + request_profile.run_wall_s > 0.0
          ? static_cast<double>(report.events_dispatched) /
                (kernel.run_wall_s + request_profile.run_wall_s)
          : 0.0;
  report.peak_rss_bytes = obs::peak_rss_bytes();
  // Deterministic KPIs: any drift here is a behavior change.
  report.kpis["kernel.events"] = kernel_count;
  report.kpis["btree.checksum"] = btree_checksum;
  report.kpis["placement.tapes_used"] =
      static_cast<double>(plan.tapes_used());
  report.kpis["request.count"] = static_cast<double>(sizes.requests);
  report.kpis["request.mean_response_s"] = requests.mean_response_s;
  report.kpis["request.switches"] =
      static_cast<double>(requests.switches);
  report.kpis["request.sim_advanced_s"] = request_profile.sim_advanced_s;
  {
    std::ostringstream os;
    request_profiler.write_json(os);
    report.profile_json = os.str();
  }

  std::cout << "perf scenario (" << (fast ? "fast" : "full") << "):\n"
            << "  kernel: " << kernel.dispatches << " dispatches, "
            << kernel.events_per_wall_s() << " events/s (kernel wall "
            << kernel.kernel_wall_s() << " s)\n"
            << "  requests: " << sizes.requests << " in "
            << requests.wall_s << " s wall, mean response "
            << requests.mean_response_s << " s, sim speedup "
            << request_profile.sim_s_per_wall_s() << "x\n"
            << "  total wall: " << report.wall_s << " s, peak RSS "
            << static_cast<double>(report.peak_rss_bytes) / (1024.0 * 1024.0)
            << " MiB\n";

  if (!perf_out.empty()) {
    if (!report.save(perf_out)) {
      std::cerr << "cannot write perf report to " << perf_out << "\n";
      return 1;
    }
    std::cout << "(perf report written to " << perf_out << ")\n";
  }

  // Self-check: attaching the profiler must cost < 2% wall on the request
  // phase (real event actions). Best-of-3 on each side filters scheduler
  // noise; the small absolute floor keeps a sub-100ms fast run from
  // failing on a single timer quantum.
  const std::size_t check_requests = std::min(sizes.requests, std::size_t{300});
  const double plain = best_of(
      3, [&] { return request_phase(plan, check_requests, nullptr).wall_s; });
  obs::Profiler check_profiler{kProfileStride};
  const double profiled = best_of(3, [&] {
    return request_phase(plan, check_requests, &check_profiler).wall_s;
  });
  const double overhead =
      plain > 0.0 ? (profiled - plain) / plain : 0.0;
  const bool ok = profiled <= plain * 1.02 + 0.005;
  std::cout << "profiler overhead self-check: plain " << plain
            << " s, profiled " << profiled << " s ("
            << overhead * 100.0 << "%) -> " << (ok ? "OK" : "FAIL")
            << " (limit 2%)\n";
  if (!ok) {
    std::cerr << "profiler overhead exceeds the 2% budget\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = false;
  std::string perf_out;
  std::vector<char*> bench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      fast = true;
    } else if (arg == "--perf-out" && i + 1 < argc) {
      perf_out = argv[++i];
    } else if (arg.rfind("--perf-out=", 0) == 0) {
      perf_out = arg.substr(std::string("--perf-out=").size());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench_micro_kernel [--fast] [--perf-out=PATH]"
                << " [google-benchmark flags]\n"
                << "  --fast           reduced perf scenario only (skips the"
                << " google-benchmark suite)\n"
                << "  --perf-out=PATH  write an obs::PerfReport JSON for"
                << " tools/bench_compare\n";
      return 0;
    } else {
      bench_args.push_back(argv[i]);
    }
  }

  if (fast || !perf_out.empty()) {
    const int status = run_perf_scenario(fast, perf_out);
    if (status != 0 || fast) return status;
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
