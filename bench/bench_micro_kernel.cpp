// Microbenchmarks for the building blocks (google-benchmark): the
// discrete-event kernel, the B+-tree catalog index, the clustering stage,
// placement itself, and end-to-end request simulation. These establish
// that a full figure sweep (hundreds of placements + tens of thousands of
// simulated requests) stays comfortably laptop-scale.
#include <benchmark/benchmark.h>

#include "catalog/btree.hpp"
#include "cluster/hierarchy.hpp"
#include "cluster/similarity.hpp"
#include "core/parallel_batch.hpp"
#include "exp/experiment.hpp"
#include "sched/simulator.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

using namespace tapesim;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1000.0);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.push(sim::Event{Seconds{times[i]}, i + 1, [] {}, {}});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1000)->Arg(10000);

void BM_EngineDispatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_in(Seconds{static_cast<double>(i % 97)},
                         [&count] { ++count; });
    }
    engine.run();
    benchmark::DoNotOptimize(count);
    engine.reset();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EngineDispatch)->Arg(10000);

void BM_BTreeInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng{2};
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng());
  for (auto _ : state) {
    catalog::BPlusTree<std::uint32_t, std::uint64_t> tree;
    for (const auto k : keys) tree.insert(k, k);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BTreeInsert)->Arg(10000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  const std::uint64_t n = 100000;
  Rng rng{3};
  catalog::BPlusTree<std::uint32_t, std::uint64_t> tree;
  std::vector<std::uint32_t> keys(n);
  for (auto& k : keys) {
    k = static_cast<std::uint32_t>(rng());
    tree.insert(k, k);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(keys[i++ % n]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

workload::Workload bench_workload(std::uint32_t objects) {
  workload::WorkloadConfig config = workload::WorkloadConfig::paper_default();
  config.num_objects = objects;
  config.object_groups = std::max(1u, objects / 150);
  Rng rng{4};
  return workload::generate_workload(config, rng);
}

void BM_WorkloadGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench_workload(static_cast<std::uint32_t>(state.range(0)))
            .object_count());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Arg(30000);

void BM_SimilarityGraph(benchmark::State& state) {
  const auto wl = bench_workload(30000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::SimilarityGraph::from_workload(wl).edge_count());
  }
}
BENCHMARK(BM_SimilarityGraph);

void BM_ClusterByRequests(benchmark::State& state) {
  const auto wl = bench_workload(30000);
  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{360ULL * 1000 * 1000 * 1000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::cluster_by_requests(wl, constraints).size());
  }
}
BENCHMARK(BM_ClusterByRequests);

void BM_ParallelBatchPlace(benchmark::State& state) {
  const auto wl = bench_workload(30000);
  const tape::SystemSpec spec = tape::SystemSpec::paper_default();
  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{360ULL * 1000 * 1000 * 1000};
  const auto clusters = cluster::cluster_by_requests(wl, constraints);
  const core::ParallelBatchPlacement scheme;
  const core::PlacementContext context{&wl, &spec, &clusters};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.place(context).tapes_used());
  }
}
BENCHMARK(BM_ParallelBatchPlace);

void BM_SimulateRequest(benchmark::State& state) {
  const auto wl = bench_workload(30000);
  const tape::SystemSpec spec = tape::SystemSpec::paper_default();
  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{360ULL * 1000 * 1000 * 1000};
  const auto clusters = cluster::cluster_by_requests(wl, constraints);
  const core::ParallelBatchPlacement scheme;
  const core::PlacementContext context{&wl, &spec, &clusters};
  const core::PlacementPlan plan = scheme.place(context);
  sched::RetrievalSimulator sim(plan);
  Rng rng{5};
  const workload::RequestSampler sampler(wl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.run_request(sampler.sample(rng)).response.count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateRequest);

}  // namespace

BENCHMARK_MAIN();
