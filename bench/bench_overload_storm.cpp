// Overload storm: goodput and admitted-tail latency vs burst intensity ×
// queue bound × shedding policy under flash-crowd (MMPP-2) traffic.
//
// The paper's serving model has no queueing story; this bench measures what
// happens when arrivals outpace minutes-long tape service. Each sweep cell
// replays the same storm arrival stream (per intensity) against a fresh
// simulator on the same parallel-batch plan, under one overload policy:
//   - none:     admit everything FIFO; only per-request deadlines protect
//   - taildrop: bounded queue, newest arrival rejected on overflow
//   - priority: bounded queue, batch work displaced by foreground work,
//               served priority-first / earliest-deadline
// Shedding cells also reject-hopeless (estimated completion past deadline).
//
// Built-in self-checks (exit status):
//   1. At the highest burst intensity and tightest bound, every shedding
//      policy keeps the p99 sojourn of admitted requests strictly below
//      the no-shedding p99 and within the largest per-request SLO.
//   2. Same cells: strictly higher goodput (deadline-met bytes) than
//      no-shedding.
//   3. The obs counters overload.{served,shed,expired} reconcile exactly
//      with the OverloadReport and RequestMetrics totals.
#include <map>
#include <span>
#include <sstream>

#include "core/parallel_batch.hpp"
#include "figure_common.hpp"
#include "obs/perf.hpp"
#include "obs/profiler.hpp"
#include "sched/overload.hpp"
#include "util/rng.hpp"
#include "workload/storm.hpp"

namespace {

using namespace tapesim;

struct CellResult {
  sched::OverloadReport report;
  Seconds slo_max{};  ///< largest relative deadline across the arrivals
};

struct Bench {
  tape::SystemSpec spec = tape::SystemSpec::paper_default();
  workload::Workload workload;
  cluster::ObjectClusters clusters;
  core::PlacementPlan plan;
  std::uint64_t seed;
  Seconds mean_service{};

  explicit Bench(std::uint64_t seed_in)
      : workload(make_workload(seed_in)),
        clusters(cluster::cluster_by_requests(workload,
                                              make_constraints(spec))),
        plan(make_plan()),
        seed(seed_in) {
    mean_service = calibrate();
  }

  static workload::Workload make_workload(std::uint64_t seed) {
    workload::WorkloadConfig config = workload::WorkloadConfig::paper_default();
    config.num_objects = 6'000;
    Rng rng{seed};
    Rng workload_rng = rng.fork(0x574C);  // Experiment's workload substream
    return workload::generate_workload(config, workload_rng);
  }

  static cluster::ClusterConstraints make_constraints(
      const tape::SystemSpec& spec) {
    cluster::ClusterConstraints constraints;
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        0.9 * spec.library.tape_capacity.as_double())};
    return constraints;
  }

  core::PlacementPlan make_plan() const {
    const core::ParallelBatchPlacement scheme{core::ParallelBatchParams{}};
    core::PlacementContext context;
    context.workload = &workload;
    context.spec = &spec;
    context.clusters = &clusters;
    return scheme.place(context);
  }

  /// Mean sequential response over a short warm sample — the service-time
  /// scale every rate and deadline in the sweep is expressed in.
  Seconds calibrate() const {
    sched::RetrievalSimulator sim(plan);
    Rng rng{seed};
    Rng sample_rng = rng.fork(0x5251);
    const workload::RequestSampler sampler(workload);
    SampleSet service;
    for (int i = 0; i < 30; ++i) {
      service.add(sim.run_request(sampler.sample(sample_rng)).response.count());
    }
    return Seconds{service.mean()};
  }

  sched::OverloadConfig make_config(sched::ShedPolicy policy,
                                    std::uint32_t depth) const {
    sched::OverloadConfig config;
    config.deadline.enabled = true;
    config.deadline.base = mean_service * 2.0;
    config.deadline.per_gb = Seconds{25.0};
    config.shed = policy;
    if (policy != sched::ShedPolicy::kNone) {
      config.admission.max_queue_depth = depth;
      config.admission.reject_hopeless = true;
    }
    return config;
  }

  CellResult run(std::span<const workload::TimedRequest> arrivals,
                 sched::ShedPolicy policy, std::uint32_t depth,
                 obs::Tracer* tracer = nullptr,
                 obs::Profiler* profiler = nullptr) const {
    sched::SimulatorConfig sim_config;
    sim_config.tracer = tracer;
    sched::RetrievalSimulator sim(plan, sim_config);
    if (profiler != nullptr) profiler->attach(sim.engine());
    sched::OverloadRunner runner(sim, make_config(policy, depth), tracer);
    CellResult cell;
    cell.report = runner.run(arrivals);
    if (profiler != nullptr) profiler->detach();
    for (const workload::TimedRequest& a : arrivals) {
      const Bytes bytes = workload.request_bytes(a.request);
      cell.slo_max =
          std::max(cell.slo_max, runner.config().deadline.deadline_for(bytes));
    }
    return cell;
  }
};

double gigabytes(Bytes b) { return b.as_double() / 1e9; }

}  // namespace

int main(int argc, char** argv) {
  const auto flags = benchfig::BenchFlags::parse(
      argc, argv, /*default_seed=*/42, "overload_storm.csv");
  if (!flags.status.ok()) {
    std::cerr << flags.status.message() << "\n";
    return 2;
  }
  if (flags.help) {
    std::cout << benchfig::BenchFlags::usage(argv[0]);
    return 0;
  }
  benchfig::print_header(
      "Overload storm",
      "goodput and admitted-request tail latency vs burst intensity x "
      "queue bound x shedding policy (parallel batch placement)");

  // Wall/events accounting for the --perf-out report. The profiler only
  // observes wall clocks, so attaching it cannot change any sim result.
  const obs::WallTimer total_timer;
  // 1-in-64 dispatch sampling keeps the attached profiler from skewing
  // the wall numbers the perf report records (totals stay exact).
  obs::Profiler perf_profiler{64};
  obs::Profiler* const perf =
      flags.perf_out.empty() ? nullptr : &perf_profiler;

  const Bench bench(flags.seed);
  const double service = bench.mean_service.count();
  std::cout << "calibrated mean service: " << service << " s\n\n";

  // Burst intensity in units of offered load during the burst state
  // (rho = burst arrival rate x mean service time).
  const double intensities_full[] = {1.0, 2.5, 6.0};
  const double intensities_fast[] = {2.5, 6.0};
  const std::span<const double> intensities =
      flags.fast ? std::span<const double>(intensities_fast)
                 : std::span<const double>(intensities_full);
  const std::uint32_t depths_full[] = {8, 32};
  const std::uint32_t depths_fast[] = {8};
  const std::span<const std::uint32_t> depths =
      flags.fast ? std::span<const std::uint32_t>(depths_fast)
                 : std::span<const std::uint32_t>(depths_full);
  const std::uint32_t count = flags.fast ? 120 : 300;
  const std::uint32_t tight_depth = depths[0];
  const double top_rho = intensities[intensities.size() - 1];

  Table table({"burst rho", "policy", "depth", "served", "shed", "expired",
               "goodput GB", "p99 adm (s)", "mean wait (s)",
               "makespan (s)"});

  bool tail_ok = true;
  bool goodput_ok = true;
  bool reconcile_ok = true;
  // Headline KPIs for the perf report: the traced priority cell at the
  // heaviest burst and tightest bound (the cell the self-checks gate).
  std::map<std::string, double> kpis;

  for (const double rho : intensities) {
    // One arrival stream per intensity, replayed for every policy cell so
    // the comparison is apples to apples.
    workload::StormConfig storm;
    storm.base_rate = 0.2 / service;
    storm.burst_rate = rho / service;
    storm.mean_burst_duration = bench.mean_service * 10.0;
    storm.mean_calm_duration = bench.mean_service * 10.0;
    storm.batch_fraction = 0.5;
    Rng rng{flags.seed};
    Rng storm_rng = rng.fork(0x5357);
    const workload::RequestSampler sampler(bench.workload);
    const auto arrivals =
        workload::storm_arrivals(sampler, storm, count, storm_rng);

    const CellResult none = bench.run(arrivals, sched::ShedPolicy::kNone,
                                      /*depth=*/0, nullptr, perf);
    const double p99_none = none.report.admitted_sojourn.percentile(99.0);
    table.add(rho, to_string(sched::ShedPolicy::kNone), 0, none.report.served,
              none.report.shed_total(), none.report.expired_total(),
              gigabytes(none.report.goodput_bytes()), p99_none,
              none.report.queue_waits.mean(), none.report.makespan.count());

    for (const sched::ShedPolicy policy :
         {sched::ShedPolicy::kTailDrop, sched::ShedPolicy::kPriority}) {
      for (const std::uint32_t depth : depths) {
        // The reconciliation cells run traced so the obs counters can be
        // cross-checked against the report. Each cell gets its own tracer:
        // the reconciliation is exact, so counters must not accumulate
        // across cells.
        const bool traced = rho == top_rho && depth == tight_depth;
        obs::Tracer tracer;
        if (traced && policy == sched::ShedPolicy::kPriority) {
          // The cell whose telemetry is written below gets the full
          // configuration (cadence + optional windowed timeseries).
          flags.trace.configure(tracer);
        } else if (flags.trace.sample_every > 0.0) {
          tracer.set_sample_cadence(Seconds{flags.trace.sample_every});
        }
        const CellResult cell = bench.run(
            arrivals, policy, depth, traced ? &tracer : nullptr, perf);
        const sched::OverloadReport& r = cell.report;
        const double p99 = r.admitted_sojourn.percentile(99.0);
        table.add(rho, to_string(policy), depth, r.served, r.shed_total(),
                  r.expired_total(), gigabytes(r.goodput_bytes()), p99,
                  r.queue_waits.mean(), r.makespan.count());

        if (traced) {
          // Self-check 1: bounded tail for admitted work. Every admitted
          // request finishes or is cut at its own deadline, so the hard
          // cap is the largest SLO in the stream; shedding must also beat
          // the no-shedding tail strictly.
          if (!(p99 < p99_none) || !(p99 <= cell.slo_max.count())) {
            std::cout << "TAIL FAIL: " << to_string(policy) << " depth "
                      << depth << " p99 " << p99 << " vs no-shed " << p99_none
                      << " (SLO cap " << cell.slo_max.count() << ")\n";
            tail_ok = false;
          }
          // Self-check 2: shedding buys goodput under the heaviest burst.
          if (!(r.goodput_bytes() > none.report.goodput_bytes())) {
            std::cout << "GOODPUT FAIL: " << to_string(policy) << " depth "
                      << depth << " goodput "
                      << gigabytes(r.goodput_bytes()) << " GB vs no-shed "
                      << gigabytes(none.report.goodput_bytes()) << " GB\n";
            goodput_ok = false;
          }
          // Self-check 3: obs counters == report == metrics, exactly.
          auto& reg = tracer.registry();
          const bool counters =
              reg.counter("overload.served").value() == r.served &&
              reg.counter("overload.shed").value() == r.shed_total() &&
              reg.counter("overload.expired").value() == r.expired_total();
          const bool metrics_match =
              r.metrics.served_count() == r.served &&
              r.metrics.shed_count() == r.shed_total() &&
              r.metrics.expired_count() == r.expired_total() &&
              r.metrics.count() + r.metrics.shed_count() == arrivals.size() &&
              r.served + r.shed_total() + r.expired_total() ==
                  arrivals.size();
          if (!counters || !metrics_match) {
            std::cout << "RECONCILE FAIL: " << to_string(policy) << " depth "
                      << depth << " served " << r.served << " shed "
                      << r.shed_total() << " expired " << r.expired_total()
                      << " of " << arrivals.size() << "\n";
            reconcile_ok = false;
          }
          // Requested telemetry captures the priority cell (one cell per
          // file — the cells run on independent engine clocks).
          if (flags.trace.enabled() &&
              policy == sched::ShedPolicy::kPriority) {
            flags.trace.finish(tracer);
          }
          if (policy == sched::ShedPolicy::kPriority) {
            kpis["overload.goodput_gb"] = gigabytes(r.goodput_bytes());
            kpis["overload.p99_admitted_s"] = p99;
            kpis["overload.served"] = static_cast<double>(r.served);
            kpis["overload.shed"] = static_cast<double>(r.shed_total());
            kpis["overload.expired"] =
                static_cast<double>(r.expired_total());
          }
        }
      }
    }
  }

  benchfig::print_table(table, flags.out);

  std::cout << "tail self-check: " << (tail_ok ? "OK" : "FAIL")
            << " (shedding p99 admitted sojourn strictly below no-shedding "
               "and within the largest SLO at burst rho "
            << top_rho << ")\n";
  std::cout << "goodput self-check: " << (goodput_ok ? "OK" : "FAIL")
            << " (shedding strictly beats no-shedding deadline-met bytes at "
               "burst rho "
            << top_rho << ")\n";
  std::cout << "reconcile self-check: " << (reconcile_ok ? "OK" : "FAIL")
            << " (overload.{served,shed,expired} counters match report and "
               "RequestMetrics totals exactly)\n";

  if (!flags.perf_out.empty()) {
    const obs::ProfileReport profile = perf_profiler.report();
    obs::PerfReport report;
    report.bench = "overload_storm";
    report.wall_s = total_timer.elapsed_s();
    report.events_dispatched = profile.dispatches;
    report.events_per_s = profile.events_per_wall_s();
    report.peak_rss_bytes = obs::peak_rss_bytes();
    report.kpis = kpis;
    report.kpis["fast"] = flags.fast ? 1.0 : 0.0;
    report.kpis["calibrated_service_s"] = service;
    std::ostringstream profile_os;
    perf_profiler.write_json(profile_os);
    report.profile_json = profile_os.str();
    if (!report.save(flags.perf_out)) {
      std::cerr << "cannot write perf report to " << flags.perf_out << "\n";
      return 1;
    }
    std::cout << "(perf report written to " << flags.perf_out << ")\n";
  }
  return (tail_ok && goodput_ok && reconcile_ok) ? 0 : 1;
}
