// Ablation A4: why the paper rejects striping (Section 2).
//
// Each object is sharded across `width` tapes; a request completes only
// when its slowest shard lands, so every retrieval synchronizes `width`
// tape mounts. Narrow stripes add some parallelism; wide stripes drown in
// switch synchronization — reproducing the Golubchik/Drapeau/Chiueh
// finding that striped tape arrays can lose to non-striped placement.
#include "core/parallel_batch.hpp"
#include "core/striped.hpp"
#include "figure_common.hpp"

int main() {
  using namespace tapesim;
  benchfig::print_header(
      "Ablation A4", "parallel batch placement vs striping (avg ~213 GB)");

  exp::ExperimentConfig config;
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes();

  Table table({"scheme", "bandwidth (MB/s)", "mean response (s)",
               "mean mounts/request"});

  const auto pbp = experiment.run(*schemes.parallel_batch);
  table.add("parallel batch placement", benchfig::mbps(pbp),
            pbp.metrics.mean_response().count(),
            pbp.metrics.mean_tape_switches());

  for (const std::uint32_t width : {2u, 4u, 8u}) {
    const core::ShardedWorkload sharded =
        core::shard_workload(experiment.workload(), width, 1_GB);
    core::StripedParams params;
    params.width = width;
    const core::StripedPlacement scheme(params);
    core::PlacementContext context{&sharded.workload, &config.spec, nullptr};
    const core::PlacementPlan plan = scheme.place(context);
    const auto metrics =
        exp::simulate_plan(plan, config.simulated_requests, config.seed);
    table.add("striped (width " + std::to_string(width) + ")",
              metrics.mean_bandwidth().megabytes_per_second(),
              metrics.mean_response().count(),
              metrics.mean_tape_switches());
  }
  benchfig::print_table(table, "ablation_striping.csv");

  // The paper's objection to striping ("the optimal striping width depends
  // on object size [and] system workload") bites when retrievals are
  // small: a one-object restore striped over w tapes synchronizes w mounts
  // where unstriped placement needs at most one.
  benchfig::print_header(
      "Ablation A4b",
      "small restores (1-3 objects/request): striping pays w mounts each");

  exp::ExperimentConfig small;
  small.workload.num_objects = 6000;  // ~64 TB of 4-64 GB objects
  small.workload.num_requests = 3000;  // touch (almost) every object, so
                                       // most retrievals hit offline tapes
  small.workload.min_objects_per_request = 1;
  small.workload.max_objects_per_request = 3;
  small.workload.min_object_size = 4_GB;
  small.workload.max_object_size = 64_GB;
  small.workload.object_groups = 2000;  // groups of ~3 objects
  const exp::Experiment small_exp(small);
  const auto small_schemes = exp::make_standard_schemes();

  Table small_table({"scheme", "bandwidth (MB/s)", "mean response (s)",
                     "mean mounts/request"});
  const auto small_pbp = small_exp.run(*small_schemes.parallel_batch);
  small_table.add("parallel batch placement", benchfig::mbps(small_pbp),
                  small_pbp.metrics.mean_response().count(),
                  small_pbp.metrics.mean_tape_switches());
  for (const std::uint32_t width : {2u, 4u, 8u}) {
    const core::ShardedWorkload sharded =
        core::shard_workload(small_exp.workload(), width, 1_GB);
    core::StripedParams params;
    params.width = width;
    const core::StripedPlacement scheme(params);
    core::PlacementContext context{&sharded.workload, &small.spec, nullptr};
    const core::PlacementPlan plan = scheme.place(context);
    const auto metrics =
        exp::simulate_plan(plan, small.simulated_requests, small.seed);
    small_table.add("striped (width " + std::to_string(width) + ")",
                    metrics.mean_bandwidth().megabytes_per_second(),
                    metrics.mean_response().count(),
                    metrics.mean_tape_switches());
  }
  benchfig::print_table(small_table, "ablation_striping_small.csv");
  return 0;
}
