// Randomized stress sweep for the concurrent simulator: Poisson traffic at
// several intensities through every scheme, asserting the invariants that
// must survive arbitrary interleavings.
#include <gtest/gtest.h>

#include "exp/experiment.hpp"
#include "sched/concurrent.hpp"
#include "sched/report.hpp"

namespace tapesim {
namespace {

using Param = std::tuple<int /*scheme*/, double /*load multiplier*/,
                         std::uint64_t /*seed*/>;

class ConcurrentStress : public ::testing::TestWithParam<Param> {};

TEST_P(ConcurrentStress, InvariantsHoldUnderLoad) {
  const auto [scheme_index, load, seed] = GetParam();

  exp::ExperimentConfig config;
  config.spec.num_libraries = 2;
  config.spec.library.drives_per_library = 4;
  config.spec.library.tapes_per_library = 12;
  config.spec.library.tape_capacity = 40_GB;
  config.workload.num_objects = 1200;
  config.workload.num_requests = 40;
  config.workload.min_objects_per_request = 8;
  config.workload.max_objects_per_request = 20;
  config.workload.object_groups = 24;
  config.workload.min_object_size = Bytes{100ULL * 1000 * 1000};
  config.workload.max_object_size = Bytes{1500ULL * 1000 * 1000};
  config.seed = seed;
  const exp::Experiment experiment(config);

  const auto schemes = exp::make_standard_schemes(2);
  const core::PlacementScheme* scheme_list[] = {
      schemes.parallel_batch.get(), schemes.object_probability.get(),
      schemes.cluster_probability.get()};
  core::PlacementContext context{&experiment.workload(), &config.spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan =
      scheme_list[scheme_index]->place(context);

  // Arrival rate as a multiple of a crude service estimate.
  const double rough_service = 600.0;  // seconds; only sets the regime
  sched::ConcurrentSimulator simulator(plan);
  Rng rng{seed + 100};
  const workload::RequestSampler sampler(experiment.workload());
  const auto arrivals =
      sched::poisson_arrivals(sampler, load / rough_service, 80, rng);
  const auto outcomes = simulator.run(arrivals);

  ASSERT_EQ(outcomes.size(), arrivals.size());
  const double aggregate = config.spec.aggregate_transfer_rate().count();
  double previous_arrival = 0.0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    // Causality and conservation per instance.
    EXPECT_GE(o.completion.count(), o.arrival.count()) << "instance " << i;
    EXPECT_DOUBLE_EQ(o.arrival.count(), arrivals[i].time.count());
    EXPECT_EQ(o.bytes,
              experiment.workload().request_bytes(arrivals[i].request));
    EXPECT_GE(o.arrival.count(), previous_arrival);
    previous_arrival = o.arrival.count();
    // Sojourn can never beat streaming the whole request on all drives.
    EXPECT_GE(o.sojourn().count(), o.bytes.as_double() / aggregate - 1e-6);
  }
  // Makespan covers every completion.
  for (const auto& o : outcomes) {
    EXPECT_LE(o.completion.count(), simulator.makespan().count() + 1e-9);
  }
  // The fleet never reads more than was credited (shared reads can only
  // reduce physical bytes), and drive activity fits the makespan.
  const auto report =
      sched::utilization_report(simulator.system(), simulator.makespan());
  Bytes credited{};
  for (const auto& o : outcomes) credited += o.bytes;
  EXPECT_LE(report.total_bytes_read(), credited);
  for (const auto& d : report.drives) {
    EXPECT_LE(d.active().count(), simulator.makespan().count() + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcurrentStress,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.5, 2.0),
                       ::testing::Values(1ull, 7ull)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      const int scheme = std::get<0>(param_info.param);
      std::string name = scheme == 0 ? "pbp" : scheme == 1 ? "opp" : "cpp";
      name += "_x";
      name += std::to_string(
          static_cast<int>(std::get<1>(param_info.param) * 10));
      name += "_s";
      name += std::to_string(std::get<2>(param_info.param));
      return name;
    });

}  // namespace
}  // namespace tapesim
