// Property sweeps: invariants that must hold for EVERY scheme under ANY
// workload skew and seed. Parameterized over the cross product.
#include <gtest/gtest.h>

#include "core/cluster_probability.hpp"
#include "core/object_probability.hpp"
#include "core/parallel_batch.hpp"
#include "exp/experiment.hpp"

namespace tapesim {
namespace {

enum class SchemeKind { kPbpM1, kPbpM3, kOpp, kCpp };

const char* to_string(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kPbpM1: return "pbp-m1";
    case SchemeKind::kPbpM3: return "pbp-m3";
    case SchemeKind::kOpp: return "opp";
    case SchemeKind::kCpp: return "cpp";
  }
  return "?";
}

std::unique_ptr<core::PlacementScheme> make_scheme(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kPbpM1: {
      core::ParallelBatchParams params;
      params.switch_drives = 1;
      params.balance.min_split_chunk = 2_GB;
      return std::make_unique<core::ParallelBatchPlacement>(params);
    }
    case SchemeKind::kPbpM3: {
      core::ParallelBatchParams params;
      params.switch_drives = 3;
      params.balance.min_split_chunk = 2_GB;
      return std::make_unique<core::ParallelBatchPlacement>(params);
    }
    case SchemeKind::kOpp:
      return std::make_unique<core::ObjectProbabilityPlacement>();
    case SchemeKind::kCpp:
      return std::make_unique<core::ClusterProbabilityPlacement>();
  }
  return nullptr;
}

using Param = std::tuple<SchemeKind, double, std::uint64_t>;

class PlacementProperties : public ::testing::TestWithParam<Param> {
 protected:
  static exp::ExperimentConfig config_for(double alpha, std::uint64_t seed) {
    exp::ExperimentConfig config;
    config.spec.num_libraries = 2;
    config.spec.library.drives_per_library = 4;
    config.spec.library.tapes_per_library = 14;
    config.spec.library.tape_capacity = 60_GB;
    config.workload.num_objects = 2500;
    config.workload.num_requests = 50;
    config.workload.min_objects_per_request = 15;
    config.workload.max_objects_per_request = 35;
    config.workload.object_groups = 40;
    config.workload.zipf_alpha = alpha;
    config.workload.min_object_size = Bytes{150ULL * 1000 * 1000};
    config.workload.max_object_size = Bytes{2500ULL * 1000 * 1000};
    config.simulated_requests = 30;
    config.seed = seed;
    return config;
  }
};

TEST_P(PlacementProperties, EndToEndInvariants) {
  const auto [kind, alpha, seed] = GetParam();
  const exp::ExperimentConfig config = config_for(alpha, seed);
  const exp::Experiment experiment(config);
  const auto scheme = make_scheme(kind);

  core::PlacementContext context{&experiment.workload(), &config.spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan = scheme->place(context);

  // Placement invariants (validate() ran in place(); re-check surface).
  Bytes placed{};
  for (std::uint32_t t = 0; t < config.spec.total_tapes(); ++t) {
    placed += plan.used_on(TapeId{t});
    ASSERT_LE(plan.used_on(TapeId{t}), config.spec.library.tape_capacity);
  }
  ASSERT_EQ(placed, experiment.workload().total_object_bytes());

  // Simulation invariants, request by request.
  sched::RetrievalSimulator simulator(plan);
  Rng rng{config.seed};
  Rng sample_rng = rng.fork(0x5251);
  const workload::RequestSampler sampler(experiment.workload());
  const double aggregate = config.spec.aggregate_transfer_rate().count();
  const double native = config.spec.library.drive.transfer_rate.count();

  for (std::uint32_t i = 0; i < config.simulated_requests; ++i) {
    const RequestId id = sampler.sample(sample_rng);
    const auto o = simulator.run_request(id);
    const std::string label = std::string(to_string(kind)) + " req " +
                              std::to_string(id.value());

    // Decomposition identity and signs.
    EXPECT_NEAR(o.response.count(),
                o.switch_time.count() + o.seek.count() + o.transfer.count(),
                1e-6)
        << label;
    EXPECT_GE(o.switch_time.count(), 0.0) << label;
    EXPECT_GE(o.seek.count(), 0.0) << label;
    EXPECT_GT(o.transfer.count(), 0.0) << label;

    // Physical bounds: never faster than all drives streaming at once;
    // never faster than the largest single object off one drive.
    EXPECT_LE(o.bandwidth().count(), aggregate * (1.0 + 1e-9)) << label;
    Bytes largest{};
    for (const ObjectId obj : experiment.workload().request(id).objects) {
      largest = std::max(largest, experiment.workload().object_size(obj));
    }
    EXPECT_GE(o.response.count(), largest.as_double() / native - 1e-6)
        << label;
    EXPECT_GE(o.response.count(), o.bytes.as_double() / aggregate - 1e-6)
        << label;

    // Cardinalities.
    EXPECT_GE(o.tapes_touched, 1u) << label;
    EXPECT_LE(o.tapes_touched,
              experiment.workload().request(id).objects.size())
        << label;
    EXPECT_LE(o.drives_used, config.spec.total_drives()) << label;
    EXPECT_GE(o.drives_used, 1u) << label;
    EXPECT_EQ(o.bytes, experiment.workload().request_bytes(id)) << label;
  }
}

TEST_P(PlacementProperties, DeterministicReplay) {
  const auto [kind, alpha, seed] = GetParam();
  const exp::ExperimentConfig config = config_for(alpha, seed);
  auto run_once = [&] {
    const exp::Experiment experiment(config);
    const auto scheme = make_scheme(kind);
    return experiment.run(*scheme).metrics.mean_response().count();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlacementProperties,
    ::testing::Combine(::testing::Values(SchemeKind::kPbpM1,
                                         SchemeKind::kPbpM3, SchemeKind::kOpp,
                                         SchemeKind::kCpp),
                       ::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(1ull, 2ull)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = to_string(std::get<0>(param_info.param));
      name += "_a";
      name += std::to_string(
          static_cast<int>(std::get<1>(param_info.param) * 10));
      name += "_s";
      name += std::to_string(std::get<2>(param_info.param));
      // gtest names must be alphanumeric.
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace tapesim
