// Chaos soak: randomized fault + scrub + evacuation + overload schedules
// across many seeds, asserting the invariants that must survive arbitrary
// interleavings of foreground serving, background verification passes,
// evacuation drains, deadline cancellations, and injected hardware faults:
//
//   * byte conservation — every requested byte is accounted served,
//     unavailable, or expired, and the total matches the workload's own
//     object sizes;
//   * no double-mounted cartridge — at every request boundary each tape
//     sits in at most one drive and the tape/drive maps agree;
//   * counter reconciliation — the obs registry's fault.*, scrub.*, and
//     evac.* counters match the injector's and the scheduler's own running
//     totals exactly at the end of the run;
//   * a monotone engine clock.
//
// The plan is built once (placement is deterministic and expensive); each
// seed gets its own simulator, fault mix, scrub/evacuation posture, storm
// arrival schedule, deadlines, and overload-pressure toggles.
//
// A second soak runs a 2-way replicated plan under random fail-slow
// episodes with the gray-failure detector, quarantine, and hedged reads
// live, and reconciles the failslow.* ledger exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/replication.hpp"
#include "exp/experiment.hpp"
#include "obs/tracer.hpp"
#include "sched/simulator.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/storm.hpp"

namespace tapesim {
namespace {

using metrics::RequestStatus;

/// Every cartridge sits in at most one drive and the tape/drive maps
/// agree (checked at request boundaries by both soaks).
void check_mount_exclusivity(const sched::RetrievalSimulator& sim,
                             const tape::SystemSpec& spec) {
  const std::uint32_t drives = spec.total_drives();
  const std::uint32_t tapes = spec.total_tapes();
  std::vector<std::uint32_t> held(drives, 0);
  for (std::uint32_t t = 0; t < tapes; ++t) {
    if (const auto d = sim.system().drive_holding(TapeId{t})) {
      ASSERT_LT(d->value(), drives);
      ++held[d->value()];
      ASSERT_LE(held[d->value()], 1u) << "drive " << d->value()
                                      << " holds two cartridges";
    }
  }
  for (std::uint32_t d = 0; d < drives; ++d) {
    const auto& drive = sim.system().drive(DriveId{d});
    if (!drive.empty() && !drive.failed()) {
      const auto holder = sim.system().drive_holding(drive.mounted());
      ASSERT_TRUE(holder.has_value());
      EXPECT_EQ(holder->value(), d) << "tape/drive maps disagree";
    }
  }
}

/// Shared scenario: a small two-library system and a parallel-batch plan.
struct Fixture {
  exp::ExperimentConfig config;
  exp::Experiment experiment;
  core::PlacementPlan plan;

  Fixture() : config(make_config()), experiment(config), plan(make_plan()) {}

  static exp::ExperimentConfig make_config() {
    exp::ExperimentConfig c;
    c.spec.num_libraries = 2;
    c.spec.library.drives_per_library = 3;
    c.spec.library.tapes_per_library = 10;
    c.spec.library.tape_capacity = 40_GB;
    c.workload.num_objects = 800;
    c.workload.num_requests = 60;
    c.workload.min_objects_per_request = 2;
    c.workload.max_objects_per_request = 8;
    c.workload.object_groups = 20;
    c.workload.min_object_size = Bytes{200ULL * 1000 * 1000};
    c.workload.max_object_size = Bytes{2000ULL * 1000 * 1000};
    c.seed = 7;
    return c;
  }

  core::PlacementPlan make_plan() const {
    const auto schemes = exp::make_standard_schemes(2);
    core::PlacementContext context{&experiment.workload(), &config.spec,
                                   &experiment.clusters()};
    return schemes.parallel_batch->place(context);
  }

  static const Fixture& instance() {
    static const Fixture fixture;
    return fixture;
  }
};

/// One randomized posture: every fault class live at a seed-dependent
/// rate, scrubbing and evacuation each enabled on most seeds.
sched::SimulatorConfig chaos_config(Rng& rng, obs::Tracer* tracer) {
  sched::SimulatorConfig cfg;
  cfg.tracer = tracer;
  cfg.faults.seed = rng();
  cfg.faults.latent_decay_mtbf = Seconds{rng.uniform(1500.0, 12000.0)};
  cfg.faults.mount_failure_prob = rng.uniform(0.0, 0.05);
  cfg.faults.media_error_per_gb = rng.uniform() < 0.5 ? 0.002 : 0.0;
  cfg.faults.robot_jam_prob = rng.uniform(0.0, 0.02);
  if (rng.uniform() < 0.5) {
    cfg.faults.drive_mtbf = Seconds{rng.uniform(5e4, 2e5)};
    cfg.faults.drive_mttr = Seconds{600.0};
    cfg.faults.permanent_fraction = 0.1;
  }
  if (rng.uniform() < 0.75) {
    cfg.scrub.enabled = true;
    cfg.scrub.interval = Seconds{rng.uniform(300.0, 3000.0)};
    cfg.scrub.bandwidth_fraction = rng.uniform(0.3, 1.0);
    cfg.scrub.max_concurrent = 1 + static_cast<std::uint32_t>(
                                       rng.uniform_below(3));
    cfg.scrub.segment = Bytes{(1 + rng.uniform_below(4)) << 30};
  }
  if (rng.uniform() < 0.4) {
    // Library-level fault domains: correlated outages, occasionally a
    // permanent site disaster (the plan is unreplicated, so disasters
    // surface as unavailable bytes rather than DR traffic).
    cfg.faults.outage.library_mtbf = Seconds{rng.uniform(4e4, 2e5)};
    cfg.faults.outage.library_mttr = Seconds{rng.uniform(1000.0, 8000.0)};
    cfg.faults.outage.disaster_fraction = rng.uniform() < 0.3 ? 0.15 : 0.0;
  }
  if (rng.uniform() < 0.5) {
    cfg.evacuation.enabled = true;
    cfg.evacuation.threshold = rng.uniform(0.3, 0.8);
    cfg.evacuation.latent_weight = 0.2;
    cfg.repair.bandwidth_fraction = 1.0;
    cfg.repair.max_concurrent = 2;
  }
  if (rng.uniform() < 0.7) {
    // Durable control plane: the catalog journal is live under a random
    // fsync policy and checkpoint cadence, and on most of those seeds the
    // metadata server crashes mid-run and recovers by snapshot + replay +
    // reconciliation at admission boundaries. The rest soak the journal's
    // passive (crash-free) mode, which must be invisible to the sim.
    cfg.journal.enabled = true;
    const double policy = rng.uniform();
    cfg.journal.fsync = policy < 0.34
                            ? catalog::FsyncPolicy::kSync
                            : policy < 0.67 ? catalog::FsyncPolicy::kGroupCommit
                                            : catalog::FsyncPolicy::kAsync;
    cfg.journal.group_window = Seconds{rng.uniform(0.02, 60.0)};
    cfg.journal.async_flush = Seconds{rng.uniform(5.0, 600.0)};
    cfg.journal.checkpoint_interval =
        rng.uniform() < 0.3 ? Seconds{0.0}  // never: replay from genesis
                            : Seconds{rng.uniform(2000.0, 40000.0)};
    if (rng.uniform() < 0.8) {
      cfg.faults.crash.metadata_mtbf = Seconds{rng.uniform(5e3, 6e4)};
      cfg.faults.crash.torn_tail = rng.uniform() < 0.7;
    }
  }
  EXPECT_TRUE(cfg.try_validate().ok());
  return cfg;
}

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, InvariantsSurviveRandomizedSchedules) {
  const std::uint64_t seed = GetParam();
  const Fixture& fx = Fixture::instance();
  Rng rng{seed * 0x9E3779B97F4A7C15ULL + 1};

  obs::Tracer tracer;
  const sched::SimulatorConfig cfg = chaos_config(rng, &tracer);
  sched::RetrievalSimulator sim(fx.plan, cfg);

  workload::StormConfig storm;
  storm.base_rate = 1.0 / 400.0;
  storm.burst_rate = 1.0 / 40.0;
  storm.mean_burst_duration = Seconds{1200.0};
  storm.mean_calm_duration = Seconds{4000.0};
  storm.batch_fraction = 0.4;
  const workload::RequestSampler sampler(fx.experiment.workload());
  const auto arrivals = workload::storm_arrivals(sampler, storm, 25, rng);

  Seconds prev_now{};
  std::uint64_t parked_extents_sum = 0;
  std::uint64_t parked_requests_sum = 0;
  for (const auto& arrival : arrivals) {
    if (sim.engine().now() < arrival.time) {
      sim.engine().schedule_at(arrival.time, [] {});
      sim.engine().run();
    }
    // Random overload-pressure toggles exercise the repair/scrub pause
    // paths mid-stream.
    sim.set_overload_pressure(rng.uniform() < 0.3);

    sched::RequestContext ctx;
    ctx.priority = arrival.priority;
    if (rng.uniform() < 0.5) {
      ctx.deadline = sim.engine().now() + Seconds{rng.uniform(1200.0, 9000.0)};
    }
    const auto o = sim.run_request(arrival.request, ctx);

    // Clock monotone across requests and background drains.
    EXPECT_GE(sim.engine().now().count(), prev_now.count());
    prev_now = sim.engine().now();

    // Byte conservation: the outcome's total matches the workload, and
    // every byte is served, unavailable, or expired — no leaks, no
    // double counting.
    Bytes expected{};
    for (const ObjectId obj :
         fx.experiment.workload().request(arrival.request).objects) {
      expected += fx.experiment.workload().object_size(obj);
    }
    ASSERT_EQ(o.bytes.count(), expected.count());
    ASSERT_LE(o.bytes_unavailable.count() + o.bytes_expired.count(),
              o.bytes.count());
    ASSERT_EQ(o.bytes_served().count() + o.bytes_unavailable.count() +
                  o.bytes_expired.count(),
              o.bytes.count());
    switch (o.status) {
      case RequestStatus::kServed:
        EXPECT_EQ(o.bytes_unavailable.count(), 0u);
        EXPECT_EQ(o.bytes_expired.count(), 0u);
        break;
      case RequestStatus::kPartial:
        EXPECT_GT(o.bytes_served().count(), 0u);
        EXPECT_GT(o.bytes_unavailable.count() + o.bytes_expired.count(), 0u);
        break;
      case RequestStatus::kUnavailable:
        EXPECT_EQ(o.bytes_served().count(), 0u);
        break;
      case RequestStatus::kDeadlineExpired:
        EXPECT_LT(o.bytes_served().count(), o.bytes.count());
        break;
      case RequestStatus::kShed:
        FAIL() << "the bare simulator never sheds";
    }

    parked_extents_sum += o.extents_parked;
    if (o.extents_parked > 0) ++parked_requests_sum;

    check_mount_exclusivity(sim, fx.config.spec);
  }

  // End-of-run reconciliation: the obs registry agrees exactly with the
  // scheduler's and the injector's own running totals.
  auto& reg = tracer.registry();
  EXPECT_EQ(reg.counter("sched.requests").value(), arrivals.size());

  const fault::FaultInjector* inj = sim.fault_injector();
  ASSERT_NE(inj, nullptr);
  const fault::FaultCounters& fc = inj->counters();
  EXPECT_EQ(reg.counter("fault.mount_failures").value(), fc.mount_failures);
  EXPECT_EQ(reg.counter("fault.media_errors").value(), fc.media_errors);
  EXPECT_EQ(reg.counter("fault.robot_jams").value(), fc.robot_jams);
  EXPECT_EQ(reg.counter("fault.drive_failures").value(), fc.drive_failures);
  EXPECT_EQ(reg.counter("fault.latent_events").value(), fc.latent_events);
  EXPECT_EQ(reg.counter("fault.latent_observed").value(), fc.latent_observed);

  const sched::ScrubStats& scrub = sim.scrub_stats();
  EXPECT_EQ(reg.counter("scrub.passes").value(), scrub.passes);
  EXPECT_EQ(reg.counter("scrub.verified_bytes").value(),
            scrub.bytes_verified);
  EXPECT_EQ(reg.counter("scrub.latent_found").value(), scrub.latent_found);

  const sched::EvacStats& evac = sim.evac_stats();
  EXPECT_EQ(reg.counter("evac.started").value(), evac.started);
  EXPECT_EQ(reg.counter("evac.objects_moved").value(), evac.objects_moved);
  EXPECT_EQ(reg.counter("evac.preempted_unavailables").value(),
            evac.preempted_unavailables);

  // Outage ledger: the registry, the scheduler's stats, and the
  // per-request outcomes all agree exactly — every parked extent was
  // reported to exactly one request, and the counters form a consistent
  // onset/close/disaster triangle.
  const sched::OutageStats& outage = sim.outage_stats();
  EXPECT_EQ(reg.counter("outage.started").value(), outage.started);
  EXPECT_EQ(reg.counter("outage.ended").value(), outage.ended);
  EXPECT_EQ(reg.counter("outage.disasters").value(), outage.disasters);
  EXPECT_EQ(reg.counter("outage.failovers").value(), outage.failovers);
  EXPECT_EQ(reg.counter("outage.requests_parked").value(),
            outage.requests_parked);
  EXPECT_EQ(fc.library_outages, outage.started);
  EXPECT_EQ(fc.library_disasters, outage.disasters);
  EXPECT_EQ(parked_extents_sum, outage.extents_parked);
  EXPECT_EQ(parked_requests_sum, outage.requests_parked);
  EXPECT_LE(outage.ended + outage.disasters, outage.started);
  if (cfg.faults.outage.enabled()) {
    EXPECT_GE(reg.gauge("outage.downtime_s").value(), 0.0);
  } else {
    EXPECT_EQ(outage.started, 0u);
    EXPECT_EQ(outage.extents_parked, 0u);
  }

  // Recovery ledger: the registry's recovery.* lane, the scheduler's
  // RecoveryStats, the journal's own ledger, and the injector's crash
  // counter all agree exactly; the journal conserves every append; and
  // replaying snapshot + surviving log reproduces the live catalog
  // field-for-field after reconciliation.
  const sched::RecoveryStats& rec = sim.recovery_stats();
  EXPECT_EQ(reg.counter("recovery.crashes").value(), rec.crashes);
  EXPECT_EQ(reg.counter("recovery.checkpoints").value(), rec.checkpoints);
  EXPECT_EQ(reg.counter("recovery.records_replayed").value(),
            rec.records_replayed);
  EXPECT_EQ(reg.counter("recovery.lost_mutations").value(),
            rec.lost_mutations);
  EXPECT_EQ(reg.counter("recovery.reconciled_mutations").value(),
            rec.reconciled_mutations);
  EXPECT_EQ(reg.counter("recovery.admissions_parked").value(),
            rec.admissions_parked);
  EXPECT_EQ(fc.metadata_crashes, rec.crashes);
  EXPECT_EQ(rec.rto.count(), rec.crashes);
  EXPECT_EQ(rec.snapshot_age.count(), rec.crashes);
  if (catalog::Journal* journal = sim.journal()) {
    const catalog::JournalStats& js = journal->stats();
    EXPECT_EQ(js.appends,
              js.records_truncated + js.records_lost + journal->live_records());
    EXPECT_EQ(js.records_lost, js.records_reconciled);
    EXPECT_EQ(js.records_lost, rec.lost_mutations);
    EXPECT_EQ(js.records_reconciled, rec.reconciled_mutations);
    EXPECT_EQ(js.checkpoints, rec.checkpoints);
    if (cfg.journal.fsync == catalog::FsyncPolicy::kSync) {
      EXPECT_EQ(js.records_lost, 0u) << "sync fsync must never lose records";
    }
    EXPECT_TRUE(journal->replay().equals(sim.catalog()))
        << "durable state diverged from the live catalog";
  } else {
    EXPECT_FALSE(cfg.journal.enabled);
    EXPECT_EQ(rec.crashes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak,
                         ::testing::Range<std::uint64_t>(1, 21));

/// Replicated scenario for the fail-slow soak: the same two-library
/// system with extra tapes and a 2-way replicated parallel-batch plan,
/// so every object keeps a cross-library copy for hedged reads to race.
struct ReplicatedFixture {
  exp::ExperimentConfig config;
  exp::Experiment experiment;
  core::PlacementPlan plan;

  ReplicatedFixture()
      : config(make_config()), experiment(config), plan(make_plan()) {}

  static exp::ExperimentConfig make_config() {
    exp::ExperimentConfig c;
    c.spec.num_libraries = 2;
    c.spec.library.drives_per_library = 3;
    // Replicas land on tapes the primary layout left empty, so the pool
    // is sized at several times the primary footprint.
    c.spec.library.tapes_per_library = 24;
    c.spec.library.tape_capacity = 40_GB;
    c.workload.num_objects = 800;
    c.workload.num_requests = 60;
    c.workload.min_objects_per_request = 2;
    c.workload.max_objects_per_request = 8;
    c.workload.object_groups = 20;
    c.workload.min_object_size = Bytes{100ULL * 1000 * 1000};
    c.workload.max_object_size = Bytes{1500ULL * 1000 * 1000};
    c.seed = 11;
    return c;
  }

  core::PlacementPlan make_plan() const {
    const auto schemes = exp::make_standard_schemes(2);
    core::PlacementContext context{&experiment.workload(), &config.spec,
                                   &experiment.clusters()};
    core::ReplicationPolicy::Params rp;
    rp.replicas = 2;
    return core::ReplicationPolicy(*schemes.parallel_batch, rp)
        .place(context);
  }

  static const ReplicatedFixture& instance() {
    static const ReplicatedFixture fixture;
    return fixture;
  }
};

/// Fail-slow posture: drive degraded-throughput episodes on every seed,
/// robot slowdowns on most, the gray-failure detector and hedged reads
/// always live, quarantine on most seeds — all interleaved with the
/// ordinary hardware-fault background.
sched::SimulatorConfig failslow_chaos_config(Rng& rng, obs::Tracer* tracer) {
  sched::SimulatorConfig cfg;
  cfg.tracer = tracer;
  cfg.faults.seed = rng();
  cfg.faults.mount_failure_prob = rng.uniform(0.0, 0.04);
  cfg.faults.media_error_per_gb = rng.uniform() < 0.4 ? 0.002 : 0.0;
  if (rng.uniform() < 0.4) {
    cfg.faults.drive_mtbf = Seconds{rng.uniform(8e4, 3e5)};
    cfg.faults.drive_mttr = Seconds{900.0};
    cfg.faults.permanent_fraction = 0.1;
  }
  cfg.faults.failslow.drive_slow_mtbf = Seconds{rng.uniform(5e3, 4e4)};
  cfg.faults.failslow.drive_slow_duration =
      Seconds{rng.uniform(2000.0, 10000.0)};
  cfg.faults.failslow.drive_severity_min = 0.02;
  cfg.faults.failslow.drive_severity_max = rng.uniform(0.1, 0.3);
  cfg.faults.failslow.progressive = rng.uniform() < 0.3;
  if (rng.uniform() < 0.6) {
    cfg.faults.failslow.robot_slow_mtbf = Seconds{rng.uniform(3e4, 1.5e5)};
    cfg.faults.failslow.robot_slow_duration =
        Seconds{rng.uniform(1000.0, 6000.0)};
  }
  cfg.detector.enabled = true;
  cfg.detector.quarantine = rng.uniform() < 0.8;
  cfg.detector.window = Seconds{rng.uniform(600.0, 1500.0)};
  cfg.detector.probation = Seconds{rng.uniform(900.0, 3600.0)};
  cfg.hedge.enabled = true;
  cfg.hedge.min_history = 8;
  cfg.hedge.budget_fraction = rng.uniform(0.1, 0.3);
  EXPECT_TRUE(cfg.try_validate().ok());
  return cfg;
}

class FailSlowChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailSlowChaosSoak, HedgeAndQuarantineLedgersSurviveRandomSchedules) {
  const std::uint64_t seed = GetParam();
  const ReplicatedFixture& fx = ReplicatedFixture::instance();
  Rng rng{seed * 0xD1B54A32D192ED03ULL + 1};

  obs::Tracer tracer;
  const sched::SimulatorConfig cfg = failslow_chaos_config(rng, &tracer);
  sched::RetrievalSimulator sim(fx.plan, cfg);

  workload::StormConfig storm;
  storm.base_rate = 1.0 / 400.0;
  storm.burst_rate = 1.0 / 40.0;
  storm.mean_burst_duration = Seconds{1200.0};
  storm.mean_calm_duration = Seconds{4000.0};
  storm.batch_fraction = 0.4;
  const workload::RequestSampler sampler(fx.experiment.workload());
  const auto arrivals = workload::storm_arrivals(sampler, storm, 25, rng);

  Seconds prev_now{};
  for (const auto& arrival : arrivals) {
    if (sim.engine().now() < arrival.time) {
      sim.engine().schedule_at(arrival.time, [] {});
      sim.engine().run();
    }

    sched::RequestContext ctx;
    ctx.priority = arrival.priority;
    if (rng.uniform() < 0.5) {
      ctx.deadline = sim.engine().now() + Seconds{rng.uniform(1200.0, 9000.0)};
    }
    const auto o = sim.run_request(arrival.request, ctx);

    EXPECT_GE(sim.engine().now().count(), prev_now.count());
    prev_now = sim.engine().now();

    // Byte conservation holds with hedges in flight: the speculative
    // chain and the primary share one accounting slot per object, so no
    // byte is served twice and no loser leaks into the outcome.
    Bytes expected{};
    for (const ObjectId obj :
         fx.experiment.workload().request(arrival.request).objects) {
      expected += fx.experiment.workload().object_size(obj);
    }
    ASSERT_EQ(o.bytes.count(), expected.count());
    ASSERT_EQ(o.bytes_served().count() + o.bytes_unavailable.count() +
                  o.bytes_expired.count(),
              o.bytes.count());
    EXPECT_EQ(o.extents_parked, 0u) << "no outages in this posture";

    check_mount_exclusivity(sim, fx.config.spec);
  }

  // End-of-run reconciliation: the failslow.* registry lane, the
  // scheduler's FailSlowStats, and the injector's episode counters agree
  // exactly, and the hedge ledger balances.
  auto& reg = tracer.registry();
  EXPECT_EQ(reg.counter("sched.requests").value(), arrivals.size());

  const fault::FaultInjector* inj = sim.fault_injector();
  ASSERT_NE(inj, nullptr);
  const fault::FaultCounters& fc = inj->counters();
  EXPECT_EQ(reg.counter("fault.mount_failures").value(), fc.mount_failures);
  EXPECT_EQ(reg.counter("fault.media_errors").value(), fc.media_errors);
  EXPECT_EQ(reg.counter("fault.drive_failures").value(), fc.drive_failures);

  const sched::FailSlowStats& fs = sim.failslow_stats();
  EXPECT_EQ(reg.counter("failslow.detected").value(), fs.detected);
  EXPECT_EQ(reg.counter("failslow.false_positives").value(),
            fs.false_positives);
  EXPECT_EQ(reg.counter("failslow.quarantines").value(), fs.quarantines);
  EXPECT_EQ(reg.counter("failslow.hedges_issued").value(), fs.hedges_issued);
  EXPECT_EQ(reg.counter("failslow.hedges_won").value(), fs.hedges_won);
  EXPECT_EQ(reg.counter("failslow.hedges_lost").value(), fs.hedges_lost);
  EXPECT_EQ(reg.counter("failslow.hedge_wasted_bytes").value(),
            fs.hedge_bytes_wasted);
  EXPECT_EQ(fs.hedges_issued, fs.hedges_won + fs.hedges_lost);
  if (cfg.detector.quarantine) {
    EXPECT_EQ(fs.quarantines, fs.detected + fs.false_positives);
  } else {
    EXPECT_EQ(fs.quarantines, 0u);
  }

  EXPECT_EQ(reg.counter("failslow.episodes").value(),
            fc.slow_episodes + fc.robot_slow_episodes);
  EXPECT_EQ(reg.gauge("failslow.drive_s").value(), fc.slow_drive_seconds);
  if (cfg.faults.failslow.robot_slow_mtbf.count() == 0.0) {
    EXPECT_EQ(fc.robot_slow_episodes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailSlowChaosSoak,
                         ::testing::Range<std::uint64_t>(1, 21));

/// Recovery-governor posture: a deterministic fault burst mid-stream (the
/// metastable trigger) under random retry-budget ratios, breaker
/// thresholds, and shed-ladder knobs. Some seeds run with the governor
/// configured but disabled — the passive path must hold the same
/// invariants (and an all-zero ledger).
sched::SimulatorConfig governor_chaos_config(Rng& rng, obs::Tracer* tracer) {
  sched::SimulatorConfig cfg;
  cfg.tracer = tracer;
  cfg.faults.seed = rng();
  cfg.faults.mount_failure_prob = rng.uniform(0.0, 0.05);
  cfg.faults.media_error_per_gb = rng.uniform(0.0, 0.01);
  cfg.faults.degraded_after = 2 + static_cast<std::uint32_t>(
                                      rng.uniform_below(8));
  cfg.faults.lost_after = cfg.faults.degraded_after +
                          8 + static_cast<std::uint32_t>(rng.uniform_below(40));
  cfg.faults.degraded_error_multiplier = rng.uniform(1.0, 200.0);
  cfg.faults.media_retry.max_retries =
      static_cast<std::uint32_t>(rng.uniform_below(5));
  cfg.faults.media_retry.initial_delay = Seconds{rng.uniform(1.0, 30.0)};
  cfg.faults.burst.at = Seconds{rng.uniform(500.0, 4000.0)};
  cfg.faults.burst.duration = Seconds{rng.uniform(500.0, 3000.0)};
  cfg.faults.burst.mount_failure_prob = rng.uniform(0.2, 0.8);
  cfg.faults.burst.media_error_per_gb = rng.uniform(0.3, 1.5);
  if (rng.uniform() < 0.4) {
    cfg.scrub.enabled = true;
    cfg.scrub.interval = Seconds{rng.uniform(500.0, 4000.0)};
  }
  if (rng.uniform() < 0.4) {
    cfg.evacuation.enabled = true;
    cfg.evacuation.threshold = rng.uniform(0.3, 0.7);
  }
  if (rng.uniform() < 0.4) {
    // Hedged reads feed the governor's kHedge admission class.
    cfg.detector.enabled = true;
    cfg.detector.quarantine = rng.uniform() < 0.5;
    cfg.hedge.enabled = true;
    cfg.hedge.min_history = 8;
    cfg.hedge.budget_fraction = rng.uniform(0.1, 0.3);
  }

  sched::GovernorConfig& gov = cfg.governor;
  gov.enabled = rng.uniform() < 0.85;
  gov.budgets.enabled = rng.uniform() < 0.8;
  gov.budgets.retry_ratio = rng.uniform(0.05, 1.0);
  gov.budgets.failover_ratio = rng.uniform(0.05, 1.0);
  gov.budgets.hedge_ratio = rng.uniform(0.05, 1.0);
  gov.budgets.burst = rng.uniform(1.0, 16.0);
  gov.breaker.enabled = rng.uniform() < 0.8;
  gov.breaker.failure_threshold = rng.uniform(0.3, 0.9);
  gov.breaker.min_samples = 2 + static_cast<std::uint32_t>(
                                    rng.uniform_below(8));
  gov.breaker.window = Seconds{rng.uniform(200.0, 1500.0)};
  gov.breaker.open_duration = Seconds{rng.uniform(60.0, 600.0)};
  gov.breaker.close_after = 1 + static_cast<std::uint32_t>(
                                    rng.uniform_below(3));
  gov.metastable.enabled = rng.uniform() < 0.8;
  gov.metastable.bin = Seconds{rng.uniform(60.0, 600.0)};
  gov.metastable.ewma_alpha = rng.uniform(0.05, 0.5);
  gov.metastable.collapse_fraction = rng.uniform(0.1, 0.5);
  gov.metastable.recover_fraction =
      gov.metastable.collapse_fraction + rng.uniform(0.1, 0.4);
  gov.metastable.min_queue_depth = 1 + static_cast<std::uint32_t>(
                                           rng.uniform_below(6));
  gov.metastable.trip_bins = 1 + static_cast<std::uint32_t>(
                                     rng.uniform_below(3));
  gov.metastable.release_bins = 1 + static_cast<std::uint32_t>(
                                        rng.uniform_below(3));
  gov.metastable.repair_clamp = rng.uniform(0.1, 1.0);
  gov.metastable.budget_clamp = rng.uniform(0.3, 1.0);
  EXPECT_TRUE(cfg.try_validate().ok());
  return cfg;
}

class GovernorChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GovernorChaosSoak, BudgetLedgersSurviveRandomizedSchedules) {
  const std::uint64_t seed = GetParam();
  const ReplicatedFixture& fx = ReplicatedFixture::instance();
  Rng rng{seed * 0xBF58476D1CE4E5B9ULL + 1};

  obs::Tracer tracer;
  const sched::SimulatorConfig cfg = governor_chaos_config(rng, &tracer);
  sched::RetrievalSimulator sim(fx.plan, cfg);

  workload::StormConfig storm;
  storm.base_rate = 1.0 / 400.0;
  storm.burst_rate = 1.0 / 40.0;
  storm.mean_burst_duration = Seconds{1200.0};
  storm.mean_calm_duration = Seconds{4000.0};
  storm.batch_fraction = 0.4;
  const workload::RequestSampler sampler(fx.experiment.workload());
  const auto arrivals = workload::storm_arrivals(sampler, storm, 25, rng);

  Seconds prev_now{};
  for (const auto& arrival : arrivals) {
    if (sim.engine().now() < arrival.time) {
      sim.engine().schedule_at(arrival.time, [] {});
      sim.engine().run();
    }

    sched::RequestContext ctx;
    ctx.priority = arrival.priority;
    if (rng.uniform() < 0.6) {
      ctx.deadline = sim.engine().now() + Seconds{rng.uniform(600.0, 6000.0)};
    }
    const auto o = sim.run_request(arrival.request, ctx);

    // Every run_request returns — a fast-failed retry or an open breaker
    // must never wedge a chain; the clock stays monotone throughout.
    EXPECT_GE(sim.engine().now().count(), prev_now.count());
    prev_now = sim.engine().now();

    // Byte conservation holds under denials: a fast-failed extent is
    // accounted unavailable (or expired), never dropped.
    Bytes expected{};
    for (const ObjectId obj :
         fx.experiment.workload().request(arrival.request).objects) {
      expected += fx.experiment.workload().object_size(obj);
    }
    ASSERT_EQ(o.bytes.count(), expected.count());
    ASSERT_EQ(o.bytes_served().count() + o.bytes_unavailable.count() +
                  o.bytes_expired.count(),
              o.bytes.count());

    check_mount_exclusivity(sim, fx.config.spec);
  }

  // End-of-run reconciliation: per-class budget ledgers balance exactly,
  // and every governor.* registry counter equals its GovernorStats field.
  sim.governor().finish(sim.engine().now());
  const sched::GovernorStats& st = sim.governor_stats();
  auto& reg = tracer.registry();
  static constexpr sched::GovernorClass kClasses[] = {
      sched::GovernorClass::kRetry, sched::GovernorClass::kFailover,
      sched::GovernorClass::kHedge};
  for (const sched::GovernorClass cls : kClasses) {
    const sched::BudgetLedger& led = st.ledger(cls);
    EXPECT_EQ(led.attempts, led.admitted + led.fast_failed);
    EXPECT_EQ(led.fast_failed, led.budget_denied + led.breaker_denied);
    const std::string name = sched::to_string(cls);
    EXPECT_EQ(reg.counter("governor." + name + "_attempts").value(),
              led.attempts);
    EXPECT_EQ(reg.counter("governor." + name + "_admitted").value(),
              led.admitted);
    EXPECT_EQ(reg.counter("governor." + name + "_fast_failed").value(),
              led.fast_failed);
    if (!cfg.governor.enabled) {
      EXPECT_EQ(led.attempts, 0u) << "disabled governor must not account";
      EXPECT_EQ(led.demand, 0u);
    }
  }
  EXPECT_EQ(reg.counter("governor.breaker_opened").value(), st.breaker_opened);
  EXPECT_EQ(reg.counter("governor.breaker_reopened").value(),
            st.breaker_reopened);
  EXPECT_EQ(reg.counter("governor.breaker_closed").value(), st.breaker_closed);
  EXPECT_EQ(reg.counter("governor.breaker_probes").value(),
            st.breaker_probes);
  EXPECT_EQ(reg.counter("governor.metastable_trips").value(),
            st.metastable_trips);
  EXPECT_EQ(reg.counter("governor.metastable_releases").value(),
            st.metastable_releases);
  EXPECT_EQ(reg.counter("governor.shed_escalations").value(),
            st.shed_escalations);
  EXPECT_LE(st.metastable_releases, st.metastable_trips);
  EXPECT_LE(st.metastable_trips, st.shed_escalations);
  if (!cfg.governor.enabled || !cfg.governor.breaker.enabled) {
    EXPECT_EQ(st.breaker_opened, 0u);
    EXPECT_EQ(sim.governor().breakers_open(), 0u);
  }
  if (!cfg.governor.enabled || !cfg.governor.metastable.enabled) {
    EXPECT_EQ(st.metastable_trips, 0u);
    EXPECT_EQ(sim.governor().shed_level(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GovernorChaosSoak,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tapesim
