// Chaos soak: randomized fault + scrub + evacuation + overload schedules
// across many seeds, asserting the invariants that must survive arbitrary
// interleavings of foreground serving, background verification passes,
// evacuation drains, deadline cancellations, and injected hardware faults:
//
//   * byte conservation — every requested byte is accounted served,
//     unavailable, or expired, and the total matches the workload's own
//     object sizes;
//   * no double-mounted cartridge — at every request boundary each tape
//     sits in at most one drive and the tape/drive maps agree;
//   * counter reconciliation — the obs registry's fault.*, scrub.*, and
//     evac.* counters match the injector's and the scheduler's own running
//     totals exactly at the end of the run;
//   * a monotone engine clock.
//
// The plan is built once (placement is deterministic and expensive); each
// seed gets its own simulator, fault mix, scrub/evacuation posture, storm
// arrival schedule, deadlines, and overload-pressure toggles.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/tracer.hpp"
#include "sched/simulator.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"
#include "workload/storm.hpp"

namespace tapesim {
namespace {

using metrics::RequestStatus;

/// Shared scenario: a small two-library system and a parallel-batch plan.
struct Fixture {
  exp::ExperimentConfig config;
  exp::Experiment experiment;
  core::PlacementPlan plan;

  Fixture() : config(make_config()), experiment(config), plan(make_plan()) {}

  static exp::ExperimentConfig make_config() {
    exp::ExperimentConfig c;
    c.spec.num_libraries = 2;
    c.spec.library.drives_per_library = 3;
    c.spec.library.tapes_per_library = 10;
    c.spec.library.tape_capacity = 40_GB;
    c.workload.num_objects = 800;
    c.workload.num_requests = 60;
    c.workload.min_objects_per_request = 2;
    c.workload.max_objects_per_request = 8;
    c.workload.object_groups = 20;
    c.workload.min_object_size = Bytes{200ULL * 1000 * 1000};
    c.workload.max_object_size = Bytes{2000ULL * 1000 * 1000};
    c.seed = 7;
    return c;
  }

  core::PlacementPlan make_plan() const {
    const auto schemes = exp::make_standard_schemes(2);
    core::PlacementContext context{&experiment.workload(), &config.spec,
                                   &experiment.clusters()};
    return schemes.parallel_batch->place(context);
  }

  static const Fixture& instance() {
    static const Fixture fixture;
    return fixture;
  }
};

/// One randomized posture: every fault class live at a seed-dependent
/// rate, scrubbing and evacuation each enabled on most seeds.
sched::SimulatorConfig chaos_config(Rng& rng, obs::Tracer* tracer) {
  sched::SimulatorConfig cfg;
  cfg.tracer = tracer;
  cfg.faults.seed = rng();
  cfg.faults.latent_decay_mtbf = Seconds{rng.uniform(1500.0, 12000.0)};
  cfg.faults.mount_failure_prob = rng.uniform(0.0, 0.05);
  cfg.faults.media_error_per_gb = rng.uniform() < 0.5 ? 0.002 : 0.0;
  cfg.faults.robot_jam_prob = rng.uniform(0.0, 0.02);
  if (rng.uniform() < 0.5) {
    cfg.faults.drive_mtbf = Seconds{rng.uniform(5e4, 2e5)};
    cfg.faults.drive_mttr = Seconds{600.0};
    cfg.faults.permanent_fraction = 0.1;
  }
  if (rng.uniform() < 0.75) {
    cfg.scrub.enabled = true;
    cfg.scrub.interval = Seconds{rng.uniform(300.0, 3000.0)};
    cfg.scrub.bandwidth_fraction = rng.uniform(0.3, 1.0);
    cfg.scrub.max_concurrent = 1 + static_cast<std::uint32_t>(
                                       rng.uniform_below(3));
    cfg.scrub.segment = Bytes{(1 + rng.uniform_below(4)) << 30};
  }
  if (rng.uniform() < 0.4) {
    // Library-level fault domains: correlated outages, occasionally a
    // permanent site disaster (the plan is unreplicated, so disasters
    // surface as unavailable bytes rather than DR traffic).
    cfg.faults.outage.library_mtbf = Seconds{rng.uniform(4e4, 2e5)};
    cfg.faults.outage.library_mttr = Seconds{rng.uniform(1000.0, 8000.0)};
    cfg.faults.outage.disaster_fraction = rng.uniform() < 0.3 ? 0.15 : 0.0;
  }
  if (rng.uniform() < 0.5) {
    cfg.evacuation.enabled = true;
    cfg.evacuation.threshold = rng.uniform(0.3, 0.8);
    cfg.evacuation.latent_weight = 0.2;
    cfg.repair.bandwidth_fraction = 1.0;
    cfg.repair.max_concurrent = 2;
  }
  EXPECT_TRUE(cfg.try_validate().ok());
  return cfg;
}

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, InvariantsSurviveRandomizedSchedules) {
  const std::uint64_t seed = GetParam();
  const Fixture& fx = Fixture::instance();
  Rng rng{seed * 0x9E3779B97F4A7C15ULL + 1};

  obs::Tracer tracer;
  const sched::SimulatorConfig cfg = chaos_config(rng, &tracer);
  sched::RetrievalSimulator sim(fx.plan, cfg);

  workload::StormConfig storm;
  storm.base_rate = 1.0 / 400.0;
  storm.burst_rate = 1.0 / 40.0;
  storm.mean_burst_duration = Seconds{1200.0};
  storm.mean_calm_duration = Seconds{4000.0};
  storm.batch_fraction = 0.4;
  const workload::RequestSampler sampler(fx.experiment.workload());
  const auto arrivals = workload::storm_arrivals(sampler, storm, 25, rng);

  const auto check_mount_exclusivity = [&] {
    const std::uint32_t drives = fx.config.spec.total_drives();
    const std::uint32_t tapes = fx.config.spec.total_tapes();
    std::vector<std::uint32_t> held(drives, 0);
    for (std::uint32_t t = 0; t < tapes; ++t) {
      if (const auto d = sim.system().drive_holding(TapeId{t})) {
        ASSERT_LT(d->value(), drives);
        ++held[d->value()];
        ASSERT_LE(held[d->value()], 1u) << "drive " << d->value()
                                        << " holds two cartridges";
      }
    }
    for (std::uint32_t d = 0; d < drives; ++d) {
      const auto& drive = sim.system().drive(DriveId{d});
      if (!drive.empty() && !drive.failed()) {
        const auto holder = sim.system().drive_holding(drive.mounted());
        ASSERT_TRUE(holder.has_value());
        EXPECT_EQ(holder->value(), d) << "tape/drive maps disagree";
      }
    }
  };

  Seconds prev_now{};
  std::uint64_t parked_extents_sum = 0;
  std::uint64_t parked_requests_sum = 0;
  for (const auto& arrival : arrivals) {
    if (sim.engine().now() < arrival.time) {
      sim.engine().schedule_at(arrival.time, [] {});
      sim.engine().run();
    }
    // Random overload-pressure toggles exercise the repair/scrub pause
    // paths mid-stream.
    sim.set_overload_pressure(rng.uniform() < 0.3);

    sched::RequestContext ctx;
    ctx.priority = arrival.priority;
    if (rng.uniform() < 0.5) {
      ctx.deadline = sim.engine().now() + Seconds{rng.uniform(1200.0, 9000.0)};
    }
    const auto o = sim.run_request(arrival.request, ctx);

    // Clock monotone across requests and background drains.
    EXPECT_GE(sim.engine().now().count(), prev_now.count());
    prev_now = sim.engine().now();

    // Byte conservation: the outcome's total matches the workload, and
    // every byte is served, unavailable, or expired — no leaks, no
    // double counting.
    Bytes expected{};
    for (const ObjectId obj :
         fx.experiment.workload().request(arrival.request).objects) {
      expected += fx.experiment.workload().object_size(obj);
    }
    ASSERT_EQ(o.bytes.count(), expected.count());
    ASSERT_LE(o.bytes_unavailable.count() + o.bytes_expired.count(),
              o.bytes.count());
    ASSERT_EQ(o.bytes_served().count() + o.bytes_unavailable.count() +
                  o.bytes_expired.count(),
              o.bytes.count());
    switch (o.status) {
      case RequestStatus::kServed:
        EXPECT_EQ(o.bytes_unavailable.count(), 0u);
        EXPECT_EQ(o.bytes_expired.count(), 0u);
        break;
      case RequestStatus::kPartial:
        EXPECT_GT(o.bytes_served().count(), 0u);
        EXPECT_GT(o.bytes_unavailable.count() + o.bytes_expired.count(), 0u);
        break;
      case RequestStatus::kUnavailable:
        EXPECT_EQ(o.bytes_served().count(), 0u);
        break;
      case RequestStatus::kDeadlineExpired:
        EXPECT_LT(o.bytes_served().count(), o.bytes.count());
        break;
      case RequestStatus::kShed:
        FAIL() << "the bare simulator never sheds";
    }

    parked_extents_sum += o.extents_parked;
    if (o.extents_parked > 0) ++parked_requests_sum;

    check_mount_exclusivity();
  }

  // End-of-run reconciliation: the obs registry agrees exactly with the
  // scheduler's and the injector's own running totals.
  auto& reg = tracer.registry();
  EXPECT_EQ(reg.counter("sched.requests").value(), arrivals.size());

  const fault::FaultInjector* inj = sim.fault_injector();
  ASSERT_NE(inj, nullptr);
  const fault::FaultCounters& fc = inj->counters();
  EXPECT_EQ(reg.counter("fault.mount_failures").value(), fc.mount_failures);
  EXPECT_EQ(reg.counter("fault.media_errors").value(), fc.media_errors);
  EXPECT_EQ(reg.counter("fault.robot_jams").value(), fc.robot_jams);
  EXPECT_EQ(reg.counter("fault.drive_failures").value(), fc.drive_failures);
  EXPECT_EQ(reg.counter("fault.latent_events").value(), fc.latent_events);
  EXPECT_EQ(reg.counter("fault.latent_observed").value(), fc.latent_observed);

  const sched::ScrubStats& scrub = sim.scrub_stats();
  EXPECT_EQ(reg.counter("scrub.passes").value(), scrub.passes);
  EXPECT_EQ(reg.counter("scrub.verified_bytes").value(),
            scrub.bytes_verified);
  EXPECT_EQ(reg.counter("scrub.latent_found").value(), scrub.latent_found);

  const sched::EvacStats& evac = sim.evac_stats();
  EXPECT_EQ(reg.counter("evac.started").value(), evac.started);
  EXPECT_EQ(reg.counter("evac.objects_moved").value(), evac.objects_moved);
  EXPECT_EQ(reg.counter("evac.preempted_unavailables").value(),
            evac.preempted_unavailables);

  // Outage ledger: the registry, the scheduler's stats, and the
  // per-request outcomes all agree exactly — every parked extent was
  // reported to exactly one request, and the counters form a consistent
  // onset/close/disaster triangle.
  const sched::OutageStats& outage = sim.outage_stats();
  EXPECT_EQ(reg.counter("outage.started").value(), outage.started);
  EXPECT_EQ(reg.counter("outage.ended").value(), outage.ended);
  EXPECT_EQ(reg.counter("outage.disasters").value(), outage.disasters);
  EXPECT_EQ(reg.counter("outage.failovers").value(), outage.failovers);
  EXPECT_EQ(reg.counter("outage.requests_parked").value(),
            outage.requests_parked);
  EXPECT_EQ(fc.library_outages, outage.started);
  EXPECT_EQ(fc.library_disasters, outage.disasters);
  EXPECT_EQ(parked_extents_sum, outage.extents_parked);
  EXPECT_EQ(parked_requests_sum, outage.requests_parked);
  EXPECT_LE(outage.ended + outage.disasters, outage.started);
  if (cfg.faults.outage.enabled()) {
    EXPECT_GE(reg.gauge("outage.downtime_s").value(), 0.0);
  } else {
    EXPECT_EQ(outage.started, 0u);
    EXPECT_EQ(outage.extents_parked, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tapesim
