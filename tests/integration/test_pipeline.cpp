// End-to-end pipeline tests on a scaled-down paper configuration: the
// qualitative findings of the evaluation must hold as testable invariants.
#include <gtest/gtest.h>

#include "core/parallel_batch.hpp"
#include "exp/experiment.hpp"

namespace tapesim {
namespace {

exp::ExperimentConfig scaled_paper_config(double alpha) {
  exp::ExperimentConfig config;
  // One third of the paper's system and workload; same proportions.
  config.spec.num_libraries = 2;
  config.spec.library.drives_per_library = 6;
  config.spec.library.tapes_per_library = 30;
  config.spec.library.tape_capacity = 100_GB;
  config.workload.num_objects = 5000;
  config.workload.num_requests = 100;
  config.workload.min_objects_per_request = 30;
  config.workload.max_objects_per_request = 60;
  config.workload.object_groups = 60;
  config.workload.zipf_alpha = alpha;
  config.workload.min_object_size = Bytes{200ULL * 1000 * 1000};
  config.workload.max_object_size = Bytes{4ULL * 1000 * 1000 * 1000};
  config.simulated_requests = 60;
  return config;
}

struct AllRuns {
  exp::SchemeRun pbp;
  exp::SchemeRun opp;
  exp::SchemeRun cpp;
};

AllRuns run_all(double alpha, std::uint32_t m = 3) {
  const exp::Experiment experiment(scaled_paper_config(alpha));
  const auto schemes = exp::make_standard_schemes(m);
  return AllRuns{experiment.run(*schemes.parallel_batch),
                 experiment.run(*schemes.object_probability),
                 experiment.run(*schemes.cluster_probability)};
}

TEST(Pipeline, EverySchemeServesEveryRequest) {
  const AllRuns runs = run_all(0.3);
  for (const auto* run : {&runs.pbp, &runs.opp, &runs.cpp}) {
    EXPECT_EQ(run->metrics.count(), 60u);
    EXPECT_GT(run->metrics.mean_response().count(), 0.0);
  }
}

TEST(Pipeline, DecompositionIdentityHoldsInAggregate) {
  const AllRuns runs = run_all(0.3);
  for (const auto* run : {&runs.pbp, &runs.opp, &runs.cpp}) {
    const double lhs = run->metrics.mean_response().count();
    const double rhs = run->metrics.mean_switch().count() +
                       run->metrics.mean_seek().count() +
                       run->metrics.mean_transfer().count();
    EXPECT_NEAR(lhs, rhs, 1e-6) << run->scheme;
  }
}

TEST(Pipeline, HeadlineResultParallelBatchWins) {
  // Figure 6's claim at the paper's default alpha = 0.3.
  const AllRuns runs = run_all(0.3);
  const double pbp = runs.pbp.metrics.mean_bandwidth().count();
  const double opp = runs.opp.metrics.mean_bandwidth().count();
  const double cpp = runs.cpp.metrics.mean_bandwidth().count();
  EXPECT_GT(pbp, opp);
  EXPECT_GT(pbp, cpp);
  EXPECT_GT(opp, cpp);  // and OPP beats the serial baseline
}

TEST(Pipeline, ClusterProbabilityIsTransferDominated) {
  // Figure 9's characterization: CPP serializes transfers.
  const AllRuns runs = run_all(0.3);
  const auto& m = runs.cpp.metrics;
  EXPECT_GT(m.mean_transfer().count(), 0.5 * m.mean_response().count());
}

TEST(Pipeline, ObjectProbabilityIsSwitchHeavy) {
  // Figure 9: OPP performs the most mounts of the three schemes.
  const AllRuns runs = run_all(0.3);
  EXPECT_GT(runs.opp.metrics.mean_tape_switches(),
            runs.pbp.metrics.mean_tape_switches());
  EXPECT_GT(runs.opp.metrics.mean_tape_switches(),
            runs.cpp.metrics.mean_tape_switches());
}

TEST(Pipeline, SkewHelpsParallelBatch) {
  // Figure 6's trend: alpha = 1 beats alpha = 0 for PBP.
  const AllRuns uniform = run_all(0.0);
  const AllRuns skewed = run_all(1.0);
  EXPECT_GT(skewed.pbp.metrics.mean_bandwidth().count(),
            uniform.pbp.metrics.mean_bandwidth().count());
}

TEST(Pipeline, SkewBarelyMovesClusterProbability) {
  // Figure 6: CPP is insensitive to alpha (bounded relative change).
  const AllRuns uniform = run_all(0.0);
  const AllRuns skewed = run_all(1.0);
  const double lo = uniform.cpp.metrics.mean_bandwidth().count();
  const double hi = skewed.cpp.metrics.mean_bandwidth().count();
  EXPECT_LT(std::abs(hi - lo) / lo, 0.35);
}

TEST(Pipeline, SingleSwitchDriveIsTheWorstChoice) {
  // Figure 5's jump from m = 1 to m = 2.
  const exp::Experiment experiment(scaled_paper_config(0.3));
  core::ParallelBatchParams m1;
  m1.switch_drives = 1;
  core::ParallelBatchParams m3;
  m3.switch_drives = 3;
  const auto run1 = experiment.run(core::ParallelBatchPlacement{m1});
  const auto run3 = experiment.run(core::ParallelBatchPlacement{m3});
  EXPECT_GT(run3.metrics.mean_bandwidth().count(),
            run1.metrics.mean_bandwidth().count());
}

TEST(Pipeline, MoreLibrariesScaleParallelSchemes) {
  // Figure 8: doubling the libraries must raise PBP bandwidth markedly and
  // leave CPP nearly flat.
  // Object population scales with capacity (as in the Figure 8 bench).
  exp::ExperimentConfig small = scaled_paper_config(0.3);
  small.spec.num_libraries = 1;
  small.workload.num_objects = 2000;
  exp::ExperimentConfig big = scaled_paper_config(0.3);
  big.spec.num_libraries = 4;
  big.workload.num_objects = 8000;
  const auto schemes = exp::make_standard_schemes(3);
  // The scaled-down requests (~25 GB) need a proportionally smaller split
  // chunk or they cannot use the added drives at all.
  core::ParallelBatchParams params;
  params.switch_drives = 3;
  params.balance.min_split_chunk = 2_GB;
  const core::ParallelBatchPlacement pbp(params);
  const auto pbp_small = exp::Experiment(small).run(pbp);
  const auto pbp_big = exp::Experiment(big).run(pbp);
  const auto cpp_small =
      exp::Experiment(small).run(*schemes.cluster_probability);
  const auto cpp_big = exp::Experiment(big).run(*schemes.cluster_probability);
  EXPECT_GT(pbp_big.metrics.mean_bandwidth().count(),
            1.5 * pbp_small.metrics.mean_bandwidth().count());
  EXPECT_LT(cpp_big.metrics.mean_bandwidth().count(),
            1.5 * cpp_small.metrics.mean_bandwidth().count());
}

TEST(Pipeline, SwitchTimeIsNeverNegative) {
  const AllRuns runs = run_all(0.0);
  for (const auto* run : {&runs.pbp, &runs.opp, &runs.cpp}) {
    // mean over non-negative values is non-negative; also spot-check min
    // via the sample sets (response >= seek + transfer per request).
    EXPECT_GE(run->metrics.mean_switch().count(), 0.0) << run->scheme;
  }
}

TEST(Pipeline, SeekOptimizationNeverHurts) {
  exp::ExperimentConfig with = scaled_paper_config(0.3);
  exp::ExperimentConfig without = scaled_paper_config(0.3);
  without.sim.optimize_seek_order = false;
  const auto schemes = exp::make_standard_schemes(3);
  const auto opt = exp::Experiment(with).run(*schemes.object_probability);
  const auto raw = exp::Experiment(without).run(*schemes.object_probability);
  EXPECT_LE(opt.metrics.mean_seek().count(),
            raw.metrics.mean_seek().count() * 1.001);
}

}  // namespace
}  // namespace tapesim
