#include "cluster/hierarchy.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workload/generator.hpp"

namespace tapesim::cluster {
namespace {

using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

Workload two_families() {
  // Family A: {0,1,2} via R0/R1; family B: {3,4} via R2; 5 is unrequested.
  std::vector<ObjectInfo> objects;
  for (std::uint32_t i = 0; i < 6; ++i) {
    objects.push_back(ObjectInfo{ObjectId{i}, 1_GB});
  }
  std::vector<Request> requests;
  requests.push_back(
      Request{RequestId{0}, 0.5, {ObjectId{0}, ObjectId{1}}});
  requests.push_back(
      Request{RequestId{1}, 0.3, {ObjectId{1}, ObjectId{2}}});
  requests.push_back(Request{RequestId{2}, 0.2, {ObjectId{3}, ObjectId{4}}});
  return Workload{std::move(objects), std::move(requests)};
}

TEST(Dendrogram, MergesInDescendingSimilarity) {
  const Workload wl = two_families();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  const Dendrogram d = build_dendrogram(g);
  ASSERT_GE(d.merges.size(), 2u);
  for (std::size_t i = 1; i < d.merges.size(); ++i) {
    EXPECT_GE(d.merges[i - 1].similarity, d.merges[i].similarity);
  }
  // 5 requested-object components merge into 2 families: 3 merges total
  // ({0,1}, {1,2} chain, {3,4}).
  EXPECT_EQ(d.merges.size(), 3u);
}

TEST(ClusterObjects, ThresholdCutsWeakLinks) {
  const Workload wl = two_families();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  // Cutting above 0.3 keeps only the (0,1) edge at 0.5.
  ClusterConstraints c;
  c.min_similarity = 0.4;
  const ObjectClusters clusters = cluster_objects(wl, g, c);
  clusters.validate(wl);
  EXPECT_EQ(clusters.cluster_of(ObjectId{0}),
            clusters.cluster_of(ObjectId{1}));
  EXPECT_NE(clusters.cluster_of(ObjectId{1}),
            clusters.cluster_of(ObjectId{2}));
  EXPECT_NE(clusters.cluster_of(ObjectId{3}),
            clusters.cluster_of(ObjectId{4}));
}

TEST(ClusterObjects, ZeroThresholdMergesFamilies) {
  const Workload wl = two_families();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  const ObjectClusters clusters = cluster_objects(wl, g, {});
  clusters.validate(wl);
  // {0,1,2} together, {3,4} together, {5} singleton.
  EXPECT_EQ(clusters.cluster_of(ObjectId{0}),
            clusters.cluster_of(ObjectId{2}));
  EXPECT_EQ(clusters.cluster_of(ObjectId{3}),
            clusters.cluster_of(ObjectId{4}));
  EXPECT_NE(clusters.cluster_of(ObjectId{0}),
            clusters.cluster_of(ObjectId{3}));
  const Cluster& family_a = clusters.cluster(clusters.cluster_of(ObjectId{0}));
  EXPECT_EQ(family_a.members.size(), 3u);
  EXPECT_DOUBLE_EQ(family_a.cohesion, 0.3);  // weakest accepted link
}

TEST(ClusterObjects, MaxObjectsConstraintIsRespected) {
  const Workload wl = two_families();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  ClusterConstraints c;
  c.max_objects = 2;
  const ObjectClusters clusters = cluster_objects(wl, g, c);
  clusters.validate(wl);
  for (const Cluster& cl : clusters.clusters()) {
    EXPECT_LE(cl.members.size(), 2u);
  }
}

TEST(ClusterObjects, MaxBytesConstraintIsRespected) {
  const Workload wl = two_families();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  ClusterConstraints c;
  c.max_bytes = 2_GB;
  const ObjectClusters clusters = cluster_objects(wl, g, c);
  clusters.validate(wl);
  for (const Cluster& cl : clusters.clusters()) {
    EXPECT_LE(cl.total_bytes, 2_GB);
  }
}

TEST(ClusterObjects, MembersSortedByDescendingProbability) {
  const Workload wl = two_families();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  const ObjectClusters clusters = cluster_objects(wl, g, {});
  for (const Cluster& cl : clusters.clusters()) {
    for (std::size_t i = 1; i < cl.members.size(); ++i) {
      EXPECT_GE(wl.object_probability(cl.members[i - 1]),
                wl.object_probability(cl.members[i]));
    }
  }
}

TEST(ClusterByRequests, KeepsEachRequestInFewClusters) {
  workload::WorkloadConfig config;
  config.num_objects = 3000;
  config.num_requests = 60;
  config.min_objects_per_request = 30;
  config.max_objects_per_request = 50;
  config.object_groups = 25;
  config.request_locality = 0.9;
  config.min_object_size = 1_GB;
  config.max_object_size = 4_GB;
  Rng rng{5};
  const Workload wl = generate_workload(config, rng);

  ClusterConstraints c;
  c.max_bytes = Bytes{400ULL * 1000 * 1000 * 1000};
  const ObjectClusters clusters = cluster_by_requests(wl, c);
  clusters.validate(wl);

  // Each request's *local* objects should land in very few clusters; only
  // the ~10% strays may sit elsewhere.
  for (const Request& r : wl.requests()) {
    std::set<std::uint32_t> distinct;
    for (const ObjectId o : r.objects) {
      distinct.insert(clusters.cluster_of(o).value());
    }
    EXPECT_LE(distinct.size(), 1 + r.objects.size() / 5)
        << "request " << r.id << " scattered over " << distinct.size()
        << " clusters";
  }
}

TEST(ClusterByRequests, RespectsByteCap) {
  workload::WorkloadConfig config;
  config.num_objects = 2000;
  config.num_requests = 40;
  config.min_objects_per_request = 50;
  config.max_objects_per_request = 80;
  config.object_groups = 10;
  config.min_object_size = 1_GB;
  config.max_object_size = 2_GB;
  Rng rng{6};
  const Workload wl = generate_workload(config, rng);

  ClusterConstraints c;
  c.max_bytes = 60_GB;  // forces secondary clusters
  const ObjectClusters clusters = cluster_by_requests(wl, c);
  clusters.validate(wl);
  for (const Cluster& cl : clusters.clusters()) {
    EXPECT_LE(cl.total_bytes, 60_GB);
  }
}

TEST(ClusterByRequests, RespectsObjectCap) {
  const Workload wl = two_families();
  ClusterConstraints c;
  c.max_objects = 2;
  const ObjectClusters clusters = cluster_by_requests(wl, c);
  clusters.validate(wl);
  for (const Cluster& cl : clusters.clusters()) {
    EXPECT_LE(cl.members.size(), 2u);
  }
}

TEST(ClusterByRequests, ThresholdSkipsRareRequests) {
  const Workload wl = two_families();
  ClusterConstraints c;
  c.min_similarity = 0.25;  // drops R2 (p = 0.2)
  const ObjectClusters clusters = cluster_by_requests(wl, c);
  clusters.validate(wl);
  EXPECT_NE(clusters.cluster_of(ObjectId{3}),
            clusters.cluster_of(ObjectId{4}));
  EXPECT_EQ(clusters.cluster_of(ObjectId{0}),
            clusters.cluster_of(ObjectId{1}));
}

TEST(ClusterByRequests, UnrequestedObjectsBecomeSingletons) {
  const Workload wl = two_families();
  const ObjectClusters clusters = cluster_by_requests(wl, {});
  const Cluster& singleton = clusters.cluster(clusters.cluster_of(ObjectId{5}));
  EXPECT_EQ(singleton.members.size(), 1u);
  EXPECT_DOUBLE_EQ(singleton.cohesion, 0.0);
  EXPECT_DOUBLE_EQ(singleton.total_probability, 0.0);
}

TEST(ClusterByRequests, ClusterStatsAreConsistent) {
  const Workload wl = two_families();
  const ObjectClusters clusters = cluster_by_requests(wl, {});
  clusters.validate(wl);
  double total_prob = 0.0;
  Bytes total_bytes{};
  std::size_t total_members = 0;
  for (const Cluster& cl : clusters.clusters()) {
    total_prob += cl.total_probability;
    total_bytes += cl.total_bytes;
    total_members += cl.members.size();
  }
  EXPECT_EQ(total_members, wl.object_count());
  EXPECT_EQ(total_bytes, wl.total_object_bytes());
}

}  // namespace
}  // namespace tapesim::cluster
