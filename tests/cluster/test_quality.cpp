#include "cluster/quality.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace tapesim::cluster {
namespace {

using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

Workload pair_workload() {
  // R0 {0,1} p=0.5; R1 {2,3} p=0.5.
  std::vector<ObjectInfo> objects;
  for (std::uint32_t i = 0; i < 4; ++i) {
    objects.push_back(ObjectInfo{ObjectId{i}, 1_GB});
  }
  std::vector<Request> requests;
  requests.push_back(Request{RequestId{0}, 0.5, {ObjectId{0}, ObjectId{1}}});
  requests.push_back(Request{RequestId{1}, 0.5, {ObjectId{2}, ObjectId{3}}});
  return Workload{std::move(objects), std::move(requests)};
}

TEST(ClusterQuality, PerfectClusteringScoresOne) {
  const Workload wl = pair_workload();
  const ObjectClusters clusters = cluster_by_requests(wl, {});
  const ClusterQuality q = evaluate_quality(clusters, wl);
  EXPECT_DOUBLE_EQ(q.mean_request_coverage, 1.0);
  EXPECT_DOUBLE_EQ(q.mean_clusters_per_request, 1.0);
  EXPECT_EQ(q.largest_cluster, 2u);
  EXPECT_EQ(q.multi_member_clusters, 2u);
}

TEST(ClusterQuality, SingletonClusteringScoresWorst) {
  const Workload wl = pair_workload();
  // Threshold above every request probability -> all singletons.
  ClusterConstraints constraints;
  constraints.min_similarity = 0.9;
  const ObjectClusters clusters = cluster_by_requests(wl, constraints);
  const ClusterQuality q = evaluate_quality(clusters, wl);
  EXPECT_DOUBLE_EQ(q.mean_request_coverage, 0.5);  // 1 of 2 objects
  EXPECT_DOUBLE_EQ(q.mean_clusters_per_request, 2.0);
  EXPECT_EQ(q.multi_member_clusters, 0u);
  EXPECT_EQ(q.largest_cluster, 1u);
}

TEST(ClusterQuality, CoverageIsProbabilityWeighted) {
  // R0 (p=0.8) perfectly clustered; R1 (p=0.2) split in two.
  std::vector<ObjectInfo> objects;
  for (std::uint32_t i = 0; i < 4; ++i) {
    objects.push_back(ObjectInfo{ObjectId{i}, 1_GB});
  }
  std::vector<Request> requests;
  requests.push_back(Request{RequestId{0}, 0.8, {ObjectId{0}, ObjectId{1}}});
  requests.push_back(Request{RequestId{1}, 0.2, {ObjectId{2}, ObjectId{3}}});
  const Workload wl{std::move(objects), std::move(requests)};

  std::vector<Cluster> hand;
  Cluster c0;
  c0.id = ClusterId{0};
  c0.members = {ObjectId{0}, ObjectId{1}};
  hand.push_back(c0);
  Cluster c1;
  c1.id = ClusterId{1};
  c1.members = {ObjectId{2}};
  hand.push_back(c1);
  Cluster c2;
  c2.id = ClusterId{2};
  c2.members = {ObjectId{3}};
  hand.push_back(c2);
  const ObjectClusters clusters{std::move(hand), 4};

  const ClusterQuality q = evaluate_quality(clusters, wl);
  EXPECT_DOUBLE_EQ(q.mean_request_coverage, 0.8 * 1.0 + 0.2 * 0.5);
  EXPECT_DOUBLE_EQ(q.mean_clusters_per_request, 0.8 * 1.0 + 0.2 * 2.0);
}

TEST(ClusterQuality, HigherLocalityYieldsHigherCoverage) {
  auto coverage_at = [](double locality) {
    workload::WorkloadConfig config;
    config.num_objects = 2000;
    config.num_requests = 40;
    config.min_objects_per_request = 20;
    config.max_objects_per_request = 30;
    config.object_groups = 40;
    config.request_locality = locality;
    Rng rng{3};
    const Workload wl = workload::generate_workload(config, rng);
    const ObjectClusters clusters = cluster_by_requests(wl, {});
    return evaluate_quality(clusters, wl).mean_request_coverage;
  };
  EXPECT_GT(coverage_at(1.0), coverage_at(0.3));
}

}  // namespace
}  // namespace tapesim::cluster
