#include "cluster/similarity.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace tapesim::cluster {
namespace {

using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

Workload hand_workload() {
  std::vector<ObjectInfo> objects;
  for (std::uint32_t i = 0; i < 6; ++i) {
    objects.push_back(ObjectInfo{ObjectId{i}, 1_GB});
  }
  std::vector<Request> requests;
  // R0 {0,1,2} p=0.5 ; R1 {1,2,3} p=0.3 ; R2 {4,5} p=0.2
  requests.push_back(
      Request{RequestId{0}, 0.5, {ObjectId{0}, ObjectId{1}, ObjectId{2}}});
  requests.push_back(
      Request{RequestId{1}, 0.3, {ObjectId{1}, ObjectId{2}, ObjectId{3}}});
  requests.push_back(Request{RequestId{2}, 0.2, {ObjectId{4}, ObjectId{5}}});
  return Workload{std::move(objects), std::move(requests)};
}

TEST(Similarity, PairwiseIsSumOfContainingRequestProbabilities) {
  const Workload wl = hand_workload();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  // (1,2) appears in R0 and R1.
  EXPECT_DOUBLE_EQ(g.similarity(ObjectId{1}, ObjectId{2}), 0.8);
  // (0,1) only in R0.
  EXPECT_DOUBLE_EQ(g.similarity(ObjectId{0}, ObjectId{1}), 0.5);
  // (2,3) only in R1.
  EXPECT_DOUBLE_EQ(g.similarity(ObjectId{2}, ObjectId{3}), 0.3);
  // (4,5) only in R2.
  EXPECT_DOUBLE_EQ(g.similarity(ObjectId{4}, ObjectId{5}), 0.2);
  // (0,3) never co-occur.
  EXPECT_DOUBLE_EQ(g.similarity(ObjectId{0}, ObjectId{3}), 0.0);
  // (0,4) across requests: zero.
  EXPECT_DOUBLE_EQ(g.similarity(ObjectId{0}, ObjectId{4}), 0.0);
}

TEST(Similarity, IsSymmetricAndIrreflexive) {
  const Workload wl = hand_workload();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  EXPECT_DOUBLE_EQ(g.similarity(ObjectId{2}, ObjectId{1}),
                   g.similarity(ObjectId{1}, ObjectId{2}));
  EXPECT_DOUBLE_EQ(g.similarity(ObjectId{1}, ObjectId{1}), 0.0);
}

TEST(Similarity, EdgeCountMatchesCoOccurringPairs) {
  const Workload wl = hand_workload();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  // R0 contributes C(3,2)=3 pairs, R1 3 pairs (one shared: (1,2)), R2 1.
  EXPECT_EQ(g.edge_count(), 3u + 3u - 1u + 1u);
}

TEST(Similarity, EdgesSortedByDescendingWeight) {
  const Workload wl = hand_workload();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  const auto& edges = g.edges();
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GE(edges[i - 1].weight, edges[i].weight);
  }
  EXPECT_EQ(edges.front().a, ObjectId{1});
  EXPECT_EQ(edges.front().b, ObjectId{2});
}

TEST(Similarity, SetSimilarityGeneralizesPairwise) {
  const Workload wl = hand_workload();
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  const ObjectId triple[] = {ObjectId{0}, ObjectId{1}, ObjectId{2}};
  EXPECT_DOUBLE_EQ(SimilarityGraph::set_similarity(wl, triple), 0.5);
  const ObjectId pair[] = {ObjectId{1}, ObjectId{2}};
  EXPECT_DOUBLE_EQ(SimilarityGraph::set_similarity(wl, pair),
                   g.similarity(ObjectId{1}, ObjectId{2}));
  const ObjectId impossible[] = {ObjectId{0}, ObjectId{4}};
  EXPECT_DOUBLE_EQ(SimilarityGraph::set_similarity(wl, impossible), 0.0);
}

TEST(Similarity, ScalesToGeneratedWorkload) {
  workload::WorkloadConfig config;
  config.num_objects = 3000;
  config.num_requests = 40;
  config.min_objects_per_request = 30;
  config.max_objects_per_request = 50;
  config.object_groups = 60;
  Rng rng{3};
  const Workload wl = generate_workload(config, rng);
  const SimilarityGraph g = SimilarityGraph::from_workload(wl);
  EXPECT_GT(g.edge_count(), 1000u);
  // Spot-check consistency with the exhaustive definition.
  for (const auto& e : {g.edges().front(), g.edges().back()}) {
    const ObjectId pair[] = {e.a, e.b};
    EXPECT_NEAR(SimilarityGraph::set_similarity(wl, pair), e.weight, 1e-12);
  }
}

}  // namespace
}  // namespace tapesim::cluster
