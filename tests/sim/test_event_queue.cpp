#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace tapesim::sim {
namespace {

Event make_event(double time, EventId id) {
  return Event{Seconds{time}, id, [] {}, {}};
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(make_event(3.0, 1));
  q.push(make_event(1.0, 2));
  q.push(make_event(2.0, 3));
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_EQ(q.pop().id, 3u);
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesBreakTiesByScheduleOrder) {
  EventQueue q;
  q.push(make_event(5.0, 10));
  q.push(make_event(5.0, 11));
  q.push(make_event(5.0, 12));
  EXPECT_EQ(q.pop().id, 10u);
  EXPECT_EQ(q.pop().id, 11u);
  EXPECT_EQ(q.pop().id, 12u);
}

TEST(EventQueue, NextTimePeeksWithoutRemoving) {
  EventQueue q;
  q.push(make_event(7.0, 1));
  q.push(make_event(4.0, 2));
  EXPECT_DOUBLE_EQ(q.next_time().count(), 4.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue q;
  q.push(make_event(1.0, 1));
  q.push(make_event(2.0, 2));
  EXPECT_TRUE(q.cancel(1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  q.push(make_event(1.0, 1));
  EXPECT_FALSE(q.cancel(99));
  EXPECT_FALSE(q.cancel(1) && q.cancel(1));  // second cancel is a no-op
}

TEST(EventQueue, CancelTopThenNextTimeSkipsIt) {
  EventQueue q;
  q.push(make_event(1.0, 1));
  q.push(make_event(2.0, 2));
  q.cancel(1);
  EXPECT_DOUBLE_EQ(q.next_time().count(), 2.0);
}

TEST(EventQueue, CancelEverything) {
  EventQueue q;
  for (EventId i = 1; i <= 5; ++i) q.push(make_event(double(i), i));
  for (EventId i = 1; i <= 5; ++i) EXPECT_TRUE(q.cancel(i));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueDeath, PopFromEmptyAborts) {
  EventQueue q;
  EXPECT_DEATH(q.pop(), "empty");
}

TEST(EventQueueDeath, DuplicateIdAborts) {
  EventQueue q;
  q.push(make_event(1.0, 1));
  EXPECT_DEATH(q.push(make_event(2.0, 1)), "reused");
}

class EventQueueRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueRandomized, MatchesSortOracle) {
  tapesim::Rng rng{GetParam()};
  EventQueue q;
  struct Ref {
    double time;
    EventId id;
  };
  std::vector<Ref> reference;
  EventId next_id = 1;

  // Interleave pushes, cancels, and pops; verify pop order against a sort.
  std::vector<Ref> popped;
  for (int step = 0; step < 2000; ++step) {
    const double action = rng.uniform();
    if (action < 0.6) {
      const double t = rng.uniform(0.0, 100.0);
      q.push(make_event(t, next_id));
      reference.push_back(Ref{t, next_id});
      ++next_id;
    } else if (action < 0.75 && !reference.empty()) {
      const std::size_t victim = rng.uniform_below(reference.size());
      EXPECT_TRUE(q.cancel(reference[victim].id));
      reference.erase(reference.begin() +
                      static_cast<std::ptrdiff_t>(victim));
    } else if (!q.empty()) {
      const Event e = q.pop();
      popped.push_back(Ref{e.time.count(), e.id});
      const auto it = std::find_if(
          reference.begin(), reference.end(),
          [&](const Ref& r) { return r.id == e.id; });
      ASSERT_NE(it, reference.end());
      reference.erase(it);
    }
    ASSERT_EQ(q.size(), reference.size());
  }
  // Drain; the tail popped after the interleaving must be fully sorted.
  const std::size_t drain_start = popped.size();
  while (!q.empty()) {
    const Event e = q.pop();
    popped.push_back(Ref{e.time.count(), e.id});
    const auto it = std::find_if(reference.begin(), reference.end(),
                                 [&](const Ref& r) { return r.id == e.id; });
    ASSERT_NE(it, reference.end());
    reference.erase(it);
  }
  for (std::size_t i = drain_start + 1; i < popped.size(); ++i) {
    const bool ordered =
        popped[i - 1].time < popped[i].time ||
        (popped[i - 1].time == popped[i].time &&
         popped[i - 1].id < popped[i].id);
    EXPECT_TRUE(ordered) << "drain out of order at " << i;
  }
  EXPECT_TRUE(reference.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(EventQueue, DrainAfterMixedOperationsIsSorted) {
  tapesim::Rng rng{77};
  EventQueue q;
  EventId id = 1;
  for (int i = 0; i < 500; ++i) {
    q.push(make_event(rng.uniform(0.0, 10.0), id++));
  }
  for (EventId c = 5; c < 500; c += 7) q.cancel(c);
  double last = -1.0;
  EventId last_id = 0;
  while (!q.empty()) {
    const Event e = q.pop();
    if (e.time.count() == last) {
      EXPECT_GT(e.id, last_id);
    } else {
      EXPECT_GT(e.time.count(), last);
    }
    last = e.time.count();
    last_id = e.id;
  }
}

}  // namespace
}  // namespace tapesim::sim
