#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tapesim::sim {
namespace {

TEST(Resource, GrantIsImmediateWhenFree) {
  Engine e;
  Resource r(e, "robot");
  double granted_at = -1.0;
  e.schedule_in(Seconds{3.0}, [&] {
    r.acquire([&] { granted_at = e.now().count(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(granted_at, 3.0);
  EXPECT_TRUE(r.busy());  // never released
  EXPECT_EQ(r.grants(), 1u);
}

TEST(Resource, SecondAcquirerWaitsForRelease) {
  Engine e;
  Resource r(e, "robot");
  std::vector<double> grants;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([&] {
      grants.push_back(e.now().count());
      e.schedule_in(Seconds{10.0}, [&] { r.release(); });
    });
  });
  e.schedule_in(Seconds{1.0}, [&] {
    r.acquire([&] {
      grants.push_back(e.now().count());
      r.release();
    });
  });
  e.run();
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_DOUBLE_EQ(grants[0], 0.0);
  EXPECT_DOUBLE_EQ(grants[1], 10.0);
}

TEST(Resource, QueueIsFifo) {
  Engine e;
  Resource r(e, "robot");
  std::vector<int> order;
  e.schedule_in(Seconds{0.0}, [&] {
    for (int i = 0; i < 4; ++i) {
      r.acquire([&, i] {
        order.push_back(i);
        e.schedule_in(Seconds{1.0}, [&] { r.release(); });
      });
    }
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Resource, AcquireForAutoReleases) {
  Engine e;
  Resource r(e, "robot");
  std::vector<double> done;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire_for(Seconds{5.0}, [&] { done.push_back(e.now().count()); });
    r.acquire_for(Seconds{3.0}, [&] { done.push_back(e.now().count()); });
  });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 5.0);
  EXPECT_DOUBLE_EQ(done[1], 8.0);
  EXPECT_FALSE(r.busy());
}

TEST(Resource, BusyTimeAccumulates) {
  Engine e;
  Resource r(e, "robot");
  e.schedule_in(Seconds{0.0}, [&] { r.acquire_for(Seconds{4.0}); });
  e.schedule_in(Seconds{10.0}, [&] { r.acquire_for(Seconds{6.0}); });
  e.run();
  EXPECT_DOUBLE_EQ(r.busy_time().count(), 10.0);
  EXPECT_EQ(r.grants(), 2u);
}

TEST(Resource, QueueLengthReflectsWaiters) {
  Engine e;
  Resource r(e, "robot");
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([] {});  // holds forever
  });
  e.schedule_in(Seconds{1.0}, [&] {
    r.acquire([] {});
    r.acquire([] {});
  });
  e.run();
  EXPECT_EQ(r.queue_length(), 2u);
}

TEST(Resource, GrantsDoNotRunReentrantly) {
  Engine e;
  Resource r(e, "robot");
  bool inner_ran_during_release = false;
  bool in_release = false;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([&] {
      r.acquire([&] {
        inner_ran_during_release = in_release;
        r.release();
      });
      in_release = true;
      r.release();
      in_release = false;
    });
  });
  e.run();
  // The queued grant must be dispatched via the engine, after release()
  // returns, never from inside it.
  EXPECT_FALSE(inner_ran_during_release);
}

TEST(ResourceDeath, ReleasingFreeResourceAborts) {
  Engine e;
  Resource r(e, "robot");
  EXPECT_DEATH(r.release(), "free");
}

}  // namespace
}  // namespace tapesim::sim
