#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tapesim::sim {
namespace {

TEST(Resource, GrantIsImmediateWhenFree) {
  Engine e;
  Resource r(e, "robot");
  double granted_at = -1.0;
  e.schedule_in(Seconds{3.0}, [&] {
    r.acquire([&] { granted_at = e.now().count(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(granted_at, 3.0);
  EXPECT_TRUE(r.busy());  // never released
  EXPECT_EQ(r.grants(), 1u);
}

TEST(Resource, SecondAcquirerWaitsForRelease) {
  Engine e;
  Resource r(e, "robot");
  std::vector<double> grants;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([&] {
      grants.push_back(e.now().count());
      e.schedule_in(Seconds{10.0}, [&] { r.release(); });
    });
  });
  e.schedule_in(Seconds{1.0}, [&] {
    r.acquire([&] {
      grants.push_back(e.now().count());
      r.release();
    });
  });
  e.run();
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_DOUBLE_EQ(grants[0], 0.0);
  EXPECT_DOUBLE_EQ(grants[1], 10.0);
}

TEST(Resource, QueueIsFifo) {
  Engine e;
  Resource r(e, "robot");
  std::vector<int> order;
  e.schedule_in(Seconds{0.0}, [&] {
    for (int i = 0; i < 4; ++i) {
      r.acquire([&, i] {
        order.push_back(i);
        e.schedule_in(Seconds{1.0}, [&] { r.release(); });
      });
    }
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Resource, AcquireForAutoReleases) {
  Engine e;
  Resource r(e, "robot");
  std::vector<double> done;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire_for(Seconds{5.0}, [&] { done.push_back(e.now().count()); });
    r.acquire_for(Seconds{3.0}, [&] { done.push_back(e.now().count()); });
  });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 5.0);
  EXPECT_DOUBLE_EQ(done[1], 8.0);
  EXPECT_FALSE(r.busy());
}

TEST(Resource, BusyTimeAccumulates) {
  Engine e;
  Resource r(e, "robot");
  e.schedule_in(Seconds{0.0}, [&] { r.acquire_for(Seconds{4.0}); });
  e.schedule_in(Seconds{10.0}, [&] { r.acquire_for(Seconds{6.0}); });
  e.run();
  EXPECT_DOUBLE_EQ(r.busy_time().count(), 10.0);
  EXPECT_EQ(r.grants(), 2u);
}

TEST(Resource, QueueLengthReflectsWaiters) {
  Engine e;
  Resource r(e, "robot");
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([] {});  // holds forever
  });
  e.schedule_in(Seconds{1.0}, [&] {
    r.acquire([] {});
    r.acquire([] {});
  });
  e.run();
  EXPECT_EQ(r.queue_length(), 2u);
}

TEST(Resource, GrantsDoNotRunReentrantly) {
  Engine e;
  Resource r(e, "robot");
  bool inner_ran_during_release = false;
  bool in_release = false;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([&] {
      r.acquire([&] {
        inner_ran_during_release = in_release;
        r.release();
      });
      in_release = true;
      r.release();
      in_release = false;
    });
  });
  e.run();
  // The queued grant must be dispatched via the engine, after release()
  // returns, never from inside it.
  EXPECT_FALSE(inner_ran_during_release);
}

TEST(Resource, CancelRemovesQueuedWaiterAndPreservesFifo) {
  // The failover path withdraws a failed drive's pending robot request;
  // everyone behind it must keep their place in line.
  Engine e;
  Resource r(e, "robot");
  std::vector<int> order;
  Resource::Ticket victim = Resource::kInvalidTicket;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([&] {
      order.push_back(0);
      e.schedule_in(Seconds{1.0}, [&] { r.release(); });
    });
    r.acquire([&] {
      order.push_back(1);
      r.release();
    });
    victim = r.acquire([&] { order.push_back(2); });
    r.acquire([&] {
      order.push_back(3);
      r.release();
    });
  });
  e.schedule_in(Seconds{0.5}, [&] {
    EXPECT_EQ(r.queue_length(), 3u);
    EXPECT_TRUE(r.cancel(victim));
    EXPECT_EQ(r.queue_length(), 2u);
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
  EXPECT_FALSE(r.busy());
}

TEST(Resource, CancelGrantedTicketIsRefused) {
  Engine e;
  Resource r(e, "robot");
  Resource::Ticket holder = Resource::kInvalidTicket;
  bool granted = false;
  e.schedule_in(Seconds{0.0}, [&] {
    holder = r.acquire([&] { granted = true; });
  });
  e.schedule_in(Seconds{1.0}, [&] {
    // Already granted: the holder owns the resource and must release() —
    // cancel() cannot take the grant back.
    EXPECT_TRUE(granted);
    EXPECT_FALSE(r.cancel(holder));
    EXPECT_TRUE(r.busy());
    r.release();
  });
  e.run();
  EXPECT_FALSE(r.busy());
}

TEST(Resource, CancelIsIdempotentAndRejectsUnknownTickets) {
  Engine e;
  Resource r(e, "robot");
  Resource::Ticket queued = Resource::kInvalidTicket;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([] {});  // holds forever
    queued = r.acquire([] { ADD_FAILURE() << "cancelled waiter ran"; });
  });
  e.schedule_in(Seconds{1.0}, [&] {
    EXPECT_TRUE(r.cancel(queued));
    EXPECT_FALSE(r.cancel(queued));  // second cancel is a no-op
    EXPECT_FALSE(r.cancel(Resource::kInvalidTicket));
    EXPECT_FALSE(r.cancel(Resource::Ticket{987654}));  // never issued
  });
  e.run();
  EXPECT_EQ(r.queue_length(), 0u);
}

TEST(Resource, CancelledWaiterNeverRunsAfterRelease) {
  // Cancel-while-waiting on the robot FIFO: the release that would have
  // granted the cancelled waiter must skip straight to the next one.
  Engine e;
  Resource r(e, "robot");
  bool survivor_ran = false;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([&] { e.schedule_in(Seconds{2.0}, [&] { r.release(); }); });
    const Resource::Ticket doomed =
        r.acquire([] { ADD_FAILURE() << "cancelled waiter ran"; });
    r.acquire([&] {
      survivor_ran = true;
      r.release();
    });
    e.schedule_in(Seconds{1.0}, [&, doomed] { EXPECT_TRUE(r.cancel(doomed)); });
  });
  e.run();
  EXPECT_TRUE(survivor_ran);
  EXPECT_FALSE(r.busy());
}

TEST(Resource, CancelLosesRaceWithSameTimeRelease) {
  // The in-flight-grant window: release() pops the waiter and schedules
  // its callback as an immediate event. A cancel issued in that window
  // (same timestamp, later event) must be refused — the waiter now owns
  // the resource and is obliged to release it, exactly like any holder.
  Engine e;
  Resource r(e, "robot");
  bool waiter_ran = false;
  Resource::Ticket waiter = Resource::kInvalidTicket;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([&] {
      e.schedule_in(Seconds{1.0}, [&] { r.release(); });
      // Inserted after the release above, so at t = 1 it runs once the
      // grant event is already in flight.
      e.schedule_in(Seconds{1.0}, [&] { EXPECT_FALSE(r.cancel(waiter)); });
    });
    waiter = r.acquire([&] {
      waiter_ran = true;
      r.release();
    });
  });
  e.run();
  EXPECT_TRUE(waiter_ran);
  EXPECT_FALSE(r.busy());
  EXPECT_EQ(r.grants(), 2u);
}

TEST(Resource, CancelSoleWaiterThenReleaseLeavesResourceFree) {
  // With the only waiter withdrawn, the release must leave the resource
  // idle and a later acquire gets an immediate grant (no ghost of the
  // cancelled request remains in the FIFO).
  Engine e;
  Resource r(e, "robot");
  double late_grant_at = -1.0;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([&] { e.schedule_in(Seconds{2.0}, [&] { r.release(); }); });
    const Resource::Ticket doomed =
        r.acquire([] { ADD_FAILURE() << "cancelled waiter ran"; });
    e.schedule_in(Seconds{1.0}, [&, doomed] { EXPECT_TRUE(r.cancel(doomed)); });
  });
  e.schedule_in(Seconds{5.0}, [&] {
    EXPECT_FALSE(r.busy());
    r.acquire([&] {
      late_grant_at = e.now().count();
      r.release();
    });
  });
  e.run();
  EXPECT_DOUBLE_EQ(late_grant_at, 5.0);
  EXPECT_EQ(r.grants(), 2u);  // the cancelled waiter never counts
}

TEST(Resource, DoubleCancelStaysRefusedAcrossGrantCycles) {
  // A cancelled ticket must stay dead forever: later acquire/release
  // cycles advance the ticket counter and churn the queue, but cancelling
  // the old ticket again can never hit a new waiter (tickets are never
  // reused).
  Engine e;
  Resource r(e, "robot");
  std::vector<int> order;
  Resource::Ticket doomed = Resource::kInvalidTicket;
  e.schedule_in(Seconds{0.0}, [&] {
    r.acquire([&] {
      order.push_back(0);
      e.schedule_in(Seconds{2.0}, [&] { r.release(); });
    });
    doomed = r.acquire([] { ADD_FAILURE() << "cancelled waiter ran"; });
  });
  e.schedule_in(Seconds{1.0}, [&] { EXPECT_TRUE(r.cancel(doomed)); });
  e.schedule_in(Seconds{3.0}, [&] {
    // New contention after the first cancel: queue a fresh waiter, then
    // try the dead ticket again mid-wait and once more after its grant.
    r.acquire([&] {
      order.push_back(1);
      e.schedule_in(Seconds{2.0}, [&] { r.release(); });
    });
    r.acquire([&] {
      order.push_back(2);
      r.release();
    });
    EXPECT_FALSE(r.cancel(doomed));
  });
  e.schedule_in(Seconds{6.0}, [&] { EXPECT_FALSE(r.cancel(doomed)); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(r.busy());
}

TEST(ResourceDeath, ReleasingFreeResourceAborts) {
  Engine e;
  Resource r(e, "robot");
  EXPECT_DEATH(r.release(), "free");
}

}  // namespace
}  // namespace tapesim::sim
