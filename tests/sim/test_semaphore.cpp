#include "sim/semaphore.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tapesim::sim {
namespace {

TEST(Semaphore, GrantsUpToCapacityImmediately) {
  Engine e;
  Semaphore s(e, "disk", 2);
  std::vector<double> grants;
  e.schedule_in(Seconds{0.0}, [&] {
    for (int i = 0; i < 3; ++i) {
      s.acquire([&] { grants.push_back(e.now().count()); });
    }
  });
  e.run();
  // Two grants at t=0; the third waits forever (never released).
  ASSERT_EQ(grants.size(), 2u);
  EXPECT_EQ(s.in_use(), 2u);
  EXPECT_EQ(s.queue_length(), 1u);
}

TEST(Semaphore, ReleaseAdmitsWaitersFifo) {
  Engine e;
  Semaphore s(e, "disk", 1);
  std::vector<int> order;
  e.schedule_in(Seconds{0.0}, [&] {
    for (int i = 0; i < 3; ++i) {
      s.acquire([&, i] {
        order.push_back(i);
        e.schedule_in(Seconds{5.0}, [&] { s.release(); });
      });
    }
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(e.now().count(), 15.0);
}

TEST(Semaphore, ZeroCapacityMeansUnlimited) {
  Engine e;
  Semaphore s(e, "disk", 0);
  int granted = 0;
  e.schedule_in(Seconds{0.0}, [&] {
    for (int i = 0; i < 50; ++i) {
      s.acquire([&] { ++granted; });
    }
  });
  e.run();
  EXPECT_EQ(granted, 50);
  EXPECT_TRUE(s.unlimited());
  EXPECT_EQ(s.queue_length(), 0u);
}

TEST(Semaphore, WaitTimeAccumulates) {
  Engine e;
  Semaphore s(e, "disk", 1);
  e.schedule_in(Seconds{0.0}, [&] {
    s.acquire([&] { e.schedule_in(Seconds{10.0}, [&] { s.release(); }); });
    s.acquire([&] { s.release(); });  // waits 10 s
  });
  e.run();
  EXPECT_DOUBLE_EQ(s.wait_time().count(), 10.0);
  EXPECT_EQ(s.grants(), 2u);
}

TEST(SemaphoreDeath, ReleaseWithoutAcquireAborts) {
  Engine e;
  Semaphore s(e, "disk", 1);
  EXPECT_DEATH(s.release(), "matching acquire");
}

}  // namespace
}  // namespace tapesim::sim
