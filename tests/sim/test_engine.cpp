#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tapesim::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now().count(), 0.0);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, RunAdvancesTimeToLastEvent) {
  Engine e;
  double observed = -1.0;
  e.schedule_in(Seconds{5.0}, [&] { observed = e.now().count(); });
  const Seconds end = e.run();
  EXPECT_DOUBLE_EQ(end.count(), 5.0);
  EXPECT_DOUBLE_EQ(observed, 5.0);
  EXPECT_EQ(e.events_dispatched(), 1u);
}

TEST(Engine, EventsRunInScheduledTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_in(Seconds{3.0}, [&] { order.push_back(3); });
  e.schedule_in(Seconds{1.0}, [&] { order.push_back(1); });
  e.schedule_in(Seconds{2.0}, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SimultaneousEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_in(Seconds{1.0}, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ActionsMayScheduleFurtherEvents) {
  Engine e;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(e.now().count());
    if (times.size() < 4) e.schedule_in(Seconds{2.0}, chain);
  };
  e.schedule_in(Seconds{1.0}, chain);
  e.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0, 7.0}));
}

TEST(Engine, ZeroDelayEventRunsAtCurrentTime) {
  Engine e;
  double at = -1.0;
  e.schedule_in(Seconds{4.0}, [&] {
    e.schedule_in(Seconds{0.0}, [&] { at = e.now().count(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(at, 4.0);
}

TEST(Engine, CancelStopsPendingEvent) {
  Engine e;
  bool ran = false;
  const EventId id = e.schedule_in(Seconds{1.0}, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine e;
  std::vector<double> times;
  for (const double t : {1.0, 2.0, 3.0, 4.0}) {
    e.schedule_at(Seconds{t}, [&times, &e] { times.push_back(e.now().count()); });
  }
  e.run_until(Seconds{2.5});
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(e.now().count(), 2.5);
  EXPECT_EQ(e.events_pending(), 2u);
  e.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(Engine, RunUntilWithEmptyQueueAdvancesClock) {
  Engine e;
  e.run_until(Seconds{10.0});
  EXPECT_DOUBLE_EQ(e.now().count(), 10.0);
}

TEST(Engine, ResetClearsPendingAndRewindsClock) {
  Engine e;
  bool ran = false;
  e.schedule_in(Seconds{1.0}, [&] { ran = true; });
  e.reset();
  EXPECT_EQ(e.events_pending(), 0u);
  EXPECT_DOUBLE_EQ(e.now().count(), 0.0);
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, TraceSinkSeesDispatchesInOrder) {
  struct Recorder : TraceSink {
    std::vector<std::pair<double, std::string>> seen;
    void on_dispatch(Seconds time, std::uint64_t,
                     const std::string& label) override {
      seen.emplace_back(time.count(), label);
    }
  };
  Engine e;
  Recorder rec;
  e.set_trace_sink(&rec);
  e.schedule_in(Seconds{2.0}, [] {}, "second");
  e.schedule_in(Seconds{1.0}, [] {}, "first");
  e.run();
  ASSERT_EQ(rec.seen.size(), 2u);
  EXPECT_EQ(rec.seen[0], std::make_pair(1.0, std::string{"first"}));
  EXPECT_EQ(rec.seen[1], std::make_pair(2.0, std::string{"second"}));
}

TEST(EngineDeath, SchedulingInThePastAborts) {
  Engine e;
  e.schedule_in(Seconds{5.0}, [&e] {
    // Attempting to schedule before now() must abort.
    e.schedule_at(Seconds{1.0}, [] {});
  });
  EXPECT_DEATH(e.run(), "past");
}

TEST(EngineDeath, NegativeDelayAborts) {
  Engine e;
  EXPECT_DEATH(e.schedule_in(Seconds{-1.0}, [] {}), "past");
}

TEST(Engine, DeterministicReplay) {
  auto run_once = [] {
    Engine e;
    std::vector<std::uint64_t> order;
    for (int i = 0; i < 50; ++i) {
      const double t = (i * 7) % 13;
      e.schedule_in(Seconds{t}, [&order, i] {
        order.push_back(static_cast<std::uint64_t>(i));
      });
    }
    e.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- ProfileSink hook (engine self-profiling) ---

struct RecordingProfileSink : ProfileSink {
  struct Dispatch {
    double sim_now;
    std::string label;
    double wall_s;
    std::size_t queue_depth;
  };
  int run_begins = 0;
  int run_ends = 0;
  double last_run_wall_s = -1.0;
  std::uint64_t last_run_dispatches = 0;
  std::vector<Dispatch> dispatches;

  void on_run_begin(Seconds /*sim_now*/) override { ++run_begins; }
  void on_run_end(Seconds /*sim_now*/, double wall_s,
                  std::uint64_t count) override {
    ++run_ends;
    last_run_wall_s = wall_s;
    last_run_dispatches = count;
  }
  void on_dispatch_done(Seconds sim_now, const std::string& label,
                        double wall_s, std::size_t queue_depth) override {
    dispatches.push_back({sim_now.count(), label, wall_s, queue_depth});
  }
};

TEST(Engine, ProfileSinkSeesEveryDispatchWithDepthAndLabel) {
  Engine e;
  RecordingProfileSink sink;
  e.set_profile_sink(&sink);

  e.schedule_in(Seconds{1.0}, [] {}, "first");
  e.schedule_in(Seconds{2.0}, [] {});
  e.run();

  ASSERT_EQ(sink.dispatches.size(), 2u);
  EXPECT_EQ(sink.dispatches[0].label, "first");
  EXPECT_DOUBLE_EQ(sink.dispatches[0].sim_now, 1.0);
  EXPECT_EQ(sink.dispatches[0].queue_depth, 1u);  // one event still pending
  EXPECT_EQ(sink.dispatches[1].queue_depth, 0u);
  EXPECT_GE(sink.dispatches[0].wall_s, 0.0);
}

TEST(Engine, ProfileSinkBracketsRunsWithWallAndDispatchCount) {
  Engine e;
  RecordingProfileSink sink;
  e.set_profile_sink(&sink);

  e.schedule_in(Seconds{1.0}, [] {});
  e.schedule_in(Seconds{5.0}, [] {});
  e.run_until(Seconds{2.0});
  EXPECT_EQ(sink.run_begins, 1);
  EXPECT_EQ(sink.run_ends, 1);
  EXPECT_EQ(sink.last_run_dispatches, 1u);
  EXPECT_GE(sink.last_run_wall_s, 0.0);

  e.run();
  EXPECT_EQ(sink.run_begins, 2);
  EXPECT_EQ(sink.last_run_dispatches, 1u);
}

TEST(Engine, ClearingProfileSinkStopsCallbacks) {
  Engine e;
  RecordingProfileSink sink;
  e.set_profile_sink(&sink);
  e.schedule_in(Seconds{1.0}, [] {});
  e.run();
  ASSERT_EQ(sink.dispatches.size(), 1u);

  e.set_profile_sink(nullptr);
  e.schedule_in(Seconds{1.0}, [] {});
  e.run();
  EXPECT_EQ(sink.dispatches.size(), 1u);
  EXPECT_EQ(sink.run_begins, 1);
}

// The zero-overhead-when-disabled contract's behavioral half: a profiled
// run must replay the exact event order and times of an unprofiled one
// (the profiler reads wall clocks only, never simulated time).
TEST(Engine, ProfiledRunIsBitIdenticalToUnprofiled) {
  const auto run_once = [](ProfileSink* sink) {
    Engine e;
    e.set_profile_sink(sink);
    std::vector<std::pair<int, double>> order;
    for (int i = 0; i < 40; ++i) {
      e.schedule_in(Seconds{static_cast<double>((i * 13) % 7)},
                    [&order, &e, i] { order.emplace_back(i, e.now().count()); });
    }
    e.run();
    return order;
  };
  RecordingProfileSink sink;
  EXPECT_EQ(run_once(nullptr), run_once(&sink));
  EXPECT_EQ(sink.dispatches.size(), 40u);
}

}  // namespace
}  // namespace tapesim::sim
