// Replica records and per-tape health in the object catalog:
// insert_replica preconditions, escalate-only health transitions, and
// best_replica's survivor ranking (Good > Degraded, Lost and excluded
// tapes skipped, primary wins ties).
#include <gtest/gtest.h>

#include <array>

#include "catalog/catalog.hpp"

namespace tapesim::catalog {
namespace {

// 3 libraries x 80 tapes, matching test_catalog.cpp's convention.
ObjectRecord record(std::uint32_t obj, Bytes size, std::uint32_t tape,
                    Bytes offset) {
  return ObjectRecord{ObjectId{obj}, size, LibraryId{tape / 80}, TapeId{tape},
                      offset};
}

TEST(CatalogReplicas, InsertReplicaRequiresExistingPrimary) {
  ObjectCatalog cat(240);
  EXPECT_FALSE(cat.insert_replica(record(1, 1_GB, 5, Bytes{0})));
  EXPECT_EQ(cat.copy_count(ObjectId{1}), 0u);
  EXPECT_FALSE(cat.has_replicas());
}

TEST(CatalogReplicas, InsertReplicaRejectsSizeMismatch) {
  ObjectCatalog cat(240);
  ASSERT_TRUE(cat.insert(record(1, 2_GB, 0, Bytes{0})));
  EXPECT_FALSE(cat.insert_replica(record(1, 3_GB, 1, Bytes{0})));
  EXPECT_EQ(cat.copy_count(ObjectId{1}), 1u);
  // Nothing landed in the secondary index either.
  EXPECT_TRUE(cat.extents_on(TapeId{1}).empty());
  EXPECT_EQ(cat.used_on(TapeId{1}).count(), 0u);
}

TEST(CatalogReplicas, InsertReplicaRejectsSharedTape) {
  ObjectCatalog cat(240);
  ASSERT_TRUE(cat.insert(record(1, 1_GB, 0, Bytes{0})));
  // Same tape as the primary.
  EXPECT_FALSE(cat.insert_replica(record(1, 1_GB, 0, 1_GB)));
  ASSERT_TRUE(cat.insert_replica(record(1, 1_GB, 80, Bytes{0})));
  // Same tape as an existing replica.
  EXPECT_FALSE(cat.insert_replica(record(1, 1_GB, 80, 1_GB)));
  EXPECT_EQ(cat.copy_count(ObjectId{1}), 2u);
  EXPECT_EQ(cat.replica_count(), 1u);
}

TEST(CatalogReplicas, ReplicasKeepInsertionOrderAndFeedBothIndexes) {
  ObjectCatalog cat(240);
  ASSERT_TRUE(cat.insert(record(7, 4_GB, 3, Bytes{0})));
  ASSERT_TRUE(cat.insert_replica(record(7, 4_GB, 90, 2_GB)));
  ASSERT_TRUE(cat.insert_replica(record(7, 4_GB, 170, Bytes{0})));

  const auto copies = cat.replicas(ObjectId{7});
  ASSERT_EQ(copies.size(), 2u);
  EXPECT_EQ(copies[0].tape.value(), 90u);
  EXPECT_EQ(copies[1].tape.value(), 170u);
  EXPECT_EQ(cat.copy_count(ObjectId{7}), 3u);
  EXPECT_TRUE(cat.has_replicas());

  // Replica bytes show up in the per-tape extent index and accounting.
  ASSERT_EQ(cat.extents_on(TapeId{90}).size(), 1u);
  EXPECT_EQ(cat.extents_on(TapeId{90})[0].offset.count(), (2_GB).count());
  EXPECT_EQ(cat.used_on(TapeId{170}).count(), (4_GB).count());
  cat.validate(400_GB);
}

TEST(CatalogReplicas, HealthOnlyEscalates) {
  ObjectCatalog cat(240);
  const TapeId tape{12};
  EXPECT_EQ(cat.tape_health(tape), ReplicaHealth::kGood);
  cat.set_tape_health(tape, ReplicaHealth::kDegraded);
  EXPECT_EQ(cat.tape_health(tape), ReplicaHealth::kDegraded);
  // Attempts to improve are ignored.
  cat.set_tape_health(tape, ReplicaHealth::kGood);
  EXPECT_EQ(cat.tape_health(tape), ReplicaHealth::kDegraded);
  cat.set_tape_health(tape, ReplicaHealth::kLost);
  cat.set_tape_health(tape, ReplicaHealth::kDegraded);
  EXPECT_EQ(cat.tape_health(tape), ReplicaHealth::kLost);
}

TEST(CatalogReplicas, BestReplicaPrefersGoodOverDegradedAndPrimaryOnTies) {
  ObjectCatalog cat(240);
  ASSERT_TRUE(cat.insert(record(1, 1_GB, 0, Bytes{0})));
  ASSERT_TRUE(cat.insert_replica(record(1, 1_GB, 80, Bytes{0})));
  ASSERT_TRUE(cat.insert_replica(record(1, 1_GB, 160, Bytes{0})));

  // All Good: the primary wins the tie.
  const ObjectRecord* best = cat.best_replica(ObjectId{1});
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->tape.value(), 0u);

  // Degraded primary loses to a Good replica (earliest inserted).
  cat.set_tape_health(TapeId{0}, ReplicaHealth::kDegraded);
  best = cat.best_replica(ObjectId{1});
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->tape.value(), 80u);

  // With every copy Degraded the primary again wins the tie.
  cat.set_tape_health(TapeId{80}, ReplicaHealth::kDegraded);
  cat.set_tape_health(TapeId{160}, ReplicaHealth::kDegraded);
  best = cat.best_replica(ObjectId{1});
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->tape.value(), 0u);
}

TEST(CatalogReplicas, BestReplicaSkipsLostAndExcludedTapes) {
  ObjectCatalog cat(240);
  ASSERT_TRUE(cat.insert(record(1, 1_GB, 0, Bytes{0})));
  ASSERT_TRUE(cat.insert_replica(record(1, 1_GB, 80, Bytes{0})));

  cat.set_tape_health(TapeId{0}, ReplicaHealth::kLost);
  const ObjectRecord* best = cat.best_replica(ObjectId{1});
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->tape.value(), 80u);

  // The exclude list models copies already tried this request.
  const std::array<TapeId, 1> tried{TapeId{80}};
  EXPECT_EQ(cat.best_replica(ObjectId{1}, tried), nullptr);

  cat.set_tape_health(TapeId{80}, ReplicaHealth::kLost);
  EXPECT_EQ(cat.best_replica(ObjectId{1}), nullptr);
  EXPECT_EQ(cat.best_replica(ObjectId{2}), nullptr);  // absent object
}

TEST(CatalogReplicas, RetiredTapesAreSkippedAndRetirementIsOneWay) {
  ObjectCatalog cat(240);
  ASSERT_TRUE(cat.insert(record(1, 1_GB, 0, Bytes{0})));
  ASSERT_TRUE(cat.insert_replica(record(1, 1_GB, 80, Bytes{0})));

  EXPECT_FALSE(cat.tape_retired(TapeId{0}));
  cat.retire_tape(TapeId{0});
  EXPECT_TRUE(cat.tape_retired(TapeId{0}));
  // Retiring again is a harmless no-op; there is no way back.
  cat.retire_tape(TapeId{0});
  EXPECT_TRUE(cat.tape_retired(TapeId{0}));

  // The evacuated copy serves; the retired primary never does, even though
  // its health is still Good (retirement is orthogonal to media health).
  EXPECT_EQ(cat.tape_health(TapeId{0}), ReplicaHealth::kGood);
  const ObjectRecord* best = cat.best_replica(ObjectId{1});
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->tape.value(), 80u);

  cat.retire_tape(TapeId{80});
  EXPECT_EQ(cat.best_replica(ObjectId{1}), nullptr);
}

TEST(CatalogReplicas, RetirementKeepsExtentsAndAccounting) {
  // The physical bytes stay on the cartridge: retirement only removes the
  // tape from serving rotation, so the secondary index and the byte
  // accounting are untouched (an operator can still audit what is on it).
  ObjectCatalog cat(240);
  ASSERT_TRUE(cat.insert(record(3, 2_GB, 5, Bytes{0})));
  ASSERT_TRUE(cat.insert(record(4, 1_GB, 5, 2_GB)));
  cat.retire_tape(TapeId{5});
  EXPECT_EQ(cat.extents_on(TapeId{5}).size(), 2u);
  EXPECT_EQ(cat.used_on(TapeId{5}).count(), (3_GB).count());
  EXPECT_NE(cat.lookup(ObjectId{3}), nullptr);
  cat.validate(400_GB);
}

TEST(CatalogReplicas, ScrubMarkedLossesRouteAroundUnreadTapes) {
  // A scrub pass can mark a tape Lost through set_tape_health before any
  // foreground read ever touched it; best_replica must route around it
  // exactly as it does for read-error escalations.
  ObjectCatalog cat(240);
  ASSERT_TRUE(cat.insert(record(9, 1_GB, 10, Bytes{0})));
  ASSERT_TRUE(cat.insert_replica(record(9, 1_GB, 91, Bytes{0})));

  cat.set_tape_health(TapeId{10}, ReplicaHealth::kLost);
  const ObjectRecord* best = cat.best_replica(ObjectId{9});
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->tape.value(), 91u);

  // A later scrub finding on the replica (Degraded, not Lost) still leaves
  // it the only live copy.
  cat.set_tape_health(TapeId{91}, ReplicaHealth::kDegraded);
  best = cat.best_replica(ObjectId{9});
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->tape.value(), 91u);
}

}  // namespace
}  // namespace tapesim::catalog
