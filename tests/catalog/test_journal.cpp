#include "catalog/journal.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace tapesim::catalog {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ObjectRecord record(std::uint32_t obj, std::uint32_t tape, Bytes offset,
                    Bytes size = 1_GB) {
  return ObjectRecord{ObjectId{obj}, size, LibraryId{tape / 80}, TapeId{tape},
                      offset};
}

JournalConfig enabled_config(FsyncPolicy policy = FsyncPolicy::kSync) {
  JournalConfig c;
  c.enabled = true;
  c.fsync = policy;
  return c;
}

// ---------------------------------------------------------------------------
// Config validation: every rejection rule, one knob at a time.

TEST(JournalConfig, DefaultIsValidAndDisabled) {
  const JournalConfig c;
  EXPECT_FALSE(c.enabled);
  EXPECT_TRUE(c.try_validate().ok());
}

TEST(JournalConfig, ErrorNamesTheStruct) {
  JournalConfig c;
  c.group_window = Seconds{0.0};
  const Status s = c.try_validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("JournalConfig"), std::string::npos);
}

TEST(JournalConfig, RejectsNonPositiveGroupWindow) {
  JournalConfig c;
  c.group_window = Seconds{0.0};
  EXPECT_FALSE(c.try_validate().ok());
  c.group_window = Seconds{-1.0};
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(JournalConfig, RejectsZeroGroupSizeCap) {
  JournalConfig c;
  c.group_max_records = 0;
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(JournalConfig, RejectsNonPositiveAsyncFlush) {
  JournalConfig c;
  c.async_flush = Seconds{0.0};
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(JournalConfig, RejectsNegativeCheckpointInterval) {
  JournalConfig c;
  c.checkpoint_interval = Seconds{-1.0};
  EXPECT_FALSE(c.try_validate().ok());
  c.checkpoint_interval = Seconds{0.0};  // 0 = checkpoint only at recovery
  EXPECT_TRUE(c.try_validate().ok());
}

TEST(JournalConfig, RejectsNegativeRecoveryCosts) {
  JournalConfig c;
  c.recovery_base = Seconds{-1.0};
  EXPECT_FALSE(c.try_validate().ok());
  c = JournalConfig{};
  c.replay_per_record = Seconds{-0.001};
  EXPECT_FALSE(c.try_validate().ok());
  c = JournalConfig{};
  c.reconcile_per_record = Seconds{-1.0};
  EXPECT_FALSE(c.try_validate().ok());
  // Zero costs are legal: instant recovery is a valid model point.
  c = JournalConfig{};
  c.recovery_base = Seconds{0.0};
  c.replay_per_record = Seconds{0.0};
  c.reconcile_per_record = Seconds{0.0};
  EXPECT_TRUE(c.try_validate().ok());
}

TEST(JournalDeath, RefusesDisabledOrInvalidConfig) {
  EXPECT_DEATH(Journal(JournalConfig{}, 240), "disabled");
  JournalConfig bad = enabled_config();
  bad.group_window = Seconds{0.0};
  EXPECT_DEATH(Journal(bad, 240), "validate");
}

// ---------------------------------------------------------------------------
// Fsync policies: when records reach stable storage.

TEST(Journal, SyncPolicyIsDurableAtAppend) {
  Journal j(enabled_config(FsyncPolicy::kSync), 240);
  j.log_insert(record(1, 0, Bytes{0}), Seconds{10.0});
  j.log_insert(record(2, 1, Bytes{0}), Seconds{20.0});
  ASSERT_EQ(j.live_records(), 2u);
  EXPECT_EQ(j.records()[0].durable_at.count(), 10.0);
  EXPECT_EQ(j.records()[1].durable_at.count(), 20.0);
  EXPECT_EQ(j.stats().appends, 2u);
  EXPECT_EQ(j.stats().fsyncs, 2u);  // one fsync per record
}

TEST(Journal, LsnsAreAssignedInAppendOrder) {
  Journal j(enabled_config(), 240);
  j.log_insert(record(1, 0, Bytes{0}), Seconds{1.0});
  j.log_set_tape_health(TapeId{5}, ReplicaHealth::kDegraded, Seconds{2.0});
  j.log_retire_tape(TapeId{5}, Seconds{3.0});
  ASSERT_EQ(j.live_records(), 3u);
  EXPECT_EQ(j.records()[0].lsn, 1u);
  EXPECT_EQ(j.records()[1].lsn, 2u);
  EXPECT_EQ(j.records()[2].lsn, 3u);
  EXPECT_EQ(j.records()[1].kind, MutationKind::kSetTapeHealth);
  EXPECT_EQ(j.records()[2].kind, MutationKind::kRetireTape);
}

TEST(Journal, GroupCommitBatchSyncsWhenWindowCloses) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kGroupCommit);
  cfg.group_window = Seconds{1.0};
  Journal j(cfg, 240);
  j.log_insert(record(1, 0, Bytes{0}), Seconds{10.0});
  j.log_insert(record(2, 1, Bytes{0}), Seconds{10.5});
  // Batch still open: neither record is on stable storage yet.
  EXPECT_EQ(j.records()[0].durable_at.count(), kInf);
  EXPECT_EQ(j.records()[1].durable_at.count(), kInf);
  EXPECT_EQ(j.stats().fsyncs, 0u);
  // The next append past the window retroactively resolves the batch at
  // its due time (open + window), then opens a new batch.
  j.log_insert(record(3, 2, Bytes{0}), Seconds{12.0});
  EXPECT_EQ(j.records()[0].durable_at.count(), 11.0);
  EXPECT_EQ(j.records()[1].durable_at.count(), 11.0);
  EXPECT_EQ(j.records()[2].durable_at.count(), kInf);
  EXPECT_EQ(j.stats().fsyncs, 1u);  // one fsync for the whole batch
}

TEST(Journal, GroupCommitBatchSyncsAtSizeCap) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kGroupCommit);
  cfg.group_window = Seconds{100.0};  // window never closes in this test
  cfg.group_max_records = 3;
  Journal j(cfg, 240);
  j.log_insert(record(1, 0, Bytes{0}), Seconds{1.0});
  j.log_insert(record(2, 1, Bytes{0}), Seconds{2.0});
  EXPECT_EQ(j.stats().fsyncs, 0u);
  j.log_insert(record(3, 2, Bytes{0}), Seconds{3.0});  // cap reached
  EXPECT_EQ(j.records()[0].durable_at.count(), 3.0);
  EXPECT_EQ(j.records()[1].durable_at.count(), 3.0);
  EXPECT_EQ(j.records()[2].durable_at.count(), 3.0);
  EXPECT_EQ(j.stats().fsyncs, 1u);
}

TEST(Journal, AsyncPolicyWritesBackAfterFixedDelay) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kAsync);
  cfg.async_flush = Seconds{30.0};
  Journal j(cfg, 240);
  j.log_insert(record(1, 0, Bytes{0}), Seconds{100.0});
  EXPECT_EQ(j.records()[0].durable_at.count(), 130.0);
}

// ---------------------------------------------------------------------------
// Checkpoints: snapshot + truncation bound replay length.

TEST(Journal, CheckpointTruncatesTheLog) {
  Journal j(enabled_config(), 240);
  ObjectCatalog cat(240);
  for (std::uint32_t i = 0; i < 5; ++i) {
    const ObjectRecord r = record(i, i, Bytes{0});
    ASSERT_TRUE(cat.insert(r));
    j.log_insert(r, Seconds{static_cast<double>(i)});
  }
  EXPECT_EQ(j.live_records(), 5u);
  j.checkpoint(cat, Seconds{10.0});
  EXPECT_EQ(j.live_records(), 0u);
  EXPECT_EQ(j.stats().records_truncated, 5u);
  EXPECT_EQ(j.stats().checkpoints, 1u);
  EXPECT_EQ(j.snapshot_at().count(), 10.0);
  EXPECT_EQ(j.snapshot_lsn(), 5u);
  // Replay from the snapshot alone reproduces the catalog.
  ObjectCatalog rebuilt = j.replay();
  EXPECT_TRUE(rebuilt.equals(cat));
  EXPECT_EQ(j.stats().records_replayed, 0u);  // nothing left to replay
}

TEST(Journal, CheckpointDueFollowsTheInterval) {
  JournalConfig cfg = enabled_config();
  cfg.checkpoint_interval = Seconds{100.0};
  Journal j(cfg, 240);
  EXPECT_FALSE(j.checkpoint_due(Seconds{99.0}));
  EXPECT_TRUE(j.checkpoint_due(Seconds{100.0}));
  ObjectCatalog cat(240);
  j.checkpoint(cat, Seconds{150.0});
  EXPECT_FALSE(j.checkpoint_due(Seconds{249.0}));
  EXPECT_TRUE(j.checkpoint_due(Seconds{250.0}));
}

TEST(Journal, ZeroIntervalNeverComesDue) {
  JournalConfig cfg = enabled_config();
  cfg.checkpoint_interval = Seconds{0.0};
  const Journal j(cfg, 240);
  EXPECT_FALSE(j.checkpoint_due(Seconds{1e12}));
}

TEST(Journal, CheckpointBarrierSyncsPendingRecords) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kAsync);
  cfg.async_flush = Seconds{1000.0};
  Journal j(cfg, 240);
  ObjectCatalog cat(240);
  const ObjectRecord r = record(1, 0, Bytes{0});
  ASSERT_TRUE(cat.insert(r));
  j.log_insert(r, Seconds{5.0});
  j.checkpoint(cat, Seconds{6.0});  // long before the 1000 s writeback
  // A crash immediately after a checkpoint loses nothing: the barrier
  // forced the pending record down before truncating it.
  const auto cut = j.crash_cut(Seconds{6.0}, /*torn_draw=*/0.0);
  EXPECT_EQ(cut.lost, 0u);
}

// ---------------------------------------------------------------------------
// Crash cuts: the torn tail is exactly the unsynced suffix.

TEST(Journal, SyncPolicyNeverLosesRecords) {
  Journal j(enabled_config(FsyncPolicy::kSync), 240);
  for (std::uint32_t i = 0; i < 10; ++i) {
    j.log_insert(record(i, i, Bytes{0}), Seconds{static_cast<double>(i)});
  }
  const auto cut = j.crash_cut(Seconds{9.0}, /*torn_draw=*/0.0);
  EXPECT_EQ(cut.lost, 0u);
  EXPECT_EQ(cut.survivors, 10u);
  EXPECT_TRUE(j.take_lost().empty());
}

TEST(Journal, CrashCutDropsTheUnsyncedSuffix) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kGroupCommit);
  cfg.group_window = Seconds{1.0};
  Journal j(cfg, 240);
  j.log_insert(record(1, 0, Bytes{0}), Seconds{10.0});   // batch 1
  j.log_insert(record(2, 1, Bytes{0}), Seconds{20.0});   // batch 2, open
  j.log_insert(record(3, 2, Bytes{0}), Seconds{20.5});   // batch 2, open
  // Crash at 20.6: batch 1 closed at 11.0 and survives; batch 2's window
  // (due 21.0) never closed. Draw 0 → zero survivors from the tail.
  const auto cut = j.crash_cut(Seconds{20.6}, /*torn_draw=*/0.0);
  EXPECT_EQ(cut.survivors, 1u);
  EXPECT_EQ(cut.lost, 2u);
  const auto lost = j.take_lost();
  ASSERT_EQ(lost.size(), 2u);
  EXPECT_EQ(lost[0].object.object, ObjectId{2});
  EXPECT_EQ(lost[1].object.object, ObjectId{3});
  EXPECT_EQ(j.stats().records_lost, 2u);
  EXPECT_EQ(j.stats().records_reconciled, 2u);
}

TEST(Journal, TornDrawPicksTheSurvivingPrefix) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kGroupCommit);
  cfg.group_window = Seconds{100.0};
  Journal j(cfg, 240);
  for (std::uint32_t i = 0; i < 4; ++i) {
    j.log_insert(record(i, i, Bytes{0}), Seconds{1.0 + i * 0.01});
  }
  // 4 unsynced records; draw 0.5 → floor(0.5 * 5) = 2 survive.
  const auto cut = j.crash_cut(Seconds{2.0}, /*torn_draw=*/0.5);
  EXPECT_EQ(cut.survivors, 2u);
  EXPECT_EQ(cut.lost, 2u);
  // Survivors are the *prefix* (the log is written in order) and are now
  // durable as of the crash.
  EXPECT_EQ(j.records()[0].object.object, ObjectId{0});
  EXPECT_EQ(j.records()[1].object.object, ObjectId{1});
  EXPECT_EQ(j.records()[1].durable_at.count(), 2.0);
  (void)j.take_lost();
}

TEST(Journal, TornDrawNearOneKeepsTheWholeTail) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kGroupCommit);
  cfg.group_window = Seconds{100.0};
  Journal j(cfg, 240);
  j.log_insert(record(1, 0, Bytes{0}), Seconds{1.0});
  j.log_insert(record(2, 1, Bytes{0}), Seconds{1.5});
  // floor(0.99 * 3) = 2: both unsynced records landed before the crash.
  const auto cut = j.crash_cut(Seconds{2.0}, /*torn_draw=*/0.99);
  EXPECT_EQ(cut.survivors, 2u);
  EXPECT_EQ(cut.lost, 0u);
}

TEST(Journal, CrashLeavesAsyncSyncedPrefixAlone) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kAsync);
  cfg.async_flush = Seconds{10.0};
  Journal j(cfg, 240);
  j.log_insert(record(1, 0, Bytes{0}), Seconds{0.0});   // durable at 10
  j.log_insert(record(2, 1, Bytes{0}), Seconds{50.0});  // durable at 60
  const auto cut = j.crash_cut(Seconds{55.0}, /*torn_draw=*/0.0);
  EXPECT_EQ(cut.survivors, 1u);  // record 1 wrote back at 10 < 55
  EXPECT_EQ(cut.lost, 1u);
  (void)j.take_lost();
}

TEST(JournalDeath, SecondCrashBeforeReconciliationIsABug) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kGroupCommit);
  cfg.group_window = Seconds{100.0};
  Journal j(cfg, 240);
  j.log_insert(record(1, 0, Bytes{0}), Seconds{1.0});
  (void)j.crash_cut(Seconds{2.0}, 0.0);
  EXPECT_DEATH((void)j.crash_cut(Seconds{3.0}, 0.0), "reconciled");
}

// ---------------------------------------------------------------------------
// Replay: snapshot + surviving log rebuilds the exact catalog.

TEST(Journal, ReplayReproducesTheCatalogExactly) {
  Journal j(enabled_config(), 240);
  ObjectCatalog cat(240);
  // A mixed mutation history: placements, replicas, health, retirement.
  Bytes offset{0};
  for (std::uint32_t i = 0; i < 20; ++i) {
    const ObjectRecord r = record(i, i % 8, offset);
    ASSERT_TRUE(cat.insert(r));
    j.log_insert(r, Seconds{static_cast<double>(i)});
    if (i % 8 == 7) offset += 1_GB;
  }
  j.checkpoint(cat, Seconds{25.0});  // snapshot mid-history
  for (std::uint32_t i = 0; i < 10; ++i) {
    const ObjectRecord copy = record(i, 100 + i, Bytes{0});
    ASSERT_TRUE(cat.insert_replica(copy));
    j.log_insert_replica(copy, Seconds{30.0 + i});
  }
  cat.set_tape_health(TapeId{3}, ReplicaHealth::kDegraded);
  j.log_set_tape_health(TapeId{3}, ReplicaHealth::kDegraded, Seconds{41.0});
  cat.set_tape_health(TapeId{4}, ReplicaHealth::kLost);
  j.log_set_tape_health(TapeId{4}, ReplicaHealth::kLost, Seconds{42.0});
  cat.retire_tape(TapeId{4});
  j.log_retire_tape(TapeId{4}, Seconds{43.0});

  ObjectCatalog rebuilt = j.replay();
  EXPECT_TRUE(rebuilt.equals(cat));
  EXPECT_EQ(j.stats().records_replayed, 13u);  // 10 replicas + 3 tape ops
  // A second replay is idempotent — same result, same source log.
  ObjectCatalog again = j.replay();
  EXPECT_TRUE(again.equals(cat));
}

TEST(Journal, ApplyIsIdempotent) {
  ObjectCatalog cat(240);
  JournalRecord rec;
  rec.kind = MutationKind::kInsert;
  rec.object = record(1, 0, Bytes{0});
  Journal::apply(cat, rec);
  Journal::apply(cat, rec);  // duplicate insert is a no-op
  EXPECT_EQ(cat.object_count(), 1u);
  rec.kind = MutationKind::kInsertReplica;
  rec.object = record(1, 5, Bytes{0});
  Journal::apply(cat, rec);
  Journal::apply(cat, rec);
  EXPECT_EQ(cat.copy_count(ObjectId{1}), 2u);
  rec.kind = MutationKind::kRetireTape;
  rec.tape = TapeId{5};
  Journal::apply(cat, rec);
  Journal::apply(cat, rec);
  EXPECT_TRUE(cat.tape_retired(TapeId{5}));
}

TEST(Journal, ReplayAfterCrashCutSkipsTheLostTail) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kGroupCommit);
  cfg.group_window = Seconds{100.0};
  Journal j(cfg, 240);
  ObjectCatalog cat(240);
  ObjectCatalog durable_only(240);
  for (std::uint32_t i = 0; i < 6; ++i) {
    const ObjectRecord r = record(i, i, Bytes{0});
    ASSERT_TRUE(cat.insert(r));
    j.log_insert(r, Seconds{1.0 + i * 0.01});
  }
  // floor(0.4 * 7) = 2 survive, 4 lost.
  const auto cut = j.crash_cut(Seconds{2.0}, /*torn_draw=*/0.4);
  ASSERT_EQ(cut.survivors, 2u);
  for (std::uint32_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(durable_only.insert(record(i, i, Bytes{0})));
  }
  ObjectCatalog rebuilt = j.replay();
  EXPECT_TRUE(rebuilt.equals(durable_only));
  EXPECT_FALSE(rebuilt.equals(cat));
  // Reconciliation re-derives the lost mutations; the catalogs converge.
  for (const JournalRecord& lost : j.take_lost()) {
    Journal::apply(rebuilt, lost);
  }
  EXPECT_TRUE(rebuilt.equals(cat));
}

// ---------------------------------------------------------------------------
// Ledger conservation: every append is truncated, lost, or live.

TEST(Journal, LedgerConservesAppends) {
  JournalConfig cfg = enabled_config(FsyncPolicy::kGroupCommit);
  cfg.group_window = Seconds{0.5};
  cfg.group_max_records = 4;
  Journal j(cfg, 240);
  ObjectCatalog cat(240);
  std::uint32_t next_obj = 0;
  const auto add = [&](Seconds at) {
    const ObjectRecord r = record(next_obj, next_obj % 240, Bytes{0});
    ++next_obj;
    ASSERT_TRUE(cat.insert(r));
    j.log_insert(r, at);
  };
  for (std::uint32_t i = 0; i < 7; ++i) add(Seconds{i * 0.1});
  j.checkpoint(cat, Seconds{1.0});
  for (std::uint32_t i = 0; i < 5; ++i) add(Seconds{2.0 + i * 0.01});
  (void)j.crash_cut(Seconds{2.1}, /*torn_draw=*/0.3);
  (void)j.take_lost();
  for (std::uint32_t i = 0; i < 3; ++i) add(Seconds{3.0 + i * 0.01});
  const JournalStats& s = j.stats();
  EXPECT_EQ(s.appends, 15u);
  EXPECT_EQ(s.appends,
            s.records_truncated + s.records_lost + j.live_records());
  EXPECT_EQ(s.records_lost, s.records_reconciled);
}

// ---------------------------------------------------------------------------
// Enum labels (trace/table rendering).

TEST(Journal, EnumLabels) {
  EXPECT_STREQ(to_string(FsyncPolicy::kSync), "sync");
  EXPECT_STREQ(to_string(FsyncPolicy::kGroupCommit), "group");
  EXPECT_STREQ(to_string(FsyncPolicy::kAsync), "async");
  EXPECT_STREQ(to_string(MutationKind::kInsert), "insert");
  EXPECT_STREQ(to_string(MutationKind::kInsertReplica), "insert_replica");
  EXPECT_STREQ(to_string(MutationKind::kSetTapeHealth), "set_tape_health");
  EXPECT_STREQ(to_string(MutationKind::kRetireTape), "retire_tape");
}

}  // namespace
}  // namespace tapesim::catalog
