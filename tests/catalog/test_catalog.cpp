#include "catalog/catalog.hpp"

#include <gtest/gtest.h>

namespace tapesim::catalog {
namespace {

ObjectRecord record(std::uint32_t obj, Bytes size, std::uint32_t tape,
                    Bytes offset) {
  return ObjectRecord{ObjectId{obj}, size, LibraryId{tape / 80},
                      TapeId{tape}, offset};
}

TEST(Catalog, InsertAndLookup) {
  ObjectCatalog cat(240);
  EXPECT_TRUE(cat.insert(record(1, 10_GB, 3, Bytes{0})));
  const ObjectRecord* rec = cat.lookup(ObjectId{1});
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->size, 10_GB);
  EXPECT_EQ(rec->tape, TapeId{3});
  EXPECT_EQ(rec->offset, Bytes{0});
  EXPECT_EQ(rec->end_offset(), 10_GB);
  EXPECT_EQ(cat.lookup(ObjectId{2}), nullptr);
  EXPECT_EQ(cat.object_count(), 1u);
}

TEST(Catalog, RejectsDuplicateObject) {
  ObjectCatalog cat(240);
  EXPECT_TRUE(cat.insert(record(1, 1_GB, 0, Bytes{0})));
  EXPECT_FALSE(cat.insert(record(1, 2_GB, 1, Bytes{0})));
  EXPECT_EQ(cat.object_count(), 1u);
  EXPECT_EQ(cat.lookup(ObjectId{1})->tape, TapeId{0});
}

TEST(Catalog, ExtentsAreSortedByOffset) {
  ObjectCatalog cat(240);
  // Insert out of offset order.
  cat.insert(record(1, 1_GB, 5, 10_GB));
  cat.insert(record(2, 1_GB, 5, Bytes{0}));
  cat.insert(record(3, 1_GB, 5, 5_GB));
  const auto extents = cat.extents_on(TapeId{5});
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0].object, ObjectId{2});
  EXPECT_EQ(extents[1].object, ObjectId{3});
  EXPECT_EQ(extents[2].object, ObjectId{1});
}

TEST(Catalog, UsedBytesPerTape) {
  ObjectCatalog cat(240);
  cat.insert(record(1, 3_GB, 7, Bytes{0}));
  cat.insert(record(2, 4_GB, 7, 3_GB));
  cat.insert(record(3, 5_GB, 8, Bytes{0}));
  EXPECT_EQ(cat.used_on(TapeId{7}), 7_GB);
  EXPECT_EQ(cat.used_on(TapeId{8}), 5_GB);
  EXPECT_EQ(cat.used_on(TapeId{9}), 0_B);
}

TEST(Catalog, EmptyTapeHasNoExtents) {
  ObjectCatalog cat(240);
  EXPECT_TRUE(cat.extents_on(TapeId{0}).empty());
}

TEST(Catalog, ValidatePassesOnConsistentData) {
  ObjectCatalog cat(240);
  Bytes offset{0};
  for (std::uint32_t i = 0; i < 100; ++i) {
    cat.insert(record(i, 1_GB, i % 10, offset));
    if (i % 10 == 9) offset += 1_GB;
  }
  cat.validate(400_GB);
}

TEST(CatalogDeath, ValidateCatchesOverlap) {
  ObjectCatalog cat(240);
  cat.insert(record(1, 10_GB, 0, Bytes{0}));
  cat.insert(record(2, 10_GB, 0, 5_GB));  // overlaps object 1
  EXPECT_DEATH(cat.validate(400_GB), "overlap");
}

TEST(CatalogDeath, ValidateCatchesCapacityOverflow) {
  ObjectCatalog cat(240);
  cat.insert(record(1, 399_GB, 0, Bytes{0}));
  cat.insert(record(2, 2_GB, 0, 399_GB));
  EXPECT_DEATH(cat.validate(400_GB), "capacity");
}

TEST(CatalogDeath, InvalidIdsAbort) {
  ObjectCatalog cat(240);
  EXPECT_DEATH(cat.insert(ObjectRecord{ObjectId{}, 1_GB, LibraryId{0},
                                       TapeId{0}, Bytes{0}}),
               "valid");
  EXPECT_DEATH(cat.insert(record(1, 1_GB, 999, Bytes{0})), "range");
}

TEST(Catalog, EqualsComparesFullState) {
  ObjectCatalog a(240);
  ObjectCatalog b(240);
  EXPECT_TRUE(a.equals(b));
  a.insert(record(1, 1_GB, 0, Bytes{0}));
  EXPECT_FALSE(a.equals(b));
  b.insert(record(1, 1_GB, 0, Bytes{0}));
  EXPECT_TRUE(a.equals(b));
  // Replica sets, health, and retirement all participate.
  a.insert_replica(record(1, 1_GB, 5, Bytes{0}));
  EXPECT_FALSE(a.equals(b));
  b.insert_replica(record(1, 1_GB, 5, Bytes{0}));
  EXPECT_TRUE(a.equals(b));
  a.set_tape_health(TapeId{5}, ReplicaHealth::kDegraded);
  EXPECT_FALSE(a.equals(b));
  b.set_tape_health(TapeId{5}, ReplicaHealth::kDegraded);
  EXPECT_TRUE(a.equals(b));
  a.retire_tape(TapeId{5});
  EXPECT_FALSE(a.equals(b));
  b.retire_tape(TapeId{5});
  EXPECT_TRUE(a.equals(b));
}

TEST(Catalog, EqualsSeesFieldLevelDivergence) {
  ObjectCatalog a(240);
  ObjectCatalog b(240);
  a.insert(record(1, 2_GB, 3, Bytes{0}));
  b.insert(record(1, 2_GB, 3, 1_GB));  // same object, different offset
  EXPECT_FALSE(a.equals(b));
}

TEST(Catalog, ForEachPrimaryVisitsInAscendingIdOrder) {
  ObjectCatalog cat(240);
  cat.insert(record(30, 1_GB, 0, Bytes{0}));
  cat.insert(record(10, 1_GB, 1, Bytes{0}));
  cat.insert(record(20, 1_GB, 2, Bytes{0}));
  std::vector<std::uint32_t> seen;
  cat.for_each_primary(
      [&](const ObjectRecord& rec) { seen.push_back(rec.object.value()); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{10, 20, 30}));
}

TEST(Catalog, ManyTapesScale) {
  ObjectCatalog cat(1000);
  for (std::uint32_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(cat.insert(ObjectRecord{
        ObjectId{i}, Bytes{1000}, LibraryId{0}, TapeId{i % 1000},
        Bytes{(i / 1000) * 1000}}));
  }
  EXPECT_EQ(cat.object_count(), 5000u);
  cat.validate(Bytes{100000});
  EXPECT_EQ(cat.extents_on(TapeId{0}).size(), 5u);
}

}  // namespace
}  // namespace tapesim::catalog
