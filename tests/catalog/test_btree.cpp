#include "catalog/btree.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace tapesim::catalog {
namespace {

TEST(BPlusTree, EmptyTree) {
  BPlusTree<int, int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.begin(), t.end());
  t.validate();
}

TEST(BPlusTree, SingleElement) {
  BPlusTree<int, std::string> t;
  EXPECT_TRUE(t.insert(5, "five"));
  EXPECT_EQ(t.size(), 1u);
  ASSERT_NE(t.find(5), nullptr);
  EXPECT_EQ(*t.find(5), "five");
  EXPECT_TRUE(t.contains(5));
  EXPECT_FALSE(t.contains(4));
  t.validate();
  EXPECT_TRUE(t.erase(5));
  EXPECT_TRUE(t.empty());
  t.validate();
}

TEST(BPlusTree, DuplicateInsertRejected) {
  BPlusTree<int, int> t;
  EXPECT_TRUE(t.insert(1, 10));
  EXPECT_FALSE(t.insert(1, 20));
  EXPECT_EQ(*t.find(1), 10);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTree, AscendingInsertTriggersSplits) {
  BPlusTree<int, int, 4> t;  // tiny fanout forces deep trees fast
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.insert(i, i * 2));
    if (i % 100 == 0) t.validate();
  }
  t.validate();
  EXPECT_EQ(t.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(t.find(i), nullptr);
    EXPECT_EQ(*t.find(i), i * 2);
  }
}

TEST(BPlusTree, DescendingInsert) {
  BPlusTree<int, int, 4> t;
  for (int i = 999; i >= 0; --i) ASSERT_TRUE(t.insert(i, i));
  t.validate();
  EXPECT_EQ(t.size(), 1000u);
}

TEST(BPlusTree, IterationIsInKeyOrder) {
  BPlusTree<int, int, 8> t;
  tapesim::Rng rng{1};
  std::map<int, int> oracle;
  for (int i = 0; i < 500; ++i) {
    const int k = static_cast<int>(rng.uniform_below(10000));
    const bool inserted = t.insert(k, i);
    EXPECT_EQ(inserted, oracle.emplace(k, i).second);
  }
  auto it = t.begin();
  for (const auto& [k, v] : oracle) {
    ASSERT_NE(it, t.end());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    ++it;
  }
  EXPECT_EQ(it, t.end());
}

TEST(BPlusTree, LowerBound) {
  BPlusTree<int, int, 4> t;
  for (const int k : {10, 20, 30, 40, 50}) t.insert(k, k);
  EXPECT_EQ(t.lower_bound(5).key(), 10);
  EXPECT_EQ(t.lower_bound(10).key(), 10);
  EXPECT_EQ(t.lower_bound(11).key(), 20);
  EXPECT_EQ(t.lower_bound(50).key(), 50);
  EXPECT_EQ(t.lower_bound(51), t.end());
}

TEST(BPlusTree, EraseWithRebalancing) {
  BPlusTree<int, int, 4> t;
  const int n = 500;
  for (int i = 0; i < n; ++i) t.insert(i, i);
  // Erase every other key, then every remaining key, validating as we go.
  for (int i = 0; i < n; i += 2) {
    ASSERT_TRUE(t.erase(i));
    if (i % 50 == 0) t.validate();
  }
  t.validate();
  EXPECT_EQ(t.size(), static_cast<std::size_t>(n / 2));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(t.contains(i), i % 2 == 1);
  }
  for (int i = 1; i < n; i += 2) ASSERT_TRUE(t.erase(i));
  EXPECT_TRUE(t.empty());
  t.validate();
}

TEST(BPlusTree, EraseMissingKeyLeavesTreeIntact) {
  BPlusTree<int, int, 4> t;
  for (int i = 0; i < 100; ++i) t.insert(i * 2, i);
  EXPECT_FALSE(t.erase(1));
  EXPECT_FALSE(t.erase(-5));
  EXPECT_FALSE(t.erase(1000));
  EXPECT_EQ(t.size(), 100u);
  t.validate();
}

TEST(BPlusTree, MoveSemantics) {
  BPlusTree<int, int, 8> a;
  for (int i = 0; i < 200; ++i) a.insert(i, i);
  BPlusTree<int, int, 8> b{std::move(a)};
  EXPECT_EQ(b.size(), 200u);
  b.validate();
  BPlusTree<int, int, 8> c;
  c.insert(999, 1);
  c = std::move(b);
  EXPECT_EQ(c.size(), 200u);
  EXPECT_FALSE(c.contains(999));
  c.validate();
}

TEST(BPlusTree, ClearResets) {
  BPlusTree<int, int, 4> t;
  for (int i = 0; i < 300; ++i) t.insert(i, i);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.begin(), t.end());
  t.validate();
  EXPECT_TRUE(t.insert(7, 7));
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTree, EmptyTreeBoundaries) {
  BPlusTree<int, int, 4> t;
  EXPECT_EQ(t.lower_bound(0), t.end());
  EXPECT_EQ(t.lower_bound(-1000), t.end());
  t.clear();  // clearing an already-empty tree is a no-op
  EXPECT_TRUE(t.empty());
  t.validate();
  // An emptied tree behaves exactly like a fresh one.
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(t.insert(i, i));
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(t.erase(i));
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.begin(), t.end());
  EXPECT_EQ(t.lower_bound(25), t.end());
  t.validate();
  EXPECT_TRUE(t.insert(7, 70));
  EXPECT_EQ(*t.find(7), 70);
  t.validate();
}

TEST(BPlusTree, SingleNodeBoundaries) {
  // A tree whose whole life happens inside one leaf: no split ever
  // triggers, erase never rebalances, iteration walks one node.
  BPlusTree<int, int, 8> t;
  for (const int k : {3, 1, 2}) ASSERT_TRUE(t.insert(k, k * 10));
  t.validate();
  auto it = t.begin();
  for (const int k : {1, 2, 3}) {
    ASSERT_NE(it, t.end());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), k * 10);
    ++it;
  }
  EXPECT_EQ(it, t.end());
  EXPECT_EQ(t.lower_bound(0).key(), 1);
  EXPECT_EQ(t.lower_bound(4), t.end());
  // Erase the middle, then the boundaries.
  EXPECT_TRUE(t.erase(2));
  t.validate();
  EXPECT_TRUE(t.erase(1));
  EXPECT_TRUE(t.erase(3));
  EXPECT_TRUE(t.empty());
  t.validate();
}

TEST(BPlusTree, EraseFromFrontCollapsesHeight) {
  // Draining keys strictly from the smallest side forces the leftmost
  // leaf to underflow repeatedly: every borrow-from-right and merge path
  // on the left edge runs, and the root chain collapses level by level.
  BPlusTree<int, int, 4> t;
  const int n = 600;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(t.insert(i, i));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(t.erase(i)) << "key " << i;
    if (i % 37 == 0) t.validate();
    if (!t.empty()) {
      EXPECT_EQ(t.begin().key(), i + 1);
    }
  }
  EXPECT_TRUE(t.empty());
  t.validate();
}

TEST(BPlusTree, EraseFromBackCollapsesHeight) {
  // Mirror image: drain from the largest side, exercising
  // borrow-from-left and right-edge merges.
  BPlusTree<int, int, 4> t;
  const int n = 600;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(t.insert(i, i));
  for (int i = n - 1; i >= 0; --i) {
    ASSERT_TRUE(t.erase(i)) << "key " << i;
    if (i % 37 == 0) t.validate();
  }
  EXPECT_TRUE(t.empty());
  t.validate();
}

TEST(BPlusTree, BlockEraseInsideTheMiddleMergesInnerNodes) {
  // Removing a contiguous block from the middle of a deep tree forces
  // inner-node merges away from either edge, then re-inserting the block
  // must restore the exact original contents.
  BPlusTree<int, int, 4> t;
  const int n = 1000;
  for (int i = 0; i < n; ++i) ASSERT_TRUE(t.insert(i, i * 3));
  for (int i = 300; i < 700; ++i) ASSERT_TRUE(t.erase(i));
  t.validate();
  EXPECT_EQ(t.size(), static_cast<std::size_t>(n - 400));
  EXPECT_EQ(t.lower_bound(300).key(), 700);
  for (int i = 300; i < 700; ++i) ASSERT_TRUE(t.insert(i, i * 3));
  t.validate();
  EXPECT_EQ(t.size(), static_cast<std::size_t>(n));
  int expect = 0;
  for (const auto& [k, v] : t) {
    EXPECT_EQ(k, expect);
    EXPECT_EQ(v, expect * 3);
    ++expect;
  }
  EXPECT_EQ(expect, n);
}

TEST(BPlusTree, IterationUnderInterleavedInsertAndErase) {
  // Mutate and fully iterate in alternation: after every interleaved
  // insert/erase batch the key order, the contents, and lower_bound
  // landings must match a std::map oracle exactly.
  BPlusTree<int, int, 4> t;
  std::map<int, int> oracle;
  tapesim::Rng rng{99};
  for (int batch = 0; batch < 40; ++batch) {
    for (int op = 0; op < 25; ++op) {
      const int k = static_cast<int>(rng.uniform_below(400));
      if (rng.uniform() < 0.5) {
        EXPECT_EQ(t.insert(k, batch), oracle.emplace(k, batch).second);
      } else {
        EXPECT_EQ(t.erase(k), oracle.erase(k) > 0);
      }
    }
    auto it = t.begin();
    for (const auto& [k, v] : oracle) {
      ASSERT_NE(it, t.end());
      EXPECT_EQ(it.key(), k);
      EXPECT_EQ(it.value(), v);
      ++it;
    }
    EXPECT_EQ(it, t.end());
    const int probe = static_cast<int>(rng.uniform_below(400));
    const auto expect = oracle.lower_bound(probe);
    const auto got = t.lower_bound(probe);
    if (expect == oracle.end()) {
      EXPECT_EQ(got, t.end());
    } else {
      ASSERT_NE(got, t.end());
      EXPECT_EQ(got.key(), expect->first);
    }
    t.validate();
  }
}

/// Randomized differential test against std::map across fanouts and seeds.
class BTreeOracle
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

template <std::size_t Fanout>
void run_oracle(std::uint64_t seed) {
  tapesim::Rng rng{seed};
  BPlusTree<std::uint32_t, std::uint64_t, Fanout> tree;
  std::map<std::uint32_t, std::uint64_t> oracle;

  for (int step = 0; step < 6000; ++step) {
    const double action = rng.uniform();
    const auto key = static_cast<std::uint32_t>(rng.uniform_below(2000));
    if (action < 0.55) {
      const std::uint64_t value = rng();
      EXPECT_EQ(tree.insert(key, value), oracle.emplace(key, value).second);
    } else if (action < 0.9) {
      EXPECT_EQ(tree.erase(key), oracle.erase(key) > 0);
    } else {
      const auto* found = tree.find(key);
      const auto it = oracle.find(key);
      if (it == oracle.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
    ASSERT_EQ(tree.size(), oracle.size());
    if (step % 1000 == 999) tree.validate();
  }
  tree.validate();
  // Final full iteration comparison.
  auto it = tree.begin();
  for (const auto& [k, v] : oracle) {
    ASSERT_NE(it, tree.end());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    ++it;
  }
  EXPECT_EQ(it, tree.end());
}

TEST_P(BTreeOracle, MatchesStdMap) {
  const auto [fanout, seed] = GetParam();
  switch (fanout) {
    case 4: run_oracle<4>(seed); break;
    case 5: run_oracle<5>(seed); break;
    case 8: run_oracle<8>(seed); break;
    case 64: run_oracle<64>(seed); break;
    default: FAIL() << "unhandled fanout";
  }
}

INSTANTIATE_TEST_SUITE_P(
    FanoutsAndSeeds, BTreeOracle,
    ::testing::Combine(::testing::Values(4, 5, 8, 64),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace tapesim::catalog
