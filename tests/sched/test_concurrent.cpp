// Tests for the concurrent-request simulator: analytic micro-scenarios,
// consistency with the serial simulator at negligible load, and contention
// behavior under overlap.
#include "sched/concurrent.hpp"

#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "exp/experiment.hpp"
#include "workload/model.hpp"

namespace tapesim::sched {
namespace {

using core::Alignment;
using core::PlacementPlan;
using core::ReplacementPolicy;
using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

constexpr double kGBTransfer = 12.5;
constexpr double kGBLocate = 14.4;
constexpr double kLoad = 19.0;
constexpr double kMove = 7.6;

/// Same dollhouse as the serial tests: 1 library, 2 drives, 10 GB tapes.
struct Scenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<PlacementPlan> plan;

  Scenario() {
    spec.num_libraries = 1;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                    {ObjectId{1}, 3_GB},
                                    {ObjectId{2}, 4_GB},
                                    {ObjectId{3}, 1_GB},
                                    {ObjectId{4}, 2_GB}};
    std::vector<Request> requests;
    requests.push_back(Request{RequestId{0}, 0.2, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, 0.2, {ObjectId{1}}});
    requests.push_back(Request{RequestId{2}, 0.2, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, 0.2, {ObjectId{3}}});
    requests.push_back(Request{RequestId{4}, 0.2, {ObjectId{4}}});
    workload = std::make_unique<Workload>(std::move(objects),
                                          std::move(requests));

    plan = std::make_unique<PlacementPlan>(spec, *workload);
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{0});
    plan->assign(ObjectId{2}, TapeId{1});
    plan->assign(ObjectId{3}, TapeId{2});
    plan->assign(ObjectId{4}, TapeId{3});
    plan->align_all(Alignment::kGivenOrder);
    plan->compute_tape_popularity();
    plan->mount_policy.replacement = ReplacementPolicy::kLeastPopular;
  }

  void mount(std::uint32_t drive, std::uint32_t tape) {
    plan->mount_policy.initial_mounts.emplace_back(DriveId{drive},
                                                   TapeId{tape});
  }
};

TEST(Concurrent, SingleArrivalMatchesSerialTiming) {
  Scenario s;
  s.mount(0, 0);
  ConcurrentSimulator sim(*s.plan);
  const Arrival arrivals[] = {{Seconds{5.0}, RequestId{0}}};
  const auto outcomes = sim.run(arrivals);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_DOUBLE_EQ(outcomes[0].arrival.count(), 5.0);
  EXPECT_DOUBLE_EQ(outcomes[0].sojourn().count(), 2 * kGBTransfer);
  EXPECT_EQ(outcomes[0].bytes, 2_GB);
}

TEST(Concurrent, OverlappingDemandOnOneTapeSharesOneDrive) {
  Scenario s;
  s.mount(0, 0);
  ConcurrentSimulator sim(*s.plan);
  // R0 (O0 @ 0, 2 GB) and R1 (O1 @ 2 GB, 3 GB) arrive together: one drive
  // serves both in offset order. R0 completes at 25 s; R1 at 25 + 37.5.
  const Arrival arrivals[] = {{Seconds{0.0}, RequestId{0}},
                              {Seconds{0.0}, RequestId{1}}};
  const auto outcomes = sim.run(arrivals);
  EXPECT_DOUBLE_EQ(outcomes[0].sojourn().count(), 2 * kGBTransfer);
  EXPECT_DOUBLE_EQ(outcomes[1].sojourn().count(), 5 * kGBTransfer);
}

TEST(Concurrent, DuplicateArrivalsShareOneRead) {
  Scenario s;
  s.mount(0, 0);
  ConcurrentSimulator sim(*s.plan);
  // While the drive is busy with R1, the same request R0 arrives twice.
  // Both pending instances merge into one outstanding demand, so a single
  // physical read credits both at the same instant.
  const Arrival arrivals[] = {{Seconds{0.0}, RequestId{1}},
                              {Seconds{1.0}, RequestId{0}},
                              {Seconds{2.0}, RequestId{0}}};
  const auto outcomes = sim.run(arrivals);
  const double r1_done = 2 * kGBLocate + 3 * kGBTransfer;  // 66.3
  const double r0_done = r1_done + 5 * kGBLocate + 2 * kGBTransfer;
  EXPECT_DOUBLE_EQ(outcomes[0].completion.count(), r1_done);
  EXPECT_DOUBLE_EQ(outcomes[1].completion.count(), r0_done);
  EXPECT_DOUBLE_EQ(outcomes[2].completion.count(), r0_done);
}

TEST(Concurrent, LateArrivalForServedObjectRereads) {
  Scenario s;
  s.mount(0, 0);
  ConcurrentSimulator sim(*s.plan);
  // Second R0 arrives after the first completed: the head is at 2 GB, the
  // drive must locate back and re-read.
  const Arrival arrivals[] = {{Seconds{0.0}, RequestId{0}},
                              {Seconds{100.0}, RequestId{0}}};
  const auto outcomes = sim.run(arrivals);
  EXPECT_DOUBLE_EQ(outcomes[0].completion.count(), 25.0);
  EXPECT_DOUBLE_EQ(outcomes[1].sojourn().count(),
                   2 * kGBLocate + 2 * kGBTransfer);
}

TEST(Concurrent, IndependentTapesServeInParallel) {
  Scenario s;
  s.mount(0, 0);
  s.mount(1, 1);
  ConcurrentSimulator sim(*s.plan);
  // R0 on T0/drive0 and R2 on T1/drive1 overlap fully.
  const Arrival arrivals[] = {{Seconds{0.0}, RequestId{0}},
                              {Seconds{0.0}, RequestId{2}}};
  const auto outcomes = sim.run(arrivals);
  EXPECT_DOUBLE_EQ(outcomes[0].sojourn().count(), 2 * kGBTransfer);
  EXPECT_DOUBLE_EQ(outcomes[1].sojourn().count(), 4 * kGBTransfer);
  EXPECT_DOUBLE_EQ(sim.makespan().count(), 4 * kGBTransfer);
}

TEST(Concurrent, OfflineTapeFetchedByFreeDrive) {
  Scenario s;
  s.mount(0, 0);  // drive 1 empty; T2 offline
  ConcurrentSimulator sim(*s.plan);
  const Arrival arrivals[] = {{Seconds{0.0}, RequestId{3}}};
  const auto outcomes = sim.run(arrivals);
  EXPECT_DOUBLE_EQ(outcomes[0].sojourn().count(),
                   kMove + kLoad + 1 * kGBTransfer);
  EXPECT_EQ(sim.total_switches(), 1u);
}

TEST(Concurrent, QueuedRequestWaitsForBusyDrive) {
  Scenario s;
  s.mount(0, 0);
  // Make drive 1 pinned-empty impossible: pin it so only drive 0 works.
  s.plan->mount_policy.replacement = ReplacementPolicy::kFixedBatch;
  s.plan->mount_policy.drive_pinned.assign(2, false);
  s.plan->mount_policy.drive_pinned[1] = true;
  ConcurrentSimulator sim(*s.plan);
  // R1 (3 GB on T0) starts at t=0; R0 (2 GB @ 0 on T0) arrives mid-service
  // at t=10: the drive finishes O1 (ends 2+3=5 GB at t = locate(0->2)=28.8
  // + 37.5 = 66.3), then locates back for O0.
  const Arrival arrivals[] = {{Seconds{0.0}, RequestId{1}},
                              {Seconds{10.0}, RequestId{0}}};
  const auto outcomes = sim.run(arrivals);
  const double r1_done = 2 * kGBLocate + 3 * kGBTransfer;
  EXPECT_DOUBLE_EQ(outcomes[0].completion.count(), r1_done);
  EXPECT_DOUBLE_EQ(outcomes[1].completion.count(),
                   r1_done + 5 * kGBLocate + 2 * kGBTransfer);
}

TEST(Concurrent, PoissonArrivalsAreSortedAndDeterministic) {
  Scenario s;
  const workload::RequestSampler sampler(*s.workload);
  Rng rng1{11};
  Rng rng2{11};
  const auto a = poisson_arrivals(sampler, 0.01, 200, rng1);
  const auto b = poisson_arrivals(sampler, 0.01, 200, rng2);
  ASSERT_EQ(a.size(), 200u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time.count(), b[i].time.count());
    EXPECT_EQ(a[i].request, b[i].request);
    if (i > 0) EXPECT_GE(a[i].time.count(), a[i - 1].time.count());
  }
  // Mean inter-arrival ~ 1/rate.
  EXPECT_NEAR(a.back().time.count() / 200.0, 100.0, 25.0);
}

TEST(Concurrent, LowLoadSojournMatchesSerialResponse) {
  // At vanishing load the concurrent simulator must agree with the serial
  // one on a real placement (same plan, same request, fresh state).
  exp::ExperimentConfig config;
  config.spec.num_libraries = 2;
  config.spec.library.drives_per_library = 4;
  config.spec.library.tapes_per_library = 12;
  config.spec.library.tape_capacity = 40_GB;
  config.workload.num_objects = 1000;
  config.workload.num_requests = 30;
  config.workload.min_objects_per_request = 10;
  config.workload.max_objects_per_request = 20;
  config.workload.object_groups = 20;
  config.workload.min_object_size = Bytes{100ULL * 1000 * 1000};
  config.workload.max_object_size = 1_GB;
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(2);

  core::PlacementContext context{&experiment.workload(),
                                 &experiment.config().spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan = schemes.parallel_batch->place(context);

  RetrievalSimulator serial(plan);
  const auto serial_outcome = serial.run_request(RequestId{7});

  ConcurrentSimulator concurrent(plan);
  const Arrival arrivals[] = {{Seconds{0.0}, RequestId{7}}};
  const auto outcomes = concurrent.run(arrivals);
  // Policies differ slightly (per-extent nearest-first vs per-tape sweep),
  // so allow a small tolerance.
  EXPECT_NEAR(outcomes[0].sojourn().count(),
              serial_outcome.response.count(),
              0.15 * serial_outcome.response.count());
}

TEST(Concurrent, OldestDemandPolicyPicksStarvedTape) {
  Scenario s;
  // Only drive 0 usable (pin drive 1 empty). T1 holds 4 GB of demand,
  // T2 only 1 GB but demanded first.
  s.plan->mount_policy.replacement = ReplacementPolicy::kFixedBatch;
  s.plan->mount_policy.drive_pinned.assign(2, false);
  s.plan->mount_policy.drive_pinned[1] = true;
  s.mount(1, 0);  // park T0 on the pinned drive

  SimulatorConfig greedy;
  greedy.tape_pick = SimulatorConfig::TapePick::kMostDemandedBytes;
  SimulatorConfig fair;
  fair.tape_pick = SimulatorConfig::TapePick::kOldestDemand;

  // R3 (T2, 1 GB) arrives slightly before R2 (T1, 4 GB), while the drive
  // is still busy fetching nothing... both arrive before any fetch starts
  // is impossible (first arrival triggers an immediate claim), so stagger:
  // R4 (T3) at t=0 occupies the drive; R3 then R2 queue behind it.
  const Arrival arrivals[] = {{Seconds{0.0}, RequestId{4}},
                              {Seconds{1.0}, RequestId{3}},
                              {Seconds{2.0}, RequestId{2}}};
  ConcurrentSimulator greedy_sim(*s.plan, greedy);
  const auto g = greedy_sim.run(arrivals);
  ConcurrentSimulator fair_sim(*s.plan, fair);
  const auto f = fair_sim.run(arrivals);

  // Greedy serves the 4 GB tape (T1/R2) before the older 1 GB one (T2/R3);
  // oldest-first reverses that.
  EXPECT_GT(g[1].completion.count(), g[2].completion.count());
  EXPECT_LT(f[1].completion.count(), f[2].completion.count());
  // Everything is served either way.
  for (const auto& o : g) EXPECT_GT(o.completion.count(), 0.0);
  for (const auto& o : f) EXPECT_GT(o.completion.count(), 0.0);
}

TEST(ConcurrentDeath, UnsortedScheduleAborts) {
  Scenario s;
  s.mount(0, 0);
  ConcurrentSimulator sim(*s.plan);
  const Arrival arrivals[] = {{Seconds{10.0}, RequestId{0}},
                              {Seconds{5.0}, RequestId{1}}};
  EXPECT_DEATH((void)sim.run(arrivals), "sorted");
}

}  // namespace
}  // namespace tapesim::sched
