// Durable control plane: catalog journal, metadata crashes, and recovery
// replay in the retrieval simulator.
//
// Pins the crash-recovery acceptance bar from several directions: (1) a
// config with every journal and crash knob armed *except* the master
// switches must not perturb a single event of a faulty run, clock
// included — and the journal alone (crashes off) is equally invisible,
// because it is a passive ledger; (2) under synchronous fsync a crashed
// metadata server replays to a catalog exactly equal to the never-crashed
// one, asserted field by field over every primary, replica, health state,
// and retirement bit; (3) group commit loses only the provably-unsynced
// log suffix, and reconciliation against tape reality re-derives exactly
// those records (ledger conservation); (4) recovery windows park
// admissions and the kRecovery lane, recovery.* registry instruments, and
// RecoveryStats reconcile exactly; (5) checkpoint cadence bounds snapshot
// age and therefore replay length.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "catalog/journal.hpp"
#include "core/plan.hpp"
#include "metrics/request_metrics.hpp"
#include "obs/tracer.hpp"
#include "sched/simulator.hpp"
#include "workload/model.hpp"

namespace tapesim::sched {
namespace {

using core::Alignment;
using core::PlacementPlan;
using metrics::RequestStatus;
using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

/// One library, two drives, four 10 GB tapes, five objects, optional
/// second copies — the replication-failover layout. Media errors degrade
/// cartridges (health mutations); with repair enabled the re-replication
/// jobs add replica-insert mutations, so a run exercises most of the
/// journal's mutation vocabulary.
struct Scenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<PlacementPlan> plan;

  explicit Scenario(bool replicated) {
    spec.num_libraries = 1;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                    {ObjectId{1}, 3_GB},
                                    {ObjectId{2}, 4_GB},
                                    {ObjectId{3}, 1_GB},
                                    {ObjectId{4}, 2_GB}};
    std::vector<Request> requests;
    const double p = 1.0 / 6.0;
    requests.push_back(Request{RequestId{0}, p, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, p, {ObjectId{0}, ObjectId{1}}});
    requests.push_back(Request{RequestId{2}, p, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, p, {ObjectId{3}}});
    requests.push_back(Request{RequestId{4}, p, {ObjectId{4}}});
    requests.push_back(Request{RequestId{5}, p, {ObjectId{3}, ObjectId{4}}});
    workload = std::make_unique<Workload>(std::move(objects),
                                          std::move(requests));

    plan = std::make_unique<PlacementPlan>(spec, *workload);
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{0});
    plan->assign(ObjectId{2}, TapeId{1});
    plan->assign(ObjectId{3}, TapeId{2});
    plan->assign(ObjectId{4}, TapeId{3});
    plan->align_all(Alignment::kGivenOrder);
    if (replicated) {
      plan->freeze_layout();
      plan->assign_replica(ObjectId{0}, TapeId{1});
      plan->assign_replica(ObjectId{1}, TapeId{2});
      plan->assign_replica(ObjectId{2}, TapeId{3});
      plan->assign_replica(ObjectId{3}, TapeId{0});
      plan->assign_replica(ObjectId{4}, TapeId{2});
      plan->align_all(Alignment::kGivenOrder);
    }
    plan->compute_tape_popularity();
  }
};

/// Field-by-field equality: every primary record, every replica record,
/// every tape's health and retirement bit. Far noisier than
/// ObjectCatalog::equals on failure — each diverging field names itself.
void expect_catalogs_equal_field_by_field(const catalog::ObjectCatalog& a,
                                          const catalog::ObjectCatalog& b) {
  ASSERT_EQ(a.object_count(), b.object_count());
  ASSERT_EQ(a.replica_count(), b.replica_count());
  ASSERT_EQ(a.tape_count(), b.tape_count());
  a.for_each_primary([&](const catalog::ObjectRecord& rec) {
    const catalog::ObjectRecord* other = b.lookup(rec.object);
    ASSERT_NE(other, nullptr) << "object " << rec.object.value();
    EXPECT_EQ(rec.object, other->object);
    EXPECT_EQ(rec.size, other->size) << "object " << rec.object.value();
    EXPECT_EQ(rec.library, other->library) << "object " << rec.object.value();
    EXPECT_EQ(rec.tape, other->tape) << "object " << rec.object.value();
    EXPECT_EQ(rec.offset, other->offset) << "object " << rec.object.value();
    const auto ra = a.replicas(rec.object);
    const auto rb = b.replicas(rec.object);
    ASSERT_EQ(ra.size(), rb.size()) << "object " << rec.object.value();
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].tape, rb[i].tape) << "object " << rec.object.value()
                                        << " replica " << i;
      EXPECT_EQ(ra[i].library, rb[i].library);
      EXPECT_EQ(ra[i].offset, rb[i].offset);
      EXPECT_EQ(ra[i].size, rb[i].size);
    }
  });
  for (std::uint32_t t = 0; t < a.tape_count(); ++t) {
    EXPECT_EQ(a.tape_health(TapeId{t}), b.tape_health(TapeId{t}))
        << "tape " << t;
    EXPECT_EQ(a.tape_retired(TapeId{t}), b.tape_retired(TapeId{t}))
        << "tape " << t;
  }
  EXPECT_TRUE(a.equals(b));
}

SimulatorConfig crashy_config(catalog::FsyncPolicy fsync, double mtbf) {
  SimulatorConfig config;
  config.faults.seed = 11;
  config.faults.media_error_per_gb = 0.05;
  config.faults.crash.metadata_mtbf = Seconds{mtbf};
  config.journal.enabled = true;
  config.journal.fsync = fsync;
  config.repair.enabled = true;
  return config;
}

TEST(CrashRecovery, CrashesRequireTheJournal) {
  SimulatorConfig config;
  config.faults.crash.metadata_mtbf = Seconds{1000.0};
  const Status s = config.try_validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("journal"), std::string::npos);
  config.journal.enabled = true;
  EXPECT_TRUE(config.try_validate().ok());
}

TEST(CrashRecovery, JournalOffBitIdenticalRequestsAndClock) {
  // Armed journal knobs with the master switch off (and crashes off, as
  // validation demands) must not perturb a single event.
  Scenario base(/*replicated=*/true);
  Scenario other(/*replicated=*/true);
  SimulatorConfig plain;
  plain.faults.seed = 11;
  plain.faults.media_error_per_gb = 0.05;
  plain.repair.enabled = true;

  SimulatorConfig armed = plain;
  armed.journal.fsync = catalog::FsyncPolicy::kGroupCommit;
  armed.journal.group_window = Seconds{0.01};
  armed.journal.checkpoint_interval = Seconds{60.0};
  armed.journal.recovery_base = Seconds{500.0};
  ASSERT_FALSE(armed.journal.enabled);
  ASSERT_TRUE(armed.try_validate().ok());

  RetrievalSimulator a(*base.plan, plain);
  RetrievalSimulator b(*other.plan, armed);
  for (int round = 0; round < 4; ++round) {
    for (const std::uint32_t r : {2u, 1u, 5u, 0u, 3u, 4u}) {
      const auto oa = a.run_request(RequestId{r});
      const auto ob = b.run_request(RequestId{r});
      EXPECT_EQ(oa.response.count(), ob.response.count());
      EXPECT_EQ(oa.seek.count(), ob.seek.count());
      EXPECT_EQ(oa.transfer.count(), ob.transfer.count());
      EXPECT_EQ(oa.status, ob.status);
      EXPECT_EQ(a.engine().now().count(), b.engine().now().count());
    }
  }
  EXPECT_EQ(b.journal(), nullptr);
  EXPECT_EQ(b.recovery_stats().crashes, 0u);
}

TEST(CrashRecovery, PassiveJournalIsInvisibleToTheSimulation) {
  // Journal *on*, crashes off: the ledger records every mutation but the
  // event sequence and clock are still bit-identical to journal-off.
  Scenario base(/*replicated=*/true);
  Scenario other(/*replicated=*/true);
  SimulatorConfig plain;
  plain.faults.seed = 11;
  plain.faults.media_error_per_gb = 0.05;
  plain.repair.enabled = true;
  SimulatorConfig journaled = plain;
  journaled.journal.enabled = true;
  journaled.journal.fsync = catalog::FsyncPolicy::kGroupCommit;
  journaled.journal.checkpoint_interval = Seconds{30000.0};

  RetrievalSimulator a(*base.plan, plain);
  RetrievalSimulator b(*other.plan, journaled);
  for (int round = 0; round < 4; ++round) {
    for (const std::uint32_t r : {2u, 1u, 5u, 0u, 3u, 4u}) {
      const auto oa = a.run_request(RequestId{r});
      const auto ob = b.run_request(RequestId{r});
      EXPECT_EQ(oa.response.count(), ob.response.count());
      EXPECT_EQ(oa.status, ob.status);
      EXPECT_EQ(a.engine().now().count(), b.engine().now().count());
    }
  }
  a.drain_repairs();
  b.drain_repairs();
  EXPECT_EQ(a.engine().now().count(), b.engine().now().count());
  ASSERT_NE(b.journal(), nullptr);
  EXPECT_GT(b.journal()->stats().appends, 0u)
      << "seed no longer produces catalog mutations";
  // And the passive ledger still replays to the exact live state.
  expect_catalogs_equal_field_by_field(b.journal()->replay(), b.catalog());
}

TEST(CrashRecovery, SyncFsyncReplayEqualsNeverCrashedCatalogFieldByField) {
  // The acceptance criterion: under synchronous fsync the post-recovery
  // catalog is exactly equal to the never-crashed catalog. Two angles:
  // (a) cross-simulator — the same scenario with crashes off must end in
  // the same catalog; (b) in-simulator — the durable state replays to the
  // live catalog field by field after the run.
  Scenario crashed_s(/*replicated=*/true);
  Scenario plain_s(/*replicated=*/true);
  SimulatorConfig crashed_cfg =
      crashy_config(catalog::FsyncPolicy::kSync, 20000.0);
  SimulatorConfig plain_cfg = crashed_cfg;
  plain_cfg.faults.crash = fault::CrashConfig{};

  RetrievalSimulator crashed(*crashed_s.plan, crashed_cfg);
  RetrievalSimulator plain(*plain_s.plan, plain_cfg);
  for (int round = 0; round < 12; ++round) {
    for (const std::uint32_t r : {2u, 1u, 5u, 0u, 3u, 4u}) {
      crashed.run_request(RequestId{r});
      plain.run_request(RequestId{r});
    }
  }
  crashed.drain_repairs();
  plain.drain_repairs();
  ASSERT_GT(crashed.recovery_stats().crashes, 0u)
      << "seed no longer produces a metadata crash";
  ASSERT_GT(crashed.journal()->stats().appends, 0u)
      << "seed no longer produces catalog mutations";
  // Sync fsync: no mutation may be lost, ever.
  EXPECT_EQ(crashed.recovery_stats().lost_mutations, 0u);
  EXPECT_EQ(crashed.recovery_stats().reconciled_mutations, 0u);
  expect_catalogs_equal_field_by_field(crashed.catalog(), plain.catalog());
  expect_catalogs_equal_field_by_field(crashed.journal()->replay(),
                                       crashed.catalog());
}

TEST(CrashRecovery, GroupCommitLosesOnlyTheUnsyncedSuffix) {
  // A never-closing group window makes every record since the last
  // checkpoint unsynced: crashes produce torn tails, reconciliation
  // re-derives exactly the lost records, and the final catalog still
  // converges on the never-crashed truth (lost mutations are *metadata*
  // losses; the physical world they describe survives the crash).
  Scenario s(/*replicated=*/true);
  obs::Tracer tracer;
  SimulatorConfig config =
      crashy_config(catalog::FsyncPolicy::kGroupCommit, 20000.0);
  config.tracer = &tracer;
  config.journal.group_window = Seconds{100000.0};
  config.journal.group_max_records = 1000000;
  config.journal.checkpoint_interval = Seconds{0.0};  // only at recovery
  RetrievalSimulator sim(*s.plan, config);
  for (int round = 0; round < 12; ++round) {
    for (const std::uint32_t r : {2u, 1u, 5u, 0u, 3u, 4u}) {
      sim.run_request(RequestId{r});
    }
  }
  sim.drain_repairs();
  const RecoveryStats& rs = sim.recovery_stats();
  const catalog::JournalStats& js = sim.journal()->stats();
  ASSERT_GT(rs.crashes, 0u) << "seed no longer produces a metadata crash";
  ASSERT_GT(rs.lost_mutations, 0u)
      << "seed no longer tears an unsynced tail";
  // Scheduler-side and journal-side ledgers agree exactly.
  EXPECT_EQ(rs.lost_mutations, js.records_lost);
  EXPECT_EQ(rs.reconciled_mutations, js.records_reconciled);
  EXPECT_EQ(rs.lost_mutations, rs.reconciled_mutations);
  EXPECT_EQ(rs.records_replayed, js.records_replayed);
  // Conservation: every append is truncated, lost, or still live.
  EXPECT_EQ(js.appends,
            js.records_truncated + js.records_lost +
                sim.journal()->live_records());
  // Reconciliation converged: durable state + nothing pending == live.
  expect_catalogs_equal_field_by_field(sim.journal()->replay(),
                                       sim.catalog());

  // Registry mirror: every recovery.* instrument matches RecoveryStats.
  auto& reg = tracer.registry();
  EXPECT_EQ(reg.counter("recovery.crashes").value(), rs.crashes);
  EXPECT_EQ(reg.counter("recovery.records_replayed").value(),
            rs.records_replayed);
  EXPECT_EQ(reg.counter("recovery.lost_mutations").value(),
            rs.lost_mutations);
  EXPECT_EQ(reg.counter("recovery.reconciled_mutations").value(),
            rs.reconciled_mutations);
  EXPECT_EQ(reg.counter("recovery.admissions_parked").value(),
            rs.admissions_parked);
  EXPECT_EQ(reg.gauge("recovery.downtime_s").value(), rs.downtime.count());

  // One kRecovery span per crash; their widths sum to the downtime.
  double span_downtime = 0.0;
  std::uint64_t recovery_spans = 0;
  for (const obs::Span& span : tracer.spans()) {
    if (span.track != obs::Track::kRecovery) continue;
    EXPECT_EQ(span.phase, obs::Phase::kRecovery);
    ++recovery_spans;
    EXPECT_GE(span.end.count(), span.start.count());
    span_downtime += span.duration().count();
  }
  EXPECT_EQ(recovery_spans, rs.crashes);
  EXPECT_NEAR(span_downtime, rs.downtime.count(), 1e-9);

  // The injector and the scheduler agree on how many crashes happened.
  ASSERT_NE(sim.fault_injector(), nullptr);
  EXPECT_EQ(sim.fault_injector()->counters().metadata_crashes, rs.crashes);
}

TEST(CrashRecovery, RecoveryWindowsParkAdmissionsIntoResponseTime) {
  // A huge recovery base cost makes every crash open a long
  // metadata-unavailable window; the admission that observes it waits the
  // window out, and that wait lands in its measured response.
  Scenario s(/*replicated=*/false);
  SimulatorConfig config = crashy_config(catalog::FsyncPolicy::kSync, 20000.0);
  config.faults.media_error_per_gb = 0.0;  // healthy media: every byte serves
  config.repair.enabled = false;
  config.journal.recovery_base = Seconds{5000.0};
  RetrievalSimulator sim(*s.plan, config);
  double max_response = 0.0;
  for (int round = 0; round < 12; ++round) {
    for (const std::uint32_t r : {2u, 1u, 5u, 0u, 3u, 4u}) {
      const auto o = sim.run_request(RequestId{r});
      EXPECT_EQ(o.status, RequestStatus::kServed);
      max_response = std::max(max_response, o.response.count());
    }
  }
  const RecoveryStats& rs = sim.recovery_stats();
  ASSERT_GT(rs.crashes, 0u) << "seed no longer produces a metadata crash";
  ASSERT_GT(rs.admissions_parked, 0u)
      << "no admission ever landed inside a recovery window";
  EXPECT_GT(rs.parked.count(), 0.0);
  EXPECT_GE(max_response, 5000.0)
      << "parked admission delay never surfaced in a response";
  EXPECT_GE(rs.downtime.count(),
            5000.0 * static_cast<double>(rs.crashes));
  EXPECT_EQ(rs.rto.count(), rs.crashes);
  EXPECT_EQ(rs.snapshot_age.count(), rs.crashes);
}

TEST(CrashRecovery, CheckpointCadenceBoundsSnapshotAge) {
  // Same crash timeline, two checkpoint cadences: the tighter cadence
  // takes more checkpoints and holds every snapshot-age sample under its
  // interval (plus zero slack — age is measured at the crash instant).
  Scenario tight_s(/*replicated=*/true);
  Scenario loose_s(/*replicated=*/true);
  SimulatorConfig tight_cfg =
      crashy_config(catalog::FsyncPolicy::kSync, 20000.0);
  tight_cfg.journal.checkpoint_interval = Seconds{2000.0};
  SimulatorConfig loose_cfg = tight_cfg;
  loose_cfg.journal.checkpoint_interval = Seconds{1e9};

  RetrievalSimulator tight(*tight_s.plan, tight_cfg);
  RetrievalSimulator loose(*loose_s.plan, loose_cfg);
  for (int round = 0; round < 12; ++round) {
    for (const std::uint32_t r : {2u, 1u, 5u, 0u, 3u, 4u}) {
      tight.run_request(RequestId{r});
      loose.run_request(RequestId{r});
    }
  }
  const RecoveryStats& rt = tight.recovery_stats();
  const RecoveryStats& rl = loose.recovery_stats();
  ASSERT_GT(rt.crashes, 0u) << "seed no longer produces a metadata crash";
  ASSERT_EQ(rt.crashes, rl.crashes)
      << "checkpoint cadence perturbed the crash timeline";
  EXPECT_GT(rt.checkpoints, rl.checkpoints);
  // Periodic checkpoints are observed at admission boundaries, so a
  // snapshot can age one admission gap past the interval; the bound here
  // is generous but still far below the loose cadence's ages.
  EXPECT_LT(rt.snapshot_age.max(), 20000.0);
  EXPECT_GE(rl.snapshot_age.max(), rt.snapshot_age.max());
}

}  // namespace
}  // namespace tapesim::sched
