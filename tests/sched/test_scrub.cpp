// Background scrubbing and health-driven evacuation: config validation,
// zero-overhead-when-disabled identity, and end-to-end behavior on a small
// deterministic scenario.
//
// The identity tests extend the fault subsystem's discipline to the scrub
// layer: a ScrubConfig or EvacuationConfig with enabled=false must be
// indistinguishable from one that was never set, even when every other
// knob carries a non-default value, and even with an active fault model
// underneath — the same event sequence, the same engine clock, bit for
// bit. The behavior tests then verify the whole loop: idle drives surface
// latent decay that no foreground read ever touched, the catalog health
// escalates from scrub findings alone, and evacuation drains a failing
// cartridge through the copy path and retires it before its objects are
// requested again.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "exp/experiment.hpp"
#include "fault/model.hpp"
#include "metrics/request_metrics.hpp"
#include "sched/scrub.hpp"
#include "sched/simulator.hpp"
#include "workload/model.hpp"

namespace tapesim::sched {
namespace {

using core::Alignment;
using core::PlacementPlan;
using metrics::RequestStatus;
using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

/// Same layout as the recovery scenarios: one library, two drives, four
/// 10 GB tapes, five objects spread over them. Request 5 touches two tapes
/// (two drives serve in parallel), so the first drive to finish goes idle
/// while foreground work is still outstanding — the window in which the
/// scrub scheduler may claim it.
struct Scenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<PlacementPlan> plan;

  Scenario() {
    spec.num_libraries = 1;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                    {ObjectId{1}, 3_GB},
                                    {ObjectId{2}, 4_GB},
                                    {ObjectId{3}, 1_GB},
                                    {ObjectId{4}, 2_GB}};
    std::vector<Request> requests;
    const double p = 1.0 / 6.0;
    requests.push_back(Request{RequestId{0}, p, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, p, {ObjectId{0}, ObjectId{1}}});
    requests.push_back(Request{RequestId{2}, p, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, p, {ObjectId{3}}});
    requests.push_back(Request{RequestId{4}, p, {ObjectId{4}}});
    requests.push_back(Request{RequestId{5}, p, {ObjectId{3}, ObjectId{4}}});
    workload = std::make_unique<Workload>(std::move(objects),
                                          std::move(requests));

    plan = std::make_unique<PlacementPlan>(spec, *workload);
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{0});
    plan->assign(ObjectId{2}, TapeId{1});
    plan->assign(ObjectId{3}, TapeId{2});
    plan->assign(ObjectId{4}, TapeId{3});
    plan->align_all(Alignment::kGivenOrder);
    plan->compute_tape_popularity();
    plan->mount_policy.initial_mounts.emplace_back(DriveId{0}, TapeId{0});
  }
};

// --- configuration validation -------------------------------------------

TEST(ScrubConfigValidation, DefaultIsValidAndDisabled) {
  const ScrubConfig c;
  EXPECT_TRUE(c.try_validate().ok());
  EXPECT_FALSE(c.enabled);
}

TEST(ScrubConfigValidation, RejectsBadKnobs) {
  ScrubConfig c;
  c.interval = Seconds{-1.0};
  EXPECT_FALSE(c.try_validate().ok());

  c = ScrubConfig{};
  c.enabled = true;
  c.interval = Seconds{0.0};
  EXPECT_FALSE(c.try_validate().ok());
  // A zero interval on a disabled config is harmless.
  c.enabled = false;
  EXPECT_TRUE(c.try_validate().ok());

  c = ScrubConfig{};
  c.bandwidth_fraction = 0.0;
  EXPECT_FALSE(c.try_validate().ok());
  c.bandwidth_fraction = 1.5;
  EXPECT_FALSE(c.try_validate().ok());
  c.bandwidth_fraction = 1.0;
  EXPECT_TRUE(c.try_validate().ok());

  c = ScrubConfig{};
  c.enabled = true;
  c.max_concurrent = 0;
  EXPECT_FALSE(c.try_validate().ok());
  c.enabled = false;
  EXPECT_TRUE(c.try_validate().ok());

  c = ScrubConfig{};
  c.segment = Bytes{0};
  const Status s = c.try_validate();
  ASSERT_FALSE(s.ok());
  // The message names the struct, so a CLI can print it and keep running.
  EXPECT_NE(s.message().find("ScrubConfig"), std::string::npos);
}

TEST(EvacuationConfigValidation, RejectsBadKnobs) {
  EvacuationConfig c;
  EXPECT_TRUE(c.try_validate().ok());
  EXPECT_FALSE(c.enabled);

  c.threshold = -0.1;
  EXPECT_FALSE(c.try_validate().ok());
  c.threshold = 1.1;
  EXPECT_FALSE(c.try_validate().ok());
  c.threshold = 1.0;
  EXPECT_TRUE(c.try_validate().ok());

  c = EvacuationConfig{};
  c.error_weight = -0.01;
  EXPECT_FALSE(c.try_validate().ok());

  c = EvacuationConfig{};
  c.latent_weight = -0.01;
  EXPECT_FALSE(c.try_validate().ok());

  c = EvacuationConfig{};
  c.mount_rating = 0.0;
  const Status s = c.try_validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("EvacuationConfig"), std::string::npos);
}

TEST(EvacuationConfigValidation, ScoreIsClampedAndMonotone) {
  const EvacuationConfig c;
  EXPECT_DOUBLE_EQ(c.score(0, 0, 0), 1.0);
  // Each wear channel lowers the score.
  EXPECT_LT(c.score(1, 0, 0), 1.0);
  EXPECT_LT(c.score(0, 1, 0), 1.0);
  EXPECT_LT(c.score(0, 0, 100), 1.0);
  EXPECT_LE(c.score(0, 1, 0), c.score(0, 0, 0));
  // Arbitrarily battered cartridges bottom out at zero, never below.
  EXPECT_DOUBLE_EQ(c.score(1000, 1000, 1'000'000), 0.0);
}

TEST(SimulatorConfigValidation, SurfacesScrubAndEvacuationFailures) {
  SimulatorConfig c;
  c.scrub.segment = Bytes{0};
  Status s = c.try_validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("ScrubConfig"), std::string::npos);

  c = SimulatorConfig{};
  c.evacuation.mount_rating = -5.0;
  s = c.try_validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("EvacuationConfig"), std::string::npos);

  // The simulator constructor turns the failure into a recoverable throw.
  Scenario scenario;
  EXPECT_THROW(RetrievalSimulator(*scenario.plan, c), std::invalid_argument);
}

// --- zero-overhead-when-disabled identity --------------------------------

TEST(ScrubIdentity, DisabledFieldsAreInertUnderActiveFaults) {
  // Both simulators run the same fault model (media errors AND latent
  // decay, so every fault code path is live); one of them additionally
  // carries fully-tuned scrub and evacuation configs with enabled=false.
  // Request outcomes and the engine clock must agree bit for bit.
  Scenario base;
  Scenario tuned;
  SimulatorConfig plain_cfg;
  plain_cfg.faults.media_error_per_gb = 0.02;
  plain_cfg.faults.latent_decay_mtbf = Seconds{400.0};
  SimulatorConfig tuned_cfg = plain_cfg;
  tuned_cfg.scrub.interval = Seconds{1.0};
  tuned_cfg.scrub.bandwidth_fraction = 1.0;
  tuned_cfg.scrub.max_concurrent = 8;
  tuned_cfg.scrub.segment = 1_GB;
  tuned_cfg.evacuation.threshold = 0.99;
  tuned_cfg.evacuation.latent_weight = 0.5;
  ASSERT_FALSE(tuned_cfg.scrub.enabled);
  ASSERT_FALSE(tuned_cfg.evacuation.enabled);

  RetrievalSimulator plain(*base.plan, plain_cfg);
  RetrievalSimulator disabled(*tuned.plan, tuned_cfg);
  for (int round = 0; round < 3; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto a = plain.run_request(RequestId{r});
      const auto b = disabled.run_request(RequestId{r});
      EXPECT_EQ(a.response.count(), b.response.count());
      EXPECT_EQ(a.seek.count(), b.seek.count());
      EXPECT_EQ(a.transfer.count(), b.transfer.count());
      EXPECT_EQ(a.switch_time.count(), b.switch_time.count());
      EXPECT_EQ(a.robot_wait.count(), b.robot_wait.count());
      EXPECT_EQ(a.media_retries, b.media_retries);
      EXPECT_EQ(a.tape_switches, b.tape_switches);
      EXPECT_EQ(a.drives_used, b.drives_used);
    }
  }
  EXPECT_EQ(plain.total_switches(), disabled.total_switches());
  EXPECT_EQ(plain.engine().now().count(), disabled.engine().now().count());
  EXPECT_EQ(disabled.scrub_stats().passes, 0u);
  EXPECT_EQ(disabled.scrub_stats().bytes_verified, 0u);
  EXPECT_EQ(disabled.evac_stats().started, 0u);
}

TEST(ScrubIdentity, EnabledWithoutFaultsIsInert) {
  // Scrubbing verifies the injector's decay timelines; without a fault
  // model there is nothing to verify and the flags must change nothing.
  Scenario base;
  Scenario scrubbed;
  SimulatorConfig cfg;
  cfg.scrub.enabled = true;
  cfg.scrub.interval = Seconds{1.0};
  cfg.evacuation.enabled = true;
  ASSERT_FALSE(cfg.faults.enabled());

  RetrievalSimulator plain(*base.plan);
  RetrievalSimulator inert(*scrubbed.plan, cfg);
  EXPECT_EQ(inert.fault_injector(), nullptr);
  for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
    const auto a = plain.run_request(RequestId{r});
    const auto b = inert.run_request(RequestId{r});
    EXPECT_EQ(a.response.count(), b.response.count());
    EXPECT_EQ(a.status, b.status);
  }
  EXPECT_EQ(plain.engine().now().count(), inert.engine().now().count());
  EXPECT_EQ(inert.scrub_stats().passes, 0u);
  EXPECT_EQ(inert.evac_stats().started, 0u);
}

TEST(ScrubIdentity, FullExperimentPipelineBitIdentical) {
  // Whole place -> sample -> simulate pipeline: default config vs one with
  // every scrub/evacuation knob tuned but disabled.
  exp::ExperimentConfig plain_cfg;
  plain_cfg.simulated_requests = 30;
  exp::ExperimentConfig tuned_cfg = plain_cfg;
  tuned_cfg.sim.scrub.interval = Seconds{123.0};
  tuned_cfg.sim.scrub.bandwidth_fraction = 0.9;
  tuned_cfg.sim.scrub.max_concurrent = 7;
  tuned_cfg.sim.evacuation.threshold = 0.75;
  ASSERT_FALSE(tuned_cfg.sim.scrub.enabled);
  ASSERT_FALSE(tuned_cfg.sim.evacuation.enabled);

  const exp::Experiment plain(plain_cfg);
  const exp::Experiment tuned(tuned_cfg);
  const auto schemes = exp::make_standard_schemes();
  const auto a = plain.run(*schemes.parallel_batch);
  const auto b = tuned.run(*schemes.parallel_batch);

  EXPECT_EQ(a.metrics.mean_response().count(),
            b.metrics.mean_response().count());
  EXPECT_EQ(a.metrics.mean_bandwidth().count(),
            b.metrics.mean_bandwidth().count());
  EXPECT_EQ(a.total_switches, b.total_switches);
  EXPECT_EQ(a.tapes_used, b.tapes_used);
}

// --- end-to-end behavior -------------------------------------------------

TEST(Scrubbing, IdleDrivesSurfaceLatentDamageBeforeAnyRead) {
  // Aggressive decay, generous escalation headroom (nothing goes Lost), a
  // short scrub cadence. Request 5 reads only tapes 2 and 3; the drive
  // that finishes first scrubs. With the mounted tape freshly verified and
  // therefore not due again inside the interval, later passes chase the
  // most overdue cartridges — tapes 0 and 1, which no request ever reads.
  Scenario s;
  SimulatorConfig cfg;
  cfg.faults.latent_decay_mtbf = Seconds{30.0};
  cfg.faults.degraded_after = 2;
  cfg.faults.lost_after = 1000;
  cfg.scrub.enabled = true;
  cfg.scrub.interval = Seconds{200.0};
  cfg.scrub.bandwidth_fraction = 1.0;
  cfg.scrub.max_concurrent = 2;
  cfg.scrub.segment = 1_GB;

  RetrievalSimulator sim(*s.plan, cfg);
  for (int round = 0; round < 10; ++round) {
    sim.run_request(RequestId{5});
  }

  const ScrubStats& stats = sim.scrub_stats();
  EXPECT_GE(stats.passes, 1u);
  EXPECT_GT(stats.bytes_verified, 0u);
  EXPECT_GE(stats.latent_found, 1u);

  const fault::FaultInjector* inj = sim.fault_injector();
  ASSERT_NE(inj, nullptr);
  EXPECT_GE(inj->counters().latent_observed, stats.latent_found);

  // At least one cold cartridge — never read by request 5 — was verified
  // and had its silent damage surfaced into catalog health.
  bool cold_tape_observed = false;
  for (const std::uint32_t t : {0u, 1u}) {
    if (inj->latent_observed_on(TapeId{t}) >= 2) {
      cold_tape_observed = true;
      EXPECT_EQ(sim.catalog().tape_health(TapeId{t}),
                catalog::ReplicaHealth::kDegraded);
      EXPECT_EQ(sim.system().cartridge_health(TapeId{t}),
                tape::CartridgeHealth::kDegraded);
    }
  }
  EXPECT_TRUE(cold_tape_observed);
}

TEST(Evacuation, DrainsRetiresAndPreemptsUnavailability) {
  // Decay fast enough that the first observation of any cartridge folds
  // several events; with latent_weight 0.3 and threshold 0.5 the second
  // observed event already tips the health score, so evacuation starts
  // long before the (deliberately unreachable) Lost threshold.
  Scenario s;
  SimulatorConfig cfg;
  cfg.faults.latent_decay_mtbf = Seconds{40.0};
  cfg.faults.degraded_after = 2;
  cfg.faults.lost_after = 1000;
  cfg.scrub.enabled = true;
  cfg.scrub.interval = Seconds{150.0};
  cfg.scrub.bandwidth_fraction = 1.0;
  cfg.scrub.max_concurrent = 2;
  cfg.scrub.segment = 1_GB;
  cfg.evacuation.enabled = true;
  cfg.evacuation.threshold = 0.5;
  cfg.evacuation.latent_weight = 0.3;
  // Evacuation copies ride the repair engine; let them run at full rate so
  // a drain settles within a couple of requests. repair.enabled stays
  // false — the plan carries no replicas, and evacuation alone must be
  // enough to keep the copy engine alive.
  cfg.repair.bandwidth_fraction = 1.0;
  cfg.repair.max_concurrent = 2;
  ASSERT_FALSE(cfg.repair.enabled);

  RetrievalSimulator sim(*s.plan, cfg);
  for (int round = 0; round < 10; ++round) {
    sim.run_request(RequestId{5});
    sim.drain_repairs();
    if (sim.evac_stats().completed > 0) break;
  }

  const EvacStats& evac = sim.evac_stats();
  ASSERT_GE(evac.started, 1u);
  ASSERT_GE(evac.completed, 1u);
  EXPECT_GE(evac.objects_moved, 1u);

  // Some cartridge was fully drained and retired; every object that lived
  // on it must have a live copy elsewhere.
  int retired = -1;
  for (std::uint32_t t = 0; t < 4; ++t) {
    if (sim.catalog().tape_retired(TapeId{t})) {
      retired = static_cast<int>(t);
      break;
    }
  }
  ASSERT_NE(retired, -1);
  const TapeId retired_tape{static_cast<std::uint32_t>(retired)};
  for (const auto& extent : sim.catalog().extents_on(retired_tape)) {
    const catalog::ObjectRecord* best =
        sim.catalog().best_replica(extent.object);
    ASSERT_NE(best, nullptr) << "object " << extent.object.value();
    EXPECT_NE(best->tape.value(), retired_tape.value());
  }

  // Re-requesting an object whose primary sat on the retired cartridge is
  // served from the evacuated copy and counted as a preempted
  // unavailability.
  const std::uint32_t request_for_tape[4] = {0u, 2u, 3u, 4u};
  const std::uint64_t preempted_before = evac.preempted_unavailables;
  const auto outcome = sim.run_request(
      RequestId{request_for_tape[static_cast<std::size_t>(retired)]});
  EXPECT_EQ(outcome.status, RequestStatus::kServed);
  EXPECT_EQ(outcome.bytes_unavailable.count(), 0u);
  EXPECT_GT(sim.evac_stats().preempted_unavailables, preempted_before);
}

}  // namespace
}  // namespace tapesim::sched
