// Analytic scenario tests for the retrieval simulator.
//
// Each scenario is a tiny hand-built system where the expected response
// time can be derived on paper from the Table-1-style constants; the tests
// assert the simulator's event chain reproduces those numbers exactly.
//
// Timing cheat sheet for the 10 GB test tapes (default DriveSpec):
//   transfer: 80 MB/s            -> 1 GB = 12.5 s
//   locate:   10 GB per 144 s    -> 1 GB = 14.4 s
//   rewind:   10 GB per 98 s     -> 1 GB =  9.8 s
//   load/thread = unload = 19 s; robot move (one way) = 7.6 s
#include "sched/simulator.hpp"

#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "workload/model.hpp"

namespace tapesim::sched {
namespace {

using core::Alignment;
using core::PlacementPlan;
using core::ReplacementPolicy;
using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

constexpr double kGBTransfer = 12.5;
constexpr double kGBLocate = 14.4;
constexpr double kGBRewind = 9.8;
constexpr double kLoad = 19.0;
constexpr double kUnload = 19.0;
constexpr double kMove = 7.6;

struct Scenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<PlacementPlan> plan;

  /// One library, two drives, four 10 GB tapes.
  ///   T0: O0 (2 GB @ 0), O1 (3 GB @ 2 GB)
  ///   T1: O2 (4 GB @ 0)
  ///   T2: O3 (1 GB @ 0)
  ///   T3: O4 (2 GB @ 0)
  /// Requests: R0{O0} R1{O0,O1} R2{O2} R3{O3} R4{O4} R5{O3,O4}, equal 1/6.
  Scenario() {
    spec.num_libraries = 1;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                    {ObjectId{1}, 3_GB},
                                    {ObjectId{2}, 4_GB},
                                    {ObjectId{3}, 1_GB},
                                    {ObjectId{4}, 2_GB}};
    std::vector<Request> requests;
    const double p = 1.0 / 6.0;
    requests.push_back(Request{RequestId{0}, p, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, p, {ObjectId{0}, ObjectId{1}}});
    requests.push_back(Request{RequestId{2}, p, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, p, {ObjectId{3}}});
    requests.push_back(Request{RequestId{4}, p, {ObjectId{4}}});
    requests.push_back(Request{RequestId{5}, p, {ObjectId{3}, ObjectId{4}}});
    workload = std::make_unique<Workload>(std::move(objects),
                                          std::move(requests));

    plan = std::make_unique<PlacementPlan>(spec, *workload);
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{0});
    plan->assign(ObjectId{2}, TapeId{1});
    plan->assign(ObjectId{3}, TapeId{2});
    plan->assign(ObjectId{4}, TapeId{3});
    plan->align_all(Alignment::kGivenOrder);
    plan->compute_tape_popularity();
  }

  void mount(std::uint32_t drive, std::uint32_t tape) {
    plan->mount_policy.initial_mounts.emplace_back(DriveId{drive},
                                                   TapeId{tape});
  }
};

TEST(Simulator, MountedObjectAtHeadIsPureTransfer) {
  Scenario s;
  s.mount(0, 0);
  RetrievalSimulator sim(*s.plan);
  const auto outcome = sim.run_request(RequestId{0});
  EXPECT_DOUBLE_EQ(outcome.response.count(), 2 * kGBTransfer);
  EXPECT_DOUBLE_EQ(outcome.seek.count(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.transfer.count(), 2 * kGBTransfer);
  EXPECT_DOUBLE_EQ(outcome.switch_time.count(), 0.0);
  EXPECT_EQ(outcome.tape_switches, 0u);
  EXPECT_EQ(outcome.tapes_touched, 1u);
  EXPECT_EQ(outcome.drives_used, 1u);
  EXPECT_EQ(outcome.bytes, 2_GB);
}

TEST(Simulator, SeekOrderOptimizationPicksTheCheaperSweep) {
  Scenario s;
  s.mount(0, 0);
  RetrievalSimulator sim(*s.plan);
  (void)sim.run_request(RequestId{0});  // leaves the head at 2 GB
  // R1 wants O0 (2 GB @ 0) and O1 (3 GB @ 2 GB). Ascending from head=2GB:
  // locate back 2 GB, read O0, locate 0, read O1. Descending would cost a
  // 5 GB back-jump instead. The optimizer must pick ascending.
  const auto outcome = sim.run_request(RequestId{1});
  EXPECT_DOUBLE_EQ(outcome.seek.count(), 2 * kGBLocate);
  EXPECT_DOUBLE_EQ(outcome.transfer.count(), 5 * kGBTransfer);
  EXPECT_DOUBLE_EQ(outcome.response.count(), 2 * kGBLocate + 5 * kGBTransfer);
  EXPECT_EQ(outcome.tape_switches, 0u);
}

TEST(Simulator, DescendingSweepWinsWhenHeadIsPastEverything) {
  Scenario s;
  s.mount(0, 0);
  RetrievalSimulator sim(*s.plan);
  // Read O1 alone first: R1 = {O0, O1}; instead drive the head high by
  // serving R1 from BOT: asc picks O0 then O1, head ends at 5 GB.
  (void)sim.run_request(RequestId{1});
  // Now request O1 (offset 2 GB) and O0 (offset 0) again with head at 5 GB.
  // asc: |5-0| + gap 0 = 5 GB. desc: |5-2| + back-jump (5 - 0) = 8 GB.
  // Ascending still wins; verify the simulator doesn't regress into the
  // naive "nearest endpoint first" descending order (which would be 8 GB).
  const auto outcome = sim.run_request(RequestId{1});
  EXPECT_DOUBLE_EQ(outcome.seek.count(), 5 * kGBLocate);
}

TEST(Simulator, OfflineTapeOnEmptyDrive) {
  Scenario s;
  s.mount(0, 0);  // drive 1 stays empty; T1 offline
  RetrievalSimulator sim(*s.plan);
  const auto outcome = sim.run_request(RequestId{2});
  // Robot fetch (7.6) + load (19) + locate 0 + transfer 4 GB (50).
  EXPECT_DOUBLE_EQ(outcome.response.count(), kMove + kLoad + 4 * kGBTransfer);
  EXPECT_DOUBLE_EQ(outcome.transfer.count(), 4 * kGBTransfer);
  EXPECT_DOUBLE_EQ(outcome.seek.count(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.switch_time.count(), kMove + kLoad);
  EXPECT_EQ(outcome.tape_switches, 1u);
}

TEST(Simulator, LeastPopularMountedTapeIsEvicted) {
  Scenario s;
  s.plan->mount_policy.replacement = ReplacementPolicy::kLeastPopular;
  s.mount(0, 0);  // T0 popularity 1/2 (O0 in R0,R1; O1 in R1)
  s.mount(1, 1);  // T1 popularity 1/6
  RetrievalSimulator sim(*s.plan);
  const auto outcome = sim.run_request(RequestId{3});  // O3 on offline T2
  // Drive 1 (least popular tape, head at 0) must switch:
  // unload under robot (19) + exchange (15.2) + load (19) + transfer 12.5.
  EXPECT_DOUBLE_EQ(outcome.response.count(),
                   kUnload + 2 * kMove + kLoad + 1 * kGBTransfer);
  EXPECT_EQ(outcome.tape_switches, 1u);
  // T0 must still be mounted on drive 0; T1 must be back in its cell.
  EXPECT_TRUE(sim.system().is_mounted(TapeId{0}));
  EXPECT_FALSE(sim.system().is_mounted(TapeId{1}));
  EXPECT_TRUE(sim.system().is_mounted(TapeId{2}));
}

TEST(Simulator, RewindTimeDependsOnHeadPosition) {
  Scenario s;
  s.plan->mount_policy.replacement = ReplacementPolicy::kLeastPopular;
  s.mount(0, 0);
  s.mount(1, 1);
  RetrievalSimulator sim(*s.plan);
  (void)sim.run_request(RequestId{2});  // drive 1 reads O2 -> head at 4 GB
  const auto outcome = sim.run_request(RequestId{3});
  // Drive 1 is still least popular; now it must rewind 4 GB first.
  EXPECT_DOUBLE_EQ(
      outcome.response.count(),
      4 * kGBRewind + kUnload + 2 * kMove + kLoad + 1 * kGBTransfer);
}

TEST(Simulator, PinnedDrivesNeverSwitch) {
  Scenario s;
  s.plan->mount_policy.replacement = ReplacementPolicy::kFixedBatch;
  s.plan->mount_policy.drive_pinned.assign(2, false);
  s.plan->mount_policy.drive_pinned[0] = true;
  s.mount(0, 0);
  s.mount(1, 1);
  RetrievalSimulator sim(*s.plan);
  const auto outcome = sim.run_request(RequestId{3});
  // Drive 0 is pinned even though T0 is idle; drive 1 must do the switch.
  EXPECT_TRUE(sim.system().is_mounted(TapeId{0}));
  EXPECT_EQ(*sim.system().drive_holding(TapeId{2}), DriveId{1});
  EXPECT_EQ(outcome.tape_switches, 1u);
}

TEST(Simulator, RobotSerializesConcurrentSwitches) {
  Scenario s;
  s.plan->mount_policy.replacement = ReplacementPolicy::kLeastPopular;
  // Both drives empty: R5 needs T2 and T3, both offline.
  RetrievalSimulator sim(*s.plan);
  const auto outcome = sim.run_request(RequestId{5});
  // Queue is largest-work-first: T3 (2 GB) before T2 (1 GB). The robot
  // stays at a drive until load-to-ready completes (default protocol), so:
  // Drive A: fetch 7.6 + load 19 (robot held) + transfer 25  -> 51.6
  // Drive B: robot wait 26.6 + fetch 7.6 + load 19 + 12.5    -> 65.7
  EXPECT_DOUBLE_EQ(outcome.response.count(),
                   2 * (kMove + kLoad) + 1 * kGBTransfer);
  EXPECT_DOUBLE_EQ(outcome.robot_wait.count(), kMove + kLoad);
  EXPECT_EQ(outcome.tape_switches, 2u);
  EXPECT_EQ(outcome.drives_used, 2u);
}

TEST(Simulator, StatePersistsAcrossRequests) {
  Scenario s;
  s.mount(0, 0);
  RetrievalSimulator sim(*s.plan);
  const auto first = sim.run_request(RequestId{2});
  EXPECT_EQ(first.tape_switches, 1u);
  // T1 is now mounted with head at 4 GB; repeating the request only needs
  // a rewind-locate back to offset 0 plus the transfer.
  const auto second = sim.run_request(RequestId{2});
  EXPECT_EQ(second.tape_switches, 0u);
  EXPECT_DOUBLE_EQ(second.seek.count(), 4 * kGBLocate);
  EXPECT_DOUBLE_EQ(second.response.count(), 4 * kGBLocate + 4 * kGBTransfer);
}

TEST(Simulator, SequentialSwitchesOnOneDrive) {
  Scenario s;
  s.plan->mount_policy.replacement = ReplacementPolicy::kLeastPopular;
  s.plan->mount_policy.drive_pinned.assign(2, false);
  s.plan->mount_policy.drive_pinned[1] = true;  // only drive 0 may switch
  s.mount(1, 0);  // pinned drive holds T0 (not requested)
  RetrievalSimulator sim(*s.plan);
  const auto outcome = sim.run_request(RequestId{5});  // T2 and T3
  // Drive 0 does both, largest first:
  //   fetch 7.6 + load 19 + transfer 25            (T3, 2 GB)
  //   rewind 2 GB (19.6) + unload 19 + exchange 15.2 + load 19 + 12.5 (T2)
  const double first_leg = kMove + kLoad + 2 * kGBTransfer;
  const double second_leg =
      2 * kGBRewind + kUnload + 2 * kMove + kLoad + 1 * kGBTransfer;
  EXPECT_DOUBLE_EQ(outcome.response.count(), first_leg + second_leg);
  EXPECT_EQ(outcome.tape_switches, 2u);
  EXPECT_EQ(outcome.drives_used, 1u);
}

TEST(Simulator, AccountingIdentityHolds) {
  Scenario s;
  s.plan->mount_policy.replacement = ReplacementPolicy::kLeastPopular;
  s.mount(0, 0);
  RetrievalSimulator sim(*s.plan);
  for (const std::uint32_t r : {1u, 2u, 5u, 3u, 0u, 4u}) {
    const auto o = sim.run_request(RequestId{r});
    EXPECT_NEAR(o.response.count(),
                o.switch_time.count() + o.seek.count() + o.transfer.count(),
                1e-9);
    EXPECT_GE(o.switch_time.count(), 0.0);
    EXPECT_GT(o.response.count(), 0.0);
    EXPECT_GE(o.bytes.count(), 1u);
  }
}

TEST(Simulator, SeekOrderAblationServesInRequestOrder) {
  Scenario s;
  s.mount(0, 0);
  SimulatorConfig config;
  config.optimize_seek_order = false;
  RetrievalSimulator sim(*s.plan, config);
  (void)sim.run_request(RequestId{0});  // head at 2 GB
  // Unoptimized R1 serves O0 first (request order): locate 2 GB back, read,
  // locate 0, read O1: same as optimized here. Drive the head to 5 GB and
  // request again: optimized would seek 5 GB; unoptimized serves O0 (5 GB
  // locate) then O1 (0): also 5 GB. Distinguish with a case where request
  // order is strictly worse: serve R1 after R0 leaves head at 2 GB, but
  // request order puts O0 (offset 0) before O1: 2 GB + 0 = identical...
  // so assert equality here and rely on the optimizer test above for the
  // contrast case.
  const auto outcome = sim.run_request(RequestId{1});
  EXPECT_DOUBLE_EQ(outcome.seek.count(), 2 * kGBLocate);
}

TEST(Simulator, DiskStreamLimitSerializesTransfers) {
  Scenario s;
  s.mount(0, 0);
  s.mount(1, 1);
  SimulatorConfig config;
  config.max_concurrent_streams = 1;  // the disk can absorb one stream
  RetrievalSimulator sim(*s.plan, config);
  // Craft a request touching both mounted tapes: R1 covers O0+O1 on T0;
  // serve R2 (O2 on T1) in the same... requests are single here, so issue
  // two back-to-back requests is serial anyway. Instead verify within one
  // request: R1 has two extents on ONE tape (inherently serial), so use
  // the pair (O0 on T0, O2 on T1) via two drives. Request 1 = {O0, O1}
  // only touches T0; build the cross-tape case from request 5 instead.
  // R5 = {O3 (T2), O4 (T3)} — both offline; two drives fetch, but only
  // one may stream at a time.
  const auto outcome = sim.run_request(RequestId{5});
  // Both drives hold unneeded tapes, so each pays a full exchange
  // (unload 19 + moves 15.2 + load 19 = 53.2 with the robot held), and the
  // single robot serializes them. The stream windows never overlap, so the
  // 1-slot disk changes nothing: 53.2 + 53.2 + 12.5.
  EXPECT_DOUBLE_EQ(outcome.response.count(),
                   2 * (kUnload + 2 * kMove + kLoad) + 1 * kGBTransfer);

  // Now force an actual overlap: both tapes already mounted.
  Scenario s2;
  s2.mount(0, 2);  // T2 (O3)
  s2.mount(1, 3);  // T3 (O4)
  RetrievalSimulator sim_unlimited(*s2.plan);
  const auto parallel = sim_unlimited.run_request(RequestId{5});
  EXPECT_DOUBLE_EQ(parallel.response.count(), 2 * kGBTransfer);  // overlap

  Scenario s3;
  s3.mount(0, 2);
  s3.mount(1, 3);
  RetrievalSimulator sim_limited(*s3.plan, config);
  const auto serial = sim_limited.run_request(RequestId{5});
  // One slot: 2 GB then 1 GB strictly back to back.
  EXPECT_DOUBLE_EQ(serial.response.count(), 3 * kGBTransfer);
}

TEST(Simulator, RobotsOfDifferentLibrariesWorkInParallel) {
  // Two libraries, one drive each, both requests need offline tapes: the
  // exchanges must overlap because each library has its own robot.
  tape::SystemSpec spec;
  spec.num_libraries = 2;
  spec.library.drives_per_library = 1;
  spec.library.tapes_per_library = 2;
  spec.library.tape_capacity = 10_GB;

  std::vector<workload::ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                            {ObjectId{1}, 2_GB}};
  std::vector<workload::Request> requests{
      Request{RequestId{0}, 1.0, {ObjectId{0}, ObjectId{1}}}};
  const Workload wl{std::move(objects), std::move(requests)};

  PlacementPlan plan(spec, wl);
  plan.assign(ObjectId{0}, TapeId{0});  // library 0
  plan.assign(ObjectId{1}, TapeId{2});  // library 1
  plan.align_all(Alignment::kGivenOrder);
  plan.compute_tape_popularity();

  RetrievalSimulator sim(plan);
  const auto outcome = sim.run_request(RequestId{0});
  // Each library: empty drive, fetch 7.6 + load 19 + transfer 25 = 51.6,
  // fully in parallel (one robot each). Serial robots would give ~78.
  EXPECT_DOUBLE_EQ(outcome.response.count(), kMove + kLoad + 2 * kGBTransfer);
  EXPECT_EQ(outcome.tape_switches, 2u);
  EXPECT_DOUBLE_EQ(outcome.robot_wait.count(), 0.0);
}

TEST(SimulatorDeath, RequestForUnplacedObjectAborts) {
  Scenario s;
  s.mount(0, 0);
  // Build a workload referencing an object the plan doesn't know: reuse the
  // scenario but fake a request list entry by asking for an object id that
  // exists in the workload yet was never assigned. Easiest: construct a
  // fresh plan missing O4.
  tape::SystemSpec spec = s.spec;
  PlacementPlan partial(spec, *s.workload);
  partial.assign(ObjectId{0}, TapeId{0});
  partial.assign(ObjectId{1}, TapeId{0});
  partial.assign(ObjectId{2}, TapeId{1});
  partial.assign(ObjectId{3}, TapeId{2});
  // O4 deliberately unassigned.
  partial.align_all(Alignment::kGivenOrder);
  partial.compute_tape_popularity();
  RetrievalSimulator sim(partial);
  EXPECT_DEATH((void)sim.run_request(RequestId{4}), "unplaced");
}

}  // namespace
}  // namespace tapesim::sched
