// Utilization reporting and cross-layer conservation invariants.
#include "sched/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "exp/experiment.hpp"
#include "sched/concurrent.hpp"

namespace tapesim::sched {
namespace {

exp::ExperimentConfig small_config() {
  exp::ExperimentConfig config;
  config.spec.num_libraries = 2;
  config.spec.library.drives_per_library = 3;
  config.spec.library.tapes_per_library = 10;
  config.spec.library.tape_capacity = 40_GB;
  config.workload.num_objects = 800;
  config.workload.num_requests = 25;
  config.workload.min_objects_per_request = 10;
  config.workload.max_objects_per_request = 20;
  config.workload.object_groups = 16;
  config.workload.min_object_size = Bytes{100ULL * 1000 * 1000};
  config.workload.max_object_size = 1_GB;
  config.simulated_requests = 40;
  return config;
}

TEST(UtilizationReport, ConservationAcrossSerialRun) {
  const exp::ExperimentConfig config = small_config();
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);
  core::PlacementContext context{&experiment.workload(), &config.spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan = schemes.parallel_batch->place(context);

  RetrievalSimulator simulator(plan);
  Rng rng{config.seed};
  Rng sample_rng = rng.fork(0x5251);
  const workload::RequestSampler sampler(experiment.workload());
  Bytes requested{};
  std::uint64_t mounts = 0;
  for (std::uint32_t i = 0; i < config.simulated_requests; ++i) {
    const auto o = simulator.run_request(sampler.sample(sample_rng));
    requested += o.bytes;
    mounts += o.tape_switches;
  }

  const auto report =
      utilization_report(simulator.system(), simulator.engine().now());
  // Every requested byte was read by exactly one drive, and every mount
  // counted per-request appears in a drive's counter (startup mounts are
  // instantaneous and deliberately uncounted).
  EXPECT_EQ(report.total_bytes_read(), requested);
  EXPECT_EQ(report.total_mounts(), mounts);
  EXPECT_EQ(report.drives.size(), config.spec.total_drives());
  EXPECT_EQ(report.robots.size(), config.spec.num_libraries);
  EXPECT_GT(report.elapsed.count(), 0.0);
  EXPECT_GT(report.mean_streaming_fraction(), 0.0);
  EXPECT_LE(report.mean_streaming_fraction(), 1.0);
}

TEST(UtilizationReport, DriveActivityNeverExceedsElapsed) {
  const exp::ExperimentConfig config = small_config();
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);
  core::PlacementContext context{&experiment.workload(), &config.spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan = schemes.object_probability->place(context);
  RetrievalSimulator simulator(plan);
  Rng rng{7};
  const workload::RequestSampler sampler(experiment.workload());
  for (int i = 0; i < 30; ++i) {
    (void)simulator.run_request(sampler.sample(rng));
  }
  const auto report =
      utilization_report(simulator.system(), simulator.engine().now());
  for (const DriveUtilization& d : report.drives) {
    EXPECT_LE(d.active().count(), report.elapsed.count() + 1e-6)
        << "drive " << d.drive;
    EXPECT_GE(d.busy_fraction(report.elapsed), 0.0);
    EXPECT_LE(d.busy_fraction(report.elapsed), 1.0 + 1e-9);
  }
  for (const RobotUtilization& r : report.robots) {
    EXPECT_LE(r.busy.count(), report.elapsed.count() + 1e-6);
  }
}

TEST(UtilizationReport, ConservationAcrossConcurrentRun) {
  const exp::ExperimentConfig config = small_config();
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);
  core::PlacementContext context{&experiment.workload(), &config.spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan = schemes.parallel_batch->place(context);

  ConcurrentSimulator simulator(plan);
  Rng rng{11};
  const workload::RequestSampler sampler(experiment.workload());
  const auto arrivals = poisson_arrivals(sampler, 1.0 / 120.0, 60, rng);
  const auto outcomes = simulator.run(arrivals);

  // Drives read at least as much as any single instance demanded, and at
  // most the sum (shared reads may credit several instances at once).
  const auto report =
      utilization_report(simulator.system(), simulator.makespan());
  Bytes credited{};
  for (const auto& o : outcomes) credited += o.bytes;
  EXPECT_LE(report.total_bytes_read(), credited);
  EXPECT_GT(report.total_bytes_read().count(), 0u);
  // Sojourns are causal.
  for (const auto& o : outcomes) {
    EXPECT_GE(o.completion.count(), o.arrival.count());
  }
}

TEST(UtilizationReport, PrintsOneRowPerDriveAndRobot) {
  const exp::ExperimentConfig config = small_config();
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);
  core::PlacementContext context{&experiment.workload(), &config.spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan = schemes.parallel_batch->place(context);
  RetrievalSimulator simulator(plan);
  (void)simulator.run_request(RequestId{0});
  const auto report =
      utilization_report(simulator.system(), simulator.engine().now());
  std::ostringstream os;
  report.print(os);
  const std::string text = os.str();
  // 6 drives + 2 robots + headers/rules.
  EXPECT_NE(text.find("streaming %"), std::string::npos);
  EXPECT_NE(text.find("robot (library)"), std::string::npos);
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_GE(lines, 6u + 2u + 4u);
}

}  // namespace
}  // namespace tapesim::sched
