// Library-level fault domains: correlated outages, degraded-mode serving,
// and disaster recovery in the retrieval simulator.
//
// Pins the outage acceptance bar from several directions: (1) a default
// OutageConfig — even with every DR knob set to a non-default value — must
// not perturb a single event of a faulty run (outages disabled is
// bit-identical, clock included); (2) transient outages over an
// unreplicated plan park the affected extents and serve every byte after
// the restore; (3) with cross-library replicas the same outages are
// absorbed by failover reads; (4) a site disaster destroys the library,
// loses its resident cartridges, and drives a DR re-replication surge whose
// completion lands a time-to-full-redundancy sample; (5) the tracer's
// kOutage lane and outage.* counters reconcile exactly against the
// scheduler's own running totals (downtime conservation included).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "metrics/request_metrics.hpp"
#include "obs/tracer.hpp"
#include "sched/simulator.hpp"
#include "tape/system.hpp"
#include "workload/model.hpp"

namespace tapesim::sched {
namespace {

using core::Alignment;
using core::PlacementPlan;
using metrics::RequestStatus;
using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

/// Two libraries, two drives and four 10 GB tapes each. Six objects with
/// primaries split across the libraries; with `replicated`, every object
/// has a second copy in the *other* library, so any single outage leaves a
/// live replica.
struct TwoLibScenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<PlacementPlan> plan;

  explicit TwoLibScenario(bool replicated) {
    spec.num_libraries = 2;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{
        {ObjectId{0}, 2_GB}, {ObjectId{1}, 3_GB}, {ObjectId{2}, 2_GB},
        {ObjectId{3}, 1_GB}, {ObjectId{4}, 2_GB}, {ObjectId{5}, 1_GB}};
    std::vector<Request> requests;
    const double p = 1.0 / 6.0;
    requests.push_back(Request{RequestId{0}, p, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, p, {ObjectId{1}, ObjectId{4}}});
    requests.push_back(Request{RequestId{2}, p, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, p, {ObjectId{3}, ObjectId{5}}});
    requests.push_back(Request{RequestId{4}, p, {ObjectId{4}}});
    requests.push_back(Request{RequestId{5}, p, {ObjectId{0}, ObjectId{2}}});
    workload =
        std::make_unique<Workload>(std::move(objects), std::move(requests));

    plan = std::make_unique<PlacementPlan>(spec, *workload);
    // Tapes 0..3 live in library 0, tapes 4..7 in library 1.
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{1});
    plan->assign(ObjectId{2}, TapeId{4});
    plan->assign(ObjectId{3}, TapeId{5});
    plan->assign(ObjectId{4}, TapeId{0});
    plan->assign(ObjectId{5}, TapeId{4});
    plan->align_all(Alignment::kGivenOrder);
    if (replicated) {
      plan->freeze_layout();
      plan->assign_replica(ObjectId{0}, TapeId{6});
      plan->assign_replica(ObjectId{1}, TapeId{6});
      plan->assign_replica(ObjectId{2}, TapeId{2});
      plan->assign_replica(ObjectId{3}, TapeId{2});
      plan->assign_replica(ObjectId{4}, TapeId{7});
      plan->assign_replica(ObjectId{5}, TapeId{3});
      plan->align_all(Alignment::kGivenOrder);
    }
    plan->compute_tape_popularity();
  }
};

/// A faulty-but-outage-free posture shared by the bit-identity tests.
SimulatorConfig faulty_config() {
  SimulatorConfig config;
  config.faults.seed = 23;
  config.faults.drive_mtbf = Seconds{40000.0};
  config.faults.drive_mttr = Seconds{900.0};
  config.faults.mount_failure_prob = 0.02;
  config.faults.robot_jam_prob = 0.01;
  return config;
}

TEST(LibraryOutage, OutageOffBitIdenticalRequestsAndClock) {
  // Same faulty scenario twice; the second arms every outage knob *except*
  // the master switch (library_mtbf stays 0). Request outcomes and the
  // engine clock itself must match bit for bit.
  TwoLibScenario base(/*replicated=*/true);
  TwoLibScenario other(/*replicated=*/true);
  RetrievalSimulator plain(*base.plan, faulty_config());

  SimulatorConfig armed_cfg = faulty_config();
  armed_cfg.faults.outage.library_mttr = Seconds{123.0};
  armed_cfg.faults.outage.disaster_fraction = 0.5;
  armed_cfg.faults.outage.dr_bandwidth_fraction = 0.9;
  armed_cfg.faults.outage.dr_max_concurrent = 7;
  ASSERT_FALSE(armed_cfg.faults.outage.enabled());
  ASSERT_TRUE(armed_cfg.try_validate().ok());
  RetrievalSimulator armed(*other.plan, armed_cfg);

  for (int round = 0; round < 3; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto a = plain.run_request(RequestId{r});
      const auto b = armed.run_request(RequestId{r});
      EXPECT_EQ(a.response.count(), b.response.count());
      EXPECT_EQ(a.seek.count(), b.seek.count());
      EXPECT_EQ(a.transfer.count(), b.transfer.count());
      EXPECT_EQ(a.switch_time.count(), b.switch_time.count());
      EXPECT_EQ(a.status, b.status);
      EXPECT_EQ(b.extents_parked, 0u);
      EXPECT_EQ(plain.engine().now().count(), armed.engine().now().count());
    }
  }
  EXPECT_EQ(armed.outage_stats().started, 0u);
  EXPECT_EQ(armed.outage_stats().downtime.count(), 0.0);
}

TEST(LibraryOutage, TransientOutageParksUnreplicatedWorkUntilRestore) {
  // No replicas: demand behind a downed library has nowhere to go, so it
  // parks and is served once the library returns — transient outages must
  // not lose a single byte.
  TwoLibScenario s(/*replicated=*/false);
  obs::Tracer tracer;
  SimulatorConfig config;
  config.tracer = &tracer;
  config.faults.seed = 5;
  config.faults.outage.library_mtbf = Seconds{30000.0};
  config.faults.outage.library_mttr = Seconds{4000.0};
  RetrievalSimulator sim(*s.plan, config);
  ASSERT_FALSE(sim.replicated());

  metrics::ExperimentMetrics agg;
  for (int round = 0; round < 24; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto o = sim.run_request(RequestId{r});
      EXPECT_EQ(o.status, RequestStatus::kServed);
      EXPECT_EQ(o.bytes_unavailable.count(), 0u);
      agg.add(o);
    }
  }
  const OutageStats& stats = sim.outage_stats();
  ASSERT_GT(stats.started, 0u) << "seed no longer produces an outage";
  EXPECT_EQ(stats.disasters, 0u);
  EXPECT_GT(stats.extents_parked, 0u)
      << "no request ever waited out an outage";
  EXPECT_EQ(stats.failovers, 0u);  // nothing to fail over to
  EXPECT_GT(stats.ended, 0u);
  EXPECT_GT(stats.downtime.count(), 0.0);
  EXPECT_EQ(agg.total_extents_parked(), stats.extents_parked);
  EXPECT_GT(agg.parked_request_count(), 0u);
  EXPECT_LE(agg.parked_request_count(), stats.requests_parked);

  // Downtime conservation: the kOutage lane's closed windows sum exactly
  // to the scheduler's accumulated downtime, one span per ended outage.
  double span_downtime = 0.0;
  std::uint64_t outage_spans = 0;
  for (const obs::Span& span : tracer.spans()) {
    if (span.track != obs::Track::kOutage ||
        span.phase != obs::Phase::kOutage) {
      continue;
    }
    ++outage_spans;
    EXPECT_GT(span.end.count(), span.start.count());
    span_downtime += span.duration().count();
  }
  EXPECT_EQ(outage_spans, stats.ended);
  EXPECT_DOUBLE_EQ(span_downtime, stats.downtime.count());

  // Registry mirror: the outage.* counters agree with the stats exactly.
  auto& reg = tracer.registry();
  EXPECT_EQ(reg.counter("outage.started").value(), stats.started);
  EXPECT_EQ(reg.counter("outage.ended").value(), stats.ended);
  EXPECT_EQ(reg.counter("outage.requests_parked").value(),
            stats.requests_parked);
  EXPECT_EQ(reg.counter("outage.failovers").value(), stats.failovers);
  EXPECT_EQ(reg.gauge("outage.downtime_s").value(), stats.downtime.count());

  // Restores that served parked work land RTO samples.
  EXPECT_GT(stats.ttfb.count(), 0u);

  // The injector and the scheduler agree on how many outages happened.
  const fault::FaultInjector* inj = sim.fault_injector();
  ASSERT_NE(inj, nullptr);
  EXPECT_EQ(inj->counters().library_outages, stats.started);
  EXPECT_EQ(inj->counters().library_disasters, 0u);
}

TEST(LibraryOutage, ReplicasAbsorbTransientOutagesThroughFailover) {
  // Same outage timeline, but every object has a copy in the other
  // library: reads route around the downed library instead of waiting.
  TwoLibScenario s(/*replicated=*/true);
  SimulatorConfig config;
  config.faults.seed = 5;
  config.faults.outage.library_mtbf = Seconds{30000.0};
  config.faults.outage.library_mttr = Seconds{4000.0};
  RetrievalSimulator sim(*s.plan, config);
  ASSERT_TRUE(sim.replicated());

  for (int round = 0; round < 24; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto o = sim.run_request(RequestId{r});
      EXPECT_EQ(o.status, RequestStatus::kServed);
      EXPECT_EQ(o.bytes_unavailable.count(), 0u);
    }
  }
  const OutageStats& stats = sim.outage_stats();
  ASSERT_GT(stats.started, 0u) << "seed no longer produces an outage";
  EXPECT_GT(stats.failovers, 0u) << "no read ever routed around an outage";
}

TEST(LibraryOutage, DisasterDestroysLibraryAndDrRestoresRedundancy) {
  // Every outage is a site disaster. The struck library never returns, its
  // cartridges are lost, and the DR surge re-replicates the lost copies
  // into the surviving library, closing with a time-to-full-redundancy
  // sample.
  TwoLibScenario s(/*replicated=*/true);
  obs::Tracer tracer;
  SimulatorConfig config;
  config.tracer = &tracer;
  config.faults.seed = 5;
  config.faults.outage.library_mtbf = Seconds{60000.0};
  config.faults.outage.disaster_fraction = 1.0;
  config.faults.outage.dr_bandwidth_fraction = 1.0;
  config.faults.outage.dr_max_concurrent = 2;
  config.repair.enabled = true;
  RetrievalSimulator sim(*s.plan, config);

  for (int round = 0; round < 24; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto o = sim.run_request(RequestId{r});
      // Cross-library replicas mean a single disaster loses no data.
      EXPECT_EQ(o.status, RequestStatus::kServed);
    }
    if (sim.outage_stats().disasters > 0) break;
  }
  const OutageStats& stats = sim.outage_stats();
  ASSERT_GT(stats.disasters, 0u) << "seed no longer produces a disaster";

  // Exactly one library can be down (the fixture has two, and data loss
  // would have surfaced above had both died).
  std::uint32_t destroyed = 0;
  LibraryId dead{};
  for (std::uint32_t l = 0; l < 2; ++l) {
    if (sim.system().library_state(LibraryId{l}) ==
        tape::LibraryState::kDestroyed) {
      ++destroyed;
      dead = LibraryId{l};
    }
  }
  ASSERT_EQ(destroyed, 1u);
  // Every cartridge resident in the destroyed library is lost.
  for (std::uint32_t t = 0; t < 4; ++t) {
    const TapeId tp{dead.value() * 4 + t};
    EXPECT_TRUE(sim.system().cartridge_lost(tp));
    EXPECT_EQ(sim.catalog().tape_health(tp), catalog::ReplicaHealth::kLost);
  }

  ASSERT_GT(stats.dr_jobs, 0u);
  sim.drain_repairs();
  ASSERT_EQ(sim.repair_backlog(), 0u);
  ASSERT_EQ(sim.repair_stats().jobs_abandoned, 0u)
      << "seed no longer lets DR finish against the surviving library";
  EXPECT_GT(stats.dr_bytes, 0u);
  EXPECT_EQ(stats.redundancy_recovery.count(), 1u);
  EXPECT_GT(stats.redundancy_recovery.mean(), 0.0);
  // DR copy traffic is a subset of all repair traffic.
  EXPECT_LE(stats.dr_bytes, sim.repair_stats().bytes_copied);
  auto& reg = tracer.registry();
  EXPECT_EQ(reg.counter("outage.dr_jobs").value(), stats.dr_jobs);
  EXPECT_EQ(reg.counter("outage.dr_bytes").value(), stats.dr_bytes);
  EXPECT_EQ(reg.counter("outage.disasters").value(), stats.disasters);
}

TEST(LibraryOutage, DisasterWithoutReplicasLosesResidentBytes) {
  // r = 1 and a destroyed library: requests touching its cartridges
  // complete as unavailable immediately — destroyed is not parked.
  TwoLibScenario s(/*replicated=*/false);
  SimulatorConfig config;
  config.faults.seed = 5;
  config.faults.outage.library_mtbf = Seconds{60000.0};
  config.faults.outage.disaster_fraction = 1.0;
  RetrievalSimulator sim(*s.plan, config);

  bool saw_unavailable = false;
  for (int round = 0; round < 24 && !saw_unavailable; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto o = sim.run_request(RequestId{r});
      if (o.status == RequestStatus::kUnavailable ||
          o.status == RequestStatus::kPartial) {
        EXPECT_GT(o.bytes_unavailable.count(), 0u);
        saw_unavailable = true;
      }
    }
  }
  ASSERT_GT(sim.outage_stats().disasters, 0u)
      << "seed no longer produces a disaster";
  EXPECT_TRUE(saw_unavailable) << "lost data was never requested";
  EXPECT_EQ(sim.outage_stats().extents_parked, 0u)
      << "destroyed-library demand must not park";
}

}  // namespace
}  // namespace tapesim::sched
