// Failover reads and background repair in the retrieval simulator.
//
// Pins the redundancy acceptance bar from three directions: (1) an r = 1
// ReplicationPolicy plan must run the exact same event sequence as the
// wrapped scheme alone, even with the repair subsystem configured on —
// redundancy off is indistinguishable from redundancy never existing;
// (2) a deterministic mount-failure scenario must fail over to a mounted
// replica and serve, where the same faults without a replica lose the
// bytes; (3) media-error degradation must trigger background repair that
// restores the replication factor, with the tracer's repair lane and
// counters reconciling against the scheduler's own accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/parallel_batch.hpp"
#include "core/plan.hpp"
#include "core/replication.hpp"
#include "exp/experiment.hpp"
#include "metrics/request_metrics.hpp"
#include "obs/tracer.hpp"
#include "sched/simulator.hpp"
#include "workload/model.hpp"

namespace tapesim::sched {
namespace {

using core::Alignment;
using core::PlacementPlan;
using metrics::RequestStatus;
using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

/// The recovery-scenario layout (one library, two drives, four 10 GB
/// tapes, five objects) with an optional second copy of every object.
/// Replicated tapes carry 6 GB each, leaving 4 GB of repair headroom.
struct Scenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<PlacementPlan> plan;

  explicit Scenario(bool replicated, TapeId initial_mount = TapeId{0}) {
    spec.num_libraries = 1;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                    {ObjectId{1}, 3_GB},
                                    {ObjectId{2}, 4_GB},
                                    {ObjectId{3}, 1_GB},
                                    {ObjectId{4}, 2_GB}};
    std::vector<Request> requests;
    const double p = 1.0 / 6.0;
    requests.push_back(Request{RequestId{0}, p, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, p, {ObjectId{0}, ObjectId{1}}});
    requests.push_back(Request{RequestId{2}, p, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, p, {ObjectId{3}}});
    requests.push_back(Request{RequestId{4}, p, {ObjectId{4}}});
    requests.push_back(Request{RequestId{5}, p, {ObjectId{3}, ObjectId{4}}});
    workload = std::make_unique<Workload>(std::move(objects),
                                          std::move(requests));

    plan = std::make_unique<PlacementPlan>(spec, *workload);
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{0});
    plan->assign(ObjectId{2}, TapeId{1});
    plan->assign(ObjectId{3}, TapeId{2});
    plan->assign(ObjectId{4}, TapeId{3});
    plan->align_all(Alignment::kGivenOrder);
    if (replicated) {
      plan->freeze_layout();
      plan->assign_replica(ObjectId{0}, TapeId{1});
      plan->assign_replica(ObjectId{1}, TapeId{2});
      plan->assign_replica(ObjectId{2}, TapeId{3});
      plan->assign_replica(ObjectId{3}, TapeId{0});
      plan->assign_replica(ObjectId{4}, TapeId{2});
      plan->align_all(Alignment::kGivenOrder);
    }
    plan->compute_tape_popularity();
    plan->mount_policy.initial_mounts.emplace_back(DriveId{0}, initial_mount);
  }
};

TEST(ReplicationFailover, R1PipelineBitIdenticalEvenWithRepairConfigured) {
  // Full place -> sample -> simulate pipeline: wrapping the scheme at
  // r = 1 and arming the repair config must not perturb a single event.
  exp::ExperimentConfig plain_cfg;
  plain_cfg.simulated_requests = 40;
  exp::ExperimentConfig wrapped_cfg = plain_cfg;
  wrapped_cfg.sim.repair.enabled = true;  // inert without replicas
  wrapped_cfg.sim.repair.bandwidth_fraction = 0.5;

  const core::ParallelBatchPlacement inner{{}};
  core::ReplicationPolicy::Params params;
  params.replicas = 1;
  const core::ReplicationPolicy wrapped(inner, params);

  const exp::Experiment plain(plain_cfg);
  const exp::Experiment with_wrapper(wrapped_cfg);
  const auto a = plain.run(inner);
  const auto b = with_wrapper.run(wrapped);

  EXPECT_EQ(a.metrics.mean_response().count(),
            b.metrics.mean_response().count());
  EXPECT_EQ(a.metrics.mean_bandwidth().count(),
            b.metrics.mean_bandwidth().count());
  EXPECT_EQ(a.total_switches, b.total_switches);
  EXPECT_EQ(a.tapes_used, b.tapes_used);
  EXPECT_EQ(b.metrics.total_served_from_replica(), 0u);
  EXPECT_EQ(b.metrics.total_repaired(), 0u);
}

TEST(ReplicationFailover, R1RequestsBitIdenticalUnderFaultConfig) {
  // Same scenario built with and without the (empty) replica machinery:
  // an unreplicated plan from the replication-aware path must produce
  // bit-identical request timings, request by request.
  Scenario base(/*replicated=*/false);
  Scenario other(/*replicated=*/false);
  RetrievalSimulator plain(*base.plan);
  SimulatorConfig config;
  config.repair.enabled = true;  // inert: no replicas, no faults
  RetrievalSimulator armed(*other.plan, config);
  ASSERT_FALSE(armed.replicated());

  for (int round = 0; round < 3; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto a = plain.run_request(RequestId{r});
      const auto b = armed.run_request(RequestId{r});
      EXPECT_EQ(a.response.count(), b.response.count());
      EXPECT_EQ(a.seek.count(), b.seek.count());
      EXPECT_EQ(a.transfer.count(), b.transfer.count());
      EXPECT_EQ(a.switch_time.count(), b.switch_time.count());
      EXPECT_EQ(b.served_from_replica, 0u);
      EXPECT_EQ(b.repaired, 0u);
    }
  }
  EXPECT_EQ(armed.repair_stats().jobs_scheduled, 0u);
  EXPECT_EQ(armed.repair_backlog(), 0u);
}

TEST(ReplicationFailover, MountExhaustionFailsOverToMountedReplica) {
  // Every load attempt fails, so the primary of object 0 (tape 0, offline)
  // can never mount; its replica sits on tape 1, which is already in a
  // drive. The request must be served from the replica.
  Scenario s(/*replicated=*/true, /*initial_mount=*/TapeId{1});
  SimulatorConfig config;
  config.faults.mount_failure_prob = 0.999;  // must stay below 1.0
  // One drive's retry ladder (1 attempt + 2 retries) burns the whole
  // per-tape budget, so the second drive never unloads the replica to
  // take its own shot at the doomed primary.
  config.faults.max_mount_attempts_per_tape = 3;
  config.faults.seed = 7;
  RetrievalSimulator sim(*s.plan, config);
  ASSERT_TRUE(sim.replicated());

  const auto o = sim.run_request(RequestId{0});
  EXPECT_EQ(o.status, RequestStatus::kServed);
  EXPECT_EQ(o.bytes_unavailable.count(), 0u);
  EXPECT_EQ(o.served_from_replica, 1u);
  EXPECT_GT(o.mount_retries, 0u);
  EXPECT_EQ(o.bytes_served(), o.bytes);
}

TEST(ReplicationFailover, MountExhaustionWithoutReplicaLosesTheBytes) {
  // Identical faults, no redundancy: the same request ends unavailable.
  Scenario s(/*replicated=*/false, /*initial_mount=*/TapeId{1});
  SimulatorConfig config;
  config.faults.mount_failure_prob = 0.999;
  config.faults.max_mount_attempts_per_tape = 3;
  config.faults.seed = 7;
  RetrievalSimulator sim(*s.plan, config);
  ASSERT_FALSE(sim.replicated());

  const auto o = sim.run_request(RequestId{0});
  EXPECT_EQ(o.status, RequestStatus::kUnavailable);
  EXPECT_EQ(o.bytes_unavailable.count(), (2_GB).count());
  EXPECT_EQ(o.served_from_replica, 0u);
}

TEST(ReplicationFailover, RepairRestoresFactorAfterDegradation) {
  Scenario s(/*replicated=*/true);
  SimulatorConfig config;
  config.faults.media_error_per_gb = 0.05;
  config.faults.seed = 11;
  config.repair.enabled = true;
  RetrievalSimulator sim(*s.plan, config);

  // Hammer the tapes until at least one cartridge degrades (deterministic
  // under the fixed seed; higher rates spiral every cartridge to Lost on
  // a system this small).
  for (int round = 0; round < 4; ++round) {
    for (const std::uint32_t r : {2u, 1u, 5u, 0u, 3u, 4u}) {
      sim.run_request(RequestId{r});
    }
  }
  const catalog::ObjectCatalog& cat = sim.catalog();
  std::uint32_t degraded = 0;
  for (std::uint32_t t = 0; t < 4; ++t) {
    if (cat.tape_health(TapeId{t}) == catalog::ReplicaHealth::kDegraded) {
      ++degraded;
    }
  }
  ASSERT_GT(degraded, 0u) << "seed no longer degrades a cartridge";
  EXPECT_GT(sim.repair_stats().jobs_scheduled, 0u);

  sim.drain_repairs();
  EXPECT_GT(sim.repair_stats().jobs_completed, 0u);

  // Every object with a copy on a degraded (not lost) cartridge is back at
  // two good copies, unless repair legitimately could not run to the end.
  if (sim.repair_backlog() == 0 && sim.repair_stats().jobs_abandoned == 0) {
    for (std::uint32_t t = 0; t < 4; ++t) {
      const TapeId tape{t};
      if (cat.tape_health(tape) != catalog::ReplicaHealth::kDegraded) {
        continue;
      }
      for (const catalog::TapeExtent& e : cat.extents_on(tape)) {
        std::uint32_t good = 0;
        if (const auto* primary = cat.lookup(e.object);
            primary != nullptr &&
            cat.tape_health(primary->tape) == catalog::ReplicaHealth::kGood) {
          ++good;
        }
        for (const auto& copy : cat.replicas(e.object)) {
          if (cat.tape_health(copy.tape) == catalog::ReplicaHealth::kGood) {
            ++good;
          }
        }
        EXPECT_GE(good, 2u) << "object " << e.object.value()
                            << " not restored to factor";
      }
    }
  }
}

TEST(ReplicationFailover, TracerAndStatsReconcile) {
  // Conservation: the tracer's repair lane and counters must agree with
  // the scheduler's own running totals and with per-request accounting.
  Scenario s(/*replicated=*/true);
  obs::Tracer tracer;
  SimulatorConfig config;
  config.tracer = &tracer;
  config.faults.media_error_per_gb = 0.05;
  config.faults.seed = 11;
  config.repair.enabled = true;
  RetrievalSimulator sim(*s.plan, config);

  metrics::ExperimentMetrics agg;
  for (int round = 0; round < 4; ++round) {
    for (const std::uint32_t r : {2u, 1u, 5u, 0u, 3u, 4u}) {
      agg.add(sim.run_request(RequestId{r}));
    }
  }
  sim.drain_repairs();
  const RepairStats& stats = sim.repair_stats();
  ASSERT_GT(stats.jobs_completed, 0u);  // the reconciliation is non-trivial

  EXPECT_EQ(tracer.registry().counter("sched.served_from_replica").value(),
            static_cast<double>(agg.total_served_from_replica()));
  EXPECT_EQ(tracer.registry().counter("repair.completed").value(),
            static_cast<double>(stats.jobs_completed));
  EXPECT_EQ(tracer.registry().counter("repair.copied_bytes").value(),
            static_cast<double>(stats.bytes_copied));

  // One kRepair span per completed job, each with positive duration and a
  // byte total matching the copied bytes.
  std::uint64_t repair_spans = 0;
  std::uint64_t span_bytes = 0;
  for (const obs::Span& span : tracer.spans()) {
    if (span.track != obs::Track::kRepair ||
        span.phase != obs::Phase::kRepair) {
      continue;
    }
    ++repair_spans;
    EXPECT_GT(span.end.count(), span.start.count());
    const auto* rec = sim.catalog().lookup(ObjectId{span.track_id});
    ASSERT_NE(rec, nullptr);
    span_bytes += rec->size.count();
  }
  EXPECT_EQ(repair_spans, stats.jobs_completed);
  EXPECT_EQ(span_bytes, stats.bytes_copied);
  // Requests only observe repairs that finish inside them.
  EXPECT_LE(agg.total_repaired(), stats.jobs_completed);
}

}  // namespace
}  // namespace tapesim::sched
