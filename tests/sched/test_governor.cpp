// The recovery-work governor in isolation: config validation (every
// rejection rule), token-bucket budget accounting with its exact ledger
// invariants, the breaker state machine (trip on failure rate over
// window, deterministic half-open probing, reopen and close), the
// metastable goodput-collapse detector with its hysteresis ladder, and
// the 1:1 mirror into the obs registry.
#include "sched/governor.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace tapesim::sched {
namespace {

GovernorConfig enabled_config() {
  GovernorConfig cfg;
  cfg.enabled = true;
  return cfg;
}

// --- validation: every rejection rule ------------------------------------

TEST(GovernorConfigValidate, DefaultsAreValid) {
  EXPECT_TRUE(GovernorConfig{}.try_validate().ok());
  EXPECT_TRUE(enabled_config().try_validate().ok());
}

TEST(GovernorConfigValidate, BudgetRatiosMustBeInUnitInterval) {
  for (const double bad : {0.0, -0.5, 1.5}) {
    GovernorConfig cfg = enabled_config();
    cfg.budgets.retry_ratio = bad;
    EXPECT_FALSE(cfg.try_validate().ok()) << "retry_ratio=" << bad;

    cfg = enabled_config();
    cfg.budgets.failover_ratio = bad;
    EXPECT_FALSE(cfg.try_validate().ok()) << "failover_ratio=" << bad;

    cfg = enabled_config();
    cfg.budgets.hedge_ratio = bad;
    EXPECT_FALSE(cfg.try_validate().ok()) << "hedge_ratio=" << bad;
  }
  GovernorConfig cfg = enabled_config();
  cfg.budgets.retry_ratio = 1.0;  // the closed end is legal
  EXPECT_TRUE(cfg.try_validate().ok());
}

TEST(GovernorConfigValidate, BudgetBurstMustAllowOneAttempt) {
  GovernorConfig cfg = enabled_config();
  cfg.budgets.burst = 0.5;
  const Status s = cfg.try_validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("burst"), std::string::npos);
}

TEST(GovernorConfigValidate, BreakerThresholdAndCountsMustBePositive) {
  GovernorConfig cfg = enabled_config();
  cfg.breaker.failure_threshold = 0.0;
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.breaker.failure_threshold = 1.25;
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.breaker.min_samples = 0;
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.breaker.close_after = 0;
  EXPECT_FALSE(cfg.try_validate().ok());
}

TEST(GovernorConfigValidate, BreakerWindowsMustBePositive) {
  GovernorConfig cfg = enabled_config();
  cfg.breaker.window = Seconds{0.0};
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.breaker.open_duration = Seconds{-1.0};
  EXPECT_FALSE(cfg.try_validate().ok());
}

TEST(GovernorConfigValidate, MetastableBinAlphaAndCountsMustBePositive) {
  GovernorConfig cfg = enabled_config();
  cfg.metastable.bin = Seconds{0.0};
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.metastable.ewma_alpha = 0.0;
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.metastable.ewma_alpha = 2.0;
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.metastable.trip_bins = 0;
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.metastable.release_bins = 0;
  EXPECT_FALSE(cfg.try_validate().ok());
}

TEST(GovernorConfigValidate, HysteresisBandMustBeOrdered) {
  GovernorConfig cfg = enabled_config();
  cfg.metastable.collapse_fraction = 0.8;
  cfg.metastable.recover_fraction = 0.5;
  const Status s = cfg.try_validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("collapse < recover"), std::string::npos);

  // Equal bounds collapse the band to nothing — also rejected.
  cfg.metastable.collapse_fraction = 0.7;
  cfg.metastable.recover_fraction = 0.7;
  EXPECT_FALSE(cfg.try_validate().ok());

  // Fractions outside their own ranges.
  cfg = enabled_config();
  cfg.metastable.collapse_fraction = 0.0;
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.metastable.collapse_fraction = 1.0;  // must be strictly below 1
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.metastable.recover_fraction = 1.5;
  EXPECT_FALSE(cfg.try_validate().ok());
}

TEST(GovernorConfigValidate, ClampsMustBeInUnitInterval) {
  GovernorConfig cfg = enabled_config();
  cfg.metastable.repair_clamp = 0.0;
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.metastable.budget_clamp = 1.5;
  EXPECT_FALSE(cfg.try_validate().ok());
  cfg = enabled_config();
  cfg.metastable.repair_clamp = 1.0;
  cfg.metastable.budget_clamp = 1.0;
  EXPECT_TRUE(cfg.try_validate().ok());
}

// --- budgets -------------------------------------------------------------

TEST(GovernorBudgets, DisabledGovernorAdmitsEverythingWithoutAccounting) {
  RecoveryGovernor gov;
  gov.configure(GovernorConfig{}, 4, 2, nullptr);
  EXPECT_FALSE(gov.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(gov.admit(GovernorClass::kRetry));
    EXPECT_TRUE(gov.admit(GovernorClass::kHedge, BreakerScope::kLibrary, 0,
                          Seconds{1.0}));
  }
  EXPECT_EQ(gov.stats().ledger(GovernorClass::kRetry).attempts, 0u);
  EXPECT_EQ(gov.stats().ledger(GovernorClass::kHedge).attempts, 0u);
}

TEST(GovernorBudgets, BucketStartsFullAndDrainsToDenial) {
  GovernorConfig cfg = enabled_config();
  cfg.budgets.burst = 3.0;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  EXPECT_TRUE(gov.admit(GovernorClass::kRetry));
  EXPECT_TRUE(gov.admit(GovernorClass::kRetry));
  EXPECT_TRUE(gov.admit(GovernorClass::kRetry));
  EXPECT_FALSE(gov.admit(GovernorClass::kRetry));  // bucket empty
  const BudgetLedger& led = gov.stats().ledger(GovernorClass::kRetry);
  EXPECT_EQ(led.attempts, 4u);
  EXPECT_EQ(led.admitted, 3u);
  EXPECT_EQ(led.fast_failed, 1u);
  EXPECT_EQ(led.budget_denied, 1u);
  EXPECT_EQ(led.breaker_denied, 0u);
  EXPECT_EQ(led.attempts, led.admitted + led.fast_failed);
}

TEST(GovernorBudgets, DemandEarnsTokensAtTheConfiguredRatio) {
  GovernorConfig cfg = enabled_config();
  cfg.budgets.burst = 1.0;
  cfg.budgets.retry_ratio = 0.5;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  EXPECT_TRUE(gov.admit(GovernorClass::kRetry));   // spends the bank
  EXPECT_FALSE(gov.admit(GovernorClass::kRetry));  // empty
  gov.note_demand(GovernorClass::kRetry);          // +0.5
  EXPECT_FALSE(gov.admit(GovernorClass::kRetry));  // 0.5 < 1
  gov.note_demand(GovernorClass::kRetry);          // +0.5 -> 1.0
  EXPECT_TRUE(gov.admit(GovernorClass::kRetry));
  EXPECT_EQ(gov.stats().ledger(GovernorClass::kRetry).demand, 2u);
}

TEST(GovernorBudgets, ClassesAreIndependent) {
  GovernorConfig cfg = enabled_config();
  cfg.budgets.burst = 1.0;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  EXPECT_TRUE(gov.admit(GovernorClass::kRetry));
  EXPECT_FALSE(gov.admit(GovernorClass::kRetry));
  // Draining retry leaves failover and hedge untouched.
  EXPECT_TRUE(gov.admit(GovernorClass::kFailover));
  EXPECT_TRUE(gov.admit(GovernorClass::kHedge));
}

TEST(GovernorBudgets, BudgetsDisabledStillKeepsTheLedger) {
  GovernorConfig cfg = enabled_config();
  cfg.budgets.enabled = false;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(gov.admit(GovernorClass::kRetry));
  }
  const BudgetLedger& led = gov.stats().ledger(GovernorClass::kRetry);
  EXPECT_EQ(led.attempts, 50u);
  EXPECT_EQ(led.admitted, 50u);
  EXPECT_EQ(led.fast_failed, 0u);
}

// --- breakers ------------------------------------------------------------

/// Feeds `n` failures one second apart starting at `start`; returns the
/// time after the last outcome.
Seconds feed_failures(RecoveryGovernor& gov, BreakerScope scope,
                      std::uint32_t lane, Seconds start, int n) {
  Seconds t = start;
  for (int i = 0; i < n; ++i) {
    gov.note_outcome(scope, lane, false, t);
    t += Seconds{1.0};
  }
  return t;
}

TEST(GovernorBreakers, TripsOnFailureRateAfterMinSamples) {
  GovernorConfig cfg = enabled_config();
  cfg.breaker.min_samples = 5;
  cfg.breaker.failure_threshold = 0.6;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  // Four failures: under min_samples, still closed.
  Seconds t = feed_failures(gov, BreakerScope::kDrive, 1, Seconds{10.0}, 4);
  EXPECT_EQ(gov.breaker_state(BreakerScope::kDrive, 1, t),
            BreakerState::kClosed);
  EXPECT_FALSE(gov.breaker_blocked(BreakerScope::kDrive, 1, t));
  // The fifth failure reaches 5/5 >= 0.6: open.
  t = feed_failures(gov, BreakerScope::kDrive, 1, t, 1);
  EXPECT_EQ(gov.breaker_state(BreakerScope::kDrive, 1, t),
            BreakerState::kOpen);
  EXPECT_TRUE(gov.breaker_blocked(BreakerScope::kDrive, 1, t));
  EXPECT_EQ(gov.stats().breaker_opened, 1u);
  EXPECT_EQ(gov.breakers_open(), 1u);
  // Other lanes and scopes are untouched.
  EXPECT_FALSE(gov.breaker_blocked(BreakerScope::kDrive, 0, t));
  EXPECT_FALSE(gov.breaker_blocked(BreakerScope::kLibrary, 0, t));
}

TEST(GovernorBreakers, SuccessesBelowThresholdKeepItClosed) {
  GovernorConfig cfg = enabled_config();
  cfg.breaker.min_samples = 5;
  cfg.breaker.failure_threshold = 0.6;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  Seconds t{0.0};
  // Alternate ok/fail: failure fraction 0.5 < 0.6 forever.
  for (int i = 0; i < 20; ++i) {
    gov.note_outcome(BreakerScope::kRobot, 0, i % 2 == 0, t);
    t += Seconds{1.0};
  }
  EXPECT_EQ(gov.breaker_state(BreakerScope::kRobot, 0, t),
            BreakerState::kClosed);
  EXPECT_EQ(gov.stats().breaker_opened, 0u);
}

TEST(GovernorBreakers, OldOutcomesAgeOutOfTheWindow) {
  GovernorConfig cfg = enabled_config();
  cfg.breaker.min_samples = 5;
  cfg.breaker.window = Seconds{100.0};
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  // Four stale failures, then one fresh failure much later: only one
  // outcome is inside the window, so min_samples is unmet and the
  // breaker stays closed.
  feed_failures(gov, BreakerScope::kDrive, 0, Seconds{0.0}, 4);
  gov.note_outcome(BreakerScope::kDrive, 0, false, Seconds{500.0});
  EXPECT_EQ(gov.breaker_state(BreakerScope::kDrive, 0, Seconds{500.0}),
            BreakerState::kClosed);
}

TEST(GovernorBreakers, HalfOpenProbeClosesAfterConsecutiveSuccesses) {
  GovernorConfig cfg = enabled_config();
  cfg.breaker.min_samples = 3;
  cfg.breaker.open_duration = Seconds{50.0};
  cfg.breaker.close_after = 2;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  Seconds t = feed_failures(gov, BreakerScope::kDrive, 2, Seconds{0.0}, 3);
  ASSERT_TRUE(gov.breaker_blocked(BreakerScope::kDrive, 2, t));
  // Still blocked just before the dwell ends; half-open right at it.
  EXPECT_TRUE(gov.breaker_blocked(BreakerScope::kDrive, 2,
                                  t + Seconds{48.0}));
  const Seconds probe_at = t + Seconds{51.0};
  EXPECT_FALSE(gov.breaker_blocked(BreakerScope::kDrive, 2, probe_at));
  EXPECT_EQ(gov.breaker_state(BreakerScope::kDrive, 2, probe_at),
            BreakerState::kHalfOpen);
  // Two successful probes close it; the first alone does not.
  gov.note_outcome(BreakerScope::kDrive, 2, true, probe_at);
  EXPECT_EQ(gov.breaker_state(BreakerScope::kDrive, 2, probe_at),
            BreakerState::kHalfOpen);
  gov.note_outcome(BreakerScope::kDrive, 2, true, probe_at + Seconds{1.0});
  EXPECT_EQ(gov.breaker_state(BreakerScope::kDrive, 2, probe_at),
            BreakerState::kClosed);
  EXPECT_EQ(gov.stats().breaker_probes, 2u);
  EXPECT_EQ(gov.stats().breaker_closed, 1u);
  EXPECT_EQ(gov.breakers_open(), 0u);
  // The close wiped pre-trip history: one fresh failure cannot re-trip.
  gov.note_outcome(BreakerScope::kDrive, 2, false, probe_at + Seconds{2.0});
  EXPECT_EQ(gov.breaker_state(BreakerScope::kDrive, 2, probe_at + Seconds{2.0}),
            BreakerState::kClosed);
}

TEST(GovernorBreakers, FailedProbeReopensForAnotherDwell) {
  GovernorConfig cfg = enabled_config();
  cfg.breaker.min_samples = 3;
  cfg.breaker.open_duration = Seconds{50.0};
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  Seconds t = feed_failures(gov, BreakerScope::kLibrary, 1, Seconds{0.0}, 3);
  const Seconds probe_at = t + Seconds{60.0};
  EXPECT_FALSE(gov.breaker_blocked(BreakerScope::kLibrary, 1, probe_at));
  gov.note_outcome(BreakerScope::kLibrary, 1, false, probe_at);
  // Re-opened: blocked again for a fresh dwell, same open episode.
  EXPECT_TRUE(gov.breaker_blocked(BreakerScope::kLibrary, 1,
                                  probe_at + Seconds{10.0}));
  EXPECT_EQ(gov.stats().breaker_reopened, 1u);
  EXPECT_EQ(gov.stats().breaker_opened, 1u);
  EXPECT_EQ(gov.breakers_open(), 1u);
}

TEST(GovernorBreakers, OutcomesDuringOpenDwellAreIgnored) {
  GovernorConfig cfg = enabled_config();
  cfg.breaker.min_samples = 3;
  cfg.breaker.open_duration = Seconds{100.0};
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  Seconds t = feed_failures(gov, BreakerScope::kDrive, 0, Seconds{0.0}, 3);
  // In-flight work completing during the dwell is not a probe.
  gov.note_outcome(BreakerScope::kDrive, 0, true, t + Seconds{1.0});
  gov.note_outcome(BreakerScope::kDrive, 0, true, t + Seconds{2.0});
  EXPECT_EQ(gov.stats().breaker_probes, 0u);
  EXPECT_TRUE(gov.breaker_blocked(BreakerScope::kDrive, 0, t + Seconds{3.0}));
}

TEST(GovernorBreakers, AdmitChargesBreakerDenialsToTheLedger) {
  GovernorConfig cfg = enabled_config();
  cfg.breaker.min_samples = 3;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  const Seconds t =
      feed_failures(gov, BreakerScope::kDrive, 0, Seconds{0.0}, 3);
  EXPECT_FALSE(gov.admit(GovernorClass::kRetry, BreakerScope::kDrive, 0, t));
  const BudgetLedger& led = gov.stats().ledger(GovernorClass::kRetry);
  EXPECT_EQ(led.attempts, 1u);
  EXPECT_EQ(led.fast_failed, 1u);
  EXPECT_EQ(led.breaker_denied, 1u);
  EXPECT_EQ(led.budget_denied, 0u);
  // A healthy lane goes through to the budget as usual.
  EXPECT_TRUE(gov.admit(GovernorClass::kRetry, BreakerScope::kDrive, 1, t));
  EXPECT_EQ(led.attempts, 2u);
  EXPECT_EQ(led.admitted, 1u);
  EXPECT_EQ(led.attempts, led.admitted + led.fast_failed);
  EXPECT_EQ(led.fast_failed, led.budget_denied + led.breaker_denied);
}

TEST(GovernorBreakers, BreakersDisabledNeverBlock) {
  GovernorConfig cfg = enabled_config();
  cfg.breaker.enabled = false;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, nullptr);
  const Seconds t =
      feed_failures(gov, BreakerScope::kDrive, 0, Seconds{0.0}, 30);
  EXPECT_FALSE(gov.breaker_blocked(BreakerScope::kDrive, 0, t));
  EXPECT_EQ(gov.stats().breaker_opened, 0u);
}

// --- metastability -------------------------------------------------------

/// Drives the detector through whole bins: `rate` bytes/s for `bins`
/// bins starting at *t, with the queue depth refreshed each bin. Bins
/// are evaluated lazily when time crosses their end, so the final
/// touch at *t flushes the last full bin.
void run_bins(RecoveryGovernor& gov, Seconds* t, double rate, int bins,
              std::size_t depth, Seconds bin) {
  for (int i = 0; i < bins; ++i) {
    gov.note_queue_depth(depth, *t);
    gov.note_served(Bytes{static_cast<std::uint64_t>(rate * bin.count())},
                    *t);
    *t += bin;
  }
  gov.note_queue_depth(depth, *t);
}

GovernorConfig metastable_config() {
  GovernorConfig cfg = enabled_config();
  cfg.metastable.bin = Seconds{100.0};
  // A gentle alpha keeps the baseline near the healthy rate during the
  // trip_bins window before the EWMA freezes (it still adapts at shed
  // level 0, collapsed bins included).
  cfg.metastable.ewma_alpha = 0.05;
  cfg.metastable.collapse_fraction = 0.5;
  cfg.metastable.recover_fraction = 0.8;
  cfg.metastable.min_queue_depth = 4;
  cfg.metastable.trip_bins = 2;
  cfg.metastable.release_bins = 2;
  return cfg;
}

TEST(GovernorMetastable, CollapseWithDeepQueueTripsAfterTripBins) {
  RecoveryGovernor gov;
  gov.configure(metastable_config(), 4, 2, nullptr);
  Seconds t{0.0};
  // Establish a healthy baseline near 1000 B/s.
  run_bins(gov, &t, 1000.0, 5, 0, Seconds{100.0});
  EXPECT_EQ(gov.shed_level(), 0u);
  // Collapse to 10% with a deep queue: trips after two collapsed bins.
  run_bins(gov, &t, 100.0, 1, 8, Seconds{100.0});
  EXPECT_EQ(gov.shed_level(), 0u);  // one bin is not enough
  run_bins(gov, &t, 100.0, 2, 8, Seconds{100.0});
  EXPECT_GE(gov.shed_level(), 1u);
  EXPECT_EQ(gov.stats().metastable_trips, 1u);
  EXPECT_TRUE(gov.scrub_paused());
}

TEST(GovernorMetastable, CollapseWithEmptyQueueIsJustAnIdleFleet) {
  RecoveryGovernor gov;
  gov.configure(metastable_config(), 4, 2, nullptr);
  Seconds t{0.0};
  run_bins(gov, &t, 1000.0, 5, 0, Seconds{100.0});
  // Same rate collapse, but nothing is queued: no trip, ever.
  run_bins(gov, &t, 100.0, 10, 0, Seconds{100.0});
  EXPECT_EQ(gov.shed_level(), 0u);
  EXPECT_EQ(gov.stats().metastable_trips, 0u);
  EXPECT_FALSE(gov.scrub_paused());
}

TEST(GovernorMetastable, LaddersUpToFullShedAndReleasesInReverse) {
  RecoveryGovernor gov;
  gov.configure(metastable_config(), 4, 2, nullptr);
  Seconds t{0.0};
  run_bins(gov, &t, 1000.0, 5, 0, Seconds{100.0});
  // Six collapsed bins: levels 1, 2, 3 (two bins each).
  run_bins(gov, &t, 50.0, 6, 8, Seconds{100.0});
  EXPECT_EQ(gov.shed_level(), 3u);
  EXPECT_EQ(gov.stats().shed_escalations, 3u);
  EXPECT_TRUE(gov.scrub_paused());
  EXPECT_DOUBLE_EQ(gov.repair_clamp(),
                   gov.config().metastable.repair_clamp);
  EXPECT_DOUBLE_EQ(gov.budget_clamp(),
                   gov.config().metastable.budget_clamp);
  // Level 3 is the ceiling: more collapsed bins do not escalate further.
  run_bins(gov, &t, 50.0, 4, 8, Seconds{100.0});
  EXPECT_EQ(gov.shed_level(), 3u);
  // Recovery: goodput back above recover_fraction * EWMA releases one
  // level per release_bins, all the way to zero.
  run_bins(gov, &t, 1000.0, 2, 1, Seconds{100.0});
  EXPECT_EQ(gov.shed_level(), 2u);
  EXPECT_DOUBLE_EQ(gov.budget_clamp(), 1.0);  // level-3 lever released first
  run_bins(gov, &t, 1000.0, 2, 1, Seconds{100.0});
  EXPECT_EQ(gov.shed_level(), 1u);
  EXPECT_DOUBLE_EQ(gov.repair_clamp(), 1.0);
  run_bins(gov, &t, 1000.0, 2, 1, Seconds{100.0});
  EXPECT_EQ(gov.shed_level(), 0u);
  EXPECT_FALSE(gov.scrub_paused());
  EXPECT_EQ(gov.stats().metastable_releases, 1u);
}

TEST(GovernorMetastable, MiddlingGoodputHoldsTheCurrentLevel) {
  RecoveryGovernor gov;
  gov.configure(metastable_config(), 4, 2, nullptr);
  Seconds t{0.0};
  run_bins(gov, &t, 1000.0, 5, 0, Seconds{100.0});
  run_bins(gov, &t, 50.0, 2, 8, Seconds{100.0});
  ASSERT_EQ(gov.shed_level(), 1u);
  // 650 B/s sits inside the hysteresis band of the frozen ~905 B/s
  // baseline (collapse below ~453, recovery above ~724): neither
  // collapsed nor recovered, so the level holds indefinitely.
  run_bins(gov, &t, 650.0, 8, 8, Seconds{100.0});
  EXPECT_EQ(gov.shed_level(), 1u);
}

TEST(GovernorMetastable, EwmaFreezesWhileSheddingSoRecoveryIsHonest) {
  RecoveryGovernor gov;
  gov.configure(metastable_config(), 4, 2, nullptr);
  Seconds t{0.0};
  run_bins(gov, &t, 1000.0, 5, 0, Seconds{100.0});
  run_bins(gov, &t, 50.0, 2, 8, Seconds{100.0});
  ASSERT_GE(gov.shed_level(), 1u);
  // Many more collapsed bins: if the EWMA adapted downward, 50 B/s would
  // eventually count as "recovered". It must not.
  run_bins(gov, &t, 50.0, 30, 8, Seconds{100.0});
  EXPECT_GE(gov.shed_level(), 1u);
  EXPECT_EQ(gov.stats().metastable_releases, 0u);
}

// --- obs mirror + finish -------------------------------------------------

TEST(GovernorMirror, RegistryCountersReconcileExactlyWithStats) {
  obs::Tracer tracer;
  GovernorConfig cfg = metastable_config();
  cfg.budgets.burst = 2.0;
  cfg.breaker.min_samples = 3;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, &tracer);

  // Exercise all three mechanisms.
  gov.note_demand(GovernorClass::kRetry);
  (void)gov.admit(GovernorClass::kRetry);
  (void)gov.admit(GovernorClass::kRetry);
  (void)gov.admit(GovernorClass::kRetry);  // denied: bucket empty
  Seconds t = feed_failures(gov, BreakerScope::kDrive, 0, Seconds{0.0}, 3);
  EXPECT_FALSE(gov.admit(GovernorClass::kFailover, BreakerScope::kDrive, 0, t));
  t += Seconds{400.0};  // past the dwell: half-open
  gov.note_outcome(BreakerScope::kDrive, 0, true, t);
  gov.note_outcome(BreakerScope::kDrive, 0, true, t + Seconds{1.0});
  Seconds mt{0.0};
  run_bins(gov, &mt, 1000.0, 5, 0, Seconds{100.0});
  run_bins(gov, &mt, 50.0, 2, 8, Seconds{100.0});
  gov.finish(t + Seconds{2.0});

  const obs::RegistrySnapshot snap = tracer.registry().snapshot();
  const auto counter = [&snap](const std::string& name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  const GovernorStats& st = gov.stats();
  const BudgetLedger& retry = st.ledger(GovernorClass::kRetry);
  const BudgetLedger& failover = st.ledger(GovernorClass::kFailover);
  EXPECT_EQ(counter("governor.retry_attempts"), retry.attempts);
  EXPECT_EQ(counter("governor.retry_admitted"), retry.admitted);
  EXPECT_EQ(counter("governor.retry_fast_failed"), retry.fast_failed);
  EXPECT_EQ(counter("governor.failover_attempts"), failover.attempts);
  EXPECT_EQ(counter("governor.failover_fast_failed"), failover.fast_failed);
  EXPECT_EQ(counter("governor.breaker_opened"), st.breaker_opened);
  EXPECT_EQ(counter("governor.breaker_closed"), st.breaker_closed);
  EXPECT_EQ(counter("governor.breaker_probes"), st.breaker_probes);
  EXPECT_EQ(counter("governor.metastable_trips"), st.metastable_trips);
  EXPECT_GT(st.breaker_opened, 0u);
  EXPECT_GT(st.metastable_trips, 0u);
  // The gauge reads zero after finish() closed the books.
  const auto gauge = snap.gauges.find("governor.breakers_open");
  ASSERT_NE(gauge, snap.gauges.end());
  EXPECT_DOUBLE_EQ(gauge->second, 0.0);
}

TEST(GovernorFinish, EmitsUnclosedBreakerSpansAndIsIdempotent) {
  obs::Tracer tracer;
  GovernorConfig cfg = enabled_config();
  cfg.breaker.min_samples = 3;
  RecoveryGovernor gov;
  gov.configure(cfg, 4, 2, &tracer);
  const Seconds t =
      feed_failures(gov, BreakerScope::kDrive, 1, Seconds{0.0}, 3);
  ASSERT_EQ(gov.breakers_open(), 1u);
  gov.finish(t);
  EXPECT_EQ(gov.breakers_open(), 0u);
  // Bookkeeping close, not a recovery.
  EXPECT_EQ(gov.stats().breaker_closed, 0u);
  std::size_t breaker_spans = 0;
  for (const obs::Span& s : tracer.spans()) {
    if (s.track == obs::Track::kBreaker &&
        s.phase == obs::Phase::kBreaker) {
      ++breaker_spans;
      EXPECT_NE(s.note.find("(unclosed)"), std::string::npos);
    }
  }
  EXPECT_EQ(breaker_spans, 1u);
  gov.finish(t + Seconds{1.0});  // second call adds nothing
  for (const obs::Span& s : tracer.spans()) {
    if (s.track == obs::Track::kBreaker && s.phase == obs::Phase::kBreaker) {
      breaker_spans -= 1;
    }
  }
  EXPECT_EQ(breaker_spans, 0u);
}

}  // namespace
}  // namespace tapesim::sched
