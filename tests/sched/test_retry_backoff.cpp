// Retry/backoff edge cases in the fault-retry ladders: cap exhaustion in
// the middle of a serve chain, backoff delay monotonicity, and the
// past-SLO short-circuit — a retry whose backoff delay can only land
// after the request's deadline must fail fast instead of burning the
// drive on a doomed attempt.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "fault/model.hpp"
#include "metrics/request_metrics.hpp"
#include "sched/simulator.hpp"
#include "workload/model.hpp"

namespace tapesim::sched {
namespace {

using core::Alignment;
using core::PlacementPlan;
using metrics::RequestStatus;
using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

/// One library, two drives, four 10 GB tapes, five objects — the standard
/// recovery-scenario layout (objects 0 and 1 share tape 0, so request 1
/// serves a two-extent chain off a single mount).
struct Scenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<PlacementPlan> plan;

  Scenario() {
    spec.num_libraries = 1;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                    {ObjectId{1}, 3_GB},
                                    {ObjectId{2}, 4_GB},
                                    {ObjectId{3}, 1_GB},
                                    {ObjectId{4}, 2_GB}};
    std::vector<Request> requests;
    const double p = 1.0 / 6.0;
    requests.push_back(Request{RequestId{0}, p, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, p, {ObjectId{0}, ObjectId{1}}});
    requests.push_back(Request{RequestId{2}, p, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, p, {ObjectId{3}}});
    requests.push_back(Request{RequestId{4}, p, {ObjectId{4}}});
    requests.push_back(Request{RequestId{5}, p, {ObjectId{3}, ObjectId{4}}});
    workload = std::make_unique<Workload>(std::move(objects),
                                          std::move(requests));

    plan = std::make_unique<PlacementPlan>(spec, *workload);
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{0});
    plan->assign(ObjectId{2}, TapeId{1});
    plan->assign(ObjectId{3}, TapeId{2});
    plan->assign(ObjectId{4}, TapeId{3});
    plan->align_all(Alignment::kGivenOrder);
    plan->compute_tape_popularity();
    plan->mount_policy.initial_mounts.emplace_back(DriveId{0}, TapeId{0});
  }
};

TEST(RetryBackoff, DelaysAreExactAndMonotonicallyNonDecreasing) {
  fault::BackoffPolicy p;
  p.max_retries = 6;
  p.initial_delay = Seconds{5.0};
  p.multiplier = 2.0;
  double expected = 5.0;
  for (std::uint32_t k = 0; k < p.max_retries; ++k) {
    EXPECT_DOUBLE_EQ(p.delay(k).count(), expected) << "retry " << k;
    if (k > 0) {
      EXPECT_GE(p.delay(k).count(), p.delay(k - 1).count());
    }
    expected *= p.multiplier;
  }
  // A multiplier of exactly 1 degenerates to a constant ladder, never a
  // shrinking one.
  p.multiplier = 1.0;
  for (std::uint32_t k = 0; k < p.max_retries; ++k) {
    EXPECT_DOUBLE_EQ(p.delay(k).count(), 5.0);
  }
}

TEST(RetryBackoff, MediaRetryCapExhaustsMidChainAndTheChainContinues) {
  // Both extents of request 1 live on tape 0; every read errors. Each
  // extent must burn its full retry ladder (1 attempt + max_retries) and
  // then fail fast — and the chain must move past the first dead extent
  // to the second instead of abandoning the mount.
  Scenario s;
  SimulatorConfig config;
  config.faults.media_error_per_gb = 50.0;  // error probability ~= 1
  config.faults.media_retry.max_retries = 2;
  config.faults.media_retry.initial_delay = Seconds{2.0};
  config.faults.lost_after = 100;  // keep the cartridge readable-ish
  config.faults.seed = 11;
  RetrievalSimulator sim(*s.plan, config);

  const auto o = sim.run_request(RequestId{1});
  EXPECT_EQ(o.status, RequestStatus::kUnavailable);
  EXPECT_EQ(o.bytes_unavailable.count(), o.bytes.count());
  EXPECT_EQ(o.extents_unavailable, 2u);
  // Exactly max_retries retries per extent: the cap was reached on the
  // first extent mid-chain, then again on the second.
  EXPECT_EQ(o.media_retries, 2u * config.faults.media_retry.max_retries);
  EXPECT_EQ(o.bytes_served().count(), 0u);
}

TEST(RetryBackoff, MountRetryCapExhaustionCompletesTapeUnavailable) {
  Scenario s;
  SimulatorConfig config;
  config.faults.mount_failure_prob = 0.999;
  config.faults.mount_retry.max_retries = 2;
  config.faults.max_mount_attempts_per_tape = 3;
  config.faults.seed = 7;
  RetrievalSimulator sim(*s.plan, config);

  // Request 2 is object 2 on tape 1 — NOT the premounted tape 0, so the
  // request has to win a mount and never does.
  const auto o = sim.run_request(RequestId{2});
  EXPECT_EQ(o.status, RequestStatus::kUnavailable);
  EXPECT_EQ(o.bytes_unavailable.count(), o.bytes.count());
  // The drive retried to its cap before the per-tape budget gave up.
  EXPECT_EQ(o.mount_retries, config.faults.mount_retry.max_retries);
}

TEST(RetryBackoff, MountRetryPastDeadlineShortCircuits) {
  // The backoff delay (1e6 s) dwarfs the deadline (5000 s): scheduling
  // the retry would be pure waste, so the ladder must skip straight to
  // the give-up path. No retry is ever scheduled, the request completes
  // unavailable long before its deadline, and the engine clock is never
  // dragged out to the far-future retry.
  Scenario s;
  SimulatorConfig config;
  config.faults.mount_failure_prob = 0.999;
  config.faults.mount_retry.max_retries = 2;
  config.faults.mount_retry.initial_delay = Seconds{1.0e6};
  config.faults.max_mount_attempts_per_tape = 2;
  config.faults.seed = 7;
  RetrievalSimulator sim(*s.plan, config);

  RequestContext ctx;
  ctx.deadline = sim.engine().now() + Seconds{5000.0};
  const auto o = sim.run_request(RequestId{2}, ctx);
  EXPECT_EQ(o.mount_retries, 0u);
  EXPECT_EQ(o.status, RequestStatus::kUnavailable);
  EXPECT_EQ(o.bytes_unavailable.count(), o.bytes.count());
  EXPECT_LT(sim.engine().now().count(), 5000.0);
}

TEST(RetryBackoff, MediaRetryPastDeadlineShortCircuits) {
  Scenario s;
  SimulatorConfig config;
  config.faults.media_error_per_gb = 50.0;
  config.faults.media_retry.max_retries = 2;
  config.faults.media_retry.initial_delay = Seconds{1.0e6};
  config.faults.lost_after = 100;
  config.faults.seed = 11;
  RetrievalSimulator sim(*s.plan, config);

  RequestContext ctx;
  ctx.deadline = sim.engine().now() + Seconds{5000.0};
  const auto o = sim.run_request(RequestId{1}, ctx);
  EXPECT_EQ(o.media_retries, 0u);
  EXPECT_EQ(o.bytes_served().count(), 0u);
  EXPECT_LT(sim.engine().now().count(), 5000.0);
}

TEST(RetryBackoff, WithoutDeadlineHugeBackoffDelaysAreHonored) {
  // The short-circuit must key on the deadline, not on the delay's size:
  // an undeadlined request waits out even absurd backoff.
  Scenario s;
  SimulatorConfig config;
  config.faults.mount_failure_prob = 0.999;
  config.faults.mount_retry.max_retries = 1;
  config.faults.mount_retry.initial_delay = Seconds{1.0e6};
  config.faults.max_mount_attempts_per_tape = 2;
  config.faults.seed = 7;
  RetrievalSimulator sim(*s.plan, config);

  const auto o = sim.run_request(RequestId{2});
  EXPECT_GT(o.mount_retries, 0u);
  EXPECT_GT(sim.engine().now().count(), 1.0e6);
}

}  // namespace
}  // namespace tapesim::sched
