// Overload protection: deadlines, admission control, and load shedding.
//
// Pins the robustness acceptance bar from both ends: (1) with overload
// machinery off — no deadline, inert runner config — the simulator must be
// bit-identical to the pre-overload scheduler, request by request and
// through the full placement pipeline; (2) with it on, deadlines cancel
// work mid-chain with exact byte accounting, the admission queue bounds
// and sheds deterministically, priority displacement protects foreground
// work, background repair pauses under pressure, and the tracer's overload
// counters reconcile with the metrics aggregation.
#include "sched/overload.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/parallel_batch.hpp"
#include "core/plan.hpp"
#include "exp/experiment.hpp"
#include "metrics/request_metrics.hpp"
#include "obs/tracer.hpp"
#include "sched/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/model.hpp"
#include "workload/storm.hpp"

namespace tapesim::sched {
namespace {

using metrics::RequestOutcome;
using metrics::RequestStatus;
using workload::ObjectInfo;
using workload::Request;
using workload::TimedRequest;
using workload::Workload;

/// One library, two drives, four 10 GB tapes, five objects on distinct
/// layouts — the smallest system where a request spans a mount, a robot
/// exchange, and a multi-extent serve chain.
struct Scenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<core::PlacementPlan> plan;

  Scenario() {
    spec.num_libraries = 1;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                    {ObjectId{1}, 3_GB},
                                    {ObjectId{2}, 4_GB},
                                    {ObjectId{3}, 1_GB},
                                    {ObjectId{4}, 2_GB}};
    std::vector<Request> requests;
    const double p = 1.0 / 6.0;
    requests.push_back(Request{RequestId{0}, p, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, p, {ObjectId{0}, ObjectId{1}}});
    requests.push_back(Request{RequestId{2}, p, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, p, {ObjectId{3}}});
    requests.push_back(Request{RequestId{4}, p, {ObjectId{4}}});
    requests.push_back(Request{RequestId{5}, p, {ObjectId{3}, ObjectId{4}}});
    workload = std::make_unique<Workload>(std::move(objects),
                                          std::move(requests));

    plan = std::make_unique<core::PlacementPlan>(spec, *workload);
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{0});
    plan->assign(ObjectId{2}, TapeId{1});
    plan->assign(ObjectId{3}, TapeId{2});
    plan->assign(ObjectId{4}, TapeId{3});
    plan->align_all(core::Alignment::kGivenOrder);
    plan->compute_tape_popularity();
    plan->mount_policy.initial_mounts.emplace_back(DriveId{0}, TapeId{0});
  }
};

TEST(OverloadConfig, Validation) {
  OverloadConfig c;
  EXPECT_TRUE(c.try_validate().ok());

  c.deadline.enabled = true;
  c.deadline.base = Seconds{0.0};
  EXPECT_FALSE(c.try_validate().ok());

  c = OverloadConfig{};
  c.admission.token_rate = 0.1;
  c.admission.token_burst = 0.5;
  EXPECT_FALSE(c.try_validate().ok());

  c = OverloadConfig{};
  c.admission.reject_hopeless = true;  // without deadlines: meaningless
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(OverloadConfig, DeadlineScalesWithSize) {
  DeadlinePolicy d;
  EXPECT_EQ(d.deadline_for(10_GB).count(),
            metrics::RequestOutcome::kNoDeadline);
  d.enabled = true;
  d.base = Seconds{100.0};
  d.per_gb = Seconds{10.0};
  EXPECT_DOUBLE_EQ(d.deadline_for(0_B).count(), 100.0);
  EXPECT_DOUBLE_EQ(d.deadline_for(10_GB).count(), 200.0);
}

TEST(Overload, NoDeadlineContextBitIdenticalToBareRunRequest) {
  // run_request(id, {}) must replay the exact event sequence of
  // run_request(id) — the overload-off guard at request granularity.
  Scenario a;
  Scenario b;
  RetrievalSimulator plain(*a.plan);
  RetrievalSimulator with_context(*b.plan);

  for (int round = 0; round < 3; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const RequestOutcome x = plain.run_request(RequestId{r});
      const RequestOutcome y =
          with_context.run_request(RequestId{r}, RequestContext{});
      EXPECT_EQ(x.response.count(), y.response.count());
      EXPECT_EQ(x.seek.count(), y.seek.count());
      EXPECT_EQ(x.transfer.count(), y.transfer.count());
      EXPECT_EQ(x.switch_time.count(), y.switch_time.count());
      EXPECT_EQ(x.tape_switches, y.tape_switches);
      EXPECT_EQ(y.status, RequestStatus::kServed);
      EXPECT_EQ(y.bytes_expired.count(), 0u);
      EXPECT_EQ(y.deadline.count(), metrics::RequestOutcome::kNoDeadline);
    }
  }
  EXPECT_EQ(plain.total_switches(), with_context.total_switches());
  EXPECT_EQ(plain.engine().now().count(),
            with_context.engine().now().count());
}

TEST(Overload, GenerousDeadlineBitIdenticalToNone) {
  // A deadline the request cannot miss: the armed-then-cancelled deadline
  // event must not perturb a single timing, and the engine clock must not
  // be dragged out to the (far-future) deadline.
  Scenario a;
  Scenario b;
  RetrievalSimulator plain(*a.plan);
  RetrievalSimulator guarded(*b.plan);

  for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
    RequestContext ctx;
    ctx.deadline = guarded.engine().now() + Seconds{1e9};
    const RequestOutcome x = plain.run_request(RequestId{r});
    const RequestOutcome y = guarded.run_request(RequestId{r}, ctx);
    EXPECT_EQ(x.response.count(), y.response.count());
    EXPECT_EQ(x.switch_time.count(), y.switch_time.count());
    EXPECT_EQ(y.status, RequestStatus::kServed);
    EXPECT_TRUE(y.met_deadline());
  }
  EXPECT_EQ(plain.engine().now().count(), guarded.engine().now().count());
}

TEST(Overload, DeadlineExpiresMidChainWithExactAccounting) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);

  // Request 1 needs 5 GB across two extents of tape 0 (mounted): far more
  // transfer time than a 1-second budget.
  RequestContext tight;
  tight.deadline = sim.engine().now() + Seconds{1.0};
  tight.priority = Priority::kBatch;
  const RequestOutcome o = sim.run_request(RequestId{1}, tight);
  EXPECT_EQ(o.status, RequestStatus::kDeadlineExpired);
  EXPECT_EQ(o.priority, Priority::kBatch);
  EXPECT_DOUBLE_EQ(o.response.count(), 1.0);  // answered at the deadline
  EXPECT_DOUBLE_EQ(o.deadline.count(), 1.0);
  EXPECT_FALSE(o.met_deadline());
  // Conservation: every byte is served, expired, or unavailable.
  EXPECT_EQ(o.bytes.count(), (5_GB).count());
  EXPECT_EQ((o.bytes_served() + o.bytes_expired + o.bytes_unavailable).count(),
            o.bytes.count());
  EXPECT_GT(o.extents_expired, 0u);

  // The simulator must come out of the cancellation in a clean state:
  // the same request with no deadline now serves fully.
  const RequestOutcome again = sim.run_request(RequestId{1});
  EXPECT_EQ(again.status, RequestStatus::kServed);
  EXPECT_EQ(again.bytes_served().count(), (5_GB).count());
}

TEST(Overload, DeadlineDuringRobotSwitchCancelsCleanly) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);

  // Request 2 lives on offline tape 1: the whole service is a robot
  // exchange plus load/locate/transfer. A 10-second budget expires while
  // the switch machinery (rewind/robot/load) is still in flight, which
  // exercises the robot-ticket cancellation and the doomed-drain guards.
  RequestContext tight;
  tight.deadline = sim.engine().now() + Seconds{10.0};
  const RequestOutcome o = sim.run_request(RequestId{2}, tight);
  EXPECT_EQ(o.status, RequestStatus::kDeadlineExpired);
  EXPECT_DOUBLE_EQ(o.response.count(), 10.0);
  EXPECT_EQ(o.bytes_expired.count(), (4_GB).count());

  // Afterwards every request must still serve: no wedged drive, no lost
  // robot slot, no stale queue entry.
  for (const std::uint32_t r : {0u, 1u, 2u, 3u, 4u, 5u}) {
    const RequestOutcome again = sim.run_request(RequestId{r});
    EXPECT_EQ(again.status, RequestStatus::kServed) << "request " << r;
  }
}

TEST(Overload, DeadOnArrivalTouchesNothing) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);
  sim.run_request(RequestId{0});  // advance the clock past zero
  const double clock = sim.engine().now().count();

  RequestContext hopeless;
  hopeless.deadline = Seconds{0.0};  // already in the past
  const RequestOutcome o = sim.run_request(RequestId{2}, hopeless);
  EXPECT_EQ(o.status, RequestStatus::kDeadlineExpired);
  EXPECT_DOUBLE_EQ(o.response.count(), 0.0);
  EXPECT_EQ(o.bytes_expired.count(), o.bytes.count());
  EXPECT_EQ(sim.engine().now().count(), clock);  // no engine work at all
}

TEST(OverloadRunner, InertConfigMatchesSequentialBaseline) {
  // All arrivals at t = 0 with the default config: the runner degenerates
  // to the plain sequential loop — bit-identical outcomes, same clock.
  Scenario a;
  Scenario b;
  RetrievalSimulator plain(*a.plan);
  RetrievalSimulator managed(*b.plan);

  const std::vector<std::uint32_t> order{2, 5, 1, 0, 3, 4};
  std::vector<TimedRequest> arrivals;
  for (const std::uint32_t r : order) {
    arrivals.push_back(TimedRequest{Seconds{0.0}, RequestId{r}});
  }
  OverloadRunner runner(managed, OverloadConfig{});
  const OverloadReport report = runner.run(arrivals);

  ASSERT_EQ(report.outcomes.size(), order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const RequestOutcome x = plain.run_request(RequestId{order[i]});
    const RequestOutcome& y = report.outcomes[i].outcome;
    EXPECT_EQ(y.request.value(), order[i]);  // FIFO service order
    EXPECT_EQ(x.response.count(), y.response.count());
    EXPECT_EQ(x.switch_time.count(), y.switch_time.count());
  }
  EXPECT_EQ(report.served, order.size());
  EXPECT_EQ(report.shed_total(), 0u);
  EXPECT_EQ(report.expired_total(), 0u);
  EXPECT_EQ(plain.engine().now().count(), managed.engine().now().count());
  EXPECT_FALSE(managed.overload_pressure());  // cleared after the run
}

TEST(OverloadRunner, TokenBucketShedsBeyondBurst) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);
  OverloadConfig config;
  config.shed = ShedPolicy::kTailDrop;
  config.admission.token_rate = 1e-6;  // effectively no refill
  config.admission.token_burst = 2.0;

  std::vector<TimedRequest> arrivals;
  for (std::uint32_t i = 0; i < 6; ++i) {
    arrivals.push_back(TimedRequest{Seconds{static_cast<double>(i)},
                                    RequestId{i % 6}});
  }
  OverloadRunner runner(sim, config);
  const OverloadReport report = runner.run(arrivals);
  EXPECT_EQ(report.served, 2u);
  EXPECT_EQ(report.shed_admit, 4u);
  EXPECT_EQ(report.metrics.shed_count(), 4u);
  EXPECT_EQ(report.metrics.count(), 2u);  // shed requests never sample
  // The first two arrivals hold the tokens; the rest bounce.
  EXPECT_EQ(report.outcomes.size(), 6u);
}

TEST(OverloadRunner, DepthBoundTailDropRejectsNewest) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);
  OverloadConfig config;
  config.shed = ShedPolicy::kTailDrop;
  config.admission.max_queue_depth = 2;

  const std::vector<TimedRequest> arrivals{
      TimedRequest{Seconds{0.0}, RequestId{0}, Priority::kBatch},
      TimedRequest{Seconds{0.0}, RequestId{3}, Priority::kForeground},
      TimedRequest{Seconds{0.0}, RequestId{4}, Priority::kForeground},
  };
  OverloadRunner runner(sim, config);
  const OverloadReport report = runner.run(arrivals);
  EXPECT_EQ(report.served, 2u);
  EXPECT_EQ(report.shed_admit, 1u);
  EXPECT_EQ(report.shed_evicted, 0u);
  // Tail drop is priority-blind: the newest arrival (request 4) bounced.
  const auto& shed = report.outcomes[0];  // recorded at its arrival
  EXPECT_EQ(shed.outcome.status, RequestStatus::kShed);
  EXPECT_EQ(shed.outcome.request.value(), 4u);
}

TEST(OverloadRunner, PriorityShedderEvictsBatchForForeground) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);
  OverloadConfig config;
  config.shed = ShedPolicy::kPriority;
  config.admission.max_queue_depth = 2;

  const std::vector<TimedRequest> arrivals{
      TimedRequest{Seconds{0.0}, RequestId{0}, Priority::kBatch},
      TimedRequest{Seconds{0.0}, RequestId{3}, Priority::kForeground},
      TimedRequest{Seconds{0.0}, RequestId{4}, Priority::kForeground},
  };
  OverloadRunner runner(sim, config);
  const OverloadReport report = runner.run(arrivals);
  // The batch request is displaced by the third (foreground) arrival.
  EXPECT_EQ(report.served, 2u);
  EXPECT_EQ(report.shed_evicted, 1u);
  EXPECT_EQ(report.shed_admit, 0u);
  const auto& shed = report.outcomes[0];
  EXPECT_EQ(shed.outcome.status, RequestStatus::kShed);
  EXPECT_EQ(shed.outcome.request.value(), 0u);
  EXPECT_EQ(shed.outcome.priority, Priority::kBatch);
  // Both foreground requests actually served.
  for (std::size_t i = 1; i < report.outcomes.size(); ++i) {
    EXPECT_EQ(report.outcomes[i].outcome.status, RequestStatus::kServed);
  }
}

TEST(OverloadRunner, PriorityPolicyServesForegroundFirst) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);
  OverloadConfig config;
  config.shed = ShedPolicy::kPriority;

  const std::vector<TimedRequest> arrivals{
      TimedRequest{Seconds{0.0}, RequestId{0}, Priority::kBatch},
      TimedRequest{Seconds{0.0}, RequestId{3}, Priority::kForeground},
  };
  OverloadRunner runner(sim, config);
  const OverloadReport report = runner.run(arrivals);
  ASSERT_EQ(report.outcomes.size(), 2u);
  // Despite arriving second, the foreground request serves first.
  EXPECT_EQ(report.outcomes[0].outcome.request.value(), 3u);
  EXPECT_EQ(report.outcomes[1].outcome.request.value(), 0u);
  EXPECT_EQ(report.served, 2u);
}

TEST(OverloadRunner, QueuedRequestExpiresBeforeService) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);
  OverloadConfig config;
  config.deadline.enabled = true;
  config.deadline.base = Seconds{30.0};  // far below one service time
  config.deadline.per_gb = Seconds{0.0};

  const std::vector<TimedRequest> arrivals{
      TimedRequest{Seconds{0.0}, RequestId{1}},
      TimedRequest{Seconds{0.0}, RequestId{2}},
  };
  OverloadRunner runner(sim, config);
  const OverloadReport report = runner.run(arrivals);
  // The first request expires mid-service (30 s cannot cover a transfer);
  // by then the second's deadline has passed while queued.
  EXPECT_EQ(report.expired_in_service, 1u);
  EXPECT_EQ(report.expired_in_queue, 1u);
  EXPECT_EQ(report.metrics.expired_count(), 2u);
  EXPECT_EQ(report.served, 0u);
  // The culled request never consumed engine time: all bytes expired.
  const auto& culled = report.outcomes[1];
  EXPECT_EQ(culled.outcome.status, RequestStatus::kDeadlineExpired);
  EXPECT_EQ(culled.outcome.bytes_expired.count(),
            culled.outcome.bytes.count());
  EXPECT_DOUBLE_EQ(culled.sojourn.count(), 30.0);
  EXPECT_EQ(report.admitted_sojourn.count(), 2u);
}

TEST(OverloadRunner, RejectHopelessShedsAtAdmission) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);
  // Warm up: serving the same request repeatedly reaches a fixed point
  // (locate back, same transfers), giving a stable service time S.
  OverloadConfig generous;
  generous.shed = ShedPolicy::kTailDrop;
  generous.deadline.enabled = true;
  generous.deadline.base = Seconds{1e6};
  generous.deadline.per_gb = Seconds{0.0};  // budget purely from `base`
  generous.admission.reject_hopeless = true;
  OverloadRunner warmup(sim, generous);
  const OverloadReport warm = warmup.run(std::vector<TimedRequest>{
      {Seconds{0.0}, RequestId{1}}, {Seconds{1e5}, RequestId{1}}});
  ASSERT_EQ(warm.served, 2u);
  const double service = warm.outcomes[1].outcome.response.count();

  // Budget 1.6 S: one request fits, two in a row provably do not. Of
  // three simultaneous arrivals the first is admitted and served; the
  // other two are hopeless behind its backlog and shed at admission
  // instead of expiring later. (Runners keep their own estimator, so the
  // strict one is calibrated with one served probe first.)
  OverloadConfig tight = generous;
  tight.deadline.base = Seconds{service * 1.6};
  OverloadRunner strict(sim, tight);
  const OverloadReport probe = strict.run(
      std::vector<TimedRequest>{{sim.engine().now(), RequestId{1}}});
  ASSERT_EQ(probe.served, 1u);
  ASSERT_EQ(strict.estimator().observations(), 1u);

  const Seconds t = sim.engine().now();
  const OverloadReport report = strict.run(std::vector<TimedRequest>{
      {t, RequestId{1}}, {t, RequestId{1}}, {t, RequestId{1}}});
  EXPECT_EQ(report.served, 1u);
  EXPECT_EQ(report.shed_hopeless, 2u);
  EXPECT_EQ(report.expired_total(), 0u);
}

TEST(OverloadRunner, ByteBoundPerLibrarySheds) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);
  OverloadConfig config;
  config.shed = ShedPolicy::kTailDrop;
  config.admission.max_queued_bytes_per_library = 6_GB;

  // All on library 0: 5 GB + 4 GB exceeds the 6 GB bound; the second
  // arrival sheds, the third (1 GB) still fits.
  const std::vector<TimedRequest> arrivals{
      TimedRequest{Seconds{0.0}, RequestId{1}},  // 5 GB
      TimedRequest{Seconds{0.0}, RequestId{2}},  // 4 GB -> shed
      TimedRequest{Seconds{0.0}, RequestId{3}},  // 1 GB -> fits
  };
  OverloadRunner runner(sim, config);
  const OverloadReport report = runner.run(arrivals);
  EXPECT_EQ(report.shed_admit, 1u);
  EXPECT_EQ(report.served, 2u);
  EXPECT_EQ(report.outcomes[0].outcome.request.value(), 2u);
  EXPECT_EQ(report.outcomes[0].outcome.status, RequestStatus::kShed);
}

TEST(OverloadRunner, CountersReconcileWithMetrics) {
  Scenario s;
  obs::Tracer tracer;
  SimulatorConfig sim_config;
  sim_config.tracer = &tracer;
  RetrievalSimulator sim(*s.plan, sim_config);

  OverloadConfig config;
  config.shed = ShedPolicy::kPriority;
  config.deadline.enabled = true;
  config.deadline.base = Seconds{400.0};
  config.deadline.per_gb = Seconds{60.0};
  config.admission.max_queue_depth = 3;

  workload::RequestSampler sampler{*s.workload};
  workload::StormConfig storm;
  storm.base_rate = 1.0 / 400.0;
  storm.burst_rate = 1.0 / 20.0;
  storm.mean_calm_duration = Seconds{2000.0};
  storm.mean_burst_duration = Seconds{1000.0};
  Rng rng{17};
  const auto arrivals = storm_arrivals(sampler, storm, 60, rng);

  OverloadRunner runner(sim, config, &tracer);
  const OverloadReport report = runner.run(arrivals);

  // Every arrival is accounted exactly once.
  EXPECT_EQ(report.outcomes.size(), arrivals.size());
  EXPECT_EQ(report.metrics.count() + report.metrics.shed_count(),
            arrivals.size());
  EXPECT_EQ(report.shed_total(), report.metrics.shed_count());
  EXPECT_EQ(report.expired_total(), report.metrics.expired_count());
  EXPECT_EQ(report.served, report.metrics.served_count());

  // The tracer's overload counters mirror the report exactly.
  EXPECT_EQ(tracer.registry().counter("overload.served").value(),
            static_cast<double>(report.served));
  EXPECT_EQ(tracer.registry().counter("overload.shed").value(),
            static_cast<double>(report.shed_total()));
  EXPECT_EQ(tracer.registry().counter("overload.expired").value(),
            static_cast<double>(report.expired_total()));

  // Shed decisions leave zero-width spans on the overload track; expired
  // requests leave expiry spans.
  std::uint64_t shed_spans = 0;
  std::uint64_t expired_spans = 0;
  for (const obs::Span& span : tracer.spans()) {
    if (span.track != obs::Track::kOverload) continue;
    if (span.phase == obs::Phase::kShed) ++shed_spans;
    if (span.phase == obs::Phase::kExpired) ++expired_spans;
  }
  EXPECT_EQ(shed_spans, report.shed_total());
  EXPECT_EQ(expired_spans, report.expired_total());
}

TEST(Overload, RepairPausesUnderPressureAndResumes) {
  // Degrade cartridges until repair jobs queue up, with pressure held
  // high: not a single job may claim a drive. Clearing pressure lets the
  // backlog drain.
  Scenario base;
  auto replicated = std::make_unique<core::PlacementPlan>(
      base.spec, *base.workload);
  replicated->assign(ObjectId{0}, TapeId{0});
  replicated->assign(ObjectId{1}, TapeId{0});
  replicated->assign(ObjectId{2}, TapeId{1});
  replicated->assign(ObjectId{3}, TapeId{2});
  replicated->assign(ObjectId{4}, TapeId{3});
  replicated->align_all(core::Alignment::kGivenOrder);
  replicated->freeze_layout();
  replicated->assign_replica(ObjectId{0}, TapeId{1});
  replicated->assign_replica(ObjectId{1}, TapeId{2});
  replicated->assign_replica(ObjectId{2}, TapeId{3});
  replicated->assign_replica(ObjectId{3}, TapeId{0});
  replicated->assign_replica(ObjectId{4}, TapeId{2});
  replicated->align_all(core::Alignment::kGivenOrder);
  replicated->compute_tape_popularity();
  replicated->mount_policy.initial_mounts.emplace_back(DriveId{0}, TapeId{0});

  SimulatorConfig config;
  config.faults.media_error_per_gb = 0.05;
  config.faults.seed = 11;
  config.repair.enabled = true;
  RetrievalSimulator sim(*replicated, config);

  sim.set_overload_pressure(true);
  for (int round = 0; round < 4; ++round) {
    for (const std::uint32_t r : {2u, 1u, 5u, 0u, 3u, 4u}) {
      sim.run_request(RequestId{r});
    }
  }
  ASSERT_GT(sim.repair_stats().jobs_scheduled, 0u)
      << "seed no longer degrades a cartridge";
  // Pressure held the whole time: jobs queued, none ran.
  EXPECT_EQ(sim.repair_stats().jobs_completed, 0u);
  EXPECT_GT(sim.repair_backlog(), 0u);

  sim.set_overload_pressure(false);
  sim.drain_repairs();
  EXPECT_GT(sim.repair_stats().jobs_completed, 0u);
}

TEST(Overload, OffPipelineBitIdentical) {
  // Full place -> sample -> simulate pipeline (mirrors the r = 1
  // replication guard): running the sampled stream through the overload
  // runner with an inert config must not perturb a single event relative
  // to the pre-overload sequential loop.
  exp::ExperimentConfig cfg;
  cfg.simulated_requests = 40;
  const exp::Experiment experiment(cfg);
  const core::ParallelBatchPlacement scheme{{}};
  const exp::SchemeRun baseline = experiment.run(scheme);

  core::PlacementContext context;
  context.workload = &experiment.workload();
  context.spec = &experiment.config().spec;
  context.clusters = &experiment.clusters();
  const core::PlacementPlan plan = scheme.place(context);
  RetrievalSimulator sim(plan);

  Rng rng{cfg.seed};
  Rng sample_rng = rng.fork(0x5251);  // the Experiment sampling substream
  const workload::RequestSampler sampler(experiment.workload());
  std::vector<TimedRequest> arrivals;
  for (std::uint32_t i = 0; i < cfg.simulated_requests; ++i) {
    arrivals.push_back(TimedRequest{Seconds{0.0}, sampler.sample(sample_rng)});
  }
  OverloadRunner runner(sim, OverloadConfig{});
  const OverloadReport report = runner.run(arrivals);

  EXPECT_EQ(report.metrics.mean_response().count(),
            baseline.metrics.mean_response().count());
  EXPECT_EQ(report.metrics.mean_switch().count(),
            baseline.metrics.mean_switch().count());
  EXPECT_EQ(report.metrics.mean_bandwidth().count(),
            baseline.metrics.mean_bandwidth().count());
  EXPECT_EQ(sim.total_switches(), baseline.total_switches);
  EXPECT_EQ(report.served + report.shed_total() + report.expired_total(),
            static_cast<std::uint64_t>(cfg.simulated_requests));
  EXPECT_EQ(report.shed_total(), 0u);
  EXPECT_EQ(report.expired_total(), 0u);
}

}  // namespace
}  // namespace tapesim::sched
