#include "trace/workload_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/generator.hpp"

namespace tapesim::trace {
namespace {

workload::Workload sample(std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.num_objects = 300;
  config.num_requests = 15;
  config.min_objects_per_request = 5;
  config.max_objects_per_request = 12;
  config.object_groups = 10;
  Rng rng{seed};
  return workload::generate_workload(config, rng);
}

TEST(WorkloadIo, RoundTripsExactly) {
  const workload::Workload original = sample(1);
  std::stringstream objects;
  std::stringstream requests;
  save_workload(original, objects, requests);
  const workload::Workload loaded = load_workload(objects, requests);

  ASSERT_EQ(loaded.object_count(), original.object_count());
  ASSERT_EQ(loaded.request_count(), original.request_count());
  for (std::uint32_t i = 0; i < original.object_count(); ++i) {
    EXPECT_EQ(loaded.object_size(ObjectId{i}),
              original.object_size(ObjectId{i}));
  }
  for (std::uint32_t r = 0; r < original.request_count(); ++r) {
    EXPECT_EQ(loaded.requests()[r].objects, original.requests()[r].objects);
    EXPECT_DOUBLE_EQ(loaded.requests()[r].probability,
                     original.requests()[r].probability);
  }
  // Derived quantities follow.
  for (std::uint32_t i = 0; i < original.object_count(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.object_probability(ObjectId{i}),
                     original.object_probability(ObjectId{i}));
  }
}

TEST(WorkloadIo, FileRoundTrip) {
  const workload::Workload original = sample(2);
  const std::string prefix = "/tmp/tapesim_wl_io_test";
  save_workload(original, prefix);
  const workload::Workload loaded = load_workload(prefix);
  EXPECT_EQ(loaded.object_count(), original.object_count());
  EXPECT_EQ(loaded.total_object_bytes(), original.total_object_bytes());
  std::remove((prefix + ".objects.csv").c_str());
  std::remove((prefix + ".requests.csv").c_str());
}

TEST(WorkloadIo, RejectsMissingHeader) {
  std::stringstream objects{"wrong\n0,100\n"};
  std::stringstream requests{"request,probability,objects\n"};
  EXPECT_THROW(load_workload(objects, requests), std::runtime_error);
}

TEST(WorkloadIo, RejectsMalformedRow) {
  std::stringstream objects{"object,size_bytes\n0,banana\n"};
  std::stringstream requests{"request,probability,objects\n"};
  EXPECT_THROW(load_workload(objects, requests), std::runtime_error);
}

TEST(WorkloadIo, RejectsMissingFile) {
  EXPECT_THROW(load_workload("/nonexistent/prefix"), std::runtime_error);
}

TEST(WorkloadIo, RejectsInconsistentWorkload) {
  // Request references an object that does not exist -> validate() aborts,
  // so this is a death test.
  std::stringstream objects{"object,size_bytes\n0,100\n"};
  std::stringstream requests{"request,probability,objects\n0,1.0,0 5\n"};
  EXPECT_DEATH((void)load_workload(objects, requests), "invariant violated");
}

}  // namespace
}  // namespace tapesim::trace
