#include "trace/plan_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cluster/hierarchy.hpp"
#include "core/parallel_batch.hpp"
#include "exp/experiment.hpp"
#include "trace/outcome_log.hpp"
#include "workload/generator.hpp"

namespace tapesim::trace {
namespace {

struct PlanIoFixture : ::testing::Test {
  tape::SystemSpec spec = [] {
    tape::SystemSpec s;
    s.num_libraries = 2;
    s.library.drives_per_library = 3;
    s.library.tapes_per_library = 10;
    s.library.tape_capacity = 40_GB;
    return s;
  }();
  workload::Workload wl = [] {
    workload::WorkloadConfig config;
    config.num_objects = 500;
    config.num_requests = 20;
    config.min_objects_per_request = 10;
    config.max_objects_per_request = 20;
    config.object_groups = 15;
    config.min_object_size = Bytes{100ULL * 1000 * 1000};
    config.max_object_size = 1_GB;
    Rng rng{5};
    return workload::generate_workload(config, rng);
  }();
  cluster::ObjectClusters clusters = [this] {
    cluster::ClusterConstraints constraints;
    constraints.max_bytes = 36_GB;
    return cluster::cluster_by_requests(wl, constraints);
  }();

  core::PlacementPlan make_plan() {
    core::ParallelBatchParams params;
    params.switch_drives = 1;
    const core::ParallelBatchPlacement scheme(params);
    return scheme.place(core::PlacementContext{&wl, &spec, &clusters});
  }
};

TEST_F(PlanIoFixture, RoundTripPreservesLayoutAndPolicy) {
  const core::PlacementPlan original = make_plan();
  std::stringstream layout;
  std::stringstream policy;
  save_plan(original, layout, policy);
  const core::PlacementPlan loaded = load_plan(spec, wl, layout, policy);

  for (std::uint32_t i = 0; i < wl.object_count(); ++i) {
    EXPECT_EQ(loaded.tape_of(ObjectId{i}), original.tape_of(ObjectId{i}));
  }
  for (std::uint32_t tv = 0; tv < spec.total_tapes(); ++tv) {
    const auto a = original.on_tape(TapeId{tv});
    const auto b = loaded.on_tape(TapeId{tv});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].object, b[j].object);
      EXPECT_EQ(a[j].offset, b[j].offset);
    }
  }
  EXPECT_EQ(loaded.mount_policy.replacement,
            original.mount_policy.replacement);
  EXPECT_EQ(loaded.mount_policy.initial_mounts,
            original.mount_policy.initial_mounts);
  ASSERT_EQ(loaded.mount_policy.drive_pinned.size(),
            original.mount_policy.drive_pinned.size());
  EXPECT_EQ(loaded.mount_policy.drive_pinned,
            original.mount_policy.drive_pinned);
}

TEST_F(PlanIoFixture, ReloadedPlanSimulatesIdentically) {
  const core::PlacementPlan original = make_plan();
  std::stringstream layout;
  std::stringstream policy;
  save_plan(original, layout, policy);
  const core::PlacementPlan loaded = load_plan(spec, wl, layout, policy);

  const auto a = exp::simulate_plan(original, 30, 99);
  const auto b = exp::simulate_plan(loaded, 30, 99);
  EXPECT_DOUBLE_EQ(a.mean_response().count(), b.mean_response().count());
  EXPECT_DOUBLE_EQ(a.mean_bandwidth().count(), b.mean_bandwidth().count());
}

TEST_F(PlanIoFixture, FileRoundTrip) {
  const core::PlacementPlan original = make_plan();
  const std::string prefix = "/tmp/tapesim_plan_io_test";
  save_plan(original, prefix);
  const core::PlacementPlan loaded = load_plan(spec, wl, prefix);
  EXPECT_EQ(loaded.tapes_used(), original.tapes_used());
  std::remove((prefix + ".layout.csv").c_str());
  std::remove((prefix + ".mounts.csv").c_str());
}

TEST_F(PlanIoFixture, RejectsCorruptedLayout) {
  const core::PlacementPlan original = make_plan();
  std::stringstream layout;
  std::stringstream policy;
  save_plan(original, layout, policy);
  // Corrupt a size field: reconstruction must detect the inconsistency.
  std::string text = layout.str();
  const auto pos = text.find_last_of(',');
  text.replace(pos + 1, std::string::npos, "999\n");
  std::stringstream corrupted{text};
  EXPECT_THROW((void)load_plan(spec, wl, corrupted, policy),
               std::runtime_error);
}

TEST_F(PlanIoFixture, RejectsUnknownPolicy) {
  const core::PlacementPlan original = make_plan();
  std::stringstream layout;
  std::stringstream policy;
  save_plan(original, layout, policy);
  std::stringstream bad_policy{"replacement,quantum\ndrive,tape,pinned\n"};
  EXPECT_THROW((void)load_plan(spec, wl, layout, bad_policy),
               std::runtime_error);
}

TEST(OutcomeLogTest, WritesHeaderAndRows) {
  std::stringstream out;
  OutcomeLog log(out);
  metrics::RequestOutcome outcome;
  outcome.request = RequestId{3};
  outcome.bytes = 10_GB;
  outcome.response = Seconds{100.0};
  outcome.transfer = Seconds{80.0};
  outcome.seek = Seconds{15.0};
  outcome.switch_time = Seconds{5.0};
  outcome.tape_switches = 2;
  outcome.tapes_touched = 3;
  outcome.drives_used = 3;
  log.record(outcome);
  log.record(outcome);
  EXPECT_EQ(log.rows(), 2u);
  std::string line;
  std::getline(out, line);
  EXPECT_EQ(line, OutcomeLog::kHeader);
  std::getline(out, line);
  EXPECT_EQ(line, "3,10000000000,100,5,15,80,0,2,3,3,100");
}

}  // namespace
}  // namespace tapesim::trace
