// Plan serialization must round-trip every scheme's plan, not just the
// batch scheme's (different mount policies, alignments, pinning).
#include <gtest/gtest.h>

#include "cluster/hierarchy.hpp"
#include "exp/experiment.hpp"
#include "trace/plan_io.hpp"

namespace tapesim::trace {
namespace {

class PlanIoSchemes : public ::testing::TestWithParam<int> {};

TEST_P(PlanIoSchemes, RoundTripsAndResimulates) {
  exp::ExperimentConfig config;
  config.spec.num_libraries = 2;
  config.spec.library.drives_per_library = 3;
  config.spec.library.tapes_per_library = 10;
  config.spec.library.tape_capacity = 40_GB;
  config.workload.num_objects = 600;
  config.workload.num_requests = 20;
  config.workload.min_objects_per_request = 10;
  config.workload.max_objects_per_request = 18;
  config.workload.object_groups = 12;
  config.workload.min_object_size = Bytes{100ULL * 1000 * 1000};
  config.workload.max_object_size = 1_GB;
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);
  const core::PlacementScheme* list[] = {schemes.parallel_batch.get(),
                                         schemes.object_probability.get(),
                                         schemes.cluster_probability.get()};
  const core::PlacementScheme& scheme = *list[GetParam()];

  core::PlacementContext context{&experiment.workload(), &config.spec,
                                 &experiment.clusters()};
  const core::PlacementPlan original = scheme.place(context);

  std::stringstream layout;
  std::stringstream policy;
  save_plan(original, layout, policy);
  const core::PlacementPlan loaded =
      load_plan(config.spec, experiment.workload(), layout, policy);

  EXPECT_EQ(loaded.mount_policy.replacement,
            original.mount_policy.replacement);
  EXPECT_EQ(loaded.mount_policy.drive_pinned,
            original.mount_policy.drive_pinned);
  const auto a = exp::simulate_plan(original, 25, 5);
  const auto b = exp::simulate_plan(loaded, 25, 5);
  EXPECT_DOUBLE_EQ(a.mean_response().count(), b.mean_response().count());
  EXPECT_DOUBLE_EQ(a.mean_switch().count(), b.mean_switch().count());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PlanIoSchemes,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           const int i = info.param;
                           return std::string(i == 0   ? "pbp"
                                              : i == 1 ? "opp"
                                                       : "cpp");
                         });

}  // namespace
}  // namespace tapesim::trace
