#include "tape/linear_motion.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace tapesim::tape {
namespace {

LinearMotionModel paper_model() {
  return LinearMotionModel(DriveSpec{}, 400_GB);
}

TEST(LinearMotion, CalibrationReproducesTable1) {
  const LinearMotionModel m = paper_model();
  // Rewinding a full tape must take exactly the spec's max rewind time.
  EXPECT_NEAR(m.max_rewind().count(), 98.0, 1e-9);
  EXPECT_NEAR(m.rewind_time(400_GB).count(), 98.0, 1e-9);
  // Locating to the middle of the tape is the spec's average first-file
  // access time.
  EXPECT_NEAR(m.average_first_access().count(), 72.0, 1e-9);
  EXPECT_NEAR(m.locate_time(Bytes{0}, 200_GB).count(), 72.0, 1e-9);
}

TEST(LinearMotion, LocateIsProportionalToDistance) {
  const LinearMotionModel m = paper_model();
  const double full = m.locate_time(Bytes{0}, 400_GB).count();
  EXPECT_NEAR(m.locate_time(Bytes{0}, 100_GB).count(), full / 4.0, 1e-9);
  EXPECT_NEAR(m.locate_time(Bytes{0}, 200_GB).count(), full / 2.0, 1e-9);
}

TEST(LinearMotion, LocateIsSymmetric) {
  const LinearMotionModel m = paper_model();
  tapesim::Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    const Bytes a{rng.uniform_below(400ull * 1000 * 1000 * 1000)};
    const Bytes b{rng.uniform_below(400ull * 1000 * 1000 * 1000)};
    EXPECT_DOUBLE_EQ(m.locate_time(a, b).count(), m.locate_time(b, a).count());
  }
}

TEST(LinearMotion, ZeroDistanceCostsNothing) {
  const LinearMotionModel m = paper_model();
  EXPECT_DOUBLE_EQ(m.locate_time(37_GB, 37_GB).count(), 0.0);
  EXPECT_DOUBLE_EQ(m.rewind_time(Bytes{0}).count(), 0.0);
}

TEST(LinearMotion, RewindIsFasterThanLocate) {
  // The drive rewinds at high speed without read-verifying; the calibrated
  // rates must reflect that.
  const LinearMotionModel m = paper_model();
  EXPECT_GT(m.rewind_rate().count(), m.locate_rate().count());
  EXPECT_LT(m.rewind_time(300_GB).count(),
            m.locate_time(Bytes{0}, 300_GB).count());
}

TEST(LinearMotion, TriangleEquality) {
  // A locate A->B->C in the same direction costs the same as A->C.
  const LinearMotionModel m = paper_model();
  const double via = m.locate_time(10_GB, 50_GB).count() +
                     m.locate_time(50_GB, 90_GB).count();
  EXPECT_NEAR(via, m.locate_time(10_GB, 90_GB).count(), 1e-9);
}

TEST(LinearMotionDeath, PositionBeyondCapacityAborts) {
  const LinearMotionModel m = paper_model();
  EXPECT_DEATH((void)m.locate_time(Bytes{0}, 401_GB), "end of tape");
  EXPECT_DEATH((void)m.rewind_time(401_GB), "end of tape");
}

TEST(LinearMotion, ScalesWithCapacity) {
  // A tape with double capacity but the same drive spec positions twice as
  // fast in bytes/second (the motion constants are per-tape-length).
  const LinearMotionModel small(DriveSpec{}, 400_GB);
  const LinearMotionModel big(DriveSpec{}, 800_GB);
  EXPECT_NEAR(big.locate_rate().count(), 2.0 * small.locate_rate().count(),
              1e-6);
  EXPECT_NEAR(big.max_rewind().count(), small.max_rewind().count(), 1e-9);
}

}  // namespace
}  // namespace tapesim::tape
