#include "tape/drive.hpp"

#include <gtest/gtest.h>

namespace tapesim::tape {
namespace {

TapeDrive make_drive() {
  return TapeDrive(DriveId{0}, DriveSpec{}, 400_GB);
}

TEST(Drive, StartsEmpty) {
  const TapeDrive d = make_drive();
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.idle());
  EXPECT_FALSE(d.mounted().valid());
  EXPECT_EQ(d.state(), DriveState::kEmpty);
}

TEST(Drive, LoadCycle) {
  TapeDrive d = make_drive();
  const Seconds load = d.start_load(TapeId{7});
  EXPECT_DOUBLE_EQ(load.count(), 19.0);
  EXPECT_EQ(d.state(), DriveState::kLoading);
  d.finish_load();
  EXPECT_TRUE(d.idle());
  EXPECT_EQ(d.mounted(), TapeId{7});
  EXPECT_EQ(d.head(), Bytes{0});
  EXPECT_EQ(d.stats().mounts, 1u);
}

TEST(Drive, LocateMovesHeadAndAccountsTime) {
  TapeDrive d = make_drive();
  (void)d.start_load(TapeId{1});
  d.finish_load();
  const Seconds t = d.start_locate(200_GB);
  EXPECT_NEAR(t.count(), 72.0, 1e-9);  // half the tape
  EXPECT_EQ(d.state(), DriveState::kLocating);
  d.finish_locate();
  EXPECT_EQ(d.head(), 200_GB);
  EXPECT_NEAR(d.stats().locating.count(), 72.0, 1e-9);
}

TEST(Drive, TransferAdvancesHeadAndCounts) {
  TapeDrive d = make_drive();
  (void)d.start_load(TapeId{1});
  d.finish_load();
  const Seconds t = d.start_transfer(8_GB);
  EXPECT_NEAR(t.count(), 100.0, 1e-9);  // 8 GB at 80 MB/s
  d.finish_transfer();
  EXPECT_EQ(d.head(), 8_GB);
  EXPECT_EQ(d.stats().bytes_read, 8_GB);
  EXPECT_EQ(d.stats().objects_read, 1u);
  EXPECT_NEAR(d.stats().transferring.count(), 100.0, 1e-9);
}

TEST(Drive, RewindReturnsToBot) {
  TapeDrive d = make_drive();
  (void)d.start_load(TapeId{1});
  d.finish_load();
  (void)d.start_locate(400_GB);
  d.finish_locate();
  const Seconds t = d.start_rewind();
  EXPECT_NEAR(t.count(), 98.0, 1e-9);
  d.finish_rewind();
  EXPECT_EQ(d.head(), Bytes{0});
}

TEST(Drive, FullMountServeUnmountCycle) {
  TapeDrive d = make_drive();
  (void)d.start_load(TapeId{3});
  d.finish_load();
  (void)d.start_locate(10_GB);
  d.finish_locate();
  (void)d.start_transfer(2_GB);
  d.finish_transfer();
  (void)d.start_rewind();
  d.finish_rewind();
  const Seconds unload = d.start_unload();
  EXPECT_DOUBLE_EQ(unload.count(), 19.0);
  const TapeId removed = d.finish_unload();
  EXPECT_EQ(removed, TapeId{3});
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.mounted().valid());
  EXPECT_GT(d.stats().total_active().count(), 0.0);
}

TEST(Drive, StatsAccumulateAcrossOperations) {
  TapeDrive d = make_drive();
  (void)d.start_load(TapeId{1});
  d.finish_load();
  for (int i = 0; i < 3; ++i) {
    (void)d.start_transfer(1_GB);
    d.finish_transfer();
  }
  EXPECT_EQ(d.stats().objects_read, 3u);
  EXPECT_EQ(d.stats().bytes_read, 3_GB);
  EXPECT_EQ(d.head(), 3_GB);
}

TEST(DriveDeath, IllegalTransitionsAbort) {
  TapeDrive d = make_drive();
  // Empty drive cannot locate/transfer/rewind/unload.
  EXPECT_DEATH((void)d.start_locate(1_GB), "idle");
  EXPECT_DEATH((void)d.start_transfer(1_GB), "idle");
  EXPECT_DEATH((void)d.start_rewind(), "idle");
  EXPECT_DEATH((void)d.start_unload(), "unload");

  (void)d.start_load(TapeId{1});
  // Loading drive cannot start anything else.
  EXPECT_DEATH((void)d.start_load(TapeId{2}), "empty");
  EXPECT_DEATH((void)d.start_transfer(1_GB), "idle");
  d.finish_load();

  // Unload requires a rewound head.
  (void)d.start_locate(5_GB);
  d.finish_locate();
  EXPECT_DEATH((void)d.start_unload(), "rewind");
}

TEST(DriveDeath, TransferBeyondEndOfTapeAborts) {
  TapeDrive d = make_drive();
  (void)d.start_load(TapeId{1});
  d.finish_load();
  (void)d.start_locate(399_GB);
  d.finish_locate();
  EXPECT_DEATH((void)d.start_transfer(2_GB), "end of the tape");
}

TEST(DriveDeath, LoadingInvalidTapeAborts) {
  TapeDrive d = make_drive();
  EXPECT_DEATH((void)d.start_load(TapeId{}), "invalid");
}

TEST(Drive, StateNamesAreHumanReadable) {
  EXPECT_STREQ(to_string(DriveState::kEmpty), "empty");
  EXPECT_STREQ(to_string(DriveState::kIdle), "idle");
  EXPECT_STREQ(to_string(DriveState::kLoading), "loading");
  EXPECT_STREQ(to_string(DriveState::kLocating), "locating");
  EXPECT_STREQ(to_string(DriveState::kTransferring), "transferring");
  EXPECT_STREQ(to_string(DriveState::kRewinding), "rewinding");
  EXPECT_STREQ(to_string(DriveState::kUnloading), "unloading");
}

}  // namespace
}  // namespace tapesim::tape
