#include "tape/system.hpp"

#include <gtest/gtest.h>

namespace tapesim::tape {
namespace {

struct SystemFixture : ::testing::Test {
  sim::Engine engine;
  SystemSpec spec = SystemSpec::paper_default();
};

TEST_F(SystemFixture, ConstructsAllLibrariesAndDrives) {
  TapeSystem sys(spec, engine);
  EXPECT_EQ(sys.num_libraries(), 3u);
  for (std::uint32_t lib = 0; lib < 3; ++lib) {
    EXPECT_EQ(sys.library(LibraryId{lib}).drive_count(), 8u);
    EXPECT_EQ(sys.library(LibraryId{lib}).tape_count(), 80u);
  }
}

TEST_F(SystemFixture, GlobalIdMappingIsDense) {
  TapeSystem sys(spec, engine);
  // Drive 13 lives in library 1 (13 / 8) at local index 5.
  EXPECT_EQ(sys.library_of_drive(DriveId{13}), LibraryId{1});
  EXPECT_EQ(sys.library(LibraryId{1}).drive_id(5), DriveId{13});
  // Tape 170 lives in library 2 (170 / 80) at slot 10.
  EXPECT_EQ(sys.library_of_tape(TapeId{170}), LibraryId{2});
  EXPECT_EQ(sys.library(LibraryId{2}).tape_id(10), TapeId{170});
}

TEST_F(SystemFixture, OwnershipPredicates) {
  TapeSystem sys(spec, engine);
  const TapeLibrary& lib1 = sys.library(LibraryId{1});
  EXPECT_TRUE(lib1.owns_drive(DriveId{8}));
  EXPECT_TRUE(lib1.owns_drive(DriveId{15}));
  EXPECT_FALSE(lib1.owns_drive(DriveId{7}));
  EXPECT_FALSE(lib1.owns_drive(DriveId{16}));
  EXPECT_TRUE(lib1.owns_tape(TapeId{80}));
  EXPECT_TRUE(lib1.owns_tape(TapeId{159}));
  EXPECT_FALSE(lib1.owns_tape(TapeId{79}));
  EXPECT_FALSE(lib1.owns_tape(TapeId{160}));
}

TEST_F(SystemFixture, DriveAccessorReturnsTheSameObject) {
  TapeSystem sys(spec, engine);
  TapeDrive& d = sys.drive(DriveId{9});
  EXPECT_EQ(d.id(), DriveId{9});
  EXPECT_EQ(&d, &sys.library(LibraryId{1}).drive(DriveId{9}));
}

TEST_F(SystemFixture, MountBookkeeping) {
  TapeSystem sys(spec, engine);
  EXPECT_FALSE(sys.is_mounted(TapeId{5}));
  sys.setup_mount(TapeId{5}, DriveId{2});
  EXPECT_TRUE(sys.is_mounted(TapeId{5}));
  ASSERT_TRUE(sys.drive_holding(TapeId{5}).has_value());
  EXPECT_EQ(*sys.drive_holding(TapeId{5}), DriveId{2});
  EXPECT_EQ(sys.drive(DriveId{2}).mounted(), TapeId{5});
  EXPECT_TRUE(sys.drive(DriveId{2}).idle());

  sys.note_unmounted(TapeId{5});
  EXPECT_FALSE(sys.is_mounted(TapeId{5}));
}

TEST_F(SystemFixture, RobotsAreIndependentResources) {
  TapeSystem sys(spec, engine);
  sim::Resource& r0 = sys.library(LibraryId{0}).robot();
  sim::Resource& r1 = sys.library(LibraryId{1}).robot();
  EXPECT_NE(&r0, &r1);
  EXPECT_EQ(r0.name(), "robot[lib0]");
  EXPECT_EQ(r1.name(), "robot[lib1]");
}

TEST_F(SystemFixture, RobotTimingHelpers) {
  TapeSystem sys(spec, engine);
  const TapeLibrary& lib = sys.library(LibraryId{0});
  EXPECT_DOUBLE_EQ(lib.robot_move_time().count(), 7.6);
  EXPECT_DOUBLE_EQ(lib.robot_exchange_time().count(), 15.2);
}

using SystemDeath = SystemFixture;

TEST_F(SystemDeath, CrossLibraryMountAborts) {
  TapeSystem sys(spec, engine);
  // Tape 0 belongs to library 0; drive 8 belongs to library 1.
  EXPECT_DEATH(sys.setup_mount(TapeId{0}, DriveId{8}), "own library");
}

TEST_F(SystemDeath, DoubleMountAborts) {
  TapeSystem sys(spec, engine);
  sys.setup_mount(TapeId{5}, DriveId{0});
  EXPECT_DEATH(sys.note_mounted(TapeId{5}, DriveId{1}), "already mounted");
  EXPECT_DEATH(sys.setup_mount(TapeId{6}, DriveId{0}), "empty");
}

TEST_F(SystemDeath, UnmountOfUnmountedAborts) {
  TapeSystem sys(spec, engine);
  EXPECT_DEATH(sys.note_unmounted(TapeId{3}), "not mounted");
}

TEST_F(SystemFixture, SingleLibrarySystem) {
  spec.num_libraries = 1;
  TapeSystem sys(spec, engine);
  EXPECT_EQ(sys.num_libraries(), 1u);
  EXPECT_EQ(sys.library_of_drive(DriveId{7}), LibraryId{0});
  EXPECT_EQ(sys.library_of_tape(TapeId{79}), LibraryId{0});
}

}  // namespace
}  // namespace tapesim::tape
