#include "tape/specs.hpp"

#include <gtest/gtest.h>

namespace tapesim::tape {
namespace {

TEST(Specs, PaperDefaultMatchesTable1) {
  const SystemSpec spec = SystemSpec::paper_default();
  EXPECT_EQ(spec.num_libraries, 3u);
  EXPECT_EQ(spec.library.drives_per_library, 8u);
  EXPECT_EQ(spec.library.tapes_per_library, 80u);
  EXPECT_EQ(spec.library.tape_capacity, 400_GB);
  EXPECT_DOUBLE_EQ(spec.library.cell_to_drive_time.count(), 7.6);
  EXPECT_DOUBLE_EQ(spec.library.drive.transfer_rate.count(), 80.0e6);
  EXPECT_DOUBLE_EQ(spec.library.drive.load_thread_time.count(), 19.0);
  EXPECT_DOUBLE_EQ(spec.library.drive.unload_time.count(), 19.0);
  EXPECT_DOUBLE_EQ(spec.library.drive.max_rewind_time.count(), 98.0);
  EXPECT_DOUBLE_EQ(spec.library.drive.avg_first_file_access.count(), 72.0);
}

TEST(Specs, DerivedTotals) {
  const SystemSpec spec = SystemSpec::paper_default();
  EXPECT_EQ(spec.total_drives(), 24u);
  EXPECT_EQ(spec.total_tapes(), 240u);
  EXPECT_EQ(spec.total_capacity(), Bytes{240ull * 400 * 1000 * 1000 * 1000});
  EXPECT_DOUBLE_EQ(spec.aggregate_transfer_rate().count(), 24 * 80.0e6);
}

TEST(Specs, ValidationAcceptsDefaults) {
  EXPECT_NO_THROW(SystemSpec::paper_default().validate());
}

TEST(Specs, ValidationRejectsBadValues) {
  SystemSpec spec;
  spec.num_libraries = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = SystemSpec::paper_default();
  spec.library.drives_per_library = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = SystemSpec::paper_default();
  spec.library.tapes_per_library = 4;  // fewer tapes than drives
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = SystemSpec::paper_default();
  spec.library.tape_capacity = Bytes{0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = SystemSpec::paper_default();
  spec.library.drive.transfer_rate = BytesPerSecond{0.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = SystemSpec::paper_default();
  spec.library.drive.max_rewind_time = Seconds{0.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Specs, DescribeMentionsKeyNumbers) {
  const std::string d = SystemSpec::paper_default().describe();
  EXPECT_NE(d.find("3 libraries"), std::string::npos);
  EXPECT_NE(d.find("8 drives"), std::string::npos);
  EXPECT_NE(d.find("80 tapes"), std::string::npos);
}

}  // namespace
}  // namespace tapesim::tape
