#include "tape/specs.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tapesim::tape {
namespace {

TEST(Specs, PaperDefaultMatchesTable1) {
  const SystemSpec spec = SystemSpec::paper_default();
  EXPECT_EQ(spec.num_libraries, 3u);
  EXPECT_EQ(spec.library.drives_per_library, 8u);
  EXPECT_EQ(spec.library.tapes_per_library, 80u);
  EXPECT_EQ(spec.library.tape_capacity, 400_GB);
  EXPECT_DOUBLE_EQ(spec.library.cell_to_drive_time.count(), 7.6);
  EXPECT_DOUBLE_EQ(spec.library.drive.transfer_rate.count(), 80.0e6);
  EXPECT_DOUBLE_EQ(spec.library.drive.load_thread_time.count(), 19.0);
  EXPECT_DOUBLE_EQ(spec.library.drive.unload_time.count(), 19.0);
  EXPECT_DOUBLE_EQ(spec.library.drive.max_rewind_time.count(), 98.0);
  EXPECT_DOUBLE_EQ(spec.library.drive.avg_first_file_access.count(), 72.0);
}

TEST(Specs, DerivedTotals) {
  const SystemSpec spec = SystemSpec::paper_default();
  EXPECT_EQ(spec.total_drives(), 24u);
  EXPECT_EQ(spec.total_tapes(), 240u);
  EXPECT_EQ(spec.total_capacity(), Bytes{240ull * 400 * 1000 * 1000 * 1000});
  EXPECT_DOUBLE_EQ(spec.aggregate_transfer_rate().count(), 24 * 80.0e6);
}

TEST(Specs, ValidationAcceptsDefaults) {
  EXPECT_NO_THROW(SystemSpec::paper_default().validate());
}

TEST(Specs, ValidationRejectsBadValues) {
  SystemSpec spec;
  spec.num_libraries = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = SystemSpec::paper_default();
  spec.library.drives_per_library = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = SystemSpec::paper_default();
  spec.library.tapes_per_library = 4;  // fewer tapes than drives
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = SystemSpec::paper_default();
  spec.library.tape_capacity = Bytes{0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = SystemSpec::paper_default();
  spec.library.drive.transfer_rate = BytesPerSecond{0.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = SystemSpec::paper_default();
  spec.library.drive.max_rewind_time = Seconds{0.0};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(Specs, TryValidateIsRecoverableNotFatal) {
  // A malformed experiment config must fail with a message, never abort:
  // try_validate returns a Status a CLI can print and recover from.
  EXPECT_TRUE(SystemSpec::paper_default().try_validate().ok());

  SystemSpec spec = SystemSpec::paper_default();
  spec.num_libraries = 0;
  const Status sys = spec.try_validate();
  ASSERT_FALSE(sys.ok());
  EXPECT_NE(sys.message().find("SystemSpec"), std::string::npos);
  EXPECT_NE(sys.message().find("library"), std::string::npos);

  spec = SystemSpec::paper_default();
  spec.library.tapes_per_library = 4;
  const Status lib = spec.try_validate();
  ASSERT_FALSE(lib.ok());
  EXPECT_NE(lib.message().find("LibrarySpec"), std::string::npos);

  // Nested violations surface through the enclosing spec with the inner
  // subject intact, so the operator sees which knob was wrong.
  spec = SystemSpec::paper_default();
  spec.library.drive.transfer_rate = BytesPerSecond{-5.0};
  const Status drv = spec.try_validate();
  ASSERT_FALSE(drv.ok());
  EXPECT_NE(drv.message().find("DriveSpec"), std::string::npos);
  EXPECT_NE(drv.message().find("transfer rate"), std::string::npos);
}

TEST(Specs, FirstViolationWins) {
  // Several knobs wrong at once: the Status reports the first violation in
  // declaration order rather than the last or a concatenation.
  DriveSpec drive;
  drive.transfer_rate = BytesPerSecond{0.0};
  drive.max_rewind_time = Seconds{0.0};
  const Status s = drive.try_validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("transfer rate"), std::string::npos);
  EXPECT_EQ(s.message().find("rewind"), std::string::npos);
}

TEST(Specs, ThrowingValidateCarriesTryValidateMessage) {
  SystemSpec spec = SystemSpec::paper_default();
  spec.library.tape_capacity = Bytes{0};
  const Status s = spec.try_validate();
  ASSERT_FALSE(s.ok());
  try {
    spec.validate();
    FAIL() << "validate() must throw on a bad spec";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string{e.what()}, s.message());
  }
}

TEST(Specs, DescribeMentionsKeyNumbers) {
  const std::string d = SystemSpec::paper_default().describe();
  EXPECT_NE(d.find("3 libraries"), std::string::npos);
  EXPECT_NE(d.find("8 drives"), std::string::npos);
  EXPECT_NE(d.find("80 tapes"), std::string::npos);
}

}  // namespace
}  // namespace tapesim::tape
