// Zero-overhead-when-disabled regression.
//
// The acceptance bar for the fault subsystem is that turning it off is
// indistinguishable from it never existing: with every fault rate at zero
// the scheduler builds no injector, draws nothing from any RNG, and the
// event sequence — and therefore every simulated timing — is bit-identical
// to a build without fault injection. These tests pin that equivalence at
// both the single-request and the whole-experiment level, so any future
// "just one extra draw" regression in the hot path fails loudly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "exp/experiment.hpp"
#include "fault/model.hpp"
#include "metrics/request_metrics.hpp"
#include "sched/simulator.hpp"
#include "workload/model.hpp"

namespace tapesim::sched {
namespace {

using core::Alignment;
using core::PlacementPlan;
using metrics::RequestStatus;
using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

/// Same layout as the recovery scenarios: one library, two drives, four
/// 10 GB tapes, five objects spread over them.
struct Scenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<PlacementPlan> plan;

  Scenario() {
    spec.num_libraries = 1;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                    {ObjectId{1}, 3_GB},
                                    {ObjectId{2}, 4_GB},
                                    {ObjectId{3}, 1_GB},
                                    {ObjectId{4}, 2_GB}};
    std::vector<Request> requests;
    const double p = 1.0 / 6.0;
    requests.push_back(Request{RequestId{0}, p, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, p, {ObjectId{0}, ObjectId{1}}});
    requests.push_back(Request{RequestId{2}, p, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, p, {ObjectId{3}}});
    requests.push_back(Request{RequestId{4}, p, {ObjectId{4}}});
    requests.push_back(Request{RequestId{5}, p, {ObjectId{3}, ObjectId{4}}});
    workload = std::make_unique<Workload>(std::move(objects),
                                          std::move(requests));

    plan = std::make_unique<PlacementPlan>(spec, *workload);
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{0});
    plan->assign(ObjectId{2}, TapeId{1});
    plan->assign(ObjectId{3}, TapeId{2});
    plan->assign(ObjectId{4}, TapeId{3});
    plan->align_all(Alignment::kGivenOrder);
    plan->compute_tape_popularity();
    plan->mount_policy.initial_mounts.emplace_back(DriveId{0}, TapeId{0});
  }
};

TEST(ZeroOverhead, ZeroRateConfigBuildsNoInjector) {
  Scenario s;
  SimulatorConfig config;
  // Non-default seed and recovery knobs, but every *rate* is zero: the
  // config is disabled and the simulator must not instantiate an injector.
  config.faults.seed = 0xDEADBEEF;
  config.faults.mount_retry.max_retries = 9;
  config.faults.drive_mttr = Seconds{1.0};
  ASSERT_FALSE(config.faults.enabled());
  RetrievalSimulator sim(*s.plan, config);
  EXPECT_EQ(sim.fault_injector(), nullptr);
}

TEST(ZeroOverhead, RequestsBitIdenticalToDefaultConfig) {
  Scenario base;
  Scenario zeroed;
  RetrievalSimulator plain(*base.plan);
  SimulatorConfig config;
  config.faults.seed = 0x5EEDED;  // must be irrelevant at zero rates
  RetrievalSimulator zero_rates(*zeroed.plan, config);

  for (int round = 0; round < 3; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto a = plain.run_request(RequestId{r});
      const auto b = zero_rates.run_request(RequestId{r});
      // Bit-exact, not approximate: identical event sequences produce
      // identical floating-point timings.
      EXPECT_EQ(a.response.count(), b.response.count());
      EXPECT_EQ(a.seek.count(), b.seek.count());
      EXPECT_EQ(a.transfer.count(), b.transfer.count());
      EXPECT_EQ(a.switch_time.count(), b.switch_time.count());
      EXPECT_EQ(a.robot_wait.count(), b.robot_wait.count());
      EXPECT_EQ(a.tape_switches, b.tape_switches);
      EXPECT_EQ(a.drives_used, b.drives_used);
    }
  }
  EXPECT_EQ(plain.total_switches(), zero_rates.total_switches());
  EXPECT_EQ(plain.engine().now().count(), zero_rates.engine().now().count());
}

TEST(ZeroOverhead, DegradedModeFieldsStayZeroWithoutFaults) {
  Scenario s;
  RetrievalSimulator sim(*s.plan);
  metrics::ExperimentMetrics agg;
  for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
    const auto o = sim.run_request(RequestId{r});
    EXPECT_EQ(o.status, RequestStatus::kServed);
    EXPECT_EQ(o.bytes_unavailable.count(), 0u);
    EXPECT_EQ(o.extents_unavailable, 0u);
    EXPECT_EQ(o.failovers, 0u);
    EXPECT_EQ(o.mount_retries, 0u);
    EXPECT_EQ(o.media_retries, 0u);
    EXPECT_EQ(o.bytes_served(), o.bytes);
    agg.add(o);
  }
  EXPECT_EQ(agg.served_count(), 6u);
  EXPECT_EQ(agg.partial_count(), 0u);
  EXPECT_EQ(agg.unavailable_count(), 0u);
  EXPECT_DOUBLE_EQ(agg.fraction_unavailable(), 0.0);
}

TEST(ZeroOverhead, FullExperimentPipelineBitIdentical) {
  // End-to-end: the whole place -> sample -> simulate pipeline, default
  // config vs explicit zero-rate fault config, must agree to the last bit
  // on every aggregate (the workload stream and the fault stream are
  // separate, and the latter is never touched).
  exp::ExperimentConfig plain_cfg;
  plain_cfg.simulated_requests = 40;
  exp::ExperimentConfig zero_cfg = plain_cfg;
  zero_cfg.sim.faults.seed = 0xFEEDFACE;
  ASSERT_FALSE(zero_cfg.sim.faults.enabled());

  const exp::Experiment plain(plain_cfg);
  const exp::Experiment zeroed(zero_cfg);
  const auto schemes = exp::make_standard_schemes();
  const auto a = plain.run(*schemes.parallel_batch);
  const auto b = zeroed.run(*schemes.parallel_batch);

  EXPECT_EQ(a.metrics.mean_response().count(),
            b.metrics.mean_response().count());
  EXPECT_EQ(a.metrics.mean_bandwidth().count(),
            b.metrics.mean_bandwidth().count());
  EXPECT_EQ(a.total_switches, b.total_switches);
  EXPECT_EQ(a.tapes_used, b.tapes_used);
  EXPECT_EQ(b.metrics.served_count(), 40u);
  EXPECT_DOUBLE_EQ(b.metrics.fraction_unavailable(), 0.0);
}

}  // namespace
}  // namespace tapesim::sched
