// Degraded-mode scenarios for the retrieval simulator.
//
// These tests drive the fault-injection machinery end to end: drives fail
// mid-activity and fail over, mounts retry with backoff, media errors
// escalate cartridges to Lost, and in every case the request completes
// with reconciling byte accounting — the event loop must never wedge (the
// per-test ctest TIMEOUT turns a wedge into a failure).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/plan.hpp"
#include "fault/model.hpp"
#include "metrics/request_metrics.hpp"
#include "obs/tracer.hpp"
#include "sched/report.hpp"
#include "sched/simulator.hpp"
#include "workload/model.hpp"

namespace tapesim::sched {
namespace {

using core::Alignment;
using core::PlacementPlan;
using core::ReplacementPolicy;
using metrics::RequestStatus;
using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

/// One library, two drives, four 10 GB tapes (same layout as the analytic
/// simulator tests):
///   T0: O0 (2 GB @ 0), O1 (3 GB @ 2 GB)
///   T1: O2 (4 GB @ 0)
///   T2: O3 (1 GB @ 0)
///   T3: O4 (2 GB @ 0)
struct Scenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<PlacementPlan> plan;

  Scenario() {
    spec.num_libraries = 1;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                    {ObjectId{1}, 3_GB},
                                    {ObjectId{2}, 4_GB},
                                    {ObjectId{3}, 1_GB},
                                    {ObjectId{4}, 2_GB}};
    std::vector<Request> requests;
    const double p = 1.0 / 6.0;
    requests.push_back(Request{RequestId{0}, p, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, p, {ObjectId{0}, ObjectId{1}}});
    requests.push_back(Request{RequestId{2}, p, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, p, {ObjectId{3}}});
    requests.push_back(Request{RequestId{4}, p, {ObjectId{4}}});
    requests.push_back(Request{RequestId{5}, p, {ObjectId{3}, ObjectId{4}}});
    workload = std::make_unique<Workload>(std::move(objects),
                                          std::move(requests));

    plan = std::make_unique<PlacementPlan>(spec, *workload);
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{0});
    plan->assign(ObjectId{2}, TapeId{1});
    plan->assign(ObjectId{3}, TapeId{2});
    plan->assign(ObjectId{4}, TapeId{3});
    plan->align_all(Alignment::kGivenOrder);
    plan->compute_tape_popularity();
    plan->mount_policy.replacement = ReplacementPolicy::kLeastPopular;
  }

  void mount(std::uint32_t drive, std::uint32_t tape) {
    plan->mount_policy.initial_mounts.emplace_back(DriveId{drive},
                                                   TapeId{tape});
  }
};

/// Every outcome must account for each requested byte exactly once.
void expect_reconciled(const metrics::RequestOutcome& o) {
  EXPECT_EQ(o.bytes_served() + o.bytes_unavailable, o.bytes);
  switch (o.status) {
    case RequestStatus::kServed:
      EXPECT_EQ(o.bytes_unavailable.count(), 0u);
      break;
    case RequestStatus::kUnavailable:
      EXPECT_EQ(o.bytes_unavailable, o.bytes);
      break;
    case RequestStatus::kPartial:
      EXPECT_GT(o.bytes_unavailable.count(), 0u);
      EXPECT_LT(o.bytes_unavailable, o.bytes);
      break;
  }
}

TEST(Recovery, InjectorOnlyBuiltWhenFaultsEnabled) {
  Scenario s;
  s.mount(0, 0);
  RetrievalSimulator plain(*s.plan);
  EXPECT_EQ(plain.fault_injector(), nullptr);

  Scenario s2;
  s2.mount(0, 0);
  SimulatorConfig config;
  config.faults.drive_mtbf = Seconds{1e9};
  RetrievalSimulator faulty(*s2.plan, config);
  EXPECT_NE(faulty.fault_injector(), nullptr);
}

TEST(Recovery, InvalidFaultConfigThrowsInsteadOfAborting) {
  Scenario s;
  SimulatorConfig config;
  config.faults.permanent_fraction = 2.0;
  EXPECT_THROW(RetrievalSimulator(*s.plan, config), std::invalid_argument);
}

TEST(Recovery, MountRetriesEventuallySucceed) {
  Scenario s;
  s.mount(0, 0);
  SimulatorConfig config;
  config.faults.mount_failure_prob = 0.6;
  config.faults.mount_retry = fault::BackoffPolicy{4, Seconds{5.0}, 2.0};
  config.faults.max_mount_attempts_per_tape = 64;
  RetrievalSimulator sim(*s.plan, config);

  std::uint32_t total_retries = 0;
  for (const std::uint32_t r : {2u, 3u, 4u, 5u, 2u, 3u}) {
    const auto o = sim.run_request(RequestId{r});
    expect_reconciled(o);
    EXPECT_EQ(o.status, RequestStatus::kServed);
    total_retries += o.mount_retries;
  }
  // p=0.6 over many load attempts: some retries must have happened, and
  // the injector must have counted the same events.
  EXPECT_GT(total_retries, 0u);
  EXPECT_GT(sim.fault_injector()->counters().mount_failures, 0u);
}

TEST(Recovery, MediaErrorsEscalateToLostAndCompleteUnavailable) {
  Scenario s;
  s.mount(0, 0);
  SimulatorConfig config;
  config.faults.media_error_per_gb = 50.0;  // a 4 GB read always errors
  config.faults.media_retry = fault::BackoffPolicy{0, Seconds{2.0}, 2.0};
  config.faults.degraded_after = 1;
  config.faults.lost_after = 2;
  RetrievalSimulator sim(*s.plan, config);

  // First attempt at O2 (4 GB on T1): the read errors, no retries are
  // allowed, the extent is skipped — all 4 GB unavailable, tape Degraded.
  const auto first = sim.run_request(RequestId{2});
  expect_reconciled(first);
  EXPECT_EQ(first.status, RequestStatus::kUnavailable);
  EXPECT_EQ(first.bytes_unavailable, 4_GB);
  EXPECT_EQ(first.extents_unavailable, 1u);
  EXPECT_EQ(sim.system().cartridge_health(TapeId{1}),
            tape::CartridgeHealth::kDegraded);

  // Second error crosses lost_after: the cartridge is Lost for good.
  const auto second = sim.run_request(RequestId{2});
  expect_reconciled(second);
  EXPECT_EQ(second.status, RequestStatus::kUnavailable);
  EXPECT_TRUE(sim.system().cartridge_lost(TapeId{1}));

  // A lost cartridge resolves instantly at request time: no events run.
  const auto third = sim.run_request(RequestId{2});
  expect_reconciled(third);
  EXPECT_EQ(third.status, RequestStatus::kUnavailable);
  EXPECT_DOUBLE_EQ(third.response.count(), 0.0);
  EXPECT_EQ(third.tape_switches, 0u);

  // Error counts are per cartridge: at 50 errors/GB the read of O0 also
  // errors (its first on T0), but that only *degrades* T0 — T1's lost
  // state never leaked onto other cartridges' escalation counters.
  const auto other = sim.run_request(RequestId{0});
  expect_reconciled(other);
  EXPECT_EQ(sim.system().cartridge_health(TapeId{0}),
            tape::CartridgeHealth::kDegraded);
  EXPECT_FALSE(sim.system().cartridge_lost(TapeId{0}));
}

TEST(Recovery, MediaRetrySucceedsWithoutLosingData) {
  Scenario s;
  s.mount(0, 0);
  SimulatorConfig config;
  config.faults.media_error_per_gb = 0.08;
  config.faults.media_retry = fault::BackoffPolicy{6, Seconds{2.0}, 2.0};
  config.faults.degraded_after = 50;  // plenty of headroom before escalation
  config.faults.lost_after = 100;
  RetrievalSimulator sim(*s.plan, config);

  std::uint32_t retries = 0;
  for (int round = 0; round < 6; ++round) {
    for (const std::uint32_t r : {0u, 1u, 2u, 3u, 4u, 5u}) {
      const auto o = sim.run_request(RequestId{r});
      expect_reconciled(o);
      EXPECT_EQ(o.status, RequestStatus::kServed);
      retries += o.media_retries;
    }
  }
  EXPECT_GT(retries, 0u) << "rate high enough that some read must retry";
  EXPECT_GT(sim.fault_injector()->counters().media_errors, 0u);
}

TEST(Recovery, TransientDriveFailureRepairsAndServes) {
  // Single drive: a mid-activity failure has nowhere to fail over, so the
  // request must ride out the repair (the repair-watch path) and still
  // serve every byte.
  Scenario s;
  s.spec.library.drives_per_library = 1;
  s.plan = std::make_unique<PlacementPlan>(s.spec, *s.workload);
  s.plan->assign(ObjectId{0}, TapeId{0});
  s.plan->assign(ObjectId{1}, TapeId{0});
  s.plan->assign(ObjectId{2}, TapeId{1});
  s.plan->assign(ObjectId{3}, TapeId{2});
  s.plan->assign(ObjectId{4}, TapeId{3});
  s.plan->align_all(Alignment::kGivenOrder);
  s.plan->compute_tape_popularity();

  SimulatorConfig config;
  config.faults.drive_mtbf = Seconds{120.0};  // dies roughly every request
  config.faults.drive_mttr = Seconds{300.0};
  RetrievalSimulator sim(*s.plan, config);

  std::uint64_t failures = 0;
  for (int round = 0; round < 4; ++round) {
    for (const std::uint32_t r : {2u, 3u, 4u, 5u, 0u, 1u}) {
      const auto o = sim.run_request(RequestId{r});
      expect_reconciled(o);
      EXPECT_EQ(o.status, RequestStatus::kServed)
          << "transient faults lose no data";
    }
  }
  failures = sim.fault_injector()->counters().drive_failures;
  EXPECT_GT(failures, 0u) << "MTBF of 2 min must fail within ~40 min of work";

  // The drive's own books agree with the injector's.
  const auto report =
      utilization_report(sim.system(), sim.engine().now());
  ASSERT_EQ(report.drives.size(), 1u);
  EXPECT_EQ(report.drives[0].failures, failures);
  EXPECT_GT(report.drives[0].downtime.count(), 0.0);
}

TEST(Recovery, FailoverToSecondDriveWhenFirstDiesPermanently) {
  Scenario s;
  SimulatorConfig config;
  config.faults.drive_mtbf = Seconds{100.0};
  config.faults.permanent_fraction = 1.0;
  RetrievalSimulator sim(*s.plan, config);

  metrics::ExperimentMetrics agg;
  for (int round = 0; round < 4; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto o = sim.run_request(RequestId{r});
      expect_reconciled(o);
      agg.add(o);
    }
  }
  const auto& counters = sim.fault_injector()->counters();
  EXPECT_GT(counters.drive_failures, 0u);
  EXPECT_EQ(counters.drive_failures, counters.permanent_drive_failures);
  // At most one permanent death per drive.
  EXPECT_LE(counters.drive_failures, 2u);

  const auto report =
      utilization_report(sim.system(), sim.engine().now());
  std::uint64_t reported = 0;
  for (const auto& d : report.drives) reported += d.failures;
  EXPECT_EQ(reported, counters.drive_failures);
  // With both drives eventually dead, later requests complete unavailable
  // rather than wedging; the aggregate fraction stays well-defined.
  const double frac = agg.fraction_unavailable();
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST(Recovery, AllDrivesDeadCompletesEverythingUnavailable) {
  Scenario s;
  SimulatorConfig config;
  config.faults.drive_mtbf = Seconds{1.0};  // dies almost immediately
  config.faults.permanent_fraction = 1.0;
  RetrievalSimulator sim(*s.plan, config);

  bool saw_unavailable = false;
  for (const std::uint32_t r : {2u, 5u, 1u, 3u}) {
    const auto o = sim.run_request(RequestId{r});
    expect_reconciled(o);
    saw_unavailable |= o.status == RequestStatus::kUnavailable;
  }
  EXPECT_TRUE(saw_unavailable);
  // Once both drives are gone every request is a pure unavailability.
  const auto late = sim.run_request(RequestId{4});
  EXPECT_EQ(late.status, RequestStatus::kUnavailable);
  EXPECT_EQ(late.bytes_unavailable, 2_GB);
}

TEST(Recovery, RobotJamsDelayButNeverLoseData) {
  Scenario s;
  SimulatorConfig config;
  config.faults.robot_jam_prob = 0.5;
  config.faults.robot_jam_clear = Seconds{60.0};
  RetrievalSimulator jammed(*s.plan, config);

  Scenario clean;
  RetrievalSimulator smooth(*clean.plan);

  double jammed_total = 0.0;
  double smooth_total = 0.0;
  for (const std::uint32_t r : {2u, 5u, 3u, 4u}) {
    const auto oj = jammed.run_request(RequestId{r});
    const auto os = smooth.run_request(RequestId{r});
    expect_reconciled(oj);
    EXPECT_EQ(oj.status, RequestStatus::kServed);
    jammed_total += oj.response.count();
    smooth_total += os.response.count();
  }
  EXPECT_GT(jammed.fault_injector()->counters().robot_jams, 0u);
  EXPECT_GT(jammed_total, smooth_total);
}

TEST(Recovery, FaultRunsAreDeterministic) {
  SimulatorConfig config;
  config.faults.drive_mtbf = Seconds{200.0};
  config.faults.drive_mttr = Seconds{400.0};
  config.faults.mount_failure_prob = 0.3;
  config.faults.media_error_per_gb = 0.05;
  config.faults.robot_jam_prob = 0.2;

  Scenario sa;
  Scenario sb;
  RetrievalSimulator a(*sa.plan, config);
  RetrievalSimulator b(*sb.plan, config);
  for (int round = 0; round < 3; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto oa = a.run_request(RequestId{r});
      const auto ob = b.run_request(RequestId{r});
      EXPECT_EQ(oa.response.count(), ob.response.count());
      EXPECT_EQ(oa.bytes_unavailable, ob.bytes_unavailable);
      EXPECT_EQ(oa.status, ob.status);
      EXPECT_EQ(oa.failovers, ob.failovers);
      EXPECT_EQ(oa.mount_retries, ob.mount_retries);
      EXPECT_EQ(oa.media_retries, ob.media_retries);
    }
  }
}

TEST(Recovery, FaultSpansConserveAgainstUtilizationReport) {
  // The tracer's per-drive span lanes and the drives' own stats are two
  // independent books of the same run; with transient faults in play the
  // partial-time accounting on preempted activities must keep them equal
  // — including the new fault lane vs repair downtime.
  Scenario s;
  s.mount(0, 0);
  SimulatorConfig config;
  config.faults.drive_mtbf = Seconds{300.0};
  config.faults.drive_mttr = Seconds{200.0};
  config.faults.mount_failure_prob = 0.2;
  config.faults.media_error_per_gb = 0.03;
  obs::Tracer tracer;
  config.tracer = &tracer;
  RetrievalSimulator sim(*s.plan, config);
  for (int round = 0; round < 4; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto o = sim.run_request(RequestId{r});
      expect_reconciled(o);
    }
  }
  EXPECT_GT(sim.fault_injector()->counters().drive_failures, 0u);

  const auto report =
      utilization_report(sim.system(), sim.engine().now());
  for (const DriveUtilization& du : report.drives) {
    const std::uint32_t lane = du.drive.value();
    const auto total = [&](obs::Phase p) {
      return tracer.lane_phase_total(obs::Track::kDrive, lane, p).count();
    };
    EXPECT_NEAR(total(obs::Phase::kTransfer), du.transferring.count(), 1e-6)
        << "drive " << lane;
    EXPECT_NEAR(total(obs::Phase::kLocate), du.locating.count(), 1e-6)
        << "drive " << lane;
    EXPECT_NEAR(total(obs::Phase::kRewind), du.rewinding.count(), 1e-6)
        << "drive " << lane;
    EXPECT_NEAR(total(obs::Phase::kLoad), du.loading.count(), 1e-6)
        << "drive " << lane;
    EXPECT_NEAR(total(obs::Phase::kUnload), du.unloading.count(), 1e-6)
        << "drive " << lane;
    EXPECT_NEAR(total(obs::Phase::kFault), du.downtime.count(), 1e-6)
        << "drive " << lane;
  }
}

TEST(Recovery, PermanentDriveAndLostCartridgeStillReconcile) {
  // The acceptance scenario: one run in which a drive dies for good AND a
  // cartridge is lost must complete with every byte accounted for.
  Scenario s;
  SimulatorConfig config;
  config.faults.drive_mtbf = Seconds{150.0};
  config.faults.drive_mttr = Seconds{100.0};
  config.faults.permanent_fraction = 0.5;
  config.faults.mount_failure_prob = 0.2;
  config.faults.media_error_per_gb = 0.3;
  config.faults.media_retry = fault::BackoffPolicy{1, Seconds{2.0}, 2.0};
  config.faults.degraded_after = 2;
  config.faults.lost_after = 4;
  config.faults.robot_jam_prob = 0.1;
  RetrievalSimulator sim(*s.plan, config);

  metrics::ExperimentMetrics agg;
  for (int round = 0; round < 6; ++round) {
    for (const std::uint32_t r : {2u, 5u, 1u, 0u, 3u, 4u}) {
      const auto o = sim.run_request(RequestId{r});
      expect_reconciled(o);
      agg.add(o);
    }
  }
  const auto& counters = sim.fault_injector()->counters();
  const auto report =
      utilization_report(sim.system(), sim.engine().now());
  std::uint64_t reported = 0;
  for (const auto& d : report.drives) reported += d.failures;
  EXPECT_EQ(reported, counters.drive_failures);
  EXPECT_GT(counters.drive_failures + counters.media_errors +
                counters.mount_failures,
            0u);
  EXPECT_GE(agg.fraction_unavailable(), 0.0);
  EXPECT_LE(agg.fraction_unavailable(), 1.0);
}

}  // namespace
}  // namespace tapesim::sched
