#include "fault/model.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tapesim::fault {
namespace {

TEST(BackoffPolicy, DelayGrowsGeometrically) {
  const BackoffPolicy p{3, Seconds{5.0}, 2.0};
  EXPECT_DOUBLE_EQ(p.delay(0).count(), 5.0);
  EXPECT_DOUBLE_EQ(p.delay(1).count(), 10.0);
  EXPECT_DOUBLE_EQ(p.delay(2).count(), 20.0);
}

TEST(BackoffPolicy, UnitMultiplierIsConstantDelay) {
  const BackoffPolicy p{5, Seconds{3.0}, 1.0};
  EXPECT_DOUBLE_EQ(p.delay(0).count(), 3.0);
  EXPECT_DOUBLE_EQ(p.delay(4).count(), 3.0);
}

TEST(BackoffPolicy, RejectsNegativeDelayAndShrinkingMultiplier) {
  BackoffPolicy p;
  p.initial_delay = Seconds{-1.0};
  EXPECT_FALSE(p.try_validate("retry").ok());
  p = BackoffPolicy{};
  p.multiplier = 0.5;
  EXPECT_FALSE(p.try_validate("retry").ok());
}

TEST(FaultConfig, DefaultIsValidAndDisabled) {
  const FaultConfig c;
  EXPECT_TRUE(c.try_validate().ok());
  EXPECT_FALSE(c.enabled());
}

TEST(FaultConfig, AnyNonzeroRateEnables) {
  FaultConfig c;
  c.drive_mtbf = Seconds{1000.0};
  EXPECT_TRUE(c.enabled());
  c = FaultConfig{};
  c.mount_failure_prob = 0.01;
  EXPECT_TRUE(c.enabled());
  c = FaultConfig{};
  c.media_error_per_gb = 0.001;
  EXPECT_TRUE(c.enabled());
  c = FaultConfig{};
  c.robot_jam_prob = 0.01;
  EXPECT_TRUE(c.enabled());
}

TEST(FaultConfig, ValidationIsRecoverableNotFatal) {
  FaultConfig c;
  c.permanent_fraction = 1.5;
  const Status s = c.try_validate();
  ASSERT_FALSE(s.ok());
  // The message names the struct and the offending knob, so a CLI can
  // print it and keep running.
  EXPECT_NE(s.message().find("FaultConfig"), std::string::npos);
}

TEST(FaultConfig, RejectsBadDriveKnobs) {
  FaultConfig c;
  c.drive_mtbf = Seconds{-1.0};
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.drive_mtbf = Seconds{1000.0};
  c.drive_mttr = Seconds{0.0};
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.permanent_fraction = -0.1;
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(FaultConfig, RejectsCertainMountFailure) {
  // Probability 1 would make every cartridge unmountable forever; the
  // model caps at strictly-below-one.
  FaultConfig c;
  c.mount_failure_prob = 1.0;
  EXPECT_FALSE(c.try_validate().ok());
  c.mount_failure_prob = 0.999;
  EXPECT_TRUE(c.try_validate().ok());
  c.max_mount_attempts_per_tape = 0;
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(FaultConfig, RejectsBadMediaEscalation) {
  FaultConfig c;
  c.media_error_per_gb = -0.5;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.degraded_after = 0;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.lost_after = c.degraded_after;  // must be strictly beyond degraded
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.degraded_error_multiplier = 0.5;
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(FaultConfig, RejectsBadRobotKnobs) {
  FaultConfig c;
  c.robot_jam_prob = 1.0;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.robot_jam_prob = 0.1;
  c.robot_jam_clear = Seconds{0.0};
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(FaultConfig, LatentDecayEnablesAndValidates) {
  FaultConfig c;
  c.latent_decay_mtbf = Seconds{86400.0};
  EXPECT_TRUE(c.enabled());
  EXPECT_TRUE(c.try_validate().ok());
  c.latent_decay_mtbf = Seconds{-1.0};
  EXPECT_FALSE(c.try_validate().ok());
  c.latent_decay_mtbf = Seconds{};
  EXPECT_FALSE(c.enabled());
  EXPECT_TRUE(c.try_validate().ok());
}

TEST(OutageConfig, EnablesViaLibraryMtbfAndValidates) {
  FaultConfig c;
  EXPECT_FALSE(c.outage.enabled());
  c.outage.library_mtbf = Seconds{100000.0};
  EXPECT_TRUE(c.outage.enabled());
  EXPECT_TRUE(c.enabled());  // outages alone arm the injector
  EXPECT_TRUE(c.try_validate().ok());
}

TEST(OutageConfig, RejectsBadOutageKnobs) {
  FaultConfig c;
  c.outage.library_mtbf = Seconds{-1.0};
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.outage.library_mtbf = Seconds{100000.0};
  c.outage.library_mttr = Seconds{0.0};
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.outage.disaster_fraction = -0.1;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.outage.disaster_fraction = 1.1;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.outage.dr_bandwidth_fraction = 0.0;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.outage.dr_bandwidth_fraction = 1.5;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.outage.dr_max_concurrent = 0;
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(OutageConfig, DisabledConfigToleratesIdleDrKnobs) {
  // DR knobs only matter once outages are enabled, but they are still
  // validated eagerly: a config file typo should fail fast either way.
  OutageConfig o;
  EXPECT_TRUE(o.try_validate().ok());
  o.disaster_fraction = 1.0;  // boundary values are legal
  o.dr_bandwidth_fraction = 1.0;
  EXPECT_TRUE(o.try_validate().ok());
}

TEST(FailSlowConfig, EnablesViaMtbfOrPlantedEpisodeAndValidates) {
  FaultConfig c;
  EXPECT_FALSE(c.failslow.enabled());
  c.failslow.drive_slow_mtbf = Seconds{50000.0};
  EXPECT_TRUE(c.failslow.enabled());
  EXPECT_TRUE(c.enabled());  // fail-slow alone arms the injector
  EXPECT_TRUE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.robot_slow_mtbf = Seconds{50000.0};
  EXPECT_TRUE(c.failslow.enabled());
  EXPECT_TRUE(c.enabled());
  EXPECT_TRUE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.planted_drive = 0;
  c.failslow.planted_duration = Seconds{3600.0};
  EXPECT_TRUE(c.failslow.enabled());
  EXPECT_TRUE(c.enabled());
  EXPECT_TRUE(c.try_validate().ok());
}

TEST(FailSlowConfig, RejectsBadDriveEpisodeKnobs) {
  FaultConfig c;
  c.failslow.drive_slow_mtbf = Seconds{-1.0};
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.drive_slow_mtbf = Seconds{50000.0};
  c.failslow.drive_slow_duration = Seconds{0.0};
  EXPECT_FALSE(c.try_validate().ok());
  // Severity is a rate multiplier strictly inside (0, 1): 0 would be
  // fail-stop, 1 a no-op, and min may not exceed max.
  c = FaultConfig{};
  c.failslow.drive_severity_min = 0.0;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.drive_severity_max = 1.0;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.drive_severity_min = 0.6;
  c.failslow.drive_severity_max = 0.4;
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(FailSlowConfig, RejectsBadRobotEpisodeKnobs) {
  FaultConfig c;
  c.failslow.robot_slow_mtbf = Seconds{-1.0};
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.robot_slow_mtbf = Seconds{50000.0};
  c.failslow.robot_slow_duration = Seconds{0.0};
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.robot_severity_min = 0.0;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.robot_severity_max = 1.0;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.robot_severity_min = 0.7;
  c.failslow.robot_severity_max = 0.5;
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(FailSlowConfig, RejectsBadPlantedEpisodeKnobs) {
  FaultConfig c;
  c.failslow.planted_drive = 0;
  c.failslow.planted_at = Seconds{-1.0};
  c.failslow.planted_duration = Seconds{3600.0};
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.planted_drive = 0;
  c.failslow.planted_duration = Seconds{0.0};
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.failslow.planted_drive = 0;
  c.failslow.planted_duration = Seconds{3600.0};
  c.failslow.planted_severity = 0.0;
  EXPECT_FALSE(c.try_validate().ok());
  c.failslow.planted_severity = 1.0;
  EXPECT_FALSE(c.try_validate().ok());
}

TEST(FailSlowConfig, DisabledConfigToleratesIdlePlantedKnobs) {
  // Planted knobs are inert while planted_drive is -1; durations and
  // severities only need to be sane once an episode is actually armed.
  FailSlowConfig f;
  EXPECT_TRUE(f.try_validate().ok());
  f.planted_at = Seconds{-5.0};
  f.planted_duration = Seconds{0.0};
  f.planted_severity = 0.0;
  EXPECT_TRUE(f.try_validate().ok());
  EXPECT_FALSE(f.enabled());
}

TEST(CrashConfig, EnablesViaMetadataMtbfAndValidates) {
  FaultConfig c;
  EXPECT_FALSE(c.crash.enabled());
  c.crash.metadata_mtbf = Seconds{200000.0};
  EXPECT_TRUE(c.crash.enabled());
  EXPECT_TRUE(c.enabled());  // crashes alone arm the injector
  EXPECT_TRUE(c.try_validate().ok());
}

TEST(CrashConfig, RejectsNegativeMtbf) {
  FaultConfig c;
  c.crash.metadata_mtbf = Seconds{-1.0};
  const Status s = c.try_validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CrashConfig"), std::string::npos);
}

TEST(CrashConfig, TornTailToggleDoesNotAffectValidity) {
  // torn_tail only shapes the cut; both settings are legal with or
  // without an armed timeline.
  CrashConfig c;
  c.torn_tail = false;
  EXPECT_TRUE(c.try_validate().ok());
  EXPECT_FALSE(c.enabled());
  c.metadata_mtbf = Seconds{1000.0};
  EXPECT_TRUE(c.try_validate().ok());
  EXPECT_TRUE(c.enabled());
}

TEST(FaultConfig, NestedBackoffFailuresSurface) {
  FaultConfig c;
  c.mount_retry.multiplier = 0.0;
  EXPECT_FALSE(c.try_validate().ok());
  c = FaultConfig{};
  c.media_retry.initial_delay = Seconds{-2.0};
  EXPECT_FALSE(c.try_validate().ok());
}

}  // namespace
}  // namespace tapesim::fault
