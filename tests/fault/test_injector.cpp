#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace tapesim::fault {
namespace {

tape::SystemSpec small_spec() {
  tape::SystemSpec spec;
  spec.num_libraries = 2;
  spec.library.drives_per_library = 4;
  spec.library.tapes_per_library = 8;
  return spec;
}

FaultConfig drive_faults(double mtbf, double permanent = 0.0) {
  FaultConfig c;
  c.drive_mtbf = Seconds{mtbf};
  c.drive_mttr = Seconds{600.0};
  c.permanent_fraction = permanent;
  return c;
}

TEST(Injector, DrivesStartOnline) {
  FaultInjector inj(drive_faults(1e4), small_spec());
  for (std::uint32_t d = 0; d < 8; ++d) {
    EXPECT_TRUE(inj.drive_online(DriveId{d}, Seconds{0.0}));
  }
}

TEST(Injector, TimelineAlternatesUpAndDown) {
  FaultInjector inj(drive_faults(1000.0), small_spec());
  // Find the first outage of drive 0 by probing an activity that spans a
  // long horizon, then confirm the up/down/up pattern around it.
  const auto hit =
      inj.failure_within(DriveId{0}, Seconds{0.0}, Seconds{1e7});
  ASSERT_TRUE(hit.has_value());
  const Seconds fail_at = *hit;
  EXPECT_GT(fail_at.count(), 0.0);
  EXPECT_TRUE(inj.drive_online(DriveId{0}, fail_at - Seconds{1e-6}));
  EXPECT_FALSE(inj.drive_online(DriveId{0}, fail_at));
  const auto back = inj.next_online_at(DriveId{0}, fail_at);
  ASSERT_TRUE(back.has_value());
  EXPECT_GT(back->count(), fail_at.count());
  EXPECT_TRUE(inj.drive_online(DriveId{0}, *back));
}

TEST(Injector, FailureWithinIsRelativeAndExcludesCompletion) {
  FaultInjector inj(drive_faults(1000.0), small_spec());
  const auto hit =
      inj.failure_within(DriveId{0}, Seconds{0.0}, Seconds{1e7});
  ASSERT_TRUE(hit.has_value());
  // An activity ending exactly at the failure instant is not interrupted.
  EXPECT_FALSE(
      inj.failure_within(DriveId{0}, Seconds{0.0}, *hit).has_value());
  // Starting mid-way, the offset shrinks accordingly.
  const Seconds start = *hit * 0.5;
  const auto relative =
      inj.failure_within(DriveId{0}, start, Seconds{1e7});
  ASSERT_TRUE(relative.has_value());
  EXPECT_NEAR(relative->count(), (*hit - start).count(), 1e-9);
}

TEST(Injector, PermanentFractionOneNeverRepairs) {
  FaultInjector inj(drive_faults(1000.0, 1.0), small_spec());
  const auto hit =
      inj.failure_within(DriveId{0}, Seconds{0.0}, Seconds{1e7});
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(inj.outage_is_permanent(DriveId{0}, *hit));
  EXPECT_FALSE(inj.next_online_at(DriveId{0}, *hit).has_value());
  EXPECT_FALSE(inj.drive_online(DriveId{0}, Seconds{1e12}));
}

TEST(Injector, ZeroMtbfMeansNoDriveFailures) {
  FaultConfig c;
  c.mount_failure_prob = 0.5;  // keep enabled() true
  FaultInjector inj(c, small_spec());
  EXPECT_FALSE(
      inj.failure_within(DriveId{0}, Seconds{0.0}, Seconds{1e12}).has_value());
  EXPECT_TRUE(inj.drive_online(DriveId{0}, Seconds{1e12}));
}

TEST(Injector, TimelinesAreDeterministic) {
  FaultInjector a(drive_faults(2000.0, 0.3), small_spec());
  FaultInjector b(drive_faults(2000.0, 0.3), small_spec());
  for (std::uint32_t d = 0; d < 8; ++d) {
    const auto ha =
        a.failure_within(DriveId{d}, Seconds{0.0}, Seconds{1e6});
    const auto hb =
        b.failure_within(DriveId{d}, Seconds{0.0}, Seconds{1e6});
    ASSERT_EQ(ha.has_value(), hb.has_value()) << "drive " << d;
    if (ha.has_value()) {
      EXPECT_DOUBLE_EQ(ha->count(), hb->count()) << "drive " << d;
    }
  }
}

TEST(Injector, TimelinesAreIndependentOfQueryOrder) {
  // Per-device substreams: asking about drive 7 first must not change what
  // drive 0 reports. This is what keeps runs reproducible when the
  // scheduler's dispatch order changes.
  FaultInjector fwd(drive_faults(2000.0), small_spec());
  FaultInjector rev(drive_faults(2000.0), small_spec());
  std::vector<std::optional<Seconds>> first(8);
  for (std::uint32_t d = 0; d < 8; ++d) {
    first[d] = fwd.failure_within(DriveId{d}, Seconds{0.0}, Seconds{1e6});
  }
  for (std::uint32_t d = 8; d-- > 0;) {
    const auto hit =
        rev.failure_within(DriveId{d}, Seconds{0.0}, Seconds{1e6});
    ASSERT_EQ(hit.has_value(), first[d].has_value()) << "drive " << d;
    if (hit.has_value()) {
      EXPECT_DOUBLE_EQ(hit->count(), first[d]->count()) << "drive " << d;
    }
  }
}

TEST(Injector, DifferentSeedsGiveDifferentTimelines) {
  FaultConfig a = drive_faults(2000.0);
  FaultConfig b = drive_faults(2000.0);
  b.seed = a.seed + 1;
  FaultInjector ia(a, small_spec());
  FaultInjector ib(b, small_spec());
  const auto ha = ia.failure_within(DriveId{0}, Seconds{0.0}, Seconds{1e7});
  const auto hb = ib.failure_within(DriveId{0}, Seconds{0.0}, Seconds{1e7});
  ASSERT_TRUE(ha.has_value());
  ASSERT_TRUE(hb.has_value());
  EXPECT_NE(ha->count(), hb->count());
}

TEST(Injector, MountFailureRateMatchesConfiguredProbability) {
  FaultConfig c;
  c.mount_failure_prob = 0.25;
  FaultInjector inj(c, small_spec());
  int failures = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (inj.mount_attempt_fails(DriveId{1})) ++failures;
  }
  EXPECT_NEAR(failures, kTrials / 4, kTrials / 40);  // 10% tolerance
  EXPECT_EQ(inj.counters().mount_failures,
            static_cast<std::uint64_t>(failures));
}

TEST(Injector, MediaErrorNeverFiresAtRateZero) {
  FaultConfig c;
  c.mount_failure_prob = 0.5;  // enabled, but no media errors
  FaultInjector inj(c, small_spec());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.media_error(TapeId{0}, 100_GB,
                                 tape::CartridgeHealth::kGood)
                     .has_value());
  }
}

TEST(Injector, MediaErrorFractionLiesWithinTheTransfer) {
  FaultConfig c;
  c.media_error_per_gb = 0.5;
  FaultInjector inj(c, small_spec());
  int hits = 0;
  for (int i = 0; i < 2000; ++i) {
    if (const auto frac = inj.media_error(TapeId{2}, 4_GB,
                                          tape::CartridgeHealth::kGood)) {
      ASSERT_GE(*frac, 0.0);
      ASSERT_LT(*frac, 1.0);
      ++hits;
    }
  }
  // P(error in 4 GB at 0.5/GB) = 1 - e^-2 ~ 0.865.
  EXPECT_NEAR(hits / 2000.0, 0.865, 0.03);
}

TEST(Injector, DegradedHealthRaisesErrorRate) {
  FaultConfig c;
  c.media_error_per_gb = 0.05;
  c.degraded_error_multiplier = 8.0;
  FaultInjector good(c, small_spec());
  FaultInjector degraded(c, small_spec());
  int good_hits = 0;
  int degraded_hits = 0;
  for (int i = 0; i < 4000; ++i) {
    good_hits += good.media_error(TapeId{0}, 1_GB,
                                  tape::CartridgeHealth::kGood)
                     .has_value();
    degraded_hits += degraded
                         .media_error(TapeId{0}, 1_GB,
                                      tape::CartridgeHealth::kDegraded)
                         .has_value();
  }
  EXPECT_GT(degraded_hits, 3 * good_hits);
}

TEST(Injector, MediaErrorsEscalateGoodDegradedLost) {
  FaultConfig c;
  c.media_error_per_gb = 0.1;
  c.degraded_after = 2;
  c.lost_after = 4;
  FaultInjector inj(c, small_spec());
  const TapeId t{5};
  EXPECT_EQ(inj.record_media_error(t), tape::CartridgeHealth::kGood);
  EXPECT_EQ(inj.record_media_error(t), tape::CartridgeHealth::kDegraded);
  EXPECT_EQ(inj.record_media_error(t), tape::CartridgeHealth::kDegraded);
  EXPECT_EQ(inj.record_media_error(t), tape::CartridgeHealth::kLost);
  EXPECT_EQ(inj.media_errors_on(t), 4u);
  EXPECT_EQ(inj.counters().media_errors, 4u);
  // Other cartridges are untouched.
  EXPECT_EQ(inj.media_errors_on(TapeId{6}), 0u);
}

TEST(Injector, RobotJamDelayIsClearTimeOrZero) {
  FaultConfig c;
  c.robot_jam_prob = 0.3;
  c.robot_jam_clear = Seconds{45.0};
  FaultInjector inj(c, small_spec());
  int jams = 0;
  for (int i = 0; i < 10000; ++i) {
    const Seconds d = inj.robot_jam_delay(LibraryId{0});
    if (d.count() > 0.0) {
      EXPECT_DOUBLE_EQ(d.count(), 45.0);
      ++jams;
    }
  }
  EXPECT_NEAR(jams / 10000.0, 0.3, 0.03);
  EXPECT_EQ(inj.counters().robot_jams, static_cast<std::uint64_t>(jams));
}

TEST(Injector, LatentDecayDisabledMeansNoDamage) {
  FaultConfig c;
  c.mount_failure_prob = 0.5;  // enabled, but no decay
  FaultInjector inj(c, small_spec());
  for (std::uint32_t t = 0; t < 16; ++t) {
    EXPECT_EQ(inj.undetected_damage(TapeId{t}, Seconds{1e12}), 0u);
    EXPECT_EQ(inj.observe_damage(TapeId{t}, Seconds{1e12}),
              tape::CartridgeHealth::kGood);
    EXPECT_EQ(inj.latent_observed_on(TapeId{t}), 0u);
  }
  EXPECT_EQ(inj.counters().latent_events, 0u);
  EXPECT_EQ(inj.counters().latent_observed, 0u);
}

TEST(Injector, LatentDecayAccruesMonotonicallyWithTime) {
  FaultConfig c;
  c.latent_decay_mtbf = Seconds{100.0};
  FaultInjector inj(c, small_spec());
  const TapeId t{3};
  std::uint32_t prev = 0;
  std::uint64_t total = 0;
  for (const double at : {0.0, 50.0, 500.0, 5000.0, 50000.0}) {
    const std::uint32_t now = inj.undetected_damage(t, Seconds{at});
    EXPECT_GE(now, prev);
    prev = now;
  }
  // ~500 events over 5e4 s at one per 100 s; allow a wide deterministic
  // tolerance, the point is "many, and roughly at rate".
  EXPECT_GT(prev, 300u);
  EXPECT_LT(prev, 800u);
  // Every materialised event is counted exactly once, and re-querying the
  // same instant materialises nothing new.
  total = inj.counters().latent_events;
  EXPECT_GE(total, prev);
  EXPECT_EQ(inj.undetected_damage(t, Seconds{50000.0}), prev);
  EXPECT_EQ(inj.counters().latent_events, total);
}

TEST(Injector, LatentDecayIsDeterministicAndOrderIndependent) {
  FaultConfig c;
  c.latent_decay_mtbf = Seconds{500.0};
  FaultInjector fwd(c, small_spec());
  FaultInjector rev(c, small_spec());
  std::vector<std::uint32_t> first(16);
  for (std::uint32_t t = 0; t < 16; ++t) {
    first[t] = fwd.undetected_damage(TapeId{t}, Seconds{20000.0});
  }
  for (std::uint32_t t = 16; t-- > 0;) {
    EXPECT_EQ(rev.undetected_damage(TapeId{t}, Seconds{20000.0}), first[t])
        << "tape " << t;
  }
}

TEST(Injector, ObserveDamageFoldsEverythingAndEscalatesOnce) {
  FaultConfig c;
  c.latent_decay_mtbf = Seconds{10.0};
  c.degraded_after = 2;
  c.lost_after = 5;
  FaultInjector inj(c, small_spec());
  const TapeId t{1};
  // Plenty of time for far more than lost_after events to accrue silently:
  // the cartridge's true state and its detected health diverge until the
  // first observation folds every accrued event at once.
  const Seconds at{1000.0};
  const std::uint32_t hidden = inj.undetected_damage(t, at);
  ASSERT_GE(hidden, 5u);
  EXPECT_EQ(inj.media_errors_on(t), 0u);
  EXPECT_EQ(inj.counters().degraded_cartridges, 0u);
  EXPECT_EQ(inj.counters().lost_cartridges, 0u);

  std::uint32_t found = 0;
  EXPECT_EQ(inj.observe_damage(t, at, &found), tape::CartridgeHealth::kLost);
  EXPECT_EQ(found, hidden);
  EXPECT_EQ(inj.latent_observed_on(t), hidden);
  EXPECT_EQ(inj.media_errors_on(t), hidden);
  EXPECT_EQ(inj.counters().latent_observed, hidden);
  // One fold that crosses both thresholds counts each crossing exactly
  // once.
  EXPECT_EQ(inj.counters().degraded_cartridges, 1u);
  EXPECT_EQ(inj.counters().lost_cartridges, 1u);

  // Observing again with nothing new accrued finds nothing and keeps every
  // count stable.
  found = 99;
  EXPECT_EQ(inj.observe_damage(t, at, &found), tape::CartridgeHealth::kLost);
  EXPECT_EQ(found, 0u);
  EXPECT_EQ(inj.media_errors_on(t), hidden);
  EXPECT_EQ(inj.counters().lost_cartridges, 1u);
  EXPECT_EQ(inj.undetected_damage(t, at), 0u);
}

TEST(Injector, ObservedLatentDamageMixesWithReadErrors) {
  // Latent findings and active read errors accumulate into the same
  // escalation ledger, in any interleaving, and each threshold crossing is
  // counted once no matter which path crossed it.
  FaultConfig c;
  c.latent_decay_mtbf = Seconds{50.0};
  c.media_error_per_gb = 0.01;  // irrelevant rate; errors recorded directly
  c.degraded_after = 2;
  c.lost_after = 50;
  FaultInjector inj(c, small_spec());
  const TapeId t{4};

  (void)inj.record_media_error(t);  // 1 observed error
  const Seconds at{400.0};
  const std::uint32_t hidden = inj.undetected_damage(t, at);
  ASSERT_GE(hidden, 1u);
  const auto after_fold = inj.observe_damage(t, at);
  const std::uint32_t total = 1 + hidden;
  EXPECT_EQ(inj.media_errors_on(t), total);
  EXPECT_EQ(after_fold, total >= 2 ? tape::CartridgeHealth::kDegraded
                                   : tape::CartridgeHealth::kGood);
  (void)inj.record_media_error(t);
  (void)inj.record_media_error(t);
  EXPECT_EQ(inj.media_errors_on(t), total + 2);
  EXPECT_EQ(inj.counters().degraded_cartridges, 1u);
  EXPECT_EQ(inj.counters().lost_cartridges, 0u);
  // The latent ledger tracks only surfaced decay, not read errors.
  EXPECT_EQ(inj.latent_observed_on(t), hidden);
}

TEST(Injector, LatentHitPositionLiesWithinTheTransfer) {
  FaultConfig c;
  c.latent_decay_mtbf = Seconds{100.0};
  FaultInjector inj(c, small_spec());
  for (int i = 0; i < 1000; ++i) {
    const double pos = inj.latent_hit_position(TapeId{2});
    EXPECT_GE(pos, 0.0);
    EXPECT_LT(pos, 1.0);
  }
}

TEST(Injector, LibraryOutageTimelineAlternates) {
  FaultConfig c;
  c.outage.library_mtbf = Seconds{5000.0};
  c.outage.library_mttr = Seconds{600.0};
  FaultInjector inj(c, small_spec());
  const LibraryId lib{0};
  EXPECT_TRUE(inj.library_up(lib, Seconds{0.0}));
  // Probe forward until the first outage materialises.
  Seconds t{0.0};
  while (inj.library_up(lib, t) && t.count() < 1e7) t += Seconds{50.0};
  ASSERT_LT(t.count(), 1e7) << "no outage in 1e7 s at MTBF 5e3";
  EXPECT_FALSE(inj.outage_is_disaster(lib, t));  // disaster_fraction = 0
  const Seconds began = inj.outage_started_at(lib, t);
  EXPECT_LE(began.count(), t.count());
  const auto back = inj.library_up_at(lib, t);
  ASSERT_TRUE(back.has_value());
  EXPECT_GT(back->count(), began.count());
  EXPECT_TRUE(inj.library_up(lib, *back));
}

TEST(Injector, LibraryOutageFoldsIntoDriveQueries) {
  // A library outage over healthy drive hardware downs the drive (the
  // scheduler reuses its drive-fault machinery), but the drive's *own*
  // timeline stays online and the outage is not permanent.
  FaultConfig c;
  c.outage.library_mtbf = Seconds{5000.0};
  c.outage.library_mttr = Seconds{600.0};
  FaultInjector inj(c, small_spec());
  const LibraryId lib{1};
  Seconds t{0.0};
  while (inj.library_up(lib, t) && t.count() < 1e7) t += Seconds{50.0};
  ASSERT_LT(t.count(), 1e7);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const DriveId d{lib.value() * 4 + i};
    EXPECT_FALSE(inj.drive_online(d, t));
    EXPECT_TRUE(inj.drive_timeline_online(d, t));
    EXPECT_FALSE(inj.outage_is_permanent(d, t));
    const auto back = inj.next_online_at(d, t);
    ASSERT_TRUE(back.has_value());
    EXPECT_DOUBLE_EQ(back->count(), inj.library_up_at(lib, t)->count());
  }
}

TEST(Injector, NextOnlineAtDoesNotAdvanceSharedTimelines) {
  // Regression: next_online_at previews future renewals and must do so on
  // timeline *copies*. It used to advance the real library timeline past
  // `now`, after which outage_is_permanent saw the drive as up and hit the
  // "drive is not in an outage" invariant.
  FaultConfig c;
  c.outage.library_mtbf = Seconds{5000.0};
  c.outage.library_mttr = Seconds{600.0};
  FaultInjector inj(c, small_spec());
  const LibraryId lib{0};
  Seconds t{0.0};
  while (inj.library_up(lib, t) && t.count() < 1e7) t += Seconds{50.0};
  ASSERT_LT(t.count(), 1e7);
  const DriveId d{0};
  const auto back = inj.next_online_at(d, t);
  ASSERT_TRUE(back.has_value());
  // The preview must not have consumed the outage window: the drive is
  // still down now, still non-permanent, and a second preview agrees.
  EXPECT_FALSE(inj.drive_online(d, t));
  EXPECT_FALSE(inj.outage_is_permanent(d, t));
  EXPECT_FALSE(inj.library_up(lib, t));
  EXPECT_DOUBLE_EQ(inj.next_online_at(d, t)->count(), back->count());
}

TEST(Injector, DisasterFractionOneNeverRestores) {
  FaultConfig c;
  c.outage.library_mtbf = Seconds{5000.0};
  c.outage.disaster_fraction = 1.0;
  FaultInjector inj(c, small_spec());
  const LibraryId lib{0};
  Seconds t{0.0};
  while (inj.library_up(lib, t) && t.count() < 1e7) t += Seconds{50.0};
  ASSERT_LT(t.count(), 1e7);
  EXPECT_TRUE(inj.outage_is_disaster(lib, t));
  EXPECT_FALSE(inj.library_up_at(lib, t).has_value());
  EXPECT_TRUE(inj.outage_is_permanent(DriveId{0}, t));
  EXPECT_FALSE(inj.library_up(lib, Seconds{1e12}));
}

TEST(Injector, OutageTimelinesAreIndependentPerLibrary) {
  FaultConfig c;
  c.outage.library_mtbf = Seconds{5000.0};
  c.outage.library_mttr = Seconds{600.0};
  FaultInjector fwd(c, small_spec());
  FaultInjector rev(c, small_spec());
  auto first_outage = [](FaultInjector& inj, LibraryId lib) {
    Seconds t{0.0};
    while (inj.library_up(lib, t) && t.count() < 1e7) t += Seconds{50.0};
    return inj.outage_started_at(lib, t);
  };
  const Seconds a0 = first_outage(fwd, LibraryId{0});
  const Seconds a1 = first_outage(fwd, LibraryId{1});
  EXPECT_NE(a0.count(), a1.count());  // distinct substreams
  // Query order does not matter.
  EXPECT_DOUBLE_EQ(first_outage(rev, LibraryId{1}).count(), a1.count());
  EXPECT_DOUBLE_EQ(first_outage(rev, LibraryId{0}).count(), a0.count());
}

TEST(Injector, PerLibraryStreamsSurviveLazyFleetGrowth) {
  // Regression: robot-jam and outage streams are addressed by library id
  // and must be identical whether the library existed at construction or
  // was materialised lazily on first query (DR re-replication can route
  // work to libraries beyond the initial fleet).
  tape::SystemSpec big = small_spec();
  big.num_libraries = 4;
  FaultConfig c;
  c.robot_jam_prob = 0.3;
  c.robot_jam_clear = Seconds{45.0};
  c.outage.library_mtbf = Seconds{5000.0};
  c.outage.library_mttr = Seconds{600.0};
  FaultInjector small(c, small_spec());  // 2 libraries at construction
  FaultInjector large(c, big);           // 4 libraries at construction
  const LibraryId beyond{3};
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(small.robot_jam_delay(beyond).count(),
                     large.robot_jam_delay(beyond).count())
        << "draw " << i;
  }
  for (double at : {1000.0, 20000.0, 40000.0, 80000.0}) {
    EXPECT_EQ(small.library_up(beyond, Seconds{at}),
              large.library_up(beyond, Seconds{at}))
        << "t=" << at;
  }
}

TEST(InjectorDeath, InvalidConfigAborts) {
  FaultConfig c;
  c.permanent_fraction = 2.0;
  EXPECT_DEATH(FaultInjector(c, small_spec()), "validate");
}

// --- metadata crash timeline ---

FaultConfig crash_faults(double mtbf) {
  FaultConfig c;
  c.crash.metadata_mtbf = Seconds{mtbf};
  return c;
}

TEST(Injector, CrashTimelineIsLazyAndOrdered) {
  FaultInjector inj(crash_faults(5000.0), small_spec());
  // Nothing fires before the first sampled arrival.
  EXPECT_FALSE(inj.next_metadata_crash(Seconds{0.0}).has_value());
  EXPECT_EQ(inj.counters().metadata_crashes, 0u);
  // Probing far into the future drains the arrivals one at a time, in
  // strictly increasing order.
  Seconds last{-1.0};
  std::uint64_t seen = 0;
  while (const auto ev = inj.next_metadata_crash(Seconds{1e5})) {
    EXPECT_GT(ev->at.count(), last.count());
    EXPECT_GE(ev->torn, 0.0);
    EXPECT_LT(ev->torn, 1.0);
    last = ev->at;
    ++seen;
  }
  EXPECT_GT(seen, 0u);
  EXPECT_EQ(inj.counters().metadata_crashes, seen);
  // A later probe resumes where the drain stopped.
  const auto next = inj.next_metadata_crash(Seconds{1e9});
  ASSERT_TRUE(next.has_value());
  EXPECT_GT(next->at.count(), 1e5);
}

TEST(Injector, CrashTimelineIsDeterministic) {
  FaultInjector a(crash_faults(3000.0), small_spec());
  FaultInjector b(crash_faults(3000.0), small_spec());
  for (int i = 0; i < 5; ++i) {
    const auto ea = a.next_metadata_crash(Seconds{1e6});
    const auto eb = b.next_metadata_crash(Seconds{1e6});
    ASSERT_EQ(ea.has_value(), eb.has_value());
    if (!ea.has_value()) break;
    EXPECT_DOUBLE_EQ(ea->at.count(), eb->at.count());
    EXPECT_DOUBLE_EQ(ea->torn, eb->torn);
  }
}

TEST(Injector, CrashSubstreamDoesNotPerturbOtherClasses) {
  // Seed-split substreams: arming crashes must not move a single drive
  // failure (and vice versa, the drive class leaves the crash stream
  // alone).
  FaultConfig plain = drive_faults(2000.0);
  FaultConfig armed = drive_faults(2000.0);
  armed.crash.metadata_mtbf = Seconds{4000.0};
  FaultInjector ip(plain, small_spec());
  FaultInjector ia(armed, small_spec());
  for (std::uint32_t d = 0; d < 8; ++d) {
    const auto hp = ip.failure_within(DriveId{d}, Seconds{0.0}, Seconds{1e6});
    const auto ha = ia.failure_within(DriveId{d}, Seconds{0.0}, Seconds{1e6});
    ASSERT_EQ(hp.has_value(), ha.has_value()) << "drive " << d;
    if (hp.has_value()) {
      EXPECT_DOUBLE_EQ(hp->count(), ha->count()) << "drive " << d;
    }
  }
}

TEST(Injector, ZeroMtbfMeansNoCrashes) {
  FaultConfig c;
  c.mount_failure_prob = 0.5;  // enabled, but no crash timeline
  FaultInjector inj(c, small_spec());
  EXPECT_FALSE(inj.next_metadata_crash(Seconds{1e12}).has_value());
  EXPECT_EQ(inj.counters().metadata_crashes, 0u);
}

}  // namespace
}  // namespace tapesim::fault
