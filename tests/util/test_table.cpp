#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/units.hpp"

namespace tapesim {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add("a", 1);
  t.add("long-name", 123);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name       value"), std::string::npos);
  EXPECT_NE(s.find("long-name  123"), std::string::npos);
}

TEST(Table, FormatsMixedTypes) {
  Table t({"a", "b", "c", "d"});
  t.add(std::string{"text"}, 42, 3.14159, 80_MBps);
  EXPECT_EQ(t.rows(), 1u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("text"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.142"), std::string::npos);  // default 3-digit precision
  EXPECT_NE(s.find("80 MB/s"), std::string::npos);
}

TEST(Table, NumTrimsTrailingZeros) {
  EXPECT_EQ(Table::num(1.5), "1.5");
  EXPECT_EQ(Table::num(2.0), "2");
  EXPECT_EQ(Table::num(0.125, 3), "0.125");
  EXPECT_EQ(Table::num(0.1234567, 2), "0.12");
  EXPECT_EQ(Table::num(std::nan("")), "nan");
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"x", "y"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  std::ostringstream ss;
  t.print_csv(ss);
  const std::string csv = ss.str();
  EXPECT_NE(csv.find("plain,\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(Table, CsvRoundTripThroughFile) {
  Table t({"k", "v"});
  t.add("alpha", 1);
  t.add("beta", 2);
  const std::string path = "/tmp/tapesim_table_test.csv";
  t.save_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "alpha,1");
  std::remove(path.c_str());
}

TEST(Table, SaveCsvFailsOnBadPath) {
  Table t({"a"});
  EXPECT_THROW(t.save_csv("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(TableDeath, RowArityMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "arity");
}

}  // namespace
}  // namespace tapesim
