#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_set>

namespace tapesim {
namespace {

TEST(StrongId, DefaultConstructedIsInvalid) {
  ObjectId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(ObjectId{3}.valid());
}

TEST(StrongId, ValueAndIndexAgree) {
  TapeId t{17};
  EXPECT_EQ(t.value(), 17u);
  EXPECT_EQ(t.index(), 17u);
}

TEST(StrongId, OrderingAndEquality) {
  EXPECT_LT(DriveId{1}, DriveId{2});
  EXPECT_EQ(DriveId{5}, DriveId{5});
  EXPECT_NE(DriveId{5}, DriveId{6});
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ObjectId, TapeId>);
  static_assert(!std::is_convertible_v<ObjectId, TapeId>);
  static_assert(!std::is_convertible_v<std::uint32_t, ObjectId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<ObjectId> set;
  set.insert(ObjectId{1});
  set.insert(ObjectId{2});
  set.insert(ObjectId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongId, StreamOutput) {
  std::ostringstream ss;
  ss << LibraryId{2} << " " << LibraryId{};
  EXPECT_EQ(ss.str(), "2 <invalid>");
}

}  // namespace
}  // namespace tapesim
