#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace tapesim {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r{0};
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(r());
  EXPECT_EQ(values.size(), 100u) << "degenerate all-zero state";
}

TEST(Rng, UniformWithinUnitInterval) {
  Rng r{7};
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r{8};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformBelowCoversFullRangeWithoutBias) {
  Rng r{9};
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[r.uniform_below(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // 10% tolerance
  }
}

TEST(Rng, UniformBelowEdgeCases) {
  Rng r{10};
  EXPECT_EQ(r.uniform_below(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_below(1), 0u);
}

TEST(Rng, UniformInIsInclusive) {
  Rng r{11};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_in(3, 5);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent{42};
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1() == f2()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministicGivenParentState) {
  Rng p1{42};
  Rng p2{42};
  Rng f1 = p1.fork(7);
  Rng f2 = p2.fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f1(), f2());
}

TEST(Rng, ForkDependsOnConsumption) {
  Rng p1{42};
  Rng p2{42};
  (void)p2();  // consume one draw
  Rng f1 = p1.fork(7);
  Rng f2 = p2.fork(7);
  EXPECT_NE(f1(), f2());
}

TEST(Rng, SplitIsDeterministicByName) {
  Rng p1{42};
  Rng p2{42};
  Rng a = p1.split("fault");
  Rng b = p2.split("fault");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitDistinctNamesDiverge) {
  Rng parent{42};
  Rng fault = parent.split("fault");
  Rng workload = parent.split("workload");
  Rng placement = parent.split("placement");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t f = fault();
    if (f == workload()) ++same;
    if (f == placement()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitSubstreamsAreIndependentOfEachOthersConsumption) {
  // The reproducibility contract: draws on one named substream never
  // perturb another. Drain the workload stream heavily in one universe and
  // not at all in the other; the fault stream must be bit-identical.
  Rng parent1{99};
  Rng parent2{99};
  Rng workload1 = parent1.split("workload");
  Rng fault1 = parent1.split("fault");
  Rng fault2 = parent2.split("fault");
  for (int i = 0; i < 5000; ++i) (void)workload1();
  for (int i = 0; i < 200; ++i) EXPECT_EQ(fault1(), fault2());
}

TEST(Rng, SplitSubstreamsDoNotCorrelate) {
  // Pearson correlation of paired uniforms from two named substreams of
  // the same master seed must be statistically indistinguishable from
  // independent streams (|rho| ~ O(1/sqrt(n))).
  Rng parent{2026};
  Rng a = parent.split("fault");
  Rng b = parent.split("workload");
  const int n = 100000;
  double sa = 0.0, sb = 0.0, saa = 0.0, sbb = 0.0, sab = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sa += x;
    sb += y;
    saa += x * x;
    sbb += y * y;
    sab += x * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double var_a = saa / n - (sa / n) * (sa / n);
  const double var_b = sbb / n - (sb / n) * (sb / n);
  const double rho = cov / std::sqrt(var_a * var_b);
  EXPECT_LT(std::abs(rho), 0.02) << "substreams correlate";
}

TEST(Rng, SplitMatchesForkOfNameHash) {
  // split() is fork() addressed by name, so it inherits fork's
  // consumption-dependence: splitting after a draw yields a different
  // stream (documented sharp edge, pinned here).
  Rng p1{42};
  Rng p2{42};
  (void)p2();
  Rng s1 = p1.split("fault");
  Rng s2 = p2.split("fault");
  EXPECT_NE(s1(), s2());
}

TEST(Shuffle, ProducesAPermutation) {
  Rng r{13};
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  shuffle(v, r);
  std::set<int> contents(v.begin(), v.end());
  EXPECT_EQ(contents.size(), 10u);
}

TEST(Shuffle, MovesElements) {
  Rng r{14};
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  shuffle(v, r);
  EXPECT_NE(v, original);
}

TEST(Splitmix, KnownGoldenValues) {
  // Reference values from the splitmix64 reference implementation with
  // state 0: first output must be 0xE220A8397B1DCDAF.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ull);
}

}  // namespace
}  // namespace tapesim
