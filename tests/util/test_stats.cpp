#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace tapesim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, HandComputedMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares implementations lose all precision here.
  RunningStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng{3};
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 20.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
  EXPECT_NEAR(a.sum(), whole.sum(), 1e-6);
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(3.0);
  a.merge(b);  // empty.merge(full)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats c;
  a.merge(c);  // full.merge(empty)
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(SampleSet, PercentilesInterpolateLinearly) {
  SampleSet s;
  for (const double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(SampleSet, PercentileHandlesUnsortedInsertions) {
  SampleSet s;
  for (const double x : {5.0, 1.0, 4.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(SampleSet, ConfidenceIntervalShrinksWithSamples) {
  Rng rng{4};
  SampleSet small;
  SampleSet large;
  for (int i = 0; i < 50; ++i) small.add(rng.uniform());
  for (int i = 0; i < 5000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  // For U(0,1): sd = sqrt(1/12); CI half-width ~ 1.96 * sd / sqrt(n).
  EXPECT_NEAR(large.ci95_halfwidth(),
              1.96 * std::sqrt(1.0 / 12.0) / std::sqrt(5000.0), 2e-3);
}

TEST(SampleSet, PercentileAfterMoreInsertionsStaysCorrect) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);
  s.add(0.0);  // forces a re-sort
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
}

TEST(SampleSet, EmptySetReportsZeroPercentilesAndCi) {
  // The overload storm bench asks for p99 over shed-survivor sets that can
  // legitimately be empty; the statistics must degrade, not abort.
  SampleSet s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(SampleSet, SingleSampleEdgeCases) {
  SampleSet s;
  s.add(7.25);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.25);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 7.25);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 7.25);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SampleSet, AllEqualSamplesNeverYieldNaN) {
  // Welford's m2 accumulates floating-point dust that can land a hair
  // below zero; stddev/CI must clamp instead of propagating sqrt(-eps).
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.add(0.1 + 0.2);  // 0.30000000000000004
  EXPECT_FALSE(std::isnan(s.stddev()));
  EXPECT_GE(s.stddev(), 0.0);
  EXPECT_FALSE(std::isnan(s.ci95_halfwidth()));
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), s.percentile(1.0));
}

TEST(RunningStats, AllEqualVarianceClampsToZero) {
  RunningStats s;
  for (int i = 0; i < 257; ++i) s.add(1.0 / 3.0);
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_FALSE(std::isnan(s.stddev()));
}

}  // namespace
}  // namespace tapesim
