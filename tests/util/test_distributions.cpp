#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tapesim {
namespace {

TEST(BoundedPareto, RejectsBadParameters) {
  EXPECT_THROW(BoundedParetoDistribution(0.0, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(2.0, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(1.0, 2.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(1.0, 2.0, -1.0),
               std::invalid_argument);
}

TEST(BoundedPareto, SamplesStayInRange) {
  const BoundedParetoDistribution dist(2.0, 50.0, 1.3);
  Rng rng{1};
  for (int i = 0; i < 100000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LE(x, 50.0);
  }
}

TEST(BoundedPareto, DegenerateRangeIsConstant) {
  const BoundedParetoDistribution dist(5.0, 5.0, 2.0);
  Rng rng{2};
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 5.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 5.0);
}

class BoundedParetoMean
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(BoundedParetoMean, EmpiricalMeanMatchesAnalytic) {
  const auto [lo, hi, alpha] = GetParam();
  const BoundedParetoDistribution dist(lo, hi, alpha);
  Rng rng{42};
  RunningStats stats;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) stats.add(dist.sample(rng));
  // 5-sigma band around the analytic mean.
  const double sem = stats.stddev() / std::sqrt(double(kDraws));
  EXPECT_NEAR(stats.mean(), dist.mean(), 5.0 * sem + 1e-9)
      << "lo=" << lo << " hi=" << hi << " alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BoundedParetoMean,
    ::testing::Values(std::tuple{1.0, 2.0, 2.0}, std::tuple{1.0, 64.0, 1.2},
                      std::tuple{100.0, 150.0, 1.5},
                      std::tuple{1.0, 100.0, 1.0},  // alpha == 1 special case
                      std::tuple{0.5, 32.0, 0.7},
                      std::tuple{10.0, 11.0, 3.0}));

TEST(BoundedPareto, AnalyticMeanKnownValue) {
  // lo=1, hi=2, alpha=2: E[X] = 4/3 (hand-derived).
  const BoundedParetoDistribution dist(1.0, 2.0, 2.0);
  EXPECT_NEAR(dist.mean(), 4.0 / 3.0, 1e-12);
}

TEST(BoundedPareto, SkewsTowardLowerBound) {
  const BoundedParetoDistribution dist(1.0, 100.0, 1.5);
  Rng rng{3};
  int below_10 = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (dist.sample(rng) < 10.0) ++below_10;
  }
  EXPECT_GT(below_10, kDraws * 8 / 10);  // heavy lower tail
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(ZipfDistribution(0, 0.5), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -0.1), std::invalid_argument);
}

TEST(Zipf, ProbabilitiesAreNormalizedAndMonotone) {
  const ZipfDistribution dist(300, 0.7);
  const auto& probs = dist.probabilities();
  ASSERT_EQ(probs.size(), 300u);
  double sum = 0.0;
  for (std::size_t r = 0; r < probs.size(); ++r) {
    sum += probs[r];
    if (r > 0) EXPECT_LE(probs[r], probs[r - 1]);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, AlphaZeroIsUniform) {
  const ZipfDistribution dist(50, 0.0);
  for (const double p : dist.probabilities()) {
    EXPECT_NEAR(p, 1.0 / 50.0, 1e-12);
  }
}

TEST(Zipf, ExactPowerLawRatios) {
  const ZipfDistribution dist(10, 1.0);
  const auto& p = dist.probabilities();
  // P_r = c / r, so p[0] / p[r] == r + 1.
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(p[0] / p[r], static_cast<double>(r + 1), 1e-9);
  }
}

class ZipfSampling : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSampling, EmpiricalFrequenciesMatchProbabilities) {
  const double alpha = GetParam();
  const std::size_t n = 40;
  const ZipfDistribution dist(n, alpha);
  Rng rng{99};
  std::vector<int> counts(n, 0);
  const int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) ++counts[dist.sample(rng)];
  for (std::size_t r = 0; r < n; ++r) {
    const double expected = dist.probabilities()[r] * kDraws;
    const double tolerance = 5.0 * std::sqrt(expected) + 5.0;
    EXPECT_NEAR(counts[r], expected, tolerance) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfSampling,
                         ::testing::Values(0.0, 0.3, 0.7, 1.0));

TEST(Discrete, RejectsDegenerateWeights) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({1.0, -0.5}), std::invalid_argument);
}

TEST(Discrete, NormalizesWeights) {
  const DiscreteDistribution dist({2.0, 6.0});
  EXPECT_NEAR(dist.probabilities()[0], 0.25, 1e-12);
  EXPECT_NEAR(dist.probabilities()[1], 0.75, 1e-12);
}

TEST(Discrete, ZeroWeightEntriesNeverSampled) {
  const DiscreteDistribution dist({1.0, 0.0, 1.0, 0.0});
  Rng rng{5};
  for (int i = 0; i < 10000; ++i) {
    const std::size_t s = dist.sample(rng);
    EXPECT_TRUE(s == 0 || s == 2);
  }
}

TEST(Discrete, SingleOutcome) {
  const DiscreteDistribution dist({3.0});
  Rng rng{6};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 0u);
}

TEST(SampleWithoutReplacement, ProducesDistinctValuesInRange) {
  Rng rng{7};
  for (int trial = 0; trial < 100; ++trial) {
    const auto picks = sample_without_replacement(100, 30, rng);
    ASSERT_EQ(picks.size(), 30u);
    std::set<std::uint32_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 30u);
    for (const auto p : picks) EXPECT_LT(p, 100u);
  }
}

TEST(SampleWithoutReplacement, FullDrawIsAPermutation) {
  Rng rng{8};
  const auto picks = sample_without_replacement(20, 20, rng);
  std::set<std::uint32_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 20u);
}

TEST(SampleWithoutReplacement, IsApproximatelyUniform) {
  Rng rng{9};
  std::vector<int> counts(10, 0);
  const int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    for (const auto p : sample_without_replacement(10, 3, rng)) ++counts[p];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kTrials * 3 / 10, kTrials / 20);
  }
}

TEST(SampleWithoutReplacement, ZeroDraw) {
  Rng rng{10};
  EXPECT_TRUE(sample_without_replacement(5, 0, rng).empty());
}

}  // namespace
}  // namespace tapesim
