#include "util/ini.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tapesim {
namespace {

IniFile parse(const std::string& text) {
  std::istringstream in(text);
  return IniFile::parse(in);
}

TEST(Ini, ParsesSectionsAndKeys) {
  const IniFile ini = parse(
      "top = 1\n"
      "[system]\n"
      "libraries = 3\n"
      "drives = 8\n"
      "[workload]\n"
      "alpha = 0.3\n");
  EXPECT_EQ(ini.get_or("top", ""), "1");
  EXPECT_EQ(ini.get_or("system.libraries", ""), "3");
  EXPECT_EQ(ini.get_or("system.drives", ""), "8");
  EXPECT_EQ(ini.get_or("workload.alpha", ""), "0.3");
  EXPECT_FALSE(ini.has("missing"));
  EXPECT_EQ(ini.values().size(), 4u);
}

TEST(Ini, TrimsWhitespaceAndSkipsCommentsAndBlanks) {
  const IniFile ini = parse(
      "\n"
      "  # full-line comment\n"
      "  key1 =  spaced value \n"
      "key2 = 7   ; trailing comment\n"
      "\t\n");
  EXPECT_EQ(ini.get_or("key1", ""), "spaced value");
  EXPECT_EQ(ini.get_or("key2", ""), "7");
}

TEST(Ini, TypedAccessors) {
  const IniFile ini = parse(
      "[a]\n"
      "num = 2.5\n"
      "int = -12\n"
      "yes = true\n"
      "no = off\n");
  EXPECT_DOUBLE_EQ(ini.number_or("a.num", 0.0), 2.5);
  EXPECT_EQ(ini.integer_or("a.int", 0), -12);
  EXPECT_TRUE(ini.flag_or("a.yes", false));
  EXPECT_FALSE(ini.flag_or("a.no", true));
  // Fallbacks for absent keys.
  EXPECT_DOUBLE_EQ(ini.number_or("a.missing", 9.5), 9.5);
  EXPECT_EQ(ini.integer_or("a.missing", 4), 4);
  EXPECT_TRUE(ini.flag_or("a.missing", true));
}

TEST(Ini, TypedAccessorsRejectMalformedValues) {
  const IniFile ini = parse("x = banana\ny = 1.5extra\n");
  EXPECT_THROW((void)ini.number_or("x", 0.0), std::runtime_error);
  EXPECT_THROW((void)ini.integer_or("y", 0), std::runtime_error);
  EXPECT_THROW((void)ini.flag_or("x", false), std::runtime_error);
}

TEST(Ini, ParseErrorsCarryLineNumbers) {
  try {
    parse("good = 1\nbad line without equals\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse("[unterminated\n"), std::runtime_error);
  EXPECT_THROW(parse("[]\n"), std::runtime_error);
  EXPECT_THROW(parse("= value\n"), std::runtime_error);
  EXPECT_THROW(parse("dup = 1\ndup = 2\n"), std::runtime_error);
}

TEST(Ini, LoadsFromFile) {
  const std::string path = "/tmp/tapesim_ini_test.ini";
  {
    std::ofstream out(path);
    out << "[run]\nscheme = pbp\nalpha = 0.7\n";
  }
  const IniFile ini = IniFile::load(path);
  EXPECT_EQ(ini.get_or("run.scheme", ""), "pbp");
  EXPECT_DOUBLE_EQ(ini.number_or("run.alpha", 0.0), 0.7);
  std::remove(path.c_str());
  EXPECT_THROW(IniFile::load("/nonexistent/x.ini"), std::runtime_error);
}

}  // namespace
}  // namespace tapesim
