#include "util/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tapesim {
namespace {

TEST(Bytes, LiteralsScaleDecimally) {
  EXPECT_EQ((1_KB).count(), 1000u);
  EXPECT_EQ((1_MB).count(), 1000u * 1000u);
  EXPECT_EQ((1_GB).count(), 1000ull * 1000 * 1000);
  EXPECT_EQ((400_GB).count(), 400ull * 1000 * 1000 * 1000);
}

TEST(Bytes, ArithmeticAndComparison) {
  Bytes a{100};
  Bytes b{40};
  EXPECT_EQ((a + b).count(), 140u);
  EXPECT_EQ((a - b).count(), 60u);
  a += b;
  EXPECT_EQ(a.count(), 140u);
  a -= b;
  EXPECT_EQ(a.count(), 100u);
  EXPECT_LT(b, a);
  EXPECT_GT(a, b);
  EXPECT_EQ(a, Bytes{100});
}

TEST(Bytes, DistanceIsSymmetric) {
  EXPECT_EQ(Bytes::distance(Bytes{10}, Bytes{4}).count(), 6u);
  EXPECT_EQ(Bytes::distance(Bytes{4}, Bytes{10}).count(), 6u);
  EXPECT_EQ(Bytes::distance(Bytes{7}, Bytes{7}).count(), 0u);
}

TEST(Bytes, UnitConversions) {
  EXPECT_DOUBLE_EQ((2_GB).gigabytes(), 2.0);
  EXPECT_DOUBLE_EQ((2_GB).megabytes(), 2000.0);
  EXPECT_DOUBLE_EQ(Bytes{500}.as_double(), 500.0);
}

TEST(Seconds, ArithmeticAndScaling) {
  Seconds t{10.0};
  EXPECT_DOUBLE_EQ((t + 5.0_s).count(), 15.0);
  EXPECT_DOUBLE_EQ((t - 4.0_s).count(), 6.0);
  EXPECT_DOUBLE_EQ((t * 2.0).count(), 20.0);
  EXPECT_DOUBLE_EQ((0.5 * t).count(), 5.0);
  EXPECT_LT(Seconds{1.0}, Seconds{2.0});
}

TEST(BytesPerSecond, RateLiteralAndConversion) {
  EXPECT_DOUBLE_EQ((80_MBps).count(), 80.0e6);
  EXPECT_DOUBLE_EQ((80_MBps).megabytes_per_second(), 80.0);
}

TEST(Units, DurationForMatchesHandComputation) {
  // 400 GB at 80 MB/s = 5000 s (how long a full LTO-3 tape streams).
  EXPECT_DOUBLE_EQ(duration_for(400_GB, 80_MBps).count(), 5000.0);
  EXPECT_DOUBLE_EQ(duration_for(0_B, 80_MBps).count(), 0.0);
}

TEST(Units, RateForInvertsDurationFor) {
  const Bytes amount = 123_GB;
  const BytesPerSecond rate = 80_MBps;
  const Seconds t = duration_for(amount, rate);
  EXPECT_NEAR(rate_for(amount, t).count(), rate.count(), 1e-6);
}

TEST(Units, StreamingProducesHumanReadableText) {
  std::ostringstream ss;
  ss << 400_GB << " " << Seconds{49.0} << " " << 80_MBps;
  EXPECT_EQ(ss.str(), "400 GB 49 s 80 MB/s");
}

}  // namespace
}  // namespace tapesim
