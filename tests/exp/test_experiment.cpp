#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include "core/parallel_batch.hpp"

namespace tapesim::exp {
namespace {

/// A scaled-down configuration that keeps each run under ~100 ms.
ExperimentConfig small_config() {
  ExperimentConfig config;
  config.spec.num_libraries = 2;
  config.spec.library.drives_per_library = 4;
  config.spec.library.tapes_per_library = 16;
  config.spec.library.tape_capacity = 50_GB;
  config.workload.num_objects = 2000;
  config.workload.num_requests = 40;
  config.workload.min_objects_per_request = 20;
  config.workload.max_objects_per_request = 40;
  config.workload.object_groups = 40;
  config.workload.min_object_size = Bytes{100ULL * 1000 * 1000};
  config.workload.max_object_size = Bytes{2000ULL * 1000 * 1000};
  config.simulated_requests = 50;
  return config;
}

TEST(Experiment, BuildsWorkloadAndClusters) {
  const Experiment e(small_config());
  EXPECT_EQ(e.workload().object_count(), 2000u);
  EXPECT_EQ(e.workload().request_count(), 40u);
  EXPECT_GT(e.clusters().size(), 0u);
  e.clusters().validate(e.workload());
}

TEST(Experiment, RunProducesCompleteMetrics) {
  const Experiment e(small_config());
  const auto schemes = make_standard_schemes(2);
  const SchemeRun run = e.run(*schemes.parallel_batch);
  EXPECT_EQ(run.scheme, "parallel batch placement");
  EXPECT_EQ(run.metrics.count(), 50u);
  EXPECT_GT(run.metrics.mean_response().count(), 0.0);
  EXPECT_GT(run.metrics.mean_bandwidth().count(), 0.0);
  EXPECT_GT(run.tapes_used, 0u);
}

TEST(Experiment, BandwidthNeverExceedsAggregateDriveRate) {
  const ExperimentConfig config = small_config();
  const Experiment e(config);
  const auto schemes = make_standard_schemes(2);
  for (const core::PlacementScheme* s :
       {schemes.parallel_batch.get(), schemes.object_probability.get(),
        schemes.cluster_probability.get()}) {
    const SchemeRun run = e.run(*s);
    EXPECT_LE(run.metrics.bandwidth_samples().max(),
              config.spec.aggregate_transfer_rate().count())
        << s->name();
  }
}

TEST(Experiment, DeterministicGivenSeed) {
  const auto schemes = make_standard_schemes(2);
  const Experiment a(small_config());
  const Experiment b(small_config());
  const SchemeRun ra = a.run(*schemes.parallel_batch);
  const SchemeRun rb = b.run(*schemes.parallel_batch);
  EXPECT_DOUBLE_EQ(ra.metrics.mean_response().count(),
                   rb.metrics.mean_response().count());
  EXPECT_EQ(ra.total_switches, rb.total_switches);
}

TEST(Experiment, SeedChangesWorkload) {
  ExperimentConfig c1 = small_config();
  ExperimentConfig c2 = small_config();
  c2.seed = 777;
  const auto schemes = make_standard_schemes(2);
  const SchemeRun r1 = Experiment(c1).run(*schemes.parallel_batch);
  const SchemeRun r2 = Experiment(c2).run(*schemes.parallel_batch);
  EXPECT_NE(r1.metrics.mean_response().count(),
            r2.metrics.mean_response().count());
}

TEST(Experiment, RepeatedRunsOnOneExperimentAreIndependent) {
  // run() builds a fresh simulator each time: results must be identical.
  const Experiment e(small_config());
  const auto schemes = make_standard_schemes(2);
  const SchemeRun r1 = e.run(*schemes.object_probability);
  const SchemeRun r2 = e.run(*schemes.object_probability);
  EXPECT_DOUBLE_EQ(r1.metrics.mean_response().count(),
                   r2.metrics.mean_response().count());
}

TEST(Experiment, SchemesSeeTheSameRequestStream) {
  // With the same seed, the sampled request sequence is identical across
  // schemes, so mean request bytes match exactly.
  const Experiment e(small_config());
  const auto schemes = make_standard_schemes(2);
  const SchemeRun pbp = e.run(*schemes.parallel_batch);
  const SchemeRun cpp = e.run(*schemes.cluster_probability);
  EXPECT_EQ(pbp.metrics.mean_request_bytes(),
            cpp.metrics.mean_request_bytes());
}

TEST(Experiment, MakeStandardSchemesAppliesParameters) {
  const auto schemes = make_standard_schemes(3, 0.8);
  EXPECT_NE(schemes.parallel_batch, nullptr);
  EXPECT_NE(schemes.object_probability, nullptr);
  EXPECT_NE(schemes.cluster_probability, nullptr);
  auto* pbp = dynamic_cast<core::ParallelBatchPlacement*>(
      schemes.parallel_batch.get());
  ASSERT_NE(pbp, nullptr);
  EXPECT_EQ(pbp->params().switch_drives, 3u);
  EXPECT_DOUBLE_EQ(pbp->params().capacity_utilization, 0.8);
}

TEST(Experiment, InvalidConfigThrows) {
  ExperimentConfig config = small_config();
  config.spec.num_libraries = 0;
  EXPECT_THROW(Experiment{config}, std::invalid_argument);
  config = small_config();
  config.workload.num_objects = 0;
  EXPECT_THROW(Experiment{config}, std::invalid_argument);
}

}  // namespace
}  // namespace tapesim::exp
