#include "core/load_balance.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workload/model.hpp"

namespace tapesim::core {
namespace {

using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

/// n equal-probability objects of `size` each (one request holds them all).
Workload uniform_cluster(std::uint32_t n, Bytes size) {
  std::vector<ObjectInfo> objects;
  std::vector<ObjectId> members;
  for (std::uint32_t i = 0; i < n; ++i) {
    objects.push_back(ObjectInfo{ObjectId{i}, size});
    members.push_back(ObjectId{i});
  }
  std::vector<Request> requests{Request{RequestId{0}, 1.0, members}};
  return Workload{std::move(objects), std::move(requests)};
}

std::vector<TapeLoadState> fresh_tapes(std::uint32_t n) {
  std::vector<TapeLoadState> tapes;
  for (std::uint32_t i = 0; i < n; ++i) {
    tapes.push_back(TapeLoadState{TapeId{i}, 0.0, Bytes{0}});
  }
  return tapes;
}

TEST(ChooseSplitWidth, ScalesWithClusterSize) {
  LoadBalanceParams params;
  params.min_split_chunk = 8_GB;
  EXPECT_EQ(choose_split_width(1_GB, 12, params), 1u);   // tiny: one tape
  EXPECT_EQ(choose_split_width(8_GB, 12, params), 1u);
  EXPECT_EQ(choose_split_width(17_GB, 12, params), 2u);
  EXPECT_EQ(choose_split_width(100_GB, 12, params), 12u);
  EXPECT_EQ(choose_split_width(100_GB, 4, params), 4u);  // clamped
}

TEST(ChooseSplitWidth, ZeroChunkUsesAllTapes) {
  LoadBalanceParams params;
  params.min_split_chunk = Bytes{0};
  EXPECT_EQ(choose_split_width(1_GB, 7, params), 7u);
}

TEST(BalanceCluster, SmallClusterStaysOnOneTape) {
  const Workload wl = uniform_cluster(4, 1_GB);
  auto tapes = fresh_tapes(6);
  LoadBalanceParams params;
  params.min_split_chunk = 8_GB;  // 4 GB cluster -> ndrv = 1
  std::vector<ObjectId> members;
  for (std::uint32_t i = 0; i < 4; ++i) members.push_back(ObjectId{i});
  const auto result = balance_cluster(members, tapes, wl, params);
  ASSERT_EQ(result.objects.size(), 4u);
  EXPECT_TRUE(result.overflow.empty());
  std::set<std::uint32_t> used;
  for (const TapeId t : result.tapes) used.insert(t.value());
  EXPECT_EQ(used.size(), 1u);
}

TEST(BalanceCluster, LargeClusterSpreadsEvenly) {
  const Workload wl = uniform_cluster(24, 2_GB);  // 48 GB
  auto tapes = fresh_tapes(6);
  LoadBalanceParams params;
  params.min_split_chunk = 8_GB;  // -> ndrv = 6
  std::vector<ObjectId> members;
  for (std::uint32_t i = 0; i < 24; ++i) members.push_back(ObjectId{i});
  const auto result = balance_cluster(members, tapes, wl, params);
  EXPECT_TRUE(result.overflow.empty());
  // Equal loads zig-zagged over 6 tapes: each receives exactly 4 objects.
  std::vector<int> counts(6, 0);
  for (const TapeId t : result.tapes) ++counts[t.index()];
  for (const int c : counts) EXPECT_EQ(c, 4);
  // Per-tape load bookkeeping matches.
  for (const auto& t : tapes) {
    EXPECT_EQ(t.used, 8_GB);
  }
}

TEST(BalanceCluster, BalancesHeterogeneousLoads) {
  // Object i has size (i+1) GB; probabilities equal.
  std::vector<ObjectInfo> objects;
  std::vector<ObjectId> members;
  for (std::uint32_t i = 0; i < 12; ++i) {
    objects.push_back(ObjectInfo{ObjectId{i}, Bytes{(i + 1) * 1000000000ULL}});
    members.push_back(ObjectId{i});
  }
  std::vector<Request> requests{Request{RequestId{0}, 1.0, members}};
  const Workload wl{std::move(objects), std::move(requests)};

  auto tapes = fresh_tapes(4);
  LoadBalanceParams params;
  params.min_split_chunk = Bytes{1};  // force full width
  const auto result = balance_cluster(members, tapes, wl, params);
  EXPECT_TRUE(result.overflow.empty());
  // Total 78 GB over 4 tapes -> mean 19.5 GB; zig-zag should keep every
  // tape within one max-object of the mean.
  for (const auto& t : tapes) {
    EXPECT_GT(t.used.as_double(), 19.5e9 - 12.1e9);
    EXPECT_LT(t.used.as_double(), 19.5e9 + 12.1e9);
  }
}

TEST(BalanceCluster, RespectsCapacityCapViaFallback) {
  const Workload wl = uniform_cluster(10, 3_GB);  // 30 GB total
  auto tapes = fresh_tapes(4);
  LoadBalanceParams params;
  params.min_split_chunk = 100_GB;  // ndrv = 1: everything targets 1 tape
  params.tape_capacity_cap = 9_GB;  // but a tape only holds 3 objects
  std::vector<ObjectId> members;
  for (std::uint32_t i = 0; i < 10; ++i) members.push_back(ObjectId{i});
  const auto result = balance_cluster(members, tapes, wl, params);
  // 4 tapes x 9 GB = 36 GB >= 30 GB: everything places, none overflows.
  EXPECT_TRUE(result.overflow.empty());
  ASSERT_EQ(result.objects.size(), 10u);
  for (const auto& t : tapes) EXPECT_LE(t.used, 9_GB);
}

TEST(BalanceCluster, OverflowsWhenBatchIsFull) {
  const Workload wl = uniform_cluster(10, 3_GB);
  auto tapes = fresh_tapes(2);
  LoadBalanceParams params;
  params.tape_capacity_cap = 6_GB;  // 2 tapes x 2 objects = 4 fit
  std::vector<ObjectId> members;
  for (std::uint32_t i = 0; i < 10; ++i) members.push_back(ObjectId{i});
  const auto result = balance_cluster(members, tapes, wl, params);
  EXPECT_EQ(result.objects.size(), 4u);
  EXPECT_EQ(result.overflow.size(), 6u);
  for (const auto& t : tapes) EXPECT_EQ(t.used, 6_GB);
}

TEST(BalanceCluster, AccumulatesAcrossCalls) {
  const Workload wl = uniform_cluster(8, 1_GB);
  auto tapes = fresh_tapes(2);
  LoadBalanceParams params;
  params.min_split_chunk = Bytes{1};
  std::vector<ObjectId> first{ObjectId{0}, ObjectId{1}, ObjectId{2},
                              ObjectId{3}};
  std::vector<ObjectId> second{ObjectId{4}, ObjectId{5}, ObjectId{6},
                               ObjectId{7}};
  balance_cluster(first, tapes, wl, params);
  balance_cluster(second, tapes, wl, params);
  EXPECT_EQ(tapes[0].used + tapes[1].used, 8_GB);
  EXPECT_EQ(tapes[0].used, 4_GB);  // equal loads stay balanced
}

TEST(BalanceCluster, SingleTape) {
  const Workload wl = uniform_cluster(5, 1_GB);
  auto tapes = fresh_tapes(1);
  std::vector<ObjectId> members;
  for (std::uint32_t i = 0; i < 5; ++i) members.push_back(ObjectId{i});
  const auto result = balance_cluster(members, tapes, wl, {});
  for (const TapeId t : result.tapes) EXPECT_EQ(t, TapeId{0});
}

}  // namespace
}  // namespace tapesim::core
