#include "core/plan.hpp"

#include <gtest/gtest.h>

#include "workload/model.hpp"

namespace tapesim::core {
namespace {

using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

tape::SystemSpec small_spec() {
  tape::SystemSpec spec;
  spec.num_libraries = 2;
  spec.library.drives_per_library = 2;
  spec.library.tapes_per_library = 4;
  spec.library.tape_capacity = 10_GB;
  return spec;
}

Workload small_workload() {
  std::vector<ObjectInfo> objects{{ObjectId{0}, 4_GB},
                                  {ObjectId{1}, 3_GB},
                                  {ObjectId{2}, 2_GB},
                                  {ObjectId{3}, 1_GB}};
  std::vector<Request> requests;
  requests.push_back(Request{RequestId{0}, 0.6, {ObjectId{0}, ObjectId{3}}});
  requests.push_back(Request{RequestId{1}, 0.4, {ObjectId{1}, ObjectId{2}}});
  return Workload{std::move(objects), std::move(requests)};
}

TEST(PlacementPlan, AssignTracksMembershipAndUsage) {
  const auto spec = small_spec();
  const auto wl = small_workload();
  PlacementPlan plan(spec, wl);
  plan.assign(ObjectId{0}, TapeId{0});
  plan.assign(ObjectId{1}, TapeId{0});
  plan.assign(ObjectId{2}, TapeId{5});
  plan.assign(ObjectId{3}, TapeId{5});
  EXPECT_EQ(plan.tape_of(ObjectId{0}), TapeId{0});
  EXPECT_EQ(plan.tape_of(ObjectId{2}), TapeId{5});
  EXPECT_EQ(plan.used_on(TapeId{0}), 7_GB);
  EXPECT_EQ(plan.used_on(TapeId{5}), 3_GB);
  EXPECT_EQ(plan.tapes_used(), 2u);
}

TEST(PlacementPlan, AlignGivenOrderPacksSequentially) {
  const auto spec = small_spec();
  const auto wl = small_workload();
  PlacementPlan plan(spec, wl);
  for (std::uint32_t i = 0; i < 4; ++i) plan.assign(ObjectId{i}, TapeId{1});
  plan.align_all(Alignment::kGivenOrder);
  const auto on = plan.on_tape(TapeId{1});
  ASSERT_EQ(on.size(), 4u);
  EXPECT_EQ(on[0].object, ObjectId{0});
  EXPECT_EQ(on[0].offset, Bytes{0});
  EXPECT_EQ(on[1].offset, 4_GB);
  EXPECT_EQ(on[2].offset, 7_GB);
  EXPECT_EQ(on[3].offset, 9_GB);
}

TEST(PlacementPlan, AlignDescendingProbability) {
  const auto spec = small_spec();
  const auto wl = small_workload();
  PlacementPlan plan(spec, wl);
  // P: obj0=.6 obj3=.6 obj1=.4 obj2=.4 — stable sort keeps insertion order
  // among ties.
  for (const std::uint32_t i : {1u, 0u, 2u, 3u}) {
    plan.assign(ObjectId{i}, TapeId{2});
  }
  plan.align_all(Alignment::kDescendingProbability);
  const auto on = plan.on_tape(TapeId{2});
  EXPECT_EQ(on[0].object, ObjectId{0});
  EXPECT_EQ(on[1].object, ObjectId{3});
  EXPECT_EQ(on[2].object, ObjectId{1});
  EXPECT_EQ(on[3].object, ObjectId{2});
}

TEST(PlacementPlan, ValidateAcceptsCompletePlan) {
  const auto spec = small_spec();
  const auto wl = small_workload();
  PlacementPlan plan(spec, wl);
  plan.assign(ObjectId{0}, TapeId{0});
  plan.assign(ObjectId{1}, TapeId{2});
  plan.assign(ObjectId{2}, TapeId{4});
  plan.assign(ObjectId{3}, TapeId{6});
  plan.align_all(Alignment::kOrganPipe);
  plan.compute_tape_popularity();
  EXPECT_NO_FATAL_FAILURE(plan.validate());
}

TEST(PlacementPlanDeath, DoubleAssignAborts) {
  const auto spec = small_spec();
  const auto wl = small_workload();
  PlacementPlan plan(spec, wl);
  plan.assign(ObjectId{0}, TapeId{0});
  EXPECT_DEATH(plan.assign(ObjectId{0}, TapeId{1}), "two tapes");
}

TEST(PlacementPlan, ExactCapacityFillIsAllowed) {
  const auto spec = small_spec();  // 10 GB tapes
  const auto wl = small_workload();
  PlacementPlan plan(spec, wl);
  plan.assign(ObjectId{0}, TapeId{0});  // 4 GB
  plan.assign(ObjectId{1}, TapeId{0});  // 7 GB
  plan.assign(ObjectId{2}, TapeId{0});  // 9 GB
  plan.assign(ObjectId{3}, TapeId{0});  // exactly 10 GB: allowed
  EXPECT_EQ(plan.used_on(TapeId{0}), 10_GB);
}

TEST(PlacementPlanDeath, CapacityOverflowAborts) {
  tape::SystemSpec spec = small_spec();
  spec.library.tape_capacity = 5_GB;
  const auto wl = small_workload();
  PlacementPlan plan(spec, wl);
  plan.assign(ObjectId{0}, TapeId{0});  // 4 GB of 5
  EXPECT_DEATH(plan.assign(ObjectId{1}, TapeId{0}), "capacity");
}

TEST(PlacementPlanDeath, ValidateRejectsIncompletePlan) {
  const auto spec = small_spec();
  const auto wl = small_workload();
  PlacementPlan plan(spec, wl);
  plan.assign(ObjectId{0}, TapeId{0});
  plan.align_all(Alignment::kGivenOrder);
  EXPECT_DEATH(plan.validate(), "missing");
}

TEST(PlacementPlan, ToCatalogRoundTrips) {
  const auto spec = small_spec();
  const auto wl = small_workload();
  PlacementPlan plan(spec, wl);
  plan.assign(ObjectId{0}, TapeId{0});
  plan.assign(ObjectId{1}, TapeId{0});
  plan.assign(ObjectId{2}, TapeId{7});
  plan.assign(ObjectId{3}, TapeId{7});
  plan.align_all(Alignment::kGivenOrder);
  const auto catalog = plan.to_catalog();
  catalog.validate(spec.library.tape_capacity);
  const auto* rec = catalog.lookup(ObjectId{2});
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->tape, TapeId{7});
  EXPECT_EQ(rec->library, LibraryId{1});  // tape 7 is in library 1 (4..7)
  EXPECT_EQ(rec->offset, Bytes{0});
  EXPECT_EQ(catalog.lookup(ObjectId{3})->offset, 2_GB);
}

TEST(PlacementPlan, TapePopularityAccumulatesObjectProbability) {
  const auto spec = small_spec();
  const auto wl = small_workload();
  PlacementPlan plan(spec, wl);
  plan.assign(ObjectId{0}, TapeId{0});  // P = .6
  plan.assign(ObjectId{3}, TapeId{0});  // P = .6
  plan.assign(ObjectId{1}, TapeId{4});  // P = .4
  plan.assign(ObjectId{2}, TapeId{4});  // P = .4
  plan.compute_tape_popularity();
  EXPECT_DOUBLE_EQ(plan.mount_policy.tape_popularity[0], 1.2);
  EXPECT_DOUBLE_EQ(plan.mount_policy.tape_popularity[4], 0.8);
  EXPECT_DOUBLE_EQ(plan.mount_policy.tape_popularity[1], 0.0);
}

TEST(OrganPipe, MostPopularSitsInTheMiddle) {
  // 5 equal-sized objects with strictly decreasing probability 0 > 1 > ...
  std::vector<ObjectInfo> objects;
  std::vector<Request> requests;
  const double probs[] = {0.4, 0.3, 0.15, 0.1, 0.05};
  for (std::uint32_t i = 0; i < 5; ++i) {
    objects.push_back(ObjectInfo{ObjectId{i}, 1_GB});
    requests.push_back(Request{RequestId{i}, probs[i], {ObjectId{i}}});
  }
  const Workload wl{std::move(objects), std::move(requests)};
  const ObjectId members[] = {ObjectId{0}, ObjectId{1}, ObjectId{2},
                              ObjectId{3}, ObjectId{4}};
  const auto order = organ_pipe_order(members, wl);
  ASSERT_EQ(order.size(), 5u);
  // Expected organ pipe: 4 2 0 1 3 (probabilities .05 .15 .4 .3 .1).
  EXPECT_EQ(order[2], ObjectId{0});
  // Probabilities must rise to the middle and fall after it.
  for (std::size_t i = 1; i <= 2; ++i) {
    EXPECT_GE(wl.object_probability(order[i]),
              wl.object_probability(order[i - 1]));
  }
  for (std::size_t i = 3; i < 5; ++i) {
    EXPECT_LE(wl.object_probability(order[i]),
              wl.object_probability(order[i - 1]));
  }
}

TEST(OrganPipe, HandlesSmallInputs) {
  const auto wl = small_workload();
  EXPECT_TRUE(organ_pipe_order({}, wl).empty());
  const ObjectId one[] = {ObjectId{2}};
  EXPECT_EQ(organ_pipe_order(one, wl).size(), 1u);
}

TEST(OrganPipe, IsAPermutationOfItsInput) {
  const auto wl = small_workload();
  const ObjectId members[] = {ObjectId{3}, ObjectId{0}, ObjectId{2},
                              ObjectId{1}};
  auto order = organ_pipe_order(members, wl);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<ObjectId>{ObjectId{0}, ObjectId{1},
                                          ObjectId{2}, ObjectId{3}}));
}

TEST(MountPolicy, PinnedLookup) {
  MountPolicy policy;
  EXPECT_FALSE(policy.pinned(DriveId{0}));  // empty vector: nothing pinned
  policy.drive_pinned = {true, false, true};
  EXPECT_TRUE(policy.pinned(DriveId{0}));
  EXPECT_FALSE(policy.pinned(DriveId{1}));
  EXPECT_TRUE(policy.pinned(DriveId{2}));
}

TEST(MountPolicy, ReplacementPolicyNames) {
  EXPECT_STREQ(to_string(ReplacementPolicy::kFixedBatch), "fixed-batch");
  EXPECT_STREQ(to_string(ReplacementPolicy::kLeastPopular), "least-popular");
}

}  // namespace
}  // namespace tapesim::core
