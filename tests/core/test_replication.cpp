// ReplicationPolicy: r = 1 must be a bit-identical pass-through of the
// wrapped scheme, r > 1 must satisfy the anti-affinity rules (never the
// same tape, a different library while libraries remain uncovered), and an
// impossible replication demand must fail loudly at placement time.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "cluster/hierarchy.hpp"
#include "core/object_probability.hpp"
#include "core/parallel_batch.hpp"
#include "core/replication.hpp"
#include "workload/generator.hpp"

namespace tapesim::core {
namespace {

struct ReplicationFixture : ::testing::Test {
  tape::SystemSpec spec = [] {
    tape::SystemSpec s;
    s.num_libraries = 2;
    s.library.drives_per_library = 4;
    s.library.tapes_per_library = 20;
    s.library.tape_capacity = 50_GB;
    return s;
  }();

  workload::WorkloadConfig wconfig = [] {
    workload::WorkloadConfig c;
    c.num_objects = 800;
    c.num_requests = 40;
    c.min_objects_per_request = 20;
    c.max_objects_per_request = 40;
    c.object_groups = 30;
    c.min_object_size = Bytes{200ULL * 1000 * 1000};   // 0.2 GB
    c.max_object_size = Bytes{2000ULL * 1000 * 1000};  // 2 GB
    return c;
  }();

  Rng rng{17};
  workload::Workload wl = workload::generate_workload(wconfig, rng);
  cluster::ObjectClusters clusters = [this] {
    cluster::ClusterConstraints constraints;
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        0.9 * spec.library.tape_capacity.as_double())};
    return cluster::cluster_by_requests(wl, constraints);
  }();

  PlacementContext context{&wl, &spec, &clusters};

  [[nodiscard]] LibraryId lib_of(TapeId t) const {
    return LibraryId{t.value() / spec.library.tapes_per_library};
  }
};

TEST_F(ReplicationFixture, SingleCopyIsBitIdenticalPassThrough) {
  ParallelBatchParams pbp;
  pbp.switch_drives = 2;  // m must stay below the 4 drives per library
  const ParallelBatchPlacement inner{pbp};
  ReplicationPolicy::Params params;
  params.replicas = 1;
  const ReplicationPolicy wrapped(inner, params);

  EXPECT_EQ(wrapped.name(), inner.name());

  const PlacementPlan a = inner.place(context);
  const PlacementPlan b = wrapped.place(context);
  EXPECT_FALSE(b.replicated());
  EXPECT_EQ(b.replication_factor(), 1u);
  EXPECT_EQ(a.tapes_used(), b.tapes_used());
  for (std::uint32_t o = 0; o < wl.object_count(); ++o) {
    EXPECT_EQ(a.tape_of(ObjectId{o}).value(), b.tape_of(ObjectId{o}).value());
    EXPECT_TRUE(b.replicas_of(ObjectId{o}).empty());
  }
  // Per-tape layouts (and therefore every offset) must agree exactly.
  const std::uint32_t total =
      spec.num_libraries * spec.library.tapes_per_library;
  for (std::uint32_t t = 0; t < total; ++t) {
    const auto la = a.on_tape(TapeId{t});
    const auto lb = b.on_tape(TapeId{t});
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].object.value(), lb[i].object.value());
      EXPECT_EQ(la[i].size.count(), lb[i].size.count());
    }
    EXPECT_EQ(a.used_on(TapeId{t}).count(), b.used_on(TapeId{t}).count());
  }
}

TEST_F(ReplicationFixture, TwoCopiesRespectTapeAndLibraryAntiAffinity) {
  ParallelBatchParams pbp;
  pbp.switch_drives = 2;
  const ParallelBatchPlacement inner{pbp};
  ReplicationPolicy::Params params;
  params.replicas = 2;
  const ReplicationPolicy wrapped(inner, params);
  EXPECT_NE(wrapped.name(), inner.name());

  const PlacementPlan plan = wrapped.place(context);  // validates internally
  EXPECT_TRUE(plan.replicated());
  EXPECT_EQ(plan.replication_factor(), 2u);
  for (std::uint32_t o = 0; o < wl.object_count(); ++o) {
    const ObjectId id{o};
    const auto copies = plan.replicas_of(id);
    ASSERT_EQ(copies.size(), 1u) << "object " << o;
    EXPECT_NE(copies[0].value(), plan.tape_of(id).value());
    // Two libraries, two copies: the pair must straddle them.
    EXPECT_NE(lib_of(copies[0]).value(), lib_of(plan.tape_of(id)).value())
        << "object " << o;
  }
  // The catalog round-trip carries the replicas along.
  const catalog::ObjectCatalog cat = plan.to_catalog();
  EXPECT_TRUE(cat.has_replicas());
  for (std::uint32_t o = 0; o < wl.object_count(); ++o) {
    EXPECT_EQ(cat.copy_count(ObjectId{o}), 2u);
  }
}

TEST_F(ReplicationFixture, ThreeCopiesNeverShareATape) {
  const ObjectProbabilityPlacement inner{{}};
  ReplicationPolicy::Params params;
  params.replicas = 3;
  const ReplicationPolicy wrapped(inner, params);
  const PlacementPlan plan = wrapped.place(context);
  EXPECT_EQ(plan.replication_factor(), 3u);
  for (std::uint32_t o = 0; o < wl.object_count(); ++o) {
    const ObjectId id{o};
    std::set<std::uint32_t> tapes{plan.tape_of(id).value()};
    std::set<std::uint32_t> libs{lib_of(plan.tape_of(id)).value()};
    for (const TapeId t : plan.replicas_of(id)) {
      tapes.insert(t.value());
      libs.insert(lib_of(t).value());
    }
    EXPECT_EQ(tapes.size(), 3u) << "object " << o;
    // With r > #libraries, every library must still hold at least one copy
    // before any doubles up.
    EXPECT_EQ(libs.size(), 2u) << "object " << o;
  }
}

TEST_F(ReplicationFixture, ImpossibleFactorThrows) {
  // Shrink the system until r = 3 cannot fit: the primaries still place
  // (roughly 0.9 TB into a 1.08 TB budget) but 3 copies need ~3x that.
  spec.library.tapes_per_library = 12;
  const ObjectProbabilityPlacement inner{{}};
  ReplicationPolicy::Params params;
  params.replicas = 3;
  const ReplicationPolicy wrapped(inner, params);
  EXPECT_THROW((void)wrapped.place(context), std::runtime_error);
}

TEST(ReplicationPolicy, NameEncodesFactor) {
  const ObjectProbabilityPlacement inner{{}};
  ReplicationPolicy::Params params;
  params.replicas = 2;
  const ReplicationPolicy wrapped(inner, params);
  EXPECT_EQ(wrapped.name(), inner.name() + "+r2");
}

}  // namespace
}  // namespace tapesim::core
