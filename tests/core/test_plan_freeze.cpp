// Direct tests for the append-only (frozen-prefix) plan mechanics behind
// incremental placement.
#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "workload/model.hpp"

namespace tapesim::core {
namespace {

using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

tape::SystemSpec spec_() {
  tape::SystemSpec spec;
  spec.num_libraries = 1;
  spec.library.drives_per_library = 2;
  spec.library.tapes_per_library = 4;
  spec.library.tape_capacity = 20_GB;
  return spec;
}

Workload base_workload() {
  std::vector<ObjectInfo> objects{{ObjectId{0}, 3_GB}, {ObjectId{1}, 2_GB}};
  std::vector<Request> requests{
      Request{RequestId{0}, 1.0, {ObjectId{0}, ObjectId{1}}}};
  return Workload{std::move(objects), std::move(requests)};
}

Workload extended_workload() {
  std::vector<ObjectInfo> objects{{ObjectId{0}, 3_GB},
                                  {ObjectId{1}, 2_GB},
                                  {ObjectId{2}, 4_GB},
                                  {ObjectId{3}, 1_GB}};
  std::vector<Request> requests{
      Request{RequestId{0}, 0.5, {ObjectId{0}, ObjectId{1}}},
      Request{RequestId{1}, 0.5, {ObjectId{2}, ObjectId{3}}}};
  return Workload{std::move(objects), std::move(requests)};
}

TEST(PlanFreeze, AdoptCopiesLayoutAndFreezesOffsets) {
  const auto spec = spec_();
  const Workload base = base_workload();
  PlacementPlan old_plan(spec, base);
  old_plan.assign(ObjectId{0}, TapeId{0});
  old_plan.assign(ObjectId{1}, TapeId{0});
  old_plan.align_all(Alignment::kGivenOrder);

  const Workload extended = extended_workload();
  PlacementPlan new_plan(spec, extended);
  new_plan.adopt_frozen(old_plan);
  EXPECT_EQ(new_plan.tape_of(ObjectId{0}), TapeId{0});
  EXPECT_EQ(new_plan.used_on(TapeId{0}), 5_GB);

  // Appending a hot object and aligning must NOT reorder the frozen data,
  // even under an alignment that would put the new object first.
  new_plan.assign(ObjectId{2}, TapeId{0});
  new_plan.assign(ObjectId{3}, TapeId{1});
  new_plan.align_all(Alignment::kDescendingProbability);
  const auto on0 = new_plan.on_tape(TapeId{0});
  ASSERT_EQ(on0.size(), 3u);
  EXPECT_EQ(on0[0].object, ObjectId{0});
  EXPECT_EQ(on0[0].offset, Bytes{0});
  EXPECT_EQ(on0[1].object, ObjectId{1});
  EXPECT_EQ(on0[1].offset, 3_GB);
  EXPECT_EQ(on0[2].object, ObjectId{2});
  EXPECT_EQ(on0[2].offset, 5_GB);  // appended behind the frozen prefix
  new_plan.compute_tape_popularity();
  new_plan.validate();
}

TEST(PlanFreeze, RemainingOnAccountsForCap) {
  const auto spec = spec_();
  const Workload base = base_workload();
  PlacementPlan plan(spec, base);
  plan.assign(ObjectId{0}, TapeId{0});  // 3 GB
  EXPECT_EQ(plan.remaining_on(TapeId{0}, 18_GB), 15_GB);
  EXPECT_EQ(plan.remaining_on(TapeId{0}, 2_GB), 0_B);  // cap below usage
  EXPECT_EQ(plan.remaining_on(TapeId{1}, 18_GB), 18_GB);
}

TEST(PlanFreezeDeath, AdoptRequiresAlignedPrevious) {
  const auto spec = spec_();
  const Workload base = base_workload();
  PlacementPlan old_plan(spec, base);
  old_plan.assign(ObjectId{0}, TapeId{0});
  // Not aligned yet.
  const Workload extended = extended_workload();
  PlacementPlan new_plan(spec, extended);
  EXPECT_DEATH(new_plan.adopt_frozen(old_plan), "aligned");
}

TEST(PlanFreezeDeath, AdoptRequiresFreshPlan) {
  const auto spec = spec_();
  const Workload base = base_workload();
  PlacementPlan old_plan(spec, base);
  old_plan.assign(ObjectId{0}, TapeId{0});
  old_plan.assign(ObjectId{1}, TapeId{0});
  old_plan.align_all(Alignment::kGivenOrder);

  const Workload extended = extended_workload();
  PlacementPlan new_plan(spec, extended);
  new_plan.assign(ObjectId{2}, TapeId{0});  // already dirty
  EXPECT_DEATH(new_plan.adopt_frozen(old_plan), "fresh");
}

TEST(PlanFreezeDeath, AdoptRejectsShrunkWorkload) {
  const auto spec = spec_();
  const Workload extended = extended_workload();
  PlacementPlan old_plan(spec, extended);
  for (std::uint32_t i = 0; i < 4; ++i) {
    old_plan.assign(ObjectId{i}, TapeId{i % 2});
  }
  old_plan.align_all(Alignment::kGivenOrder);

  const Workload base = base_workload();  // fewer objects
  PlacementPlan new_plan(spec, base);
  EXPECT_DEATH(new_plan.adopt_frozen(old_plan), "extend");
}

}  // namespace
}  // namespace tapesim::core
