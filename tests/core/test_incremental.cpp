#include "core/incremental.hpp"

#include <gtest/gtest.h>

#include "cluster/hierarchy.hpp"
#include "workload/generator.hpp"
#include "workload/merge.hpp"

namespace tapesim::core {
namespace {

tape::SystemSpec inc_spec() {
  tape::SystemSpec spec;
  spec.num_libraries = 2;
  spec.library.drives_per_library = 4;
  spec.library.tapes_per_library = 24;
  spec.library.tape_capacity = 60_GB;
  return spec;
}

workload::Workload generation(std::uint64_t seed) {
  workload::WorkloadConfig config;
  config.num_objects = 600;
  config.num_requests = 20;
  config.min_objects_per_request = 10;
  config.max_objects_per_request = 20;
  config.object_groups = 12;
  config.min_object_size = Bytes{200ULL * 1000 * 1000};
  config.max_object_size = 2_GB;
  Rng rng{seed};
  return workload::generate_workload(config, rng);
}

cluster::ObjectClusters cluster_for(const workload::Workload& wl,
                                    const tape::SystemSpec& spec) {
  cluster::ClusterConstraints constraints;
  constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
      0.9 * spec.library.tape_capacity.as_double())};
  return cluster::cluster_by_requests(wl, constraints);
}

struct IncrementalFixture : ::testing::Test {
  tape::SystemSpec spec = inc_spec();
  IncrementalParams params = [] {
    IncrementalParams p;
    p.base.switch_drives = 2;
    p.base.balance.min_split_chunk = 2_GB;
    return p;
  }();
  IncrementalParallelBatch scheme{params};
};

TEST_F(IncrementalFixture, SecondGenerationKeepsOldObjectsInPlace) {
  const auto gen0 = generation(1);
  const auto clusters0 = cluster_for(gen0, spec);
  const PlacementPlan plan0 =
      scheme.place_initial({&gen0, &spec, &clusters0});

  const auto merged = workload::merge_workloads(gen0, generation(2), 0.5);
  const auto clusters1 = cluster_for(merged, spec);
  const PlacementPlan plan1 = scheme.place_next(
      {&merged, &spec, &clusters1}, plan0, ObjectId{gen0.object_count()});

  for (std::uint32_t i = 0; i < gen0.object_count(); ++i) {
    EXPECT_EQ(plan1.tape_of(ObjectId{i}), plan0.tape_of(ObjectId{i}))
        << "old object " << i << " moved";
  }
  // Old offsets are frozen too.
  for (std::uint32_t tv = 0; tv < spec.total_tapes(); ++tv) {
    const auto old_contents = plan0.on_tape(TapeId{tv});
    const auto new_contents = plan1.on_tape(TapeId{tv});
    ASSERT_GE(new_contents.size(), old_contents.size());
    for (std::size_t j = 0; j < old_contents.size(); ++j) {
      EXPECT_EQ(new_contents[j].object, old_contents[j].object);
      EXPECT_EQ(new_contents[j].offset, old_contents[j].offset);
    }
  }
}

TEST_F(IncrementalFixture, AllNewObjectsArePlaced) {
  const auto gen0 = generation(1);
  const auto clusters0 = cluster_for(gen0, spec);
  const PlacementPlan plan0 =
      scheme.place_initial({&gen0, &spec, &clusters0});
  const auto merged = workload::merge_workloads(gen0, generation(2), 0.5);
  const auto clusters1 = cluster_for(merged, spec);
  const PlacementPlan plan1 = scheme.place_next(
      {&merged, &spec, &clusters1}, plan0, ObjectId{gen0.object_count()});
  for (std::uint32_t i = 0; i < merged.object_count(); ++i) {
    EXPECT_TRUE(plan1.tape_of(ObjectId{i}).valid());
  }
}

TEST_F(IncrementalFixture, ChainsOverSeveralGenerations) {
  // Plans keep pointers into their workload, so every cumulative workload
  // must stay alive (and at a stable address) for its plan's lifetime.
  std::vector<std::unique_ptr<workload::Workload>> cumulative;
  std::vector<std::unique_ptr<cluster::ObjectClusters>> clusters;
  cumulative.push_back(
      std::make_unique<workload::Workload>(generation(1)));
  clusters.push_back(std::make_unique<cluster::ObjectClusters>(
      cluster_for(*cumulative.back(), spec)));
  std::vector<PlacementPlan> plans;
  plans.push_back(scheme.place_initial(
      {cumulative.back().get(), &spec, clusters.back().get()}));

  for (std::uint64_t gen = 2; gen <= 4; ++gen) {
    const std::uint32_t first_new = cumulative.back()->object_count();
    cumulative.push_back(std::make_unique<workload::Workload>(
        workload::merge_workloads(*cumulative.back(), generation(gen),
                                  1.0 / static_cast<double>(gen))));
    clusters.push_back(std::make_unique<cluster::ObjectClusters>(
        cluster_for(*cumulative.back(), spec)));
    plans.push_back(scheme.place_next(
        {cumulative.back().get(), &spec, clusters.back().get()},
        plans.back(), ObjectId{first_new}));
  }
  EXPECT_EQ(cumulative.back()->object_count(), 2400u);
  plans.back().validate();
}

TEST_F(IncrementalFixture, ThrowsWhenCapacityExhausted) {
  tape::SystemSpec tiny = spec;
  tiny.library.tapes_per_library = 4;
  tiny.library.tape_capacity = 50_GB;  // gen0 fits (~283 GB), gen0+1 cannot
  const auto gen0 = generation(1);
  const auto clusters0 = cluster_for(gen0, tiny);
  const PlacementPlan plan0 =
      scheme.place_initial({&gen0, &tiny, &clusters0});
  const auto merged = workload::merge_workloads(gen0, generation(2), 0.5);
  const auto clusters1 = cluster_for(merged, tiny);
  EXPECT_THROW(
      scheme.place_next({&merged, &tiny, &clusters1}, plan0,
                        ObjectId{gen0.object_count()}),
      std::runtime_error);
}

TEST_F(IncrementalFixture, RequiresClusters) {
  const auto gen0 = generation(1);
  const auto clusters0 = cluster_for(gen0, spec);
  const PlacementPlan plan0 =
      scheme.place_initial({&gen0, &spec, &clusters0});
  const auto merged = workload::merge_workloads(gen0, generation(2), 0.5);
  EXPECT_THROW(scheme.place_next({&merged, &spec, nullptr}, plan0,
                                 ObjectId{gen0.object_count()}),
               std::runtime_error);
}

}  // namespace
}  // namespace tapesim::core
