#include "core/striped.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workload/generator.hpp"

namespace tapesim::core {
namespace {

workload::Workload sample_workload() {
  workload::WorkloadConfig config;
  config.num_objects = 400;
  config.num_requests = 20;
  config.min_objects_per_request = 10;
  config.max_objects_per_request = 20;
  config.object_groups = 10;
  config.min_object_size = 2_GB;
  config.max_object_size = 8_GB;
  Rng rng{3};
  return workload::generate_workload(config, rng);
}

TEST(ShardWorkload, PreservesTotalBytes) {
  const auto wl = sample_workload();
  const ShardedWorkload sharded = shard_workload(wl, 4);
  EXPECT_EQ(sharded.workload.total_object_bytes(), wl.total_object_bytes());
  EXPECT_EQ(sharded.width, 4u);
}

TEST(ShardWorkload, ShardSizesNearlyEqual) {
  const auto wl = sample_workload();
  const ShardedWorkload sharded = shard_workload(wl, 4);
  // Reconstruct per-original totals and shard-size spread.
  std::vector<Bytes> totals(wl.object_count());
  std::vector<Bytes::value_type> min_shard(wl.object_count(), ~0ULL);
  std::vector<Bytes::value_type> max_shard(wl.object_count(), 0);
  for (std::uint32_t s = 0; s < sharded.workload.object_count(); ++s) {
    const ObjectId orig = sharded.origin[s];
    const Bytes size = sharded.workload.object_size(ObjectId{s});
    totals[orig.index()] += size;
    min_shard[orig.index()] =
        std::min(min_shard[orig.index()], size.count());
    max_shard[orig.index()] =
        std::max(max_shard[orig.index()], size.count());
  }
  for (std::uint32_t i = 0; i < wl.object_count(); ++i) {
    EXPECT_EQ(totals[i], wl.object_size(ObjectId{i}));
    EXPECT_LE(max_shard[i] - min_shard[i], 1u);
  }
}

TEST(ShardWorkload, SmallObjectsStayWhole) {
  const auto wl = sample_workload();
  // min_shard 8 GB: objects up to 16 GB are never split into 4.
  const ShardedWorkload sharded = shard_workload(wl, 4, 8_GB);
  for (std::uint32_t s = 0; s < sharded.workload.object_count(); ++s) {
    EXPECT_GE(sharded.workload.object_size(ObjectId{s}), 1_GB);
  }
  // 2 GB originals (< 8 GB) must remain single shards.
  std::vector<int> shard_count(wl.object_count(), 0);
  for (const ObjectId orig : sharded.origin) ++shard_count[orig.index()];
  for (std::uint32_t i = 0; i < wl.object_count(); ++i) {
    if (wl.object_size(ObjectId{i}) < 8_GB) {
      EXPECT_EQ(shard_count[i], 1) << "object " << i;
    }
  }
}

TEST(ShardWorkload, RequestsCoverAllShards) {
  const auto wl = sample_workload();
  const ShardedWorkload sharded = shard_workload(wl, 3, 1_GB);
  for (std::uint32_t r = 0; r < wl.request_count(); ++r) {
    EXPECT_EQ(sharded.workload.request_bytes(RequestId{r}),
              wl.request_bytes(RequestId{r}));
    EXPECT_DOUBLE_EQ(sharded.workload.requests()[r].probability,
                     wl.requests()[r].probability);
  }
}

TEST(ShardWorkload, WidthOneIsIdentityShape) {
  const auto wl = sample_workload();
  const ShardedWorkload sharded = shard_workload(wl, 1);
  EXPECT_EQ(sharded.workload.object_count(), wl.object_count());
  for (std::uint32_t i = 0; i < wl.object_count(); ++i) {
    EXPECT_EQ(sharded.workload.object_size(ObjectId{i}),
              wl.object_size(ObjectId{i}));
  }
}

TEST(StripedPlacement, ShardsOfAnObjectLandOnDistinctTapes) {
  tape::SystemSpec spec;
  spec.num_libraries = 2;
  spec.library.drives_per_library = 4;
  spec.library.tapes_per_library = 40;
  spec.library.tape_capacity = 100_GB;
  const auto wl = sample_workload();
  const ShardedWorkload sharded = shard_workload(wl, 4, 1_GB);

  StripedParams params;
  params.width = 4;
  const StripedPlacement scheme(params);
  PlacementContext context{&sharded.workload, &spec, nullptr};
  const PlacementPlan plan = scheme.place(context);

  std::vector<std::set<std::uint32_t>> tapes_of(wl.object_count());
  std::vector<int> shard_count(wl.object_count(), 0);
  for (std::uint32_t s = 0; s < sharded.workload.object_count(); ++s) {
    const ObjectId orig = sharded.origin[s];
    tapes_of[orig.index()].insert(plan.tape_of(ObjectId{s}).value());
    ++shard_count[orig.index()];
  }
  for (std::uint32_t i = 0; i < wl.object_count(); ++i) {
    EXPECT_EQ(tapes_of[i].size(),
              static_cast<std::size_t>(shard_count[i]))
        << "shards of object " << i << " share a tape";
  }
}

TEST(StripedPlacement, RejectsBadParameters) {
  tape::SystemSpec spec;
  const auto wl = sample_workload();
  PlacementContext context{&wl, &spec, nullptr};
  StripedParams params;
  params.width = 0;
  EXPECT_THROW(StripedPlacement(params).place(context), std::runtime_error);
  params.width = spec.total_tapes() + 1;
  EXPECT_THROW(StripedPlacement(params).place(context), std::runtime_error);
  params.width = 4;
  params.capacity_utilization = 0.0;
  EXPECT_THROW(StripedPlacement(params).place(context), std::runtime_error);
}

}  // namespace
}  // namespace tapesim::core
