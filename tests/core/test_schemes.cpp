// Placement-scheme behavioral tests: each scheme must produce a complete,
// valid plan with the structural properties its design promises.
#include <gtest/gtest.h>

#include <set>

#include "cluster/hierarchy.hpp"
#include "core/cluster_probability.hpp"
#include "core/object_probability.hpp"
#include "core/parallel_batch.hpp"
#include "workload/generator.hpp"

namespace tapesim::core {
namespace {

struct SchemeFixture : ::testing::Test {
  tape::SystemSpec spec = [] {
    tape::SystemSpec s;
    s.num_libraries = 2;
    s.library.drives_per_library = 4;
    s.library.tapes_per_library = 20;
    s.library.tape_capacity = 50_GB;
    return s;
  }();

  workload::WorkloadConfig wconfig = [] {
    workload::WorkloadConfig c;
    c.num_objects = 1500;
    c.num_requests = 40;
    c.min_objects_per_request = 20;
    c.max_objects_per_request = 40;
    c.object_groups = 30;
    c.min_object_size = Bytes{200ULL * 1000 * 1000};   // 0.2 GB
    c.max_object_size = Bytes{2000ULL * 1000 * 1000};  // 2 GB
    return c;
  }();

  Rng rng{17};
  workload::Workload wl = workload::generate_workload(wconfig, rng);
  cluster::ObjectClusters clusters = [this] {
    cluster::ClusterConstraints constraints;
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        0.9 * spec.library.tape_capacity.as_double())};
    return cluster::cluster_by_requests(wl, constraints);
  }();

  PlacementContext context{&wl, &spec, &clusters};
};

TEST_F(SchemeFixture, ParallelBatchProducesValidPlan) {
  ParallelBatchParams params;
  params.switch_drives = 2;
  const ParallelBatchPlacement scheme(params);
  const PlacementPlan plan = scheme.place(context);
  // validate() ran inside place(); check the policy surface.
  EXPECT_EQ(plan.mount_policy.replacement, ReplacementPolicy::kFixedBatch);
  // d - m = 2 pinned drives per library.
  ASSERT_EQ(plan.mount_policy.drive_pinned.size(), spec.total_drives());
  std::uint32_t pinned = 0;
  for (const bool p : plan.mount_policy.drive_pinned) pinned += p ? 1 : 0;
  EXPECT_EQ(pinned, 2u * 2u);
  // All 4 drives per library get an initial mount (first + second batch).
  EXPECT_EQ(plan.mount_policy.initial_mounts.size(), spec.total_drives());
}

TEST_F(SchemeFixture, ParallelBatchBatchTapesInterleaveLibraries) {
  const auto batch0 = ParallelBatchPlacement::batch_tapes(spec, 2, 0);
  // Batch 0: (d-m)=2 tapes per library, interleaved across 2 libraries.
  ASSERT_EQ(batch0.size(), 4u);
  EXPECT_EQ(batch0[0], TapeId{0});
  EXPECT_EQ(batch0[1], TapeId{20});
  EXPECT_EQ(batch0[2], TapeId{1});
  EXPECT_EQ(batch0[3], TapeId{21});
  const auto batch1 = ParallelBatchPlacement::batch_tapes(spec, 2, 1);
  ASSERT_EQ(batch1.size(), 4u);
  EXPECT_EQ(batch1[0], TapeId{2});
  EXPECT_EQ(batch1[1], TapeId{22});
}

TEST_F(SchemeFixture, ParallelBatchBatchCount) {
  // 20 tapes/library, m=2: batch0 takes 2 slots, then (20-2)/2 = 9 more.
  EXPECT_EQ(ParallelBatchPlacement::batch_count(spec, 2), 10u);
  EXPECT_EQ(ParallelBatchPlacement::batch_count(spec, 3), 1u + 19u / 3u);
}

TEST_F(SchemeFixture, ParallelBatchSkewsPopularityTowardEarlyBatches) {
  ParallelBatchParams params;
  params.switch_drives = 2;
  const ParallelBatchPlacement scheme(params);
  const PlacementPlan plan = scheme.place(context);
  // Average per-tape popularity must be highest in batch 0 and generally
  // decline across batches (allowing noise in the sparse tail).
  auto batch_popularity = [&](std::uint32_t index) {
    double total = 0.0;
    for (const TapeId t : ParallelBatchPlacement::batch_tapes(spec, 2, index)) {
      total += plan.mount_policy.tape_popularity[t.index()];
    }
    return total;
  };
  const double b0 = batch_popularity(0);
  const double b1 = batch_popularity(1);
  const double b4 = batch_popularity(4);
  EXPECT_GT(b0, 0.0);
  EXPECT_GE(b0 * 1.0001, b1);
  EXPECT_GE(b1 * 1.0001, b4);
}

TEST_F(SchemeFixture, ParallelBatchKeepsClustersWithinOneBatchMostly) {
  ParallelBatchParams params;
  params.switch_drives = 2;
  const ParallelBatchPlacement scheme(params);
  const PlacementPlan plan = scheme.place(context);

  const std::uint32_t t = spec.library.tapes_per_library;
  const std::uint32_t dm = 2;  // d - m
  auto batch_of = [&](TapeId tape) {
    const std::uint32_t slot = tape.value() % t;
    return slot < dm ? 0u : 1u + (slot - dm) / 2u;
  };
  std::size_t straddlers = 0;
  std::size_t multi_member = 0;
  for (const cluster::Cluster& c : clusters.clusters()) {
    if (c.members.size() < 2) continue;
    ++multi_member;
    std::set<std::uint32_t> batches;
    for (const ObjectId o : c.members) {
      batches.insert(batch_of(plan.tape_of(o)));
    }
    if (batches.size() > 1) ++straddlers;
  }
  // Only clusters split at batch boundaries may straddle; that must be a
  // small minority.
  EXPECT_LT(straddlers, multi_member / 3 + 2);
}

TEST_F(SchemeFixture, ParallelBatchRejectsBadM) {
  ParallelBatchParams params;
  params.switch_drives = 0;
  EXPECT_THROW(ParallelBatchPlacement(params).place(context),
               std::runtime_error);
  params.switch_drives = spec.library.drives_per_library;  // m == d
  EXPECT_THROW(ParallelBatchPlacement(params).place(context),
               std::runtime_error);
}

TEST_F(SchemeFixture, ParallelBatchRequiresClustersWhenRefining) {
  PlacementContext no_clusters{&wl, &spec, nullptr};
  ParallelBatchParams params;
  params.switch_drives = 2;
  EXPECT_THROW(ParallelBatchPlacement(params).place(no_clusters),
               std::runtime_error);
  // Without refinement it runs fine.
  params.cluster_refinement = false;
  EXPECT_NO_THROW(ParallelBatchPlacement(params).place(no_clusters));
}

TEST_F(SchemeFixture, ObjectProbabilityPacksByRank) {
  const ObjectProbabilityPlacement scheme;
  const PlacementPlan plan = scheme.place(context);
  EXPECT_EQ(plan.mount_policy.replacement, ReplacementPolicy::kLeastPopular);
  EXPECT_TRUE(plan.mount_policy.drive_pinned.empty());
  // Every drive gets an initial mount.
  EXPECT_EQ(plan.mount_policy.initial_mounts.size(), spec.total_drives());
  // Rank-0 tapes (slot 0 of each library) hold the densest objects: their
  // popularity beats the average tape's by construction.
  double rank0 = plan.mount_policy.tape_popularity[0] +
                 plan.mount_policy.tape_popularity[20];
  double total = 0.0;
  for (const double p : plan.mount_policy.tape_popularity) total += p;
  EXPECT_GT(rank0 / 2.0, total / plan.tapes_used());
}

TEST_F(SchemeFixture, ObjectProbabilityDensityOrderingAcrossRanks) {
  ObjectProbabilityParams params;
  params.sort_by_density = true;
  const ObjectProbabilityPlacement scheme(params);
  const PlacementPlan plan = scheme.place(context);
  // The minimum density on rank r must be >= the maximum density on rank
  // r+2 (sequential fill in density order; ranks r and r+1 may share the
  // boundary object).
  const std::uint32_t t = spec.library.tapes_per_library;
  auto rank_of = [&](TapeId tape) {
    const std::uint32_t lib = tape.value() / t;
    const std::uint32_t slot = tape.value() % t;
    return slot * spec.num_libraries + lib;
  };
  std::vector<double> min_density(40, 1e300);
  std::vector<double> max_density(40, -1.0);
  for (std::uint32_t i = 0; i < wl.object_count(); ++i) {
    const ObjectId o{i};
    const std::uint32_t r = rank_of(plan.tape_of(o));
    ASSERT_LT(r, 40u);
    const double d = wl.probability_density(o);
    min_density[r] = std::min(min_density[r], d);
    max_density[r] = std::max(max_density[r], d);
  }
  for (std::size_t r = 0; r + 2 < 40; ++r) {
    if (max_density[r + 2] < 0.0 || min_density[r] > 1e299) continue;
    EXPECT_GE(min_density[r], max_density[r + 2] - 1e-18)
        << "density inversion between tape ranks " << r << " and " << r + 2;
  }
}

TEST_F(SchemeFixture, ClusterProbabilityKeepsClustersOnOneTape) {
  const ClusterProbabilityPlacement scheme;
  const PlacementPlan plan = scheme.place(context);
  std::size_t split = 0;
  for (const cluster::Cluster& c : clusters.clusters()) {
    if (c.members.size() < 2) continue;
    std::set<std::uint32_t> tapes;
    for (const ObjectId o : c.members) tapes.insert(plan.tape_of(o).value());
    if (tapes.size() > 1) ++split;
  }
  // Clusters are capped at 0.9 * C_t, so none should need splitting.
  EXPECT_EQ(split, 0u);
}

TEST_F(SchemeFixture, ClusterProbabilityClustersAreContiguousOnTape) {
  const ClusterProbabilityPlacement scheme;
  const PlacementPlan plan = scheme.place(context);
  for (std::uint32_t tv = 0; tv < spec.total_tapes(); ++tv) {
    const auto on = plan.on_tape(TapeId{tv});
    // Cluster ids along the tape must form contiguous runs.
    std::set<std::uint32_t> seen;
    std::uint32_t current = ClusterId::kInvalid;
    for (const PlacedObject& p : on) {
      const std::uint32_t c = clusters.cluster_of(p.object).value();
      if (c != current) {
        ASSERT_TRUE(seen.insert(c).second)
            << "cluster " << c << " split into two runs on tape " << tv;
        current = c;
      }
    }
  }
}

TEST_F(SchemeFixture, ClusterProbabilityRequiresClusters) {
  PlacementContext no_clusters{&wl, &spec, nullptr};
  EXPECT_THROW(ClusterProbabilityPlacement().place(no_clusters),
               std::runtime_error);
}

TEST_F(SchemeFixture, SchemesReportTheirPaperNames) {
  EXPECT_EQ(ParallelBatchPlacement().name(), "parallel batch placement");
  EXPECT_EQ(ObjectProbabilityPlacement().name(),
            "object probability placement");
  EXPECT_EQ(ClusterProbabilityPlacement().name(),
            "cluster probability placement");
}

TEST_F(SchemeFixture, CapacityExhaustionThrows) {
  tape::SystemSpec tiny = spec;
  tiny.library.tapes_per_library = 4;
  tiny.library.tape_capacity = 2_GB;  // far too small for ~1.3 TB
  PlacementContext c{&wl, &tiny, &clusters};
  ParallelBatchParams params;
  params.switch_drives = 2;
  EXPECT_THROW(ParallelBatchPlacement(params).place(c), std::runtime_error);
  EXPECT_THROW(ObjectProbabilityPlacement().place(c), std::runtime_error);
  EXPECT_THROW(ClusterProbabilityPlacement().place(c), std::runtime_error);
}

TEST_F(SchemeFixture, AllSchemesPlaceEveryObjectExactlyOnce) {
  ParallelBatchParams pbp_params;
  pbp_params.switch_drives = 2;
  const ParallelBatchPlacement pbp(pbp_params);
  const ObjectProbabilityPlacement opp;
  const ClusterProbabilityPlacement cpp;
  for (const PlacementScheme* scheme :
       std::initializer_list<const PlacementScheme*>{&pbp, &opp, &cpp}) {
    const PlacementPlan plan = scheme->place(context);
    for (std::uint32_t i = 0; i < wl.object_count(); ++i) {
      EXPECT_TRUE(plan.tape_of(ObjectId{i}).valid());
    }
    Bytes placed{};
    for (std::uint32_t tv = 0; tv < spec.total_tapes(); ++tv) {
      placed += plan.used_on(TapeId{tv});
    }
    EXPECT_EQ(placed, wl.total_object_bytes()) << scheme->name();
  }
}

}  // namespace
}  // namespace tapesim::core
