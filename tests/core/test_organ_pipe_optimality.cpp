// Brute-force optimality check for the organ-pipe arrangement (Step 6 /
// [11]): under the independent-access model — the head rests at the
// previously read object, accesses are drawn i.i.d. by probability — the
// expected head travel  E = sum_{i,j} p_i p_j |c_i - c_j|  (c = object
// centers) is minimized by an organ-pipe permutation when objects have
// equal sizes. We enumerate all permutations of small instances and
// compare.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/plan.hpp"
#include "util/rng.hpp"
#include "workload/model.hpp"

namespace tapesim::core {
namespace {

using workload::ObjectInfo;
using workload::Request;
using workload::Workload;

/// Builds a workload of n single-object requests with the given weights.
Workload weighted_objects(const std::vector<double>& weights, Bytes size) {
  double norm = 0.0;
  for (const double w : weights) norm += w;
  std::vector<ObjectInfo> objects;
  std::vector<Request> requests;
  for (std::uint32_t i = 0; i < weights.size(); ++i) {
    objects.push_back(ObjectInfo{ObjectId{i}, size});
    requests.push_back(Request{RequestId{i}, weights[i] / norm,
                               {ObjectId{i}}});
  }
  return Workload{std::move(objects), std::move(requests)};
}

/// Expected pairwise head travel for a given on-tape order.
double expected_travel(const std::vector<ObjectId>& order,
                       const Workload& wl) {
  // Object centers under this order.
  std::vector<double> center(order.size());
  double offset = 0.0;
  std::vector<double> prob(order.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const double size = wl.object_size(order[pos]).as_double();
    center[pos] = offset + size / 2.0;
    prob[pos] = wl.object_probability(order[pos]);
    offset += size;
  }
  double total = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = 0; j < order.size(); ++j) {
      total += prob[i] * prob[j] * std::abs(center[i] - center[j]);
    }
  }
  return total;
}

double brute_force_minimum(const Workload& wl, std::uint32_t n) {
  std::vector<ObjectId> order;
  for (std::uint32_t i = 0; i < n; ++i) order.push_back(ObjectId{i});
  std::sort(order.begin(), order.end());
  double best = 1e300;
  do {
    best = std::min(best, expected_travel(order, wl));
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

class OrganPipeOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrganPipeOptimality, MatchesBruteForceForEqualSizes) {
  Rng rng{GetParam()};
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint32_t n = 5 + static_cast<std::uint32_t>(
                                    rng.uniform_below(3));  // 5..7
    std::vector<double> weights(n);
    for (auto& w : weights) w = rng.uniform(0.1, 10.0);
    const Workload wl = weighted_objects(weights, 1_GB);

    std::vector<ObjectId> members;
    for (std::uint32_t i = 0; i < n; ++i) members.push_back(ObjectId{i});
    const auto organ = organ_pipe_order(members, wl);
    const double organ_cost = expected_travel(organ, wl);
    const double optimal = brute_force_minimum(wl, n);
    EXPECT_NEAR(organ_cost, optimal, 1e-9 + 1e-9 * optimal)
        << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrganPipeOptimality,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull));

TEST(OrganPipeOptimality, HeterogeneousSizesAreHeuristicOnly) {
  // With unequal sizes organ pipe is only a heuristic; it must still be
  // within a modest factor of the brute-force optimum on small instances.
  Rng rng{9};
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint32_t n = 6;
    std::vector<double> weights(n);
    for (auto& w : weights) w = rng.uniform(0.1, 10.0);
    std::vector<ObjectInfo> objects;
    std::vector<Request> requests;
    double norm = 0.0;
    for (const double w : weights) norm += w;
    for (std::uint32_t i = 0; i < n; ++i) {
      objects.push_back(ObjectInfo{
          ObjectId{i}, Bytes{1 + rng.uniform_below(8) * 1000000000ULL}});
      requests.push_back(
          Request{RequestId{i}, weights[i] / norm, {ObjectId{i}}});
    }
    const Workload wl{std::move(objects), std::move(requests)};
    std::vector<ObjectId> members;
    for (std::uint32_t i = 0; i < n; ++i) members.push_back(ObjectId{i});
    const double organ_cost =
        expected_travel(organ_pipe_order(members, wl), wl);
    const double optimal = brute_force_minimum(wl, n);
    EXPECT_LE(organ_cost, 1.5 * optimal) << "trial " << trial;
    EXPECT_GE(organ_cost, optimal - 1e-9);
  }
}

}  // namespace
}  // namespace tapesim::core
