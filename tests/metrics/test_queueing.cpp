#include "metrics/queueing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace tapesim::metrics {
namespace {

TEST(MG1, DeterministicServiceMatchesMD1) {
  // Constant service S = 2 s: E[S^2] = 4. At lambda = 0.25 (rho = 0.5):
  // Wq = 0.25 * 4 / (2 * 0.5) = 1; sojourn = 3.
  SampleSet service;
  for (int i = 0; i < 100; ++i) service.add(2.0);
  const MG1Estimate e = mg1_estimate(service, 0.25);
  EXPECT_TRUE(e.stable);
  EXPECT_NEAR(e.utilization, 0.5, 1e-12);
  EXPECT_NEAR(e.mean_wait.count(), 1.0, 1e-9);
  EXPECT_NEAR(e.mean_sojourn.count(), 3.0, 1e-9);
}

TEST(MG1, ExponentialServiceMatchesMM1) {
  // M/M/1: sojourn = 1 / (mu - lambda). Sample exponential service with
  // mu = 1 and check at lambda = 0.5 (expected sojourn 2).
  SampleSet service;
  Rng rng{7};
  for (int i = 0; i < 200000; ++i) {
    service.add(-std::log(1.0 - rng.uniform()));
  }
  const MG1Estimate e = mg1_estimate(service, 0.5);
  EXPECT_TRUE(e.stable);
  EXPECT_NEAR(e.utilization, 0.5, 0.01);
  EXPECT_NEAR(e.mean_sojourn.count(), 2.0, 0.05);
}

TEST(MG1, UnstableAboveSaturation) {
  SampleSet service;
  for (int i = 0; i < 10; ++i) service.add(10.0);
  const MG1Estimate e = mg1_estimate(service, 0.2);  // rho = 2
  EXPECT_FALSE(e.stable);
  EXPECT_DOUBLE_EQ(e.mean_wait.count(), 0.0);  // left unset
  EXPECT_NEAR(e.utilization, 2.0, 1e-12);
}

TEST(MG1, WaitGrowsWithVariance) {
  // Same mean, higher variance -> longer waits (the P-K insight).
  SampleSet low;
  SampleSet high;
  for (int i = 0; i < 1000; ++i) {
    low.add(2.0);
    high.add(i % 2 == 0 ? 0.5 : 3.5);  // mean 2, large spread
  }
  const double lambda = 0.3;
  EXPECT_GT(mg1_estimate(high, lambda).mean_wait.count(),
            mg1_estimate(low, lambda).mean_wait.count());
}

TEST(MG1, SaturationRateIsInverseMeanService) {
  SampleSet service;
  service.add(4.0);
  service.add(6.0);
  EXPECT_DOUBLE_EQ(saturation_rate(service), 1.0 / 5.0);
}

TEST(ServiceEstimator, ZeroBeforeFirstObservation) {
  ServiceEstimator e;
  EXPECT_EQ(e.observations(), 0u);
  EXPECT_DOUBLE_EQ(e.estimate(10_GB).count(), 0.0);
  EXPECT_DOUBLE_EQ(e.mean_service().count(), 0.0);
}

TEST(ServiceEstimator, SingleObservationFallsBackToMean) {
  ServiceEstimator e;
  e.observe(2_GB, Seconds{120.0});
  EXPECT_DOUBLE_EQ(e.estimate(1_GB).count(), 120.0);
  EXPECT_DOUBLE_EQ(e.estimate(100_GB).count(), 120.0);
}

TEST(ServiceEstimator, RecoversExactLinearModel) {
  // service = 90 s overhead + 10 s/GB: the estimator should interpolate
  // and extrapolate exactly.
  ServiceEstimator e;
  for (const double gb : {1.0, 2.0, 4.0, 8.0}) {
    e.observe(Bytes{static_cast<Bytes::value_type>(gb * 1e9)},
              Seconds{90.0 + 10.0 * gb});
  }
  EXPECT_NEAR(e.estimate(3_GB).count(), 120.0, 1e-6);
  EXPECT_NEAR(e.estimate(16_GB).count(), 250.0, 1e-6);
  EXPECT_NEAR(e.estimate(Bytes{0}).count(), 90.0, 1e-6);
}

TEST(ServiceEstimator, AllEqualSizesFallBackToMean) {
  // Degenerate x-variance: the slope is undefined; the mean is the only
  // defensible prediction.
  ServiceEstimator e;
  e.observe(4_GB, Seconds{100.0});
  e.observe(4_GB, Seconds{140.0});
  e.observe(4_GB, Seconds{120.0});
  EXPECT_NEAR(e.estimate(1_GB).count(), 120.0, 1e-9);
  EXPECT_NEAR(e.estimate(40_GB).count(), 120.0, 1e-9);
}

TEST(ServiceEstimator, DownwardSlopeFallsBackToMean) {
  // Larger requests that happened to finish faster would fit a negative
  // slope; predictions from such a line are nonsense (negative times for
  // big requests), so the estimator must fall back.
  ServiceEstimator e;
  e.observe(1_GB, Seconds{500.0});
  e.observe(10_GB, Seconds{100.0});
  EXPECT_NEAR(e.estimate(100_GB).count(), 300.0, 1e-9);
  EXPECT_GE(e.estimate(1000_GB).count(), 0.0);
}

TEST(ServiceEstimator, NeverPredictsNegative) {
  ServiceEstimator e;
  e.observe(10_GB, Seconds{10.0});
  e.observe(20_GB, Seconds{30.0});  // slope 2 s/GB, intercept -10 s
  EXPECT_GE(e.estimate(Bytes{0}).count(), 0.0);
  EXPECT_GE(e.estimate(1_GB).count(), 0.0);
}

}  // namespace
}  // namespace tapesim::metrics
