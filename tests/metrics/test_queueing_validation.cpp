// Cross-validation of the analytic queueing model against the simulator.
//
// The OverloadRunner is, by construction, a single FIFO server: with
// Poisson arrivals its queue IS an M/G/1 queue whose service distribution
// is the per-request response-time distribution. The Pollaczek–Khinchine
// estimate in metrics/queueing must therefore land near the runner's
// measured queue waits at moderate utilization. Service times here are
// mildly history-dependent (mount state carries over), so the check is a
// tolerance band, not an identity.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "metrics/queueing.hpp"
#include "sched/overload.hpp"
#include "sched/simulator.hpp"
#include "workload/model.hpp"
#include "workload/storm.hpp"

namespace tapesim::metrics {
namespace {

using workload::ObjectInfo;
using workload::Request;
using workload::TimedRequest;
using workload::Workload;

struct Scenario {
  tape::SystemSpec spec;
  std::unique_ptr<Workload> workload;
  std::unique_ptr<core::PlacementPlan> plan;

  Scenario() {
    spec.num_libraries = 1;
    spec.library.drives_per_library = 2;
    spec.library.tapes_per_library = 4;
    spec.library.tape_capacity = 10_GB;

    std::vector<ObjectInfo> objects{{ObjectId{0}, 2_GB},
                                    {ObjectId{1}, 3_GB},
                                    {ObjectId{2}, 4_GB},
                                    {ObjectId{3}, 1_GB},
                                    {ObjectId{4}, 2_GB}};
    std::vector<Request> requests;
    const double p = 1.0 / 6.0;
    requests.push_back(Request{RequestId{0}, p, {ObjectId{0}}});
    requests.push_back(Request{RequestId{1}, p, {ObjectId{0}, ObjectId{1}}});
    requests.push_back(Request{RequestId{2}, p, {ObjectId{2}}});
    requests.push_back(Request{RequestId{3}, p, {ObjectId{3}}});
    requests.push_back(Request{RequestId{4}, p, {ObjectId{4}}});
    requests.push_back(Request{RequestId{5}, p, {ObjectId{3}, ObjectId{4}}});
    workload = std::make_unique<Workload>(std::move(objects),
                                          std::move(requests));

    plan = std::make_unique<core::PlacementPlan>(spec, *workload);
    plan->assign(ObjectId{0}, TapeId{0});
    plan->assign(ObjectId{1}, TapeId{0});
    plan->assign(ObjectId{2}, TapeId{1});
    plan->assign(ObjectId{3}, TapeId{2});
    plan->assign(ObjectId{4}, TapeId{3});
    plan->align_all(core::Alignment::kGivenOrder);
    plan->compute_tape_popularity();
    plan->mount_policy.initial_mounts.emplace_back(DriveId{0}, TapeId{0});
  }
};

TEST(QueueingValidation, MG1EstimateMatchesMeasuredWaits) {
  // Calibrate the mean service time on one simulator instance...
  Scenario calib;
  sched::RetrievalSimulator warm(*calib.plan);
  SampleSet calibration;
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t r = 0; r < 6; ++r) {
      calibration.add(warm.run_request(RequestId{r}).response.count());
    }
  }
  const double mean_service = calibration.mean();
  ASSERT_GT(mean_service, 0.0);

  // ...then drive a fresh one with Poisson arrivals at ~50% utilization.
  const double rate = 0.5 / mean_service;
  Scenario fresh;
  sched::RetrievalSimulator sim(*fresh.plan);
  const workload::RequestSampler sampler{*fresh.workload};
  Rng rng{23};
  const auto arrivals = workload::steady_arrivals(
      sampler, rate, /*batch_fraction=*/0.0, /*count=*/400, rng);
  sched::OverloadRunner runner(sim, sched::OverloadConfig{});
  const sched::OverloadReport report = runner.run(arrivals);
  ASSERT_EQ(report.served, arrivals.size());

  const MG1Estimate estimate =
      mg1_estimate(report.metrics.response_samples(), rate);
  ASSERT_TRUE(estimate.stable);
  EXPECT_GT(estimate.utilization, 0.3);
  EXPECT_LT(estimate.utilization, 0.7);

  const double measured_wait = report.queue_waits.mean();
  ASSERT_GT(measured_wait, 0.0);  // the queue actually formed
  // Pollaczek–Khinchine vs measured: the same order of magnitude, within
  // a factor-of-two band (service times are weakly history-dependent and
  // 400 arrivals leave real sampling noise in E[S^2]).
  EXPECT_GT(estimate.mean_wait.count(), 0.5 * measured_wait);
  EXPECT_LT(estimate.mean_wait.count(), 2.0 * measured_wait);

  // Sojourn = wait + service holds sample-by-sample in the report.
  for (const sched::OverloadOutcome& o : report.outcomes) {
    EXPECT_NEAR(o.sojourn.count(),
                o.queue_wait.count() + o.outcome.response.count(), 1e-6);
  }
}

}  // namespace
}  // namespace tapesim::metrics
