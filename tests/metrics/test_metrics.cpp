#include "metrics/request_metrics.hpp"

#include <gtest/gtest.h>

namespace tapesim::metrics {
namespace {

RequestOutcome outcome(double response, double sw, double seek,
                       double transfer, Bytes bytes,
                       std::uint32_t switches = 0) {
  RequestOutcome o;
  o.request = RequestId{0};
  o.bytes = bytes;
  o.response = Seconds{response};
  o.switch_time = Seconds{sw};
  o.seek = Seconds{seek};
  o.transfer = Seconds{transfer};
  o.tape_switches = switches;
  return o;
}

TEST(RequestOutcome, BandwidthIsBytesOverResponse) {
  const auto o = outcome(100.0, 10.0, 20.0, 70.0, 8_GB);
  EXPECT_DOUBLE_EQ(o.bandwidth().count(), 8.0e9 / 100.0);
  EXPECT_DOUBLE_EQ(o.bandwidth().megabytes_per_second(), 80.0);
}

TEST(ExperimentMetrics, MeansOverOutcomes) {
  ExperimentMetrics m;
  m.add(outcome(100.0, 10.0, 20.0, 70.0, 10_GB, 2));
  m.add(outcome(300.0, 50.0, 50.0, 200.0, 30_GB, 4));
  EXPECT_EQ(m.count(), 2u);
  EXPECT_DOUBLE_EQ(m.mean_response().count(), 200.0);
  EXPECT_DOUBLE_EQ(m.mean_switch().count(), 30.0);
  EXPECT_DOUBLE_EQ(m.mean_seek().count(), 35.0);
  EXPECT_DOUBLE_EQ(m.mean_transfer().count(), 135.0);
  EXPECT_EQ(m.mean_request_bytes(), 20_GB);
  EXPECT_DOUBLE_EQ(m.mean_tape_switches(), 3.0);
}

TEST(ExperimentMetrics, MeanVsAggregateBandwidth) {
  ExperimentMetrics m;
  // Request 1: 10 GB / 100 s = 100 MB/s. Request 2: 30 GB / 300 s =
  // 100 MB/s. Both views agree when rates are equal...
  m.add(outcome(100.0, 0, 0, 100.0, 10_GB));
  m.add(outcome(300.0, 0, 0, 300.0, 30_GB));
  EXPECT_DOUBLE_EQ(m.mean_bandwidth().megabytes_per_second(), 100.0);
  EXPECT_DOUBLE_EQ(m.aggregate_bandwidth().megabytes_per_second(), 100.0);

  // ...and diverge when they differ: a fast small request lifts the mean
  // more than the aggregate.
  m.add(outcome(10.0, 0, 0, 10.0, 4_GB));  // 400 MB/s
  EXPECT_NEAR(m.mean_bandwidth().megabytes_per_second(), 200.0, 1e-9);
  EXPECT_NEAR(m.aggregate_bandwidth().megabytes_per_second(),
              44.0e9 / 410.0 / 1e6, 1e-9);
}

TEST(ExperimentMetrics, SampleSetsExposed) {
  ExperimentMetrics m;
  for (int i = 1; i <= 5; ++i) {
    m.add(outcome(i * 100.0, 0, 0, i * 100.0, 1_GB));
  }
  EXPECT_EQ(m.response_samples().count(), 5u);
  EXPECT_DOUBLE_EQ(m.response_samples().median(), 300.0);
  EXPECT_DOUBLE_EQ(m.bandwidth_samples().max(), 1.0e9 / 100.0);
}

TEST(ExperimentMetrics, ShedOutcomesCountButNeverSample) {
  ExperimentMetrics m;
  m.add(outcome(100.0, 10.0, 20.0, 70.0, 10_GB));
  RequestOutcome shed;
  shed.request = RequestId{1};
  shed.bytes = 50_GB;
  shed.status = RequestStatus::kShed;
  m.add(shed);
  // The shed request never ran: samples and means must be untouched.
  EXPECT_EQ(m.count(), 1u);
  EXPECT_EQ(m.shed_count(), 1u);
  EXPECT_DOUBLE_EQ(m.mean_response().count(), 100.0);
  EXPECT_EQ(m.mean_request_bytes(), 10_GB);
}

TEST(ExperimentMetrics, ExpiredOutcomesSampledButNotServed) {
  ExperimentMetrics m;
  auto ok = outcome(100.0, 10.0, 20.0, 70.0, 10_GB);
  ok.deadline = Seconds{600.0};
  m.add(ok);
  auto expired = outcome(600.0, 0.0, 100.0, 500.0, 30_GB);
  expired.status = RequestStatus::kDeadlineExpired;
  expired.deadline = Seconds{600.0};
  expired.bytes_expired = 20_GB;
  m.add(expired);
  EXPECT_EQ(m.count(), 2u);
  EXPECT_EQ(m.served_count(), 1u);
  EXPECT_EQ(m.expired_count(), 1u);
  EXPECT_EQ(m.served_response_samples().count(), 1u);
  // Only the served-within-deadline request contributes goodput bytes.
  EXPECT_EQ(m.deadline_met_bytes(), 10_GB);
}

TEST(RequestOutcome, DeadlineSemantics) {
  RequestOutcome o = outcome(100.0, 0.0, 0.0, 100.0, 10_GB);
  EXPECT_TRUE(o.met_deadline());  // no deadline: always within
  o.deadline = Seconds{50.0};
  EXPECT_FALSE(o.met_deadline());
  o.deadline = Seconds{100.0};
  EXPECT_TRUE(o.met_deadline());
  o.status = RequestStatus::kDeadlineExpired;
  EXPECT_FALSE(o.met_deadline());

  o = outcome(600.0, 0.0, 0.0, 100.0, 10_GB);
  o.bytes_expired = 4_GB;
  EXPECT_EQ(o.bytes_served(), 6_GB);
}

}  // namespace
}  // namespace tapesim::metrics
