// Instrument thread-safety under concurrency: recorders hammer the
// lock-free hot paths while another thread snapshots and resets. The
// assertions here are coarse sanity bounds — the real checker is the TSan
// preset, which reruns tier1 and fails on any data race in these paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace tapesim::obs {
namespace {

TEST(MetricsRace, CounterIncVsSnapshotAndReset) {
  Registry registry;
  Counter& counter = registry.counter("race.counter");
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kIncsPerWriter = 20000;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kIncsPerWriter; ++i) counter.inc();
    });
  }
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.snapshot();
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter.value(), kWriters * kIncsPerWriter);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsRace, HistogramRecordVsSnapshot) {
  Registry registry;
  Histogram& hist = registry.histogram(
      "race.hist_s", BucketLayout::linear(0.0, 100.0, 20));
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  constexpr int kWriters = 4;
  constexpr int kRecordsPerWriter = 20000;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&hist, w] {
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        hist.record(static_cast<double>((i + w * 37) % 120));
      }
    });
  }
  std::thread reader([&hist, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const HistogramSnapshot snap = hist.snapshot();
      // Mid-flight snapshots may be torn across fields (count lands
      // before min/max), so only the hard bound holds at all times.
      std::uint64_t bucket_total = 0;
      for (const std::uint64_t c : snap.counts) bucket_total += c;
      EXPECT_LE(bucket_total,
                static_cast<std::uint64_t>(kWriters) * kRecordsPerWriter);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const HistogramSnapshot final_snap = hist.snapshot();
  EXPECT_EQ(final_snap.count,
            static_cast<std::uint64_t>(kWriters) * kRecordsPerWriter);
  EXPECT_DOUBLE_EQ(final_snap.min, 0.0);
  EXPECT_DOUBLE_EQ(final_snap.max, 119.0);
}

TEST(MetricsRace, HistogramRecordVsReset) {
  Histogram hist{BucketLayout::exponential(1e-3, 1e3, 2.0)};
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&hist, &stop] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        hist.record(static_cast<double>(i++ % 1000) * 0.5);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    hist.reset();
    (void)hist.snapshot();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();

  // After a final reset with no writers, everything reads zero.
  hist.reset();
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
}

TEST(MetricsRace, RegistryRegistrationFromManyThreads) {
  Registry registry;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Same names from every thread: first registration wins, the rest
      // must get the same instrument back.
      for (int i = 0; i < 100; ++i) {
        registry.counter("race.shared").inc();
        registry.gauge("race.gauge").set(static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("race.shared").value(), kThreads * 100u);
}

}  // namespace
}  // namespace tapesim::obs
