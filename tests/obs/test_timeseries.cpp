// Windowed time-series: window bookkeeping (full, skipped, partial,
// empty), counter deltas and rates, gauge sampling, per-window histogram
// percentiles, mid-run reset, and the export formats.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/engine.hpp"

namespace tapesim::obs {
namespace {

std::size_t column_index(const TimeSeries& series, const std::string& name) {
  const auto& cols = series.columns();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == name) return i;
  }
  ADD_FAILURE() << "column not found: " << name;
  return 0;
}

TEST(TimeSeries, CounterDeltasAndRatesPerWindow) {
  Counter requests;
  TimeSeries series(Seconds{10.0});
  series.track_counter("sched.requests", requests);

  requests.inc(5);
  series.advance_to(Seconds{10.0});  // closes [0, 10)
  requests.inc(20);
  series.advance_to(Seconds{20.0});  // closes [10, 20)

  ASSERT_EQ(series.windows().size(), 2u);
  const std::size_t delta_col = column_index(series, "sched.requests");
  const std::size_t rate_col =
      column_index(series, "sched.requests.rate_per_s");
  EXPECT_DOUBLE_EQ(series.windows()[0].values[delta_col], 5.0);
  EXPECT_DOUBLE_EQ(series.windows()[0].values[rate_col], 0.5);
  EXPECT_DOUBLE_EQ(series.windows()[1].values[delta_col], 20.0);
  EXPECT_DOUBLE_EQ(series.windows()[1].values[rate_col], 2.0);
}

TEST(TimeSeries, EmptyWindowsCloseWithZeroDeltas) {
  Counter c;
  TimeSeries series(Seconds{1.0});
  series.track_counter("c", c);

  c.inc(3);
  // One call far in the future: the first window absorbs the whole delta
  // (attribution granularity == call cadence), the skipped ones are empty.
  series.advance_to(Seconds{4.0});
  ASSERT_EQ(series.windows().size(), 4u);
  const std::size_t col = column_index(series, "c");
  EXPECT_DOUBLE_EQ(series.windows()[0].values[col], 3.0);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(series.windows()[i].values[col], 0.0) << "window " << i;
  }
}

TEST(TimeSeries, FinishClosesPartialFinalWindowWithScaledRate) {
  Counter c;
  TimeSeries series(Seconds{10.0});
  series.track_counter("c", c);

  c.inc(10);
  series.advance_to(Seconds{10.0});
  c.inc(4);
  series.finish(Seconds{12.0});  // partial window [10, 12): span 2 s

  ASSERT_EQ(series.windows().size(), 2u);
  const TimeSeriesWindow& last = series.windows().back();
  EXPECT_DOUBLE_EQ(last.start.count(), 10.0);
  EXPECT_DOUBLE_EQ(last.end.count(), 12.0);
  EXPECT_DOUBLE_EQ(last.values[column_index(series, "c")], 4.0);
  EXPECT_DOUBLE_EQ(last.values[column_index(series, "c.rate_per_s")], 2.0);

  // Idempotent for the same now; a zero-span finish adds nothing.
  series.finish(Seconds{12.0});
  EXPECT_EQ(series.windows().size(), 2u);
}

TEST(TimeSeries, FinishWithoutArgumentClosesAtLastAdvance) {
  Counter events;
  TimeSeries series(Seconds{10.0});
  series.track_counter("c", events);

  events.inc(3);
  series.advance_to(Seconds{14.0});  // closes [0, 10); [10, 14) pending
  events.inc(1);
  series.finish();  // closes [10, 14) at the last advance_to time

  ASSERT_EQ(series.windows().size(), 2u);
  EXPECT_DOUBLE_EQ(series.windows()[1].end.count(), 14.0);
  const std::size_t delta_col = column_index(series, "c");
  EXPECT_DOUBLE_EQ(series.windows()[1].values[delta_col], 1.0);
}

TEST(TimeSeries, FinishWithNoElapsedTimeProducesNoWindows) {
  Counter c;
  TimeSeries series(Seconds{5.0});
  series.track_counter("c", c);
  series.finish(Seconds{0.0});
  EXPECT_TRUE(series.windows().empty());
}

TEST(TimeSeries, ResetDropsWindowsAndRebaselines) {
  Counter c;
  TimeSeries series(Seconds{10.0});
  series.track_counter("c", c);

  c.inc(7);
  series.advance_to(Seconds{10.0});
  ASSERT_EQ(series.windows().size(), 1u);

  c.inc(100);
  series.reset(Seconds{15.0});  // warmup cut: drop history, re-baseline
  EXPECT_TRUE(series.windows().empty());

  c.inc(2);
  series.advance_to(Seconds{25.0});  // closes [15, 25)
  ASSERT_EQ(series.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(series.windows()[0].start.count(), 15.0);
  // Only the post-reset increments count: the 100 was absorbed by reset.
  EXPECT_DOUBLE_EQ(series.windows()[0].values[column_index(series, "c")],
                   2.0);
}

TEST(TimeSeries, GaugeRecordsValueAtWindowClose) {
  Gauge depth;
  TimeSeries series(Seconds{10.0});
  series.track_gauge("queue_depth", depth);

  depth.set(3.0);
  series.advance_to(Seconds{10.0});
  depth.set(8.0);
  series.advance_to(Seconds{20.0});

  const std::size_t col = column_index(series, "queue_depth");
  EXPECT_DOUBLE_EQ(series.windows()[0].values[col], 3.0);
  EXPECT_DOUBLE_EQ(series.windows()[1].values[col], 8.0);
}

TEST(TimeSeries, HistogramPercentilesAreComputedPerWindow) {
  Histogram h{BucketLayout::linear(0.0, 100.0, 100)};
  TimeSeries series(Seconds{10.0});
  series.track_histogram("lat", h, {50.0, 99.0});

  // Window 1: all samples near 10. Window 2: all near 90 — a cumulative
  // percentile would blend them; the per-window one must not.
  for (int i = 0; i < 100; ++i) h.record(10.0);
  series.advance_to(Seconds{10.0});
  for (int i = 0; i < 100; ++i) h.record(90.0);
  series.advance_to(Seconds{20.0});

  ASSERT_EQ(series.windows().size(), 2u);
  const std::size_t count_col = column_index(series, "lat.count");
  const std::size_t p50_col = column_index(series, "lat.p50");
  const std::size_t p99_col = column_index(series, "lat.p99");
  EXPECT_DOUBLE_EQ(series.windows()[0].values[count_col], 100.0);
  EXPECT_NEAR(series.windows()[0].values[p50_col], 10.0, 1.0);
  EXPECT_NEAR(series.windows()[0].values[p99_col], 10.0, 1.0);
  EXPECT_NEAR(series.windows()[1].values[p50_col], 90.0, 1.0);
  EXPECT_NEAR(series.windows()[1].values[p99_col], 90.0, 1.0);
}

TEST(TimeSeries, PercentileColumnNamesTrimTrailingZeros) {
  Histogram h{BucketLayout::linear(0.0, 1.0, 4)};
  TimeSeries series(Seconds{1.0});
  series.track_histogram("h", h, {50.0, 99.9});
  const auto& cols = series.columns();
  EXPECT_NE(std::find(cols.begin(), cols.end(), "h.p50"), cols.end());
  EXPECT_NE(std::find(cols.begin(), cols.end(), "h.p99.9"), cols.end());
}

TEST(TimeSeries, CsvHasHeaderAndOneRowPerWindow) {
  Counter c;
  TimeSeries series(Seconds{10.0});
  series.track_counter("c", c);
  c.inc(5);
  series.advance_to(Seconds{10.0});
  series.finish(Seconds{14.0});

  std::ostringstream os;
  series.write_csv(os);
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "window_start_s,window_end_s,c,c.rate_per_s");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2u);
}

TEST(TimeSeries, JsonRoundTripsThroughParser) {
  Counter c;
  Gauge g;
  TimeSeries series(Seconds{5.0});
  series.track_counter("c", c);
  series.track_gauge("g", g);
  c.inc(2);
  g.set(1.5);
  series.advance_to(Seconds{5.0});

  std::ostringstream os;
  series.write_json(os);
  const auto value = parse_json(os.str());
  ASSERT_TRUE(value.has_value());
  ASSERT_TRUE(value->is_object());
  EXPECT_DOUBLE_EQ(value->number_or("window_s", 0.0), 5.0);
  const JsonValue* windows = value->find("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_TRUE(windows->is_array());
  EXPECT_EQ(windows->array().size(), 1u);
}

// Driving the clock through the tracer: on_dispatch advances the series.
TEST(TimeSeries, TracerAdvancesSeriesOnDispatch) {
  Tracer tracer;
  TimeSeries series(Seconds{1.0});
  series.track_counter("engine.events.dispatched",
                       tracer.registry().counter("engine.events.dispatched"));
  tracer.set_timeseries(&series);

  sim::Engine engine;
  tracer.bind(engine);
  for (int i = 0; i < 5; ++i) {
    engine.schedule_in(Seconds{static_cast<double>(i)}, [] {});
  }
  engine.run();
  series.finish(engine.now());

  ASSERT_FALSE(series.windows().empty());
  double total = 0.0;
  for (const TimeSeriesWindow& w : series.windows()) {
    total += w.values[0];  // dispatched delta column
  }
  EXPECT_DOUBLE_EQ(total, 5.0);
}

}  // namespace
}  // namespace tapesim::obs
