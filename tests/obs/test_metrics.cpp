// Metrics registry: bucket math, percentile agreement with util::stats,
// snapshot/reset semantics, and export formats.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "obs/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace tapesim::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, HoldsLastValue) {
  Gauge g;
  g.set(3.5);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(BucketLayout, LinearBoundsAreInclusiveUpperEdges) {
  const auto layout = BucketLayout::linear(0.0, 10.0, 5);
  ASSERT_EQ(layout.bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(layout.bounds.front(), 2.0);
  EXPECT_DOUBLE_EQ(layout.bounds.back(), 10.0);
  EXPECT_EQ(layout.size(), 6u);  // + overflow

  EXPECT_EQ(layout.bucket_index(-1.0), 0u);
  EXPECT_EQ(layout.bucket_index(2.0), 0u);   // inclusive upper edge
  EXPECT_EQ(layout.bucket_index(2.0001), 1u);
  EXPECT_EQ(layout.bucket_index(10.0), 4u);
  EXPECT_EQ(layout.bucket_index(10.5), 5u);  // overflow bucket
}

TEST(BucketLayout, ExponentialCoversRangeMonotonically) {
  const auto layout = BucketLayout::exponential(1.0, 1000.0, 2.0);
  ASSERT_GE(layout.bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(layout.bounds.front(), 1.0);
  EXPECT_GE(layout.bounds.back(), 1000.0);
  for (std::size_t i = 1; i < layout.bounds.size(); ++i) {
    EXPECT_GT(layout.bounds[i], layout.bounds[i - 1]);
  }
}

TEST(Histogram, CountSumMinMaxExact) {
  Histogram h(BucketLayout::linear(0.0, 100.0, 10));
  h.record(5.0);
  h.record(50.0);
  h.record(95.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 150.0);
  EXPECT_DOUBLE_EQ(snap.min, 5.0);
  EXPECT_DOUBLE_EQ(snap.max, 95.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 50.0);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h(BucketLayout::linear(0.0, 1.0, 4));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(snap.percentile(50.0), 0.0);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h(BucketLayout::linear(0.0, 10.0, 10));
  h.record(3.0);
  h.record(7.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  h.record(9.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.min, 9.0);
  EXPECT_DOUBLE_EQ(snap.max, 9.0);
}

// The histogram percentile interpolates within its containing bucket, so it
// can be off by at most one bucket width from the exact (util::stats)
// answer on the same samples.
TEST(Histogram, PercentilesTrackExactStatsWithinBucketResolution) {
  const double width = 1.0;
  Histogram h(BucketLayout::linear(0.0, 100.0, 100));
  SampleSet exact;
  Rng rng{2024};
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform() * 90.0 + 5.0;
    h.record(v);
    exact.add(v);
  }
  const HistogramSnapshot snap = h.snapshot();
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    EXPECT_NEAR(snap.percentile(p), exact.percentile(p), width)
        << "p" << p;
  }
  EXPECT_NEAR(snap.mean(), exact.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(snap.min, exact.min());
  EXPECT_DOUBLE_EQ(snap.max, exact.max());
}

TEST(Histogram, PercentileClampedToObservedRange) {
  Histogram h(BucketLayout::linear(0.0, 100.0, 4));  // coarse buckets
  h.record(40.0);
  h.record(42.0);
  const auto snap = h.snapshot();
  EXPECT_GE(snap.percentile(0.0), 40.0);
  EXPECT_LE(snap.percentile(100.0), 42.0);
}

TEST(Registry, InstrumentsPersistAcrossCalls) {
  Registry reg;
  Counter& c1 = reg.counter("a.count");
  Counter& c2 = reg.counter("a.count");
  EXPECT_EQ(&c1, &c2);
  c1.inc();
  EXPECT_EQ(reg.counter("a.count").value(), 1u);

  Histogram& h1 = reg.histogram("a.h", BucketLayout::linear(0, 1, 2));
  // Second registration: same instrument, layout argument ignored.
  Histogram& h2 = reg.histogram("a.h", BucketLayout::linear(0, 9, 9));
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.layout().bounds.size(), 2u);
}

TEST(Registry, SnapshotAndReset) {
  Registry reg;
  reg.counter("n").inc(7);
  reg.gauge("g").set(1.25);
  reg.histogram("h", BucketLayout::linear(0, 10, 5)).record(4.0);

  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("n"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 1.25);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);

  reg.reset();
  EXPECT_EQ(reg.counter("n").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  const RegistrySnapshot after = reg.snapshot();
  EXPECT_EQ(after.histograms.at("h").count, 0u);
}

TEST(Registry, CsvExportHasHeaderAndOneRowPerInstrument) {
  Registry reg;
  reg.counter("events").inc(3);
  reg.gauge("depth").set(2.0);
  reg.histogram("wait_s", BucketLayout::linear(0, 10, 5)).record(1.0);

  std::ostringstream os;
  reg.write_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("kind,name,count,sum,mean,min,max,p50,p95,p99"),
            std::string::npos);
  EXPECT_NE(text.find("counter,events,3"), std::string::npos);
  EXPECT_NE(text.find("gauge,depth"), std::string::npos);
  EXPECT_NE(text.find("histogram,wait_s,1"), std::string::npos);
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4u);  // header + 3 instruments
}

TEST(Registry, JsonExportParsesAndRoundTripsValues) {
  Registry reg;
  reg.counter("events").inc(11);
  reg.gauge("depth").set(0.5);
  reg.histogram("wait_s", BucketLayout::linear(0, 4, 4)).record(3.5);

  std::ostringstream os;
  reg.write_json(os);
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());

  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->number_or("events", -1.0), 11.0);

  const JsonValue* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->number_or("depth", -1.0), 0.5);

  const JsonValue* hists = doc->find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* hist = hists->find("wait_s");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->number_or("count", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(hist->number_or("sum", -1.0), 3.5);
  const JsonValue* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  EXPECT_EQ(buckets->array().size(), 5u);  // 4 finite + overflow
}

}  // namespace
}  // namespace tapesim::obs
