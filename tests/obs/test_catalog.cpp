// The metrics catalog: internal consistency (sorted, unique, convention-
// clean names, unit suffixes) and coverage — a fully-instrumented
// simulator run must register only cataloged instruments, so an
// undocumented metric fails here instead of slipping into the wild.
#include "obs/catalog.hpp"

#include <gtest/gtest.h>

#include <string>

#include "exp/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace tapesim::obs {
namespace {

TEST(MetricName, ConventionAcceptsDottedLowercase) {
  EXPECT_TRUE(is_valid_metric_name("engine.events.dispatched"));
  EXPECT_TRUE(is_valid_metric_name("sched.request.response_s"));
  EXPECT_TRUE(is_valid_metric_name("repair.copied_bytes"));
  EXPECT_TRUE(is_valid_metric_name("x9.y_z"));
}

TEST(MetricName, ConventionRejectsEverythingElse) {
  EXPECT_FALSE(is_valid_metric_name(""));
  EXPECT_FALSE(is_valid_metric_name("Engine.events"));    // uppercase
  EXPECT_FALSE(is_valid_metric_name("engine..events"));   // empty segment
  EXPECT_FALSE(is_valid_metric_name(".engine"));          // leading dot
  EXPECT_FALSE(is_valid_metric_name("engine."));          // trailing dot
  EXPECT_FALSE(is_valid_metric_name("9lives.count"));     // leading digit
  EXPECT_FALSE(is_valid_metric_name("engine-events"));    // dash
  EXPECT_FALSE(is_valid_metric_name("engine events"));    // space
}

TEST(Catalog, IsSortedAndUnique) {
  const auto catalog = metric_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].name, catalog[i].name)
        << "out of order at " << catalog[i].name;
  }
}

TEST(Catalog, EveryEntryFollowsTheNamingConvention) {
  for (const MetricInfo& m : metric_catalog()) {
    EXPECT_TRUE(is_valid_metric_name(m.name)) << m.name;
    EXPECT_TRUE(m.kind == "counter" || m.kind == "gauge" ||
                m.kind == "histogram")
        << m.name << " has kind " << m.kind;
    EXPECT_FALSE(m.help.empty()) << m.name;
  }
}

TEST(Catalog, UnitSuffixesMatchDeclaredUnits) {
  for (const MetricInfo& m : metric_catalog()) {
    const std::string name(m.name);
    if (m.unit == "s") {
      EXPECT_TRUE(name.ends_with("_s")) << name << " declares unit s";
    }
    if (m.unit == "bytes") {
      EXPECT_TRUE(name.ends_with("_bytes")) << name << " declares unit bytes";
    }
    // And the converse: a unit-suffixed name must declare the unit. A
    // ratio unit is allowed when the denominator names the suffix
    // (sim_s_per_wall_s is s/s, events_per_wall_s is 1/s).
    if (name.ends_with("_s")) {
      EXPECT_TRUE(m.unit == "s" || m.unit == "s/s" || m.unit == "1/s")
          << name;
    }
    if (name.ends_with("_bytes")) {
      EXPECT_EQ(m.unit, "bytes") << name;
    }
  }
}

TEST(Catalog, OutageInstrumentsAreCatalogedWithTheRightKinds) {
  const auto expect_kind = [](const char* name, const char* kind) {
    const MetricInfo* info = find_metric(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->kind, kind) << name;
    EXPECT_TRUE(is_valid_metric_name(info->name)) << name;
  };
  for (const char* counter :
       {"outage.started", "outage.ended", "outage.disasters",
        "outage.failovers", "outage.requests_parked", "outage.dr_jobs",
        "outage.dr_bytes"}) {
    expect_kind(counter, "counter");
  }
  expect_kind("outage.downtime_s", "gauge");
  expect_kind("outage.ttfb_s", "histogram");
  expect_kind("outage.redundancy_recovery_s", "histogram");
}

TEST(Catalog, RecoveryInstrumentsAreCatalogedWithTheRightKinds) {
  const auto expect_kind = [](const char* name, const char* kind) {
    const MetricInfo* info = find_metric(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->kind, kind) << name;
    EXPECT_TRUE(is_valid_metric_name(info->name)) << name;
  };
  for (const char* counter :
       {"recovery.crashes", "recovery.checkpoints",
        "recovery.records_replayed", "recovery.lost_mutations",
        "recovery.reconciled_mutations", "recovery.admissions_parked"}) {
    expect_kind(counter, "counter");
  }
  expect_kind("recovery.downtime_s", "gauge");
  expect_kind("recovery.metadata_rto_s", "histogram");
  expect_kind("recovery.snapshot_age_s", "histogram");
}

TEST(Catalog, GovernorInstrumentsAreCatalogedWithTheRightKinds) {
  const auto expect_kind = [](const char* name, const char* kind) {
    const MetricInfo* info = find_metric(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->kind, kind) << name;
    EXPECT_TRUE(is_valid_metric_name(info->name)) << name;
  };
  for (const char* cls : {"retry", "failover", "hedge"}) {
    for (const char* suffix : {"_attempts", "_admitted", "_fast_failed"}) {
      expect_kind(("governor." + std::string(cls) + suffix).c_str(),
                  "counter");
    }
  }
  for (const char* counter :
       {"governor.breaker_opened", "governor.breaker_reopened",
        "governor.breaker_closed", "governor.breaker_probes",
        "governor.metastable_trips", "governor.metastable_releases",
        "governor.shed_escalations"}) {
    expect_kind(counter, "counter");
  }
  expect_kind("governor.shed_level", "gauge");
  expect_kind("governor.breakers_open", "gauge");
}

TEST(Catalog, FindMetricLocatesEveryEntryAndRejectsUnknowns) {
  for (const MetricInfo& m : metric_catalog()) {
    const MetricInfo* found = find_metric(m.name);
    ASSERT_NE(found, nullptr) << m.name;
    EXPECT_EQ(found->name, m.name);
  }
  EXPECT_EQ(find_metric("no.such.metric"), nullptr);
  EXPECT_EQ(find_metric(""), nullptr);
  EXPECT_EQ(find_metric("zzz"), nullptr);
}

// Coverage: run a traced, fault-injected, replicated experiment (the
// widest instrumentation path) plus a profiler export, then require every
// registered instrument to be cataloged. A new metric without a catalog
// entry — and therefore without docs/METRICS.md documentation — fails
// here.
TEST(Catalog, LiveRunRegistersOnlyCatalogedMetrics) {
  exp::ExperimentConfig config;
  config.spec.num_libraries = 2;
  config.spec.library.drives_per_library = 3;
  config.spec.library.tapes_per_library = 10;
  config.spec.library.tape_capacity = 40_GB;
  config.workload.num_objects = 800;
  config.workload.num_requests = 25;
  config.workload.min_objects_per_request = 10;
  config.workload.max_objects_per_request = 20;
  config.workload.object_groups = 16;
  config.workload.min_object_size = Bytes{100ULL * 1000 * 1000};
  config.workload.max_object_size = 1_GB;
  config.simulated_requests = 40;
  // Arm library outages so the outage.* instruments register too; the
  // MTBF is sized to land a couple of windows inside the run's horizon.
  config.sim.faults.outage.library_mtbf = Seconds{20000.0};
  config.sim.faults.outage.library_mttr = Seconds{500.0};

  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);
  Tracer tracer;
  (void)experiment.run_traced(*schemes.parallel_batch, tracer);

  Profiler profiler;  // nothing attached: exports zeros, registers names
  profiler.export_to(tracer.registry());

  const RegistrySnapshot snapshot = tracer.registry().snapshot();
  const auto check = [](const std::string& name, const char* kind) {
    const MetricInfo* info = find_metric(name);
    ASSERT_NE(info, nullptr)
        << "unregistered-in-catalog metric: " << name
        << " — add it to src/obs/catalog.cpp and docs/METRICS.md";
    EXPECT_EQ(info->kind, kind) << name;
  };
  for (const auto& [name, value] : snapshot.counters) {
    check(name, "counter");
  }
  for (const auto& [name, value] : snapshot.gauges) {
    check(name, "gauge");
  }
  for (const auto& [name, value] : snapshot.histograms) {
    check(name, "histogram");
  }
}

}  // namespace
}  // namespace tapesim::obs
