// The minimal JSON reader used for trace validation and post-processing.
#include "obs/json.hpp"

#include <gtest/gtest.h>

namespace tapesim::obs {
namespace {

TEST(ParseJson, Scalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_EQ(parse_json("true")->string_or("x", "d"), "d");  // not an object
  EXPECT_DOUBLE_EQ(parse_json("42")->number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-1.5e3")->number(), -1500.0);
  EXPECT_EQ(parse_json("\"hi\"")->string(), "hi");
}

TEST(ParseJson, StringEscapes) {
  const auto v = parse_json(R"("a\"b\\c\nd\te")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->string(), "a\"b\\c\nd\te");
}

TEST(ParseJson, NestedStructures) {
  const auto v = parse_json(
      R"({"span": {"track": "drive", "lane": 3}, "vals": [1, 2.5, null]})");
  ASSERT_TRUE(v.has_value());
  const JsonValue* span = v->find("span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->string_or("track", ""), "drive");
  EXPECT_DOUBLE_EQ(span->number_or("lane", -1), 3.0);
  const JsonValue* vals = v->find("vals");
  ASSERT_NE(vals, nullptr);
  ASSERT_EQ(vals->array().size(), 3u);
  EXPECT_DOUBLE_EQ(vals->array()[1].number(), 2.5);
  EXPECT_TRUE(vals->array()[2].is_null());
}

TEST(ParseJson, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("[1,]").has_value());
  EXPECT_FALSE(parse_json("{\"a\" 1}").has_value());
  EXPECT_FALSE(parse_json("nul").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
  EXPECT_FALSE(parse_json("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(parse_json("{} extra").has_value());
}

TEST(ParseJson, WhitespaceTolerant) {
  const auto v = parse_json("  {\n\t\"a\" : [ 1 , 2 ]\n}  ");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("a")->array().size(), 2u);
}

TEST(ParseJson, MissingKeysFallBack) {
  const auto v = parse_json(R"({"present": 1})");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->number_or("absent", 7.5), 7.5);
  EXPECT_EQ(v->string_or("absent", "d"), "d");
  EXPECT_EQ(v->find("absent"), nullptr);
}

}  // namespace
}  // namespace tapesim::obs
