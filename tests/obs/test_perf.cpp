// Perf reports and the regression comparator: JSON round-trip, strictness
// of the parser, and the per-field threshold rules — including injected
// synthetic regressions, which is what keeps bench_compare honest.
#include "obs/perf.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace tapesim::obs {
namespace {

PerfReport sample_report() {
  PerfReport report;
  report.bench = "micro_kernel";
  report.wall_s = 2.5;
  report.events_dispatched = 100000;
  report.events_per_s = 40000.0;
  report.peak_rss_bytes = 256ULL << 20;
  report.kpis["request.mean_response_s"] = 123.456;
  report.kpis["request.switches"] = 42.0;
  return report;
}

const PerfDelta* find_delta(const std::vector<PerfDelta>& deltas,
                            const std::string& field) {
  for (const PerfDelta& d : deltas) {
    if (d.field == field) return &d;
  }
  return nullptr;
}

TEST(PerfReport, JsonRoundTripPreservesEveryField) {
  const PerfReport report = sample_report();
  std::ostringstream os;
  report.write_json(os);
  const auto parsed = PerfReport::from_json(os.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->bench, report.bench);
  EXPECT_DOUBLE_EQ(parsed->wall_s, report.wall_s);
  EXPECT_EQ(parsed->events_dispatched, report.events_dispatched);
  EXPECT_DOUBLE_EQ(parsed->events_per_s, report.events_per_s);
  EXPECT_EQ(parsed->peak_rss_bytes, report.peak_rss_bytes);
  EXPECT_EQ(parsed->kpis, report.kpis);
}

TEST(PerfReport, EmbeddedProfileObjectKeepsJsonWellFormed) {
  PerfReport report = sample_report();
  report.profile_json = "{\"dispatches\": 7}";
  std::ostringstream os;
  report.write_json(os);
  // The whole document still parses, profile object included.
  const auto parsed = PerfReport::from_json(os.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->bench, "micro_kernel");
}

TEST(PerfReport, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(PerfReport::from_json("not json").has_value());
  EXPECT_FALSE(PerfReport::from_json("[]").has_value());
  EXPECT_FALSE(PerfReport::from_json("{\"wall_s\": 1.0}").has_value());
  EXPECT_FALSE(
      PerfReport::from_json("{\"bench\": \"x\", \"kpis\": {}}").has_value());
  // Non-numeric KPI values are schema errors, not silently dropped.
  EXPECT_FALSE(PerfReport::from_json("{\"bench\": \"x\", \"wall_s\": 1.0, "
                                     "\"kpis\": {\"k\": \"fast\"}}")
                   .has_value());
}

TEST(PerfCompare, IdenticalReportsHaveNoRegression) {
  const PerfReport report = sample_report();
  const auto deltas = compare_perf(report, report);
  EXPECT_FALSE(has_regression(deltas));
}

TEST(PerfCompare, WallSlowdownBeyondThresholdRegresses) {
  const PerfReport baseline = sample_report();
  PerfReport current = baseline;
  current.wall_s = baseline.wall_s * 1.30;  // inside the 35% band
  EXPECT_FALSE(has_regression(compare_perf(baseline, current)));
  current.wall_s = baseline.wall_s * 1.40;  // injected regression
  const auto deltas = compare_perf(baseline, current);
  EXPECT_TRUE(has_regression(deltas));
  const PerfDelta* wall = find_delta(deltas, "wall_s");
  ASSERT_NE(wall, nullptr);
  EXPECT_TRUE(wall->regression);
}

TEST(PerfCompare, ThroughputDropBeyondThresholdRegresses) {
  const PerfReport baseline = sample_report();
  PerfReport current = baseline;
  current.events_per_s = baseline.events_per_s * 0.80;
  EXPECT_FALSE(has_regression(compare_perf(baseline, current)));
  current.events_per_s = baseline.events_per_s * 0.70;
  const auto deltas = compare_perf(baseline, current);
  const PerfDelta* rate = find_delta(deltas, "events_per_s");
  ASSERT_NE(rate, nullptr);
  EXPECT_TRUE(rate->regression);
}

TEST(PerfCompare, RssGrowthBeyondThresholdRegresses) {
  const PerfReport baseline = sample_report();
  PerfReport current = baseline;
  current.peak_rss_bytes = static_cast<std::uint64_t>(
      static_cast<double>(baseline.peak_rss_bytes) * 1.5);
  const auto deltas = compare_perf(baseline, current);
  const PerfDelta* rss = find_delta(deltas, "peak_rss_bytes");
  ASSERT_NE(rss, nullptr);
  EXPECT_TRUE(rss->regression);
}

TEST(PerfCompare, EventsDispatchedIsInformationalOnly) {
  const PerfReport baseline = sample_report();
  PerfReport current = baseline;
  current.events_dispatched = baseline.events_dispatched * 10;
  const auto deltas = compare_perf(baseline, current);
  const PerfDelta* events = find_delta(deltas, "events_dispatched");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->regression);
  EXPECT_FALSE(has_regression(deltas));
}

TEST(PerfCompare, DeterministicKpiDriftRegressesAtTightBand) {
  const PerfReport baseline = sample_report();
  PerfReport current = baseline;
  // Float dust passes ...
  current.kpis["request.mean_response_s"] *= 1.0 + 1e-9;
  EXPECT_FALSE(has_regression(compare_perf(baseline, current)));
  // ... a behavior change does not, even a "small" one.
  current.kpis["request.mean_response_s"] *= 1.001;
  const auto deltas = compare_perf(baseline, current);
  const PerfDelta* kpi = find_delta(deltas, "kpi.request.mean_response_s");
  ASSERT_NE(kpi, nullptr);
  EXPECT_TRUE(kpi->regression);
}

TEST(PerfCompare, MissingKpiOnEitherSideIsSchemaDrift) {
  const PerfReport baseline = sample_report();
  PerfReport dropped = baseline;
  dropped.kpis.erase("request.switches");
  EXPECT_TRUE(has_regression(compare_perf(baseline, dropped)));

  PerfReport added = baseline;
  added.kpis["request.new_metric"] = 1.0;
  const auto deltas = compare_perf(baseline, added);
  const PerfDelta* extra = find_delta(deltas, "kpi.request.new_metric");
  ASSERT_NE(extra, nullptr);
  EXPECT_TRUE(extra->regression);
}

TEST(PerfCompare, MultiRegressionFlagsEveryFailingFieldWithItsThreshold) {
  // One run, six violations: the comparator must surface all of them
  // in a single pass, each carrying the boundary value it crossed.
  const PerfReport baseline = sample_report();
  PerfReport current = baseline;
  current.wall_s = baseline.wall_s * 2.0;             // ceiling 1.35x
  current.events_per_s = baseline.events_per_s * 0.5;  // floor 0.75x
  current.peak_rss_bytes = baseline.peak_rss_bytes * 2;
  current.kpis["request.mean_response_s"] *= 1.01;     // drift
  current.kpis.erase("request.switches");              // schema drift
  current.kpis["request.new_metric"] = 7.0;            // schema drift

  const PerfThresholds t;
  const auto deltas = compare_perf(baseline, current, t);
  EXPECT_TRUE(has_regression(deltas));

  std::size_t regressed = 0;
  for (const PerfDelta& d : deltas) {
    if (d.regression) ++regressed;
  }
  EXPECT_EQ(regressed, 6u);

  const PerfDelta* wall = find_delta(deltas, "wall_s");
  ASSERT_NE(wall, nullptr);
  EXPECT_TRUE(wall->regression);
  EXPECT_DOUBLE_EQ(wall->threshold, baseline.wall_s * (1.0 + t.wall_frac));
  EXPECT_GT(wall->current, wall->threshold);

  const PerfDelta* rate = find_delta(deltas, "events_per_s");
  ASSERT_NE(rate, nullptr);
  EXPECT_TRUE(rate->regression);
  EXPECT_DOUBLE_EQ(rate->threshold,
                   baseline.events_per_s * (1.0 - t.rate_frac));
  EXPECT_LT(rate->current, rate->threshold);

  const PerfDelta* rss = find_delta(deltas, "peak_rss_bytes");
  ASSERT_NE(rss, nullptr);
  EXPECT_TRUE(rss->regression);
  EXPECT_DOUBLE_EQ(rss->threshold,
                   static_cast<double>(baseline.peak_rss_bytes) *
                       (1.0 + t.rss_frac));

  const PerfDelta* kpi = find_delta(deltas, "kpi.request.mean_response_s");
  ASSERT_NE(kpi, nullptr);
  EXPECT_TRUE(kpi->regression);
  // Upward drift: the reported edge is the upper one, just above baseline.
  EXPECT_GT(kpi->threshold, kpi->baseline);
  EXPECT_LT(kpi->threshold, kpi->current);

  const PerfDelta* dropped = find_delta(deltas, "kpi.request.switches");
  ASSERT_NE(dropped, nullptr);
  EXPECT_TRUE(dropped->regression);
  EXPECT_DOUBLE_EQ(dropped->threshold, 42.0);  // exact value or nothing

  const PerfDelta* added = find_delta(deltas, "kpi.request.new_metric");
  ASSERT_NE(added, nullptr);
  EXPECT_TRUE(added->regression);

  // Fields inside their bands carry thresholds too (the band edge), but
  // stay unflagged.
  const PerfDelta* events = find_delta(deltas, "events_dispatched");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->regression);
  EXPECT_DOUBLE_EQ(events->threshold, 0.0);  // informational: no gate
}

TEST(PerfCompare, CustomThresholdsWiden) {
  const PerfReport baseline = sample_report();
  PerfReport current = baseline;
  current.wall_s = baseline.wall_s * 2.5;
  PerfThresholds generous;
  generous.wall_frac = 2.0;
  EXPECT_FALSE(has_regression(compare_perf(baseline, current, generous)));
}

TEST(PerfReport, PeakRssIsNonzeroOnThisPlatform) {
  // getrusage is available everywhere the test suite runs.
  EXPECT_GT(peak_rss_bytes(), 0u);
}

TEST(WallTimer, ElapsedIsMonotonic) {
  const WallTimer timer;
  const double a = timer.elapsed_s();
  const double b = timer.elapsed_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace tapesim::obs
