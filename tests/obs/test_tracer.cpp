// Span tracing: engine sink plumbing, device probes, scheduler spans, the
// sampler, and the export formats. The heavyweight checks reconcile the
// trace against the simulator's own accounting (conservation).
#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "obs/json.hpp"
#include "sched/concurrent.hpp"
#include "sched/report.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace tapesim::obs {
namespace {

// --- sim::TraceSink extension (satellite: on_schedule / on_cancel) ---

struct RecordingSink : sim::TraceSink {
  struct Scheduled {
    Seconds now;
    Seconds at;
    sim::EventId id;
    std::string label;
  };
  std::vector<Scheduled> scheduled;
  std::vector<sim::EventId> dispatched;
  std::vector<sim::EventId> cancelled;

  void on_schedule(Seconds now, Seconds at, sim::EventId id,
                   const std::string& label) override {
    scheduled.push_back({now, at, id, label});
  }
  void on_dispatch(Seconds /*time*/, sim::EventId id,
                   const std::string& /*label*/) override {
    dispatched.push_back(id);
  }
  void on_cancel(Seconds /*now*/, sim::EventId id) override {
    cancelled.push_back(id);
  }
};

TEST(TraceSink, OnScheduleReceivesScheduledTimeAndLabel) {
  sim::Engine engine;
  RecordingSink sink;
  engine.set_trace_sink(&sink);
  engine.schedule_in(Seconds{5.0}, [] {}, "five");
  engine.schedule_at(Seconds{2.0}, [] {}, "two");
  ASSERT_EQ(sink.scheduled.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.scheduled[0].now.count(), 0.0);
  EXPECT_DOUBLE_EQ(sink.scheduled[0].at.count(), 5.0);
  EXPECT_EQ(sink.scheduled[0].label, "five");
  EXPECT_DOUBLE_EQ(sink.scheduled[1].at.count(), 2.0);
  engine.run();
  EXPECT_EQ(sink.dispatched.size(), 2u);
}

TEST(TraceSink, OnCancelFiresOnlyForPendingEvents) {
  sim::Engine engine;
  RecordingSink sink;
  engine.set_trace_sink(&sink);
  const sim::EventId id = engine.schedule_in(Seconds{1.0}, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // already cancelled: no second callback
  ASSERT_EQ(sink.cancelled.size(), 1u);
  EXPECT_EQ(sink.cancelled[0], id);
  engine.run();
  EXPECT_TRUE(sink.dispatched.empty());
}

// A sink that overrides nothing compiles and is safely ignorable — the
// defaulted no-ops are the compatibility guarantee for existing sinks.
struct LegacySink : sim::TraceSink {};

TEST(TraceSink, DefaultedNoOpsKeepLegacySinksWorking) {
  sim::Engine engine;
  LegacySink sink;
  engine.set_trace_sink(&sink);
  const sim::EventId id = engine.schedule_in(Seconds{1.0}, [] {});
  engine.schedule_in(Seconds{2.0}, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_DOUBLE_EQ(engine.run().count(), 2.0);
}

// --- Tracer on a bare engine ---

TEST(Tracer, KernelCountersFollowEngineActivity) {
  sim::Engine engine;
  Tracer tracer;
  tracer.bind(engine);
  engine.schedule_in(Seconds{1.0}, [] {});
  engine.schedule_in(Seconds{2.0}, [] {});
  const sim::EventId doomed = engine.schedule_in(Seconds{3.0}, [] {});
  engine.cancel(doomed);
  engine.run();

  const RegistrySnapshot snap = tracer.registry().snapshot();
  EXPECT_EQ(snap.counters.at("engine.events.scheduled"), 3u);
  EXPECT_EQ(snap.counters.at("engine.events.dispatched"), 2u);
  EXPECT_EQ(snap.counters.at("engine.events.cancelled"), 1u);
  const HistogramSnapshot& horizon =
      snap.histograms.at("engine.schedule_horizon_s");
  EXPECT_EQ(horizon.count, 3u);
  EXPECT_DOUBLE_EQ(horizon.min, 1.0);
  EXPECT_DOUBLE_EQ(horizon.max, 3.0);
}

TEST(Tracer, MarkersCarryTimeAndNote) {
  sim::Engine engine;
  Tracer tracer;
  tracer.bind(engine);
  engine.schedule_in(Seconds{4.0}, [&] {
    tracer.marker(Track::kEngine, 0, "midpoint");
  });
  engine.run();
  ASSERT_EQ(tracer.spans().size(), 1u);
  const Span& m = tracer.spans()[0];
  EXPECT_EQ(m.phase, Phase::kMarker);
  EXPECT_DOUBLE_EQ(m.start.count(), 4.0);
  EXPECT_DOUBLE_EQ(m.end.count(), 4.0);
  EXPECT_EQ(m.note, "midpoint");
}

TEST(Tracer, SamplerHonoursCadence) {
  sim::Engine engine;
  Tracer tracer;
  tracer.set_sample_cadence(Seconds{10.0});
  tracer.bind(engine);
  double value = 0.0;
  tracer.add_gauge("test.value", [&value]() { return value; });
  // One event per second for 60 s: samples must land at >= 10 s spacing.
  for (int i = 1; i <= 60; ++i) {
    engine.schedule_at(Seconds{static_cast<double>(i)},
                       [&value] { value += 1.0; });
  }
  engine.run();

  std::ostringstream os;
  tracer.write_jsonl(os);
  std::vector<double> sample_times;
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) {
    const auto v = parse_json(line);
    ASSERT_TRUE(v.has_value()) << line;
    if (v->string_or("type", "") == "sample") {
      sample_times.push_back(v->number_or("t_s", -1.0));
    }
  }
  ASSERT_GE(sample_times.size(), 5u);
  ASSERT_LE(sample_times.size(), 7u);  // 60 s / 10 s cadence, first at t=1
  for (std::size_t i = 1; i < sample_times.size(); ++i) {
    EXPECT_GE(sample_times[i] - sample_times[i - 1], 10.0 - 1e-9);
  }
}

TEST(Tracer, DetachKeepsRecordedDataAndStopsObserving) {
  sim::Engine engine;
  Tracer tracer;
  tracer.bind(engine);
  engine.schedule_in(Seconds{1.0}, [] {});
  engine.run();
  tracer.detach();
  // Engine activity after detach is invisible.
  engine.schedule_in(Seconds{1.0}, [] {});
  engine.run();
  EXPECT_EQ(tracer.registry().snapshot().counters.at(
                "engine.events.dispatched"),
            1u);
}

// --- full-pipeline conservation (the tentpole invariant) ---

exp::ExperimentConfig small_config() {
  exp::ExperimentConfig config;
  config.spec.num_libraries = 2;
  config.spec.library.drives_per_library = 3;
  config.spec.library.tapes_per_library = 10;
  config.spec.library.tape_capacity = 40_GB;
  config.workload.num_objects = 800;
  config.workload.num_requests = 25;
  config.workload.min_objects_per_request = 10;
  config.workload.max_objects_per_request = 20;
  config.workload.object_groups = 16;
  config.workload.min_object_size = Bytes{100ULL * 1000 * 1000};
  config.workload.max_object_size = 1_GB;
  config.simulated_requests = 40;
  return config;
}

TEST(TracerConservation, DriveSpansMatchUtilizationReport) {
  const exp::ExperimentConfig config = small_config();
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);

  Tracer tracer;
  const exp::TracedSchemeRun traced =
      experiment.run_traced(*schemes.parallel_batch, tracer);

  ASSERT_EQ(traced.utilization.drives.size(), config.spec.total_drives());
  for (const sched::DriveUtilization& du : traced.utilization.drives) {
    const std::uint32_t lane = du.drive.value();
    const auto total = [&](Phase p) {
      return tracer.lane_phase_total(Track::kDrive, lane, p).count();
    };
    EXPECT_NEAR(total(Phase::kTransfer), du.transferring.count(), 1e-6)
        << "drive " << lane;
    EXPECT_NEAR(total(Phase::kLocate), du.locating.count(), 1e-6)
        << "drive " << lane;
    EXPECT_NEAR(total(Phase::kRewind), du.rewinding.count(), 1e-6)
        << "drive " << lane;
    EXPECT_NEAR(total(Phase::kLoad), du.loading.count(), 1e-6)
        << "drive " << lane;
    EXPECT_NEAR(total(Phase::kUnload), du.unloading.count(), 1e-6)
        << "drive " << lane;
  }
  for (const sched::RobotUtilization& ru : traced.utilization.robots) {
    EXPECT_NEAR(tracer
                    .lane_phase_total(Track::kRobot, ru.library.value(),
                                      Phase::kRobotMove)
                    .count(),
                ru.busy.count(), 1e-6)
        << "robot " << ru.library.value();
  }
}

TEST(TracerConservation, RequestSpansMatchOutcomes) {
  const exp::ExperimentConfig config = small_config();
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);

  Tracer tracer;
  const exp::TracedSchemeRun traced =
      experiment.run_traced(*schemes.object_probability, tracer);

  // One whole-request span per simulated request, total duration equal to
  // the summed response times the metrics aggregated.
  const auto totals = tracer.phase_totals(Track::kRequest);
  const auto it = totals.find(Phase::kRequest);
  ASSERT_NE(it, totals.end());
  EXPECT_EQ(it->second.spans, config.simulated_requests);
  const double mean_from_spans =
      it->second.total.count() / static_cast<double>(it->second.spans);
  EXPECT_NEAR(mean_from_spans,
              traced.run.metrics.mean_response().count(), 1e-6);

  // Drive-side robot-wait spans must sum to the per-request robot wait the
  // scheduler recorded into the registry (the spans skip zero-length
  // waits; those add nothing to either side).
  double span_wait = 0.0;
  for (std::uint32_t d = 0; d < config.spec.total_drives(); ++d) {
    span_wait +=
        tracer.lane_phase_total(Track::kDrive, d, Phase::kRobotWait).count();
  }
  const auto snap = tracer.registry().snapshot();
  EXPECT_NEAR(span_wait,
              snap.histograms.at("sched.request.robot_wait_s").sum, 1e-6);
}

TEST(TracerConservation, SpansAreCausalAndLanesConsistent) {
  const exp::ExperimentConfig config = small_config();
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);
  Tracer tracer;
  (void)experiment.run_traced(*schemes.parallel_batch, tracer);
  ASSERT_FALSE(tracer.spans().empty());
  for (const Span& s : tracer.spans()) {
    EXPECT_GE(s.end.count(), s.start.count());
    if (s.track == Track::kDrive) {
      EXPECT_LT(s.track_id, config.spec.total_drives());
    }
    if (s.track == Track::kRobot) {
      EXPECT_LT(s.track_id, config.spec.num_libraries);
    }
  }
}

TEST(Tracer, ConcurrentSimulatorEmitsOneSpanPerArrival) {
  const exp::ExperimentConfig config = small_config();
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);
  core::PlacementContext context{&experiment.workload(), &config.spec,
                                 &experiment.clusters()};
  const core::PlacementPlan plan = schemes.parallel_batch->place(context);

  Tracer tracer;
  sched::SimulatorConfig sim;
  sim.tracer = &tracer;
  std::vector<sched::SojournOutcome> outcomes;
  {
    sched::ConcurrentSimulator simulator(plan, sim);
    Rng rng{11};
    const workload::RequestSampler sampler(experiment.workload());
    const auto arrivals =
        sched::poisson_arrivals(sampler, 1.0 / 120.0, 30, rng);
    outcomes = simulator.run(arrivals);
  }  // simulator destroyed: tracer must have detached cleanly

  const auto totals = tracer.phase_totals(Track::kRequest);
  const auto it = totals.find(Phase::kRequest);
  ASSERT_NE(it, totals.end());
  EXPECT_EQ(it->second.spans, outcomes.size());
  const auto snap = tracer.registry().snapshot();
  EXPECT_EQ(snap.counters.at("sched.requests"), outcomes.size());
  EXPECT_GT(snap.histograms.at("sched.demand.queue_wait_s").count, 0u);
}

// --- export formats ---

TEST(TracerExport, JsonlEveryLineParsesAndStartsWithMeta) {
  const exp::ExperimentConfig config = small_config();
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);
  Tracer tracer;
  (void)experiment.run_traced(*schemes.parallel_batch, tracer);

  std::ostringstream os;
  tracer.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t n = 0;
  std::size_t spans = 0;
  while (std::getline(lines, line)) {
    const auto v = parse_json(line);
    ASSERT_TRUE(v.has_value()) << "line " << n << ": " << line;
    ASSERT_TRUE(v->is_object());
    if (n == 0) {
      EXPECT_EQ(v->string_or("type", ""), "meta");
      EXPECT_EQ(v->string_or("time_unit", ""), "s");
    }
    if (v->string_or("type", "") == "span") {
      ++spans;
      EXPECT_GE(v->number_or("end_s", -1.0), v->number_or("start_s", 0.0));
    }
    ++n;
  }
  EXPECT_EQ(spans, tracer.spans().size());
}

TEST(TracerExport, ChromeTraceIsValidJsonWithNonNegativeDurations) {
  const exp::ExperimentConfig config = small_config();
  const exp::Experiment experiment(config);
  const auto schemes = exp::make_standard_schemes(1);
  Tracer tracer;
  tracer.set_sample_cadence(Seconds{100.0});
  (void)experiment.run_traced(*schemes.parallel_batch, tracer);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array().empty());

  std::size_t complete = 0;
  std::size_t counters = 0;
  std::size_t metadata = 0;
  for (const JsonValue& e : events->array()) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.string_or("ph", "");
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.number_or("ts", -1.0), 0.0);
      EXPECT_GE(e.number_or("dur", -1.0), 0.0);
      EXPECT_GE(e.number_or("pid", 0.0), 1.0);
      EXPECT_LE(e.number_or("pid", 0.0), 10.0);
    } else if (ph == "C") {
      ++counters;
    } else if (ph == "M") {
      ++metadata;
    }
  }
  EXPECT_GT(complete, 0u);
  EXPECT_GT(counters, 0u);   // the sampler ran
  EXPECT_EQ(metadata, 10u);  // one process_name per track group
}

}  // namespace
}  // namespace tapesim::obs
