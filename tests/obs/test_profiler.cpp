// Engine self-profiling: hook plumbing, aggregate math, the bit-identical
// guarantee when attached, exports, and detach semantics.
#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace tapesim::obs {
namespace {

TEST(Profiler, CountsDispatchesAndRuns) {
  sim::Engine engine;
  Profiler profiler;
  profiler.attach(engine);

  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_in(Seconds{static_cast<double>(i)}, [&fired] { ++fired; });
  }
  engine.run();
  engine.schedule_in(Seconds{1.0}, [&fired] { ++fired; });
  engine.run();

  const ProfileReport report = profiler.report();
  EXPECT_EQ(fired, 11);
  EXPECT_EQ(report.dispatches, 11u);
  EXPECT_EQ(report.runs, 2u);
  EXPECT_GE(report.run_wall_s, report.dispatch_wall_s);
  EXPECT_GE(report.dispatch_wall_s, 0.0);
  EXPECT_DOUBLE_EQ(report.sim_advanced_s, 10.0);
  EXPECT_GT(report.events_per_wall_s(), 0.0);
}

TEST(Profiler, LabelsSplitDispatchStats) {
  sim::Engine engine;
  Profiler profiler;
  profiler.attach(engine);

  engine.schedule_in(Seconds{1.0}, [] {}, "alpha");
  engine.schedule_in(Seconds{2.0}, [] {}, "alpha");
  engine.schedule_in(Seconds{3.0}, [] {}, "beta");
  engine.schedule_in(Seconds{4.0}, [] {});
  engine.run();

  const ProfileReport report = profiler.report();
  ASSERT_EQ(report.by_label.count("alpha"), 1u);
  ASSERT_EQ(report.by_label.count("beta"), 1u);
  ASSERT_EQ(report.by_label.count(""), 1u);
  EXPECT_EQ(report.by_label.at("alpha").count, 2u);
  EXPECT_EQ(report.by_label.at("beta").count, 1u);
  EXPECT_EQ(report.by_label.at("").count, 1u);
  EXPECT_GE(report.by_label.at("alpha").max_wall_s,
            report.by_label.at("alpha").mean_wall_s());
}

TEST(Profiler, SampleStrideKeepsTotalsExactButSamplesDetail) {
  sim::Engine engine;
  Profiler profiler{4};
  profiler.attach(engine);

  for (int i = 0; i < 10; ++i) {
    engine.schedule_in(Seconds{static_cast<double>(i + 1)}, [] {}, "tick");
  }
  engine.run();

  const ProfileReport report = profiler.report();
  // Totals come from the run bracket, so sampling cannot lose events.
  EXPECT_EQ(report.dispatches, 10u);
  EXPECT_EQ(report.sample_stride, 4u);
  // The first dispatch after attach is sampled, then every 4th:
  // dispatches 1, 5, and 9.
  EXPECT_EQ(report.sampled_dispatches, 3u);
  ASSERT_EQ(report.by_label.count("tick"), 1u);
  EXPECT_EQ(report.by_label.at("tick").count, 3u);
  // The estimate scales the sampled wall time back to the full run.
  EXPECT_GE(report.estimated_dispatch_wall_s(), report.dispatch_wall_s);
}

TEST(Profiler, ZeroStrideIsClampedToExact) {
  sim::Engine engine;
  Profiler profiler{0};
  profiler.attach(engine);
  for (int i = 0; i < 3; ++i) {
    engine.schedule_in(Seconds{static_cast<double>(i + 1)}, [] {});
  }
  engine.run();
  const ProfileReport report = profiler.report();
  EXPECT_EQ(report.sample_stride, 1u);
  EXPECT_EQ(report.sampled_dispatches, 3u);
  EXPECT_EQ(report.dispatches, 3u);
}

TEST(Profiler, QueueDepthHighWaterTracksBacklog) {
  sim::Engine engine;
  Profiler profiler;
  profiler.attach(engine);

  // 5 events pending; after the first dispatch the queue holds 4.
  for (int i = 0; i < 5; ++i) {
    engine.schedule_in(Seconds{static_cast<double>(i + 1)}, [] {});
  }
  engine.run();

  const ProfileReport report = profiler.report();
  EXPECT_EQ(report.queue_high_water, 4u);
  EXPECT_GT(report.queue_depth_mean, 0.0);
  EXPECT_LE(report.queue_depth_mean,
            static_cast<double>(report.queue_high_water));
}

// The core guarantee: the profiler observes wall clocks only, so a
// profiled run produces bit-identical simulated results. (The end-to-end
// version over a full simulator lives in tests/sim/test_engine.cpp.)
TEST(Profiler, AttachedRunIsBitIdenticalInSimTime) {
  const auto run_scenario = [](Profiler* profiler) {
    sim::Engine engine;
    if (profiler != nullptr) profiler->attach(engine);
    std::vector<double> fire_times;
    for (int i = 0; i < 50; ++i) {
      engine.schedule_in(Seconds{static_cast<double>((i * 37) % 11)},
                         [&fire_times, &engine] {
                           fire_times.push_back(engine.now().count());
                         });
    }
    engine.run();
    return fire_times;
  };

  const std::vector<double> plain = run_scenario(nullptr);
  Profiler profiler;
  const std::vector<double> profiled = run_scenario(&profiler);
  EXPECT_EQ(plain, profiled);  // bitwise: same order, same times
  EXPECT_EQ(profiler.report().dispatches, 50u);
}

TEST(Profiler, DetachStopsRecordingButKeepsData) {
  sim::Engine engine;
  Profiler profiler;
  profiler.attach(engine);
  engine.schedule_in(Seconds{1.0}, [] {});
  engine.run();
  profiler.detach();
  engine.schedule_in(Seconds{1.0}, [] {});
  engine.run();

  const ProfileReport report = profiler.report();
  EXPECT_EQ(report.dispatches, 1u);
  EXPECT_EQ(report.runs, 1u);
}

TEST(Profiler, ResetZeroesAggregatesAndStaysAttached) {
  sim::Engine engine;
  Profiler profiler;
  profiler.attach(engine);
  engine.schedule_in(Seconds{1.0}, [] {}, "x");
  engine.run();
  profiler.reset();
  EXPECT_EQ(profiler.report().dispatches, 0u);
  EXPECT_TRUE(profiler.report().by_label.empty());

  engine.schedule_in(Seconds{1.0}, [] {});
  engine.run();
  EXPECT_EQ(profiler.report().dispatches, 1u);
}

TEST(Profiler, ExportToRegistryPublishesScalars) {
  sim::Engine engine;
  Profiler profiler;
  profiler.attach(engine);
  for (int i = 0; i < 3; ++i) {
    engine.schedule_in(Seconds{static_cast<double>(i)}, [] {});
  }
  engine.run();

  Registry registry;
  profiler.export_to(registry);
  EXPECT_EQ(registry.counter("profiler.dispatches").value(), 3u);
  EXPECT_EQ(registry.counter("profiler.runs").value(), 1u);
  EXPECT_GE(registry.gauge("profiler.run_wall_s").value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.gauge("profiler.sim_advanced_s").value(), 2.0);
  EXPECT_EQ(registry.gauge("profiler.queue_depth.high_water").value(), 2.0);
}

TEST(Profiler, WriteJsonIsParseableAndCarriesLabels) {
  sim::Engine engine;
  Profiler profiler;
  profiler.attach(engine);
  engine.schedule_in(Seconds{1.0}, [] {}, "mount \"a\"");
  engine.schedule_in(Seconds{2.0}, [] {});
  engine.run();

  std::ostringstream os;
  profiler.write_json(os);
  const auto value = parse_json(os.str());
  ASSERT_TRUE(value.has_value());
  ASSERT_TRUE(value->is_object());
  EXPECT_DOUBLE_EQ(value->number_or("dispatches", -1.0), 2.0);
  const JsonValue* by_label = value->find("by_label");
  ASSERT_NE(by_label, nullptr);
  ASSERT_TRUE(by_label->is_object());
  EXPECT_NE(by_label->find("mount \"a\""), nullptr);
  EXPECT_NE(by_label->find("(unlabeled)"), nullptr);
}

TEST(Profiler, ReattachMovesTheHook) {
  sim::Engine first;
  sim::Engine second;
  Profiler profiler;
  profiler.attach(first);
  profiler.attach(second);  // re-attach detaches from `first`

  first.schedule_in(Seconds{1.0}, [] {});
  first.run();
  EXPECT_EQ(profiler.report().dispatches, 0u);

  second.schedule_in(Seconds{1.0}, [] {});
  second.run();
  EXPECT_EQ(profiler.report().dispatches, 1u);
}

}  // namespace
}  // namespace tapesim::obs
