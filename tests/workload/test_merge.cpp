#include "workload/merge.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace tapesim::workload {
namespace {

Workload make(std::uint32_t objects, std::uint32_t requests,
              std::uint64_t seed) {
  WorkloadConfig config;
  config.num_objects = objects;
  config.num_requests = requests;
  config.min_objects_per_request = 5;
  config.max_objects_per_request = 10;
  config.object_groups = 8;
  Rng rng{seed};
  return generate_workload(config, rng);
}

TEST(Merge, CountsAndIdsShift) {
  const Workload base = make(100, 10, 1);
  const Workload ext = make(50, 6, 2);
  const Workload merged = merge_workloads(base, ext, 0.5);
  EXPECT_EQ(merged.object_count(), 150u);
  EXPECT_EQ(merged.request_count(), 16u);
  merged.validate();
  // Old object sizes preserved at the same ids.
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(merged.object_size(ObjectId{i}), base.object_size(ObjectId{i}));
  }
  // Extension objects shifted by 100.
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(merged.object_size(ObjectId{100 + i}),
              ext.object_size(ObjectId{i}));
  }
}

TEST(Merge, RequestsReferenceShiftedObjects) {
  const Workload base = make(100, 10, 1);
  const Workload ext = make(50, 6, 2);
  const Workload merged = merge_workloads(base, ext, 0.25);
  const Request& shifted = merged.requests()[10];  // first extension request
  const Request& orig = ext.requests()[0];
  ASSERT_EQ(shifted.objects.size(), orig.objects.size());
  for (std::size_t i = 0; i < orig.objects.size(); ++i) {
    EXPECT_EQ(shifted.objects[i].value(), orig.objects[i].value() + 100);
  }
}

TEST(Merge, ProbabilityMassSplitsByWeight) {
  const Workload base = make(100, 10, 1);
  const Workload ext = make(50, 6, 2);
  const Workload merged = merge_workloads(base, ext, 0.3);
  double base_mass = 0.0;
  double ext_mass = 0.0;
  for (std::uint32_t r = 0; r < merged.request_count(); ++r) {
    (r < 10 ? base_mass : ext_mass) += merged.requests()[r].probability;
  }
  EXPECT_NEAR(base_mass, 0.7, 1e-9);
  EXPECT_NEAR(ext_mass, 0.3, 1e-9);
}

TEST(Merge, RejectsDegenerateWeights) {
  const Workload base = make(20, 4, 1);
  const Workload ext = make(20, 4, 2);
  EXPECT_THROW(merge_workloads(base, ext, 0.0), std::invalid_argument);
  EXPECT_THROW(merge_workloads(base, ext, 1.0), std::invalid_argument);
  EXPECT_THROW(merge_workloads(base, ext, -0.5), std::invalid_argument);
}

TEST(Merge, ChainsAcrossGenerations) {
  Workload merged = make(50, 5, 1);
  for (std::uint64_t gen = 2; gen <= 4; ++gen) {
    const Workload next = make(50, 5, gen);
    merged = merge_workloads(merged, next, 1.0 / static_cast<double>(gen));
  }
  EXPECT_EQ(merged.object_count(), 200u);
  EXPECT_EQ(merged.request_count(), 20u);
  merged.validate();
  // Equal weighting: each generation ends with ~1/4 of the mass.
  double first_gen = 0.0;
  for (std::uint32_t r = 0; r < 5; ++r) {
    first_gen += merged.requests()[r].probability;
  }
  EXPECT_NEAR(first_gen, 0.25, 1e-9);
}

}  // namespace
}  // namespace tapesim::workload
