#include "workload/storm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/generator.hpp"

namespace tapesim::workload {
namespace {

Workload small_workload(std::uint64_t seed) {
  WorkloadConfig config;
  config.num_objects = 500;
  config.num_requests = 40;
  config.min_objects_per_request = 5;
  config.max_objects_per_request = 10;
  config.object_groups = 20;
  Rng rng{seed};
  return generate_workload(config, rng);
}

TEST(Storm, ConfigValidation) {
  StormConfig c;
  EXPECT_NO_THROW(c.validate());

  c.base_rate = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = StormConfig{};
  c.burst_rate = c.base_rate / 2.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = StormConfig{};
  c.mean_burst_duration = Seconds{0.0};
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = StormConfig{};
  c.batch_fraction = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Storm, MeanRateIsStationaryAverage) {
  StormConfig c;
  c.base_rate = 0.01;
  c.burst_rate = 0.1;
  c.mean_calm_duration = Seconds{900.0};
  c.mean_burst_duration = Seconds{100.0};
  // pi_calm = 0.9, pi_burst = 0.1 -> 0.9*0.01 + 0.1*0.1 = 0.019.
  EXPECT_NEAR(c.mean_rate(), 0.019, 1e-12);
}

TEST(Storm, ArrivalsSortedAndDeterministic) {
  const Workload wl = small_workload(7);
  const RequestSampler sampler{wl};
  StormConfig config;
  Rng a{42};
  Rng b{42};
  const auto first = storm_arrivals(sampler, config, 500, a);
  const auto second = storm_arrivals(sampler, config, 500, b);
  ASSERT_EQ(first.size(), 500u);
  EXPECT_TRUE(std::is_sorted(
      first.begin(), first.end(),
      [](const TimedRequest& x, const TimedRequest& y) {
        return x.time < y.time;
      }));
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].time.count(), second[i].time.count());
    EXPECT_EQ(first[i].request, second[i].request);
    EXPECT_EQ(first[i].priority, second[i].priority);
  }
}

TEST(Storm, LongRunRateMatchesStationaryMean) {
  const Workload wl = small_workload(8);
  const RequestSampler sampler{wl};
  StormConfig config;
  config.base_rate = 0.02;
  config.burst_rate = 0.5;
  config.mean_calm_duration = Seconds{2000.0};
  config.mean_burst_duration = Seconds{500.0};
  Rng rng{11};
  const auto arrivals = storm_arrivals(sampler, config, 100'000, rng);
  const double measured =
      static_cast<double>(arrivals.size()) / arrivals.back().time.count();
  // 100k arrivals span ~350 state cycles; the empirical rate should land
  // within ~15% of the stationary mean (per-cycle counts are very noisy,
  // and count-based stopping is biased toward ending mid-burst).
  EXPECT_NEAR(measured, config.mean_rate(), 0.15 * config.mean_rate());
}

TEST(Storm, BurstsProduceHeavierTailThanPoisson) {
  const Workload wl = small_workload(9);
  const RequestSampler sampler{wl};
  StormConfig config;
  config.base_rate = 0.01;
  config.burst_rate = 0.5;
  config.mean_calm_duration = Seconds{5000.0};
  config.mean_burst_duration = Seconds{500.0};
  Rng storm_rng{3};
  const auto storm = storm_arrivals(sampler, config, 10'000, storm_rng);
  Rng steady_rng{3};
  const auto steady = steady_arrivals(sampler, config.mean_rate(), 0.5,
                                      10'000, steady_rng);
  // Index of dispersion of counts in fixed windows: ~1 for Poisson,
  // substantially larger for a bursty MMPP at the same mean rate.
  const auto dispersion = [](const std::vector<TimedRequest>& arrivals) {
    const double window = 1000.0;
    std::vector<double> counts;
    std::size_t i = 0;
    for (double t = window; t <= arrivals.back().time.count(); t += window) {
      double n = 0;
      while (i < arrivals.size() && arrivals[i].time.count() <= t) {
        ++n;
        ++i;
      }
      counts.push_back(n);
    }
    double mean = 0;
    for (const double n : counts) mean += n;
    mean /= static_cast<double>(counts.size());
    double var = 0;
    for (const double n : counts) var += (n - mean) * (n - mean);
    var /= static_cast<double>(counts.size());
    return var / mean;
  };
  EXPECT_GT(dispersion(storm), 3.0 * dispersion(steady));
}

TEST(Storm, BatchFractionRespected) {
  const Workload wl = small_workload(10);
  const RequestSampler sampler{wl};
  StormConfig config;
  config.batch_fraction = 0.25;
  Rng rng{5};
  const auto arrivals = storm_arrivals(sampler, config, 8000, rng);
  double batch = 0;
  for (const TimedRequest& a : arrivals) {
    if (a.priority == Priority::kBatch) ++batch;
  }
  EXPECT_NEAR(batch / static_cast<double>(arrivals.size()), 0.25, 0.02);

  config.batch_fraction = 0.0;
  Rng rng2{6};
  for (const TimedRequest& a : storm_arrivals(sampler, config, 100, rng2)) {
    EXPECT_EQ(a.priority, Priority::kForeground);
  }
}

}  // namespace
}  // namespace tapesim::workload
