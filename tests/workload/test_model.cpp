#include "workload/model.hpp"

#include <gtest/gtest.h>

namespace tapesim::workload {
namespace {

Workload tiny_workload() {
  std::vector<ObjectInfo> objects{
      {ObjectId{0}, 10_GB}, {ObjectId{1}, 20_GB}, {ObjectId{2}, 5_GB}};
  std::vector<Request> requests;
  requests.push_back(Request{RequestId{0}, 0.5, {ObjectId{0}, ObjectId{1}}});
  requests.push_back(Request{RequestId{1}, 0.3, {ObjectId{1}, ObjectId{2}}});
  requests.push_back(Request{RequestId{2}, 0.2, {ObjectId{2}}});
  return Workload{std::move(objects), std::move(requests)};
}

TEST(WorkloadModel, ObjectProbabilityIsSumOverContainingRequests) {
  const Workload wl = tiny_workload();
  EXPECT_DOUBLE_EQ(wl.object_probability(ObjectId{0}), 0.5);
  EXPECT_DOUBLE_EQ(wl.object_probability(ObjectId{1}), 0.8);
  EXPECT_DOUBLE_EQ(wl.object_probability(ObjectId{2}), 0.5);
}

TEST(WorkloadModel, DensityAndLoad) {
  const Workload wl = tiny_workload();
  EXPECT_DOUBLE_EQ(wl.probability_density(ObjectId{0}),
                   0.5 / (10.0e9));
  EXPECT_DOUBLE_EQ(wl.object_load(ObjectId{1}), 0.8 * 20.0e9);
}

TEST(WorkloadModel, RequestBytes) {
  const Workload wl = tiny_workload();
  EXPECT_EQ(wl.request_bytes(RequestId{0}), 30_GB);
  EXPECT_EQ(wl.request_bytes(RequestId{1}), 25_GB);
  EXPECT_EQ(wl.request_bytes(RequestId{2}), 5_GB);
}

TEST(WorkloadModel, MeanRequestBytesIsProbabilityWeighted) {
  const Workload wl = tiny_workload();
  const double expected = 0.5 * 30e9 + 0.3 * 25e9 + 0.2 * 5e9;
  EXPECT_NEAR(wl.mean_request_bytes().as_double(), expected, 1.0);
}

TEST(WorkloadModel, TotalBytes) {
  const Workload wl = tiny_workload();
  EXPECT_EQ(wl.total_object_bytes(), 35_GB);
}

TEST(WorkloadModel, ValidateAcceptsConsistentWorkload) {
  EXPECT_NO_FATAL_FAILURE(tiny_workload().validate());
}

TEST(WorkloadModelDeath, ValidateRejectsDuplicateObjectInRequest) {
  std::vector<ObjectInfo> objects{{ObjectId{0}, 1_GB}};
  std::vector<Request> requests{
      Request{RequestId{0}, 1.0, {ObjectId{0}, ObjectId{0}}}};
  const Workload wl{std::move(objects), std::move(requests)};
  EXPECT_DEATH(wl.validate(), "twice");
}

TEST(WorkloadModelDeath, ValidateRejectsUnnormalizedProbabilities) {
  std::vector<ObjectInfo> objects{{ObjectId{0}, 1_GB}};
  std::vector<Request> requests{Request{RequestId{0}, 0.5, {ObjectId{0}}}};
  const Workload wl{std::move(objects), std::move(requests)};
  EXPECT_DEATH(wl.validate(), "sum to 1");
}

TEST(WorkloadModelDeath, ValidateRejectsEmptyRequest) {
  std::vector<ObjectInfo> objects{{ObjectId{0}, 1_GB}};
  std::vector<Request> requests{Request{RequestId{0}, 1.0, {}}};
  const Workload wl{std::move(objects), std::move(requests)};
  EXPECT_DEATH(wl.validate(), ">= 1 object");
}

}  // namespace
}  // namespace tapesim::workload
