#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>

namespace tapesim::workload {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig config;
  config.num_objects = 2000;
  config.num_requests = 50;
  config.min_objects_per_request = 20;
  config.max_objects_per_request = 30;
  config.object_groups = 40;
  return config;
}

TEST(Generator, ConfigValidation) {
  WorkloadConfig c = small_config();
  EXPECT_NO_THROW(c.validate());

  c.num_objects = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config();
  c.max_objects_per_request = c.num_objects + 1;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config();
  c.min_objects_per_request = 40;  // > max (30)
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config();
  c.min_object_size = 2_GB;
  c.max_object_size = 1_GB;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config();
  c.request_locality = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = small_config();
  c.zipf_alpha = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Generator, ProducesRequestedCounts) {
  Rng rng{1};
  const Workload wl = generate_workload(small_config(), rng);
  EXPECT_EQ(wl.object_count(), 2000u);
  EXPECT_EQ(wl.request_count(), 50u);
  wl.validate();
}

TEST(Generator, ObjectSizesWithinConfiguredRange) {
  Rng rng{2};
  const WorkloadConfig config = small_config();
  const Workload wl = generate_workload(config, rng);
  for (const ObjectInfo& o : wl.objects()) {
    EXPECT_GE(o.size, config.min_object_size);
    EXPECT_LE(o.size, config.max_object_size);
  }
}

TEST(Generator, RequestSizesWithinConfiguredRange) {
  Rng rng{3};
  const WorkloadConfig config = small_config();
  const Workload wl = generate_workload(config, rng);
  for (const Request& r : wl.requests()) {
    EXPECT_GE(r.objects.size(), config.min_objects_per_request);
    EXPECT_LE(r.objects.size(), config.max_objects_per_request);
  }
}

TEST(Generator, RequestObjectsAreDistinct) {
  Rng rng{4};
  const Workload wl = generate_workload(small_config(), rng);
  for (const Request& r : wl.requests()) {
    std::set<std::uint32_t> unique;
    for (const ObjectId o : r.objects) unique.insert(o.value());
    EXPECT_EQ(unique.size(), r.objects.size());
  }
}

TEST(Generator, PopularityFollowsZipfOrdering) {
  Rng rng{5};
  WorkloadConfig config = small_config();
  config.zipf_alpha = 0.7;
  const Workload wl = generate_workload(config, rng);
  double sum = 0.0;
  for (std::size_t r = 0; r < wl.request_count(); ++r) {
    const double p = wl.requests()[r].probability;
    sum += p;
    if (r > 0) EXPECT_LE(p, wl.requests()[r - 1].probability);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Exact Zipf ratio: p[0] / p[9] == 10^0.7.
  EXPECT_NEAR(wl.requests()[0].probability / wl.requests()[9].probability,
              std::pow(10.0, 0.7), 1e-9);
}

TEST(Generator, DeterministicGivenSeed) {
  Rng rng1{42};
  Rng rng2{42};
  const Workload a = generate_workload(small_config(), rng1);
  const Workload b = generate_workload(small_config(), rng2);
  ASSERT_EQ(a.object_count(), b.object_count());
  for (std::uint32_t i = 0; i < a.object_count(); ++i) {
    EXPECT_EQ(a.objects()[i].size, b.objects()[i].size);
  }
  for (std::uint32_t r = 0; r < a.request_count(); ++r) {
    EXPECT_EQ(a.requests()[r].objects, b.requests()[r].objects);
  }
}

TEST(Generator, DifferentSeedsProduceDifferentWorkloads) {
  Rng rng1{1};
  Rng rng2{2};
  const Workload a = generate_workload(small_config(), rng1);
  const Workload b = generate_workload(small_config(), rng2);
  bool any_difference = false;
  for (std::uint32_t i = 0; i < a.object_count() && !any_difference; ++i) {
    any_difference = a.objects()[i].size != b.objects()[i].size;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, LocalityConcentratesRequestsOnGroups) {
  // With locality 1.0 and group size >= request size, any two requests
  // either share a home group (huge overlap) or share nothing.
  Rng rng{6};
  WorkloadConfig config = small_config();
  config.request_locality = 1.0;
  const Workload wl = generate_workload(config, rng);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      const auto& a = wl.requests()[i].objects;
      const auto& b = wl.requests()[j].objects;
      std::set<std::uint32_t> sa;
      for (const ObjectId o : a) sa.insert(o.value());
      std::size_t shared = 0;
      for (const ObjectId o : b) shared += sa.count(o.value());
      const double frac =
          static_cast<double>(shared) / static_cast<double>(b.size());
      EXPECT_TRUE(frac == 0.0 || frac > 0.3)
          << "requests " << i << "," << j << " share fraction " << frac;
    }
  }
}

TEST(Generator, ZeroLocalitySpreadsUniformly) {
  Rng rng{7};
  WorkloadConfig config = small_config();
  config.request_locality = 0.0;
  const Workload wl = generate_workload(config, rng);
  // Objects drawn uniformly: the most popular object should appear in only
  // a few requests.
  std::unordered_map<std::uint32_t, int> appearances;
  for (const Request& r : wl.requests()) {
    for (const ObjectId o : r.objects) ++appearances[o.value()];
  }
  int max_appearances = 0;
  for (const auto& [_, count] : appearances) {
    max_appearances = std::max(max_appearances, count);
  }
  EXPECT_LE(max_appearances, 6);
}

TEST(Generator, AnalyticExpectationsRoughlyMatchEmpirical) {
  Rng rng{8};
  WorkloadConfig config = WorkloadConfig::paper_default();
  config.num_objects = 20000;
  const Workload wl = generate_workload(config, rng);
  double mean_size = 0.0;
  for (const ObjectInfo& o : wl.objects()) mean_size += o.size.as_double();
  mean_size /= wl.object_count();
  EXPECT_NEAR(mean_size, config.expected_object_size().as_double(),
              0.1 * config.expected_object_size().as_double());
}

TEST(Generator, WithAverageRequestSizeHitsTarget) {
  const WorkloadConfig base = WorkloadConfig::paper_default();
  const Bytes target{160ULL * 1000 * 1000 * 1000};
  const WorkloadConfig scaled = base.with_average_request_size(target);
  EXPECT_NEAR(scaled.expected_request_size().as_double(), target.as_double(),
              0.01 * target.as_double());
  // The range ratio is preserved.
  const double base_ratio =
      base.max_object_size.as_double() / base.min_object_size.as_double();
  const double scaled_ratio = scaled.max_object_size.as_double() /
                              scaled.min_object_size.as_double();
  EXPECT_NEAR(scaled_ratio, base_ratio, 0.01 * base_ratio);
}

TEST(Generator, PaperDefaultAveragesNear213GB) {
  // Figure 6's text quotes an average request size around 213 GB.
  const WorkloadConfig config = WorkloadConfig::paper_default();
  const double expected_gb =
      config.expected_request_size().as_double() / 1e9;
  EXPECT_GT(expected_gb, 180.0);
  EXPECT_LT(expected_gb, 240.0);
}

TEST(Sampler, DrawsByPopularity) {
  Rng rng{9};
  WorkloadConfig config = small_config();
  config.zipf_alpha = 1.0;
  const Workload wl = generate_workload(config, rng);
  const RequestSampler sampler(wl);
  Rng sample_rng{10};
  std::vector<int> counts(wl.request_count(), 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[sampler.sample(sample_rng).index()];
  }
  for (std::size_t r = 0; r < wl.request_count(); ++r) {
    const double expected = wl.requests()[r].probability * kDraws;
    EXPECT_NEAR(counts[r], expected, 5.0 * std::sqrt(expected) + 5.0);
  }
}

TEST(Generator, SingleGroupDegeneratesGracefully) {
  Rng rng{11};
  WorkloadConfig config = small_config();
  config.object_groups = 1;
  const Workload wl = generate_workload(config, rng);
  wl.validate();
  EXPECT_EQ(wl.object_count(), 2000u);
}

TEST(Generator, EqualSizeObjects) {
  Rng rng{12};
  WorkloadConfig config = small_config();
  config.min_object_size = config.max_object_size = 2_GB;
  const Workload wl = generate_workload(config, rng);
  for (const ObjectInfo& o : wl.objects()) EXPECT_EQ(o.size, 2_GB);
  EXPECT_EQ(config.expected_object_size(), 2_GB);
}

TEST(Generator, FixedObjectsPerRequest) {
  Rng rng{13};
  WorkloadConfig config = small_config();
  config.min_objects_per_request = config.max_objects_per_request = 25;
  const Workload wl = generate_workload(config, rng);
  for (const Request& r : wl.requests()) EXPECT_EQ(r.objects.size(), 25u);
  EXPECT_DOUBLE_EQ(config.expected_objects_per_request(), 25.0);
}

}  // namespace
}  // namespace tapesim::workload
