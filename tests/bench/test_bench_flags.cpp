// Parser tests for the flags shared by the bench binaries. The benches are
// sweep drivers whose exit status gates CI, so a typo'd invocation must die
// with one clear line rather than run with silently-defaulted inputs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "figure_common.hpp"

namespace tapesim::benchfig {
namespace {

/// Runs BenchFlags::parse over a C-style argv built from `args` (argv[0]
/// is the program name, as in a real invocation).
BenchFlags parse(std::vector<std::string> args) {
  args.insert(args.begin(), "bench_under_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return BenchFlags::parse(static_cast<int>(argv.size()), argv.data(),
                           /*default_seed=*/42, "default.csv");
}

TEST(BenchFlags, DefaultsWhenNoArguments) {
  const BenchFlags flags = parse({});
  EXPECT_TRUE(flags.status.ok());
  EXPECT_FALSE(flags.help);
  EXPECT_FALSE(flags.fast);
  EXPECT_EQ(flags.seed, 42u);
  EXPECT_EQ(flags.out, "default.csv");
  EXPECT_FALSE(flags.trace.enabled());
}

TEST(BenchFlags, ParsesBothFlagValueForms) {
  const BenchFlags eq = parse({"--seed=7", "--out=sweep.csv"});
  EXPECT_TRUE(eq.status.ok());
  EXPECT_EQ(eq.seed, 7u);
  EXPECT_EQ(eq.out, "sweep.csv");

  const BenchFlags spaced = parse({"--seed", "7", "--out", "sweep.csv"});
  EXPECT_TRUE(spaced.status.ok());
  EXPECT_EQ(spaced.seed, 7u);
  EXPECT_EQ(spaced.out, "sweep.csv");
}

TEST(BenchFlags, FastAndTraceFlags) {
  const BenchFlags flags =
      parse({"--fast", "--trace-out=t.json", "--sample-every=5"});
  EXPECT_TRUE(flags.status.ok());
  EXPECT_TRUE(flags.fast);
  EXPECT_TRUE(flags.trace.enabled());
  EXPECT_EQ(flags.trace.chrome_out, "t.json");
  EXPECT_DOUBLE_EQ(flags.trace.sample_every, 5.0);
}

TEST(BenchFlags, PerfOutParsesBothFormsAndDefaultsEmpty) {
  EXPECT_TRUE(parse({}).perf_out.empty());

  const BenchFlags eq = parse({"--perf-out=BENCH_x.json"});
  EXPECT_TRUE(eq.status.ok());
  EXPECT_EQ(eq.perf_out, "BENCH_x.json");

  const BenchFlags spaced = parse({"--perf-out", "BENCH_x.json", "--fast"});
  EXPECT_TRUE(spaced.status.ok());
  EXPECT_EQ(spaced.perf_out, "BENCH_x.json");
  EXPECT_TRUE(spaced.fast);

  EXPECT_FALSE(parse({"--perf-out=a.json", "--perf-out", "b.json"})
                   .status.ok());
}

TEST(BenchFlags, TimeseriesOutEnablesTracing) {
  const BenchFlags flags = parse({"--timeseries-out=ts.csv"});
  EXPECT_TRUE(flags.status.ok());
  EXPECT_TRUE(flags.trace.enabled());
  EXPECT_EQ(flags.trace.timeseries_out, "ts.csv");
}

TEST(BenchFlags, RejectsMalformedValues) {
  // The whole value must parse: "7x" is an error, not 7.
  EXPECT_FALSE(parse({"--seed=7x"}).status.ok());
  EXPECT_FALSE(parse({"--sample-every=soon"}).status.ok());
}

TEST(BenchFlags, RejectsUnknownFlags) {
  const BenchFlags flags = parse({"--bogus=1"});
  ASSERT_FALSE(flags.status.ok());
  EXPECT_NE(flags.status.message().find("--bogus"), std::string::npos);
}

TEST(BenchFlags, RejectsDuplicateFlags) {
  const BenchFlags twice = parse({"--seed=1", "--seed=2"});
  ASSERT_FALSE(twice.status.ok());
  EXPECT_NE(twice.status.message().find("duplicate"), std::string::npos);
  EXPECT_NE(twice.status.message().find("--seed"), std::string::npos);

  // Mixed "--flag=value" / "--flag value" forms are the same flag.
  EXPECT_FALSE(parse({"--out=a.csv", "--out", "b.csv"}).status.ok());
  EXPECT_FALSE(parse({"--trace-out=a", "--trace-out=b"}).status.ok());
  EXPECT_FALSE(parse({"--fast", "--fast"}).status.ok());
}

TEST(BenchFlags, HelpShortCircuits) {
  for (const char* spelling : {"--help", "-h"}) {
    const BenchFlags flags = parse({spelling});
    EXPECT_TRUE(flags.help);
    EXPECT_TRUE(flags.status.ok());
  }
  // --help wins even when later arguments would be errors: the user asked
  // for usage, not for a sweep.
  const BenchFlags mixed = parse({"--help", "--bogus"});
  EXPECT_TRUE(mixed.help);
  EXPECT_TRUE(mixed.status.ok());
}

TEST(BenchFlags, UsageMentionsEveryFlag) {
  const std::string text = BenchFlags::usage("/path/to/bench_overload_storm");
  EXPECT_NE(text.find("bench_overload_storm"), std::string::npos);
  for (const char* flag : {"--seed", "--out", "--perf-out", "--fast",
                           "--trace-out", "--jsonl-out", "--metrics-out",
                           "--timeseries-out", "--sample-every", "--help"}) {
    EXPECT_NE(text.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
}  // namespace tapesim::benchfig
