# Empty dependencies file for tapesim_workload.
# This may be replaced when dependencies are built.
