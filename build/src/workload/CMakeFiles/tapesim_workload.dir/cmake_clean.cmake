file(REMOVE_RECURSE
  "CMakeFiles/tapesim_workload.dir/generator.cpp.o"
  "CMakeFiles/tapesim_workload.dir/generator.cpp.o.d"
  "CMakeFiles/tapesim_workload.dir/merge.cpp.o"
  "CMakeFiles/tapesim_workload.dir/merge.cpp.o.d"
  "CMakeFiles/tapesim_workload.dir/model.cpp.o"
  "CMakeFiles/tapesim_workload.dir/model.cpp.o.d"
  "libtapesim_workload.a"
  "libtapesim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
