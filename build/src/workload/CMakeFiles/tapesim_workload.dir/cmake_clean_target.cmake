file(REMOVE_RECURSE
  "libtapesim_workload.a"
)
