file(REMOVE_RECURSE
  "CMakeFiles/tapesim_trace.dir/outcome_log.cpp.o"
  "CMakeFiles/tapesim_trace.dir/outcome_log.cpp.o.d"
  "CMakeFiles/tapesim_trace.dir/plan_io.cpp.o"
  "CMakeFiles/tapesim_trace.dir/plan_io.cpp.o.d"
  "CMakeFiles/tapesim_trace.dir/workload_io.cpp.o"
  "CMakeFiles/tapesim_trace.dir/workload_io.cpp.o.d"
  "libtapesim_trace.a"
  "libtapesim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
