file(REMOVE_RECURSE
  "libtapesim_trace.a"
)
