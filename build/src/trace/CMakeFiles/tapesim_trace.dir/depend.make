# Empty dependencies file for tapesim_trace.
# This may be replaced when dependencies are built.
