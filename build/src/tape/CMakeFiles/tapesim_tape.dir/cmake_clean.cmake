file(REMOVE_RECURSE
  "CMakeFiles/tapesim_tape.dir/drive.cpp.o"
  "CMakeFiles/tapesim_tape.dir/drive.cpp.o.d"
  "CMakeFiles/tapesim_tape.dir/library.cpp.o"
  "CMakeFiles/tapesim_tape.dir/library.cpp.o.d"
  "CMakeFiles/tapesim_tape.dir/linear_motion.cpp.o"
  "CMakeFiles/tapesim_tape.dir/linear_motion.cpp.o.d"
  "CMakeFiles/tapesim_tape.dir/specs.cpp.o"
  "CMakeFiles/tapesim_tape.dir/specs.cpp.o.d"
  "CMakeFiles/tapesim_tape.dir/system.cpp.o"
  "CMakeFiles/tapesim_tape.dir/system.cpp.o.d"
  "libtapesim_tape.a"
  "libtapesim_tape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_tape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
