file(REMOVE_RECURSE
  "libtapesim_tape.a"
)
