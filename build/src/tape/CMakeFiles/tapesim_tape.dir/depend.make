# Empty dependencies file for tapesim_tape.
# This may be replaced when dependencies are built.
