
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tape/drive.cpp" "src/tape/CMakeFiles/tapesim_tape.dir/drive.cpp.o" "gcc" "src/tape/CMakeFiles/tapesim_tape.dir/drive.cpp.o.d"
  "/root/repo/src/tape/library.cpp" "src/tape/CMakeFiles/tapesim_tape.dir/library.cpp.o" "gcc" "src/tape/CMakeFiles/tapesim_tape.dir/library.cpp.o.d"
  "/root/repo/src/tape/linear_motion.cpp" "src/tape/CMakeFiles/tapesim_tape.dir/linear_motion.cpp.o" "gcc" "src/tape/CMakeFiles/tapesim_tape.dir/linear_motion.cpp.o.d"
  "/root/repo/src/tape/specs.cpp" "src/tape/CMakeFiles/tapesim_tape.dir/specs.cpp.o" "gcc" "src/tape/CMakeFiles/tapesim_tape.dir/specs.cpp.o.d"
  "/root/repo/src/tape/system.cpp" "src/tape/CMakeFiles/tapesim_tape.dir/system.cpp.o" "gcc" "src/tape/CMakeFiles/tapesim_tape.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tapesim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tapesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
