# Empty compiler generated dependencies file for tapesim_metrics.
# This may be replaced when dependencies are built.
