file(REMOVE_RECURSE
  "CMakeFiles/tapesim_metrics.dir/queueing.cpp.o"
  "CMakeFiles/tapesim_metrics.dir/queueing.cpp.o.d"
  "CMakeFiles/tapesim_metrics.dir/request_metrics.cpp.o"
  "CMakeFiles/tapesim_metrics.dir/request_metrics.cpp.o.d"
  "libtapesim_metrics.a"
  "libtapesim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
