file(REMOVE_RECURSE
  "libtapesim_metrics.a"
)
