file(REMOVE_RECURSE
  "CMakeFiles/tapesim_util.dir/distributions.cpp.o"
  "CMakeFiles/tapesim_util.dir/distributions.cpp.o.d"
  "CMakeFiles/tapesim_util.dir/ini.cpp.o"
  "CMakeFiles/tapesim_util.dir/ini.cpp.o.d"
  "CMakeFiles/tapesim_util.dir/log.cpp.o"
  "CMakeFiles/tapesim_util.dir/log.cpp.o.d"
  "CMakeFiles/tapesim_util.dir/rng.cpp.o"
  "CMakeFiles/tapesim_util.dir/rng.cpp.o.d"
  "CMakeFiles/tapesim_util.dir/stats.cpp.o"
  "CMakeFiles/tapesim_util.dir/stats.cpp.o.d"
  "CMakeFiles/tapesim_util.dir/table.cpp.o"
  "CMakeFiles/tapesim_util.dir/table.cpp.o.d"
  "CMakeFiles/tapesim_util.dir/units.cpp.o"
  "CMakeFiles/tapesim_util.dir/units.cpp.o.d"
  "libtapesim_util.a"
  "libtapesim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
