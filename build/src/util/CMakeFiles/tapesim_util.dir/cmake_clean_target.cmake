file(REMOVE_RECURSE
  "libtapesim_util.a"
)
