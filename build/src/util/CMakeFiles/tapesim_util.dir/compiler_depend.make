# Empty compiler generated dependencies file for tapesim_util.
# This may be replaced when dependencies are built.
