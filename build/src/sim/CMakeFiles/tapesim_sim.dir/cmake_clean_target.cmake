file(REMOVE_RECURSE
  "libtapesim_sim.a"
)
