file(REMOVE_RECURSE
  "CMakeFiles/tapesim_sim.dir/engine.cpp.o"
  "CMakeFiles/tapesim_sim.dir/engine.cpp.o.d"
  "CMakeFiles/tapesim_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tapesim_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tapesim_sim.dir/resource.cpp.o"
  "CMakeFiles/tapesim_sim.dir/resource.cpp.o.d"
  "CMakeFiles/tapesim_sim.dir/semaphore.cpp.o"
  "CMakeFiles/tapesim_sim.dir/semaphore.cpp.o.d"
  "libtapesim_sim.a"
  "libtapesim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
