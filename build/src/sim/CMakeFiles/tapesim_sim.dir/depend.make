# Empty dependencies file for tapesim_sim.
# This may be replaced when dependencies are built.
