# Empty dependencies file for tapesim_cluster.
# This may be replaced when dependencies are built.
