# Empty compiler generated dependencies file for tapesim_cluster.
# This may be replaced when dependencies are built.
