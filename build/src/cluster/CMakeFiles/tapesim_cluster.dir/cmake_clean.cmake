file(REMOVE_RECURSE
  "CMakeFiles/tapesim_cluster.dir/hierarchy.cpp.o"
  "CMakeFiles/tapesim_cluster.dir/hierarchy.cpp.o.d"
  "CMakeFiles/tapesim_cluster.dir/quality.cpp.o"
  "CMakeFiles/tapesim_cluster.dir/quality.cpp.o.d"
  "CMakeFiles/tapesim_cluster.dir/similarity.cpp.o"
  "CMakeFiles/tapesim_cluster.dir/similarity.cpp.o.d"
  "libtapesim_cluster.a"
  "libtapesim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
