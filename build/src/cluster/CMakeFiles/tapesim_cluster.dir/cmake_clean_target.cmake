file(REMOVE_RECURSE
  "libtapesim_cluster.a"
)
