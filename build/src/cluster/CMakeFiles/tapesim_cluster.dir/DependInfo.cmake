
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/hierarchy.cpp" "src/cluster/CMakeFiles/tapesim_cluster.dir/hierarchy.cpp.o" "gcc" "src/cluster/CMakeFiles/tapesim_cluster.dir/hierarchy.cpp.o.d"
  "/root/repo/src/cluster/quality.cpp" "src/cluster/CMakeFiles/tapesim_cluster.dir/quality.cpp.o" "gcc" "src/cluster/CMakeFiles/tapesim_cluster.dir/quality.cpp.o.d"
  "/root/repo/src/cluster/similarity.cpp" "src/cluster/CMakeFiles/tapesim_cluster.dir/similarity.cpp.o" "gcc" "src/cluster/CMakeFiles/tapesim_cluster.dir/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tapesim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tapesim_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
