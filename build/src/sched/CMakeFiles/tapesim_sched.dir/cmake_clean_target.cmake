file(REMOVE_RECURSE
  "libtapesim_sched.a"
)
