file(REMOVE_RECURSE
  "CMakeFiles/tapesim_sched.dir/concurrent.cpp.o"
  "CMakeFiles/tapesim_sched.dir/concurrent.cpp.o.d"
  "CMakeFiles/tapesim_sched.dir/report.cpp.o"
  "CMakeFiles/tapesim_sched.dir/report.cpp.o.d"
  "CMakeFiles/tapesim_sched.dir/simulator.cpp.o"
  "CMakeFiles/tapesim_sched.dir/simulator.cpp.o.d"
  "libtapesim_sched.a"
  "libtapesim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
