# Empty dependencies file for tapesim_sched.
# This may be replaced when dependencies are built.
