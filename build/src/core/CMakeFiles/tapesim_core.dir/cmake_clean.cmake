file(REMOVE_RECURSE
  "CMakeFiles/tapesim_core.dir/cluster_probability.cpp.o"
  "CMakeFiles/tapesim_core.dir/cluster_probability.cpp.o.d"
  "CMakeFiles/tapesim_core.dir/incremental.cpp.o"
  "CMakeFiles/tapesim_core.dir/incremental.cpp.o.d"
  "CMakeFiles/tapesim_core.dir/load_balance.cpp.o"
  "CMakeFiles/tapesim_core.dir/load_balance.cpp.o.d"
  "CMakeFiles/tapesim_core.dir/object_probability.cpp.o"
  "CMakeFiles/tapesim_core.dir/object_probability.cpp.o.d"
  "CMakeFiles/tapesim_core.dir/parallel_batch.cpp.o"
  "CMakeFiles/tapesim_core.dir/parallel_batch.cpp.o.d"
  "CMakeFiles/tapesim_core.dir/plan.cpp.o"
  "CMakeFiles/tapesim_core.dir/plan.cpp.o.d"
  "CMakeFiles/tapesim_core.dir/striped.cpp.o"
  "CMakeFiles/tapesim_core.dir/striped.cpp.o.d"
  "libtapesim_core.a"
  "libtapesim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
