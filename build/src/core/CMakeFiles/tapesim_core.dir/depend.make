# Empty dependencies file for tapesim_core.
# This may be replaced when dependencies are built.
