file(REMOVE_RECURSE
  "libtapesim_core.a"
)
