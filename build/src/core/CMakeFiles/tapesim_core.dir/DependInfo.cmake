
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_probability.cpp" "src/core/CMakeFiles/tapesim_core.dir/cluster_probability.cpp.o" "gcc" "src/core/CMakeFiles/tapesim_core.dir/cluster_probability.cpp.o.d"
  "/root/repo/src/core/incremental.cpp" "src/core/CMakeFiles/tapesim_core.dir/incremental.cpp.o" "gcc" "src/core/CMakeFiles/tapesim_core.dir/incremental.cpp.o.d"
  "/root/repo/src/core/load_balance.cpp" "src/core/CMakeFiles/tapesim_core.dir/load_balance.cpp.o" "gcc" "src/core/CMakeFiles/tapesim_core.dir/load_balance.cpp.o.d"
  "/root/repo/src/core/object_probability.cpp" "src/core/CMakeFiles/tapesim_core.dir/object_probability.cpp.o" "gcc" "src/core/CMakeFiles/tapesim_core.dir/object_probability.cpp.o.d"
  "/root/repo/src/core/parallel_batch.cpp" "src/core/CMakeFiles/tapesim_core.dir/parallel_batch.cpp.o" "gcc" "src/core/CMakeFiles/tapesim_core.dir/parallel_batch.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/tapesim_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/tapesim_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/striped.cpp" "src/core/CMakeFiles/tapesim_core.dir/striped.cpp.o" "gcc" "src/core/CMakeFiles/tapesim_core.dir/striped.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tapesim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tapesim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tapesim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/tapesim_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/tapesim_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tapesim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
