file(REMOVE_RECURSE
  "libtapesim_catalog.a"
)
