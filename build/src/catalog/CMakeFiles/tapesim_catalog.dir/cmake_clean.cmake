file(REMOVE_RECURSE
  "CMakeFiles/tapesim_catalog.dir/catalog.cpp.o"
  "CMakeFiles/tapesim_catalog.dir/catalog.cpp.o.d"
  "libtapesim_catalog.a"
  "libtapesim_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
