# Empty dependencies file for tapesim_catalog.
# This may be replaced when dependencies are built.
