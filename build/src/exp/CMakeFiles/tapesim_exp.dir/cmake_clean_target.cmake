file(REMOVE_RECURSE
  "libtapesim_exp.a"
)
