file(REMOVE_RECURSE
  "CMakeFiles/tapesim_exp.dir/experiment.cpp.o"
  "CMakeFiles/tapesim_exp.dir/experiment.cpp.o.d"
  "libtapesim_exp.a"
  "libtapesim_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
