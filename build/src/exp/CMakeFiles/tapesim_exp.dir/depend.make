# Empty dependencies file for tapesim_exp.
# This may be replaced when dependencies are built.
