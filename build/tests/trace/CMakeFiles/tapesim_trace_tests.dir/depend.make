# Empty dependencies file for tapesim_trace_tests.
# This may be replaced when dependencies are built.
