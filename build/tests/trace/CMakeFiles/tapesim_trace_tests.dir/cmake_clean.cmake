file(REMOVE_RECURSE
  "CMakeFiles/tapesim_trace_tests.dir/test_plan_io.cpp.o"
  "CMakeFiles/tapesim_trace_tests.dir/test_plan_io.cpp.o.d"
  "CMakeFiles/tapesim_trace_tests.dir/test_plan_io_schemes.cpp.o"
  "CMakeFiles/tapesim_trace_tests.dir/test_plan_io_schemes.cpp.o.d"
  "CMakeFiles/tapesim_trace_tests.dir/test_workload_io.cpp.o"
  "CMakeFiles/tapesim_trace_tests.dir/test_workload_io.cpp.o.d"
  "tapesim_trace_tests"
  "tapesim_trace_tests.pdb"
  "tapesim_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
