file(REMOVE_RECURSE
  "CMakeFiles/tapesim_cluster_tests.dir/test_hierarchy.cpp.o"
  "CMakeFiles/tapesim_cluster_tests.dir/test_hierarchy.cpp.o.d"
  "CMakeFiles/tapesim_cluster_tests.dir/test_quality.cpp.o"
  "CMakeFiles/tapesim_cluster_tests.dir/test_quality.cpp.o.d"
  "CMakeFiles/tapesim_cluster_tests.dir/test_similarity.cpp.o"
  "CMakeFiles/tapesim_cluster_tests.dir/test_similarity.cpp.o.d"
  "tapesim_cluster_tests"
  "tapesim_cluster_tests.pdb"
  "tapesim_cluster_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_cluster_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
