
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/test_hierarchy.cpp" "tests/cluster/CMakeFiles/tapesim_cluster_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/cluster/CMakeFiles/tapesim_cluster_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/cluster/test_quality.cpp" "tests/cluster/CMakeFiles/tapesim_cluster_tests.dir/test_quality.cpp.o" "gcc" "tests/cluster/CMakeFiles/tapesim_cluster_tests.dir/test_quality.cpp.o.d"
  "/root/repo/tests/cluster/test_similarity.cpp" "tests/cluster/CMakeFiles/tapesim_cluster_tests.dir/test_similarity.cpp.o" "gcc" "tests/cluster/CMakeFiles/tapesim_cluster_tests.dir/test_similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/tapesim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tapesim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tapesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
