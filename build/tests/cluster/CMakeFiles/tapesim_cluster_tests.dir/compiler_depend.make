# Empty compiler generated dependencies file for tapesim_cluster_tests.
# This may be replaced when dependencies are built.
