# CMake generated Testfile for 
# Source directory: /root/repo/tests/cluster
# Build directory: /root/repo/build/tests/cluster
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cluster/tapesim_cluster_tests[1]_include.cmake")
