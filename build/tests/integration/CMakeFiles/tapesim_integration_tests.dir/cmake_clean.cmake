file(REMOVE_RECURSE
  "CMakeFiles/tapesim_integration_tests.dir/test_concurrent_stress.cpp.o"
  "CMakeFiles/tapesim_integration_tests.dir/test_concurrent_stress.cpp.o.d"
  "CMakeFiles/tapesim_integration_tests.dir/test_pipeline.cpp.o"
  "CMakeFiles/tapesim_integration_tests.dir/test_pipeline.cpp.o.d"
  "CMakeFiles/tapesim_integration_tests.dir/test_properties.cpp.o"
  "CMakeFiles/tapesim_integration_tests.dir/test_properties.cpp.o.d"
  "tapesim_integration_tests"
  "tapesim_integration_tests.pdb"
  "tapesim_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
