# Empty compiler generated dependencies file for tapesim_integration_tests.
# This may be replaced when dependencies are built.
