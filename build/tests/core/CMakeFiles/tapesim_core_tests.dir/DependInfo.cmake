
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_incremental.cpp" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_incremental.cpp.o" "gcc" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_incremental.cpp.o.d"
  "/root/repo/tests/core/test_load_balance.cpp" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_load_balance.cpp.o" "gcc" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_load_balance.cpp.o.d"
  "/root/repo/tests/core/test_organ_pipe_optimality.cpp" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_organ_pipe_optimality.cpp.o" "gcc" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_organ_pipe_optimality.cpp.o.d"
  "/root/repo/tests/core/test_plan.cpp" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_plan.cpp.o" "gcc" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_plan.cpp.o.d"
  "/root/repo/tests/core/test_plan_freeze.cpp" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_plan_freeze.cpp.o" "gcc" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_plan_freeze.cpp.o.d"
  "/root/repo/tests/core/test_schemes.cpp" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_schemes.cpp.o" "gcc" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_schemes.cpp.o.d"
  "/root/repo/tests/core/test_striped.cpp" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_striped.cpp.o" "gcc" "tests/core/CMakeFiles/tapesim_core_tests.dir/test_striped.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tapesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tapesim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tapesim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/tapesim_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tapesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/tapesim_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tapesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
