file(REMOVE_RECURSE
  "CMakeFiles/tapesim_core_tests.dir/test_incremental.cpp.o"
  "CMakeFiles/tapesim_core_tests.dir/test_incremental.cpp.o.d"
  "CMakeFiles/tapesim_core_tests.dir/test_load_balance.cpp.o"
  "CMakeFiles/tapesim_core_tests.dir/test_load_balance.cpp.o.d"
  "CMakeFiles/tapesim_core_tests.dir/test_organ_pipe_optimality.cpp.o"
  "CMakeFiles/tapesim_core_tests.dir/test_organ_pipe_optimality.cpp.o.d"
  "CMakeFiles/tapesim_core_tests.dir/test_plan.cpp.o"
  "CMakeFiles/tapesim_core_tests.dir/test_plan.cpp.o.d"
  "CMakeFiles/tapesim_core_tests.dir/test_plan_freeze.cpp.o"
  "CMakeFiles/tapesim_core_tests.dir/test_plan_freeze.cpp.o.d"
  "CMakeFiles/tapesim_core_tests.dir/test_schemes.cpp.o"
  "CMakeFiles/tapesim_core_tests.dir/test_schemes.cpp.o.d"
  "CMakeFiles/tapesim_core_tests.dir/test_striped.cpp.o"
  "CMakeFiles/tapesim_core_tests.dir/test_striped.cpp.o.d"
  "tapesim_core_tests"
  "tapesim_core_tests.pdb"
  "tapesim_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
