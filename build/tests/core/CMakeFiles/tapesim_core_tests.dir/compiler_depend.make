# Empty compiler generated dependencies file for tapesim_core_tests.
# This may be replaced when dependencies are built.
