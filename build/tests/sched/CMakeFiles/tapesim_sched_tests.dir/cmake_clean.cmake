file(REMOVE_RECURSE
  "CMakeFiles/tapesim_sched_tests.dir/test_concurrent.cpp.o"
  "CMakeFiles/tapesim_sched_tests.dir/test_concurrent.cpp.o.d"
  "CMakeFiles/tapesim_sched_tests.dir/test_report.cpp.o"
  "CMakeFiles/tapesim_sched_tests.dir/test_report.cpp.o.d"
  "CMakeFiles/tapesim_sched_tests.dir/test_simulator.cpp.o"
  "CMakeFiles/tapesim_sched_tests.dir/test_simulator.cpp.o.d"
  "tapesim_sched_tests"
  "tapesim_sched_tests.pdb"
  "tapesim_sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
