# Empty compiler generated dependencies file for tapesim_sched_tests.
# This may be replaced when dependencies are built.
