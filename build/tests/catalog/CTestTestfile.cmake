# CMake generated Testfile for 
# Source directory: /root/repo/tests/catalog
# Build directory: /root/repo/build/tests/catalog
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/catalog/tapesim_catalog_tests[1]_include.cmake")
