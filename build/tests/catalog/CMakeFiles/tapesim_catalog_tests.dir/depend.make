# Empty dependencies file for tapesim_catalog_tests.
# This may be replaced when dependencies are built.
