file(REMOVE_RECURSE
  "CMakeFiles/tapesim_catalog_tests.dir/test_btree.cpp.o"
  "CMakeFiles/tapesim_catalog_tests.dir/test_btree.cpp.o.d"
  "CMakeFiles/tapesim_catalog_tests.dir/test_catalog.cpp.o"
  "CMakeFiles/tapesim_catalog_tests.dir/test_catalog.cpp.o.d"
  "tapesim_catalog_tests"
  "tapesim_catalog_tests.pdb"
  "tapesim_catalog_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_catalog_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
