
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/catalog/test_btree.cpp" "tests/catalog/CMakeFiles/tapesim_catalog_tests.dir/test_btree.cpp.o" "gcc" "tests/catalog/CMakeFiles/tapesim_catalog_tests.dir/test_btree.cpp.o.d"
  "/root/repo/tests/catalog/test_catalog.cpp" "tests/catalog/CMakeFiles/tapesim_catalog_tests.dir/test_catalog.cpp.o" "gcc" "tests/catalog/CMakeFiles/tapesim_catalog_tests.dir/test_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/tapesim_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tapesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
