file(REMOVE_RECURSE
  "CMakeFiles/tapesim_util_tests.dir/test_distributions.cpp.o"
  "CMakeFiles/tapesim_util_tests.dir/test_distributions.cpp.o.d"
  "CMakeFiles/tapesim_util_tests.dir/test_ids.cpp.o"
  "CMakeFiles/tapesim_util_tests.dir/test_ids.cpp.o.d"
  "CMakeFiles/tapesim_util_tests.dir/test_ini.cpp.o"
  "CMakeFiles/tapesim_util_tests.dir/test_ini.cpp.o.d"
  "CMakeFiles/tapesim_util_tests.dir/test_rng.cpp.o"
  "CMakeFiles/tapesim_util_tests.dir/test_rng.cpp.o.d"
  "CMakeFiles/tapesim_util_tests.dir/test_stats.cpp.o"
  "CMakeFiles/tapesim_util_tests.dir/test_stats.cpp.o.d"
  "CMakeFiles/tapesim_util_tests.dir/test_table.cpp.o"
  "CMakeFiles/tapesim_util_tests.dir/test_table.cpp.o.d"
  "CMakeFiles/tapesim_util_tests.dir/test_units.cpp.o"
  "CMakeFiles/tapesim_util_tests.dir/test_units.cpp.o.d"
  "tapesim_util_tests"
  "tapesim_util_tests.pdb"
  "tapesim_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
