# Empty compiler generated dependencies file for tapesim_util_tests.
# This may be replaced when dependencies are built.
