
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_distributions.cpp" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_distributions.cpp.o" "gcc" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/util/test_ids.cpp" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_ids.cpp.o" "gcc" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_ids.cpp.o.d"
  "/root/repo/tests/util/test_ini.cpp" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_ini.cpp.o" "gcc" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_ini.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_rng.cpp.o" "gcc" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_stats.cpp.o" "gcc" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_table.cpp.o" "gcc" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/util/test_units.cpp" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_units.cpp.o" "gcc" "tests/util/CMakeFiles/tapesim_util_tests.dir/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tapesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
