file(REMOVE_RECURSE
  "CMakeFiles/tapesim_exp_tests.dir/test_experiment.cpp.o"
  "CMakeFiles/tapesim_exp_tests.dir/test_experiment.cpp.o.d"
  "tapesim_exp_tests"
  "tapesim_exp_tests.pdb"
  "tapesim_exp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_exp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
