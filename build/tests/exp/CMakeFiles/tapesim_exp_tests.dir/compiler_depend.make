# Empty compiler generated dependencies file for tapesim_exp_tests.
# This may be replaced when dependencies are built.
