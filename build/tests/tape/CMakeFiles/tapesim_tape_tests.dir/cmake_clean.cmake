file(REMOVE_RECURSE
  "CMakeFiles/tapesim_tape_tests.dir/test_drive.cpp.o"
  "CMakeFiles/tapesim_tape_tests.dir/test_drive.cpp.o.d"
  "CMakeFiles/tapesim_tape_tests.dir/test_linear_motion.cpp.o"
  "CMakeFiles/tapesim_tape_tests.dir/test_linear_motion.cpp.o.d"
  "CMakeFiles/tapesim_tape_tests.dir/test_specs.cpp.o"
  "CMakeFiles/tapesim_tape_tests.dir/test_specs.cpp.o.d"
  "CMakeFiles/tapesim_tape_tests.dir/test_system.cpp.o"
  "CMakeFiles/tapesim_tape_tests.dir/test_system.cpp.o.d"
  "tapesim_tape_tests"
  "tapesim_tape_tests.pdb"
  "tapesim_tape_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_tape_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
