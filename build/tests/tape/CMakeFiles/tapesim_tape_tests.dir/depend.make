# Empty dependencies file for tapesim_tape_tests.
# This may be replaced when dependencies are built.
