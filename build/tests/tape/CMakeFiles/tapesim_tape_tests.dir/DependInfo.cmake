
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tape/test_drive.cpp" "tests/tape/CMakeFiles/tapesim_tape_tests.dir/test_drive.cpp.o" "gcc" "tests/tape/CMakeFiles/tapesim_tape_tests.dir/test_drive.cpp.o.d"
  "/root/repo/tests/tape/test_linear_motion.cpp" "tests/tape/CMakeFiles/tapesim_tape_tests.dir/test_linear_motion.cpp.o" "gcc" "tests/tape/CMakeFiles/tapesim_tape_tests.dir/test_linear_motion.cpp.o.d"
  "/root/repo/tests/tape/test_specs.cpp" "tests/tape/CMakeFiles/tapesim_tape_tests.dir/test_specs.cpp.o" "gcc" "tests/tape/CMakeFiles/tapesim_tape_tests.dir/test_specs.cpp.o.d"
  "/root/repo/tests/tape/test_system.cpp" "tests/tape/CMakeFiles/tapesim_tape_tests.dir/test_system.cpp.o" "gcc" "tests/tape/CMakeFiles/tapesim_tape_tests.dir/test_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tape/CMakeFiles/tapesim_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tapesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tapesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
