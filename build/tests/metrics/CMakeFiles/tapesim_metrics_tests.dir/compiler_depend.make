# Empty compiler generated dependencies file for tapesim_metrics_tests.
# This may be replaced when dependencies are built.
