file(REMOVE_RECURSE
  "CMakeFiles/tapesim_metrics_tests.dir/test_metrics.cpp.o"
  "CMakeFiles/tapesim_metrics_tests.dir/test_metrics.cpp.o.d"
  "CMakeFiles/tapesim_metrics_tests.dir/test_queueing.cpp.o"
  "CMakeFiles/tapesim_metrics_tests.dir/test_queueing.cpp.o.d"
  "tapesim_metrics_tests"
  "tapesim_metrics_tests.pdb"
  "tapesim_metrics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_metrics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
