file(REMOVE_RECURSE
  "CMakeFiles/tapesim_sim_tests.dir/test_engine.cpp.o"
  "CMakeFiles/tapesim_sim_tests.dir/test_engine.cpp.o.d"
  "CMakeFiles/tapesim_sim_tests.dir/test_event_queue.cpp.o"
  "CMakeFiles/tapesim_sim_tests.dir/test_event_queue.cpp.o.d"
  "CMakeFiles/tapesim_sim_tests.dir/test_resource.cpp.o"
  "CMakeFiles/tapesim_sim_tests.dir/test_resource.cpp.o.d"
  "CMakeFiles/tapesim_sim_tests.dir/test_semaphore.cpp.o"
  "CMakeFiles/tapesim_sim_tests.dir/test_semaphore.cpp.o.d"
  "tapesim_sim_tests"
  "tapesim_sim_tests.pdb"
  "tapesim_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
