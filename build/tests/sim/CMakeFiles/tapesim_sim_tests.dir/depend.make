# Empty dependencies file for tapesim_sim_tests.
# This may be replaced when dependencies are built.
