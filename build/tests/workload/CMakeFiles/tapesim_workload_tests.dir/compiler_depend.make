# Empty compiler generated dependencies file for tapesim_workload_tests.
# This may be replaced when dependencies are built.
