
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/test_generator.cpp" "tests/workload/CMakeFiles/tapesim_workload_tests.dir/test_generator.cpp.o" "gcc" "tests/workload/CMakeFiles/tapesim_workload_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/workload/test_merge.cpp" "tests/workload/CMakeFiles/tapesim_workload_tests.dir/test_merge.cpp.o" "gcc" "tests/workload/CMakeFiles/tapesim_workload_tests.dir/test_merge.cpp.o.d"
  "/root/repo/tests/workload/test_model.cpp" "tests/workload/CMakeFiles/tapesim_workload_tests.dir/test_model.cpp.o" "gcc" "tests/workload/CMakeFiles/tapesim_workload_tests.dir/test_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/tapesim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tapesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
