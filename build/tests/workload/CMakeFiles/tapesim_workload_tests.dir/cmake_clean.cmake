file(REMOVE_RECURSE
  "CMakeFiles/tapesim_workload_tests.dir/test_generator.cpp.o"
  "CMakeFiles/tapesim_workload_tests.dir/test_generator.cpp.o.d"
  "CMakeFiles/tapesim_workload_tests.dir/test_merge.cpp.o"
  "CMakeFiles/tapesim_workload_tests.dir/test_merge.cpp.o.d"
  "CMakeFiles/tapesim_workload_tests.dir/test_model.cpp.o"
  "CMakeFiles/tapesim_workload_tests.dir/test_model.cpp.o.d"
  "tapesim_workload_tests"
  "tapesim_workload_tests.pdb"
  "tapesim_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
