# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli.info "/root/repo/build/tools/tapesim" "info" "--objects" "1200" "--requests" "30" "--groups" "30" "--tapes" "12" "--capacity-gb" "40" "--libraries" "2" "--drives" "4" "--m" "2" "--simulated" "10" "--avg-request-gb" "15")
set_tests_properties(cli.info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.run "/root/repo/build/tools/tapesim" "run" "--scheme" "pbp" "--objects" "1200" "--requests" "30" "--groups" "30" "--tapes" "12" "--capacity-gb" "40" "--libraries" "2" "--drives" "4" "--m" "2" "--simulated" "10" "--avg-request-gb" "15")
set_tests_properties(cli.run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.run_opp "/root/repo/build/tools/tapesim" "run" "--scheme" "opp" "--objects" "1200" "--requests" "30" "--groups" "30" "--tapes" "12" "--capacity-gb" "40" "--libraries" "2" "--drives" "4" "--m" "2" "--simulated" "10" "--avg-request-gb" "15" "--utilization" "1")
set_tests_properties(cli.run_opp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.workload "/root/repo/build/tools/tapesim" "workload" "--out" "/root/repo/build/tools/smoke_wl" "--objects" "1200" "--requests" "30" "--groups" "30" "--tapes" "12" "--capacity-gb" "40" "--libraries" "2" "--drives" "4" "--m" "2" "--simulated" "10" "--avg-request-gb" "15")
set_tests_properties(cli.workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.place "/root/repo/build/tools/tapesim" "place" "--scheme" "cpp" "--out" "/root/repo/build/tools/smoke_plan" "--objects" "1200" "--requests" "30" "--groups" "30" "--tapes" "12" "--capacity-gb" "40" "--libraries" "2" "--drives" "4" "--m" "2" "--simulated" "10" "--avg-request-gb" "15")
set_tests_properties(cli.place PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.bad_scheme "/root/repo/build/tools/tapesim" "run" "--scheme" "quantum")
set_tests_properties(cli.bad_scheme PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli.usage "/root/repo/build/tools/tapesim")
set_tests_properties(cli.usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
