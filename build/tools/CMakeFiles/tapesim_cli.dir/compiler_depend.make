# Empty compiler generated dependencies file for tapesim_cli.
# This may be replaced when dependencies are built.
