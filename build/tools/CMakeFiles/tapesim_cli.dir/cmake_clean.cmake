file(REMOVE_RECURSE
  "CMakeFiles/tapesim_cli.dir/tapesim_cli.cpp.o"
  "CMakeFiles/tapesim_cli.dir/tapesim_cli.cpp.o.d"
  "tapesim"
  "tapesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tapesim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
