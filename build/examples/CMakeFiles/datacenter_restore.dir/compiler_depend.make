# Empty compiler generated dependencies file for datacenter_restore.
# This may be replaced when dependencies are built.
