file(REMOVE_RECURSE
  "CMakeFiles/datacenter_restore.dir/datacenter_restore.cpp.o"
  "CMakeFiles/datacenter_restore.dir/datacenter_restore.cpp.o.d"
  "datacenter_restore"
  "datacenter_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
