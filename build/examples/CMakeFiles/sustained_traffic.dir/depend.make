# Empty dependencies file for sustained_traffic.
# This may be replaced when dependencies are built.
