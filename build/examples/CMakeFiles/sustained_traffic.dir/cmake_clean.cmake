file(REMOVE_RECURSE
  "CMakeFiles/sustained_traffic.dir/sustained_traffic.cpp.o"
  "CMakeFiles/sustained_traffic.dir/sustained_traffic.cpp.o.d"
  "sustained_traffic"
  "sustained_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sustained_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
