# Empty compiler generated dependencies file for hpc_checkpoint_restore.
# This may be replaced when dependencies are built.
