file(REMOVE_RECURSE
  "CMakeFiles/hpc_checkpoint_restore.dir/hpc_checkpoint_restore.cpp.o"
  "CMakeFiles/hpc_checkpoint_restore.dir/hpc_checkpoint_restore.cpp.o.d"
  "hpc_checkpoint_restore"
  "hpc_checkpoint_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_checkpoint_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
