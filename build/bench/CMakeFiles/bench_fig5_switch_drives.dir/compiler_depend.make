# Empty compiler generated dependencies file for bench_fig5_switch_drives.
# This may be replaced when dependencies are built.
