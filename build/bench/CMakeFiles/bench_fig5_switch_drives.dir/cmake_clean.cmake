file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_switch_drives.dir/bench_fig5_switch_drives.cpp.o"
  "CMakeFiles/bench_fig5_switch_drives.dir/bench_fig5_switch_drives.cpp.o.d"
  "bench_fig5_switch_drives"
  "bench_fig5_switch_drives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_switch_drives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
