
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_switch_drives.cpp" "bench/CMakeFiles/bench_fig5_switch_drives.dir/bench_fig5_switch_drives.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_switch_drives.dir/bench_fig5_switch_drives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/tapesim_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tapesim_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tapesim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tapesim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tape/CMakeFiles/tapesim_tape.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tapesim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/tapesim_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tapesim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tapesim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tapesim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tapesim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
