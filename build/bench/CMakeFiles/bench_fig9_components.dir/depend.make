# Empty dependencies file for bench_fig9_components.
# This may be replaced when dependencies are built.
