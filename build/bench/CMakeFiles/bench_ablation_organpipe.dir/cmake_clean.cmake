file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_organpipe.dir/bench_ablation_organpipe.cpp.o"
  "CMakeFiles/bench_ablation_organpipe.dir/bench_ablation_organpipe.cpp.o.d"
  "bench_ablation_organpipe"
  "bench_ablation_organpipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_organpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
