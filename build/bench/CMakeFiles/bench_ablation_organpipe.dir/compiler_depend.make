# Empty compiler generated dependencies file for bench_ablation_organpipe.
# This may be replaced when dependencies are built.
