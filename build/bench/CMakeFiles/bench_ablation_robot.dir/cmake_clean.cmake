file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_robot.dir/bench_ablation_robot.cpp.o"
  "CMakeFiles/bench_ablation_robot.dir/bench_ablation_robot.cpp.o.d"
  "bench_ablation_robot"
  "bench_ablation_robot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_robot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
