# Empty compiler generated dependencies file for bench_ablation_robot.
# This may be replaced when dependencies are built.
