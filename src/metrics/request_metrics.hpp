// Per-request outcome decomposition and experiment-level aggregation.
//
// The paper's Metrics paragraph (Section 6) defines the decomposition this
// module implements verbatim: the transfer time and seek time of a request
// are those accumulated by the drive that finishes serving the request
// last; the tape switch time is the difference between the response time
// and that drive's seek-and-transfer time (it thus folds in rewinds,
// unloads, robot moves, robot queueing, loads, and any idle waiting of the
// critical drive). Effective bandwidth = requested bytes / response time.
#pragma once

#include <cstdint>
#include <limits>

#include "util/ids.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace tapesim::metrics {

/// How a request ended. kPartial/kUnavailable only occur with fault
/// injection enabled: data on lost cartridges (or behind permanently
/// failed, unrecoverable mounts) completes as unavailable instead of
/// wedging the simulation. kDeadlineExpired/kShed only occur with overload
/// protection enabled (sched/overload.hpp).
enum class RequestStatus : std::uint8_t {
  kServed,           ///< Every requested byte delivered.
  kPartial,          ///< Some bytes delivered, some unavailable.
  kUnavailable,      ///< No requested byte could be delivered.
  kDeadlineExpired,  ///< Admitted, but cancelled mid-service at its deadline.
  kShed,             ///< Rejected at admission; never consumed drive time.
};

[[nodiscard]] const char* to_string(RequestStatus s);

struct RequestOutcome {
  RequestId request;
  Bytes bytes{};           ///< Total requested data.
  Seconds response{};      ///< Arrival to last object transferred.
  Seconds seek{};          ///< Seek time of the last-finishing drive.
  Seconds transfer{};      ///< Transfer time of the last-finishing drive.
  Seconds switch_time{};   ///< response - seek - transfer.
  Seconds robot_wait{};    ///< Total robot queueing across drives (diagnostic).
  std::uint32_t tape_switches = 0;  ///< Mounts performed for this request.
  std::uint32_t tapes_touched = 0;  ///< Distinct tapes holding its objects.
  std::uint32_t drives_used = 0;    ///< Drives that moved data or switched.

  // --- degraded-mode accounting (all zero without fault injection) ---
  RequestStatus status = RequestStatus::kServed;
  Bytes bytes_unavailable{};            ///< Requested but undeliverable.
  std::uint32_t extents_unavailable = 0;
  std::uint32_t failovers = 0;      ///< Mid-transfer drive failovers.
  /// Extents that waited out a library outage before being served
  /// (requires the library-outage model; see sched/outage.hpp).
  std::uint32_t extents_parked = 0;
  std::uint32_t mount_retries = 0;  ///< Failed load attempts retried.
  std::uint32_t media_retries = 0;  ///< Read errors retried.
  /// Extents delivered from a non-primary copy (requires replication).
  std::uint32_t served_from_replica = 0;
  /// Background repair copies completed while this request was in flight.
  std::uint32_t repaired = 0;
  /// Foreground reads that ran into latent decay damage accrued silently
  /// since the cartridge was last verified (requires latent decay).
  std::uint32_t latent_hits = 0;

  // --- overload accounting (defaults without overload protection) ---
  Priority priority = Priority::kForeground;
  /// Response-time budget granted at arrival; infinity means none. For
  /// kDeadlineExpired outcomes, response == deadline by construction.
  Seconds deadline{kNoDeadline};
  Bytes bytes_expired{};  ///< Requested but abandoned at the deadline.
  std::uint32_t extents_expired = 0;

  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();

  [[nodiscard]] bool met_deadline() const {
    return status == RequestStatus::kServed &&
           response.count() <= deadline.count();
  }

  [[nodiscard]] Bytes bytes_served() const {
    return bytes - bytes_unavailable - bytes_expired;
  }

  /// Effective data retrieval bandwidth for this request (delivered bytes
  /// over response time; zero for a degenerate zero-time response).
  [[nodiscard]] BytesPerSecond bandwidth() const {
    if (response.count() <= 0.0) return BytesPerSecond{0.0};
    return rate_for(bytes_served(), response);
  }
};

/// Aggregates outcomes over the simulated request stream (the paper's "this
/// repeats 200 times to get the average value for each metrics").
class ExperimentMetrics {
 public:
  void add(const RequestOutcome& outcome);

  [[nodiscard]] std::size_t count() const { return response_.count(); }

  // Averages, in the units the paper plots.
  [[nodiscard]] Seconds mean_response() const;
  [[nodiscard]] Seconds mean_switch() const;
  [[nodiscard]] Seconds mean_seek() const;
  [[nodiscard]] Seconds mean_transfer() const;
  [[nodiscard]] Bytes mean_request_bytes() const;
  /// Mean of per-request effective bandwidth.
  [[nodiscard]] BytesPerSecond mean_bandwidth() const;
  /// Aggregate view: total bytes / total response time.
  [[nodiscard]] BytesPerSecond aggregate_bandwidth() const;
  [[nodiscard]] double mean_tape_switches() const;

  [[nodiscard]] const SampleSet& response_samples() const { return response_; }
  /// Responses of fully served requests only — what admitted-and-completed
  /// traffic experienced; the storm bench reports its p99.
  [[nodiscard]] const SampleSet& served_response_samples() const {
    return response_served_;
  }
  [[nodiscard]] const SampleSet& bandwidth_samples() const {
    return bandwidth_;
  }

  // --- degraded-mode aggregates ---
  [[nodiscard]] std::uint64_t served_count() const { return served_; }
  [[nodiscard]] std::uint64_t partial_count() const { return partial_; }
  [[nodiscard]] std::uint64_t unavailable_count() const {
    return unavailable_;
  }
  /// Fraction of requested bytes that could not be delivered; 0 without
  /// fault injection.
  [[nodiscard]] double fraction_unavailable() const;
  /// Mean response over fully served requests only. Unavailable requests
  /// complete almost instantly, so the overall mean *falls* as a system
  /// collapses; this series isolates what surviving traffic experiences
  /// (repair waits, retries, failovers). Zero when nothing was served.
  [[nodiscard]] Seconds mean_served_response() const;
  [[nodiscard]] std::uint64_t total_failovers() const { return failovers_; }
  /// Extents that waited out a library outage; 0 without the outage model.
  [[nodiscard]] std::uint64_t total_extents_parked() const {
    return extents_parked_;
  }
  /// Requests that parked at least one extent behind a downed library.
  [[nodiscard]] std::uint64_t parked_request_count() const {
    return parked_requests_;
  }
  [[nodiscard]] std::uint64_t total_mount_retries() const {
    return mount_retries_;
  }
  [[nodiscard]] std::uint64_t total_media_retries() const {
    return media_retries_;
  }
  [[nodiscard]] std::uint64_t total_served_from_replica() const {
    return served_from_replica_;
  }
  [[nodiscard]] std::uint64_t total_repaired() const { return repaired_; }
  /// Foreground latent-damage hits across all requests; the scrub bench's
  /// primary "did verification help" signal.
  [[nodiscard]] std::uint64_t total_latent_hits() const {
    return latent_hits_;
  }
  /// Requests with at least one latent-damage hit.
  [[nodiscard]] std::uint64_t latent_hit_request_count() const {
    return latent_hit_requests_;
  }
  /// Fraction of requests that ran into latent damage; 0 without decay.
  [[nodiscard]] double fraction_latent_hit() const;

  // --- overload aggregates ---
  /// Admitted requests cancelled at their deadline.
  [[nodiscard]] std::uint64_t expired_count() const { return expired_; }
  /// Requests rejected at admission. Shed outcomes are counted here but
  /// contribute to no timing sample (they never ran), so count() excludes
  /// them; count() + shed_count() is the full offered load.
  [[nodiscard]] std::uint64_t shed_count() const { return shed_; }
  /// Bytes of requests fully served within their deadline (no deadline =
  /// always within). Goodput = this over the observation interval.
  [[nodiscard]] Bytes deadline_met_bytes() const {
    return Bytes{static_cast<Bytes::value_type>(deadline_met_bytes_)};
  }

 private:
  SampleSet response_;
  SampleSet response_served_;
  SampleSet switch_;
  SampleSet seek_;
  SampleSet transfer_;
  SampleSet bandwidth_;
  SampleSet bytes_;
  SampleSet switches_;
  std::uint64_t served_ = 0;
  std::uint64_t partial_ = 0;
  std::uint64_t unavailable_ = 0;
  double bytes_unavailable_sum_ = 0.0;
  std::uint64_t failovers_ = 0;
  std::uint64_t extents_parked_ = 0;
  std::uint64_t parked_requests_ = 0;
  std::uint64_t mount_retries_ = 0;
  std::uint64_t media_retries_ = 0;
  std::uint64_t served_from_replica_ = 0;
  std::uint64_t repaired_ = 0;
  std::uint64_t latent_hits_ = 0;
  std::uint64_t latent_hit_requests_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t shed_ = 0;
  double deadline_met_bytes_ = 0.0;
};

}  // namespace tapesim::metrics
