// Per-request outcome decomposition and experiment-level aggregation.
//
// The paper's Metrics paragraph (Section 6) defines the decomposition this
// module implements verbatim: the transfer time and seek time of a request
// are those accumulated by the drive that finishes serving the request
// last; the tape switch time is the difference between the response time
// and that drive's seek-and-transfer time (it thus folds in rewinds,
// unloads, robot moves, robot queueing, loads, and any idle waiting of the
// critical drive). Effective bandwidth = requested bytes / response time.
#pragma once

#include <cstdint>

#include "util/ids.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace tapesim::metrics {

struct RequestOutcome {
  RequestId request;
  Bytes bytes{};           ///< Total requested data.
  Seconds response{};      ///< Arrival to last object transferred.
  Seconds seek{};          ///< Seek time of the last-finishing drive.
  Seconds transfer{};      ///< Transfer time of the last-finishing drive.
  Seconds switch_time{};   ///< response - seek - transfer.
  Seconds robot_wait{};    ///< Total robot queueing across drives (diagnostic).
  std::uint32_t tape_switches = 0;  ///< Mounts performed for this request.
  std::uint32_t tapes_touched = 0;  ///< Distinct tapes holding its objects.
  std::uint32_t drives_used = 0;    ///< Drives that moved data or switched.

  /// Effective data retrieval bandwidth for this request.
  [[nodiscard]] BytesPerSecond bandwidth() const {
    return rate_for(bytes, response);
  }
};

/// Aggregates outcomes over the simulated request stream (the paper's "this
/// repeats 200 times to get the average value for each metrics").
class ExperimentMetrics {
 public:
  void add(const RequestOutcome& outcome);

  [[nodiscard]] std::size_t count() const { return response_.count(); }

  // Averages, in the units the paper plots.
  [[nodiscard]] Seconds mean_response() const;
  [[nodiscard]] Seconds mean_switch() const;
  [[nodiscard]] Seconds mean_seek() const;
  [[nodiscard]] Seconds mean_transfer() const;
  [[nodiscard]] Bytes mean_request_bytes() const;
  /// Mean of per-request effective bandwidth.
  [[nodiscard]] BytesPerSecond mean_bandwidth() const;
  /// Aggregate view: total bytes / total response time.
  [[nodiscard]] BytesPerSecond aggregate_bandwidth() const;
  [[nodiscard]] double mean_tape_switches() const;

  [[nodiscard]] const SampleSet& response_samples() const { return response_; }
  [[nodiscard]] const SampleSet& bandwidth_samples() const {
    return bandwidth_;
  }

 private:
  SampleSet response_;
  SampleSet switch_;
  SampleSet seek_;
  SampleSet transfer_;
  SampleSet bandwidth_;
  SampleSet bytes_;
  SampleSet switches_;
};

}  // namespace tapesim::metrics
