// Analytic queueing estimates on top of measured service times.
//
// The paper assumes zero queueing ("requests submitted one by one with
// long time interval"). To reason about sustained restore traffic we treat
// the tape system as an M/G/1 server whose service-time distribution is
// the measured per-request response-time sample set, and apply the
// Pollaczek–Khinchine formula. This is conservative for this system —
// partially overlapping requests can share drives — so the concurrent
// simulator (sched/concurrent.hpp) provides the ground truth the formula
// is compared against in bench_concurrency.
#pragma once

#include "util/stats.hpp"
#include "util/units.hpp"

namespace tapesim::metrics {

struct MG1Estimate {
  double utilization = 0.0;      ///< rho = lambda * E[S]
  Seconds mean_wait{};           ///< Wq
  Seconds mean_sojourn{};        ///< Wq + E[S]
  bool stable = false;           ///< rho < 1
};

/// Pollaczek–Khinchine with the empirical first/second service moments.
/// `arrival_rate` is requests per second.
[[nodiscard]] MG1Estimate mg1_estimate(const SampleSet& service_times,
                                       double arrival_rate);

/// Largest arrival rate the single-server model can sustain (1 / E[S]).
[[nodiscard]] double saturation_rate(const SampleSet& service_times);

}  // namespace tapesim::metrics
