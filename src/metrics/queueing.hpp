// Analytic queueing estimates on top of measured service times.
//
// The paper assumes zero queueing ("requests submitted one by one with
// long time interval"). To reason about sustained restore traffic we treat
// the tape system as an M/G/1 server whose service-time distribution is
// the measured per-request response-time sample set, and apply the
// Pollaczek–Khinchine formula. This is conservative for this system —
// partially overlapping requests can share drives — so the concurrent
// simulator (sched/concurrent.hpp) provides the ground truth the formula
// is compared against in bench_concurrency.
#pragma once

#include <cstdint>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace tapesim::metrics {

struct MG1Estimate {
  double utilization = 0.0;      ///< rho = lambda * E[S]
  Seconds mean_wait{};           ///< Wq
  Seconds mean_sojourn{};        ///< Wq + E[S]
  bool stable = false;           ///< rho < 1
};

/// Pollaczek–Khinchine with the empirical first/second service moments.
/// `arrival_rate` is requests per second.
[[nodiscard]] MG1Estimate mg1_estimate(const SampleSet& service_times,
                                       double arrival_rate);

/// Largest arrival rate the single-server model can sustain (1 / E[S]).
[[nodiscard]] double saturation_rate(const SampleSet& service_times);

/// Mean-field prediction of the disaster-recovery makespan: the time from
/// a site disaster to full redundancy restored, when `lost_bytes` must be
/// re-copied by at most `concurrency` drives whose effective repair rate is
/// `drive_rate * bandwidth_fraction`, plus a fixed per-job mount/seek
/// overhead. Follows the fluid (large-system) scaling of coded-storage
/// repair models (Sun et al., arXiv:1701.00335): makespan ~ volume over
/// aggregate repair bandwidth, plus a straggler term of one job. The
/// simulator's measured time-to-full-redundancy is gated against a generous
/// band around this value in bench_outage_recovery.
[[nodiscard]] Seconds predicted_recovery_makespan(Bytes lost_bytes,
                                                  std::uint64_t jobs,
                                                  BytesPerSecond drive_rate,
                                                  double bandwidth_fraction,
                                                  std::uint32_t concurrency,
                                                  Seconds per_job_overhead);

/// Online service-time predictor backing admission control.
///
/// Tape service time is dominated by a size-proportional transfer plus a
/// roughly constant mount/seek overhead, so we fit service = a + b * bytes
/// by streaming least squares over completed requests. Admission control
/// sums estimates over the queue to decide whether a new arrival could
/// still meet its deadline (reject-hopeless). With no or degenerate
/// observations the estimator degrades gracefully: it falls back to the
/// mean observed service time, and to zero before the first completion —
/// admission is then optimistic, never wedged.
class ServiceEstimator {
 public:
  /// Records one completed request: its size and measured service time.
  void observe(Bytes bytes, Seconds service);

  /// Predicted service time for a request of the given size; never
  /// negative, zero before any observation.
  [[nodiscard]] Seconds estimate(Bytes bytes) const;

  [[nodiscard]] std::size_t observations() const { return n_; }
  [[nodiscard]] Seconds mean_service() const;

 private:
  std::size_t n_ = 0;
  double sum_x_ = 0.0;   ///< bytes
  double sum_y_ = 0.0;   ///< seconds
  double sum_xx_ = 0.0;
  double sum_xy_ = 0.0;
};

}  // namespace tapesim::metrics
