#include "metrics/request_metrics.hpp"

namespace tapesim::metrics {

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kServed: return "served";
    case RequestStatus::kPartial: return "partial";
    case RequestStatus::kUnavailable: return "unavailable";
    case RequestStatus::kDeadlineExpired: return "deadline_expired";
    case RequestStatus::kShed: return "shed";
  }
  return "?";
}

void ExperimentMetrics::add(const RequestOutcome& outcome) {
  if (outcome.status == RequestStatus::kShed) {
    // Shed requests never ran: no response, seek, or bandwidth exists to
    // sample. They only appear in the offered-load counters.
    ++shed_;
    return;
  }
  response_.add(outcome.response.count());
  switch_.add(outcome.switch_time.count());
  seek_.add(outcome.seek.count());
  transfer_.add(outcome.transfer.count());
  bandwidth_.add(outcome.bandwidth().count());
  bytes_.add(outcome.bytes.as_double());
  switches_.add(static_cast<double>(outcome.tape_switches));
  switch (outcome.status) {
    case RequestStatus::kServed:
      ++served_;
      response_served_.add(outcome.response.count());
      if (outcome.met_deadline()) {
        deadline_met_bytes_ += outcome.bytes_served().as_double();
      }
      break;
    case RequestStatus::kPartial: ++partial_; break;
    case RequestStatus::kUnavailable: ++unavailable_; break;
    case RequestStatus::kDeadlineExpired: ++expired_; break;
    case RequestStatus::kShed: break;  // handled above
  }
  bytes_unavailable_sum_ += outcome.bytes_unavailable.as_double();
  failovers_ += outcome.failovers;
  extents_parked_ += outcome.extents_parked;
  if (outcome.extents_parked > 0) ++parked_requests_;
  mount_retries_ += outcome.mount_retries;
  media_retries_ += outcome.media_retries;
  served_from_replica_ += outcome.served_from_replica;
  repaired_ += outcome.repaired;
  latent_hits_ += outcome.latent_hits;
  if (outcome.latent_hits > 0) ++latent_hit_requests_;
}

double ExperimentMetrics::fraction_latent_hit() const {
  if (count() == 0) return 0.0;
  return static_cast<double>(latent_hit_requests_) /
         static_cast<double>(count());
}

double ExperimentMetrics::fraction_unavailable() const {
  const double requested = bytes_.sum();
  if (requested <= 0.0) return 0.0;
  return bytes_unavailable_sum_ / requested;
}

Seconds ExperimentMetrics::mean_response() const {
  return Seconds{response_.mean()};
}
Seconds ExperimentMetrics::mean_served_response() const {
  return Seconds{response_served_.mean()};
}
Seconds ExperimentMetrics::mean_switch() const {
  return Seconds{switch_.mean()};
}
Seconds ExperimentMetrics::mean_seek() const { return Seconds{seek_.mean()}; }
Seconds ExperimentMetrics::mean_transfer() const {
  return Seconds{transfer_.mean()};
}
Bytes ExperimentMetrics::mean_request_bytes() const {
  return Bytes{static_cast<Bytes::value_type>(bytes_.mean())};
}
BytesPerSecond ExperimentMetrics::mean_bandwidth() const {
  return BytesPerSecond{bandwidth_.mean()};
}
BytesPerSecond ExperimentMetrics::aggregate_bandwidth() const {
  return BytesPerSecond{bytes_.sum() / response_.sum()};
}
double ExperimentMetrics::mean_tape_switches() const {
  return switches_.mean();
}

}  // namespace tapesim::metrics
