#include "metrics/queueing.hpp"

#include "util/assert.hpp"

namespace tapesim::metrics {

MG1Estimate mg1_estimate(const SampleSet& service_times,
                         double arrival_rate) {
  TAPESIM_ASSERT_MSG(service_times.count() > 0, "need service samples");
  TAPESIM_ASSERT_MSG(arrival_rate > 0.0, "arrival rate must be positive");
  const double mean = service_times.mean();
  // E[S^2] = Var + mean^2 (population second moment from the samples).
  const double sd = service_times.stddev();
  const double second_moment = sd * sd + mean * mean;

  MG1Estimate estimate;
  estimate.utilization = arrival_rate * mean;
  estimate.stable = estimate.utilization < 1.0;
  if (estimate.stable) {
    const double wq = arrival_rate * second_moment /
                      (2.0 * (1.0 - estimate.utilization));
    estimate.mean_wait = Seconds{wq};
    estimate.mean_sojourn = Seconds{wq + mean};
  }
  return estimate;
}

double saturation_rate(const SampleSet& service_times) {
  TAPESIM_ASSERT_MSG(service_times.count() > 0, "need service samples");
  TAPESIM_ASSERT(service_times.mean() > 0.0);
  return 1.0 / service_times.mean();
}

}  // namespace tapesim::metrics
