#include "metrics/queueing.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tapesim::metrics {

MG1Estimate mg1_estimate(const SampleSet& service_times,
                         double arrival_rate) {
  TAPESIM_ASSERT_MSG(service_times.count() > 0, "need service samples");
  TAPESIM_ASSERT_MSG(arrival_rate > 0.0, "arrival rate must be positive");
  const double mean = service_times.mean();
  // E[S^2] = Var + mean^2 (population second moment from the samples).
  const double sd = service_times.stddev();
  const double second_moment = sd * sd + mean * mean;

  MG1Estimate estimate;
  estimate.utilization = arrival_rate * mean;
  estimate.stable = estimate.utilization < 1.0;
  if (estimate.stable) {
    const double wq = arrival_rate * second_moment /
                      (2.0 * (1.0 - estimate.utilization));
    estimate.mean_wait = Seconds{wq};
    estimate.mean_sojourn = Seconds{wq + mean};
  }
  return estimate;
}

double saturation_rate(const SampleSet& service_times) {
  TAPESIM_ASSERT_MSG(service_times.count() > 0, "need service samples");
  TAPESIM_ASSERT(service_times.mean() > 0.0);
  return 1.0 / service_times.mean();
}

Seconds predicted_recovery_makespan(Bytes lost_bytes, std::uint64_t jobs,
                                    BytesPerSecond drive_rate,
                                    double bandwidth_fraction,
                                    std::uint32_t concurrency,
                                    Seconds per_job_overhead) {
  TAPESIM_ASSERT_MSG(drive_rate.count() > 0.0, "drive rate must be positive");
  TAPESIM_ASSERT_MSG(bandwidth_fraction > 0.0 && bandwidth_fraction <= 1.0,
                     "bandwidth fraction outside (0, 1]");
  TAPESIM_ASSERT(concurrency > 0);
  if (jobs == 0) return Seconds{0.0};
  // Each copy is read then written (two drive occupancies), so a job's
  // drive time is twice its transfer at the effective repair rate.
  const double effective_rate = drive_rate.count() * bandwidth_fraction;
  const double copy_seconds =
      2.0 * (lost_bytes.as_double() / effective_rate +
             static_cast<double>(jobs) * per_job_overhead.count());
  const double servers =
      static_cast<double>(std::min<std::uint64_t>(concurrency, jobs));
  // Fluid phase: total drive time spread across the servers; straggler
  // term: the last job in flight finishes alone (mean-field makespan of
  // parallel repair, Sun et al., arXiv:1701.00335).
  const double mean_job = copy_seconds / static_cast<double>(jobs);
  return Seconds{copy_seconds / servers + mean_job};
}

void ServiceEstimator::observe(Bytes bytes, Seconds service) {
  TAPESIM_ASSERT_MSG(service.count() >= 0.0, "service time cannot be negative");
  const double x = bytes.as_double();
  const double y = service.count();
  ++n_;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_xy_ += x * y;
}

Seconds ServiceEstimator::mean_service() const {
  if (n_ == 0) return Seconds{0.0};
  return Seconds{sum_y_ / static_cast<double>(n_)};
}

Seconds ServiceEstimator::estimate(Bytes bytes) const {
  if (n_ == 0) return Seconds{0.0};
  const auto n = static_cast<double>(n_);
  const double denom = n * sum_xx_ - sum_x_ * sum_x_;
  // One observation, all-equal sizes, or a downward-sloping fit (noise on
  // a near-flat cloud): the line is meaningless, use the mean.
  if (n_ < 2 || denom <= 0.0) return mean_service();
  const double slope = (n * sum_xy_ - sum_x_ * sum_y_) / denom;
  if (slope < 0.0) return mean_service();
  const double intercept = (sum_y_ - slope * sum_x_) / n;
  const double predicted = intercept + slope * bytes.as_double();
  return Seconds{std::max(0.0, predicted)};
}

}  // namespace tapesim::metrics
