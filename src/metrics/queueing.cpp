#include "metrics/queueing.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace tapesim::metrics {

MG1Estimate mg1_estimate(const SampleSet& service_times,
                         double arrival_rate) {
  TAPESIM_ASSERT_MSG(service_times.count() > 0, "need service samples");
  TAPESIM_ASSERT_MSG(arrival_rate > 0.0, "arrival rate must be positive");
  const double mean = service_times.mean();
  // E[S^2] = Var + mean^2 (population second moment from the samples).
  const double sd = service_times.stddev();
  const double second_moment = sd * sd + mean * mean;

  MG1Estimate estimate;
  estimate.utilization = arrival_rate * mean;
  estimate.stable = estimate.utilization < 1.0;
  if (estimate.stable) {
    const double wq = arrival_rate * second_moment /
                      (2.0 * (1.0 - estimate.utilization));
    estimate.mean_wait = Seconds{wq};
    estimate.mean_sojourn = Seconds{wq + mean};
  }
  return estimate;
}

double saturation_rate(const SampleSet& service_times) {
  TAPESIM_ASSERT_MSG(service_times.count() > 0, "need service samples");
  TAPESIM_ASSERT(service_times.mean() > 0.0);
  return 1.0 / service_times.mean();
}

void ServiceEstimator::observe(Bytes bytes, Seconds service) {
  TAPESIM_ASSERT_MSG(service.count() >= 0.0, "service time cannot be negative");
  const double x = bytes.as_double();
  const double y = service.count();
  ++n_;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_xy_ += x * y;
}

Seconds ServiceEstimator::mean_service() const {
  if (n_ == 0) return Seconds{0.0};
  return Seconds{sum_y_ / static_cast<double>(n_)};
}

Seconds ServiceEstimator::estimate(Bytes bytes) const {
  if (n_ == 0) return Seconds{0.0};
  const auto n = static_cast<double>(n_);
  const double denom = n * sum_xx_ - sum_x_ * sum_x_;
  // One observation, all-equal sizes, or a downward-sloping fit (noise on
  // a near-flat cloud): the line is meaningless, use the mean.
  if (n_ < 2 || denom <= 0.0) return mean_service();
  const double slope = (n * sum_xy_ - sum_x_ * sum_y_) / denom;
  if (slope < 0.0) return mean_service();
  const double intercept = (sum_y_ - slope * sum_x_) / n;
  const double predicted = intercept + slope * bytes.as_double();
  return Seconds{std::max(0.0, predicted)};
}

}  // namespace tapesim::metrics
