// Placement plans: the output of every placement scheme.
//
// A plan maps every object to exactly one tape and byte offset (the paper
// rules out striping, Section 2), plus a mount policy telling the retrieval
// scheduler which tapes start mounted and how drives are chosen for
// switches. Plans are built in two stages: membership (assign objects to
// tapes) then alignment (fix on-tape order and offsets, e.g. organ pipe).
#pragma once

#include <span>
#include <vector>

#include "catalog/catalog.hpp"
#include "tape/specs.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"
#include "workload/model.hpp"

namespace tapesim::core {

struct PlacedObject {
  ObjectId object;
  Bytes offset;
  Bytes size;
};

/// How the scheduler picks a drive when an offline tape must be mounted.
enum class ReplacementPolicy {
  /// Parallel batch placement: a fixed set of pinned drives never switches;
  /// the remaining m drives per library handle all switches.
  kFixedBatch,
  /// Baselines ([11], [20]): any drive may switch; the drive holding the
  /// least popular mounted tape is evicted first (proved in [11] to
  /// minimize the switch count together with popularity-ordered tapes).
  kLeastPopular,
};

[[nodiscard]] const char* to_string(ReplacementPolicy p);

struct MountPolicy {
  ReplacementPolicy replacement = ReplacementPolicy::kLeastPopular;
  /// Tapes mounted "during startup time" (outside the measured window).
  std::vector<std::pair<DriveId, TapeId>> initial_mounts;
  /// Indexed by global drive id; pinned drives never unmount their tape.
  /// Empty means nothing is pinned.
  std::vector<bool> drive_pinned;
  /// Indexed by global tape id; accumulated access probability of the tape,
  /// used by kLeastPopular eviction and reported by diagnostics.
  std::vector<double> tape_popularity;

  [[nodiscard]] bool pinned(DriveId d) const {
    return !drive_pinned.empty() && drive_pinned[d.index()];
  }
};

/// On-tape object ordering applied by the alignment stage.
enum class Alignment {
  /// Organ pipe: most popular object in the middle of the occupied region,
  /// alternating outwards ([11], the paper's Step 6).
  kOrganPipe,
  /// Descending probability from the beginning of tape.
  kDescendingProbability,
  /// Keep the membership insertion order (used by the cluster-probability
  /// baseline, which lays clusters out contiguously).
  kGivenOrder,
};

class PlacementPlan {
 public:
  PlacementPlan(const tape::SystemSpec& spec,
                const workload::Workload& workload);

  /// Stage 1: records that `object` lives on `tape` (order of calls defines
  /// the pre-alignment order). Each object may be assigned exactly once.
  void assign(ObjectId object, TapeId tape);

  /// Records an additional copy of an already-assigned object. The copy's
  /// tape must differ from the primary tape and from every other copy of
  /// the object. Typically called after freeze_layout() so align_all()
  /// leaves the primary layout untouched and only lays out the replicas.
  void assign_replica(ObjectId object, TapeId tape);

  /// Marks the current (aligned) layout of every tape immutable, so later
  /// assignments — e.g. replicas — are appended behind it by align_all().
  void freeze_layout();

  /// Stage 2: fixes on-tape offsets for every tape per `alignment`. When a
  /// frozen prefix exists (see adopt_frozen), only objects assigned after
  /// the freeze are reordered; they are appended behind the frozen data.
  void align_all(Alignment alignment);

  /// Copies `previous`'s aligned layout and freezes it: tape contents that
  /// are already written cannot move in a real system, so incremental
  /// placement may only append. The plan's workload must extend the
  /// previous plan's workload (identical ids and sizes for old objects).
  void adopt_frozen(const PlacementPlan& previous);

  /// Bytes still assignable on `tape` under `cap` (planning headroom).
  [[nodiscard]] Bytes remaining_on(TapeId tape, Bytes cap) const;

  /// The tape holding `object`'s primary copy; invalid id when unassigned.
  [[nodiscard]] TapeId tape_of(ObjectId object) const {
    return object_tape_[object.index()];
  }
  /// Tapes holding extra copies of `object` (primary excluded).
  [[nodiscard]] std::span<const TapeId> replicas_of(ObjectId object) const;
  /// True when any object carries at least one extra copy.
  [[nodiscard]] bool replicated() const { return total_replicas_ > 0; }
  /// 1 + the largest per-object replica count (1 when unreplicated).
  [[nodiscard]] std::uint32_t replication_factor() const {
    return 1 + max_replicas_;
  }
  /// Placed objects on `tape`, sorted by offset (valid after align_all).
  [[nodiscard]] std::span<const PlacedObject> on_tape(TapeId tape) const;
  /// Bytes assigned to `tape` (valid from stage 1 onwards).
  [[nodiscard]] Bytes used_on(TapeId tape) const;
  /// Number of tapes with at least one object.
  [[nodiscard]] std::uint32_t tapes_used() const;

  [[nodiscard]] const tape::SystemSpec& spec() const { return *spec_; }
  [[nodiscard]] const workload::Workload& workload() const {
    return *workload_;
  }

  MountPolicy mount_policy;

  /// Derives per-tape accumulated probability into
  /// mount_policy.tape_popularity.
  void compute_tape_popularity();

  /// Every object placed exactly once; no extent overlap; capacity
  /// respected; initial mounts consistent. Aborts on violation.
  void validate() const;

  /// Materializes the indexing database the scheduler resolves against.
  [[nodiscard]] catalog::ObjectCatalog to_catalog() const;

 private:
  const tape::SystemSpec* spec_;
  const workload::Workload* workload_;
  std::vector<TapeId> object_tape_;                ///< by object index
  std::vector<std::vector<PlacedObject>> layout_;  ///< by tape index
  std::vector<Bytes> used_;                        ///< by tape index
  std::vector<std::size_t> frozen_;                ///< immutable prefix len
  std::vector<std::vector<TapeId>> object_replicas_;  ///< by object index
  std::size_t total_replicas_ = 0;
  std::uint32_t max_replicas_ = 0;
  bool aligned_ = false;
};

/// Fills mount_policy.initial_mounts with, per library, its d most popular
/// tapes (requires compute_tape_popularity() first) — the startup state of
/// the least-popular-replacement baselines.
void mount_most_popular(PlacementPlan& plan);

/// Computes the organ-pipe order of `members` (descending-probability input
/// not required): returns the members permuted so the most popular sits in
/// the middle, alternating outwards. Exposed for tests and for the
/// alignment ablation.
[[nodiscard]] std::vector<ObjectId> organ_pipe_order(
    std::span<const ObjectId> members, const workload::Workload& workload);

}  // namespace tapesim::core
