#include "core/load_balance.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace tapesim::core {

const char* to_string(BalancePolicy p) {
  switch (p) {
    case BalancePolicy::kZigZag: return "zig-zag";
    case BalancePolicy::kRoundRobin: return "round-robin";
    case BalancePolicy::kFirstFit: return "first-fit";
    case BalancePolicy::kLeastLoaded: return "least-loaded";
  }
  return "?";
}

std::uint32_t choose_split_width(Bytes cluster_bytes,
                                 std::size_t available_tapes,
                                 const LoadBalanceParams& params) {
  TAPESIM_ASSERT(available_tapes > 0);
  if (params.min_split_chunk.count() == 0) {
    return static_cast<std::uint32_t>(available_tapes);
  }
  const auto width = static_cast<std::uint32_t>(
      cluster_bytes.count() / params.min_split_chunk.count());
  return std::clamp<std::uint32_t>(
      width, 1, static_cast<std::uint32_t>(available_tapes));
}

BalanceAssignment balance_cluster(std::span<const ObjectId> members,
                                  std::span<TapeLoadState> tapes,
                                  const workload::Workload& workload,
                                  const LoadBalanceParams& params) {
  TAPESIM_ASSERT(!members.empty());
  TAPESIM_ASSERT(!tapes.empty());

  std::vector<ObjectId> order{members.begin(), members.end()};
  switch (params.policy) {
    case BalancePolicy::kZigZag:
      // "sort objects in C into increasing order based on load"
      std::sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
        const double la = workload.object_load(a);
        const double lb = workload.object_load(b);
        if (la != lb) return la < lb;
        return a < b;
      });
      break;
    case BalancePolicy::kLeastLoaded:
      // LPT: biggest loads first, each to the emptiest tape.
      std::sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
        const double la = workload.object_load(a);
        const double lb = workload.object_load(b);
        if (la != lb) return la > lb;
        return a < b;
      });
      break;
    case BalancePolicy::kRoundRobin:
    case BalancePolicy::kFirstFit:
      break;  // member order as given
  }

  Bytes cluster_bytes{};
  for (const ObjectId o : order) cluster_bytes += workload.object_size(o);
  const std::uint32_t ndrv =
      choose_split_width(cluster_bytes, tapes.size(), params);

  // Select the ndrv least-loaded tapes for this cluster ("assign ndrv a
  // proper value based on info of C and tapes"), then, per Figure 3,
  // "sort m tapes in decreasing order based on workload" within the
  // selection for the zig-zag walk.
  std::vector<std::size_t> tape_order(tapes.size());
  for (std::size_t i = 0; i < tapes.size(); ++i) tape_order[i] = i;
  std::sort(tape_order.begin(), tape_order.end(),
            [&](std::size_t a, std::size_t b) {
              if (tapes[a].load != tapes[b].load)
                return tapes[a].load < tapes[b].load;
              return tapes[a].tape < tapes[b].tape;
            });
  tape_order.resize(ndrv);
  std::reverse(tape_order.begin(), tape_order.end());

  auto has_room = [&](const TapeLoadState& t, Bytes size) {
    return params.tape_capacity_cap.count() == 0 ||
           t.used + size <= params.tape_capacity_cap;
  };

  BalanceAssignment out;
  out.objects.reserve(order.size());
  out.tapes.reserve(order.size());

  // Figure 3 zig-zag: i walks 1..ndrv-1..0..1.. over the sorted tape list.
  std::int64_t i = 0;
  bool descending = false;  // pseudocode "flag"
  std::size_t member_index = 0;

  // Picks the policy's target tape (an index into `tapes`) for one object.
  auto pick_target = [&](Bytes size) -> std::size_t {
    switch (params.policy) {
      case BalancePolicy::kZigZag:
        if (!descending) {
          ++i;
        } else {
          --i;
        }
        if (i == static_cast<std::int64_t>(ndrv)) {
          descending = true;
          --i;
        }
        if (i == -1) {
          descending = false;
          ++i;
        }
        return tape_order[static_cast<std::size_t>(i)];
      case BalancePolicy::kRoundRobin:
        return tape_order[member_index % ndrv];
      case BalancePolicy::kFirstFit:
        for (std::size_t s = 0; s < ndrv; ++s) {
          if (has_room(tapes[tape_order[s]], size)) return tape_order[s];
        }
        return tape_order[0];  // full; the fallback below handles it
      case BalancePolicy::kLeastLoaded: {
        std::size_t best = tape_order[0];
        for (std::size_t s = 1; s < ndrv; ++s) {
          if (tapes[tape_order[s]].load < tapes[best].load) {
            best = tape_order[s];
          }
        }
        return best;
      }
    }
    return tape_order[0];
  };

  for (const ObjectId o : order) {
    const Bytes size = workload.object_size(o);
    std::size_t target = pick_target(size);
    ++member_index;
    if (!has_room(tapes[target], size)) {
      // Fall back to the least-used tape that still has room.
      std::size_t best = tapes.size();
      for (std::size_t cand = 0; cand < tapes.size(); ++cand) {
        if (!has_room(tapes[cand], size)) continue;
        if (best == tapes.size() || tapes[cand].used < tapes[best].used) {
          best = cand;
        }
      }
      if (best == tapes.size()) {
        out.overflow.push_back(o);
        continue;
      }
      target = best;
    }

    tapes[target].load += workload.object_load(o);
    tapes[target].used += size;
    out.objects.push_back(o);
    out.tapes.push_back(tapes[target].tape);
  }
  return out;
}

}  // namespace tapesim::core
