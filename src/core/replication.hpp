// Replica-aware placement: wraps any PlacementScheme and places r copies.
//
// The wrapped scheme produces the primary layout untouched; this policy
// then freezes it and appends r-1 extra copies of every object on fresh
// tapes (tapes the primaries left empty), with two anti-affinity rules:
// no two copies of an object on one tape (hard), and copies spread across
// libraries (best effort — relaxed only when a library-disjoint layout
// cannot fit). With replicas = 1 the wrapper is a pass-through and the
// plan is bit-identical to the wrapped scheme's.
#pragma once

#include "core/scheme.hpp"

namespace tapesim::core {

class ReplicationPolicy final : public PlacementScheme {
 public:
  struct Params {
    /// Total copies per object (1 = no redundancy, pass-through).
    std::uint32_t replicas = 2;
    /// On-tape ordering applied to the replica layout.
    Alignment alignment = Alignment::kOrganPipe;
    /// Fraction of each replica tape's capacity the packer may fill,
    /// leaving headroom for background repair copies.
    double capacity_utilization = 0.9;
  };

  /// `inner` must outlive the policy (non-owning).
  ReplicationPolicy(const PlacementScheme& inner, Params params);

  [[nodiscard]] std::string name() const override;

  /// Runs the wrapped scheme, then lays out the replicas. Throws
  /// std::runtime_error when the system lacks fresh-tape capacity for the
  /// requested replication factor.
  [[nodiscard]] PlacementPlan place(
      const PlacementContext& context) const override;

 private:
  const PlacementScheme* inner_;
  Params params_;
};

}  // namespace tapesim::core
