#include "core/replication.hpp"

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"

namespace tapesim::core {

ReplicationPolicy::ReplicationPolicy(const PlacementScheme& inner,
                                     Params params)
    : inner_(&inner), params_(params) {
  TAPESIM_ASSERT_MSG(params_.replicas >= 1, "replicas counts total copies");
  TAPESIM_ASSERT_MSG(params_.capacity_utilization > 0.0 &&
                         params_.capacity_utilization <= 1.0,
                     "capacity_utilization must be in (0, 1]");
}

std::string ReplicationPolicy::name() const {
  if (params_.replicas <= 1) return inner_->name();
  return inner_->name() + "+r" + std::to_string(params_.replicas);
}

PlacementPlan ReplicationPolicy::place(const PlacementContext& context) const {
  PlacementPlan plan = inner_->place(context);
  if (params_.replicas <= 1) return plan;  // pass-through: bit-identical

  const tape::SystemSpec& spec = *context.spec;
  const std::uint32_t tapes_per_lib = spec.library.tapes_per_library;
  const std::uint32_t num_libs = spec.num_libraries;
  const Bytes cap = spec.library.tape_capacity;
  const auto budget = Bytes{static_cast<Bytes::value_type>(
      std::floor(cap.as_double() * params_.capacity_utilization))};

  plan.freeze_layout();

  // Replica copies go on fresh tapes — tapes the primary layout left
  // empty — so the wrapped scheme's layout and mount policy stay intact.
  std::vector<std::vector<TapeId>> fresh(num_libs);
  for (std::uint32_t t = 0; t < spec.total_tapes(); ++t) {
    if (plan.used_on(TapeId{t}) == Bytes{0}) {
      fresh[t / tapes_per_lib].push_back(TapeId{t});
    }
  }

  auto lib_of = [&](TapeId t) { return t.value() / tapes_per_lib; };

  auto holds_copy = [&](ObjectId o, TapeId t) {
    if (plan.tape_of(o) == t) return true;
    for (const TapeId r : plan.replicas_of(o)) {
      if (r == t) return true;
    }
    return false;
  };
  auto lib_holds_copy = [&](ObjectId o, std::uint32_t lib) {
    if (lib_of(plan.tape_of(o)) == lib) return true;
    for (const TapeId r : plan.replicas_of(o)) {
      if (lib_of(r) == lib) return true;
    }
    return false;
  };

  // First fresh tape in `lib` with room for `o` that doesn't already hold a
  // copy; invalid id when none fits.
  auto find_in_lib = [&](ObjectId o, Bytes size, std::uint32_t lib) {
    const Bytes limit = size > budget ? cap : budget;
    for (const TapeId t : fresh[lib]) {
      if (holds_copy(o, t)) continue;
      if (plan.used_on(t) + size <= limit) return t;
    }
    return TapeId{};
  };

  const workload::Workload& workload = *context.workload;
  for (std::uint32_t round = 1; round < params_.replicas; ++round) {
    // Walk primary tapes in order so each replica round mirrors the
    // primary layout deterministically.
    for (std::uint32_t pt = 0; pt < spec.total_tapes(); ++pt) {
      for (const PlacedObject& p : plan.on_tape(TapeId{pt})) {
        if (plan.tape_of(p.object) != TapeId{pt}) continue;  // replica entry
        const Bytes size = workload.object_size(p.object);
        TapeId target{};
        // Pass 1: library anti-affinity — rotate through libraries that
        // hold no copy yet, starting at a round-dependent offset so copies
        // spread instead of piling on one library.
        const std::uint32_t base = (lib_of(TapeId{pt}) + round) % num_libs;
        for (std::uint32_t i = 0; i < num_libs && !target.valid(); ++i) {
          const std::uint32_t lib = (base + i) % num_libs;
          if (lib_holds_copy(p.object, lib)) continue;
          target = find_in_lib(p.object, size, lib);
        }
        // Pass 2: relax the library rule (tape anti-affinity stays hard).
        for (std::uint32_t i = 0; i < num_libs && !target.valid(); ++i) {
          target = find_in_lib(p.object, size, (base + i) % num_libs);
        }
        if (!target.valid()) {
          throw std::runtime_error(
              "ReplicationPolicy: no tape can hold a copy of object " +
              std::to_string(p.object.value()) + " (replication factor " +
              std::to_string(params_.replicas) + " exceeds free capacity)");
        }
        plan.assign_replica(p.object, target);
      }
    }
  }

  plan.align_all(params_.alignment);
  plan.compute_tape_popularity();
  plan.validate();
  return plan;
}

}  // namespace tapesim::core
