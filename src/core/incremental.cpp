#include "core/incremental.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace tapesim::core {

IncrementalParallelBatch::IncrementalParallelBatch(IncrementalParams params)
    : params_(params) {}

PlacementPlan IncrementalParallelBatch::place_initial(
    const PlacementContext& context) const {
  return ParallelBatchPlacement(params_.base).place(context);
}

PlacementPlan IncrementalParallelBatch::place_next(
    const PlacementContext& context, const PlacementPlan& previous,
    ObjectId first_new) const {
  TAPESIM_ASSERT(context.workload != nullptr && context.spec != nullptr);
  if (context.clusters == nullptr) {
    throw std::runtime_error("incremental placement requires clusters");
  }
  const workload::Workload& workload = *context.workload;
  const tape::SystemSpec& spec = *context.spec;
  const std::uint32_t d = spec.library.drives_per_library;
  const std::uint32_t m = params_.base.switch_drives;
  if (m < 1 || m >= d) {
    throw std::runtime_error("switch drives m must be in [1, d-1]");
  }
  const double k = params_.base.capacity_utilization;
  const Bytes tape_cap{static_cast<Bytes::value_type>(
      k * spec.library.tape_capacity.as_double())};

  PlacementPlan plan(spec, workload);
  plan.adopt_frozen(previous);

  // New members of each cluster, in descending cluster density.
  struct NewUnit {
    std::vector<ObjectId> members;
    Bytes bytes{};
    double probability = 0.0;
  };
  std::vector<NewUnit> units;
  for (const cluster::Cluster& c : context.clusters->clusters()) {
    NewUnit unit;
    for (const ObjectId o : c.members) {
      if (o.value() < first_new.value()) continue;
      unit.members.push_back(o);
      unit.bytes += workload.object_size(o);
      unit.probability += workload.object_probability(o);
    }
    if (!unit.members.empty()) units.push_back(std::move(unit));
  }
  std::sort(units.begin(), units.end(), [](const NewUnit& a, const NewUnit& b) {
    const double da = a.probability / a.bytes.as_double();
    const double db = b.probability / b.bytes.as_double();
    if (da != db) return da > db;
    return a.members.front() < b.members.front();
  });

  // Per-batch residual state, earliest batch first.
  const std::uint32_t batches = ParallelBatchPlacement::batch_count(spec, m);
  LoadBalanceParams balance = params_.base.balance;
  balance.tape_capacity_cap = tape_cap;

  struct BatchState {
    std::vector<TapeLoadState> tapes;
    Bytes remaining{};
  };
  std::vector<BatchState> state(batches);
  for (std::uint32_t b = 0; b < batches; ++b) {
    for (const TapeId t : ParallelBatchPlacement::batch_tapes(spec, m, b)) {
      double load = 0.0;
      for (const PlacedObject& p : plan.on_tape(t)) {
        load += workload.object_load(p.object);
      }
      state[b].tapes.push_back(TapeLoadState{t, load, plan.used_on(t)});
      state[b].remaining += plan.remaining_on(t, tape_cap);
    }
  }

  // First-fit by density over batches; overflow spills to later batches.
  for (auto& unit : units) {
    std::vector<ObjectId> pending = std::move(unit.members);
    for (std::uint32_t b = 0; b < batches && !pending.empty(); ++b) {
      if (state[b].remaining.count() == 0) continue;
      const auto assignment =
          balance_cluster(pending, state[b].tapes, workload, balance);
      Bytes placed{};
      for (std::size_t i = 0; i < assignment.objects.size(); ++i) {
        plan.assign(assignment.objects[i], assignment.tapes[i]);
        placed += workload.object_size(assignment.objects[i]);
      }
      state[b].remaining =
          placed >= state[b].remaining ? Bytes{0} : state[b].remaining - placed;
      pending = assignment.overflow;
    }
    if (!pending.empty()) {
      throw std::runtime_error(
          "incremental placement: system capacity exhausted");
    }
  }

  plan.align_all(params_.base.alignment);

  // Mount policy identical in structure to the batch scheme's.
  const std::uint32_t n = spec.num_libraries;
  const std::uint32_t t = spec.library.tapes_per_library;
  const std::uint32_t always = d - m;
  plan.mount_policy.replacement = ReplacementPolicy::kFixedBatch;
  plan.mount_policy.drive_pinned.assign(spec.total_drives(), false);
  for (std::uint32_t lib = 0; lib < n; ++lib) {
    for (std::uint32_t s = 0; s < always; ++s) {
      const DriveId drive{lib * d + s};
      plan.mount_policy.drive_pinned[drive.index()] = true;
      plan.mount_policy.initial_mounts.emplace_back(drive,
                                                    TapeId{lib * t + s});
    }
    for (std::uint32_t s = 0; s < m; ++s) {
      plan.mount_policy.initial_mounts.emplace_back(
          DriveId{lib * d + always + s}, TapeId{lib * t + always + s});
    }
  }
  plan.compute_tape_popularity();
  plan.validate();
  return plan;
}

}  // namespace tapesim::core
