// Parallel batch placement — the paper's proposed scheme (Section 5).
//
// Tapes are organized into batches: the first batch (n * (d - m) tapes,
// d - m per library) stays mounted forever on pinned drives; each further
// batch (n * m tapes, m per library) rotates through the m switch drives
// per library. Objects are sorted by probability density, partitioned into
// batch-sized sublists at cluster granularity (Step 4's refinement), spread
// across the batch's tapes by the Figure 3 greedy balancer (libraries
// interleaved for cross-library parallelism), and organ-pipe aligned within
// each tape (Step 6).
#pragma once

#include <cstdint>
#include <vector>

#include "core/load_balance.hpp"
#include "core/scheme.hpp"

namespace tapesim::core {

struct ParallelBatchParams {
  /// m: switch drives per library. The paper sweeps 1..d-1 (Figure 5) and
  /// settles on 4 for the rest of the evaluation.
  std::uint32_t switch_drives = 4;
  /// k: tape capacity utilization coefficient (< 1), Step 3.
  double capacity_utilization = 0.9;
  /// Figure 3 balancer knobs (split width heuristic, per-tape cap is
  /// derived from capacity_utilization).
  LoadBalanceParams balance;
  /// Step 4 cluster-aware sublist refinement. Disabling it reverts to the
  /// pure density-sorted object list (ablation A1).
  bool cluster_refinement = true;
  /// Step 6 alignment (ablation A3 swaps this).
  Alignment alignment = Alignment::kOrganPipe;
};

class ParallelBatchPlacement final : public PlacementScheme {
 public:
  explicit ParallelBatchPlacement(ParallelBatchParams params = {});

  [[nodiscard]] std::string name() const override {
    return "parallel batch placement";
  }
  [[nodiscard]] PlacementPlan place(
      const PlacementContext& context) const override;

  [[nodiscard]] const ParallelBatchParams& params() const { return params_; }

  /// The tape ids of batch `index` (0 = always-mounted batch), interleaved
  /// across libraries. Exposed for tests.
  [[nodiscard]] static std::vector<TapeId> batch_tapes(
      const tape::SystemSpec& spec, std::uint32_t switch_drives,
      std::uint32_t index);

  /// Number of batches the system can form with these parameters.
  [[nodiscard]] static std::uint32_t batch_count(
      const tape::SystemSpec& spec, std::uint32_t switch_drives);

 private:
  ParallelBatchParams params_;
};

}  // namespace tapesim::core
