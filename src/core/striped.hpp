// Object striping over tapes — the related-work alternative the paper
// rejects (Section 2: striping on sequential-access tapes "suffers from
// long synchronization latencies"; the striped system "may perform worse
// than non-striping" [9, 13, 19, 10]).
//
// Our object model stores each object as one extent, so striping is modeled
// by *sharding the workload*: every object becomes `width` shard-objects of
// 1/width the size, and every request asks for all shards of each of its
// objects. A request then completes only when the slowest shard arrives —
// precisely the synchronization penalty of tape striping. Shards of one
// object are placed on `width` distinct tapes of a stripe group, filling
// groups in object-probability order.
#pragma once

#include "core/scheme.hpp"

namespace tapesim::core {

/// The sharded workload plus the shard -> original object mapping.
struct ShardedWorkload {
  workload::Workload workload;
  std::uint32_t width = 1;
  /// Indexed by shard object id; the original object it came from.
  std::vector<ObjectId> origin;
};

/// Splits every object into up to `width` shards (objects smaller than
/// `min_shard * 2` stay whole; shard sizes differ by at most one byte).
[[nodiscard]] ShardedWorkload shard_workload(
    const workload::Workload& original, std::uint32_t width,
    Bytes min_shard = 1_GB);

struct StripedParams {
  double capacity_utilization = 0.9;
  /// Stripe width (tapes per stripe group).
  std::uint32_t width = 4;
};

/// Places a *sharded* workload: consecutive stripe groups of `width` tapes
/// (library-interleaved); each object's shards land round-robin on the
/// group's tapes. Mount policy: least popular, like the other baselines.
class StripedPlacement final : public PlacementScheme {
 public:
  explicit StripedPlacement(StripedParams params = {});

  [[nodiscard]] std::string name() const override {
    return "striped placement";
  }
  [[nodiscard]] PlacementPlan place(
      const PlacementContext& context) const override;

 private:
  StripedParams params_;
};

}  // namespace tapesim::core
