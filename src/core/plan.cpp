#include "core/plan.hpp"

#include <algorithm>
#include <deque>

#include "util/assert.hpp"

namespace tapesim::core {

const char* to_string(ReplacementPolicy p) {
  switch (p) {
    case ReplacementPolicy::kFixedBatch: return "fixed-batch";
    case ReplacementPolicy::kLeastPopular: return "least-popular";
  }
  return "?";
}

PlacementPlan::PlacementPlan(const tape::SystemSpec& spec,
                             const workload::Workload& workload)
    : spec_(&spec),
      workload_(&workload),
      object_tape_(workload.object_count()),
      layout_(spec.total_tapes()),
      used_(spec.total_tapes()),
      frozen_(spec.total_tapes(), 0),
      object_replicas_(workload.object_count()) {}

void PlacementPlan::assign(ObjectId object, TapeId tape) {
  TAPESIM_ASSERT(object.valid() && object.index() < object_tape_.size());
  TAPESIM_ASSERT_MSG(!object_tape_[object.index()].valid(),
                     "object assigned to two tapes");
  TAPESIM_ASSERT(tape.valid() && tape.index() < layout_.size());
  const Bytes size = workload_->object_size(object);
  TAPESIM_ASSERT_MSG(used_[tape.index()] + size <=
                         spec_->library.tape_capacity,
                     "tape capacity exceeded");
  object_tape_[object.index()] = tape;
  layout_[tape.index()].push_back(PlacedObject{object, Bytes{0}, size});
  used_[tape.index()] += size;
}

void PlacementPlan::assign_replica(ObjectId object, TapeId tape) {
  TAPESIM_ASSERT(object.valid() && object.index() < object_tape_.size());
  TAPESIM_ASSERT_MSG(object_tape_[object.index()].valid(),
                     "replica of an unassigned object");
  TAPESIM_ASSERT(tape.valid() && tape.index() < layout_.size());
  TAPESIM_ASSERT_MSG(object_tape_[object.index()] != tape,
                     "replica on the primary's tape");
  auto& copies = object_replicas_[object.index()];
  TAPESIM_ASSERT_MSG(
      std::find(copies.begin(), copies.end(), tape) == copies.end(),
      "two copies of an object on one tape");
  const Bytes size = workload_->object_size(object);
  TAPESIM_ASSERT_MSG(used_[tape.index()] + size <=
                         spec_->library.tape_capacity,
                     "tape capacity exceeded");
  copies.push_back(tape);
  layout_[tape.index()].push_back(PlacedObject{object, Bytes{0}, size});
  used_[tape.index()] += size;
  ++total_replicas_;
  max_replicas_ = std::max(max_replicas_,
                           static_cast<std::uint32_t>(copies.size()));
}

void PlacementPlan::freeze_layout() {
  TAPESIM_ASSERT_MSG(aligned_, "freeze_layout() requires align_all() first");
  for (std::uint32_t t = 0; t < layout_.size(); ++t) {
    frozen_[t] = layout_[t].size();
  }
}

std::span<const TapeId> PlacementPlan::replicas_of(ObjectId object) const {
  TAPESIM_ASSERT(object.valid() && object.index() < object_replicas_.size());
  return object_replicas_[object.index()];
}

void PlacementPlan::align_all(Alignment alignment) {
  for (std::uint32_t t = 0; t < layout_.size(); ++t) {
    auto& objects = layout_[t];
    const std::size_t frozen = frozen_[t];
    if (objects.size() <= frozen) continue;

    std::vector<ObjectId> order;
    order.reserve(objects.size() - frozen);
    for (std::size_t j = frozen; j < objects.size(); ++j) {
      order.push_back(objects[j].object);
    }

    switch (alignment) {
      case Alignment::kOrganPipe:
        order = organ_pipe_order(order, *workload_);
        break;
      case Alignment::kDescendingProbability:
        std::stable_sort(order.begin(), order.end(),
                         [&](ObjectId a, ObjectId b) {
                           return workload_->object_probability(a) >
                                  workload_->object_probability(b);
                         });
        break;
      case Alignment::kGivenOrder:
        break;
    }

    objects.resize(frozen);
    Bytes offset = frozen == 0
                       ? Bytes{0}
                       : objects.back().offset + objects.back().size;
    for (const ObjectId o : order) {
      const Bytes size = workload_->object_size(o);
      objects.push_back(PlacedObject{o, offset, size});
      offset += size;
    }
  }
  aligned_ = true;
}

void PlacementPlan::adopt_frozen(const PlacementPlan& previous) {
  TAPESIM_ASSERT_MSG(previous.aligned_,
                     "can only adopt an aligned (finalized) plan");
  TAPESIM_ASSERT_MSG(!previous.replicated(),
                     "incremental placement over a replicated plan is "
                     "not supported");
  TAPESIM_ASSERT(previous.layout_.size() == layout_.size());
  TAPESIM_ASSERT_MSG(
      previous.workload().object_count() <= workload_->object_count(),
      "the new workload must extend the previous one");
  for (std::uint32_t t = 0; t < layout_.size(); ++t) {
    TAPESIM_ASSERT_MSG(layout_[t].empty(),
                       "adopt_frozen requires a fresh plan");
    layout_[t] = previous.layout_[t];
    used_[t] = previous.used_[t];
    frozen_[t] = layout_[t].size();
    for (const PlacedObject& p : layout_[t]) {
      TAPESIM_ASSERT_MSG(workload_->object_size(p.object) == p.size,
                         "old object changed size in the new workload");
      object_tape_[p.object.index()] = TapeId{t};
    }
  }
}

Bytes PlacementPlan::remaining_on(TapeId tape, Bytes cap) const {
  const Bytes used = used_[tape.index()];
  return used >= cap ? Bytes{0} : cap - used;
}

std::span<const PlacedObject> PlacementPlan::on_tape(TapeId tape) const {
  TAPESIM_ASSERT(tape.valid() && tape.index() < layout_.size());
  return layout_[tape.index()];
}

Bytes PlacementPlan::used_on(TapeId tape) const {
  TAPESIM_ASSERT(tape.valid() && tape.index() < used_.size());
  return used_[tape.index()];
}

std::uint32_t PlacementPlan::tapes_used() const {
  std::uint32_t count = 0;
  for (const auto& objects : layout_) {
    if (!objects.empty()) ++count;
  }
  return count;
}

void PlacementPlan::compute_tape_popularity() {
  mount_policy.tape_popularity.assign(layout_.size(), 0.0);
  for (std::uint32_t t = 0; t < layout_.size(); ++t) {
    double p = 0.0;
    for (const PlacedObject& obj : layout_[t]) {
      p += workload_->object_probability(obj.object);
    }
    mount_policy.tape_popularity[t] = p;
  }
}

void PlacementPlan::validate() const {
  TAPESIM_ASSERT_MSG(aligned_, "validate() requires align_all() first");
  for (std::size_t i = 0; i < object_tape_.size(); ++i) {
    TAPESIM_ASSERT_MSG(object_tape_[i].valid(),
                       "object missing from the plan");
  }
  std::size_t placed = 0;
  for (std::uint32_t t = 0; t < layout_.size(); ++t) {
    const auto& objects = layout_[t];
    Bytes used{};
    for (std::size_t i = 0; i < objects.size(); ++i) {
      const PlacedObject& p = objects[i];
      const auto& copies = object_replicas_[p.object.index()];
      TAPESIM_ASSERT_MSG(
          object_tape_[p.object.index()] == TapeId{t} ||
              std::find(copies.begin(), copies.end(), TapeId{t}) !=
                  copies.end(),
          "layout entry matches no copy of its object");
      TAPESIM_ASSERT(p.size == workload_->object_size(p.object));
      if (i > 0) {
        TAPESIM_ASSERT_MSG(
            objects[i - 1].offset + objects[i - 1].size == p.offset,
            "alignment left a gap or overlap");
      } else {
        TAPESIM_ASSERT(p.offset == Bytes{0});
      }
      used += p.size;
    }
    TAPESIM_ASSERT(used == used_[t]);
    TAPESIM_ASSERT_MSG(used <= spec_->library.tape_capacity,
                       "tape over capacity");
    placed += objects.size();
  }
  TAPESIM_ASSERT(placed == workload_->object_count() + total_replicas_);

  // Mount policy sanity.
  std::vector<bool> drive_used(spec_->total_drives(), false);
  std::vector<bool> tape_mounted(spec_->total_tapes(), false);
  for (const auto& [drive, tp] : mount_policy.initial_mounts) {
    TAPESIM_ASSERT(drive.valid() && drive.value() < spec_->total_drives());
    TAPESIM_ASSERT(tp.valid() && tp.value() < spec_->total_tapes());
    TAPESIM_ASSERT_MSG(!drive_used[drive.index()],
                       "two tapes mounted on one drive");
    TAPESIM_ASSERT_MSG(!tape_mounted[tp.index()],
                       "tape mounted on two drives");
    drive_used[drive.index()] = true;
    tape_mounted[tp.index()] = true;
    // A tape must be mounted in its own library.
    const auto d = spec_->library.drives_per_library;
    const auto t = spec_->library.tapes_per_library;
    TAPESIM_ASSERT_MSG(drive.value() / d == tp.value() / t,
                       "initial mount crosses libraries");
  }
  if (!mount_policy.drive_pinned.empty()) {
    TAPESIM_ASSERT(mount_policy.drive_pinned.size() == spec_->total_drives());
    for (std::uint32_t d = 0; d < spec_->total_drives(); ++d) {
      if (mount_policy.drive_pinned[d]) {
        TAPESIM_ASSERT_MSG(drive_used[d],
                           "pinned drive has no initial mount");
      }
    }
  }
}

catalog::ObjectCatalog PlacementPlan::to_catalog() const {
  TAPESIM_ASSERT_MSG(aligned_, "catalog requires aligned offsets");
  catalog::ObjectCatalog cat(spec_->total_tapes());
  const auto tapes_per_lib = spec_->library.tapes_per_library;
  // Primaries first (insert_replica requires the primary to exist), then
  // the extra copies.
  for (std::uint32_t t = 0; t < layout_.size(); ++t) {
    for (const PlacedObject& p : layout_[t]) {
      if (object_tape_[p.object.index()] != TapeId{t}) continue;
      const bool ok = cat.insert(catalog::ObjectRecord{
          p.object, p.size, LibraryId{t / tapes_per_lib}, TapeId{t},
          p.offset});
      TAPESIM_ASSERT(ok);
    }
  }
  if (total_replicas_ > 0) {
    for (std::uint32_t t = 0; t < layout_.size(); ++t) {
      for (const PlacedObject& p : layout_[t]) {
        if (object_tape_[p.object.index()] == TapeId{t}) continue;
        const bool ok = cat.insert_replica(catalog::ObjectRecord{
            p.object, p.size, LibraryId{t / tapes_per_lib}, TapeId{t},
            p.offset});
        TAPESIM_ASSERT(ok);
      }
    }
  }
  return cat;
}

void mount_most_popular(PlacementPlan& plan) {
  const tape::SystemSpec& spec = plan.spec();
  const auto& popularity = plan.mount_policy.tape_popularity;
  TAPESIM_ASSERT_MSG(popularity.size() == spec.total_tapes(),
                     "compute_tape_popularity() must run first");
  const std::uint32_t d = spec.library.drives_per_library;
  const std::uint32_t t = spec.library.tapes_per_library;
  for (std::uint32_t lib = 0; lib < spec.num_libraries; ++lib) {
    std::vector<std::uint32_t> slots(t);
    for (std::uint32_t s = 0; s < t; ++s) slots[s] = lib * t + s;
    std::sort(slots.begin(), slots.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (popularity[a] != popularity[b])
                  return popularity[a] > popularity[b];
                return a < b;
              });
    for (std::uint32_t i = 0; i < d; ++i) {
      plan.mount_policy.initial_mounts.emplace_back(DriveId{lib * d + i},
                                                    TapeId{slots[i]});
    }
  }
}

std::vector<ObjectId> organ_pipe_order(std::span<const ObjectId> members,
                                       const workload::Workload& workload) {
  std::vector<ObjectId> by_prob{members.begin(), members.end()};
  std::sort(by_prob.begin(), by_prob.end(), [&](ObjectId a, ObjectId b) {
    const double pa = workload.object_probability(a);
    const double pb = workload.object_probability(b);
    if (pa != pb) return pa > pb;
    return a < b;
  });
  // Most popular first; alternate sides so it ends up in the middle.
  std::deque<ObjectId> arrangement;
  bool to_back = true;
  for (const ObjectId o : by_prob) {
    if (to_back) {
      arrangement.push_back(o);
    } else {
      arrangement.push_front(o);
    }
    to_back = !to_back;
  }
  return {arrangement.begin(), arrangement.end()};
}

}  // namespace tapesim::core
