// Greedy tape load balancing (Figure 3 of the paper).
//
// Splits the objects of a cluster across the tapes of a batch so per-tape
// load (sum of P(O) * size(O)) stays balanced and a request touching the
// cluster can stream from several drives at once. The zig-zag index walk
// reproduces the paper's pseudocode exactly; capacity is additionally
// respected (the paper's batch sizing makes overflow unlikely but our
// balancer must never produce an invalid plan).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"
#include "workload/model.hpp"

namespace tapesim::core {

/// Mutable per-tape state threaded through successive balance calls.
struct TapeLoadState {
  TapeId tape;
  double load = 0.0;  ///< Accumulated P(O) * size(O).
  Bytes used{};       ///< Accumulated bytes (capacity tracking).
};

/// How objects of a cluster are distributed over the selected tapes.
enum class BalancePolicy {
  /// Figure 3's boustrophedon walk over load-sorted tapes (the paper's
  /// algorithm and the default).
  kZigZag,
  /// Plain round-robin in member order, ignoring loads.
  kRoundRobin,
  /// Each object goes to the first tape with byte capacity left.
  kFirstFit,
  /// Each object goes to the currently least-loaded tape (greedy LPT-style
  /// when members are sorted by decreasing load).
  kLeastLoaded,
};

[[nodiscard]] const char* to_string(BalancePolicy p);

struct LoadBalanceParams {
  /// A cluster is spread over roughly ceil(bytes / min_split_chunk) tapes:
  /// splitting finer than this makes the per-tape transfer shorter than the
  /// overheads it is meant to hide. Default 8 GB (~100 s of LTO-3
  /// streaming, the magnitude of one tape switch).
  Bytes min_split_chunk{8ULL * 1000 * 1000 * 1000};
  /// Hard per-tape byte cap (k * C_t). Zero disables capacity checking.
  Bytes tape_capacity_cap{0};
  /// Distribution policy (ablation A2 swaps this).
  BalancePolicy policy = BalancePolicy::kZigZag;
};

/// Result of balancing one cluster: parallel arrays member -> tape, plus
/// any members that fit no tape in the batch (capacity fragmentation) and
/// must spill into the next batch.
struct BalanceAssignment {
  std::vector<ObjectId> objects;
  std::vector<TapeId> tapes;
  std::vector<ObjectId> overflow;
};

/// The paper's heuristic for "assign ndrv a proper value based on info of C
/// and tapes": enough tapes that each receives at least min_split_chunk,
/// clamped to [1, tapes.size()].
[[nodiscard]] std::uint32_t choose_split_width(Bytes cluster_bytes,
                                               std::size_t available_tapes,
                                               const LoadBalanceParams& params);

/// Balances `members` (one cluster) across `tapes`, updating the running
/// loads. Implements Figure 3: members sorted by increasing load, tapes by
/// decreasing workload, zig-zag assignment over the first `ndrv` tapes.
/// If a zig-zag target tape lacks capacity, the least-used tape with room
/// is substituted; objects fitting no tape land in `overflow`.
BalanceAssignment balance_cluster(std::span<const ObjectId> members,
                                  std::span<TapeLoadState> tapes,
                                  const workload::Workload& workload,
                                  const LoadBalanceParams& params);

}  // namespace tapesim::core
