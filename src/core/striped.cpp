#include "core/striped.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace tapesim::core {

ShardedWorkload shard_workload(const workload::Workload& original,
                               std::uint32_t width, Bytes min_shard) {
  TAPESIM_ASSERT(width >= 1);
  std::vector<ObjectId> origin;

  // Shard objects; remember each original's shard-id range.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> range(
      original.object_count());
  std::vector<workload::ObjectInfo> objects;
  for (const workload::ObjectInfo& o : original.objects()) {
    std::uint32_t shards = width;
    if (min_shard.count() > 0) {
      const auto by_size = static_cast<std::uint32_t>(
          o.size.count() / std::max<Bytes::value_type>(1, min_shard.count()));
      shards = std::clamp<std::uint32_t>(by_size, 1, width);
    }
    // Never produce empty shards, whatever the parameters.
    shards = std::min<std::uint32_t>(
        shards, static_cast<std::uint32_t>(
                    std::min<Bytes::value_type>(o.size.count(), width)));
    shards = std::max<std::uint32_t>(shards, 1);
    const auto first = static_cast<std::uint32_t>(objects.size());
    const Bytes::value_type base = o.size.count() / shards;
    Bytes::value_type leftover = o.size.count() % shards;
    for (std::uint32_t s = 0; s < shards; ++s) {
      Bytes::value_type size = base + (s < leftover ? 1 : 0);
      objects.push_back(workload::ObjectInfo{
          ObjectId{static_cast<std::uint32_t>(objects.size())}, Bytes{size}});
      origin.push_back(o.id);
    }
    range[o.id.index()] = {first, first + shards};
  }

  std::vector<workload::Request> requests;
  requests.reserve(original.request_count());
  for (const workload::Request& r : original.requests()) {
    workload::Request sharded;
    sharded.id = r.id;
    sharded.probability = r.probability;
    for (const ObjectId o : r.objects) {
      for (std::uint32_t s = range[o.index()].first;
           s < range[o.index()].second; ++s) {
        sharded.objects.push_back(ObjectId{s});
      }
    }
    requests.push_back(std::move(sharded));
  }

  ShardedWorkload result{
      workload::Workload{std::move(objects), std::move(requests)}, width,
      std::move(origin)};
  result.workload.validate();
  return result;
}

StripedPlacement::StripedPlacement(StripedParams params) : params_(params) {}

PlacementPlan StripedPlacement::place(const PlacementContext& context) const {
  TAPESIM_ASSERT(context.workload != nullptr && context.spec != nullptr);
  const workload::Workload& workload = *context.workload;
  const tape::SystemSpec& spec = *context.spec;
  const double k = params_.capacity_utilization;
  if (!(k > 0.0 && k <= 1.0)) {
    throw std::runtime_error("capacity utilization k must be in (0, 1]");
  }
  if (params_.width < 1 || params_.width > spec.total_tapes()) {
    throw std::runtime_error("stripe width out of range");
  }

  const Bytes cap{static_cast<Bytes::value_type>(
      k * spec.library.tape_capacity.as_double())};
  const std::uint32_t n = spec.num_libraries;
  const std::uint32_t t = spec.library.tapes_per_library;
  const std::uint32_t w = params_.width;

  auto rank_to_tape = [&](std::uint32_t rank) {
    const std::uint32_t lib = rank % n;
    const std::uint32_t slot = rank / n;
    if (slot >= t) {
      throw std::runtime_error(
          "striped placement: workload exceeds system capacity");
    }
    return TapeId{lib * t + slot};
  };

  // Original objects in descending probability (shards of one original are
  // contiguous in id space and share its probability).
  std::vector<ObjectId> order(workload.object_count());
  for (std::uint32_t i = 0; i < workload.object_count(); ++i) {
    order[i] = ObjectId{i};
  }
  std::stable_sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
    return workload.object_probability(a) > workload.object_probability(b);
  });

  PlacementPlan plan(spec, workload);
  std::uint32_t group = 0;                 // stripe group index
  std::vector<Bytes> used(w, Bytes{0});    // usage within the open group
  std::uint32_t next_lane = 0;
  for (const ObjectId o : order) {
    const Bytes size = workload.object_size(o);
    // Advance to a fresh group when the target lane cannot take the shard.
    if (used[next_lane] + size > cap) {
      ++group;
      std::fill(used.begin(), used.end(), Bytes{0});
      next_lane = 0;
    }
    plan.assign(o, rank_to_tape(group * w + next_lane));
    used[next_lane] += size;
    next_lane = (next_lane + 1) % w;
  }

  plan.align_all(Alignment::kGivenOrder);
  plan.mount_policy.replacement = ReplacementPolicy::kLeastPopular;
  plan.compute_tape_popularity();
  mount_most_popular(plan);
  plan.validate();
  return plan;
}

}  // namespace tapesim::core
