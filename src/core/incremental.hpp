// Incremental (periodic) placement — the paper's future-work extension.
//
// "In a real system, objects are moved to tapes periodically. When we place
// objects on tapes, we only have the local knowledge of object probability
// and relationship." This scheme models exactly that: the first generation
// is placed by parallel batch placement; every later generation may only
// *append* — data already on tape cannot move — so new clusters are spread
// into whatever capacity the batches have left, most popular first.
// bench_incremental quantifies the resulting drift against an oracle that
// re-places the cumulative workload from scratch each round.
#pragma once

#include "core/parallel_batch.hpp"

namespace tapesim::core {

struct IncrementalParams {
  ParallelBatchParams base;
};

class IncrementalParallelBatch {
 public:
  explicit IncrementalParallelBatch(IncrementalParams params = {});

  /// Generation 0: identical to ParallelBatchPlacement::place.
  [[nodiscard]] PlacementPlan place_initial(
      const PlacementContext& context) const;

  /// Generation k > 0: `context.workload` must extend `previous`'s
  /// workload; `first_new` is the id of the first object added this round.
  /// Old objects keep their exact tape and offset; new clusters are
  /// balanced into remaining batch capacity in descending probability
  /// density (earliest batch with room first, preserving the skew as far
  /// as an append-only policy can).
  [[nodiscard]] PlacementPlan place_next(const PlacementContext& context,
                                         const PlacementPlan& previous,
                                         ObjectId first_new) const;

  [[nodiscard]] const IncrementalParams& params() const { return params_; }

 private:
  IncrementalParams params_;
};

}  // namespace tapesim::core
