// The placement-scheme interface shared by the paper's scheme and the two
// baselines it is evaluated against (plus this repo's ablation schemes).
#pragma once

#include <memory>
#include <string>

#include "cluster/hierarchy.hpp"
#include "core/plan.hpp"
#include "tape/specs.hpp"
#include "workload/model.hpp"

namespace tapesim::core {

/// Everything a scheme may consult while planning. `clusters` is required
/// by the relationship-aware schemes (parallel batch, cluster probability)
/// and ignored by object-probability placement.
struct PlacementContext {
  const workload::Workload* workload = nullptr;
  const tape::SystemSpec* spec = nullptr;
  const cluster::ObjectClusters* clusters = nullptr;
};

class PlacementScheme {
 public:
  virtual ~PlacementScheme() = default;

  /// Human-readable scheme name as used in the paper's figures.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces a validated, aligned placement plan. Throws
  /// std::runtime_error if the workload cannot fit the system.
  [[nodiscard]] virtual PlacementPlan place(
      const PlacementContext& context) const = 0;
};

}  // namespace tapesim::core
