#include "core/object_probability.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace tapesim::core {

ObjectProbabilityPlacement::ObjectProbabilityPlacement(
    ObjectProbabilityParams params)
    : params_(params) {}

PlacementPlan ObjectProbabilityPlacement::place(
    const PlacementContext& context) const {
  TAPESIM_ASSERT(context.workload != nullptr && context.spec != nullptr);
  const workload::Workload& workload = *context.workload;
  const tape::SystemSpec& spec = *context.spec;
  const double k = params_.capacity_utilization;
  if (!(k > 0.0 && k <= 1.0)) {
    throw std::runtime_error("capacity utilization k must be in (0, 1]");
  }

  std::vector<ObjectId> order(workload.object_count());
  for (std::uint32_t i = 0; i < workload.object_count(); ++i) {
    order[i] = ObjectId{i};
  }
  std::sort(order.begin(), order.end(), [&](ObjectId a, ObjectId b) {
    const double pa = params_.sort_by_density
                          ? workload.probability_density(a)
                          : workload.object_probability(a);
    const double pb = params_.sort_by_density
                          ? workload.probability_density(b)
                          : workload.object_probability(b);
    if (pa != pb) return pa > pb;
    return a < b;
  });

  const Bytes cap{static_cast<Bytes::value_type>(
      k * spec.library.tape_capacity.as_double())};
  const std::uint32_t n = spec.num_libraries;
  const std::uint32_t t = spec.library.tapes_per_library;

  PlacementPlan plan(spec, workload);

  // Pack in probability order onto rank-ordered tapes; ranks round-robin
  // across libraries so consecutive popular tapes sit behind independent
  // robots.
  auto rank_to_tape = [&](std::uint32_t rank) {
    const std::uint32_t lib = rank % n;
    const std::uint32_t slot = rank / n;
    if (slot >= t) {
      throw std::runtime_error(
          "object probability placement: workload exceeds system capacity");
    }
    return TapeId{lib * t + slot};
  };

  std::uint32_t rank = 0;
  Bytes used{};
  for (const ObjectId o : order) {
    const Bytes size = workload.object_size(o);
    if (size > cap) {
      throw std::runtime_error(
          "object probability placement: object exceeds per-tape cap");
    }
    if (used + size > cap) {
      ++rank;
      used = Bytes{};
    }
    plan.assign(o, rank_to_tape(rank));
    used += size;
  }

  plan.align_all(params_.alignment);
  plan.mount_policy.replacement = ReplacementPolicy::kLeastPopular;
  plan.compute_tape_popularity();
  mount_most_popular(plan);
  plan.validate();
  return plan;
}

}  // namespace tapesim::core
