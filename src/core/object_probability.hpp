// Object probability placement — baseline from Christodoulakis et al. [11].
//
// Objects are sorted by individual access probability and packed onto tapes
// in that order, so low-rank tapes accumulate the highest probability mass;
// within each tape objects follow the organ-pipe arrangement (the paper's
// Figure 4). Object relationships are ignored entirely — that is the point
// of the comparison. Tapes are assigned to libraries round-robin, and the
// drives run the least-popular replacement policy [11] proves optimal for
// switch count.
#pragma once

#include "core/scheme.hpp"

namespace tapesim::core {

struct ObjectProbabilityParams {
  /// Per-tape fill cap as a fraction of capacity (same k as the paper's
  /// Step 3, applied here for a fair comparison).
  double capacity_utilization = 0.9;
  /// [11] assumes equal-sized objects, where probability and probability
  /// density coincide. With heterogeneous sizes the faithful generalization
  /// is density (probability per byte), which is the default; plain
  /// probability is kept for the equal-size special case. Plain-probability
  /// sorting on this workload degenerates: all objects of one request tie
  /// at the same probability, sort contiguously, and pack onto a single
  /// tape — serializing what [11] would parallelize.
  bool sort_by_density = true;
  Alignment alignment = Alignment::kOrganPipe;
};

class ObjectProbabilityPlacement final : public PlacementScheme {
 public:
  explicit ObjectProbabilityPlacement(ObjectProbabilityParams params = {});

  [[nodiscard]] std::string name() const override {
    return "object probability placement";
  }
  [[nodiscard]] PlacementPlan place(
      const PlacementContext& context) const override;

 private:
  ObjectProbabilityParams params_;
};

}  // namespace tapesim::core
