#include "core/parallel_batch.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "util/assert.hpp"

namespace tapesim::core {
namespace {

/// One allocation unit moving through the sublist partitioning: a whole
/// cluster (refinement on), a single object (refinement off), or a piece of
/// an oversized cluster that had to straddle batches.
struct Unit {
  std::vector<ObjectId> members;  ///< Descending object probability.
  Bytes bytes{};
  double probability = 0.0;

  [[nodiscard]] double density() const {
    return bytes.count() == 0 ? 0.0 : probability / bytes.as_double();
  }
};

Unit make_unit(std::vector<ObjectId> members,
               const workload::Workload& workload) {
  Unit u;
  u.members = std::move(members);
  for (const ObjectId o : u.members) {
    u.bytes += workload.object_size(o);
    u.probability += workload.object_probability(o);
  }
  return u;
}

}  // namespace

ParallelBatchPlacement::ParallelBatchPlacement(ParallelBatchParams params)
    : params_(params) {}

std::uint32_t ParallelBatchPlacement::batch_count(
    const tape::SystemSpec& spec, std::uint32_t switch_drives) {
  const std::uint32_t d = spec.library.drives_per_library;
  const std::uint32_t t = spec.library.tapes_per_library;
  const std::uint32_t always = d - switch_drives;
  // Batch 0 uses `always` tapes per library; each further batch uses
  // `switch_drives` tapes per library.
  return 1 + (t - always) / switch_drives;
}

std::vector<TapeId> ParallelBatchPlacement::batch_tapes(
    const tape::SystemSpec& spec, std::uint32_t switch_drives,
    std::uint32_t index) {
  const std::uint32_t d = spec.library.drives_per_library;
  const std::uint32_t t = spec.library.tapes_per_library;
  const std::uint32_t n = spec.num_libraries;
  const std::uint32_t always = d - switch_drives;

  std::uint32_t first_slot = 0;
  std::uint32_t width = 0;
  if (index == 0) {
    first_slot = 0;
    width = always;
  } else {
    first_slot = always + (index - 1) * switch_drives;
    width = switch_drives;
  }
  TAPESIM_ASSERT_MSG(first_slot + width <= t, "batch index out of range");

  // Interleave libraries so the zig-zag balancer spreads a cluster across
  // libraries before doubling up within one (maximizes robot parallelism).
  std::vector<TapeId> tapes;
  tapes.reserve(static_cast<std::size_t>(n) * width);
  for (std::uint32_t s = 0; s < width; ++s) {
    for (std::uint32_t lib = 0; lib < n; ++lib) {
      tapes.push_back(TapeId{lib * t + first_slot + s});
    }
  }
  return tapes;
}

PlacementPlan ParallelBatchPlacement::place(
    const PlacementContext& context) const {
  TAPESIM_ASSERT(context.workload != nullptr && context.spec != nullptr);
  const workload::Workload& workload = *context.workload;
  const tape::SystemSpec& spec = *context.spec;
  const std::uint32_t d = spec.library.drives_per_library;
  const std::uint32_t m = params_.switch_drives;

  if (m < 1 || m >= d) {
    throw std::runtime_error(
        "parallel batch placement: switch drives m must be in [1, d-1]");
  }
  if (params_.cluster_refinement && context.clusters == nullptr) {
    throw std::runtime_error(
        "parallel batch placement: cluster refinement needs clusters");
  }
  const double k = params_.capacity_utilization;
  if (!(k > 0.0 && k <= 1.0)) {
    throw std::runtime_error("capacity utilization k must be in (0, 1]");
  }

  // --- Steps 1-2: object probabilities and the density-sorted list. ---
  std::vector<ObjectId> density_order(workload.object_count());
  for (std::uint32_t i = 0; i < workload.object_count(); ++i) {
    density_order[i] = ObjectId{i};
  }
  std::sort(density_order.begin(), density_order.end(),
            [&](ObjectId a, ObjectId b) {
              const double da = workload.probability_density(a);
              const double db = workload.probability_density(b);
              if (da != db) return da > db;
              return a < b;
            });

  // --- Step 4 (or its ablation): allocation units in density order. ---
  std::vector<Unit> units;
  if (params_.cluster_refinement) {
    const auto& clusters = context.clusters->clusters();
    units.reserve(clusters.size());
    for (const cluster::Cluster& c : clusters) {
      units.push_back(make_unit(c.members, workload));
    }
    std::sort(units.begin(), units.end(), [](const Unit& a, const Unit& b) {
      const double da = a.density();
      const double db = b.density();
      if (da != db) return da > db;
      return a.members.front() < b.members.front();
    });
  } else {
    units.reserve(workload.object_count());
    for (const ObjectId o : density_order) {
      units.push_back(make_unit({o}, workload));
    }
  }

  // --- Step 3: sublists sized to tape batches. ---
  const Bytes tape_cap_planned{static_cast<Bytes::value_type>(
      k * spec.library.tape_capacity.as_double())};
  const std::uint32_t total_batches = batch_count(spec, m);

  PlacementPlan plan(spec, workload);

  LoadBalanceParams balance = params_.balance;
  balance.tape_capacity_cap = tape_cap_planned;

  // Batch filling state.
  std::uint32_t batch_index = 0;
  std::vector<TapeLoadState> batch_state;
  Bytes batch_cap{};
  Bytes batch_used{};
  auto open_batch = [&](std::uint32_t index) {
    if (index >= total_batches) {
      throw std::runtime_error(
          "parallel batch placement: workload exceeds system capacity");
    }
    const auto tapes = batch_tapes(spec, m, index);
    batch_state.clear();
    for (const TapeId t : tapes) batch_state.push_back(TapeLoadState{t});
    batch_cap = Bytes{static_cast<Bytes::value_type>(
        static_cast<double>(tapes.size()) *
        tape_cap_planned.as_double())};
    batch_used = Bytes{};
  };
  open_batch(0);

  // First-fit-decreasing over density-ordered units; units that do not fit
  // the current batch wait in `spilled` and get first chance at the next
  // batch (this is the "move objects between adjacent sublists" refinement).
  std::deque<Unit> spilled;
  std::size_t next_unit = 0;
  auto next_candidate = [&]() -> Unit* {
    if (!spilled.empty()) return &spilled.front();
    if (next_unit < units.size()) return &units[next_unit];
    return nullptr;
  };
  auto pop_candidate = [&](bool from_spill) {
    if (from_spill) {
      spilled.pop_front();
    } else {
      ++next_unit;
    }
  };

  std::deque<Unit> deferred;  // did not fit current batch remainder

  // Balances `members` onto the open batch; returns the bytes actually
  // placed. Fragmentation overflow becomes a deferred unit for the next
  // batch. A fresh batch that cannot take an object at all means the
  // object exceeds the per-tape cap — unplaceable, so throw.
  auto place_members = [&](const std::vector<ObjectId>& members) {
    const auto assignment =
        balance_cluster(members, batch_state, workload, balance);
    Bytes placed{};
    for (std::size_t i = 0; i < assignment.objects.size(); ++i) {
      plan.assign(assignment.objects[i], assignment.tapes[i]);
      placed += workload.object_size(assignment.objects[i]);
    }
    if (!assignment.overflow.empty()) {
      if (assignment.objects.empty() && batch_used.count() == 0) {
        throw std::runtime_error(
            "parallel batch placement: object exceeds the per-tape cap");
      }
      deferred.push_back(make_unit(assignment.overflow, workload));
    }
    return placed;
  };

  while (true) {
    Unit* cand = next_candidate();
    const bool from_spill = !spilled.empty();
    if (cand == nullptr) {
      if (deferred.empty()) break;  // all placed
      // Current batch cannot take anything more; open the next one.
      ++batch_index;
      open_batch(batch_index);
      for (auto& u : deferred) spilled.push_back(std::move(u));
      deferred.clear();
      continue;
    }

    if (cand->bytes > batch_cap) {
      // Oversized cluster: fill what fits now, spill the tail as a new unit.
      Unit head;
      Unit tail;
      Bytes room = batch_cap - batch_used;
      for (const ObjectId o : cand->members) {
        const Bytes size = workload.object_size(o);
        if (head.bytes + size <= room) {
          head.members.push_back(o);
          head.bytes += size;
          head.probability += workload.object_probability(o);
        } else {
          tail.members.push_back(o);
          tail.bytes += size;
          tail.probability += workload.object_probability(o);
        }
      }
      pop_candidate(from_spill);
      if (!tail.members.empty()) deferred.push_back(std::move(tail));
      if (head.members.empty()) continue;
      batch_used += place_members(head.members);
      continue;
    }

    if (batch_used + cand->bytes > batch_cap) {
      deferred.push_back(std::move(*cand));
      pop_candidate(from_spill);
      continue;
    }

    batch_used += place_members(cand->members);
    pop_candidate(from_spill);
  }

  // --- Step 6: on-tape alignment. ---
  plan.align_all(params_.alignment);

  // --- Mount policy: pinned first batch + m switch drives per library. ---
  const std::uint32_t n = spec.num_libraries;
  const std::uint32_t t = spec.library.tapes_per_library;
  const std::uint32_t always = d - m;
  plan.mount_policy.replacement = ReplacementPolicy::kFixedBatch;
  plan.mount_policy.drive_pinned.assign(spec.total_drives(), false);
  for (std::uint32_t lib = 0; lib < n; ++lib) {
    for (std::uint32_t s = 0; s < always; ++s) {
      const DriveId drive{lib * d + s};
      const TapeId tp{lib * t + s};
      plan.mount_policy.drive_pinned[drive.index()] = true;
      plan.mount_policy.initial_mounts.emplace_back(drive, tp);
    }
    // Switch drives start holding the second batch (paper Section 5.2).
    for (std::uint32_t s = 0; s < m; ++s) {
      const DriveId drive{lib * d + always + s};
      const TapeId tp{lib * t + always + s};
      plan.mount_policy.initial_mounts.emplace_back(drive, tp);
    }
  }
  plan.compute_tape_popularity();
  plan.validate();
  return plan;
}

}  // namespace tapesim::core
