#include "core/cluster_probability.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/assert.hpp"

namespace tapesim::core {

ClusterProbabilityPlacement::ClusterProbabilityPlacement(
    ClusterProbabilityParams params)
    : params_(params) {}

PlacementPlan ClusterProbabilityPlacement::place(
    const PlacementContext& context) const {
  TAPESIM_ASSERT(context.workload != nullptr && context.spec != nullptr);
  if (context.clusters == nullptr) {
    throw std::runtime_error(
        "cluster probability placement requires object clusters");
  }
  const workload::Workload& workload = *context.workload;
  const tape::SystemSpec& spec = *context.spec;
  const double k = params_.capacity_utilization;
  if (!(k > 0.0 && k <= 1.0)) {
    throw std::runtime_error("capacity utilization k must be in (0, 1]");
  }

  // Clusters in descending accumulated probability: low-rank tapes end up
  // with the highest probability mass, as in [20].
  std::vector<const cluster::Cluster*> order;
  order.reserve(context.clusters->size());
  for (const cluster::Cluster& c : context.clusters->clusters()) {
    order.push_back(&c);
  }
  std::sort(order.begin(), order.end(),
            [](const cluster::Cluster* a, const cluster::Cluster* b) {
              if (a->total_probability != b->total_probability)
                return a->total_probability > b->total_probability;
              return a->id < b->id;
            });

  const Bytes cap{static_cast<Bytes::value_type>(
      k * spec.library.tape_capacity.as_double())};
  const std::uint32_t n = spec.num_libraries;
  const std::uint32_t t = spec.library.tapes_per_library;

  PlacementPlan plan(spec, workload);

  auto rank_to_tape = [&](std::uint32_t rank) {
    const std::uint32_t lib = rank % n;
    const std::uint32_t slot = rank / n;
    if (slot >= t) {
      throw std::runtime_error(
          "cluster probability placement: workload exceeds system capacity");
    }
    return TapeId{lib * t + slot};
  };

  // First-fit-decreasing bin packing, whole clusters per tape.
  std::vector<Bytes> used;  // by rank
  auto open_rank = [&]() {
    used.push_back(Bytes{});
    return static_cast<std::uint32_t>(used.size() - 1);
  };

  for (const cluster::Cluster* c : order) {
    if (c->total_bytes <= cap) {
      std::uint32_t target = static_cast<std::uint32_t>(used.size());
      for (std::uint32_t r = 0; r < used.size(); ++r) {
        if (used[r] + c->total_bytes <= cap) {
          target = r;
          break;
        }
      }
      if (target == used.size()) target = open_rank();
      const TapeId tape = rank_to_tape(target);
      for (const ObjectId o : c->members) plan.assign(o, tape);
      used[target] += c->total_bytes;
      continue;
    }
    // Oversized cluster: spill across fresh tapes in member order.
    std::uint32_t rank = open_rank();
    for (const ObjectId o : c->members) {
      const Bytes size = workload.object_size(o);
      if (size > cap) {
        throw std::runtime_error(
            "cluster probability placement: object exceeds per-tape cap");
      }
      if (used[rank] + size > cap) rank = open_rank();
      plan.assign(o, rank_to_tape(rank));
      used[rank] += size;
    }
  }

  // Clusters stay contiguous in assignment order on each tape.
  plan.align_all(Alignment::kGivenOrder);
  plan.mount_policy.replacement = ReplacementPolicy::kLeastPopular;
  plan.compute_tape_popularity();
  mount_most_popular(plan);
  plan.validate();
  return plan;
}

}  // namespace tapesim::core
