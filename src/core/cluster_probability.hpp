// Cluster probability placement — baseline from Li & Prabhakar [20].
//
// Assumes media switches dominate access cost: objects with strong access
// relationships are packed onto the *same* tape so a request ideally causes
// at most one switch — and, by the same token, enjoys no transfer
// parallelism. Clusters are placed in descending accumulated probability by
// first-fit-decreasing bin packing; each cluster stays contiguous on its
// tape. Tapes round-robin across libraries; drives use least-popular
// replacement.
#pragma once

#include "core/scheme.hpp"

namespace tapesim::core {

struct ClusterProbabilityParams {
  double capacity_utilization = 0.9;
};

class ClusterProbabilityPlacement final : public PlacementScheme {
 public:
  explicit ClusterProbabilityPlacement(ClusterProbabilityParams params = {});

  [[nodiscard]] std::string name() const override {
    return "cluster probability placement";
  }
  [[nodiscard]] PlacementPlan place(
      const PlacementContext& context) const override;

 private:
  ClusterProbabilityParams params_;
};

}  // namespace tapesim::core
