#include "exp/experiment.hpp"

#include "cluster/similarity.hpp"
#include "core/cluster_probability.hpp"
#include "core/object_probability.hpp"
#include "core/parallel_batch.hpp"
#include "obs/profiler.hpp"
#include "util/rng.hpp"

namespace tapesim::exp {

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  config_.spec.validate();
  config_.workload.validate();

  Rng rng{config_.seed};
  Rng workload_rng = rng.fork(0x574C);  // workload substream
  workload_ = std::make_unique<workload::Workload>(
      workload::generate_workload(config_.workload, workload_rng));

  cluster::ClusterConstraints constraints = config_.clustering;
  if (constraints.max_bytes.count() == 0) {
    constraints.max_bytes = Bytes{static_cast<Bytes::value_type>(
        config_.capacity_utilization *
        config_.spec.library.tape_capacity.as_double())};
  }
  clusters_ = std::make_unique<cluster::ObjectClusters>(
      cluster::cluster_by_requests(*workload_, constraints));
  clusters_->validate(*workload_);
}

SchemeRun Experiment::run(const core::PlacementScheme& scheme,
                          obs::Profiler* profiler) const {
  core::PlacementContext context;
  context.workload = workload_.get();
  context.spec = &config_.spec;
  context.clusters = clusters_.get();

  const core::PlacementPlan plan = scheme.place(context);
  sched::RetrievalSimulator simulator(plan, config_.sim);
  if (profiler != nullptr) profiler->attach(simulator.engine());

  Rng rng{config_.seed};
  Rng sample_rng = rng.fork(0x5251);  // request sampling substream
  const workload::RequestSampler sampler(*workload_);

  SchemeRun result;
  result.scheme = scheme.name();
  result.tapes_used = plan.tapes_used();
  for (std::uint32_t i = 0; i < config_.simulated_requests; ++i) {
    const RequestId id = sampler.sample(sample_rng);
    result.metrics.add(simulator.run_request(id));
  }
  result.total_switches = simulator.total_switches();
  if (profiler != nullptr) profiler->detach();
  return result;
}

TracedSchemeRun Experiment::run_traced(const core::PlacementScheme& scheme,
                                       obs::Tracer& tracer) const {
  core::PlacementContext context;
  context.workload = workload_.get();
  context.spec = &config_.spec;
  context.clusters = clusters_.get();

  const core::PlacementPlan plan = scheme.place(context);
  sched::SimulatorConfig sim = config_.sim;
  sim.tracer = &tracer;
  sched::RetrievalSimulator simulator(plan, sim);

  Rng rng{config_.seed};
  Rng sample_rng = rng.fork(0x5251);  // same substream as run()
  const workload::RequestSampler sampler(*workload_);

  TracedSchemeRun result;
  result.run.scheme = scheme.name();
  result.run.tapes_used = plan.tapes_used();
  for (std::uint32_t i = 0; i < config_.simulated_requests; ++i) {
    const RequestId id = sampler.sample(sample_rng);
    result.run.metrics.add(simulator.run_request(id));
  }
  result.run.total_switches = simulator.total_switches();
  result.elapsed = simulator.engine().now();
  result.utilization =
      sched::utilization_report(simulator.system(), result.elapsed);
  return result;
}

metrics::ExperimentMetrics simulate_plan(const core::PlacementPlan& plan,
                                         std::uint32_t simulated_requests,
                                         std::uint64_t seed,
                                         sched::SimulatorConfig sim) {
  sched::RetrievalSimulator simulator(plan, sim);
  Rng rng{seed};
  Rng sample_rng = rng.fork(0x5251);
  const workload::RequestSampler sampler(plan.workload());
  metrics::ExperimentMetrics metrics;
  for (std::uint32_t i = 0; i < simulated_requests; ++i) {
    metrics.add(simulator.run_request(sampler.sample(sample_rng)));
  }
  return metrics;
}

StandardSchemes make_standard_schemes(std::uint32_t switch_drives,
                                      double capacity_utilization) {
  StandardSchemes schemes;

  core::ParallelBatchParams pbp;
  pbp.switch_drives = switch_drives;
  pbp.capacity_utilization = capacity_utilization;
  schemes.parallel_batch =
      std::make_unique<core::ParallelBatchPlacement>(pbp);

  core::ObjectProbabilityParams opp;
  opp.capacity_utilization = capacity_utilization;
  schemes.object_probability =
      std::make_unique<core::ObjectProbabilityPlacement>(opp);

  core::ClusterProbabilityParams cpp;
  cpp.capacity_utilization = capacity_utilization;
  schemes.cluster_probability =
      std::make_unique<core::ClusterProbabilityPlacement>(cpp);

  return schemes;
}

}  // namespace tapesim::exp
