// The experiment harness shared by every figure-reproduction benchmark.
//
// One Experiment = one (system spec, workload config, seed) tuple. It
// generates the workload, builds the object clusters, and can run any
// placement scheme through the full pipeline:
//   place -> catalog -> initial mounts -> sample 200 requests by
//   popularity -> simulate -> aggregate metrics.
// The sampled request sequence depends only on the seed, so different
// schemes face exactly the same request stream.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/hierarchy.hpp"
#include "core/scheme.hpp"
#include "metrics/request_metrics.hpp"
#include "sched/report.hpp"
#include "sched/simulator.hpp"
#include "tape/specs.hpp"
#include "workload/generator.hpp"

namespace tapesim::obs {
class Profiler;
}  // namespace tapesim::obs

namespace tapesim::exp {

struct ExperimentConfig {
  tape::SystemSpec spec = tape::SystemSpec::paper_default();
  workload::WorkloadConfig workload = workload::WorkloadConfig::paper_default();
  /// The paper simulates 200 sampled requests per configuration.
  std::uint32_t simulated_requests = 200;
  std::uint64_t seed = 42;
  sched::SimulatorConfig sim;
  /// Clustering cut. max_bytes of 0 here means "derive from the spec":
  /// clusters are capped at k * C_t so every cluster fits a single tape
  /// (required by the cluster-probability baseline) and comfortably inside
  /// any tape batch.
  cluster::ClusterConstraints clustering{};
  double capacity_utilization = 0.9;
};

struct SchemeRun {
  std::string scheme;
  metrics::ExperimentMetrics metrics;
  std::uint32_t tapes_used = 0;
  std::uint64_t total_switches = 0;
};

/// SchemeRun plus the device-side ground truth captured before the
/// simulator is torn down — what the tracer's spans must reconcile with.
struct TracedSchemeRun {
  SchemeRun run;
  sched::UtilizationReport utilization;
  Seconds elapsed{};  ///< simulated makespan of the whole request stream
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const workload::Workload& workload() const {
    return *workload_;
  }
  [[nodiscard]] const cluster::ObjectClusters& clusters() const {
    return *clusters_;
  }

  /// Places with `scheme`, simulates the sampled request stream, and
  /// aggregates. Deterministic given the config. An optional profiler is
  /// attached to the simulation engine for the duration of the run (the
  /// engine reads no clocks when it is null).
  [[nodiscard]] SchemeRun run(const core::PlacementScheme& scheme,
                              obs::Profiler* profiler = nullptr) const;

  /// Same pipeline with `tracer` attached for the duration of the run:
  /// device spans, request spans, and kernel metrics land in the tracer;
  /// the returned utilization report is taken from the simulator's own
  /// DriveStats for cross-checking the spans. Any tracer in config().sim
  /// is ignored for this call.
  [[nodiscard]] TracedSchemeRun run_traced(const core::PlacementScheme& scheme,
                                           obs::Tracer& tracer) const;

 private:
  ExperimentConfig config_;
  std::unique_ptr<workload::Workload> workload_;
  std::unique_ptr<cluster::ObjectClusters> clusters_;
};

/// Simulates `simulated_requests` popularity-sampled draws against an
/// arbitrary finished plan. Unlike Experiment::run, the plan's workload may
/// differ from any Experiment's (e.g. the sharded workload of the striping
/// ablation); sampling uses the plan's own workload and is deterministic
/// in `seed`.
[[nodiscard]] metrics::ExperimentMetrics simulate_plan(
    const core::PlacementPlan& plan, std::uint32_t simulated_requests,
    std::uint64_t seed, sched::SimulatorConfig sim = {});

/// The three schemes of the paper's evaluation, with parallel batch
/// placement configured for `switch_drives` (m). Capacity utilization is
/// applied uniformly.
struct StandardSchemes {
  std::unique_ptr<core::PlacementScheme> parallel_batch;
  std::unique_ptr<core::PlacementScheme> object_probability;
  std::unique_ptr<core::PlacementScheme> cluster_probability;
};
[[nodiscard]] StandardSchemes make_standard_schemes(
    std::uint32_t switch_drives = 4, double capacity_utilization = 0.9);

}  // namespace tapesim::exp
