// The metrics catalog: one entry per Registry instrument the simulator can
// register, with kind, unit, and a one-line description.
//
// The catalog is the source of truth docs/METRICS.md is written from, and
// tests/obs asserts two invariants against it: every cataloged name follows
// the naming convention (dotted lowercase, `_s`/`_bytes` unit suffixes, see
// obs/metrics.hpp), and every instrument an instrumented run actually
// registers appears here — so a new metric without a catalog entry (and
// therefore without documentation) fails CI instead of slipping through.
//
// Sampled gauge *series* (Tracer::add_gauge: "engine.queue_depth",
// "tape.lib<N>.drives_active", "tape.lib<N>.robot_queue") are per-run
// sample streams, not Registry instruments, and are documented in
// docs/METRICS.md only.
#pragma once

#include <span>
#include <string_view>

namespace tapesim::obs {

struct MetricInfo {
  std::string_view name;
  std::string_view kind;  ///< "counter" | "gauge" | "histogram"
  std::string_view unit;  ///< "" (dimensionless count) | "s" | "bytes" | rate
  std::string_view help;
};

/// Every instrument any subsystem registers, sorted by name.
[[nodiscard]] std::span<const MetricInfo> metric_catalog();

/// Catalog entry for `name`; nullptr when not cataloged.
[[nodiscard]] const MetricInfo* find_metric(std::string_view name);

/// Naming convention: dotted lowercase paths of [a-z0-9_] segments,
/// starting with a letter, no empty segments.
[[nodiscard]] bool is_valid_metric_name(std::string_view name);

}  // namespace tapesim::obs
