// Metrics registry: counters, gauges, and lock-free histograms.
//
// The hot path (increment a counter, record a histogram sample) is a handful
// of relaxed atomic operations — safe to call from any thread and cheap
// enough to leave compiled into release builds. Registration (name lookup)
// takes a mutex and should happen once at setup time; call sites hold the
// returned reference. Snapshots copy the current values without stopping
// writers; reset() zeroes everything for the next measurement window.
//
// Naming convention: dotted lowercase paths, coarse-to-fine —
// "subsystem.entity.metric" (e.g. "engine.events.dispatched",
// "sched.request.response_s"). Unit suffixes: `_s` seconds, `_bytes` bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tapesim::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Immutable bucket layout shared by histograms of the same shape.
///
/// `bounds` are the inclusive upper edges of the finite buckets; a sample
/// lands in the first bucket whose bound is >= the sample. One implicit
/// overflow bucket catches everything above the last bound.
struct BucketLayout {
  std::vector<double> bounds;

  /// Equal-width buckets spanning [lo, hi].
  static BucketLayout linear(double lo, double hi, std::size_t count);
  /// HDR-style geometric buckets: edges grow by `factor` from `lo` until
  /// `hi` is covered. Relative error per sample is bounded by `factor - 1`.
  static BucketLayout exponential(double lo, double hi, double factor = 1.25);

  [[nodiscard]] std::size_t bucket_index(double v) const;
  /// Total bucket count including the overflow bucket.
  [[nodiscard]] std::size_t size() const { return bounds.size() + 1; }
};

/// Point-in-time copy of a histogram's state.
struct HistogramSnapshot {
  BucketLayout layout;
  std::vector<std::uint64_t> counts;  ///< size layout.size()
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;  ///< 0 when empty

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Linear interpolation inside the containing bucket, clamped to the
  /// observed min/max. p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
};

/// Lock-free histogram over a fixed bucket layout.
class Histogram {
 public:
  explicit Histogram(BucketLayout layout);

  void record(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const BucketLayout& layout() const { return layout_; }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

 private:
  BucketLayout layout_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Point-in-time copy of every instrument in a registry.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named instrument store. Instruments are created on first use and live as
/// long as the registry; returned references stay valid across snapshots
/// and resets.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// `layout` applies only on first registration of `name`.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     BucketLayout layout);

  [[nodiscard]] RegistrySnapshot snapshot() const;
  /// Zeroes every instrument (layouts are kept).
  void reset();

  /// One row per instrument: kind,name,count,sum,mean,min,max,p50,p95,p99.
  void write_csv(std::ostream& os) const;
  /// One JSON object keyed by instrument name, bucket detail included.
  void write_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tapesim::obs
