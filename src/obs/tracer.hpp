// Structured span tracing for simulation runs.
//
// A Tracer binds to a sim::Engine (for the clock and kernel-event
// statistics) and observes a tape::TapeSystem (drive state transitions and
// robot grants become per-device spans automatically). Schedulers add the
// request-level spans the devices cannot see (queue waits, whole-request
// lifetimes). Everything is buffered in memory and exported after the run:
//
//   * JSONL — one self-describing object per line; the `trace_inspect` tool
//     and the conservation tests read this back.
//   * Chrome trace_event JSON — drop the file into Perfetto or
//     chrome://tracing to scrub through the run visually.
//
// Overhead discipline: a null/absent tracer costs exactly one pointer check
// at each instrumentation point; there is no background work and no
// allocation unless spans are actually recorded.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace tapesim::tape {
class TapeSystem;
}  // namespace tapesim::tape

namespace tapesim::obs {

/// Aggregate of all spans of one phase on one track.
struct PhaseAgg {
  std::uint64_t spans = 0;
  Seconds total{};
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Attaches to `engine`: the tracer's clock follows engine.now(), kernel
  /// events feed the registry, trace-level log narration is captured as
  /// markers, and periodic samplers run off event dispatch. Only one engine
  /// at a time; rebinding detaches from the previous one.
  void bind(sim::Engine& engine);
  /// Detaches from the bound engine and restores the log hooks.
  void unbind();
  /// Full detach: engine, observed system probes, and gauges. Recorded
  /// spans and registry contents survive for export. Simulators call this
  /// on destruction so the tracer never holds dangling pointers.
  void detach();

  /// Installs per-device probes: every drive state transition opens/closes
  /// a span on the drive's lane; every robot grant produces wait and busy
  /// spans on the robot's lane. Also registers fleet gauges (drives active,
  /// robot queue lengths) with the sampler. The system must outlive the
  /// tracer or be detached by destroying the tracer first.
  void observe(tape::TapeSystem& system);

  /// Current simulation time (0 when unbound).
  [[nodiscard]] Seconds now() const;

  /// The tracer-owned metrics registry (kernel counters, caller metrics).
  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const Registry& registry() const { return registry_; }

  // --- recording ---
  void record(Span span);
  /// Zero-duration annotation at the current time.
  void marker(Track track, std::uint32_t track_id, std::string note);

  /// Request context stamped onto device spans recorded from now on. The
  /// serial simulator sets this around each request; concurrent schedulers
  /// leave it invalid (a device span can serve several requests at once).
  void set_current_request(RequestId id) { current_request_ = id; }
  [[nodiscard]] RequestId current_request() const { return current_request_; }

  // --- periodic sampling ---
  /// Registers a named gauge callback; sampled every `cadence` of simulated
  /// time while events dispatch (cadence 0 disables sampling).
  void add_gauge(std::string name, std::function<double()> fn);
  void set_sample_cadence(Seconds cadence) { cadence_ = cadence; }

  /// Attaches a windowed time-series (not owned; pass nullptr to detach).
  /// Its clock advances on every event dispatch of the bound engine, so
  /// windows close at simulated-time boundaries without the caller
  /// polling. The caller still calls finish() after the run.
  void set_timeseries(TimeSeries* series) { timeseries_ = series; }
  [[nodiscard]] TimeSeries* timeseries() const { return timeseries_; }

  // --- queries ---
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::map<Phase, PhaseAgg> phase_totals(Track track) const;
  /// Sum of span durations of `phase` on one drive lane.
  [[nodiscard]] Seconds lane_phase_total(Track track, std::uint32_t lane,
                                         Phase phase) const;

  // --- export ---
  void write_jsonl(std::ostream& os) const;
  void write_chrome_trace(std::ostream& os) const;
  /// File variants; log a warning and return false on I/O failure.
  bool write_jsonl_file(const std::string& path) const;
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  class EngineSink;
  class DriveProbe;
  class RobotProbe;

  void take_samples(Seconds now);
  void detach_system();

  Registry registry_;
  std::vector<Span> spans_;
  RequestId current_request_{};

  sim::Engine* engine_ = nullptr;
  tape::TapeSystem* system_ = nullptr;
  std::unique_ptr<EngineSink> sink_;
  std::vector<std::unique_ptr<DriveProbe>> drive_probes_;
  std::vector<std::unique_ptr<RobotProbe>> robot_probes_;

  struct GaugeSeries {
    std::string name;
    std::function<double()> fn;
    std::vector<std::pair<Seconds, double>> samples;
  };
  std::vector<GaugeSeries> gauges_;
  Seconds cadence_{0.0};
  Seconds next_sample_{0.0};
  TimeSeries* timeseries_ = nullptr;
};

}  // namespace tapesim::obs
