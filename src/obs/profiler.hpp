// Engine self-profiling: what the dispatch loop costs in wall-clock time.
//
// A Profiler implements sim::ProfileSink and aggregates, entirely outside
// simulated time: per-event-label dispatch wall time (steady_clock) and
// counts, run-loop wall time (queue operations included), event-queue depth
// high-water and mean occupancy, and the sim-seconds-per-wall-second
// throughput of the run. Attach one to a sim::Engine to measure a run;
// detach (or never attach) and the engine reads no clocks at all — the
// zero-overhead-when-disabled discipline the rest of `obs` follows.
// Construct with a sample stride above 1 to time only every Nth dispatch:
// dispatch/run totals stay exact, per-label detail becomes a sample, and
// the attached overhead drops below what per-event clock reads cost.
//
// Results export three ways: a ProfileReport struct for programmatic use,
// `profiler.*` instruments merged into a metrics Registry (so profiling
// data travels with the existing metrics exports), and a standalone JSON
// object with the per-label breakdown (what `BENCH_*.json` embeds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "sim/profile.hpp"
#include "util/units.hpp"

namespace tapesim::sim {
class Engine;
}  // namespace tapesim::sim

namespace tapesim::obs {

class Registry;

/// Aggregate dispatch cost of one event label ("" = unlabeled hot path).
struct DispatchStats {
  std::uint64_t count = 0;
  double wall_s = 0.0;
  double max_wall_s = 0.0;

  [[nodiscard]] double mean_wall_s() const {
    return count == 0 ? 0.0 : wall_s / static_cast<double>(count);
  }
};

/// Point-in-time copy of everything a Profiler measured.
///
/// `dispatches`, `runs`, and the run/sim totals are always exact (they
/// come from the run brackets). With a sample stride above 1 the
/// per-dispatch detail — `dispatch_wall_s`, queue-depth stats, and the
/// `by_label` counts/timings — covers only the `sampled_dispatches`
/// subset; scale by dispatches/sampled_dispatches for totals (which
/// estimated_dispatch_wall_s() does for the wall time).
struct ProfileReport {
  std::uint64_t dispatches = 0;
  std::uint64_t runs = 0;
  std::uint64_t sample_stride = 1;
  std::uint64_t sampled_dispatches = 0;
  double dispatch_wall_s = 0.0;  ///< event-action wall time (sampled)
  double run_wall_s = 0.0;       ///< sum of run-loop wall time
  double sim_advanced_s = 0.0;   ///< simulated time covered by the runs
  std::size_t queue_high_water = 0;
  double queue_depth_mean = 0.0;
  std::map<std::string, DispatchStats> by_label;

  /// Wall time inside event actions scaled up from the sampled subset;
  /// equal to dispatch_wall_s when every dispatch was sampled.
  [[nodiscard]] double estimated_dispatch_wall_s() const {
    if (sampled_dispatches == 0) return 0.0;
    return dispatch_wall_s * static_cast<double>(dispatches) /
           static_cast<double>(sampled_dispatches);
  }
  /// Run-loop cost not attributable to event actions: queue push/pop,
  /// tie-breaking, cancellation bookkeeping. The kernel-optimization
  /// target ROADMAP item 1 names.
  [[nodiscard]] double kernel_wall_s() const {
    const double actions = estimated_dispatch_wall_s();
    return run_wall_s > actions ? run_wall_s - actions : 0.0;
  }
  /// Simulated seconds per wall second across the profiled runs.
  [[nodiscard]] double sim_s_per_wall_s() const {
    return run_wall_s > 0.0 ? sim_advanced_s / run_wall_s : 0.0;
  }
  /// Events dispatched per wall second across the profiled runs.
  [[nodiscard]] double events_per_wall_s() const {
    return run_wall_s > 0.0
               ? static_cast<double>(dispatches) / run_wall_s
               : 0.0;
  }
};

class Profiler final : public sim::ProfileSink {
 public:
  /// `sample_stride` = time every Nth dispatch (1 = every dispatch).
  /// Sub-microsecond event actions need a stride well above 1 for the
  /// attached-profiler overhead to stay negligible; dispatch/run totals
  /// remain exact either way.
  explicit Profiler(std::size_t sample_stride = 1)
      : stride_(sample_stride == 0 ? 1 : sample_stride) {}
  ~Profiler() override;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Installs this profiler on `engine` (replacing any previous sink).
  /// Only one engine at a time; re-attaching detaches from the old one.
  void attach(sim::Engine& engine);
  /// Removes the hook; collected statistics survive for report()/export.
  void detach();

  [[nodiscard]] ProfileReport report() const;
  /// Zeroes every aggregate (stays attached).
  void reset();

  /// Writes the scalar aggregates as `profiler.*` counters/gauges so they
  /// export alongside the rest of a Registry. Per-label detail stays in
  /// report()/write_json (labels are free-form and would break the metric
  /// naming convention).
  void export_to(Registry& registry) const;

  /// One JSON object: scalars plus a per-label breakdown sorted by name.
  void write_json(std::ostream& os) const;

  // --- sim::ProfileSink ---
  void on_run_begin(Seconds sim_now) override;
  void on_run_end(Seconds sim_now, double wall_s,
                  std::uint64_t dispatches) override;
  void on_dispatch_done(Seconds sim_now, const std::string& label,
                        double wall_s, std::size_t queue_depth) override;
  [[nodiscard]] std::size_t dispatch_sample_stride() const override {
    return stride_;
  }

 private:
  sim::Engine* engine_ = nullptr;
  std::size_t stride_ = 1;

  std::uint64_t dispatches_ = 0;
  std::uint64_t sampled_dispatches_ = 0;
  std::uint64_t runs_ = 0;
  double dispatch_wall_s_ = 0.0;
  double run_wall_s_ = 0.0;
  double sim_advanced_s_ = 0.0;
  Seconds run_begin_{0.0};
  std::size_t queue_high_water_ = 0;
  double queue_depth_sum_ = 0.0;
  std::map<std::string, DispatchStats> by_label_;
  DispatchStats* unlabeled_ = nullptr;  ///< fast path for the "" bucket
};

}  // namespace tapesim::obs
