// Typed span vocabulary for the telemetry layer.
//
// A span is one contiguous activity on one track. Tracks mirror the
// physical entities of the simulator: one per request stream, one per
// drive, one per robot, plus a synthetic engine track for kernel-level
// events. Phases are the paper's response-time components (Figure 9) plus
// the waits that the switch-time catch-all folds together.
#pragma once

#include <cstdint>
#include <string>

#include "util/ids.hpp"
#include "util/units.hpp"

namespace tapesim::obs {

enum class Track : std::uint8_t {
  kRequest = 1,  ///< One lane per in-flight request (tid = request id).
  kDrive = 2,    ///< One lane per drive (tid = global drive id).
  kRobot = 3,    ///< One lane per library robot (tid = library id).
  kEngine = 4,   ///< Kernel counters and narration.
  kRepair = 5,   ///< Background re-replication jobs (tid = object id).
  kOverload = 6,  ///< Admission/shedding decisions (tid = request id).
  kScrub = 7,    ///< Background verification passes (tid = tape id).
  kOutage = 8,   ///< Library outage windows (tid = library id).
  kHedge = 9,    ///< Speculative hedged reads (tid = request id).
  kQuarantine = 10,  ///< Gray-failure quarantine windows (tid = drive id).
  kRecovery = 11,    ///< Metadata crash-recovery windows (tid = crash #).
  kBreaker = 12,     ///< Circuit-breaker open windows (tid = scoped lane).
};

enum class Phase : std::uint8_t {
  kQueueWait,  ///< Tape demanded but no drive assigned yet.
  kRobotWait,  ///< Drive waiting in the robot's FIFO queue.
  kRobotMove,  ///< Robot carrying cartridges (per-robot busy span).
  kUnload,
  kLoad,
  kLocate,
  kTransfer,
  kRewind,
  kFault,    ///< Device offline: drive failure span, robot jam span.
  kRequest,  ///< Whole-request span: arrival/submit to last byte landed.
  kRepair,   ///< One re-replication job: first read activity to catalog add.
  kShed,     ///< Request rejected at admission (zero-width at decision time).
  kExpired,  ///< Admitted request cancelled at its deadline.
  kScrub,    ///< One verification pass: mount start to last byte verified.
  kOutage,   ///< One library outage window: onset to restore.
  kHedge,    ///< One speculative hedge: launch to settle (won or lost).
  kQuarantine,  ///< One drive quarantine window: flag to release.
  kRecovery,  ///< One metadata recovery: crash to catalog replayed.
  kBreaker,  ///< One breaker open window: trip to close (or run end).
  kMarker,   ///< Zero-duration annotation (narration, state change).
};

[[nodiscard]] const char* to_string(Track t);
[[nodiscard]] const char* to_string(Phase p);

/// One closed span. Context ids are optional (kInvalid when not applicable).
struct Span {
  Track track = Track::kEngine;
  std::uint32_t track_id = 0;  ///< Lane within the track group.
  Phase phase = Phase::kMarker;
  Seconds start{};
  Seconds end{};
  RequestId request{};  ///< Requesting context, when known.
  TapeId tape{};        ///< Cartridge involved, when known.
  std::string note;     ///< Free-form detail for markers/narration.

  [[nodiscard]] Seconds duration() const { return end - start; }
};

}  // namespace tapesim::obs
