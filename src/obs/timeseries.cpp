#include "obs/timeseries.hpp"

#include <ostream>
#include <utility>

#include "obs/json.hpp"
#include "util/assert.hpp"

namespace tapesim::obs {

namespace {

/// The window's own sample distribution: cumulative bucket counts minus
/// the previous window's. min/max are bucket-edge bounds (the cumulative
/// extrema belong to the whole run, not this window): 0 below the first
/// occupied bucket, the upper bound of the last occupied one — or the
/// cumulative max when the overflow bucket is occupied, the only finite
/// bound available there.
HistogramSnapshot window_delta(const HistogramSnapshot& cur,
                               const HistogramSnapshot& prev) {
  HistogramSnapshot d;
  d.layout = cur.layout;
  d.counts.resize(cur.counts.size());
  for (std::size_t i = 0; i < cur.counts.size(); ++i) {
    const std::uint64_t before = i < prev.counts.size() ? prev.counts[i] : 0;
    d.counts[i] = cur.counts[i] >= before ? cur.counts[i] - before : 0;
  }
  d.count = cur.count >= prev.count ? cur.count - prev.count : 0;
  d.sum = cur.sum - prev.sum;
  d.min = 0.0;
  d.max = 0.0;
  for (std::size_t i = cur.counts.size(); i-- > 0;) {
    if (d.counts[i] == 0) continue;
    d.max = i < d.layout.bounds.size() ? d.layout.bounds[i] : cur.max;
    break;
  }
  return d;
}

}  // namespace

TimeSeries::TimeSeries(Seconds window) : window_(window) {
  TAPESIM_ASSERT_MSG(window.count() > 0.0,
                     "time-series window must be positive");
}

void TimeSeries::track_counter(std::string name, const Counter& counter) {
  TAPESIM_ASSERT_MSG(windows_.empty(),
                     "track instruments before the first window closes");
  CounterSource src;
  src.name = name;
  src.counter = &counter;
  src.last = counter.value();
  src.column = columns_.size();
  columns_.push_back(name);
  columns_.push_back(name + ".rate_per_s");
  counters_.push_back(std::move(src));
}

void TimeSeries::track_gauge(std::string name, const Gauge& gauge) {
  TAPESIM_ASSERT_MSG(windows_.empty(),
                     "track instruments before the first window closes");
  GaugeSource src;
  src.name = name;
  src.gauge = &gauge;
  src.column = columns_.size();
  columns_.push_back(std::move(name));
  gauges_.push_back(std::move(src));
}

void TimeSeries::track_histogram(std::string name,
                                 const Histogram& histogram,
                                 std::vector<double> percentiles) {
  TAPESIM_ASSERT_MSG(windows_.empty(),
                     "track instruments before the first window closes");
  HistogramSource src;
  src.name = name;
  src.histogram = &histogram;
  src.percentiles = std::move(percentiles);
  src.last = histogram.snapshot();
  src.column = columns_.size();
  columns_.push_back(name + ".count");
  for (const double p : src.percentiles) {
    // p99.9 -> "name.p99.9"; integral percentiles print bare ("name.p99").
    std::string suffix = std::to_string(p);
    suffix.erase(suffix.find_last_not_of('0') + 1);
    if (!suffix.empty() && suffix.back() == '.') suffix.pop_back();
    columns_.push_back(name + ".p" + suffix);
  }
  histograms_.push_back(std::move(src));
}

void TimeSeries::close_window(Seconds end) {
  TimeSeriesWindow w;
  w.start = window_start_;
  w.end = end;
  w.values.assign(columns_.size(), 0.0);
  const double span = (end - window_start_).count();
  for (CounterSource& c : counters_) {
    const std::uint64_t cur = c.counter->value();
    // A counter that moved backwards was reset mid-window; its current
    // value is the best available delta.
    const std::uint64_t delta = cur >= c.last ? cur - c.last : cur;
    c.last = cur;
    w.values[c.column] = static_cast<double>(delta);
    w.values[c.column + 1] =
        span > 0.0 ? static_cast<double>(delta) / span : 0.0;
  }
  for (const GaugeSource& g : gauges_) {
    w.values[g.column] = g.gauge->value();
  }
  for (HistogramSource& h : histograms_) {
    const HistogramSnapshot cur = h.histogram->snapshot();
    const HistogramSnapshot delta = window_delta(cur, h.last);
    h.last = cur;
    w.values[h.column] = static_cast<double>(delta.count);
    for (std::size_t i = 0; i < h.percentiles.size(); ++i) {
      w.values[h.column + 1 + i] = delta.percentile(h.percentiles[i]);
    }
  }
  windows_.push_back(std::move(w));
  window_start_ = end;
}

void TimeSeries::advance_to(Seconds now) {
  if (now > last_advance_) last_advance_ = now;
  while (now >= window_start_ + window_) {
    close_window(window_start_ + window_);
  }
}

void TimeSeries::finish(Seconds now) {
  advance_to(now);
  if (now > window_start_) close_window(now);
}

void TimeSeries::reset(Seconds now) {
  windows_.clear();
  window_start_ = now;
  if (now > last_advance_) last_advance_ = now;
  for (CounterSource& c : counters_) c.last = c.counter->value();
  for (HistogramSource& h : histograms_) h.last = h.histogram->snapshot();
}

void TimeSeries::write_csv(std::ostream& os) const {
  os.precision(15);
  os << "window_start_s,window_end_s";
  for (const std::string& c : columns_) os << ',' << c;
  os << '\n';
  for (const TimeSeriesWindow& w : windows_) {
    os << w.start.count() << ',' << w.end.count();
    for (const double v : w.values) os << ',' << v;
    os << '\n';
  }
}

void TimeSeries::write_json(std::ostream& os) const {
  os.precision(15);
  os << "{\n  \"window_s\": " << window_.count() << ",\n  \"columns\": [";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << (i == 0 ? "" : ", ") << '"' << escape_json(columns_[i]) << '"';
  }
  os << "],\n  \"windows\": [";
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const TimeSeriesWindow& w = windows_[i];
    os << (i == 0 ? "" : ",") << "\n    {\"start_s\": " << w.start.count()
       << ", \"end_s\": " << w.end.count() << ", \"values\": [";
    for (std::size_t j = 0; j < w.values.size(); ++j) {
      os << (j == 0 ? "" : ", ") << w.values[j];
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace tapesim::obs
